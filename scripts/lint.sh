#!/usr/bin/env bash
# Repo-invariant lint: greppable rules the compiler cannot express,
# enforced in CI (see .github/workflows/ci.yml, `lint` job).
#
# Run locally from the repo root:  bash scripts/lint.sh
#
# Each rule prints every violation it finds; the script exits nonzero if
# any rule fired. Rules live here (not in a wiki) so adding one is a
# one-line diff reviewed next to the code it constrains.
set -u

cd "$(dirname "$0")/.."

failures=0

fail() {
  echo "LINT FAIL: $1" >&2
  shift
  for line in "$@"; do echo "    $line" >&2; done
  failures=$((failures + 1))
}

# ---------------------------------------------------------------------------
# 1. Concurrency primitives live in util/ only.
#
# std::thread: the shared ThreadPool (util/parallel.*) is the engine's one
# concurrency substrate — a stray std::thread elsewhere bypasses the
# STACCATO_THREADS knob, nested-region inlining, and the TSan matrix.
# (Promoted from the PR-3 CHANGES.md claim "grep std::thread src/ now hits
# only util/parallel.*" into an enforced rule.)
hits=$(grep -rn "std::thread" src/ --include="*.h" --include="*.cc" \
  | grep -v "^src/util/parallel\." || true)
if [ -n "$hits" ]; then
  fail "raw std::thread outside util/parallel.* (use ThreadPool/ParallelFor)" "$hits"
fi

# std::mutex / std::condition_variable / lock guards: every component
# locks through the annotated util::Mutex / util::MutexLock / util::CondVar
# wrappers (util/mutex.h) so clang -Wthread-safety can check the lock
# discipline. Raw primitives are allowed only inside util/ itself (the
# wrappers' own implementation).
hits=$(grep -rnE "std::(mutex|condition_variable|lock_guard|unique_lock|scoped_lock|shared_mutex|shared_lock)" \
  src/ --include="*.h" --include="*.cc" \
  | grep -v "^src/util/mutex\.h" || true)
if [ -n "$hits" ]; then
  fail "raw std::mutex/condvar/lock outside util/mutex.h (use util::Mutex/MutexLock/CondVar)" "$hits"
fi

# ---------------------------------------------------------------------------
# 2. No #include of a .cc file (hides ODR violations and double-compiles).
hits=$(grep -rnE "#include .*\.cc\"" src/ tests/ bench/ examples/ || true)
if [ -n "$hits" ]; then
  fail "#include of a .cc file" "$hits"
fi

# ---------------------------------------------------------------------------
# 3. No `using namespace` at namespace scope in headers (leaks into every
# includer). Function-local using-declarations are fine; headers are not.
hits=$(grep -rn "using namespace" src/ --include="*.h" || true)
if [ -n "$hits" ]; then
  fail "'using namespace' in a header" "$hits"
fi

# ---------------------------------------------------------------------------
# 4. Headers use #pragma once (the repo convention; a missing guard is an
# eventual double-definition surprise).
missing=""
while IFS= read -r header; do
  if ! grep -q "#pragma once" "$header"; then
    missing="$missing$header"$'\n'
  fi
done < <(find src -name "*.h")
if [ -n "$missing" ]; then
  fail "header without #pragma once" "$missing"
fi

# ---------------------------------------------------------------------------
# 5. Locking goes through the annotated wrappers: a bare Lock()/Unlock()
# pair outside util/ evades the SCOPED_CAPABILITY analysis (MutexLock) and
# is exception-unsafe. (AssertHeld and TryLock are fine.)
hits=$(grep -rnE "\.(Lock|Unlock)\(\)|->(Lock|Unlock)\(\)" \
  src/ --include="*.h" --include="*.cc" \
  | grep -v "^src/util/" || true)
if [ -n "$hits" ]; then
  fail "manual Lock()/Unlock() outside util/ (use util::MutexLock)" "$hits"
fi

# ---------------------------------------------------------------------------
# 6. No NO_THREAD_SAFETY_ANALYSIS escapes outside util/: the annotation
# opt-out is for primitives the analysis genuinely cannot follow, not for
# silencing violations in engine code.
hits=$(grep -rn "NO_THREAD_SAFETY_ANALYSIS" src/ --include="*.h" --include="*.cc" \
  | grep -v "^src/util/thread_annotations\.h" || true)
if [ -n "$hits" ]; then
  fail "NO_THREAD_SAFETY_ANALYSIS outside util/thread_annotations.h" "$hits"
fi

# ---------------------------------------------------------------------------
# 7. The WAL's on-disk format is private to src/rdbms/wal.*: every other
# component resolves the log file through WalPath() and reads/writes
# records through WalWriter/WalReader, so recovery invariants live in one
# place. The "wal.log" literal and the physical framing constants must
# not leak (tests/wal_test.cc, the format's own test harness, is the one
# exception).
hits=$(grep -rnE '"wal\.log"|kWal(Zero|Full|First|Middle|Last|BlockSize|HeaderSize)' \
  src/ tests/ bench/ examples/ --include="*.h" --include="*.cc" \
  | grep -vE "^(src/rdbms/wal\.(h|cc)|tests/wal_test\.cc):" || true)
if [ -n "$hits" ]; then
  fail "WAL format internals outside src/rdbms/wal.* (use WalPath/WalWriter/WalReader)" "$hits"
fi

# ---------------------------------------------------------------------------
# 8. Shard directory naming is private to src/rdbms/shard.*: every other
# component resolves a shard's directory through ShardDirName() (and the
# shard count through shards.meta via Open/OpenExisting), so the on-disk
# layout can change in one place. The '"shard."' literal must not leak.
hits=$(grep -rn '"shard\.' src/ tests/ bench/ examples/ \
  --include="*.h" --include="*.cc" \
  | grep -vE "^src/rdbms/shard\.(h|cc):" || true)
if [ -n "$hits" ]; then
  fail "shard directory literal outside src/rdbms/shard.* (use ShardDirName)" "$hits"
fi

# ---------------------------------------------------------------------------
# 9. Clock reads are confined: production code never reads steady_clock
# outside util/timer.h (the Timer abstraction), rdbms/service.cc (where
# QueryControl arms and checks deadlines and the admission queue computes
# its wait bound), and telemetry/clock.cc (the trace-timestamp seam). The
# executor polls QueryControl::Check() instead of reading a clock, so
# "how much time is left" has exactly one implementation — and tests can
# fake budgets (born-expired deadlines, step caps) without mocking time.
# All trace timestamps go through telemetry::MonotonicNanos(), so traces
# are fake-clock-testable (telemetry::FakeClock) for the same reason.
hits=$(grep -rn 'steady_clock' src/ --include="*.h" --include="*.cc" \
  | grep -vE "^src/(util/timer\.h|rdbms/service\.cc|telemetry/clock\.(h|cc)):" || true)
if [ -n "$hits" ]; then
  fail "steady_clock read outside util/timer.h / rdbms/service.cc / telemetry/clock.* (poll QueryControl or use telemetry::MonotonicNanos)" "$hits"
fi

# ---------------------------------------------------------------------------
if [ "$failures" -ne 0 ]; then
  echo "" >&2
  echo "lint: $failures rule(s) failed" >&2
  exit 1
fi
echo "lint: all rules clean"
