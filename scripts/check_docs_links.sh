#!/usr/bin/env bash
# Verifies that every relative markdown link in README.md and docs/*.md
# points at a file that exists (anchors and external URLs are skipped).
# Run from anywhere; resolves links relative to the file containing them.
set -u
cd "$(dirname "$0")/.."

fail=0
for f in README.md docs/*.md; do
  [ -f "$f" ] || continue
  dir=$(dirname "$f")
  # Extract the (target) of every [text](target) link.
  while IFS= read -r link; do
    case "$link" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target="${link%%#*}"
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ]; then
      echo "BROKEN LINK: $f -> $link"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$fail" -eq 0 ]; then
  echo "All documentation links resolve."
fi
exit "$fail"
