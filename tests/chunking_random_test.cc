// Randomized structural tests for FindMinSFA and the greedy approximation
// over random layered DAGs (not just OCR-shaped chains), swept with TEST_P.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "inference/kbest.h"
#include "staccato/chunking.h"
#include "util/random.h"

namespace staccato {
namespace {

// Random layered DAG with per-source-node distinct single-char labels
// (guarantees determinism and hence unique paths).
Result<Sfa> RandomDag(uint64_t seed) {
  Rng rng(seed);
  SfaBuilder b;
  NodeId start = b.AddNode();
  std::vector<NodeId> prev{start};
  size_t layers = static_cast<size_t>(rng.UniformInt(2, 6));
  for (size_t l = 0; l < layers; ++l) {
    size_t width = static_cast<size_t>(rng.UniformInt(1, 3));
    std::vector<NodeId> cur;
    for (size_t w = 0; w < width; ++w) cur.push_back(b.AddNode());
    std::set<NodeId> covered;
    for (NodeId p : prev) {
      int label = 0;
      // Every previous node connects to >= 1 node of the new layer, and
      // every new node must receive >= 1 edge (second pass below).
      std::vector<NodeId> targets;
      for (NodeId c : cur) {
        if (targets.empty() || rng.Coin(0.6)) targets.push_back(c);
      }
      if (p == prev.back()) {
        for (NodeId c : cur) {
          if (!covered.count(c) &&
              std::find(targets.begin(), targets.end(), c) == targets.end()) {
            targets.push_back(c);
          }
        }
      }
      double share = 1.0 / static_cast<double>(targets.size() + 1);
      for (NodeId c : targets) {
        covered.insert(c);
        STACCATO_RETURN_NOT_OK(b.AddTransition(
            p, c, std::string(1, static_cast<char>('a' + label++)), share));
        if (rng.Coin(0.4)) {
          STACCATO_RETURN_NOT_OK(b.AddTransition(
              p, c, std::string(1, static_cast<char>('a' + label++)),
              share / 2));
        }
      }
    }
    prev = cur;
  }
  NodeId fin = b.AddNode();
  for (NodeId p : prev) {
    STACCATO_RETURN_NOT_OK(b.AddTransition(p, fin, "z", 0.8));
  }
  b.SetStart(start);
  b.SetFinal(fin);
  return b.Build();
}

class RandomDagChunking : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDagChunking, FindMinSfaProducesValidChunks) {
  auto sfa = RandomDag(GetParam());
  ASSERT_TRUE(sfa.ok()) << sfa.status().ToString();
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 10; ++trial) {
    // Random adjacent triple seed.
    std::vector<NodeId> centers;
    for (NodeId n = 0; n < sfa->NumNodes(); ++n) {
      if (!sfa->InEdges(n).empty() && !sfa->OutEdges(n).empty()) {
        centers.push_back(n);
      }
    }
    if (centers.empty()) break;
    NodeId y = rng.Choice(centers);
    NodeId x = sfa->edge(rng.Choice(sfa->InEdges(y))).from;
    NodeId z = sfa->edge(rng.Choice(sfa->OutEdges(y))).to;
    auto chunk = FindMinSfa(*sfa, {x, y, z});
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    // Seed contained, endpoints in the set.
    EXPECT_TRUE(chunk->nodes.count(x) && chunk->nodes.count(y) &&
                chunk->nodes.count(z));
    EXPECT_TRUE(chunk->nodes.count(chunk->start));
    EXPECT_TRUE(chunk->nodes.count(chunk->final));
    // The extracted chunk must be a valid SFA.
    auto sub = ExtractChunk(*sfa, *chunk);
    ASSERT_TRUE(sub.ok()) << sub.status().ToString();
    EXPECT_TRUE(sub->Validate().ok());
    // Interior nodes have no edges crossing the boundary.
    for (NodeId n : chunk->nodes) {
      if (n == chunk->start || n == chunk->final) continue;
      for (EdgeId e : sfa->InEdges(n)) {
        EXPECT_TRUE(chunk->nodes.count(sfa->edge(e).from));
      }
      for (EdgeId e : sfa->OutEdges(n)) {
        EXPECT_TRUE(chunk->nodes.count(sfa->edge(e).to));
      }
    }
  }
}

TEST_P(RandomDagChunking, CollapsePreservesStringSubset) {
  auto sfa = RandomDag(GetParam());
  ASSERT_TRUE(sfa.ok());
  auto orig = sfa->EnumerateStrings(1 << 20);
  ASSERT_TRUE(orig.ok());
  std::map<std::string, double> mu;
  for (auto& [s, p] : *orig) mu[s] += p;
  for (size_t m : {1u, 2u, 4u}) {
    for (size_t k : {1u, 2u, 5u}) {
      auto approx = ApproximateSfa(*sfa, {m, k, true});
      ASSERT_TRUE(approx.ok()) << approx.status().ToString() << " m=" << m
                               << " k=" << k;
      EXPECT_LE(approx->NumEdges(), m);
      auto kept = approx->EnumerateStrings(1 << 20);
      ASSERT_TRUE(kept.ok());
      for (auto& [s, p] : *kept) {
        auto it = mu.find(s);
        ASSERT_NE(it, mu.end()) << "seed=" << GetParam() << " invented " << s;
        EXPECT_NEAR(it->second, p, 1e-9);
      }
    }
  }
}

TEST_P(RandomDagChunking, GreedyRetainsAtLeastKMapMass) {
  // The chunked representation with (m, k) always retains at least the
  // strings k-MAP with the same k would keep... not in general — but it
  // must retain at least the single MAP string's mass when k >= 1.
  auto sfa = RandomDag(GetParam());
  ASSERT_TRUE(sfa.ok());
  auto map = MapString(*sfa);
  ASSERT_TRUE(map.ok());
  for (size_t m : {1u, 3u}) {
    ApproxStats stats;
    auto approx = ApproximateSfa(*sfa, {m, 2, true}, &stats);
    ASSERT_TRUE(approx.ok());
    EXPECT_GE(stats.retained_mass, map->prob - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagChunking,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace staccato
