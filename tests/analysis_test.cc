#include <gtest/gtest.h>

#include <cmath>

#include "automata/dfa.h"
#include "inference/query_eval.h"
#include "ocr/generator.h"
#include "staccato/analysis.h"
#include "staccato/chunking.h"
#include "util/random.h"

namespace staccato {
namespace {

Result<Sfa> SmallOcrSfa(uint64_t seed, const std::string& line = "Pub Law 89") {
  Rng rng(seed);
  OcrNoiseModel model;
  model.alternatives = 3;
  return OcrLineToSfa(line, model, &rng);
}

TEST(KlTest, FromMassBasics) {
  EXPECT_NEAR(*KlFromRetainedMass(1.0), 0.0, 1e-12);
  EXPECT_NEAR(*KlFromRetainedMass(0.5), std::log(2.0), 1e-12);
  EXPECT_FALSE(KlFromRetainedMass(0.0).ok());
  EXPECT_FALSE(KlFromRetainedMass(-0.1).ok());
  EXPECT_FALSE(KlFromRetainedMass(1.5).ok());
}

TEST(KlTest, EnumerationMatchesClosedForm) {
  // Appendix C: KL(mu|X || mu) = -log Z where Z is the retained mass.
  auto sfa = SmallOcrSfa(3);
  ASSERT_TRUE(sfa.ok());
  for (size_t m : {2u, 5u}) {
    for (size_t k : {1u, 3u}) {
      ApproxStats stats;
      auto approx = ApproximateSfa(*sfa, {m, k, true}, &stats);
      ASSERT_TRUE(approx.ok());
      auto kl_enum = KlDivergenceByEnumeration(*sfa, *approx);
      ASSERT_TRUE(kl_enum.ok()) << kl_enum.status().ToString();
      auto kl_mass = KlFromRetainedMass(stats.retained_mass);
      ASSERT_TRUE(kl_mass.ok());
      EXPECT_NEAR(*kl_enum, *kl_mass, 1e-6) << "m=" << m << " k=" << k;
    }
  }
}

TEST(KlTest, MoreMassMeansLowerKl) {
  // The formal basis of "prefer the scheme retaining more mass" (Sec 3.2).
  auto sfa = SmallOcrSfa(7);
  ASSERT_TRUE(sfa.ok());
  double prev_kl = 1e18;
  for (size_t k : {1u, 2u, 4u, 8u}) {
    ApproxStats stats;
    auto approx = ApproximateSfa(*sfa, {4, k, true}, &stats);
    ASSERT_TRUE(approx.ok());
    auto kl = KlFromRetainedMass(stats.retained_mass);
    ASSERT_TRUE(kl.ok());
    EXPECT_LE(*kl, prev_kl + 1e-9);
    prev_kl = *kl;
  }
}

TEST(KlTest, RejectsForeignApproximation) {
  // KL computation must detect an "approximation" inventing new strings.
  auto a = SmallOcrSfa(1, "abc");
  auto b = SmallOcrSfa(2, "xyz");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(KlDivergenceByEnumeration(*a, *b).ok());
}

// Proposition 3.1: per-edge top-k is the mass-optimal per-edge selection.
// Property check: no random selection of k transitions per edge beats the
// top-k selection on retained mass.
TEST(Prop31Test, TopKPerEdgeIsMassOptimal) {
  auto sfa = SmallOcrSfa(11);
  ASSERT_TRUE(sfa.ok());
  const size_t k = 2;
  // Top-k mass: prune each edge to its top-k transitions.
  auto prune = [&](const std::function<std::vector<Transition>(const Edge&)>& pick)
      -> double {
    SfaBuilder b;
    b.AddNodes(sfa->NumNodes());
    b.SetStart(sfa->start());
    b.SetFinal(sfa->final());
    for (const Edge& e : sfa->edges()) {
      for (const Transition& t : pick(e)) {
        EXPECT_TRUE(b.AddTransition(e.from, e.to, t.label, t.prob).ok());
      }
    }
    auto pruned = b.Build();
    EXPECT_TRUE(pruned.ok());
    return pruned->TotalMass();
  };
  double top_mass = prune([&](const Edge& e) {
    std::vector<Transition> keep(e.transitions.begin(),
                                 e.transitions.begin() +
                                     std::min<size_t>(k, e.transitions.size()));
    return keep;
  });
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    double rand_mass = prune([&](const Edge& e) {
      std::vector<Transition> pool = e.transitions;
      std::shuffle(pool.begin(), pool.end(), rng.engine());
      pool.resize(std::min<size_t>(k, pool.size()));
      return pool;
    });
    EXPECT_LE(rand_mass, top_mass + 1e-12);
  }
}

TEST(MatrixEvalTest, MatchesVectorEvaluator) {
  auto sfa = SmallOcrSfa(13);
  ASSERT_TRUE(sfa.ok());
  for (const char* pat : {"Pub", "La", "8", "\\d\\d", "P(\\x)*8", "zzz"}) {
    auto dfa = Dfa::Compile(pat, MatchMode::kContains);
    ASSERT_TRUE(dfa.ok());
    EXPECT_NEAR(EvalSfaQueryMatrix(*sfa, *dfa), EvalSfaQuery(*sfa, *dfa), 1e-12)
        << pat;
  }
}

TEST(MatrixEvalTest, MatchesOnChunkedRepresentation) {
  auto sfa = SmallOcrSfa(17);
  ASSERT_TRUE(sfa.ok());
  auto approx = ApproximateSfa(*sfa, {3, 4, true});
  ASSERT_TRUE(approx.ok());
  for (const char* pat : {"Pub", "aw 8", "\\d"}) {
    auto dfa = Dfa::Compile(pat, MatchMode::kContains);
    ASSERT_TRUE(dfa.ok());
    EXPECT_NEAR(EvalSfaQueryMatrix(*approx, *dfa), EvalSfaQuery(*approx, *dfa),
                1e-12)
        << pat;
  }
}

}  // namespace
}  // namespace staccato
