// Tests for the deadline-aware query service (rdbms/service.h): per-query
// budgets and cooperative cancellation at every executor cancellation
// point, the partial-results (graceful degradation) property, transient-
// I/O retry with backoff, admission control with retry-after hints, the
// bounded ThreadPool queue, and deterministic first-failing-shard
// surfacing in the scatter-gather path. An STACCATO_FAULT_SOAK=1 section
// hammers the whole stack with probabilistic read faults.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eval/workbench.h"
#include "ocr/corpus.h"
#include "ocr/generator.h"
#include "rdbms/service.h"
#include "rdbms/session.h"
#include "rdbms/shard.h"
#include "rdbms/staccato_db.h"
#include "util/fault_fs.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace staccato {
namespace rdbms {
namespace {

CorpusSpec SmallSpec() {
  CorpusSpec spec;
  spec.kind = DatasetKind::kCongressActs;
  spec.num_pages = 2;
  spec.lines_per_page = 12;
  spec.max_line_chars = 40;
  spec.seed = 777;
  return spec;
}

OcrNoiseModel Noise() {
  OcrNoiseModel noise;
  noise.alternatives = 6;
  return noise;
}

LoadOptions SmallLoad() {
  LoadOptions opts;
  opts.kmap_k = 8;
  opts.staccato.m = 16;
  opts.staccato.k = 8;
  return opts;
}

void ExpectSameAnswers(const std::vector<Answer>& want,
                       const std::vector<Answer>& got,
                       const std::string& what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].doc, got[i].doc) << what << " rank " << i;
    EXPECT_EQ(want[i].prob, got[i].prob)
        << what << " rank " << i << " (must be bit-identical)";
  }
}

/// Shared corpus + single-partition oracle, built once for the suite.
/// The oracle runs with the cache disabled so every Fetch really reads
/// the blob file — the fault-injection tests depend on that.
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto data = GenerateOcrDataset(SmallSpec(), Noise());
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    dataset_ = new OcrDataset(std::move(*data));
    cache::CacheConfig no_cache;
    no_cache.budget_bytes = 0;
    auto db = StaccatoDb::Open(eval::MakeScratchDir("service_oracle"),
                               no_cache);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = db->release();
    ASSERT_TRUE(db_->Load(*dataset_, SmallLoad()).ok());
    ASSERT_TRUE(
        db_->BuildInvertedIndex(DatasetQueries(DatasetKind::kCongressActs))
            .ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  void SetUp() override { util::FaultInjector::Global()->Clear(); }
  void TearDown() override { util::FaultInjector::Global()->Clear(); }

  static std::string Pattern() {
    return DatasetQueries(DatasetKind::kCongressActs)[0];
  }

  /// A scan-planned serial query: candidate visit order is doc order, so
  /// degraded answers have a predictable visited prefix.
  static QueryOptions SerialScanQuery() {
    QueryOptions q;
    q.pattern = Pattern();
    q.num_ans = 50;
    q.eval_threads = 1;
    q.early_stop = false;
    q.index_mode = IndexMode::kNever;
    return q;
  }

  static OcrDataset* dataset_;
  static StaccatoDb* db_;
};

OcrDataset* ServiceTest::dataset_ = nullptr;
StaccatoDb* ServiceTest::db_ = nullptr;

// ---- Budget / deadline semantics ------------------------------------------

TEST_F(ServiceTest, PreExpiredDeadlineFailsBeforeAnyWork) {
  Session session(db_, SessionOptions{1, 50});
  auto pq = session.Prepare(Approach::kStaccato, SerialScanQuery());
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  ExecBudget budget;
  budget.deadline_ms = -1.0;  // born expired
  QueryControl control(budget);
  QueryStats stats;
  auto got = pq->Execute(&control, &stats);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsDeadlineExceeded()) << got.status().ToString();
  // Not a single candidate was generated, fetched, or evaluated.
  EXPECT_EQ(stats.candidates, 0u);
  EXPECT_EQ(stats.visited_candidates, 0u);
  EXPECT_EQ(stats.blob_bytes_read, 0u);
}

TEST_F(ServiceTest, PreExpiredDeadlineWithAllowPartialDegradesToEmpty) {
  Session session(db_, SessionOptions{1, 50});
  for (Approach approach : {Approach::kStaccato, Approach::kKMap}) {
    auto pq = session.Prepare(approach, SerialScanQuery());
    ASSERT_TRUE(pq.ok()) << pq.status().ToString();
    ExecBudget budget;
    budget.deadline_ms = -1.0;
    budget.allow_partial = true;
    QueryControl control(budget);
    QueryStats stats;
    auto got = pq->Execute(&control, &stats);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(got->empty());
    EXPECT_TRUE(stats.degraded);
    EXPECT_EQ(stats.visited_candidates, 0u);
  }
}

TEST_F(ServiceTest, FetchByteBudgetFailsMidFetchWithoutAllowPartial) {
  Session session(db_, SessionOptions{1, 50});
  auto pq = session.Prepare(Approach::kStaccato, SerialScanQuery());
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  ExecBudget budget;
  budget.max_fetch_bytes = 1;  // blown by the very first blob
  QueryControl control(budget);
  QueryStats stats;
  auto got = pq->Execute(&control, &stats);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsDeadlineExceeded()) << got.status().ToString();
  EXPECT_NE(got.status().ToString().find("fetch byte"), std::string::npos)
      << got.status().ToString();
}

TEST_F(ServiceTest, DpStepBudgetFailsMidEvalWithoutAllowPartial) {
  Session session(db_, SessionOptions{1, 50});
  auto pq = session.Prepare(Approach::kStaccato, SerialScanQuery());
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  ExecBudget budget;
  budget.max_dp_steps = 1;  // blown by the very first candidate's DP
  QueryControl control(budget);
  QueryStats stats;
  auto got = pq->Execute(&control, &stats);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsDeadlineExceeded()) << got.status().ToString();
  EXPECT_NE(got.status().ToString().find("DP step"), std::string::npos)
      << got.status().ToString();
}

// The graceful-degradation property: under allow_partial, the degraded
// answers are exactly the well-formed top-k of the candidates visited
// before the cut. With a serial scan plan the visited set is the doc-id
// prefix [0, visited_candidates), so the expected answer is the full
// run's ranking restricted to that prefix.
TEST_F(ServiceTest, PartialAnswersAreExactTopKOfVisitedPrefix) {
  Session session(db_, SessionOptions{1, 50});
  auto pq = session.Prepare(Approach::kStaccato, SerialScanQuery());
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  auto full = pq->Execute(nullptr);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_FALSE(full->empty());

  for (uint64_t steps : {1ull, 50ull, 500ull, 5000ull}) {
    ExecBudget budget;
    budget.max_dp_steps = steps;
    budget.allow_partial = true;
    QueryControl control(budget);
    QueryStats stats;
    auto got = pq->Execute(&control, &stats);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    if (!stats.degraded) {
      // Budget big enough for the whole query: answers must be the full
      // ranking, bit-identical.
      ExpectSameAnswers(*full, *got, "undegraded budget run");
      continue;
    }
    ASSERT_LE(stats.visited_candidates, stats.candidates);
    std::vector<Answer> expected;
    for (const Answer& a : *full) {
      if (a.doc < stats.visited_candidates) expected.push_back(a);
    }
    ExpectSameAnswers(expected, *got,
                      StringPrintf("steps=%llu visited=%zu",
                                   (unsigned long long)steps,
                                   stats.visited_candidates));
  }
}

TEST_F(ServiceTest, CancelBeforeExecuteIsDeterministic) {
  Session session(db_, SessionOptions{1, 50});
  auto pq = session.Prepare(Approach::kStaccato, SerialScanQuery());
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  QueryControl control(ExecBudget{});
  control.Cancel();
  QueryStats stats;
  auto got = pq->Execute(&control, &stats);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsDeadlineExceeded()) << got.status().ToString();
  EXPECT_NE(got.status().ToString().find("cancelled"), std::string::npos);
  EXPECT_EQ(stats.visited_candidates, 0u);
}

// Raced under the TSan CI job: Cancel from another thread while the
// executor polls. Either outcome (completed or cancelled) is legal; the
// point is that the race is clean.
TEST_F(ServiceTest, ConcurrentCancelRacesCleanly) {
  Session session(db_, SessionOptions{4, 50});
  QueryOptions q = SerialScanQuery();
  q.eval_threads = 4;
  auto pq = session.Prepare(Approach::kStaccato, q);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  for (int round = 0; round < 4; ++round) {
    QueryControl control(ExecBudget{});
    std::thread canceller([&control] { control.Cancel(); });
    auto got = pq->Execute(&control, nullptr);
    canceller.join();
    if (!got.ok()) {
      EXPECT_TRUE(got.status().IsDeadlineExceeded()) << got.status().ToString();
    }
  }
}

// A generous budget must never change answers: 1/4/8 eval threads,
// sharded and unsharded, bit-identical to the no-control run.
TEST_F(ServiceTest, GenerousBudgetIsAnswerNeutralAcrossThreadsAndShards) {
  ExecBudget budget;
  budget.deadline_ms = 60000.0;
  budget.max_dp_steps = 1ull << 40;
  budget.max_fetch_bytes = 1ull << 40;
  budget.allow_partial = true;

  auto sdb = ShardedDb::Open(eval::MakeScratchDir("service_matrix"),
                             ShardConfig{3, cache::CacheConfig()});
  ASSERT_TRUE(sdb.ok()) << sdb.status().ToString();
  ASSERT_TRUE((*sdb)->Load(*dataset_, SmallLoad()).ok());

  for (size_t threads : {1u, 4u, 8u}) {
    QueryOptions q;
    q.pattern = Pattern();
    q.num_ans = 50;
    q.eval_threads = threads;

    Session solo(db_, SessionOptions{threads, 50});
    auto solo_pq = solo.Prepare(Approach::kStaccato, q);
    ASSERT_TRUE(solo_pq.ok()) << solo_pq.status().ToString();
    auto want = solo_pq->Execute(nullptr);
    ASSERT_TRUE(want.ok()) << want.status().ToString();

    QueryControl c1(budget);
    QueryStats s1;
    auto got = solo_pq->Execute(&c1, &s1);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameAnswers(*want, *got,
                      StringPrintf("solo threads=%zu", threads));
    EXPECT_FALSE(s1.degraded);

    Session sharded(sdb->get(), SessionOptions{threads, 50});
    auto shard_pq = sharded.Prepare(Approach::kStaccato, q);
    ASSERT_TRUE(shard_pq.ok()) << shard_pq.status().ToString();
    QueryControl c2(budget);
    QueryStats s2;
    auto sharded_got = shard_pq->Execute(&c2, &s2);
    ASSERT_TRUE(sharded_got.ok()) << sharded_got.status().ToString();
    ExpectSameAnswers(*want, *sharded_got,
                      StringPrintf("sharded threads=%zu", threads));
    EXPECT_FALSE(s2.degraded);
    EXPECT_EQ(s2.shards.size(), 3u);
  }
}

// ---- Transient-I/O retry --------------------------------------------------

TEST_F(ServiceTest, RetryAbsorbsTransientBlobReadFailures) {
  Session session(db_, SessionOptions{1, 50});
  auto pq = session.Prepare(Approach::kStaccato, SerialScanQuery());
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  // Two one-shot read glitches on the blob file; the retry budget (3)
  // covers both and the query completes with correct answers.
  util::FaultInjector::Global()->Install(
      {util::FaultOp::kRead, "blobs.", 0, 0, false});
  util::FaultInjector::Global()->Install(
      {util::FaultOp::kRead, "blobs.", 0, 0, false});
  QueryControl control(ExecBudget{});
  QueryStats stats;
  auto got = pq->Execute(&control, &stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(stats.io_retries, 2u);
  EXPECT_FALSE(stats.degraded);

  util::FaultInjector::Global()->Clear();
  auto clean = pq->Execute(nullptr);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ExpectSameAnswers(*clean, *got, "answers after absorbed retries");
}

TEST_F(ServiceTest, RetryExhaustionSurfacesUnderlyingError) {
  Session session(db_, SessionOptions{1, 50});
  auto pq = session.Prepare(Approach::kStaccato, SerialScanQuery());
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  // A dead disk: every blob read fails. The retry budget runs dry and
  // the *underlying* I/O error comes back, not DeadlineExceeded.
  util::FaultInjector::Global()->Install(
      {util::FaultOp::kRead, "blobs.", 0, 0, true});
  ExecBudget budget;
  budget.max_io_retries = 2;
  QueryControl control(budget);
  QueryStats stats;
  auto got = pq->Execute(&control, &stats);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsIOError()) << got.status().ToString();
  EXPECT_EQ(stats.io_retries, 2u);
}

TEST_F(ServiceTest, NoControlMeansNoRetries) {
  Session session(db_, SessionOptions{1, 50});
  auto pq = session.Prepare(Approach::kStaccato, SerialScanQuery());
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  util::FaultInjector::Global()->Install(
      {util::FaultOp::kRead, "blobs.", 0, 0, false});
  auto got = pq->Execute(nullptr);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsIOError()) << got.status().ToString();
}

// ---- Sharded gather surfaces the first failing shard (satellite) ----------

TEST_F(ServiceTest, ShardedExecuteSurfacesFirstFailingShardStatus) {
  const std::string dir = eval::MakeScratchDir("service_shard_fault");
  cache::CacheConfig no_cache;
  no_cache.budget_bytes = 0;
  auto sdb = ShardedDb::Open(dir, ShardConfig{3, no_cache});
  ASSERT_TRUE(sdb.ok()) << sdb.status().ToString();
  ASSERT_TRUE((*sdb)->Load(*dataset_, SmallLoad()).ok());
  Session session(sdb->get(), SessionOptions{2, 50});
  auto pq = session.Prepare(Approach::kStaccato, SerialScanQuery());
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();

  // Kill reads in shards 2 and 1 (sticky). The gather must surface the
  // *first* failing shard in shard order — shard 1 — deterministically,
  // run after run, even though both fail and shard 2's eval may finish
  // first.
  const std::string shard1 = ShardDirName(dir, 1);
  const std::string shard2 = ShardDirName(dir, 2);
  util::FaultInjector::Global()->Install(
      {util::FaultOp::kRead, shard2, 0, 0, true});
  util::FaultInjector::Global()->Install(
      {util::FaultOp::kRead, shard1, 0, 0, true});
  for (int round = 0; round < 3; ++round) {
    auto got = pq->Execute(nullptr);
    ASSERT_FALSE(got.ok());
    EXPECT_TRUE(got.status().IsIOError()) << got.status().ToString();
    EXPECT_NE(got.status().ToString().find(shard1), std::string::npos)
        << "round " << round << ": " << got.status().ToString();
    EXPECT_EQ(got.status().ToString().find(shard2), std::string::npos)
        << "round " << round << ": " << got.status().ToString();
  }
}

// ---- Admission control ----------------------------------------------------

TEST_F(ServiceTest, RetryAfterHintParses) {
  EXPECT_EQ(RetryAfterHintMs(
                Status::Unavailable("queue full; retry-after-ms=42")),
            42u);
  EXPECT_EQ(RetryAfterHintMs(Status::Unavailable("no hint here")), 0u);
  EXPECT_EQ(RetryAfterHintMs(Status::OK()), 0u);
}

TEST_F(ServiceTest, AdmissionQueueTimesOutAndSheds) {
  Session session(db_, SessionOptions{1, 50});
  ServiceConfig config;
  config.max_concurrent = 1;
  config.max_queued = 1;
  config.queue_timeout_ms = 40.0;
  QueryService svc(&session, config);

  // Occupy the only slot.
  ASSERT_TRUE(svc.Admit().ok());
  EXPECT_EQ(svc.active(), 1u);

  // Second admit queues, waits out the 40ms budget, and times out with a
  // retry-after hint.
  Status timed_out = svc.Admit();
  ASSERT_FALSE(timed_out.ok());
  EXPECT_TRUE(timed_out.IsUnavailable()) << timed_out.ToString();
  EXPECT_GE(RetryAfterHintMs(timed_out), 1u);
  EXPECT_EQ(svc.stats().timed_out.load(), 1u);

  // A waiter holds the single queue slot; the next arrival sheds
  // immediately (no 40ms wait) because the queue is full.
  std::atomic<bool> waiter_started{false};
  std::thread waiter([&] {
    waiter_started.store(true);
    Status st = svc.Admit();  // queues behind the active slot
    if (st.ok()) svc.Release();
  });
  while (!waiter_started.load()) std::this_thread::yield();
  // Give the waiter time to reach the wait loop, then overflow the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Status shed = svc.Admit();
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.IsUnavailable()) << shed.ToString();
  EXPECT_GE(RetryAfterHintMs(shed), 1u);

  svc.Release();  // frees the slot; the waiter admits or times out
  waiter.join();
  EXPECT_EQ(svc.active(), 0u);
  EXPECT_GE(svc.stats().shed.load() + svc.stats().timed_out.load(), 2u);
}

TEST_F(ServiceTest, ServiceExecutesAndCountsOutcomes) {
  Session session(db_, SessionOptions{2, 50});
  auto pq = session.Prepare(Approach::kStaccato, SerialScanQuery());
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  auto want = pq->Execute(nullptr);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  QueryService svc(&session);
  QueryStats stats;
  auto got = svc.Execute(&*pq, &stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectSameAnswers(*want, *got, "service execute");
  EXPECT_EQ(svc.stats().admitted.load(), 1u);
  EXPECT_EQ(svc.stats().completed.load(), 1u);

  // A born-expired budget through the service: DeadlineExceeded, counted.
  ExecBudget expired;
  expired.deadline_ms = -1.0;
  auto dead = svc.Execute(&*pq, expired, nullptr);
  ASSERT_FALSE(dead.ok());
  EXPECT_TRUE(dead.status().IsDeadlineExceeded());
  EXPECT_EQ(svc.stats().deadline_exceeded.load(), 1u);

  // Same budget with allow_partial: OK, degraded, counted.
  expired.allow_partial = true;
  QueryStats dstats;
  auto degraded = svc.Execute(&*pq, expired, &dstats);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(dstats.degraded);
  EXPECT_EQ(svc.stats().degraded.load(), 1u);
}

// ---- Bounded ThreadPool queue (satellite) ---------------------------------

TEST(ThreadPoolQueueTest, TryEnqueueRejectsWhenFull) {
  ThreadPool pool(1, 2);
  EXPECT_EQ(pool.max_queued(), 2u);

  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  // Park the single worker so queued tasks pile up behind it.
  pool.Submit([&] {
    while (!release.load()) std::this_thread::yield();
    ++ran;
  });
  // Wait until the worker has claimed the blocker off the queue.
  while (pool.queue_depth() != 0) std::this_thread::yield();

  EXPECT_TRUE(pool.TryEnqueue([&] { ++ran; }));
  EXPECT_TRUE(pool.TryEnqueue([&] { ++ran; }));
  EXPECT_EQ(pool.queue_depth(), 2u);
  // Queue full: rejected without running anything.
  EXPECT_FALSE(pool.TryEnqueue([&] { ++ran; }));
  EXPECT_EQ(pool.saturation_rejects(), 1u);
  EXPECT_EQ(ran.load(), 0);

  // Submit never drops: at capacity it runs inline on the caller.
  pool.Submit([&] { ++ran; });
  EXPECT_EQ(ran.load(), 1);

  release.store(true);
  // The worker finishes the blocker and drains the two queued tasks:
  // every accepted task runs exactly once, nothing is dropped.
  while (ran.load() < 4) std::this_thread::yield();
  EXPECT_EQ(ran.load(), 4);
}

// ---- Probabilistic fault soak (opt-in: STACCATO_FAULT_SOAK=1) -------------

TEST_F(ServiceTest, FaultSoakKeepsInvariantsUnderFlakyReads) {
  const char* soak = std::getenv("STACCATO_FAULT_SOAK");
  if (soak == nullptr || std::string(soak) != "1") {
    GTEST_SKIP() << "set STACCATO_FAULT_SOAK=1 to run the fault soak";
  }
  Session session(db_, SessionOptions{4, 50});
  QueryOptions q = SerialScanQuery();
  q.eval_threads = 4;
  auto pq = session.Prepare(Approach::kStaccato, q);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  auto want = pq->Execute(nullptr);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  util::FaultInjector::Global()->Seed(20260808);
  util::FaultRule flaky;
  flaky.op = util::FaultOp::kRead;
  flaky.path_substr = "blobs.";
  flaky.probability = 0.05;
  util::FaultInjector::Global()->Install(flaky);

  int completed = 0, failed = 0;
  for (int i = 0; i < 50; ++i) {
    ExecBudget budget;
    budget.max_io_retries = 3;
    QueryControl control(budget);
    QueryStats stats;
    auto got = pq->Execute(&control, &stats);
    if (got.ok()) {
      // Whatever retries it took, a completed query is bit-identical.
      ExpectSameAnswers(*want, *got, StringPrintf("soak round %d", i));
      ++completed;
    } else {
      // Retry budget exhausted: the underlying error, never a hang or a
      // torn answer.
      EXPECT_TRUE(got.status().IsIOError()) << got.status().ToString();
      ++failed;
    }
  }
  // With p=0.05 and 3 retries most queries complete; all 50 failing
  // would mean retries are not working at all.
  EXPECT_GT(completed, 0) << "completed=" << completed
                          << " failed=" << failed;
}

}  // namespace
}  // namespace rdbms
}  // namespace staccato
