#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "inference/kbest.h"
#include "inference/query_eval.h"
#include "ocr/generator.h"
#include "staccato/chunking.h"
#include "util/random.h"

namespace staccato {
namespace {

// The Figure-3 SFA: emits exactly "aef" and "abcd".
Sfa Figure3Sfa() {
  SfaBuilder b;
  NodeId n0 = b.AddNode(), n1 = b.AddNode(), n2 = b.AddNode(), n3 = b.AddNode(),
         n4 = b.AddNode(), n5 = b.AddNode();
  EXPECT_TRUE(b.AddTransition(n0, n1, "a", 1.0).ok());
  EXPECT_TRUE(b.AddTransition(n1, n2, "b", 0.6).ok());
  EXPECT_TRUE(b.AddTransition(n2, n3, "c", 1.0).ok());
  EXPECT_TRUE(b.AddTransition(n3, n5, "d", 1.0).ok());
  EXPECT_TRUE(b.AddTransition(n1, n4, "e", 0.4).ok());
  EXPECT_TRUE(b.AddTransition(n4, n5, "f", 1.0).ok());
  b.SetStart(n0);
  b.SetFinal(n5);
  return *b.Build(true);
}

std::map<std::string, double> StringsOf(const Sfa& sfa) {
  auto e = sfa.EnumerateStrings(1 << 22);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  std::map<std::string, double> out;
  if (!e.ok()) return out;
  for (auto& [s, p] : *e) out[s] += p;
  return out;
}

TEST(FindMinSfaTest, GoodMergeStaysSmall) {
  // Successive edges (1,2),(2,3): seed {1,2,3} is already a valid sub-SFA.
  Sfa sfa = Figure3Sfa();
  auto r = FindMinSfa(sfa, {1, 2, 3});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->nodes, std::set<NodeId>({1, 2, 3}));
  EXPECT_EQ(r->start, 1u);
  EXPECT_EQ(r->final, 3u);
}

TEST(FindMinSfaTest, BadMergeExpandsToGreatestCommonDescendant) {
  // Sibling edges (1,2),(1,4): no unique end node; Algorithm 1 finds the
  // greatest common descendant (node 5) and pulls in the path node 3.
  Sfa sfa = Figure3Sfa();
  auto r = FindMinSfa(sfa, {1, 2, 4});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->nodes, std::set<NodeId>({1, 2, 3, 4, 5}));
  EXPECT_EQ(r->start, 1u);
  EXPECT_EQ(r->final, 5u);
}

TEST(FindMinSfaTest, NoUniqueStartUsesLeastCommonAncestor) {
  // Figure 12(A): seed {3,4,5} has two minimal nodes (3 and 4); the LCA is
  // node 1 and the in-between node 2 is pulled in.
  Sfa sfa = Figure3Sfa();
  auto r = FindMinSfa(sfa, {3, 4, 5});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->nodes, std::set<NodeId>({1, 2, 3, 4, 5}));
  EXPECT_EQ(r->start, 1u);
  EXPECT_EQ(r->final, 5u);
}

TEST(FindMinSfaTest, ExternalEdgeOnInteriorNodePullsEndpoint) {
  // Figure 12(C): seed {0,1,2} has interior node 1 with external edge (1,4).
  Sfa sfa = Figure3Sfa();
  auto r = FindMinSfa(sfa, {0, 1, 2});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Pulling in node 4 forces the GCD expansion to node 5 (and node 3).
  EXPECT_EQ(r->nodes, std::set<NodeId>({0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(r->start, 0u);
  EXPECT_EQ(r->final, 5u);
}

TEST(FindMinSfaTest, RejectsEmptySeed) {
  Sfa sfa = Figure3Sfa();
  EXPECT_FALSE(FindMinSfa(sfa, {}).ok());
}

TEST(CollapseTest, GoodMergePreservesStrings) {
  Sfa sfa = Figure3Sfa();
  auto chunk = FindMinSfa(sfa, {1, 2, 3});
  ASSERT_TRUE(chunk.ok());
  auto collapsed = CollapseChunk(sfa, *chunk, /*k=*/2);
  ASSERT_TRUE(collapsed.ok()) << collapsed.status().ToString();
  // Figure 3(B): new edge (1,3) emits "bc"; the SFA still emits only aef
  // and abcd.
  EXPECT_EQ(StringsOf(*collapsed), StringsOf(sfa));
  EXPECT_EQ(collapsed->NumEdges(), 5u);
}

TEST(CollapseTest, BadMergeViaMinSfaPreservesStrings) {
  Sfa sfa = Figure3Sfa();
  auto chunk = FindMinSfa(sfa, {1, 2, 4});
  ASSERT_TRUE(chunk.ok());
  auto collapsed = CollapseChunk(sfa, *chunk, /*k=*/2);
  ASSERT_TRUE(collapsed.ok());
  // Figure 3(D): the whole middle collapses to edge (1,5) emitting ef, bcd.
  EXPECT_EQ(StringsOf(*collapsed), StringsOf(sfa));
  EXPECT_EQ(collapsed->NumEdges(), 2u);
}

TEST(CollapseTest, TopKPruningKeepsHighestMass) {
  Sfa sfa = Figure3Sfa();
  auto chunk = FindMinSfa(sfa, {1, 2, 4});
  ASSERT_TRUE(chunk.ok());
  auto collapsed = CollapseChunk(sfa, *chunk, /*k=*/1);
  ASSERT_TRUE(collapsed.ok());
  auto strings = StringsOf(*collapsed);
  // Only the higher-probability branch ("bcd", p = 0.6) survives.
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_NEAR(strings.begin()->second, 0.6, 1e-12);
  EXPECT_EQ(strings.begin()->first, "abcd");
}

TEST(ApproximateTest, M1EqualsKMap) {
  // With m = 1 the whole SFA collapses to one edge holding the top-k
  // strings — exactly the k-MAP representation.
  Sfa sfa = Figure3Sfa();
  for (size_t k : {1u, 2u}) {
    auto approx = ApproximateSfa(sfa, {1, k, true});
    ASSERT_TRUE(approx.ok());
    EXPECT_EQ(approx->NumEdges(), 1u);
    auto top = KBestStrings(sfa, k);
    auto strings = StringsOf(*approx);
    ASSERT_EQ(strings.size(), top.size());
    for (const auto& s : top) {
      ASSERT_TRUE(strings.count(s.str)) << s.str;
      EXPECT_NEAR(strings[s.str], s.prob, 1e-12);
    }
  }
}

TEST(ApproximateTest, LargeMKeepsEverything) {
  Sfa sfa = Figure3Sfa();
  auto approx = ApproximateSfa(sfa, {100, 100, true});
  ASSERT_TRUE(approx.ok());
  EXPECT_EQ(StringsOf(*approx), StringsOf(sfa));
}

TEST(ApproximateTest, EmittedStringsAreSubsetWithSameProbs) {
  Rng rng(5);
  OcrNoiseModel model;
  model.alternatives = 3;
  auto sfa = OcrLineToSfa("Pub Law 89", model, &rng);
  ASSERT_TRUE(sfa.ok());
  auto original = StringsOf(*sfa);
  for (size_t m : {1u, 3u, 6u}) {
    for (size_t k : {1u, 2u, 4u}) {
      ApproxStats stats;
      auto approx = ApproximateSfa(*sfa, {m, k, true}, &stats);
      ASSERT_TRUE(approx.ok()) << approx.status().ToString();
      EXPECT_LE(approx->NumEdges(), m);
      auto kept = StringsOf(*approx);
      double mass = 0;
      for (const auto& [s, p] : kept) {
        auto it = original.find(s);
        ASSERT_NE(it, original.end())
            << "approximation invented string '" << s << "'";
        EXPECT_NEAR(it->second, p, 1e-9);
        mass += p;
      }
      EXPECT_NEAR(stats.retained_mass, mass, 1e-9);
      EXPECT_LE(mass, 1.0 + 1e-9);
    }
  }
}

TEST(ApproximateTest, RetainedMassGrowsWithK) {
  Rng rng(11);
  OcrNoiseModel model;
  model.alternatives = 4;
  auto sfa = OcrLineToSfa("United States", model, &rng);
  ASSERT_TRUE(sfa.ok());
  double prev = -1;
  for (size_t k : {1u, 2u, 4u, 8u}) {
    ApproxStats stats;
    auto approx = ApproximateSfa(*sfa, {5, k, true}, &stats);
    ASSERT_TRUE(approx.ok());
    EXPECT_GE(stats.retained_mass, prev - 1e-9);
    prev = stats.retained_mass;
  }
}

TEST(ApproximateTest, UniquePathsPreserved) {
  Rng rng(13);
  OcrNoiseModel model;
  model.alternatives = 3;
  model.p_branch = 0.5;  // force diamonds
  auto sfa = OcrLineToSfa("firm words", model, &rng);
  ASSERT_TRUE(sfa.ok());
  ASSERT_TRUE(sfa->CheckUniquePaths().ok());
  auto approx = ApproximateSfa(*sfa, {4, 3, true});
  ASSERT_TRUE(approx.ok());
  EXPECT_TRUE(approx->CheckUniquePaths().ok());
}

TEST(ApproximateTest, CacheDoesNotChangeResult) {
  Rng rng(17);
  OcrNoiseModel model;
  model.alternatives = 3;
  auto sfa = OcrLineToSfa("Sec. 4 act", model, &rng);
  ASSERT_TRUE(sfa.ok());
  auto with_cache = ApproximateSfa(*sfa, {3, 2, true});
  auto without_cache = ApproximateSfa(*sfa, {3, 2, false});
  ASSERT_TRUE(with_cache.ok() && without_cache.ok());
  EXPECT_EQ(StringsOf(*with_cache), StringsOf(*without_cache));
}

TEST(ApproximateTest, StatsAreConsistent) {
  Rng rng(19);
  OcrNoiseModel model;
  model.alternatives = 3;
  auto sfa = OcrLineToSfa("lineage data", model, &rng);
  ASSERT_TRUE(sfa.ok());
  ApproxStats stats;
  auto approx = ApproximateSfa(*sfa, {4, 2, true}, &stats);
  ASSERT_TRUE(approx.ok());
  EXPECT_EQ(stats.input_edges, sfa->NumEdges());
  EXPECT_EQ(stats.output_edges, approx->NumEdges());
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_GT(stats.candidates_scored, 0u);
}

TEST(ApproximateTest, RejectsZeroParams) {
  Sfa sfa = Figure3Sfa();
  EXPECT_FALSE(ApproximateSfa(sfa, {0, 5, true}).ok());
  EXPECT_FALSE(ApproximateSfa(sfa, {5, 0, true}).ok());
}

TEST(ApproximateTest, QueryProbabilityNeverExceedsFullSfa) {
  // Pruning can only remove matching strings, so Pr[q] on the
  // approximation is a lower bound of Pr[q] on the full SFA.
  Rng rng(23);
  OcrNoiseModel model;
  model.alternatives = 4;
  auto sfa = OcrLineToSfa("Trio system", model, &rng);
  ASSERT_TRUE(sfa.ok());
  auto dfa = Dfa::Compile("Trio", MatchMode::kContains);
  ASSERT_TRUE(dfa.ok());
  double full = EvalSfaQuery(*sfa, *dfa);
  for (size_t m : {1u, 4u, 8u}) {
    auto approx = ApproximateSfa(*sfa, {m, 3, true});
    ASSERT_TRUE(approx.ok());
    EXPECT_LE(EvalSfaQuery(*approx, *dfa), full + 1e-9);
  }
}

TEST(ExtractChunkTest, ChunkIsValidSfa) {
  Sfa sfa = Figure3Sfa();
  auto chunk = FindMinSfa(sfa, {1, 2, 4});
  ASSERT_TRUE(chunk.ok());
  auto sub = ExtractChunk(sfa, *chunk);
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(sub->Validate().ok());
  auto strings = StringsOf(*sub);
  ASSERT_EQ(strings.size(), 2u);
  EXPECT_NEAR(strings["bcd"], 0.6, 1e-12);
  EXPECT_NEAR(strings["ef"], 0.4, 1e-12);
}

}  // namespace
}  // namespace staccato
