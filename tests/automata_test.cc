#include <gtest/gtest.h>

#include "automata/dfa.h"
#include "automata/pattern.h"
#include "automata/trie.h"

namespace staccato {
namespace {

TEST(PatternTest, ParsesKeyword) {
  auto p = Pattern::Parse("President");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->IsLiteral());
  EXPECT_EQ(p->LiteralPrefix(), "President");
  EXPECT_EQ(p->AnchorTerm(), "president");
}

TEST(PatternTest, ParsesDigitClass) {
  auto p = Pattern::Parse("U.S.C. 2\\d\\d\\d");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->IsLiteral());
  EXPECT_EQ(p->LiteralPrefix(), "U.S.C. 2");
  EXPECT_EQ(p->AnchorTerm(), "u.s.c.");
}

TEST(PatternTest, ParsesAlternation) {
  auto p = Pattern::Parse("Public Law (8|9)\\d");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->LiteralPrefix(), "Public Law ");
  EXPECT_EQ(p->AnchorTerm(), "public");
}

TEST(PatternTest, ParsesStar) {
  auto p = Pattern::Parse("Sec(\\x)*\\d");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->LiteralPrefix(), "Sec");
}

TEST(PatternTest, RejectsMalformed) {
  EXPECT_FALSE(Pattern::Parse("").ok());
  EXPECT_FALSE(Pattern::Parse("(ab").ok());
  EXPECT_FALSE(Pattern::Parse("ab)").ok());
  EXPECT_FALSE(Pattern::Parse("*ab").ok());
  EXPECT_FALSE(Pattern::Parse("a\\").ok());
  EXPECT_FALSE(Pattern::Parse("a|b").ok());  // top-level '|' needs a group
}

TEST(PatternTest, EscapedLiteral) {
  auto p = Pattern::Parse("a\\*b");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->IsLiteral());
  EXPECT_EQ(p->LiteralPrefix(), "a*b");
}

TEST(DfaExactTest, Keyword) {
  auto dfa = Dfa::Compile("Ford", MatchMode::kExact);
  ASSERT_TRUE(dfa.ok());
  EXPECT_TRUE(dfa->Matches("Ford"));
  EXPECT_FALSE(dfa->Matches("ford"));
  EXPECT_FALSE(dfa->Matches("Fordx"));
  EXPECT_FALSE(dfa->Matches("xFord"));
  EXPECT_FALSE(dfa->Matches(""));
}

TEST(DfaContainsTest, Keyword) {
  auto dfa = Dfa::Compile("Ford", MatchMode::kContains);
  ASSERT_TRUE(dfa.ok());
  EXPECT_TRUE(dfa->Matches("Ford"));
  EXPECT_TRUE(dfa->Matches("a Ford car"));
  EXPECT_TRUE(dfa->Matches("FoFord"));
  EXPECT_FALSE(dfa->Matches("F0rd"));
  EXPECT_FALSE(dfa->Matches("For"));
}

TEST(DfaContainsTest, AcceptIsAbsorbing) {
  auto dfa = Dfa::Compile("ab", MatchMode::kContains);
  ASSERT_TRUE(dfa.ok());
  DfaState s = dfa->Step(dfa->start(), "xxabyy");
  EXPECT_TRUE(dfa->IsAccept(s));
  // Once accepted, any continuation stays accepted.
  s = dfa->Step(s, "zzzz");
  EXPECT_TRUE(dfa->IsAccept(s));
}

TEST(DfaContainsTest, DigitWildcards) {
  auto dfa = Dfa::Compile("U.S.C. 2\\d\\d\\d", MatchMode::kContains);
  ASSERT_TRUE(dfa.ok());
  EXPECT_TRUE(dfa->Matches("see U.S.C. 2301 for details"));
  EXPECT_TRUE(dfa->Matches("U.S.C. 2999"));
  EXPECT_FALSE(dfa->Matches("U.S.C. 3301"));
  EXPECT_FALSE(dfa->Matches("U.S.C. 23a1"));
  EXPECT_FALSE(dfa->Matches("USC 2301"));
}

TEST(DfaContainsTest, Alternation) {
  auto dfa = Dfa::Compile("Public Law (8|9)\\d", MatchMode::kContains);
  ASSERT_TRUE(dfa.ok());
  EXPECT_TRUE(dfa->Matches("the Public Law 89 act"));
  EXPECT_TRUE(dfa->Matches("Public Law 97"));
  EXPECT_FALSE(dfa->Matches("Public Law 79"));
  EXPECT_FALSE(dfa->Matches("Public Law 8"));
}

TEST(DfaContainsTest, KleeneStar) {
  auto dfa = Dfa::Compile("Sec(\\x)*\\d", MatchMode::kContains);
  ASSERT_TRUE(dfa.ok());
  EXPECT_TRUE(dfa->Matches("Sec7"));
  EXPECT_TRUE(dfa->Matches("Sec. 4 says"));
  EXPECT_TRUE(dfa->Matches("Section number 9"));
  EXPECT_FALSE(dfa->Matches("Sec and nothing"));
  EXPECT_FALSE(dfa->Matches("sEc 4"));
}

TEST(DfaContainsTest, AnyCharRuns) {
  auto dfa = Dfa::Compile("\\x\\x\\x\\d\\d", MatchMode::kContains);
  ASSERT_TRUE(dfa.ok());
  EXPECT_TRUE(dfa->Matches("VLDB 04"));   // "DB 04"
  EXPECT_TRUE(dfa->Matches("abc12"));
  EXPECT_FALSE(dfa->Matches("ab12"));  // only two leading chars
  EXPECT_FALSE(dfa->Matches("abcd1"));  // only one trailing digit
}

TEST(DfaContainsTest, DigitsCanFillAnyWildcards) {
  auto dfa = Dfa::Compile("\\x\\x\\x\\d\\d", MatchMode::kContains);
  ASSERT_TRUE(dfa.ok());
  EXPECT_TRUE(dfa->Matches("12345"));
}

TEST(DfaTest, DeadStateIsAbsorbing) {
  auto dfa = Dfa::Compile("ab", MatchMode::kExact);
  ASSERT_TRUE(dfa.ok());
  DfaState s = dfa->Step(dfa->start(), "zz");
  EXPECT_EQ(s, kDfaDead);
  EXPECT_EQ(dfa->Next(s, 'a'), kDfaDead);
  EXPECT_FALSE(dfa->IsAccept(s));
}

TEST(DfaTest, EmptyStarMatchesEverythingInContainsMode) {
  auto dfa = Dfa::Compile("(\\x)*", MatchMode::kContains);
  ASSERT_TRUE(dfa.ok());
  EXPECT_TRUE(dfa->Matches(""));
  EXPECT_TRUE(dfa->Matches("anything"));
}

TEST(TrieTest, BuildAndFind) {
  auto trie = DictionaryTrie::Build({"public", "law", "president", "pub"});
  ASSERT_TRUE(trie.ok());
  EXPECT_EQ(trie->NumTerms(), 4u);
  EXPECT_NE(trie->Find("public"), kInvalidTerm);
  EXPECT_NE(trie->Find("pub"), kInvalidTerm);
  EXPECT_EQ(trie->Find("publ"), kInvalidTerm);
  EXPECT_EQ(trie->Find("absent"), kInvalidTerm);
}

TEST(TrieTest, CaseInsensitive) {
  auto trie = DictionaryTrie::Build({"Public"});
  ASSERT_TRUE(trie.ok());
  EXPECT_NE(trie->Find("PUBLIC"), kInvalidTerm);
  EXPECT_NE(trie->Find("public"), kInvalidTerm);
}

TEST(TrieTest, StepSemantics) {
  auto trie = DictionaryTrie::Build({"ab"});
  ASSERT_TRUE(trie.ok());
  int32_t s = trie->Step(trie->root(), 'a');
  ASSERT_NE(s, DictionaryTrie::kDead);
  EXPECT_EQ(trie->TermAt(s), kInvalidTerm);
  s = trie->Step(s, 'b');
  ASSERT_NE(s, DictionaryTrie::kDead);
  EXPECT_NE(trie->TermAt(s), kInvalidTerm);
  EXPECT_EQ(trie->Step(s, 'c'), DictionaryTrie::kDead);
}

TEST(TrieTest, DuplicatesCollapse) {
  auto trie = DictionaryTrie::Build({"law", "Law", "LAW"});
  ASSERT_TRUE(trie.ok());
  EXPECT_EQ(trie->NumTerms(), 1u);
}

TEST(TrieTest, RejectsEmptyTerm) {
  EXPECT_FALSE(DictionaryTrie::Build({"ok", ""}).ok());
}

TEST(DictionaryFromCorpusTest, HarvestsWords) {
  auto dict = BuildDictionaryFromCorpus(
      {"The President signed Public Law 89", "public welfare act"});
  // Lower-cased, deduplicated, words of length >= 3 only.
  EXPECT_NE(std::find(dict.begin(), dict.end(), "president"), dict.end());
  EXPECT_NE(std::find(dict.begin(), dict.end(), "public"), dict.end());
  EXPECT_EQ(std::count(dict.begin(), dict.end(), "public"), 1);
  EXPECT_EQ(std::find(dict.begin(), dict.end(), "89"), dict.end());
}

TEST(CharSetTest, Basics) {
  CharSet digits = CharSet::Digits();
  EXPECT_TRUE(digits.Test('5'));
  EXPECT_FALSE(digits.Test('a'));
  EXPECT_EQ(digits.Count(), 10u);
  CharSet any = CharSet::Any();
  EXPECT_EQ(any.Count(), static_cast<size_t>(kAlphabetSize));
  EXPECT_TRUE(any.Test(' '));
  EXPECT_TRUE(any.Test('~'));
}

}  // namespace
}  // namespace staccato
