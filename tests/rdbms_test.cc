#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>

#include <sys/resource.h>

#include "rdbms/blob_store.h"
#include "rdbms/btree.h"
#include "rdbms/heap_table.h"
#include "rdbms/page.h"
#include "rdbms/value.h"
#include "util/random.h"
#include "util/strings.h"

namespace staccato::rdbms {
namespace {

std::string TempPath(const std::string& name) {
  auto dir = std::filesystem::temp_directory_path() / "staccato_rdbms_test";
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Int(-5).AsInt(), -5);
  EXPECT_EQ(Value::Double(0.5).AsDouble(), 0.5);
  EXPECT_EQ(Value::String("x").AsString(), "x");
  EXPECT_EQ(Value::Blob(9).AsBlobId(), 9u);
  EXPECT_EQ(Value::Int(1).type(), ValueType::kInt);
  EXPECT_EQ(Value::Blob(1).type(), ValueType::kBlobId);
  EXPECT_NE(Value::Int(1), Value::Double(1.0));
}

TEST(SchemaTest, CheckTuple) {
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kString}});
  EXPECT_TRUE(s.CheckTuple({Value::Int(1), Value::String("x")}).ok());
  EXPECT_FALSE(s.CheckTuple({Value::Int(1)}).ok());
  EXPECT_FALSE(s.CheckTuple({Value::String("x"), Value::Int(1)}).ok());
  EXPECT_EQ(s.FindColumn("b"), 1);
  EXPECT_EQ(s.FindColumn("zz"), -1);
}

TEST(SchemaTest, TupleRoundTrip) {
  Schema s({{"i", ValueType::kInt},
            {"d", ValueType::kDouble},
            {"t", ValueType::kString},
            {"o", ValueType::kBlobId}});
  Tuple in = {Value::Int(-42), Value::Double(2.5), Value::String("hello world"),
              Value::Blob(777)};
  BinaryWriter w;
  s.EncodeTuple(in, &w);
  BinaryReader r(w.buffer());
  auto out = s.DecodeTuple(&r);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, in);
}

TEST(SlottedPageTest, InsertAndGet) {
  SlottedPage page;
  auto s1 = page.Insert("hello");
  auto s2 = page.Insert("world!");
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(*page.Get(*s1), "hello");
  EXPECT_EQ(*page.Get(*s2), "world!");
  EXPECT_EQ(page.NumSlots(), 2u);
}

TEST(SlottedPageTest, FillsUntilFull) {
  SlottedPage page;
  std::string rec(100, 'x');
  size_t count = 0;
  while (page.Fits(rec.size())) {
    ASSERT_TRUE(page.Insert(rec).ok());
    ++count;
  }
  EXPECT_GT(count, 70u);
  EXPECT_TRUE(page.Insert(rec).status().IsOutOfRange());
  // Everything still readable.
  for (uint16_t i = 0; i < page.NumSlots(); ++i) {
    EXPECT_EQ(page.Get(i)->size(), rec.size());
  }
}

TEST(SlottedPageTest, RejectsOversized) {
  SlottedPage page;
  std::string rec(kPageSize, 'x');
  EXPECT_TRUE(page.Insert(rec).status().IsInvalidArgument());
}

TEST(SlottedPageTest, GetBadSlotFails) {
  SlottedPage page;
  EXPECT_TRUE(page.Get(0).status().IsNotFound());
}

TEST(HeapTableTest, InsertScanGet) {
  Schema schema({{"k", ValueType::kInt}, {"v", ValueType::kString}});
  auto table = HeapTable::Create(TempPath("t1.tbl"), schema);
  ASSERT_TRUE(table.ok());
  std::vector<RecordId> rids;
  for (int i = 0; i < 1000; ++i) {
    auto rid = (*table)->Insert(
        {Value::Int(i), Value::String(StringPrintf("row-%d", i))});
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  EXPECT_EQ((*table)->NumTuples(), 1000u);
  EXPECT_GT((*table)->NumPages(), 1u);
  // Point lookups.
  auto t500 = (*table)->Get(rids[500]);
  ASSERT_TRUE(t500.ok());
  EXPECT_EQ((*t500)[1].AsString(), "row-500");
  // Full scan sees every row in order.
  int expect = 0;
  ASSERT_TRUE((*table)
                  ->Scan([&](RecordId, const Tuple& t) {
                    EXPECT_EQ(t[0].AsInt(), expect++);
                    return true;
                  })
                  .ok());
  EXPECT_EQ(expect, 1000);
}

TEST(HeapTableTest, ScanEarlyStop) {
  Schema schema({{"k", ValueType::kInt}});
  auto table = HeapTable::Create(TempPath("t2.tbl"), schema);
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*table)->Insert({Value::Int(i)}).ok());
  }
  int seen = 0;
  ASSERT_TRUE(
      (*table)->Scan([&](RecordId, const Tuple&) { return ++seen < 10; }).ok());
  EXPECT_EQ(seen, 10);
}

TEST(HeapTableTest, PersistsAcrossReopen) {
  Schema schema({{"k", ValueType::kInt}, {"v", ValueType::kString}});
  std::string path = TempPath("t3.tbl");
  {
    auto table = HeapTable::Create(path, schema);
    ASSERT_TRUE(table.ok());
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE((*table)->Insert({Value::Int(i), Value::String("abc")}).ok());
    }
    ASSERT_TRUE((*table)->Flush().ok());
  }
  auto reopened = HeapTable::Open(path, schema);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->NumTuples(), 500u);
  int count = 0;
  ASSERT_TRUE((*reopened)
                  ->Scan([&](RecordId, const Tuple& t) {
                    EXPECT_EQ(t[1].AsString(), "abc");
                    ++count;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(count, 500);
}

TEST(HeapTableTest, BufferPoolEviction) {
  Schema schema({{"k", ValueType::kInt}, {"v", ValueType::kString}});
  // Tiny pool of 2 pages forces eviction traffic.
  auto table = HeapTable::Create(TempPath("t4.tbl"), schema, /*pool_pages=*/2);
  ASSERT_TRUE(table.ok());
  std::string payload(500, 'p');
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE((*table)->Insert({Value::Int(i), Value::String(payload)}).ok());
  }
  EXPECT_GT((*table)->NumPages(), 10u);
  // Scanning with a cold-ish pool must still return every tuple intact.
  int count = 0;
  ASSERT_TRUE((*table)
                  ->Scan([&](RecordId, const Tuple& t) {
                    EXPECT_EQ(t[1].AsString(), payload);
                    ++count;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(count, 200);
  EXPECT_GT((*table)->io_stats().page_misses, 0u);
}

TEST(BlobStoreTest, PutGetRoundTrip) {
  auto store = BlobStore::Create(TempPath("b1.dat"));
  ASSERT_TRUE(store.ok());
  auto id1 = (*store)->Put("first blob");
  auto id2 = (*store)->Put(std::string(100000, 'z'));
  auto id3 = (*store)->Put("");
  ASSERT_TRUE(id1.ok() && id2.ok() && id3.ok());
  EXPECT_EQ(*(*store)->Get(*id1), "first blob");
  EXPECT_EQ((*store)->Get(*id2)->size(), 100000u);
  EXPECT_EQ(*(*store)->Get(*id3), "");
  EXPECT_TRUE((*store)->Get(999999999).status().IsNotFound());
}

TEST(BlobStoreTest, TracksBytesRead) {
  auto store = BlobStore::Create(TempPath("b2.dat"));
  ASSERT_TRUE(store.ok());
  auto id = (*store)->Put(std::string(1000, 'a'));
  ASSERT_TRUE(id.ok());
  (*store)->ResetStats();
  ASSERT_TRUE((*store)->Get(*id).ok());
  EXPECT_EQ((*store)->bytes_read(), 1000u + sizeof(uint64_t));
}

TEST(BlobStoreTest, GetAndGetIntoReportIdenticalIoStats) {
  // Regression: every read path must count the same way — one `reads`
  // and header+payload `bytes_read` per blob served, whether the caller
  // used Get, GetInto, or a cacheless GetCached.
  auto store = BlobStore::Create(TempPath("b3.dat"));
  ASSERT_TRUE(store.ok());
  auto id = (*store)->Put(std::string(500, 'q'));
  ASSERT_TRUE(id.ok());
  const uint64_t expect_bytes = 500u + sizeof(uint64_t);

  (*store)->ResetStats();
  ASSERT_TRUE((*store)->Get(*id).ok());
  BlobIoStats via_get = (*store)->io_stats();
  EXPECT_EQ(via_get.reads, 1u);
  EXPECT_EQ(via_get.bytes_read, expect_bytes);

  (*store)->ResetStats();
  std::string buf;
  ASSERT_TRUE((*store)->GetInto(*id, &buf).ok());
  BlobIoStats via_into = (*store)->io_stats();
  EXPECT_EQ(via_into.reads, via_get.reads);
  EXPECT_EQ(via_into.bytes_read, via_get.bytes_read);

  (*store)->ResetStats();
  auto handle = (*store)->GetCached(*id, cache::CacheKey{1, 2, 3});
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->value(), buf);
  BlobIoStats via_cached = (*store)->io_stats();
  EXPECT_EQ(via_cached.reads, via_get.reads);
  EXPECT_EQ(via_cached.bytes_read, via_get.bytes_read);
  // No cache attached: nothing to hit or miss.
  EXPECT_EQ(via_cached.cache_hits, 0u);
  EXPECT_EQ(via_cached.cache_misses, 0u);
}

TEST(BlobStoreTest, GetCachedServesFromBufferCache) {
  auto store = BlobStore::Create(TempPath("b4.dat"));
  ASSERT_TRUE(store.ok());
  auto id = (*store)->Put(std::string(300, 'c'));
  ASSERT_TRUE(id.ok());
  cache::BufferCache cache(1 << 20);
  (*store)->set_cache(&cache);
  const cache::CacheKey key{9, 1, 1};

  (*store)->ResetStats();
  auto miss = (*store)->GetCached(id.ValueOrDie(), key);
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->value().size(), 300u);
  BlobIoStats after_miss = (*store)->io_stats();
  EXPECT_EQ(after_miss.reads, 1u);
  EXPECT_EQ(after_miss.cache_misses, 1u);
  EXPECT_EQ(after_miss.bytes_read, 300u + sizeof(uint64_t));

  auto hit = (*store)->GetCached(id.ValueOrDie(), key);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->value(), miss->value());
  BlobIoStats after_hit = (*store)->io_stats();
  EXPECT_EQ(after_hit.reads, 2u);
  EXPECT_EQ(after_hit.cache_hits, 1u);
  // The hit served no physical bytes.
  EXPECT_EQ(after_hit.bytes_read, after_miss.bytes_read);

  // A different version word misses: generation-bump invalidation.
  (*store)->ResetStats();
  auto bumped = (*store)->GetCached(id.ValueOrDie(),
                                    cache::CacheKey{9, 1, 2});
  ASSERT_TRUE(bumped.ok());
  EXPECT_EQ((*store)->io_stats().cache_misses, 1u);
}

TEST(HeapTableTest, SharedPageCacheServesEvictedPages) {
  Schema schema({{"k", ValueType::kInt}, {"v", ValueType::kString}});
  cache::BufferCache cache(4 << 20);
  // Tiny pool so the scan constantly misses its first tier.
  auto table = HeapTable::Create(TempPath("t5.tbl"), schema, /*pool_pages=*/2);
  ASSERT_TRUE(table.ok());
  (*table)->SetSharedCache(&cache);
  std::string payload(500, 's');
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE((*table)->Insert({Value::Int(i), Value::String(payload)}).ok());
  }
  ASSERT_TRUE((*table)->Flush().ok());
  ASSERT_GT((*table)->NumPages(), 10u);

  // Pool evictions wrote every page through to the shared cache, so a
  // full scan never needs disk — and still sees every tuple intact.
  (*table)->ResetIoStats();
  int count = 0;
  ASSERT_TRUE((*table)
                  ->Scan([&](RecordId, const Tuple& t) {
                    EXPECT_EQ(t[1].AsString(), payload);
                    ++count;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(count, 200);
  IoStats warm = (*table)->io_stats();
  EXPECT_EQ(warm.page_misses, 0u) << "shared cache should have served these";
  EXPECT_EQ(warm.bytes_read, 0u);
  EXPECT_GT(warm.cache_hits, 0u);

  // EvictAll must cool BOTH tiers: the same scan then reads from disk.
  ASSERT_TRUE((*table)->EvictAll().ok());
  (*table)->ResetIoStats();
  count = 0;
  ASSERT_TRUE((*table)
                  ->Scan([&](RecordId, const Tuple& t) {
                    EXPECT_EQ(t[1].AsString(), payload);
                    ++count;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(count, 200);
  IoStats cold = (*table)->io_stats();
  EXPECT_GT(cold.page_misses, 0u);
  EXPECT_EQ(cold.cache_hits, 0u);
}

// Regression for a swallowed write-back error: EvictAll used to call
// FlushLocked() and throw the status away, so a failed dirty-page write
// dropped the only good copy of the page — the next read silently served
// stale bytes from disk. With [[nodiscard]] Status plumbed through,
// EvictAll must surface the failure instead. The failure is forced with
// RLIMIT_FSIZE: the heap file cannot grow past one page, so writing back
// dirty page 1 fails deterministically.
TEST(HeapTableTest, EvictAllSurfacesWriteBackFailure) {
  Schema schema({{"k", ValueType::kInt}, {"v", ValueType::kString}});
  auto table = HeapTable::Create(TempPath("t6.tbl"), schema);
  ASSERT_TRUE(table.ok());
  std::string payload(500, 'e');
  // Three pages of dirty frames, none written back yet (pool holds them).
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE((*table)->Insert({Value::Int(i), Value::String(payload)}).ok());
  }
  ASSERT_GT((*table)->NumPages(), 2u);

  // Cap the file at one page. Writes past the cap raise SIGXFSZ (fatal by
  // default) and then fail with EFBIG once ignored.
  auto* old_handler = std::signal(SIGXFSZ, SIG_IGN);
  struct rlimit old_limit;
  ASSERT_EQ(getrlimit(RLIMIT_FSIZE, &old_limit), 0);
  struct rlimit capped = old_limit;
  capped.rlim_cur = kPageSize;
  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &capped), 0);

  Status st = (*table)->EvictAll();

  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &old_limit), 0);
  std::signal(SIGXFSZ, old_handler);

  EXPECT_FALSE(st.ok()) << "a failed write-back must not be swallowed";
  EXPECT_TRUE(st.IsIOError()) << st.ToString();

  // And with the limit restored the data is still recoverable: the dirty
  // frames were not dropped on the failure path.
  ASSERT_TRUE((*table)->EvictAll().ok());
  auto tuple = (*table)->Get(RecordId{2, 0});
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ((*tuple)[1].AsString(), payload);
}

TEST(BPlusTreeTest, InsertLookup) {
  BPlusTree tree;
  tree.Insert("beta", 2);
  tree.Insert("alpha", 1);
  tree.Insert("gamma", 3);
  EXPECT_EQ(tree.Lookup("alpha"), std::vector<uint64_t>{1});
  EXPECT_EQ(tree.Lookup("beta"), std::vector<uint64_t>{2});
  EXPECT_TRUE(tree.Lookup("zeta").empty());
  EXPECT_EQ(tree.size(), 3u);
}

TEST(BPlusTreeTest, Duplicates) {
  BPlusTree tree;
  for (uint64_t i = 0; i < 50; ++i) tree.Insert("dup", i);
  tree.Insert("other", 99);
  auto vals = tree.Lookup("dup");
  EXPECT_EQ(vals.size(), 50u);
}

TEST(BPlusTreeTest, ManyKeysSplitCorrectly) {
  BPlusTree tree;
  Rng rng(4);
  std::vector<std::string> keys;
  for (int i = 0; i < 5000; ++i) {
    keys.push_back(StringPrintf("key-%05d", static_cast<int>(rng.UniformInt(0, 99999))));
    tree.Insert(keys.back(), static_cast<uint64_t>(i));
  }
  EXPECT_GT(tree.height(), 1);
  // Every inserted key must be findable.
  for (const std::string& k : keys) {
    EXPECT_FALSE(tree.Lookup(k).empty()) << k;
  }
  // Full scan is sorted and complete.
  std::string prev;
  size_t n = 0;
  tree.ScanAll([&](const std::string& k, uint64_t) {
    EXPECT_GE(k, prev);
    prev = k;
    ++n;
    return true;
  });
  EXPECT_EQ(n, 5000u);
}

TEST(BPlusTreeTest, DuplicateRunStraddlingLeaves) {
  BPlusTree tree;
  // Surround a large duplicate run with other keys so the run splits
  // across leaves.
  for (int i = 0; i < 200; ++i) tree.Insert(StringPrintf("a%03d", i), 0);
  for (uint64_t i = 0; i < 300; ++i) tree.Insert("mmm", i);
  for (int i = 0; i < 200; ++i) tree.Insert(StringPrintf("z%03d", i), 0);
  EXPECT_EQ(tree.Lookup("mmm").size(), 300u);
  // CountKey (the planner's posting-count accessor) agrees with Lookup
  // without materializing values, including across leaf boundaries.
  EXPECT_EQ(tree.CountKey("mmm"), 300u);
  EXPECT_EQ(tree.CountKey("a000"), 1u);
  EXPECT_EQ(tree.CountKey("absent"), 0u);
}

TEST(BPlusTreeTest, ScanRange) {
  BPlusTree tree;
  for (int i = 0; i < 100; ++i) {
    tree.Insert(StringPrintf("k%03d", i), static_cast<uint64_t>(i));
  }
  std::vector<uint64_t> seen;
  tree.ScanRange("k010", "k020", [&](const std::string&, uint64_t v) {
    seen.push_back(v);
    return true;
  });
  ASSERT_EQ(seen.size(), 10u);
  EXPECT_EQ(seen.front(), 10u);
  EXPECT_EQ(seen.back(), 19u);
}

TEST(BPlusTreeTest, NumDistinctKeys) {
  BPlusTree tree;
  for (uint64_t i = 0; i < 10; ++i) tree.Insert("a", i);
  tree.Insert("b", 0);
  EXPECT_EQ(tree.NumDistinctKeys(), 2u);
}

}  // namespace
}  // namespace staccato::rdbms
