// Tests for the unified parallel execution layer: the ThreadPool /
// ParallelFor substrate (util/parallel.h), concurrent PreparedQuery
// execution against one StaccatoDb (the storage layer's concurrent-read
// contract), and batched multi-query execution.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "eval/workbench.h"
#include "rdbms/session.h"
#include "rdbms/staccato_db.h"
#include "util/parallel.h"

namespace staccato {
namespace {

using eval::Workbench;
using eval::WorkbenchSpec;
using rdbms::Approach;
using rdbms::BatchStats;
using rdbms::IndexMode;
using rdbms::PreparedQuery;
using rdbms::QueryOptions;
using rdbms::QueryStats;
using rdbms::Session;
using rdbms::SessionOptions;

// ---- ParallelFor / ParallelMap / ThreadPool -------------------------------

TEST(ParallelForTest, EmptyRangeNeverCallsTheBody) {
  std::atomic<size_t> calls{0};
  Status st = ParallelFor(0, 1, [&](size_t) -> Status {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ParallelForWorkerTest, WorkerIdsAreStableSlotsWithinBounds) {
  constexpr size_t kN = 500;
  constexpr size_t kThreads = 4;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  // Record which worker slot visited each index; ids must stay < kThreads
  // and distinct concurrent calls must never share a slot — that is what
  // lets callers index per-worker scratch without locking.
  std::vector<std::atomic<int>> owner(kN);
  for (auto& o : owner) o.store(-1);
  std::vector<std::atomic<int>> in_flight(kThreads);
  for (auto& f : in_flight) f.store(0);
  std::atomic<bool> overlap{false};
  Status st = ParallelForWorker(
      kN, /*grain=*/1,
      [&](size_t worker, size_t i) -> Status {
        if (worker >= kThreads) overlap.store(true);
        if (in_flight[worker].fetch_add(1) != 0) overlap.store(true);
        hits[i].fetch_add(1);
        owner[i].store(static_cast<int>(worker));
        in_flight[worker].fetch_sub(1);
        return Status::OK();
      },
      {kThreads});
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(overlap.load()) << "two concurrent calls shared a worker slot";
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
    EXPECT_GE(owner[i].load(), 0) << i;
  }
}

TEST(ParallelForWorkerTest, SerialRegionRunsAsWorkerZeroInOrder) {
  std::vector<size_t> seen;
  Status st = ParallelForWorker(
      8, /*grain=*/1,
      [&](size_t worker, size_t i) -> Status {
        EXPECT_EQ(worker, 0u);
        seen.push_back(i);
        return Status::OK();
      },
      {/*threads=*/1});
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(seen.size(), 8u);
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(ParallelForWorkerTest, ErrorStopsTheRegion) {
  std::atomic<size_t> calls{0};
  Status st = ParallelForWorker(
      1000, /*grain=*/1,
      [&](size_t, size_t i) -> Status {
        calls.fetch_add(1);
        if (i == 17) return Status::InvalidArgument("boom");
        return Status::OK();
      },
      {/*threads=*/4});
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_LT(calls.load(), 1000u) << "failure did not stop the region";
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr size_t kN = 1000;
  for (size_t grain : {size_t{1}, size_t{3}, size_t{64}}) {
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h.store(0);
    Status st = ParallelFor(
        kN, grain,
        [&](size_t i) -> Status {
          hits[i].fetch_add(1);
          return Status::OK();
        },
        {/*threads=*/8});
    ASSERT_TRUE(st.ok());
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
    }
  }
}

TEST(ParallelForTest, GrainLargerThanRangeRunsInlineInOrder) {
  std::vector<size_t> order;
  Status st = ParallelFor(
      5, /*grain=*/100,
      [&](size_t i) -> Status {
        order.push_back(i);  // safe: single chunk == single worker
        return Status::OK();
      },
      {/*threads=*/8});
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, OneThreadRunsInlineInOrder) {
  std::vector<size_t> order;
  Status st = ParallelFor(
      6, 1,
      [&](size_t i) -> Status {
        order.push_back(i);
        return Status::OK();
      },
      {/*threads=*/1});
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(ParallelForTest, FirstErrorStopsTheRegionAndIsReturned) {
  // Serial: exact first-failure semantics.
  std::atomic<size_t> calls{0};
  Status st = ParallelFor(
      100, 1,
      [&](size_t i) -> Status {
        ++calls;
        if (i == 3) return Status::InvalidArgument("boom");
        return Status::OK();
      },
      {/*threads=*/1});
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(calls.load(), 4u);

  // Parallel: some failure is reported; the region does not run to
  // completion once a worker fails.
  Status par = ParallelFor(
      10000, 1,
      [&](size_t i) -> Status {
        if (i % 7 == 0) return Status::Internal("worker failure");
        return Status::OK();
      },
      {/*threads=*/8});
  EXPECT_FALSE(par.ok());
  EXPECT_TRUE(par.IsInternal());
}

TEST(ParallelForTest, PoolIsReusedAcrossRegions) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.capacity(), 4u);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    Status st = ParallelFor(
        257, 8,
        [&](size_t i) -> Status {
          sum.fetch_add(i);
          return Status::OK();
        },
        {/*threads=*/0, &pool});
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(sum.load(), 257u * 256u / 2u) << "round " << round;
  }
}

TEST(ParallelForTest, NestedRegionsOnPoolWorkersRunInline) {
  // A ParallelFor issued from inside a pool task must not deadlock waiting
  // on helpers queued behind the task itself.
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  Status st = ParallelFor(
      8, 1,
      [&](size_t) -> Status {
        return ParallelFor(
            16, 1,
            [&](size_t) -> Status {
              total.fetch_add(1);
              return Status::OK();
            },
            {/*threads=*/4, &pool});
      },
      {/*threads=*/4, &pool});
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(total.load(), 8u * 16u);
}

TEST(ParallelMapTest, GathersResultsPositionally) {
  auto r = ParallelMap<size_t>(
      100, 3, [](size_t i) -> Result<size_t> { return i * i; },
      {/*threads=*/8});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 100u);
  for (size_t i = 0; i < r->size(); ++i) EXPECT_EQ((*r)[i], i * i);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
  EXPECT_GE(ThreadPool::Shared().capacity(), 1u);
}

// ---- Concurrent query execution over one database -------------------------

WorkbenchSpec StressSpec() {
  WorkbenchSpec spec;
  spec.corpus.kind = DatasetKind::kCongressActs;
  spec.corpus.num_pages = 2;
  spec.corpus.lines_per_page = 25;
  spec.corpus.seed = 77;
  spec.noise.alternatives = 6;
  spec.load.kmap_k = 8;
  spec.load.staccato = {20, 8, true};
  spec.build_index = true;
  return spec;
}

void ExpectSameAnswers(const std::vector<Answer>& a,
                       const std::vector<Answer>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].doc, b[i].doc) << "rank " << i;
    EXPECT_EQ(a[i].prob, b[i].prob) << "rank " << i;  // bit-identical
  }
}

TEST(ParallelQueryStressTest, ConcurrentExecutesMatchSerialBaseline) {
  auto wb = Workbench::Create(StressSpec());
  ASSERT_TRUE(wb.ok()) << wb.status().ToString();
  Session session(&(*wb)->db());

  const std::vector<std::string> patterns = {"President", "Congress", "act",
                                             "United States", "law", "section"};
  struct Shape {
    Approach approach;
    IndexMode mode;
  };
  const std::vector<Shape> shapes = {
      {Approach::kMap, IndexMode::kNever},
      {Approach::kKMap, IndexMode::kNever},
      {Approach::kFullSfa, IndexMode::kNever},
      {Approach::kStaccato, IndexMode::kNever},
      {Approach::kStaccato, IndexMode::kAuto},
  };

  // Serial baseline: every (pattern, shape) with one thread.
  std::vector<std::vector<Answer>> baseline;
  for (const std::string& pat : patterns) {
    for (const Shape& sh : shapes) {
      QueryOptions q;
      q.pattern = pat;
      q.index_mode = sh.mode;
      q.eval_threads = 1;
      auto pq = session.Prepare(sh.approach, q);
      ASSERT_TRUE(pq.ok()) << pq.status().ToString();
      auto ans = pq->Execute();
      ASSERT_TRUE(ans.ok()) << ans.status().ToString();
      baseline.push_back(std::move(*ans));
    }
  }

  // Many threads, each owning its own PreparedQuery for one (pattern,
  // shape), all executing repeatedly against the one database — parallel
  // Eval enabled so pool-backed regions from several callers interleave.
  constexpr int kRepeats = 3;
  std::vector<PreparedQuery> queries;
  for (const std::string& pat : patterns) {
    for (const Shape& sh : shapes) {
      QueryOptions q;
      q.pattern = pat;
      q.index_mode = sh.mode;
      q.eval_threads = 4;
      auto pq = session.Prepare(sh.approach, q);
      ASSERT_TRUE(pq.ok()) << pq.status().ToString();
      queries.push_back(std::move(*pq));
    }
  }
  std::vector<std::vector<std::vector<Answer>>> got(
      queries.size(), std::vector<std::vector<Answer>>(kRepeats));
  std::vector<Status> errors(queries.size(), Status::OK());
  {
    std::vector<std::thread> runners;
    runners.reserve(queries.size());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      runners.emplace_back([&, qi] {
        for (int r = 0; r < kRepeats; ++r) {
          auto ans = queries[qi].Execute();
          if (!ans.ok()) {
            errors[qi] = ans.status();
            return;
          }
          got[qi][r] = std::move(*ans);
        }
      });
    }
    for (auto& t : runners) t.join();
  }
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    ASSERT_TRUE(errors[qi].ok()) << errors[qi].ToString();
    for (int r = 0; r < kRepeats; ++r) {
      ExpectSameAnswers(got[qi][r], baseline[qi]);
    }
  }
}

// ---- Batched execution -----------------------------------------------------

TEST(ExecuteBatchTest, EmptyBatchAndBadInputs) {
  auto wb = Workbench::Create(StressSpec());
  ASSERT_TRUE(wb.ok());
  Session session(&(*wb)->db());
  auto empty = session.ExecuteBatch({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_TRUE(
      session.ExecuteBatch({nullptr}).status().IsInvalidArgument());
}

TEST(ExecuteBatchTest, SharedFetchServesDuplicateCandidatesOnce) {
  auto wb = Workbench::Create(StressSpec());
  ASSERT_TRUE(wb.ok());
  Session session(&(*wb)->db());
  // Two full-scan Staccato queries have identical candidate sets; the
  // shared Fetch pass must read each doc's blob once, not twice.
  std::vector<QueryOptions> qs(2);
  qs[0].pattern = "President";
  qs[0].index_mode = IndexMode::kNever;
  qs[1].pattern = "Congress";
  qs[1].index_mode = IndexMode::kNever;
  auto batch = session.PrepareBatch(Approach::kStaccato, qs);
  ASSERT_TRUE(batch.ok());
  std::vector<PreparedQuery*> ptrs{&(*batch)[0], &(*batch)[1]};
  BatchStats stats;
  auto results = session.ExecuteBatch(ptrs, &stats);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.distinct_docs_fetched, (*wb)->db().NumSfas());
  EXPECT_EQ(stats.total_candidates, 2 * (*wb)->db().NumSfas());
  EXPECT_TRUE(stats.per_query[0].shared_candidate_pass);
  EXPECT_EQ(stats.per_query[0].batch_size, 2u);
}

}  // namespace
}  // namespace staccato
