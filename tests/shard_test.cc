// Differential property tests for corpus sharding (rdbms/shard.h).
//
// The invariant under test: a ShardedDb answers every query bit-identically
// to the single-partition StaccatoDb holding the same dataset — the same
// ranked documents with exactly equal probabilities — for every shard
// count (1/2/4/7), eval thread count (1/4/8), early-stop setting, and
// threshold-forwarding setting, including Append/Checkpoint interleavings,
// reopen with per-shard WAL replay, and batched execution. Concurrent
// Executes race against Append under the TSan CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eval/workbench.h"
#include "ocr/corpus.h"
#include "ocr/generator.h"
#include "rdbms/session.h"
#include "rdbms/shard.h"
#include "rdbms/staccato_db.h"
#include "util/strings.h"

namespace staccato {
namespace rdbms {
namespace {

CorpusSpec SmallSpec() {
  CorpusSpec spec;
  spec.kind = DatasetKind::kCongressActs;
  spec.num_pages = 2;
  spec.lines_per_page = 12;
  spec.max_line_chars = 40;
  spec.seed = 777;
  return spec;
}

OcrNoiseModel Noise() {
  OcrNoiseModel noise;
  noise.alternatives = 6;
  return noise;
}

LoadOptions SmallLoad() {
  LoadOptions opts;
  opts.kmap_k = 8;
  opts.staccato.m = 16;
  opts.staccato.k = 8;
  return opts;
}

/// Mirrors what Load() derives for document i (see ingest_test.cc).
DocumentInput InputFor(const OcrDataset& d, size_t i) {
  DocumentInput in;
  const uint32_t page = d.corpus.page_of_line[i];
  in.doc_name = StringPrintf("%s-page-%u", d.corpus.name.c_str(), page);
  in.year = 2010 + page;
  in.truth = d.corpus.lines[i];
  in.sfa = d.sfas[i];
  return in;
}

OcrDataset Prefix(const OcrDataset& d, size_t n) {
  OcrDataset p;
  p.corpus.name = d.corpus.name;
  p.corpus.num_pages = d.corpus.num_pages;
  p.corpus.lines.assign(d.corpus.lines.begin(), d.corpus.lines.begin() + n);
  p.corpus.page_of_line.assign(d.corpus.page_of_line.begin(),
                               d.corpus.page_of_line.begin() + n);
  p.sfas.assign(d.sfas.begin(), d.sfas.begin() + n);
  return p;
}

template <typename Db>
std::vector<Answer> RunQuery(Db* db, Approach approach,
                             const std::string& pattern, size_t threads,
                             bool early_stop, QueryStats* stats = nullptr) {
  Session session(db, SessionOptions{threads, 50});
  QueryOptions q;
  q.pattern = pattern;
  q.num_ans = 50;
  q.eval_threads = threads;
  q.early_stop = early_stop;
  auto pq = session.Prepare(approach, q);
  EXPECT_TRUE(pq.ok()) << pq.status().ToString();
  if (!pq.ok()) return {};
  auto ans = pq->Execute(stats);
  EXPECT_TRUE(ans.ok()) << ans.status().ToString();
  return ans.ok() ? *ans : std::vector<Answer>{};
}

void ExpectSameAnswers(const std::vector<Answer>& want,
                       const std::vector<Answer>& got, const std::string& what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].doc, got[i].doc) << what << " rank " << i;
    EXPECT_EQ(want[i].prob, got[i].prob)
        << what << " rank " << i << " (must be bit-identical)";
  }
}

/// Shared corpus + single-partition oracle, built once for the suite.
class ShardTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto data = GenerateOcrDataset(SmallSpec(), Noise());
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    dataset_ = new OcrDataset(std::move(*data));
    auto oracle = StaccatoDb::Open(eval::MakeScratchDir("shard_oracle"));
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    oracle_ = oracle->release();
    ASSERT_TRUE(oracle_->Load(*dataset_, SmallLoad()).ok());
    ASSERT_TRUE(
        oracle_->BuildInvertedIndex(DatasetQueries(DatasetKind::kCongressActs))
            .ok());
  }
  static void TearDownTestSuite() {
    delete oracle_;
    oracle_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static std::vector<std::string> Patterns() {
    std::vector<std::string> qs = DatasetQueries(DatasetKind::kCongressActs);
    return {qs[0], qs[1]};
  }

  static OcrDataset* dataset_;
  static StaccatoDb* oracle_;
};

OcrDataset* ShardTest::dataset_ = nullptr;
StaccatoDb* ShardTest::oracle_ = nullptr;

TEST_F(ShardTest, ShardDirAndPartitionAreStable) {
  EXPECT_EQ(ShardDirName("/tmp/db", 3), "/tmp/db/shard.3");
  EXPECT_EQ(ShardOfDoc(42, 1), 0u);
  for (size_t n : {2u, 4u, 7u}) {
    for (DocId g = 0; g < 100; ++g) {
      size_t s = ShardOfDoc(g, n);
      EXPECT_LT(s, n);
      EXPECT_EQ(s, ShardOfDoc(g, n)) << "placement must be deterministic";
    }
  }
}

TEST_F(ShardTest, AnswersBitIdenticalAcrossShardThreadEarlyStopMatrix) {
  const auto patterns = Patterns();
  for (size_t shards : {1u, 2u, 4u, 7u}) {
    auto db = ShardedDb::Open(
        eval::MakeScratchDir(StringPrintf("shard_inv_%zu", shards)),
        ShardConfig{shards, cache::CacheConfig()});
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_EQ((*db)->num_shards(), shards);
    ASSERT_TRUE((*db)->Load(*dataset_, SmallLoad()).ok());
    ASSERT_TRUE((*db)
                    ->BuildInvertedIndex(
                        DatasetQueries(DatasetKind::kCongressActs))
                    .ok());
    ASSERT_EQ((*db)->NumSfas(), oracle_->NumSfas());
    for (Approach approach :
         {Approach::kMap, Approach::kKMap, Approach::kStaccato}) {
      for (size_t threads : {1u, 4u, 8u}) {
        for (bool early_stop : {true, false}) {
          for (const std::string& pat : patterns) {
            auto want = RunQuery(oracle_, approach, pat, threads, early_stop);
            auto got = RunQuery(db->get(), approach, pat, threads, early_stop);
            ExpectSameAnswers(
                want, got,
                StringPrintf("%s shards=%zu threads=%zu early=%d",
                             pat.c_str(), shards, threads, early_stop ? 1 : 0));
          }
        }
      }
    }
    // Ground truth remaps to the same global ids.
    auto truth_want = oracle_->GroundTruthFor(patterns[0]);
    auto truth_got = (*db)->GroundTruthFor(patterns[0]);
    ASSERT_TRUE(truth_want.ok());
    ASSERT_TRUE(truth_got.ok()) << truth_got.status().ToString();
    EXPECT_EQ(*truth_want, *truth_got);
  }
}

TEST_F(ShardTest, ThresholdForwardingIsAnswerNeutral) {
  auto db = ShardedDb::Open(eval::MakeScratchDir("shard_fwd"),
                            ShardConfig{4, cache::CacheConfig()});
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Load(*dataset_, SmallLoad()).ok());
  for (const std::string& pat : Patterns()) {
    (*db)->set_forward_threshold(true);
    QueryStats fwd_stats;
    auto fwd = RunQuery(db->get(), Approach::kStaccato, pat, 4, true,
                        &fwd_stats);
    (*db)->set_forward_threshold(false);
    auto solo = RunQuery(db->get(), Approach::kStaccato, pat, 4, true);
    ExpectSameAnswers(fwd, solo, "forwarding on vs off: " + pat);
    // Per-shard breakdown reaches the stats and the Explain rendering.
    ASSERT_EQ(fwd_stats.shards.size(), 4u);
    Session session(db->get(), SessionOptions{1, 50});
    QueryOptions q;
    q.pattern = pat;
    auto pq = session.Prepare(Approach::kStaccato, q);
    ASSERT_TRUE(pq.ok());
    std::string rendered = ExplainPlan(pq->plan(), fwd_stats);
    EXPECT_NE(rendered.find("Shards: 4"), std::string::npos) << rendered;
    EXPECT_NE(rendered.find("shard 3:"), std::string::npos) << rendered;
  }
}

TEST_F(ShardTest, AppendCheckpointInterleavingsMatchBulkLoad) {
  const size_t total = dataset_->sfas.size();
  const size_t base = total / 2;
  auto db = ShardedDb::Open(eval::MakeScratchDir("shard_ingest"),
                            ShardConfig{4, cache::CacheConfig()});
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Load(Prefix(*dataset_, base), SmallLoad()).ok());
  for (size_t i = base; i < total; ++i) {
    ASSERT_TRUE((*db)->Append(InputFor(*dataset_, i)).ok()) << i;
    if (i == base + (total - base) / 2) {
      ASSERT_TRUE((*db)->Checkpoint().ok());
    }
  }
  ASSERT_EQ((*db)->NumSfas(), oracle_->NumSfas());
  for (const std::string& pat : Patterns()) {
    auto want = RunQuery(oracle_, Approach::kStaccato, pat, 4, true);
    auto got = RunQuery(db->get(), Approach::kStaccato, pat, 4, true);
    ExpectSameAnswers(want, got, "append+checkpoint: " + pat);
  }
  auto truth_want = oracle_->GroundTruthFor(Patterns()[0]);
  auto truth_got = (*db)->GroundTruthFor(Patterns()[0]);
  ASSERT_TRUE(truth_want.ok());
  ASSERT_TRUE(truth_got.ok());
  EXPECT_EQ(*truth_want, *truth_got);
}

TEST_F(ShardTest, ReopenReplaysEveryShardWal) {
  const std::string dir = eval::MakeScratchDir("shard_reopen");
  const size_t total = dataset_->sfas.size();
  const size_t base = total - 5;
  {
    auto db = ShardedDb::Open(dir, ShardConfig{3, cache::CacheConfig()});
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Load(Prefix(*dataset_, base), SmallLoad()).ok());
    // Uncheckpointed appends: recovery must come from each shard's WAL.
    for (size_t i = base; i < total; ++i) {
      ASSERT_TRUE((*db)->Append(InputFor(*dataset_, i)).ok());
    }
  }  // destructor: no checkpoint, WALs hold the tail
  // Reopening with the wrong shard count must refuse.
  auto wrong = ShardedDb::OpenExisting(dir, ShardConfig{5});
  EXPECT_FALSE(wrong.ok());
  auto db = ShardedDb::OpenExisting(dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->num_shards(), 3u);
  ASSERT_EQ((*db)->NumSfas(), oracle_->NumSfas());
  for (const std::string& pat : Patterns()) {
    auto want = RunQuery(oracle_, Approach::kKMap, pat, 4, true);
    auto got = RunQuery(db->get(), Approach::kKMap, pat, 4, true);
    ExpectSameAnswers(want, got, "reopen-replay: " + pat);
  }
}

TEST_F(ShardTest, ExecuteBatchMatchesSoloExecutes) {
  auto db = ShardedDb::Open(eval::MakeScratchDir("shard_batch"),
                            ShardConfig{4, cache::CacheConfig()});
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Load(*dataset_, SmallLoad()).ok());
  Session session(db->get(), SessionOptions{2, 50});
  std::vector<QueryOptions> qs;
  for (const std::string& pat : Patterns()) {
    QueryOptions q;
    q.pattern = pat;
    q.num_ans = 50;
    qs.push_back(q);
  }
  auto prepared = session.PrepareBatch(Approach::kStaccato, qs);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  std::vector<PreparedQuery*> ptrs;
  for (PreparedQuery& pq : *prepared) ptrs.push_back(&pq);
  BatchStats bstats;
  auto batched = session.ExecuteBatch(ptrs, &bstats);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ASSERT_EQ(batched->size(), qs.size());
  EXPECT_EQ(bstats.queries, qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    auto solo = RunQuery(db->get(), Approach::kStaccato, qs[i].pattern, 2,
                         true);
    ExpectSameAnswers(solo, (*batched)[i], "batch member " + qs[i].pattern);
    EXPECT_EQ(bstats.per_query[i].shards.size(), 4u);
  }
}

// Regression: the batch path used to fold per-shard stats through its own
// ad-hoc loop that dropped the cache/io counters from the ShardStats rows.
// Both solo ExecuteSharded and ExecuteBatchSharded now route through the
// one audited FoldShardStats, so the batch rows must carry the same
// counter set the solo rows do.
TEST_F(ShardTest, BatchFoldPreservesPerShardCounters) {
  auto db = ShardedDb::Open(eval::MakeScratchDir("shard_fold"),
                            ShardConfig{4, cache::CacheConfig()});
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Load(*dataset_, SmallLoad()).ok());
  Session session(db->get(), SessionOptions{2, 50});
  QueryOptions q;
  q.pattern = Patterns()[0];
  q.num_ans = 50;
  // Solo run: the oracle for which row fields must be populated.
  QueryStats solo_stats;
  (void)RunQuery(db->get(), Approach::kStaccato, q.pattern, 2, true,
                 &solo_stats);
  ASSERT_EQ(solo_stats.shards.size(), 4u);
  // Batch of one: same plan, batch fold path.
  auto prepared = session.PrepareBatch(Approach::kStaccato, {q});
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  std::vector<PreparedQuery*> ptrs = {&(*prepared)[0]};
  BatchStats bstats;
  auto batched = session.ExecuteBatch(ptrs, &bstats);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ASSERT_EQ(bstats.per_query.size(), 1u);
  const QueryStats& bq = bstats.per_query[0];
  ASSERT_EQ(bq.shards.size(), 4u);
  uint64_t solo_blob = 0, batch_blob = 0, solo_pages = 0, batch_pages = 0;
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(bq.shards[s].shard, s);
    EXPECT_EQ(bq.shards[s].candidates, solo_stats.shards[s].candidates)
        << "shard " << s;
    solo_blob += solo_stats.shards[s].blob_bytes_read;
    batch_blob += bq.shards[s].blob_bytes_read;
    solo_pages += solo_stats.shards[s].heap_pages_read;
    batch_pages += bq.shards[s].heap_pages_read;
  }
  // The solo run did physical work (cold DB); the batch rows must report
  // the same classes of counters rather than silently dropping them.
  // Exact equality is not required (the solo run warmed the cache), but a
  // batch row set that sums to zero while the top-level counters are
  // non-zero is precisely the dropped-counters bug.
  if (bq.blob_bytes_read > 0) EXPECT_GT(batch_blob, 0u);
  if (bq.heap_pages_read > 0) EXPECT_GT(batch_pages, 0u);
  // Cross-check the fold itself: top-level totals equal the row sums.
  EXPECT_EQ(bq.blob_bytes_read, batch_blob);
  EXPECT_EQ(bq.heap_pages_read, batch_pages);
  uint64_t row_hits = 0, row_misses = 0;
  for (const ShardStats& row : bq.shards) {
    row_hits += row.cache_hits;
    row_misses += row.cache_misses;
  }
  EXPECT_EQ(bq.cache_hits, row_hits);
  EXPECT_EQ(bq.cache_misses, row_misses);
  // Solo totals fold identically (both paths share FoldShardStats).
  uint64_t solo_row_hits = 0;
  for (const ShardStats& row : solo_stats.shards) solo_row_hits += row.cache_hits;
  EXPECT_EQ(solo_stats.cache_hits, solo_row_hits);
  (void)solo_blob;
  (void)solo_pages;
}

TEST_F(ShardTest, ConcurrentExecutesRaceAppendsSafely) {
  auto db = ShardedDb::Open(eval::MakeScratchDir("shard_race"),
                            ShardConfig{4, cache::CacheConfig()});
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const size_t base = dataset_->sfas.size() - 6;
  ASSERT_TRUE((*db)->Load(Prefix(*dataset_, base), SmallLoad()).ok());
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  // Query threads: separate PreparedQuery objects, concurrent Executes.
  for (size_t t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      Session session(db->get(), SessionOptions{2, 25});
      QueryOptions q;
      q.pattern = Patterns()[t % Patterns().size()];
      q.num_ans = 25;
      auto pq = session.Prepare(Approach::kStaccato, q);
      if (!pq.ok()) {
        failed = true;
        return;
      }
      for (int iter = 0; iter < 8; ++iter) {
        if (!pq->Execute().ok()) failed = true;
      }
    });
  }
  // Ingest thread: appends race the executes.
  workers.emplace_back([&] {
    for (size_t i = base; i < dataset_->sfas.size(); ++i) {
      if (!(*db)->Append(InputFor(*dataset_, i)).ok()) failed = true;
    }
  });
  for (std::thread& w : workers) w.join();
  EXPECT_FALSE(failed.load());
  // Quiesced: the grown database answers like the oracle.
  ASSERT_EQ((*db)->NumSfas(), oracle_->NumSfas());
  for (const std::string& pat : Patterns()) {
    auto want = RunQuery(oracle_, Approach::kStaccato, pat, 2, true);
    auto got = RunQuery(db->get(), Approach::kStaccato, pat, 2, true);
    ExpectSameAnswers(want, got, "post-race: " + pat);
  }
}

}  // namespace
}  // namespace rdbms
}  // namespace staccato
