// Tests for the sharded memory-budgeted buffer cache (src/cache): LRU
// eviction order under budget pressure, pin-blocks-evict with strict
// budget accounting, key/namespace invalidation, and concurrent mixed
// traffic (raced under the TSan CI job).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "cache/buffer_cache.h"
#include "util/parallel.h"
#include "util/random.h"

namespace staccato::cache {
namespace {

using Handle = BufferCache::Handle;

CacheKey Key(uint64_t id, uint64_t space = 1, uint64_t version = 0) {
  return CacheKey{space, id, version};
}

/// Budget that fits exactly `n` entries of `value_bytes` each in a
/// single-shard cache.
size_t BudgetFor(size_t n, size_t value_bytes) {
  return n * (value_bytes + BufferCache::kEntryOverhead);
}

TEST(BufferCacheTest, LookupMissThenInsertThenHit) {
  BufferCache cache(1 << 20, /*shards=*/1);
  EXPECT_FALSE(cache.Lookup(Key(1)));
  {
    Handle h = cache.Insert(Key(1), "payload");
    ASSERT_TRUE(h);
    EXPECT_EQ(h.value(), "payload");
  }
  Handle h = cache.Lookup(Key(1));
  ASSERT_TRUE(h);
  EXPECT_EQ(h.value(), "payload");
  CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes_in_use, 7u + BufferCache::kEntryOverhead);
}

TEST(BufferCacheTest, EvictsLeastRecentlyUsedUnderBudgetPressure) {
  const std::string v(100, 'x');
  BufferCache cache(BudgetFor(2, v.size()), /*shards=*/1);
  cache.Insert(Key(1), v);
  cache.Insert(Key(2), v);
  // Touch 1 so 2 becomes the coldest.
  ASSERT_TRUE(cache.Lookup(Key(1)));
  cache.Insert(Key(3), v);  // budget fits two: evicts 2, not 1
  EXPECT_TRUE(cache.Lookup(Key(1)));
  EXPECT_FALSE(cache.Lookup(Key(2)));
  EXPECT_TRUE(cache.Lookup(Key(3)));
  CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_LE(s.bytes_in_use, cache.budget_bytes());
}

TEST(BufferCacheTest, PinnedEntriesBlockEvictionAndBudgetHolds) {
  const std::string v(100, 'p');
  BufferCache cache(BudgetFor(1, v.size()), /*shards=*/1);
  Handle pin = cache.Insert(Key(1), v);  // pinned: budget now full
  ASSERT_TRUE(pin);

  // A second insert cannot evict the pinned entry; it must be refused
  // (detached handle) rather than blow the budget.
  Handle overflow = cache.Insert(Key(2), v);
  ASSERT_TRUE(overflow);  // the caller still gets its bytes...
  EXPECT_EQ(overflow.value(), v);
  EXPECT_FALSE(cache.Lookup(Key(2)));  // ...but they were not cached
  CacheStats s = cache.stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.pinned_entries, 1u);
  EXPECT_LE(s.bytes_in_use, cache.budget_bytes());
  EXPECT_EQ(pin.value(), v);  // the pinned bytes never moved

  // Releasing the pin makes the entry evictable: the next insert evicts
  // it and is cached.
  pin.Reset();
  Handle h3 = cache.Insert(Key(3), v);
  ASSERT_TRUE(h3);
  EXPECT_FALSE(cache.Lookup(Key(1)));
  h3.Reset();
  EXPECT_TRUE(cache.Lookup(Key(3)));
  EXPECT_LE(cache.stats().bytes_in_use, cache.budget_bytes());
}

TEST(BufferCacheTest, ValueLargerThanShardBudgetIsServedDetached) {
  BufferCache cache(BudgetFor(2, 100), /*shards=*/1);
  cache.Insert(Key(7), std::string(100, 'k'));  // resident bystander
  std::string big(64 * 1024, 'b');
  Handle h = cache.Insert(Key(1), big);
  ASSERT_TRUE(h);
  EXPECT_EQ(h.value(), big);
  EXPECT_FALSE(cache.Lookup(Key(1)));
  // The hopeless insert is refused up front — it must not have flushed
  // the shard's resident entries on the way to failing.
  EXPECT_TRUE(cache.Lookup(Key(7)));
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().rejected, 1u);
}

TEST(BufferCacheTest, InsertReplacesExistingKey) {
  BufferCache cache(1 << 20, /*shards=*/1);
  cache.Insert(Key(1), "old");
  cache.Insert(Key(1), "new");
  Handle h = cache.Lookup(Key(1));
  ASSERT_TRUE(h);
  EXPECT_EQ(h.value(), "new");
  CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes_in_use, 3u + BufferCache::kEntryOverhead);
}

TEST(BufferCacheTest, ReplacedEntryStaysValidWhilePinned) {
  BufferCache cache(1 << 20, /*shards=*/1);
  Handle old = cache.Insert(Key(1), "old");
  cache.Insert(Key(1), "new");
  // The old pin still reads its own bytes; new lookups see the new value.
  EXPECT_EQ(old.value(), "old");
  EXPECT_EQ(cache.Lookup(Key(1)).value(), "new");
}

TEST(BufferCacheTest, EraseAndEraseSpaceAndClear) {
  BufferCache cache(1 << 20, /*shards=*/4);
  cache.Insert(Key(1, /*space=*/7), "a");
  cache.Insert(Key(2, /*space=*/7), "b");
  cache.Insert(Key(1, /*space=*/9), "c");
  cache.Erase(Key(1, 7));
  EXPECT_FALSE(cache.Lookup(Key(1, 7)));
  EXPECT_TRUE(cache.Lookup(Key(2, 7)));
  cache.EraseSpace(7);
  EXPECT_FALSE(cache.Lookup(Key(2, 7)));
  EXPECT_TRUE(cache.Lookup(Key(1, 9)));
  cache.Clear();
  EXPECT_FALSE(cache.Lookup(Key(1, 9)));
  EXPECT_EQ(cache.stats().bytes_in_use, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(BufferCacheTest, VersionedKeysNeverMatchOtherVersions) {
  // The invalidation contract: a key carries its data version (load
  // generation), so bumping the version makes every old entry unreachable
  // without any explicit flush.
  BufferCache cache(1 << 20);
  cache.Insert(Key(5, 1, /*version=*/1), "gen1");
  EXPECT_FALSE(cache.Lookup(Key(5, 1, /*version=*/2)));
  cache.Insert(Key(5, 1, /*version=*/2), "gen2");
  EXPECT_EQ(cache.Lookup(Key(5, 1, 1)).value(), "gen1");
  EXPECT_EQ(cache.Lookup(Key(5, 1, 2)).value(), "gen2");
}

TEST(BufferCacheTest, BudgetNeverExceededUnderRandomTraffic) {
  const size_t kBudget = 64 * 1024;
  BufferCache cache(kBudget, /*shards=*/4);
  Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    uint64_t id = static_cast<uint64_t>(rng.UniformInt(0, 200));
    size_t len = static_cast<size_t>(rng.UniformInt(1, 4096));
    if (rng.UniformInt(0, 3) == 0) {
      cache.Lookup(Key(id));
    } else {
      Handle h = cache.Insert(Key(id), std::string(len, 'r'));
      ASSERT_TRUE(h);
      ASSERT_EQ(h.value().size(), len);
    }
    ASSERT_LE(cache.stats().bytes_in_use, kBudget) << "after op " << i;
  }
  CacheStats s = cache.stats();
  EXPECT_GT(s.evictions, 0u) << "budget pressure never evicted anything";
  EXPECT_GT(s.hits, 0u);
}

TEST(BufferCacheTest, DetachedHandleOwnsItsBytes) {
  Handle h = BufferCache::Detached("standalone");
  ASSERT_TRUE(h);
  EXPECT_EQ(h.value(), "standalone");
  Handle moved = std::move(h);
  EXPECT_FALSE(h);
  EXPECT_EQ(moved.value(), "standalone");
}

TEST(BufferCacheTest, ConcurrentMixedGetInsertEvictIsSafe) {
  // Hammered under ThreadSanitizer in CI: a small budget forces constant
  // eviction while readers pin, verify, and release entries, and writers
  // insert/erase over a shared key range.
  const size_t kBudget = 32 * 1024;
  BufferCache cache(kBudget, /*shards=*/4);
  const size_t kOps = 2000;
  std::atomic<uint64_t> verified{0};
  Status st = ParallelFor(
      kOps, /*grain=*/1,
      [&](size_t i) -> Status {
        Rng rng(static_cast<uint64_t>(i) * 2654435761u + 17);
        uint64_t id = static_cast<uint64_t>(rng.UniformInt(0, 40));
        switch (rng.UniformInt(0, 4)) {
          case 0:
          case 1: {
            Handle h = cache.Lookup(Key(id));
            if (h) {
              // Pinned bytes must be stable: every entry for `id` holds
              // id+1 bytes of the same letter.
              if (h.value().size() != id + 1) {
                return Status::Internal("pinned value changed size");
              }
              verified.fetch_add(1, std::memory_order_relaxed);
            }
            return Status::OK();
          }
          case 2:
          case 3: {
            Handle h = cache.Insert(
                Key(id),
                std::string(id + 1, static_cast<char>('a' + id % 26)));
            if (!h || h.value().size() != id + 1) {
              return Status::Internal("insert lost its bytes");
            }
            return Status::OK();
          }
          default:
            cache.Erase(Key(id));
            return Status::OK();
        }
      },
      ParallelOptions{4});
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_LE(cache.stats().bytes_in_use, kBudget);
  EXPECT_GT(verified.load(), 0u);
}

TEST(CacheConfigTest, DefaultHonorsEnvOverride) {
  // No env manipulation here (tests run in parallel); just the parsing
  // invariants of the default path.
  CacheConfig cfg = CacheConfig::Default();
  // Either untouched default or whatever the environment pinned — both
  // are legal; the knob itself is exercised end-to-end by the bench.
  (void)cfg;
  CacheConfig fixed;
  EXPECT_EQ(fixed.budget_bytes, CacheConfig::kDefaultBudgetBytes);
  EXPECT_EQ(fixed.shards, 0u);
}

TEST(BufferCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  BufferCache cache(1 << 20, /*shards=*/5);
  EXPECT_EQ(cache.num_shards(), 8u);
  BufferCache one(1 << 20, /*shards=*/1);
  EXPECT_EQ(one.num_shards(), 1u);
}

TEST(BufferCacheTest, SequentialScanDoesNotFlushReReferencedWorkingSet) {
  // Scan resistance (segmented LRU): a working set that has been
  // re-referenced — each entry hit at least once after insertion — must
  // survive a sequential flood of single-touch entries many times the
  // budget, because never-re-referenced entries churn the probation
  // segment only. Under the old single-list LRU this flood evicted the
  // hot set every time (0% hit rate on the next pass).
  const std::string v(1000, 'b');
  const size_t kBudgetEntries = 16;
  BufferCache cache(BudgetFor(kBudgetEntries, v.size()), /*shards=*/1);
  const size_t kHot = 4;  // well under the protected segment's half-budget
  for (uint64_t i = 0; i < kHot; ++i) cache.Insert(Key(i), v);
  for (uint64_t i = 0; i < kHot; ++i) {
    ASSERT_TRUE(cache.Lookup(Key(i)));  // re-reference: promote
  }
  // Flood: 10x the budget in distinct keys, each inserted once and never
  // touched again (the access pattern of a cold sequential shard scan).
  for (uint64_t i = 0; i < 10 * kBudgetEntries; ++i) {
    cache.Insert(Key(1000 + i), v);
  }
  for (uint64_t i = 0; i < kHot; ++i) {
    EXPECT_TRUE(cache.Lookup(Key(i))) << "hot entry " << i << " was flushed";
  }
  // The budget still holds throughout.
  EXPECT_LE(cache.stats().bytes_in_use,
            BudgetFor(kBudgetEntries, v.size()));
}

TEST(BufferCacheTest, ProtectedSegmentOverflowDemotesNotEvicts) {
  // Promoting more than the protected segment can hold (half the shard
  // budget) must demote its coldest entries back to probation rather
  // than evict them: they are still resident until budget pressure from
  // new inserts ages them out.
  const std::string v(1000, 'd');
  const size_t kEntries = 8;
  BufferCache cache(BudgetFor(kEntries, v.size()), /*shards=*/1);
  for (uint64_t i = 0; i < kEntries; ++i) cache.Insert(Key(i), v);
  // Promote everything: the protected segment (4 entries' worth) cannot
  // hold all 8, so the coldest promotions cascade back to probation.
  for (uint64_t i = 0; i < kEntries; ++i) {
    ASSERT_TRUE(cache.Lookup(Key(i)));
  }
  CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, kEntries);  // demotion never drops an entry
  // One new insert evicts exactly one resident entry (a demoted one),
  // and the most recently promoted entries survive in the protected set.
  cache.Insert(Key(100), v);
  EXPECT_TRUE(cache.Lookup(Key(kEntries - 1)));
  EXPECT_TRUE(cache.Lookup(Key(kEntries - 2)));
}

}  // namespace
}  // namespace staccato::cache
