#include <gtest/gtest.h>

#include "indexing/index_builder.h"
#include "indexing/projection.h"
#include "inference/query_eval.h"
#include "ocr/generator.h"
#include "staccato/chunking.h"
#include "util/random.h"

namespace staccato {
namespace {

// Chain SFA emitting exactly one string (useful to pin down postings).
Sfa SingleStringSfa(const std::string& s) {
  SfaBuilder b;
  NodeId first = b.AddNodes(s.size() + 1);
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_TRUE(b.AddTransition(static_cast<NodeId>(first + i),
                                static_cast<NodeId>(first + i + 1),
                                std::string(1, s[i]), 1.0)
                    .ok());
  }
  b.SetStart(first);
  b.SetFinal(static_cast<NodeId>(first + s.size()));
  return *b.Build(true);
}

TEST(PostingTest, PackUnpackRoundTrip) {
  Posting p{12345, 67, 89};
  Posting q = UnpackPosting(PackPosting(p));
  EXPECT_EQ(p, q);
}

TEST(IndexBuilderTest, FindsTermsOnChain) {
  Sfa sfa = SingleStringSfa("the public law about public welfare");
  auto dict = DictionaryTrie::Build({"public", "law", "welfare"});
  ASSERT_TRUE(dict.ok());
  auto postings = BuildPostings(sfa, *dict);
  ASSERT_TRUE(postings.ok());
  TermId pub = dict->Find("public");
  TermId law = dict->Find("law");
  TermId wel = dict->Find("welfare");
  ASSERT_TRUE(postings->count(pub));
  EXPECT_EQ((*postings)[pub].size(), 2u);  // two occurrences
  EXPECT_EQ((*postings)[law].size(), 1u);
  EXPECT_EQ((*postings)[wel].size(), 1u);
  // Chain SFA: each edge holds one character; the posting edge id equals
  // the character offset of the occurrence.
  EXPECT_EQ((*postings)[pub][0].edge, 4u);
  EXPECT_EQ((*postings)[pub][1].edge, 21u);
}

TEST(IndexBuilderTest, CaseInsensitive) {
  Sfa sfa = SingleStringSfa("Public LAW");
  auto dict = DictionaryTrie::Build({"public", "law"});
  ASSERT_TRUE(dict.ok());
  auto postings = BuildPostings(sfa, *dict);
  ASSERT_TRUE(postings.ok());
  EXPECT_EQ(postings->size(), 2u);
}

TEST(IndexBuilderTest, TermStraddlingEdges) {
  // After collapsing, labels are multi-character; a term can straddle the
  // boundary between two edges. "pub" ends on edge 0, "lic" begins edge 1.
  SfaBuilder b;
  NodeId a = b.AddNode(), m = b.AddNode(), f = b.AddNode();
  ASSERT_TRUE(b.AddTransition(a, m, "the pub", 0.7).ok());
  ASSERT_TRUE(b.AddTransition(a, m, "xxx xxx", 0.3).ok());
  ASSERT_TRUE(b.AddTransition(m, f, "lic act", 0.6).ok());
  ASSERT_TRUE(b.AddTransition(m, f, "yyy yyy", 0.4).ok());
  b.SetStart(a);
  b.SetFinal(f);
  auto sfa = b.Build(true);
  ASSERT_TRUE(sfa.ok());
  auto dict = DictionaryTrie::Build({"public", "act"});
  ASSERT_TRUE(dict.ok());
  auto postings = BuildPostings(*sfa, *dict);
  ASSERT_TRUE(postings.ok());
  TermId pub = dict->Find("public");
  ASSERT_TRUE(postings->count(pub)) << "straddling term missed";
  ASSERT_EQ((*postings)[pub].size(), 1u);
  // The posting records where the term *starts*: edge 0, path 0, offset 4.
  EXPECT_EQ((*postings)[pub][0], (Posting{0, 0, 4}));
  TermId act = dict->Find("act");
  ASSERT_TRUE(postings->count(act));
  EXPECT_EQ((*postings)[act][0], (Posting{1, 0, 4}));
}

TEST(IndexBuilderTest, TermAcrossThreeEdges) {
  SfaBuilder b;
  NodeId n0 = b.AddNode(), n1 = b.AddNode(), n2 = b.AddNode(), n3 = b.AddNode();
  ASSERT_TRUE(b.AddTransition(n0, n1, "pu", 1.0).ok());
  ASSERT_TRUE(b.AddTransition(n1, n2, "bl", 1.0).ok());
  ASSERT_TRUE(b.AddTransition(n2, n3, "ic", 1.0).ok());
  b.SetStart(n0);
  b.SetFinal(n3);
  auto sfa = b.Build(true);
  ASSERT_TRUE(sfa.ok());
  auto dict = DictionaryTrie::Build({"public"});
  ASSERT_TRUE(dict.ok());
  auto postings = BuildPostings(*sfa, *dict);
  ASSERT_TRUE(postings.ok());
  ASSERT_EQ(postings->size(), 1u);
  EXPECT_EQ(postings->begin()->second[0], (Posting{0, 0, 0}));
}

TEST(IndexBuilderTest, BranchingPathsBothIndexed) {
  // Both alternatives of a branch contain different dictionary terms.
  SfaBuilder b;
  NodeId a = b.AddNode(), f = b.AddNode();
  ASSERT_TRUE(b.AddTransition(a, f, "law", 0.6).ok());
  ASSERT_TRUE(b.AddTransition(a, f, "act", 0.4).ok());
  b.SetStart(a);
  b.SetFinal(f);
  auto sfa = b.Build(true);
  ASSERT_TRUE(sfa.ok());
  auto dict = DictionaryTrie::Build({"law", "act"});
  ASSERT_TRUE(dict.ok());
  auto postings = BuildPostings(*sfa, *dict);
  ASSERT_TRUE(postings.ok());
  EXPECT_EQ(postings->size(), 2u);
  EXPECT_EQ((*postings)[dict->Find("law")][0], (Posting{0, 0, 0}));
  EXPECT_EQ((*postings)[dict->Find("act")][0], (Posting{0, 1, 0}));
}

TEST(IndexBuilderTest, NoFalsePostings) {
  Sfa sfa = SingleStringSfa("nothing matches here");
  auto dict = DictionaryTrie::Build({"public", "law"});
  ASSERT_TRUE(dict.ok());
  auto postings = BuildPostings(sfa, *dict);
  ASSERT_TRUE(postings.ok());
  EXPECT_TRUE(postings->empty());
}

TEST(IndexBuilderTest, WorksOnOcrAndStaccatoRepresentations) {
  Rng rng(42);
  OcrNoiseModel model;
  model.alternatives = 6;
  model.p_error = 0.0;  // truth is the MAP, so the term is surely present
  auto sfa = OcrLineToSfa("the public law stands", model, &rng);
  ASSERT_TRUE(sfa.ok());
  auto dict = DictionaryTrie::Build({"public"});
  ASSERT_TRUE(dict.ok());
  auto full = BuildPostings(*sfa, *dict);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->empty());
  auto approx = ApproximateSfa(*sfa, {8, 4, true});
  ASSERT_TRUE(approx.ok());
  auto chunked = BuildPostings(*approx, *dict);
  ASSERT_TRUE(chunked.ok());
  EXPECT_FALSE(chunked->empty()) << "term lost after chunking";
}

TEST(IndexBuilderTest, StatsPopulated) {
  Sfa sfa = SingleStringSfa("public law");
  auto dict = DictionaryTrie::Build({"public", "law"});
  ASSERT_TRUE(dict.ok());
  IndexBuildStats stats;
  auto postings = BuildPostings(sfa, *dict, &stats);
  ASSERT_TRUE(postings.ok());
  EXPECT_EQ(stats.postings, 2u);
  EXPECT_EQ(stats.terms_matched, 2u);
}

TEST(DirectPostingsTest, GrowsExponentiallyWithChunks) {
  // Chain with 2 alternatives per edge: #strings = 2^length.
  auto sfa10 = MakeChainSfa(10, 2);
  auto sfa20 = MakeChainSfa(20, 2);
  ASSERT_TRUE(sfa10.ok() && sfa20.ok());
  double p10 = EstimateDirectIndexPostings(*sfa10);
  double p20 = EstimateDirectIndexPostings(*sfa20);
  EXPECT_GT(p10, 1000.0);
  EXPECT_GT(p20 / p10, 500.0) << "expected ~2^10 growth";
}

TEST(ProjectionTest, NodesWithinHorizon) {
  Sfa sfa = SingleStringSfa("abcdefghij");
  auto nodes = ProjectNodes(sfa, 2, 3);
  // From node 2, nodes 2,3,4,5 are within 3 edges.
  EXPECT_EQ(nodes.size(), 4u);
  auto all = ProjectNodes(sfa, 0, 100);
  EXPECT_EQ(all.size(), sfa.NumNodes());
}

TEST(ProjectionTest, EvalFindsTermAtLocation) {
  Sfa sfa = SingleStringSfa("xx public yy");
  auto dfa = Dfa::Compile("public", MatchMode::kContains);
  ASSERT_TRUE(dfa.ok());
  // Start at node 3 (offset of 'p'): with horizon covering the term the
  // conditional match probability is 1.
  EXPECT_NEAR(EvalProjected(sfa, *dfa, 3, 8), 1.0, 1e-12);
  // Horizon too small to complete the term.
  EXPECT_EQ(EvalProjected(sfa, *dfa, 3, 3), 0.0);
}

TEST(ProjectionTest, BytesSmallerThanFullSfa) {
  Sfa sfa = SingleStringSfa("a longer line of text for projection");
  size_t proj = ProjectionBytes(sfa, 5, 6);
  EXPECT_LT(proj, sfa.SizeBytes());
  EXPECT_GT(proj, 0u);
}

}  // namespace
}  // namespace staccato
