#!/usr/bin/env bash
# Proves the thread-safety annotations are enforced, not decorative:
# compiles tests/thread_annotations_neg.cc under clang with
# -Wthread-safety -Werror once per violation case and asserts each case
# FAILS, while the baseline (no violation macro) compiles clean.
#
# Usage: thread_annotations_compile_test.sh <cxx-compiler> <src-include-dir>
# Registered by CMake as ctest `thread_annotations_compile_test`.
#
# The annotations are clang-only (no-ops elsewhere), so on a non-clang
# compiler there is nothing to check: exit 77, which CMake maps to a
# ctest SKIP via SKIP_RETURN_CODE.
set -u

CXX="${1:?usage: $0 <cxx-compiler> <src-include-dir>}"
INCLUDE_DIR="${2:?usage: $0 <cxx-compiler> <src-include-dir>}"
SRC="$(dirname "$0")/thread_annotations_neg.cc"

if ! "$CXX" --version 2>/dev/null | grep -qi "clang"; then
  echo "SKIP: $CXX is not clang; -Wthread-safety has no effect here"
  exit 77
fi

FLAGS=(-std=c++17 -Wthread-safety -Werror -fsyntax-only -I "$INCLUDE_DIR")

compile() {
  "$CXX" "${FLAGS[@]}" "$@" "$SRC" 2>&1
}

failures=0

# Baseline: the fixture with no violation enabled must compile clean —
# otherwise the "expected failures" below would be meaningless.
if ! out=$(compile); then
  echo "FAIL: baseline (no violation) did not compile:" >&2
  echo "$out" >&2
  failures=$((failures + 1))
fi

for case in CASE_UNGUARDED_READ CASE_REQUIRES_UNHELD CASE_LEAKED_LOCK; do
  if out=$(compile "-D$case"); then
    echo "FAIL: $case compiled, but -Wthread-safety should reject it" >&2
    failures=$((failures + 1))
  elif ! echo "$out" | grep -q "thread-safety"; then
    # It must fail for the right reason, not a stray syntax error.
    echo "FAIL: $case failed without a -Wthread-safety diagnostic:" >&2
    echo "$out" >&2
    failures=$((failures + 1))
  else
    echo "OK: $case rejected ($(echo "$out" | grep -c "error:") error(s))"
  fi
done

if [ "$failures" -ne 0 ]; then
  exit 1
fi
echo "thread_annotations_compile_test: all cases behaved as expected"
