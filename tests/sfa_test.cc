#include <gtest/gtest.h>

#include "sfa/sfa.h"
#include "util/random.h"

namespace staccato {
namespace {

// The Figure-1 SFA of the paper: OCR of the word "Ford".
Sfa MakeFigure1Sfa() {
  SfaBuilder b;
  NodeId n0 = b.AddNode(), n1 = b.AddNode(), n2 = b.AddNode(), n3 = b.AddNode(),
         n4 = b.AddNode(), n5 = b.AddNode();
  EXPECT_TRUE(b.AddTransition(n0, n1, "F", 0.8).ok());
  EXPECT_TRUE(b.AddTransition(n0, n1, "T", 0.2).ok());
  EXPECT_TRUE(b.AddTransition(n1, n2, "0", 0.6).ok());
  EXPECT_TRUE(b.AddTransition(n1, n2, "o", 0.4).ok());
  EXPECT_TRUE(b.AddTransition(n2, n3, " ", 0.6).ok());
  EXPECT_TRUE(b.AddTransition(n2, n4, "r", 0.4).ok());
  EXPECT_TRUE(b.AddTransition(n3, n4, "r", 0.8).ok());
  EXPECT_TRUE(b.AddTransition(n3, n4, "m", 0.2).ok());
  EXPECT_TRUE(b.AddTransition(n4, n5, "d", 0.9).ok());
  EXPECT_TRUE(b.AddTransition(n4, n5, "3", 0.1).ok());
  b.SetStart(n0);
  b.SetFinal(n5);
  auto sfa = b.Build(/*require_stochastic=*/true);
  EXPECT_TRUE(sfa.ok()) << sfa.status().ToString();
  return *sfa;
}

TEST(SfaBuilderTest, BuildsFigure1) {
  Sfa sfa = MakeFigure1Sfa();
  EXPECT_EQ(sfa.NumNodes(), 6u);
  EXPECT_EQ(sfa.NumEdges(), 6u);
  EXPECT_EQ(sfa.NumTransitions(), 10u);
  EXPECT_EQ(sfa.start(), 0u);
  EXPECT_EQ(sfa.final(), 5u);
}

TEST(SfaBuilderTest, RejectsMissingEndpoints) {
  SfaBuilder b;
  b.AddNode();
  EXPECT_FALSE(b.Build().ok());
}

TEST(SfaBuilderTest, RejectsOutOfRangeNode) {
  SfaBuilder b;
  NodeId n = b.AddNode();
  EXPECT_TRUE(b.AddTransition(n, 99, "a", 1.0).IsInvalidArgument());
}

TEST(SfaBuilderTest, RejectsEmptyLabel) {
  SfaBuilder b;
  NodeId a = b.AddNode(), c = b.AddNode();
  EXPECT_TRUE(b.AddTransition(a, c, "", 1.0).IsInvalidArgument());
}

TEST(SfaBuilderTest, RejectsCycle) {
  SfaBuilder b;
  NodeId a = b.AddNode(), c = b.AddNode();
  ASSERT_TRUE(b.AddTransition(a, c, "x", 0.5).ok());
  ASSERT_TRUE(b.AddTransition(c, a, "y", 0.5).ok());
  b.SetStart(a);
  b.SetFinal(c);
  EXPECT_FALSE(b.Build().ok());
}

TEST(SfaBuilderTest, RejectsUnreachableNode) {
  SfaBuilder b;
  NodeId a = b.AddNode(), c = b.AddNode();
  b.AddNode();  // dangling
  ASSERT_TRUE(b.AddTransition(a, c, "x", 1.0).ok());
  b.SetStart(a);
  b.SetFinal(c);
  EXPECT_FALSE(b.Build().ok());
}

TEST(SfaBuilderTest, RejectsNonStochasticWhenRequired) {
  SfaBuilder b;
  NodeId a = b.AddNode(), c = b.AddNode();
  ASSERT_TRUE(b.AddTransition(a, c, "x", 0.5).ok());
  b.SetStart(a);
  b.SetFinal(c);
  EXPECT_FALSE(b.Build(/*require_stochastic=*/true).ok());
  SfaBuilder b2;
  NodeId a2 = b2.AddNode(), c2 = b2.AddNode();
  ASSERT_TRUE(b2.AddTransition(a2, c2, "x", 0.5).ok());
  b2.SetStart(a2);
  b2.SetFinal(c2);
  EXPECT_TRUE(b2.Build(/*require_stochastic=*/false).ok());
}

TEST(SfaTest, TotalMassIsOneForStochastic) {
  Sfa sfa = MakeFigure1Sfa();
  EXPECT_NEAR(sfa.TotalMass(), 1.0, 1e-9);
}

TEST(SfaTest, TopologicalOrderStartsAndEndsCorrectly) {
  Sfa sfa = MakeFigure1Sfa();
  EXPECT_EQ(sfa.TopologicalOrder().front(), sfa.start());
  EXPECT_EQ(sfa.TopologicalOrder().back(), sfa.final());
  for (const Edge& e : sfa.edges()) {
    EXPECT_LT(sfa.TopoIndex()[e.from], sfa.TopoIndex()[e.to]);
  }
}

TEST(SfaTest, EnumerateStringsMatchesPaper) {
  Sfa sfa = MakeFigure1Sfa();
  auto strings = sfa.EnumerateStrings();
  ASSERT_TRUE(strings.ok());
  // 2*2*(1*2 + 1)*2 = 24 labeled paths.
  EXPECT_EQ(strings->size(), 24u);
  double f0_rd = 0, ford = 0;
  for (const auto& [s, p] : *strings) {
    if (s == "F0 rd") f0_rd = p;
    if (s == "Ford") ford = p;
  }
  // Figure 1: 'F0 rd' ≈ 0.21 (the MAP), 'Ford' ≈ 0.12.
  EXPECT_NEAR(f0_rd, 0.8 * 0.6 * 0.6 * 0.8 * 0.9, 1e-12);
  EXPECT_NEAR(ford, 0.8 * 0.4 * 0.4 * 0.9, 1e-12);
}

TEST(SfaTest, UniquePathsHoldsForFigure1) {
  EXPECT_TRUE(MakeFigure1Sfa().CheckUniquePaths().ok());
}

TEST(SfaTest, UniquePathViolationDetected) {
  SfaBuilder b;
  NodeId a = b.AddNode(), m = b.AddNode(), c = b.AddNode();
  ASSERT_TRUE(b.AddTransition(a, c, "xy", 0.5).ok());
  ASSERT_TRUE(b.AddTransition(a, m, "x", 0.5).ok());
  ASSERT_TRUE(b.AddTransition(m, c, "y", 1.0).ok());
  b.SetStart(a);
  b.SetFinal(c);
  auto sfa = b.Build();
  ASSERT_TRUE(sfa.ok());
  EXPECT_TRUE(sfa->CheckUniquePaths().IsInvalidArgument());
}

TEST(SfaTest, SerializeRoundTrip) {
  Sfa sfa = MakeFigure1Sfa();
  std::string blob = sfa.Serialize();
  auto back = Sfa::Deserialize(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumNodes(), sfa.NumNodes());
  EXPECT_EQ(back->NumEdges(), sfa.NumEdges());
  EXPECT_EQ(back->NumTransitions(), sfa.NumTransitions());
  EXPECT_NEAR(back->TotalMass(), 1.0, 1e-9);
  auto a = sfa.EnumerateStrings();
  auto b = back->EnumerateStrings();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(SfaTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Sfa::Deserialize("not a blob").ok());
  EXPECT_FALSE(Sfa::Deserialize("").ok());
  std::string blob = MakeFigure1Sfa().Serialize();
  blob.resize(blob.size() / 2);
  EXPECT_FALSE(Sfa::Deserialize(blob).ok());
}

TEST(SfaTest, DeserializeRejectsTrailingBytes) {
  std::string blob = MakeFigure1Sfa().Serialize();
  blob += "junk";
  EXPECT_TRUE(Sfa::Deserialize(blob).status().IsCorruption());
}

TEST(SfaTest, SizeBytesAccounting) {
  Sfa sfa = MakeFigure1Sfa();
  // 10 transitions, each 1 label byte + 16 metadata bytes.
  EXPECT_EQ(sfa.SizeBytes(), 10u * 17u);
}

TEST(ChainSfaTest, ShapeAndMass) {
  auto chain = MakeChainSfa(10, 4);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->NumNodes(), 11u);
  EXPECT_EQ(chain->NumEdges(), 10u);
  EXPECT_EQ(chain->NumTransitions(), 40u);
  EXPECT_NEAR(chain->TotalMass(), 1.0, 1e-9);
  EXPECT_TRUE(chain->CheckUniquePaths(1000).IsOutOfRange())
      << "4^10 paths exceed the enumeration cap";
}

TEST(ChainSfaTest, RejectsBadParams) {
  EXPECT_FALSE(MakeChainSfa(0, 4).ok());
  EXPECT_FALSE(MakeChainSfa(4, 0).ok());
  EXPECT_FALSE(MakeChainSfa(4, 99).ok());
}

TEST(SfaTest, DeserializeFuzzNeverCrashes) {
  // Single-byte corruptions of a valid blob must either round-trip to a
  // valid SFA or fail cleanly with an error Status — never crash or hang.
  std::string blob = MakeFigure1Sfa().Serialize();
  Rng rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    std::string corrupt = blob;
    size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(corrupt.size()) - 1));
    corrupt[pos] = static_cast<char>(rng.UniformInt(0, 255));
    auto result = Sfa::Deserialize(corrupt);
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok() || !result->Validate().ok());
    }
  }
  // Random garbage of various lengths.
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(static_cast<size_t>(rng.UniformInt(0, 200)), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.UniformInt(0, 255));
    (void)Sfa::Deserialize(garbage);
  }
  SUCCEED();
}

TEST(SfaTest, TransitionsSortedByProbability) {
  Sfa sfa = MakeFigure1Sfa();
  for (const Edge& e : sfa.edges()) {
    for (size_t i = 1; i < e.transitions.size(); ++i) {
      EXPECT_GE(e.transitions[i - 1].prob, e.transitions[i].prob);
    }
  }
}

}  // namespace
}  // namespace staccato
