#include <gtest/gtest.h>

#include "ocr/corpus.h"
#include "staccato/tuning.h"

namespace staccato {
namespace {

TuningSample MakeSample() {
  CorpusSpec spec;
  spec.kind = DatasetKind::kCongressActs;
  spec.num_pages = 1;
  spec.lines_per_page = 20;
  OcrNoiseModel noise;
  noise.alternatives = 16;
  auto ds = GenerateOcrDataset(spec, noise);
  EXPECT_TRUE(ds.ok());
  return TuningSample{ds->sfas, ds->corpus.lines};
}

TEST(SolveKTest, BudgetEquation) {
  // k = B/n / (l + 16 m): doubling the budget doubles k; growing m shrinks k.
  size_t k1 = SolveKForBudget(100000, 10, 50.0, 10, 1000);
  size_t k2 = SolveKForBudget(200000, 10, 50.0, 10, 1000);
  size_t k3 = SolveKForBudget(100000, 10, 50.0, 40, 1000);
  EXPECT_NEAR(static_cast<double>(k2), 2.0 * static_cast<double>(k1), 2.0);
  EXPECT_LT(k3, k1);
  EXPECT_GE(SolveKForBudget(0, 10, 50.0, 10, 1000), 1u);  // clamped to >= 1
  EXPECT_LE(SolveKForBudget(1ull << 40, 10, 50.0, 1, 77), 77u);  // max_k cap
}

TEST(TuningTest, RecallMeasurementSane) {
  TuningSample sample = MakeSample();
  auto low = MeasureAverageRecall(sample, {"President"}, 1, 1, 100);
  auto high = MeasureAverageRecall(sample, {"President"}, 50, 10, 100);
  ASSERT_TRUE(low.ok() && high.ok());
  EXPECT_GE(*high, *low - 1e-9);
  EXPECT_LE(*high, 1.0 + 1e-9);
}

TEST(TuningTest, SizeGrowsWithParameters) {
  TuningSample sample = MakeSample();
  auto small = MeasureApproxSize(sample, 5, 2);
  auto large = MeasureApproxSize(sample, 20, 8);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_LT(*small, *large);
}

TEST(TuningTest, FindsFeasiblePoint) {
  TuningSample sample = MakeSample();
  TuningConstraints c;
  c.size_fraction = 0.30;  // generous budget
  c.min_recall = 0.50;     // easy target
  c.grid_step = 5;
  c.max_m = 40;
  c.max_k = 40;
  auto outcome = TuneParameters(sample, {"President", "Commission"}, c);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->feasible);
  EXPECT_GE(outcome->achieved_recall, c.min_recall);
  EXPECT_GT(outcome->m, 0u);
  EXPECT_GT(outcome->k, 0u);
  EXPECT_GT(outcome->configurations_tried, 0u);
  EXPECT_LE(outcome->configurations_tried, 8u) << "binary search, not a scan";
}

TEST(TuningTest, ReportsInfeasible) {
  TuningSample sample = MakeSample();
  TuningConstraints c;
  c.size_fraction = 0.0001;  // absurd budget
  c.min_recall = 0.99;
  c.max_m = 20;
  c.max_k = 20;
  auto outcome = TuneParameters(sample, {"U.S.C. 2\\d\\d\\d"}, c);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->feasible);
}

TEST(TuningTest, RejectsBadInput) {
  TuningSample sample = MakeSample();
  TuningConstraints c;
  c.grid_step = 0;
  EXPECT_FALSE(TuneParameters(sample, {"x"}, c).ok());
  TuningSample mismatched;
  mismatched.sfas = sample.sfas;
  EXPECT_FALSE(MeasureAverageRecall(mismatched, {"x"}, 5, 5, 100).ok());
}

TEST(TuningTest, EmptyQueriesIsPerfectRecall) {
  TuningSample sample = MakeSample();
  auto recall = MeasureAverageRecall(sample, {}, 5, 5, 100);
  ASSERT_TRUE(recall.ok());
  EXPECT_EQ(*recall, 1.0);
}

}  // namespace
}  // namespace staccato
