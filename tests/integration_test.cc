// End-to-end tests through the StaccatoDb: load a synthetic OCR dataset into
// the RDBMS, query it under all four approaches, and check the paper's
// qualitative claims (recall ordering, probability bounds, index
// consistency) hold on the loaded data.
#include <gtest/gtest.h>

#include "eval/workbench.h"
#include "metrics/metrics.h"
#include "ocr/corpus.h"
#include "rdbms/staccato_db.h"

namespace staccato {
namespace {

using eval::Workbench;
using eval::WorkbenchSpec;
using rdbms::Approach;

WorkbenchSpec SmallSpec(DatasetKind kind, bool index = false) {
  WorkbenchSpec spec;
  spec.corpus.kind = kind;
  spec.corpus.num_pages = 2;
  spec.corpus.lines_per_page = 30;
  spec.corpus.seed = 1234;
  spec.noise.alternatives = 8;
  spec.load.kmap_k = 10;
  spec.load.staccato = {20, 10, true};
  spec.build_index = index;
  return spec;
}

TEST(IntegrationTest, LoadAndQueryAllApproaches) {
  auto wb = Workbench::Create(SmallSpec(DatasetKind::kCongressActs));
  ASSERT_TRUE(wb.ok()) << wb.status().ToString();
  EXPECT_EQ((*wb)->db().NumSfas(), 60u);
  for (Approach a : {Approach::kMap, Approach::kKMap, Approach::kFullSfa,
                     Approach::kStaccato}) {
    auto row = (*wb)->Run(a, "President");
    ASSERT_TRUE(row.ok()) << row.status().ToString();
    EXPECT_GE(row->quality.recall, 0.0);
    EXPECT_LE(row->quality.recall, 1.0);
    EXPECT_GT(row->stats.seconds, 0.0);
  }
}

TEST(IntegrationTest, RecallOrderingHolds) {
  // The paper's central claim: recall(MAP) <= recall(k-MAP) <=
  // recall(FullSFA) = 1, with Staccato in between MAP and FullSFA.
  auto wb = Workbench::Create(SmallSpec(DatasetKind::kCongressActs));
  ASSERT_TRUE(wb.ok());
  for (const std::string& q : {std::string("President"),
                               std::string("U.S.C. 2\\d\\d\\d")}) {
    auto map = (*wb)->Run(Approach::kMap, q);
    auto kmap = (*wb)->Run(Approach::kKMap, q);
    auto full = (*wb)->Run(Approach::kFullSfa, q);
    auto stac = (*wb)->Run(Approach::kStaccato, q);
    ASSERT_TRUE(map.ok() && kmap.ok() && full.ok() && stac.ok());
    EXPECT_LE(map->quality.recall, kmap->quality.recall + 1e-9) << q;
    EXPECT_LE(kmap->quality.recall, full->quality.recall + 1e-9) << q;
    EXPECT_NEAR(full->quality.recall, 1.0, 1e-9)
        << q << ": FullSFA must achieve perfect recall (NumAns > truth)";
    EXPECT_GE(stac->quality.recall, map->quality.recall - 1e-9) << q;
    EXPECT_LE(stac->quality.recall, full->quality.recall + 1e-9) << q;
  }
}

TEST(IntegrationTest, FullSfaProbabilityUpperBoundsOthers) {
  auto wb = Workbench::Create(SmallSpec(DatasetKind::kDbPapers));
  ASSERT_TRUE(wb.ok());
  rdbms::QueryOptions q;
  q.pattern = "database";
  auto full = (*wb)->db().Query(Approach::kFullSfa, q);
  auto stac = (*wb)->db().Query(Approach::kStaccato, q);
  ASSERT_TRUE(full.ok() && stac.ok());
  std::map<DocId, double> full_p;
  for (const Answer& a : *full) full_p[a.doc] = a.prob;
  for (const Answer& a : *stac) {
    auto it = full_p.find(a.doc);
    ASSERT_NE(it, full_p.end())
        << "Staccato retrieved doc " << a.doc << " that FullSFA missed";
    EXPECT_LE(a.prob, it->second + 1e-9);
  }
}

TEST(IntegrationTest, GroundTruthMatchesCorpus) {
  auto spec = SmallSpec(DatasetKind::kLiterature);
  auto wb = Workbench::Create(spec);
  ASSERT_TRUE(wb.ok());
  auto truth = (*wb)->db().GroundTruthFor("Kerouac");
  ASSERT_TRUE(truth.ok());
  size_t expected = 0;
  for (const std::string& line : (*wb)->dataset().corpus.lines) {
    if (line.find("Kerouac") != std::string::npos) ++expected;
  }
  EXPECT_EQ(truth->size(), expected);
}

TEST(IntegrationTest, IndexedQueryMatchesFilescan) {
  auto wb = Workbench::Create(SmallSpec(DatasetKind::kCongressActs, true));
  ASSERT_TRUE(wb.ok()) << wb.status().ToString();
  rdbms::QueryOptions scan_q;
  scan_q.pattern = "Public Law (8|9)\\d";
  rdbms::QueryStats scan_stats, idx_stats;
  auto scan = (*wb)->db().Query(Approach::kStaccato, scan_q, &scan_stats);
  rdbms::QueryOptions idx_q = scan_q;
  idx_q.use_index = true;
  auto idx = (*wb)->db().Query(Approach::kStaccato, idx_q, &idx_stats);
  ASSERT_TRUE(scan.ok() && idx.ok());
  EXPECT_LE(idx_stats.candidates, scan_stats.candidates);
  // Every filescan answer whose line contains the anchor term must also be
  // found by the indexed path, with the same probability.
  std::map<DocId, double> idx_p;
  for (const Answer& a : *idx) idx_p[a.doc] = a.prob;
  for (const Answer& a : *scan) {
    auto it = idx_p.find(a.doc);
    if (it != idx_p.end()) {
      EXPECT_NEAR(it->second, a.prob, 1e-9);
    }
  }
}

TEST(IntegrationTest, StorageReportConsistent) {
  auto wb = Workbench::Create(SmallSpec(DatasetKind::kCongressActs));
  ASSERT_TRUE(wb.ok());
  auto report = (*wb)->db().Storage();
  EXPECT_GT(report.kmap_table_bytes, 0u);
  EXPECT_GT(report.staccato_table_bytes, 0u);
  EXPECT_GT(report.fullsfa_blob_bytes, 0u);
}

TEST(IntegrationTest, BlobRoundTripPreservesSfas) {
  auto wb = Workbench::Create(SmallSpec(DatasetKind::kDbPapers));
  ASSERT_TRUE(wb.ok());
  for (DocId d : {DocId{0}, DocId{7}, DocId{59}}) {
    auto full = (*wb)->db().LoadFullSfa(d);
    ASSERT_TRUE(full.ok());
    EXPECT_EQ(full->NumEdges(), (*wb)->dataset().sfas[d].NumEdges());
    auto chunked = (*wb)->db().LoadStaccatoSfa(d);
    ASSERT_TRUE(chunked.ok());
    EXPECT_LE(chunked->NumEdges(), 20u);
  }
}

TEST(IntegrationTest, NumAnsLimitsAnswers) {
  auto wb = Workbench::Create(SmallSpec(DatasetKind::kDbPapers));
  ASSERT_TRUE(wb.ok());
  auto row5 = (*wb)->Run(Approach::kFullSfa, "\\x\\x\\x\\d\\d", /*num_ans=*/5);
  ASSERT_TRUE(row5.ok());
  EXPECT_LE(row5->answers, 5u);
  auto row100 = (*wb)->Run(Approach::kFullSfa, "\\x\\x\\x\\d\\d", 100);
  ASSERT_TRUE(row100.ok());
  EXPECT_GE(row100->answers, row5->answers);
  EXPECT_GE(row100->quality.recall, row5->quality.recall - 1e-9);
}

TEST(IntegrationTest, QuerySqlMatchesDirectQuery) {
  // No index on this workbench: QuerySql plans cost-based (kAuto) while
  // Query pins a full scan from its legacy flag, so equality of the two
  // answer sets holds only when both resolve to the scan. With an index
  // built, QuerySql may legitimately probe it and prune candidates.
  auto wb = Workbench::Create(SmallSpec(DatasetKind::kCongressActs));
  ASSERT_TRUE(wb.ok());
  auto via_sql = (*wb)->db().QuerySql(
      Approach::kStaccato,
      "SELECT DataKey FROM Docs WHERE DocData LIKE '%President%';");
  ASSERT_TRUE(via_sql.ok()) << via_sql.status().ToString();
  rdbms::QueryOptions q;
  q.pattern = "President";
  auto direct = (*wb)->db().Query(Approach::kStaccato, q);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(via_sql->size(), direct->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ((*via_sql)[i].doc, (*direct)[i].doc);
    EXPECT_EQ((*via_sql)[i].prob, (*direct)[i].prob);
  }
  // The paper's query shape with an equality predicate now executes
  // end-to-end (Year is a MasterData column; page 0 is dated 2010).
  auto filtered = (*wb)->db().QuerySql(
      Approach::kStaccato,
      "SELECT DataKey FROM Docs WHERE Year = 2010 AND "
      "DocData LIKE '%President%';");
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  EXPECT_LE(filtered->size(), direct->size());
  // Unsupported shapes are rejected cleanly.
  EXPECT_TRUE((*wb)->db()
                  .QuerySql(Approach::kMap, "SELECT a FROM t")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE((*wb)->db()
                  .QuerySql(Approach::kMap,
                            "SELECT a FROM t WHERE NoSuchColumn = 1 AND "
                            "DocData LIKE '%x%'")
                  .status()
                  .IsInvalidArgument());
}

TEST(IntegrationTest, ReopenedDatabaseAnswersIdentically) {
  auto spec = SmallSpec(DatasetKind::kCongressActs, /*index=*/true);
  auto wb = Workbench::Create(spec);
  ASSERT_TRUE(wb.ok()) << wb.status().ToString();
  rdbms::QueryOptions q;
  q.pattern = "Public Law (8|9)\\d";
  auto before = (*wb)->db().Query(rdbms::Approach::kStaccato, q);
  auto before_full = (*wb)->db().Query(rdbms::Approach::kFullSfa, q);
  ASSERT_TRUE(before.ok() && before_full.ok());
  std::string dir = (*wb)->spec().work_dir;
  wb->reset();  // close the database, flushing everything

  auto reopened = rdbms::StaccatoDb::OpenExisting(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->NumSfas(), 60u);
  auto after = (*reopened)->Query(rdbms::Approach::kStaccato, q);
  auto after_full = (*reopened)->Query(rdbms::Approach::kFullSfa, q);
  ASSERT_TRUE(after.ok() && after_full.ok());
  ASSERT_EQ(after->size(), before->size());
  for (size_t i = 0; i < after->size(); ++i) {
    EXPECT_EQ((*after)[i].doc, (*before)[i].doc);
    EXPECT_NEAR((*after)[i].prob, (*before)[i].prob, 1e-12);
  }
  ASSERT_EQ(after_full->size(), before_full->size());
  // The rebuilt inverted index must serve anchored queries identically.
  rdbms::QueryOptions iq = q;
  iq.use_index = true;
  rdbms::QueryStats stats;
  auto indexed = (*reopened)->Query(rdbms::Approach::kStaccato, iq, &stats);
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  EXPECT_LT(stats.selectivity, 1.0);
}

TEST(IntegrationTest, MapFasterThanFullSfa) {
  auto wb = Workbench::Create(SmallSpec(DatasetKind::kCongressActs));
  ASSERT_TRUE(wb.ok());
  auto map = (*wb)->Run(Approach::kMap, "Commission");
  auto full = (*wb)->Run(Approach::kFullSfa, "Commission");
  ASSERT_TRUE(map.ok() && full.ok());
  EXPECT_LT(map->stats.seconds, full->stats.seconds)
      << "filescan over text must beat blob deserialization + DP";
}

}  // namespace
}  // namespace staccato
