// Tests for the telemetry subsystem (src/telemetry/): histogram quantile
// bounds against a sorted-vector oracle, lock-free concurrent recording
// (raced under the TSan CI job), fake-clock-driven span trees, slow-query
// log rotation, trace answer neutrality across the shard/thread/early-stop
// matrix, and one end-to-end Prometheus dump covering the service, pool,
// cache, blob, and WAL instrumentation points.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "eval/workbench.h"
#include "ocr/corpus.h"
#include "ocr/generator.h"
#include "rdbms/service.h"
#include "rdbms/session.h"
#include "rdbms/shard.h"
#include "rdbms/staccato_db.h"
#include "telemetry/clock.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/slow_log.h"
#include "telemetry/trace.h"
#include "util/strings.h"

namespace staccato {
namespace telemetry {
namespace {

// ---------------------------------------------------------------------------
// Histogram vs sorted-vector oracle.

uint64_t ExactQuantile(std::vector<uint64_t> sorted, double q) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(std::ceil(q * sorted.size()));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

/// The log-bucket guarantee: the reported quantile is never below the
/// exact one and at most 2x it (bucket upper bounds are 2^i - 1, and the
/// exact value shares the reported value's bucket).
void CheckQuantiles(const std::vector<uint64_t>& values, const char* what) {
  auto& reg = MetricsRegistry::Global();
  static int n = 0;
  Histogram* h = reg.GetHistogram(
      StringPrintf("staccato_test_oracle_%d_us", n++));
  for (uint64_t v : values) h->Record(v);
  std::vector<uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.5, 0.95, 0.99}) {
    const uint64_t exact = ExactQuantile(sorted, q);
    const uint64_t got = h->ValueAtQuantile(q);
    EXPECT_GE(got, exact) << what << " q=" << q;
    EXPECT_LE(got, 2 * std::max<uint64_t>(exact, 1)) << what << " q=" << q;
  }
  EXPECT_EQ(h->count(), values.size()) << what;
}

TEST(HistogramTest, QuantilesMatchSortedOracleAcrossDistributions) {
  std::mt19937_64 rng(42);
  {
    std::vector<uint64_t> uniform;
    std::uniform_int_distribution<uint64_t> d(0, 1000000);
    for (int i = 0; i < 10000; ++i) uniform.push_back(d(rng));
    CheckQuantiles(uniform, "uniform");
  }
  {
    std::vector<uint64_t> expo;
    std::exponential_distribution<double> d(1.0 / 5000.0);
    for (int i = 0; i < 10000; ++i) {
      expo.push_back(static_cast<uint64_t>(d(rng)));
    }
    CheckQuantiles(expo, "exponential");
  }
  {
    std::vector<uint64_t> constant(5000, 777);
    CheckQuantiles(constant, "constant");
  }
  {
    // Heavy mass at zero: exercises the dedicated zero bucket.
    std::vector<uint64_t> zero_heavy(9000, 0);
    for (int i = 0; i < 1000; ++i) zero_heavy.push_back(1u << (i % 20));
    std::shuffle(zero_heavy.begin(), zero_heavy.end(), rng);
    CheckQuantiles(zero_heavy, "zero-heavy");
  }
  {
    std::vector<uint64_t> tiny = {3};
    CheckQuantiles(tiny, "single-sample");
  }
}

TEST(HistogramTest, BucketIndexCoversFullRange) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), 64u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), ~uint64_t{0});
}

// Raced under the TSan CI job: Record is two relaxed fetch_adds, readers
// snapshot concurrently. The assertion is only that every sample lands.
TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  auto& reg = MetricsRegistry::Global();
  Histogram* h = reg.GetHistogram("staccato_test_concurrent_us");
  Counter* c = reg.GetCounter("staccato_test_concurrent_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, c, t] {
      std::mt19937_64 rng(t);
      std::uniform_int_distribution<uint64_t> d(0, 1 << 20);
      for (int i = 0; i < kPerThread; ++i) {
        h->Record(d(rng));
        c->Increment();
      }
      // Concurrent dumps must see a consistent snapshot, not crash.
      if (t == 0) (void)MetricsRegistry::Global().DumpPrometheus();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h->count(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(c->value(), uint64_t{kThreads} * kPerThread);
}

TEST(MetricsRegistryTest, SameNameReturnsSamePointerAndDumpsRender) {
  auto& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("staccato_test_same_total");
  Counter* b = reg.GetCounter("staccato_test_same_total");
  EXPECT_EQ(a, b);
  a->Increment(3);
  reg.GetGauge("staccato_test_gauge{space=\"blob\"}")->Set(12);
  reg.GetGauge("staccato_test_gauge{space=\"page\"}")->Set(34);
  const std::string prom = reg.DumpPrometheus();
  EXPECT_NE(prom.find("staccato_test_same_total 3"), std::string::npos);
  // Labeled gauges share one TYPE line under the base name.
  EXPECT_NE(prom.find("# TYPE staccato_test_gauge gauge"), std::string::npos);
  EXPECT_NE(prom.find("staccato_test_gauge{space=\"blob\"} 12"),
            std::string::npos);
  const std::string json = reg.DumpJson();
  EXPECT_NE(json.find("\"staccato_test_same_total\":3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fake clock + span trees.

TEST(TraceTest, FakeClockMakesSpanTreeDeterministic) {
  FakeClock clock(1000);
  auto trace = QueryTrace::Make("test-query");
  const uint64_t root = trace->StartSpan("Execute");
  clock.Advance(1000000);  // 1 ms
  {
    ScopedSpan child(trace.get(), "CandidateGen", root);
    clock.Advance(2000000);  // 2 ms
  }
  const uint64_t eval = trace->StartSpan("Eval", root);
  clock.Advance(5000000);  // 5 ms
  trace->EndSpan(eval);
  trace->EndSpan(root);

  const std::vector<TraceSpan> spans = trace->spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "Execute");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].start_ns, 1000u);
  EXPECT_EQ(spans[0].end_ns - spans[0].start_ns, 8000000u);
  EXPECT_EQ(spans[1].name, "CandidateGen");
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[1].start_ns, 1001000u);
  EXPECT_EQ(spans[1].end_ns - spans[1].start_ns, 2000000u);
  EXPECT_EQ(spans[2].name, "Eval");
  EXPECT_EQ(spans[2].parent, root);
  EXPECT_EQ(spans[2].end_ns - spans[2].start_ns, 5000000u);

  const std::string text = RenderTrace(*trace);
  EXPECT_NE(text.find("test-query"), std::string::npos);
  EXPECT_NE(text.find("CandidateGen"), std::string::npos);
  const std::string json = TraceToJson(*trace);
  EXPECT_NE(json.find("\"Eval\""), std::string::npos);
}

TEST(TraceTest, NullTraceScopedSpanIsANoop) {
  ScopedSpan span(nullptr, "nothing");
  EXPECT_EQ(span.id(), 0u);
}

TEST(TraceTest, SinkKeepsOnlyTheLastCapacityTraces) {
  TraceSink sink(/*capacity=*/3);
  sink.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    sink.Push(QueryTrace::Make(StringPrintf("q%d", i)));
  }
  auto recent = sink.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0]->label(), "q4");  // newest first
  EXPECT_EQ(recent[2]->label(), "q2");
}

// ---------------------------------------------------------------------------
// Slow-query log rotation.

uint64_t FileBytes(const std::string& path) {
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

TEST(SlowQueryLogTest, RotationKeepsTotalUnderTwiceTheCap) {
  const std::string dir = eval::MakeScratchDir("slow_log");
  SlowQueryLog::Config cfg;
  cfg.path = dir + "/slow.log";
  cfg.threshold_ms = 10;
  cfg.max_bytes = 4096;
  SlowQueryLog log(cfg);
  EXPECT_TRUE(log.enabled());
  EXPECT_FALSE(log.ShouldLog(9.0));
  EXPECT_TRUE(log.ShouldLog(10.0));

  const std::string entry(200, 'x');
  for (int i = 0; i < 200; ++i) log.Append(entry);

  const uint64_t live = FileBytes(cfg.path);
  const uint64_t rotated = FileBytes(cfg.path + ".1");
  EXPECT_GT(live, 0u);
  EXPECT_GT(rotated, 0u) << "200 * 201 bytes must have rotated at least once";
  EXPECT_LE(live, cfg.max_bytes + entry.size() + 1);
  EXPECT_LE(rotated, cfg.max_bytes + entry.size() + 1);
  EXPECT_LE(live + rotated, 2 * cfg.max_bytes + 2 * (entry.size() + 1));
  std::remove(cfg.path.c_str());
  std::remove((cfg.path + ".1").c_str());
}

TEST(SlowQueryLogTest, ZeroThresholdDisables) {
  SlowQueryLog::Config cfg;
  cfg.path = "/nonexistent/never-written.log";
  cfg.threshold_ms = 0;
  SlowQueryLog log(cfg);
  EXPECT_FALSE(log.enabled());
  EXPECT_FALSE(log.ShouldLog(1e9));
}

// ---------------------------------------------------------------------------
// End-to-end: trace answer neutrality + the full-dump integration check.

CorpusSpec SmallSpec() {
  CorpusSpec spec;
  spec.kind = DatasetKind::kCongressActs;
  spec.num_pages = 2;
  spec.lines_per_page = 10;
  spec.max_line_chars = 40;
  spec.seed = 4242;
  return spec;
}

rdbms::LoadOptions SmallLoad() {
  rdbms::LoadOptions opts;
  opts.kmap_k = 8;
  opts.staccato.m = 16;
  opts.staccato.k = 8;
  return opts;
}

class TelemetryEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    OcrNoiseModel noise;
    noise.alternatives = 6;
    auto data = GenerateOcrDataset(SmallSpec(), noise);
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    dataset_ = new OcrDataset(std::move(*data));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static OcrDataset* dataset_;
};

OcrDataset* TelemetryEndToEndTest::dataset_ = nullptr;

template <typename Db>
std::vector<Answer> RunTraced(Db* db, const std::string& pattern,
                                     size_t threads, bool early_stop,
                                     bool tracing,
                                     rdbms::QueryStats* stats = nullptr) {
  rdbms::Session session(db, rdbms::SessionOptions{threads, 50});
  session.set_tracing(tracing);
  rdbms::QueryOptions q;
  q.pattern = pattern;
  q.num_ans = 50;
  q.eval_threads = threads;
  q.early_stop = early_stop;
  auto pq = session.Prepare(rdbms::Approach::kStaccato, q);
  EXPECT_TRUE(pq.ok()) << pq.status().ToString();
  if (!pq.ok()) return {};
  auto ans = pq->Execute(stats);
  EXPECT_TRUE(ans.ok()) << ans.status().ToString();
  if (tracing) {
    auto recent = session.recent_traces();
    EXPECT_FALSE(recent.empty()) << "tracing on must publish a trace";
    if (!recent.empty()) {
      EXPECT_FALSE(recent[0]->spans().empty());
    }
  } else {
    EXPECT_TRUE(session.recent_traces().empty());
  }
  return ans.ok() ? *ans : std::vector<Answer>{};
}

TEST_F(TelemetryEndToEndTest, TracingIsAnswerNeutralAcrossTheMatrix) {
  const std::vector<std::string> patterns = {
      DatasetQueries(DatasetKind::kCongressActs)[0]};
  for (size_t shards : {1u, 2u}) {
    auto db = rdbms::ShardedDb::Open(
        eval::MakeScratchDir(StringPrintf("telemetry_neutral_%zu", shards)),
        rdbms::ShardConfig{shards, cache::CacheConfig()});
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Load(*dataset_, SmallLoad()).ok());
    for (size_t threads : {1u, 4u}) {
      for (bool early_stop : {true, false}) {
        for (const std::string& pat : patterns) {
          auto off = RunTraced(db->get(), pat, threads, early_stop,
                               /*tracing=*/false);
          rdbms::QueryStats on_stats;
          auto on = RunTraced(db->get(), pat, threads, early_stop,
                              /*tracing=*/true, &on_stats);
          ASSERT_EQ(off.size(), on.size());
          for (size_t i = 0; i < off.size(); ++i) {
            EXPECT_EQ(off[i].doc, on[i].doc)
                << pat << " shards=" << shards << " threads=" << threads
                << " early=" << early_stop << " rank " << i;
            EXPECT_EQ(off[i].prob, on[i].prob)
                << pat << " rank " << i << " (must be bit-identical)";
          }
          // The traced run carried its span tree out through the stats.
          ASSERT_NE(on_stats.trace, nullptr);
          EXPECT_FALSE(on_stats.trace->spans().empty());
          if (shards > 1) {
            const std::string text = RenderTrace(*on_stats.trace);
            EXPECT_NE(text.find("Scatter"), std::string::npos);
            EXPECT_NE(text.find("shard-0"), std::string::npos);
          }
        }
      }
    }
  }
}

TEST_F(TelemetryEndToEndTest, StageTimingsFillAndExplainRendersThem) {
  auto db = rdbms::StaccatoDb::Open(eval::MakeScratchDir("telemetry_stage"));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Load(*dataset_, SmallLoad()).ok());
  rdbms::Session session(db->get(), rdbms::SessionOptions{2, 50});
  rdbms::QueryOptions q;
  q.pattern = DatasetQueries(DatasetKind::kCongressActs)[0];
  q.num_ans = 20;
  auto pq = session.Prepare(rdbms::Approach::kStaccato, q);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  rdbms::QueryStats stats;
  auto ans = pq->Execute(&stats);
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  EXPECT_GT(stats.stage.total_s, 0.0);
  EXPECT_GE(stats.stage.fetch_eval_s, 0.0);
  // The executor-measured total never exceeds the caller-measured wall
  // time, and the stage sum never exceeds the executor total (stages are
  // disjoint slices of it).
  EXPECT_LE(stats.stage.total_s, stats.seconds * 1.5 + 0.1);
  const double stage_sum = stats.stage.candidate_gen_s +
                           stats.stage.filter_s + stats.stage.fetch_eval_s +
                           stats.stage.topk_s;
  EXPECT_LE(stage_sum, stats.stage.total_s + 0.001);
  const std::string text = rdbms::ExplainPlan(pq->plan(), stats);
  EXPECT_NE(text.find("Stages:"), std::string::npos);
  EXPECT_NE(text.find("fetch+eval="), std::string::npos);
}

TEST_F(TelemetryEndToEndTest, OneDumpShowsEverySubsystem) {
  const std::string dir = eval::MakeScratchDir("telemetry_dump");
  auto db = rdbms::StaccatoDb::Open(dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Load(*dataset_, SmallLoad()).ok());
  // WAL: one live Append.
  rdbms::DocumentInput in;
  in.doc_name = "telemetry-doc";
  in.year = 2026;
  in.truth = dataset_->corpus.lines[0];
  in.sfa = dataset_->sfas[0];
  ASSERT_TRUE((*db)->Append(in).ok());
  // Service-governed query: admission + latency histograms.
  rdbms::Session session(db->get(), rdbms::SessionOptions{2, 50});
  rdbms::QueryOptions q;
  q.pattern = DatasetQueries(DatasetKind::kCongressActs)[0];
  q.num_ans = 20;
  auto pq = session.Prepare(rdbms::Approach::kStaccato, q);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  rdbms::QueryService svc(&session);
  rdbms::QueryStats stats;
  auto ans = svc.Execute(&*pq, &stats);
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();

  const std::string prom = MetricsRegistry::Global().DumpPrometheus();
  for (const char* name : {
           "staccato_service_admitted_total",
           "staccato_service_query_us",
           "staccato_queries_total",
           "staccato_query_us",
           "staccato_pool_queue_depth",
           "staccato_cache_hits_total",
           "staccato_cache_bytes",
           "staccato_blob_reads_total",
           "staccato_blob_bytes_read_total",
           "staccato_wal_commits_total",
           "staccato_wal_commit_us",
       }) {
    EXPECT_NE(prom.find(name), std::string::npos)
        << "DumpPrometheus is missing " << name;
  }
  const std::string json = MetricsRegistry::Global().DumpJson();
  EXPECT_NE(json.find("staccato_wal_commit_us"), std::string::npos);
}

}  // namespace
}  // namespace telemetry
}  // namespace staccato
