// Parameterized property tests: invariants that must hold for every
// (seed, m, k) combination, swept with TEST_P / INSTANTIATE_TEST_SUITE_P.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "automata/dfa.h"
#include "inference/kbest.h"
#include "inference/query_eval.h"
#include "ocr/generator.h"
#include "staccato/analysis.h"
#include "staccato/chunking.h"
#include "util/random.h"

namespace staccato {
namespace {

struct ApproxCase {
  uint64_t seed;
  size_t m;
  size_t k;
};

void PrintTo(const ApproxCase& c, std::ostream* os) {
  *os << "seed=" << c.seed << " m=" << c.m << " k=" << c.k;
}

class ApproximationProperties : public ::testing::TestWithParam<ApproxCase> {
 protected:
  Result<Sfa> MakeSfa() const {
    Rng rng(GetParam().seed);
    OcrNoiseModel model;
    model.alternatives = 3;
    model.p_branch = 0.3;
    return OcrLineToSfa("Law 89 act", model, &rng);
  }
};

TEST_P(ApproximationProperties, EmitsSubsetWithOriginalProbabilities) {
  auto sfa = MakeSfa();
  ASSERT_TRUE(sfa.ok());
  ApproxStats stats;
  auto approx = ApproximateSfa(*sfa, {GetParam().m, GetParam().k, true}, &stats);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();

  auto orig = sfa->EnumerateStrings(1 << 22);
  auto kept = approx->EnumerateStrings(1 << 22);
  ASSERT_TRUE(orig.ok() && kept.ok());
  std::map<std::string, double> mu;
  for (auto& [s, p] : *orig) mu[s] += p;
  double mass = 0;
  for (auto& [s, p] : *kept) {
    auto it = mu.find(s);
    ASSERT_NE(it, mu.end()) << "invented string: " << s;
    EXPECT_NEAR(it->second, p, 1e-9);
    mass += p;
  }
  EXPECT_LE(mass, 1.0 + 1e-9);
  EXPECT_NEAR(mass, stats.retained_mass, 1e-9);
}

TEST_P(ApproximationProperties, RespectsEdgeAndPathBudgets) {
  auto sfa = MakeSfa();
  ASSERT_TRUE(sfa.ok());
  auto approx = ApproximateSfa(*sfa, {GetParam().m, GetParam().k, true});
  ASSERT_TRUE(approx.ok());
  EXPECT_LE(approx->NumEdges(), std::max<size_t>(GetParam().m, 1));
  for (const Edge& e : approx->edges()) {
    EXPECT_LE(e.transitions.size(), GetParam().k);
  }
  EXPECT_TRUE(approx->Validate().ok());
}

TEST_P(ApproximationProperties, PreservesUniquePaths) {
  auto sfa = MakeSfa();
  ASSERT_TRUE(sfa.ok());
  auto approx = ApproximateSfa(*sfa, {GetParam().m, GetParam().k, true});
  ASSERT_TRUE(approx.ok());
  EXPECT_TRUE(approx->CheckUniquePaths(1 << 22).ok());
}

TEST_P(ApproximationProperties, QueryProbabilityIsLowerBound) {
  auto sfa = MakeSfa();
  ASSERT_TRUE(sfa.ok());
  auto approx = ApproximateSfa(*sfa, {GetParam().m, GetParam().k, true});
  ASSERT_TRUE(approx.ok());
  for (const char* pat : {"Law", "8", "\\d\\d", "a(\\x)*t"}) {
    auto dfa = Dfa::Compile(pat, MatchMode::kContains);
    ASSERT_TRUE(dfa.ok());
    EXPECT_LE(EvalSfaQuery(*approx, *dfa), EvalSfaQuery(*sfa, *dfa) + 1e-9)
        << pat;
  }
}

TEST_P(ApproximationProperties, SerializationRoundTrips) {
  auto sfa = MakeSfa();
  ASSERT_TRUE(sfa.ok());
  auto approx = ApproximateSfa(*sfa, {GetParam().m, GetParam().k, true});
  ASSERT_TRUE(approx.ok());
  auto back = Sfa::Deserialize(approx->Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumEdges(), approx->NumEdges());
  EXPECT_NEAR(back->TotalMass(), approx->TotalMass(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApproximationProperties,
    ::testing::Values(ApproxCase{1, 1, 1}, ApproxCase{1, 1, 4},
                      ApproxCase{1, 3, 2}, ApproxCase{2, 5, 1},
                      ApproxCase{2, 8, 3}, ApproxCase{3, 2, 8},
                      ApproxCase{3, 100, 2}, ApproxCase{4, 4, 4},
                      ApproxCase{5, 6, 2}, ApproxCase{6, 3, 3}));

// ---------------------------------------------------------------------------
// Query evaluator agreement across implementations, swept over seeds.
// ---------------------------------------------------------------------------
class EvaluatorAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvaluatorAgreement, VectorMatrixAndBruteForceAgree) {
  Rng rng(GetParam());
  OcrNoiseModel model;
  model.alternatives = 3;
  model.p_branch = 0.25;
  auto sfa = OcrLineToSfa("U.S.C. 21", model, &rng);
  ASSERT_TRUE(sfa.ok());
  auto strings = sfa->EnumerateStrings(1 << 22);
  ASSERT_TRUE(strings.ok());
  for (const char* pat :
       {"U.S", "\\d", "C. 2\\d", "(U|V)", "S(\\x)*1", "absent"}) {
    auto dfa = Dfa::Compile(pat, MatchMode::kContains);
    ASSERT_TRUE(dfa.ok());
    double brute = 0;
    for (const auto& [s, p] : *strings) {
      if (dfa->Matches(s)) brute += p;
    }
    EXPECT_NEAR(EvalSfaQuery(*sfa, *dfa), brute, 1e-9) << pat;
    EXPECT_NEAR(EvalSfaQueryMatrix(*sfa, *dfa), brute, 1e-9) << pat;
  }
}

TEST_P(EvaluatorAgreement, BoundedKernelsBitIdenticalAndPruneSoundly) {
  Rng rng(GetParam() * 17 + 3);
  OcrNoiseModel model;
  model.alternatives = 3;
  model.p_branch = 0.25;
  auto sfa = OcrLineToSfa("Public Law 89", model, &rng);
  ASSERT_TRUE(sfa.ok());
  // Both the stochastic OCR transducer and a lossy approximation (mass
  // leaks at every chunk, which is what makes pruning bite in practice).
  auto approx = ApproximateSfa(*sfa, {4, 2, true});
  ASSERT_TRUE(approx.ok());
  EvalScratch scratch;  // deliberately shared across every case below
  for (const Sfa* s : {&*sfa, &*approx}) {
    const std::string blob = s->Serialize();
    auto back = Sfa::Deserialize(blob);
    ASSERT_TRUE(back.ok());
    for (const char* pat : {"Law", "8", "\\d\\d", "Pub", "absent"}) {
      auto dfa = Dfa::Compile(pat, MatchMode::kContains);
      ASSERT_TRUE(dfa.ok());
      const double reference = EvalSfaQuery(*s, *dfa);

      // (a) Bounded at threshold 0 is the reference, to the bit.
      EvalBound bound;
      EXPECT_EQ(EvalSfaQueryBounded(*s, *dfa, 0.0, &scratch, &bound),
                reference)
          << pat;
      EXPECT_FALSE(bound.pruned);

      // (c) The flat view kernel over the stored blob is also bit-equal.
      auto viewed = EvalSerializedSfaBounded(blob, *dfa, 0.0, &scratch);
      ASSERT_TRUE(viewed.ok());
      EXPECT_EQ(*viewed, reference) << pat;

      // Pruning soundness: for any threshold, either the DP completes with
      // the exact reference value, or it aborts — and then the true
      // probability is provably below the threshold (so a pruned candidate
      // could never have entered a top-k whose cutoff is the threshold).
      for (double threshold : {0.05, 0.3, 0.7, 1.1}) {
        auto p = EvalSerializedSfaBounded(blob, *dfa, threshold, &scratch,
                                          &bound);
        ASSERT_TRUE(p.ok());
        if (bound.pruned) {
          EXPECT_LT(reference, threshold) << pat << " thr=" << threshold;
          EXPECT_LE(bound.steps, bound.steps_total);
        } else {
          EXPECT_EQ(*p, reference) << pat << " thr=" << threshold;
        }
      }
    }
  }
}

TEST_P(EvaluatorAgreement, ViewDecodeMatchesDeserializeOnStoredBlobs) {
  Rng rng(GetParam() * 101 + 13);
  OcrNoiseModel model;
  model.alternatives = 4;
  model.p_branch = 0.3;
  auto sfa = OcrLineToSfa("insurance claim", model, &rng);
  ASSERT_TRUE(sfa.ok());
  auto approx = ApproximateSfa(*sfa, {6, 3, true});
  ASSERT_TRUE(approx.ok());
  SfaViewArena arena;  // reused across blobs, like an executor worker
  for (const Sfa* s : {&*sfa, &*approx}) {
    const std::string blob = s->Serialize();
    auto back = Sfa::Deserialize(blob);
    ASSERT_TRUE(back.ok());
    SfaView view;
    ASSERT_TRUE(view.Decode(blob, &arena).ok());
    ASSERT_EQ(view.NumNodes(), back->NumNodes());
    ASSERT_EQ(view.NumEdges(), back->NumEdges());
    EXPECT_EQ(view.start(), back->start());
    EXPECT_EQ(view.final(), back->final());
    EXPECT_EQ(view.TopologicalOrder(), back->TopologicalOrder());
    uint64_t chars = 0;
    for (NodeId n = 0; n < view.NumNodes(); ++n) {
      const std::vector<EdgeId>& out = back->OutEdges(n);
      ASSERT_EQ(static_cast<size_t>(view.out_end(n) - view.out_begin(n)),
                out.size());
      for (size_t k = 0; k < out.size(); ++k) {
        const ViewEdge& ve = view.edge(view.out_begin(n)[k]);
        const Edge& se = back->edge(out[k]);
        ASSERT_EQ(ve.to, se.to);
        ASSERT_EQ(ve.num_transitions, se.transitions.size());
        for (uint32_t t = 0; t < ve.num_transitions; ++t) {
          const ViewTransition& vt = view.transition(ve.first_transition + t);
          EXPECT_EQ(std::string(vt.label), se.transitions[t].label);
          EXPECT_EQ(vt.prob, se.transitions[t].prob);
          chars += vt.label.size();
        }
      }
    }
    EXPECT_EQ(view.TotalLabelChars(), chars);
    EXPECT_TRUE(view.MassBoundSafe());
  }
}

TEST_P(EvaluatorAgreement, KBestAgreesWithEnumeration) {
  Rng rng(GetParam() * 31 + 7);
  OcrNoiseModel model;
  model.alternatives = 4;
  auto sfa = OcrLineToSfa("lineage", model, &rng);
  ASSERT_TRUE(sfa.ok());
  auto slow = KBestStringsByEnumeration(*sfa, 20, 1 << 22);
  ASSERT_TRUE(slow.ok());
  auto fast = KBestStrings(*sfa, 20);
  ASSERT_EQ(fast.size(), slow->size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i].prob, (*slow)[i].prob, 1e-12) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorAgreement,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace staccato
