#include <gtest/gtest.h>

#include <set>

#include "automata/dfa.h"
#include "inference/kbest.h"
#include "ocr/confusion.h"
#include "ocr/corpus.h"
#include "ocr/generator.h"
#include "util/random.h"

namespace staccato {
namespace {

TEST(ConfusionTest, KnownClassesPresent) {
  auto has = [](char c, char alt) {
    const auto& v = ConfusablesFor(c);
    return std::find(v.begin(), v.end(), alt) != v.end();
  };
  EXPECT_TRUE(has('o', '0'));
  EXPECT_TRUE(has('0', 'o'));
  EXPECT_TRUE(has('l', '1'));
  EXPECT_TRUE(has('5', 'S'));
  EXPECT_TRUE(has('2', 'Z'));
}

TEST(ConfusionTest, FallbackNeverEmpty) {
  for (int i = 0; i < 95; ++i) {
    char c = static_cast<char>(' ' + i);
    EXPECT_FALSE(ConfusablesFor(c).empty()) << "char " << c;
  }
}

TEST(ConfusionTest, SegmentationSplits) {
  EXPECT_EQ(SegmentationSplit('m'), "rn");
  EXPECT_EQ(SegmentationSplit('w'), "vv");
  EXPECT_EQ(SegmentationSplit('x'), "");
}

TEST(GeneratorTest, ProducesValidStochasticSfa) {
  Rng rng(1);
  OcrNoiseModel model;
  auto sfa = OcrLineToSfa("Public Law 89 approved", model, &rng);
  ASSERT_TRUE(sfa.ok()) << sfa.status().ToString();
  EXPECT_TRUE(sfa->Validate(/*require_stochastic=*/true).ok());
  EXPECT_NEAR(sfa->TotalMass(), 1.0, 1e-9);
}

TEST(GeneratorTest, UniquePathsAcrossSeeds) {
  OcrNoiseModel model;
  model.alternatives = 2;
  model.p_branch = 0.8;  // stress the diamond construction
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    auto sfa = OcrLineToSfa("mud dim", model, &rng);
    ASSERT_TRUE(sfa.ok());
    Status st = sfa->CheckUniquePaths(1 << 22);
    EXPECT_TRUE(st.ok()) << "seed " << seed << ": " << st.ToString();
  }
}

TEST(GeneratorTest, MapErrorsAppearAtExpectedRate) {
  OcrNoiseModel model;
  model.p_error = 0.25;
  model.p_branch = 0.0;
  Rng rng(7);
  std::string line(200, 'e');
  for (size_t i = 0; i < line.size(); i += 2) line[i] = 'a';
  auto sfa = OcrLineToSfa(line, model, &rng);
  ASSERT_TRUE(sfa.ok());
  auto map = MapString(*sfa);
  ASSERT_TRUE(map.ok());
  ASSERT_EQ(map->str.size(), line.size());
  size_t errors = 0;
  for (size_t i = 0; i < line.size(); ++i) {
    if (map->str[i] != line[i]) ++errors;
  }
  double rate = static_cast<double>(errors) / static_cast<double>(line.size());
  EXPECT_GT(rate, 0.10);
  EXPECT_LT(rate, 0.45);
}

TEST(GeneratorTest, ZeroErrorGivesPerfectMap) {
  OcrNoiseModel model;
  model.p_error = 0.0;
  model.p_branch = 0.0;
  Rng rng(3);
  auto sfa = OcrLineToSfa("exact transcription", model, &rng);
  ASSERT_TRUE(sfa.ok());
  auto map = MapString(*sfa);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->str, "exact transcription");
}

TEST(GeneratorTest, TruthAlwaysRepresented) {
  // The true transcription must be emitted with non-zero probability even
  // when the MAP is wrong.
  OcrNoiseModel model;
  model.p_error = 0.5;
  model.p_branch = 0.0;
  model.alternatives = 6;
  Rng rng(9);
  std::string truth = "Ford";
  auto sfa = OcrLineToSfa(truth, model, &rng);
  ASSERT_TRUE(sfa.ok());
  auto strings = sfa->EnumerateStrings(1 << 22);
  ASSERT_TRUE(strings.ok());
  bool found = false;
  for (const auto& [s, p] : *strings) {
    if (s == truth) {
      found = true;
      EXPECT_GT(p, 0.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(GeneratorTest, RejectsBadInput) {
  OcrNoiseModel model;
  Rng rng(1);
  EXPECT_FALSE(OcrLineToSfa("", model, &rng).ok());
  EXPECT_FALSE(OcrLineToSfa("tab\tline", model, &rng).ok());
  OcrNoiseModel bad;
  bad.alternatives = 1;
  EXPECT_FALSE(OcrLineToSfa("x", bad, &rng).ok());
}

TEST(CorpusTest, ShapeMatchesSpec) {
  CorpusSpec spec;
  spec.kind = DatasetKind::kCongressActs;
  spec.num_pages = 3;
  spec.lines_per_page = 10;
  Corpus corpus = GenerateCorpus(spec);
  EXPECT_EQ(corpus.name, "CA");
  EXPECT_EQ(corpus.lines.size(), 30u);
  EXPECT_EQ(corpus.page_of_line.size(), 30u);
  EXPECT_EQ(corpus.page_of_line.front(), 0u);
  EXPECT_EQ(corpus.page_of_line.back(), 2u);
  for (const std::string& line : corpus.lines) {
    EXPECT_FALSE(line.empty());
    for (char c : line) EXPECT_TRUE(IsAlphabetChar(c));
  }
}

TEST(CorpusTest, Deterministic) {
  CorpusSpec spec;
  spec.seed = 99;
  Corpus a = GenerateCorpus(spec);
  Corpus b = GenerateCorpus(spec);
  EXPECT_EQ(a.lines, b.lines);
}

TEST(CorpusTest, QueriesHaveGroundTruth) {
  // Every Table-6 query must have at least one true answer in a
  // moderately sized corpus.
  for (DatasetKind kind : {DatasetKind::kCongressActs, DatasetKind::kLiterature,
                           DatasetKind::kDbPapers}) {
    CorpusSpec spec;
    spec.kind = kind;
    spec.num_pages = 8;
    spec.lines_per_page = 40;
    Corpus corpus = GenerateCorpus(spec);
    for (const std::string& query : DatasetQueries(kind)) {
      auto dfa = Dfa::Compile(query, MatchMode::kContains);
      ASSERT_TRUE(dfa.ok()) << query;
      size_t truth = 0;
      for (const std::string& line : corpus.lines) {
        if (dfa->Matches(line)) ++truth;
      }
      EXPECT_GT(truth, 0u) << DatasetName(kind) << " query '" << query << "'";
    }
  }
}

TEST(OcrDatasetTest, EndToEnd) {
  CorpusSpec spec;
  spec.num_pages = 2;
  spec.lines_per_page = 5;
  OcrNoiseModel model;
  model.alternatives = 6;
  auto ds = GenerateOcrDataset(spec, model);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->sfas.size(), ds->corpus.lines.size());
  EXPECT_GT(ds->TotalSfaBytes(), ds->TotalTextBytes() * 10)
      << "SFA representation should blow up well beyond the plain text";
  for (const Sfa& sfa : ds->sfas) {
    EXPECT_TRUE(sfa.Validate(true).ok());
  }
}

TEST(DatasetQueriesTest, SevenPerDataset) {
  for (DatasetKind kind : {DatasetKind::kCongressActs, DatasetKind::kLiterature,
                           DatasetKind::kDbPapers}) {
    EXPECT_EQ(DatasetQueries(kind).size(), 7u);
  }
}

}  // namespace
}  // namespace staccato
