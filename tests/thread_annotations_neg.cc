// Negative-compilation fixture for clang -Wthread-safety. Each CASE_*
// block below is a deliberate lock-discipline violation; the driver
// (tests/thread_annotations_compile_test.sh) compiles this file once per
// case with -Wthread-safety -Werror and asserts that every violation
// FAILS to compile while the CASE_BASELINE build succeeds. This is the
// proof that the annotations in util/mutex.h actually bite: delete a
// GUARDED_BY or touch a guarded field without its lock, and the build
// breaks instead of shipping a race.
//
// Named *_neg.cc, not *_test.cc, so the CMake test glob does not turn it
// into a gtest executable — it is only ever compiled by the driver.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    staccato::util::MutexLock lock(&mu_);
    ++value_;
  }

  int UnguardedRead() {
#if defined(CASE_UNGUARDED_READ)
    // VIOLATION: reading a GUARDED_BY field without holding mu_.
    return value_;
#else
    staccato::util::MutexLock lock(&mu_);
    return value_;
#endif
  }

  void CallsRequiresWithoutLock() {
#if defined(CASE_REQUIRES_UNHELD)
    // VIOLATION: BumpLocked() REQUIRES(mu_) but mu_ is not held here.
    BumpLocked();
#else
    staccato::util::MutexLock lock(&mu_);
    BumpLocked();
#endif
  }

  void ForgetsToUnlock() {
#if defined(CASE_LEAKED_LOCK)
    // VIOLATION: acquiring without releasing — the capability is still
    // held when the function returns.
    mu_.Lock();
    ++value_;
#else
    staccato::util::MutexLock lock(&mu_);
    ++value_;
#endif
  }

 private:
  void BumpLocked() REQUIRES(mu_) { ++value_; }

  staccato::util::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  c.CallsRequiresWithoutLock();
  c.ForgetsToUnlock();
  return c.UnguardedRead() == 0 ? 1 : 0;
}
