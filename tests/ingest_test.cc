// Differential property tests for incremental ingest (StaccatoDb::Append,
// Checkpoint, WAL recovery).
//
// The invariant under test: a database grown by Load(prefix) followed by
// Append() of the remaining documents — with checkpoints, crashes, and
// reopens interleaved anywhere — answers every query bit-identically to a
// database bulk-loaded with the full dataset. "Bit-identical" means the
// same ranked documents with exactly equal probabilities, across
// approaches, early-stop on/off, and 1/4/8 eval threads.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "eval/workbench.h"
#include "ocr/corpus.h"
#include "ocr/generator.h"
#include "rdbms/session.h"
#include "rdbms/staccato_db.h"
#include "rdbms/wal.h"
#include "util/fault_fs.h"
#include "util/strings.h"

namespace staccato {
namespace rdbms {
namespace {

CorpusSpec SmallSpec() {
  CorpusSpec spec;
  spec.kind = DatasetKind::kCongressActs;
  spec.num_pages = 2;
  spec.lines_per_page = 10;
  spec.max_line_chars = 40;
  spec.seed = 4242;
  return spec;
}

OcrNoiseModel Noise() {
  OcrNoiseModel noise;
  noise.alternatives = 6;
  return noise;
}

LoadOptions SmallLoad() {
  LoadOptions opts;
  opts.kmap_k = 8;
  opts.staccato.m = 16;
  opts.staccato.k = 8;
  return opts;
}

/// The first `n` documents of `d`, presented as a dataset of its own (the
/// corpus name is preserved so appended docs land in the same pages).
OcrDataset Prefix(const OcrDataset& d, size_t n) {
  OcrDataset p;
  p.corpus.name = d.corpus.name;
  p.corpus.num_pages = d.corpus.num_pages;
  p.corpus.lines.assign(d.corpus.lines.begin(), d.corpus.lines.begin() + n);
  p.corpus.page_of_line.assign(d.corpus.page_of_line.begin(),
                               d.corpus.page_of_line.begin() + n);
  p.sfas.assign(d.sfas.begin(), d.sfas.begin() + n);
  return p;
}

/// Mirrors what Load() derives for document i, so an Append()ed document
/// is indistinguishable from a bulk-loaded one.
DocumentInput InputFor(const OcrDataset& d, size_t i) {
  DocumentInput in;
  const uint32_t page = d.corpus.page_of_line[i];
  in.doc_name = StringPrintf("%s-page-%u", d.corpus.name.c_str(), page);
  in.year = 2010 + page;
  in.truth = d.corpus.lines[i];
  in.sfa = d.sfas[i];
  return in;
}

std::vector<Answer> RunQuery(StaccatoDb* db, Approach approach,
                             const std::string& pattern, IndexMode index_mode,
                             size_t threads, bool early_stop) {
  Session session(db, SessionOptions{threads, 50});
  QueryOptions q;
  q.pattern = pattern;
  q.num_ans = 50;
  q.index_mode = index_mode;
  q.eval_threads = threads;
  q.early_stop = early_stop;
  auto pq = session.Prepare(approach, q);
  EXPECT_TRUE(pq.ok()) << pq.status().ToString();
  auto ans = pq->Execute();
  EXPECT_TRUE(ans.ok()) << ans.status().ToString();
  return ans.ok() ? *ans : std::vector<Answer>{};
}

void ExpectSameAnswers(const std::vector<Answer>& want,
                       const std::vector<Answer>& got, const char* what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].doc, got[i].doc) << what << " rank " << i;
    EXPECT_EQ(want[i].prob, got[i].prob)
        << what << " rank " << i << " (must be bit-identical)";
  }
}

/// Compares `subject` against `oracle` on every benchmark pattern for
/// the given approach, plus ground truth for one pattern.
void ExpectSameDb(StaccatoDb* oracle, StaccatoDb* subject, Approach approach,
                  IndexMode index_mode, size_t threads, bool early_stop,
                  const std::vector<std::string>& patterns) {
  ASSERT_EQ(oracle->NumSfas(), subject->NumSfas());
  for (const std::string& pat : patterns) {
    auto want = RunQuery(oracle, approach, pat, index_mode, threads,
                         early_stop);
    auto got = RunQuery(subject, approach, pat, index_mode, threads,
                        early_stop);
    ExpectSameAnswers(want, got, pat.c_str());
  }
  auto truth_want = oracle->GroundTruthFor(patterns[0]);
  auto truth_got = subject->GroundTruthFor(patterns[0]);
  ASSERT_TRUE(truth_want.ok());
  ASSERT_TRUE(truth_got.ok());
  EXPECT_EQ(*truth_want, *truth_got);
}

class IngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto data = GenerateOcrDataset(SmallSpec(), Noise());
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    full_ = std::move(*data);
    total_ = full_.sfas.size();
    patterns_ = DatasetQueries(DatasetKind::kCongressActs);
    patterns_.resize(3);  // two keywords + one regex keep runtime sane
  }

  std::unique_ptr<StaccatoDb> OpenAt(const std::string& dir) {
    auto db = StaccatoDb::Open(dir);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(*db);
  }

  /// Bulk-loads the first `n` documents into a fresh directory.
  std::unique_ptr<StaccatoDb> Oracle(size_t n) {
    auto db = OpenAt(eval::MakeScratchDir("ingest_oracle"));
    Status s = db->Load(Prefix(full_, n), SmallLoad());
    EXPECT_TRUE(s.ok()) << s.ToString();
    return db;
  }

  Status AppendRange(StaccatoDb* db, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      STACCATO_RETURN_NOT_OK(db->Append(InputFor(full_, i)));
    }
    return Status::OK();
  }

  OcrDataset full_;
  size_t total_ = 0;
  std::vector<std::string> patterns_;
};

// The core differential property: Load(prefix) + Append(rest) must be
// bit-identical to Load(full), across the whole execution matrix.
TEST_F(IngestTest, AppendMatchesBulkLoad) {
  auto oracle = Oracle(total_);
  auto subject = OpenAt(eval::MakeScratchDir("ingest_subject"));
  ASSERT_TRUE(subject->Load(Prefix(full_, total_ / 2), SmallLoad()).ok());
  ASSERT_TRUE(AppendRange(subject.get(), total_ / 2, total_).ok());
  ASSERT_EQ(subject->DeltaDocs(), total_ - total_ / 2);

  // Full matrix on the paper's main approach...
  for (bool early_stop : {true, false}) {
    for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
      ExpectSameDb(oracle.get(), subject.get(), Approach::kStaccato,
                   IndexMode::kNever, threads, early_stop, patterns_);
    }
  }
  // ...and one configuration each for the other approaches.
  for (Approach a : {Approach::kMap, Approach::kKMap, Approach::kFullSfa}) {
    ExpectSameDb(oracle.get(), subject.get(), a, IndexMode::kNever, 4, true,
                 patterns_);
  }
}

// Appending into a database whose inverted index predates the appends:
// delta postings are derived at Append time and probed identically.
TEST_F(IngestTest, AppendWithInvertedIndex) {
  std::vector<std::string> terms;
  for (const std::string& line : full_.corpus.lines) {
    size_t start = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == ' ') {
        if (i - start >= 4) terms.push_back(line.substr(start, i - start));
        start = i + 1;
      }
    }
  }
  auto oracle = Oracle(total_);
  ASSERT_TRUE(oracle->BuildInvertedIndex(terms).ok());

  auto subject = OpenAt(eval::MakeScratchDir("ingest_subject_idx"));
  ASSERT_TRUE(subject->Load(Prefix(full_, total_ / 2), SmallLoad()).ok());
  ASSERT_TRUE(subject->BuildInvertedIndex(terms).ok());
  ASSERT_TRUE(AppendRange(subject.get(), total_ / 2, total_).ok());

  ExpectSameDb(oracle.get(), subject.get(), Approach::kStaccato,
               IndexMode::kForce, 4, true, patterns_);
  // Rebuilding the index after the appends (delta postings recomputed
  // from the delta blobs) must agree too.
  ASSERT_TRUE(subject->BuildInvertedIndex(terms).ok());
  ExpectSameDb(oracle.get(), subject.get(), Approach::kStaccato,
               IndexMode::kForce, 4, true, patterns_);
}

// Random interleavings of Append and Checkpoint, compared against a
// bulk-loaded oracle of the same prefix at several cut points.
TEST_F(IngestTest, RandomInterleavingMatchesRebuild) {
  std::mt19937 rng(20260808);
  auto subject = OpenAt(eval::MakeScratchDir("ingest_interleave"));
  const size_t base = 4;
  ASSERT_TRUE(subject->Load(Prefix(full_, base), SmallLoad()).ok());

  size_t next = base;
  while (next < total_) {
    const size_t burst =
        std::min<size_t>(1 + rng() % 4, total_ - next);
    ASSERT_TRUE(AppendRange(subject.get(), next, next + burst).ok());
    next += burst;
    if (rng() % 3 == 0) {
      ASSERT_TRUE(subject->Checkpoint().ok());
      ASSERT_EQ(subject->DeltaDocs(), 0u);
    }
    if (rng() % 2 == 0) {
      auto oracle = Oracle(next);
      ExpectSameDb(oracle.get(), subject.get(), Approach::kStaccato,
                   IndexMode::kNever, 4, true, patterns_);
    }
  }
  auto oracle = Oracle(total_);
  ExpectSameDb(oracle.get(), subject.get(), Approach::kStaccato,
               IndexMode::kNever, 1, false, patterns_);
}

// Close without checkpointing: reopening replays the WAL and the delta
// generation is reconstructed bit-identically.
TEST_F(IngestTest, ReopenReplaysWal) {
  const std::string dir = eval::MakeScratchDir("ingest_reopen");
  {
    auto subject = OpenAt(dir);
    ASSERT_TRUE(subject->Load(Prefix(full_, total_ / 2), SmallLoad()).ok());
    ASSERT_TRUE(AppendRange(subject.get(), total_ / 2, total_).ok());
  }  // destructor: no checkpoint, the WAL is the only record of the delta

  auto reopened = StaccatoDb::OpenExisting(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->DeltaDocs(), total_ - total_ / 2);
  auto oracle = Oracle(total_);
  ExpectSameDb(oracle.get(), reopened->get(), Approach::kStaccato,
               IndexMode::kNever, 4, true, patterns_);
}

// Checkpoint then reopen: the delta was folded into a fresh epoch whose
// meta commit carries the load parameters, so the reopened base answers
// identically and further appends derive with the same knobs.
TEST_F(IngestTest, CheckpointPersistsAcrossReopen) {
  const std::string dir = eval::MakeScratchDir("ingest_ckpt");
  {
    auto subject = OpenAt(dir);
    ASSERT_TRUE(subject->Load(Prefix(full_, total_ - 2), SmallLoad()).ok());
    ASSERT_TRUE(AppendRange(subject.get(), total_ - 2, total_ - 1).ok());
    ASSERT_TRUE(subject->Checkpoint().ok());
    EXPECT_EQ(subject->Epoch(), 1u);
    EXPECT_EQ(subject->DeltaDocs(), 0u);
  }
  auto reopened = StaccatoDb::OpenExisting(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->Epoch(), 1u);
  EXPECT_EQ((*reopened)->NumSfas(), total_ - 1);
  // Appends after reopen must use the meta-preserved LoadOptions.
  ASSERT_TRUE(AppendRange(reopened->get(), total_ - 1, total_).ok());
  auto oracle = Oracle(total_);
  ExpectSameDb(oracle.get(), reopened->get(), Approach::kStaccato,
               IndexMode::kNever, 4, true, patterns_);
}

// A torn WAL tail (crash mid-write) is discarded on reopen: whatever
// committed prefix survives answers identically to a bulk load of
// exactly that many documents.
TEST_F(IngestTest, TornWalTailRecoversCommittedPrefix) {
  const std::string dir = eval::MakeScratchDir("ingest_torn");
  const size_t base = total_ / 2;
  {
    auto subject = OpenAt(dir);
    ASSERT_TRUE(subject->Load(Prefix(full_, base), SmallLoad()).ok());
    ASSERT_TRUE(AppendRange(subject.get(), base, total_).ok());
  }

  // Chop one byte off the log: the last commit record is torn, so the
  // last append must vanish while every earlier one survives.
  const std::string wal = WalPath(dir);
  FILE* f = fopen(wal.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(fseek(f, 0, SEEK_END), 0);
  const long size = ftell(f);
  ASSERT_GT(size, 1);
  ASSERT_EQ(ftruncate(fileno(f), size - 1), 0);
  fclose(f);

  auto reopened = StaccatoDb::OpenExisting(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->NumSfas(), total_ - 1);
  {
    auto oracle = Oracle(total_ - 1);
    ExpectSameDb(oracle.get(), reopened->get(), Approach::kStaccato,
                 IndexMode::kNever, 4, true, patterns_);
  }

  // More aggressive crash: keep only 40% of the log. The recovered count
  // n' is some committed prefix in [base, total], and the database must
  // be bit-identical to a bulk load of exactly n' documents.
  reopened->reset();
  f = fopen(wal.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(fseek(f, 0, SEEK_END), 0);
  const long size2 = ftell(f);
  ASSERT_EQ(ftruncate(fileno(f), size2 * 2 / 5), 0);
  fclose(f);

  reopened = StaccatoDb::OpenExisting(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const size_t recovered = (*reopened)->NumSfas();
  EXPECT_GE(recovered, base);
  EXPECT_LE(recovered, total_);
  auto oracle = Oracle(recovered);
  ExpectSameDb(oracle.get(), reopened->get(), Approach::kStaccato,
               IndexMode::kNever, 4, true, patterns_);
}

// STACCATO_DELTA_DOCS triggers an automatic checkpoint once the delta
// reaches the threshold.
TEST_F(IngestTest, AutoCheckpointEnvThreshold) {
  setenv("STACCATO_DELTA_DOCS", "2", 1);
  auto subject = OpenAt(eval::MakeScratchDir("ingest_autockpt"));
  unsetenv("STACCATO_DELTA_DOCS");
  ASSERT_TRUE(subject->Load(Prefix(full_, total_ - 3), SmallLoad()).ok());
  ASSERT_TRUE(AppendRange(subject.get(), total_ - 3, total_ - 1).ok());
  EXPECT_EQ(subject->Epoch(), 1u);
  EXPECT_EQ(subject->DeltaDocs(), 0u);
  ASSERT_TRUE(AppendRange(subject.get(), total_ - 1, total_).ok());
  EXPECT_EQ(subject->DeltaDocs(), 1u);

  auto oracle = Oracle(total_);
  ExpectSameDb(oracle.get(), subject.get(), Approach::kStaccato,
               IndexMode::kNever, 4, true, patterns_);
}

// The sync policy changes durability, never answers.
TEST_F(IngestTest, SyncNeverPolicyAnswersIdentically) {
  setenv("STACCATO_WAL_SYNC", "never", 1);
  auto subject = OpenAt(eval::MakeScratchDir("ingest_syncnever"));
  unsetenv("STACCATO_WAL_SYNC");
  ASSERT_TRUE(subject->Load(Prefix(full_, total_ / 2), SmallLoad()).ok());
  ASSERT_TRUE(AppendRange(subject.get(), total_ / 2, total_).ok());
  auto oracle = Oracle(total_);
  ExpectSameDb(oracle.get(), subject.get(), Approach::kStaccato,
               IndexMode::kNever, 1, true, patterns_);
}

// Appends racing query execution (run under TSan in CI): queries see a
// consistent snapshot — some prefix of the appends — and the final state
// matches the oracle.
TEST_F(IngestTest, ConcurrentAppendAndExecute) {
  auto subject = OpenAt(eval::MakeScratchDir("ingest_race"));
  const size_t base = total_ / 2;
  ASSERT_TRUE(subject->Load(Prefix(full_, base), SmallLoad()).ok());

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  StaccatoDb* db = subject.get();
  const std::string pattern = patterns_[0];

  // Append only: Checkpoint swaps the storage handles a PlanContext
  // snapshot points at, so it requires quiesced execution (see the
  // Checkpoint doc comment); Append is the operation advertised as safe
  // against concurrent queries.
  std::thread appender([&] {
    for (size_t i = base; i < total_; ++i) {
      if (!db->Append(InputFor(full_, i)).ok()) failures.fetch_add(1);
    }
    done.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!done.load()) {
        Session session(db, SessionOptions{2, 50});
        QueryOptions q;
        q.pattern = pattern;
        q.num_ans = 50;
        q.eval_threads = 2;
        auto pq = session.Prepare(Approach::kStaccato, q);
        if (!pq.ok()) {
          failures.fetch_add(1);
          break;
        }
        auto ans = pq->Execute();
        if (!ans.ok()) {
          failures.fetch_add(1);
          break;
        }
      }
    });
  }
  appender.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);

  auto oracle = Oracle(total_);
  ExpectSameDb(oracle.get(), subject.get(), Approach::kStaccato,
               IndexMode::kNever, 4, true, patterns_);
}

// Probabilistic fault soak (opt-in: STACCATO_FAULT_SOAK=1, run by the CI
// fault-soak job). Appends race a flaky disk — every WAL write, flush,
// and fsync fails independently with 10% probability — and the invariant
// is the crash-safety contract, not any particular success count: each
// Append either succeeds or fails cleanly with a Status, the database
// stays queryable throughout, and after the disk heals a reopen recovers
// every committed document (at least the reported successes, at most the
// attempts — a fault after the commit record is a durable append that
// reported failure).
TEST_F(IngestTest, FaultSoakAppendsSurviveFlakyDisk) {
  const char* soak = std::getenv("STACCATO_FAULT_SOAK");
  if (soak == nullptr || std::string(soak) != "1") {
    GTEST_SKIP() << "set STACCATO_FAULT_SOAK=1 to run the fault soak";
  }
  const std::string dir = eval::MakeScratchDir("ingest_soak");
  const size_t base = total_ / 2;
  size_t successes = 0;
  {
    auto subject = OpenAt(dir);
    ASSERT_TRUE(subject->Load(Prefix(full_, base), SmallLoad()).ok());

    util::FaultInjector::Global()->Seed(20260808);
    for (util::FaultOp op :
         {util::FaultOp::kWrite, util::FaultOp::kFlush, util::FaultOp::kSync}) {
      util::FaultRule flaky;
      flaky.op = op;
      flaky.path_substr = WalPath(dir);
      flaky.probability = 0.1;
      util::FaultInjector::Global()->Install(flaky);
    }

    for (size_t i = base; i < total_; ++i) {
      if (subject->Append(InputFor(full_, i)).ok()) ++successes;
      // The database answers queries between flaky appends; answers are
      // well-formed (prob-ranked, no crash) whatever the disk did.
      if ((i - base) % 4 == 0) {
        auto ans = RunQuery(subject.get(), Approach::kStaccato, patterns_[0],
                            IndexMode::kNever, 2, true);
        for (size_t r = 1; r < ans.size(); ++r) {
          ASSERT_LE(ans[r].prob, ans[r - 1].prob) << "unranked answer";
        }
      }
    }
    util::FaultInjector::Global()->Clear();
  }  // close without checkpoint: recovery comes from the surviving WAL

  auto reopened = StaccatoDb::OpenExisting(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GE((*reopened)->NumSfas(), base + successes);
  EXPECT_LE((*reopened)->NumSfas(), total_);
  auto ans = RunQuery(reopened->get(), Approach::kStaccato, patterns_[0],
                      IndexMode::kNever, 2, true);
  for (size_t r = 1; r < ans.size(); ++r) {
    EXPECT_LE(ans[r].prob, ans[r - 1].prob);
  }
}

}  // namespace
}  // namespace rdbms
}  // namespace staccato
