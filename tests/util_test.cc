#include <gtest/gtest.h>

#include "util/random.h"
#include "util/result.h"
#include "util/serde.h"
#include "util/status.h"
#include "util/strings.h"

namespace staccato {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad m");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad m");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad m");
}

TEST(StatusTest, AllConstructorsSetMatchingCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).ValueUnsafe();
  EXPECT_EQ(v, "payload");
}

TEST(SerdeTest, RoundTripScalars) {
  BinaryWriter w;
  w.PutU8(7);
  w.PutU32(123456);
  w.PutU64(1ULL << 40);
  w.PutI64(-99);
  w.PutDouble(0.125);
  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.GetU8(), 7);
  EXPECT_EQ(*r.GetU32(), 123456u);
  EXPECT_EQ(*r.GetU64(), 1ULL << 40);
  EXPECT_EQ(*r.GetI64(), -99);
  EXPECT_EQ(*r.GetDouble(), 0.125);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, VarintBoundaries) {
  for (uint64_t v : std::vector<uint64_t>{0, 1, 127, 128, 16383, 16384,
                                          UINT64_C(0xFFFFFFFFFFFFFFFF)}) {
    BinaryWriter w;
    w.PutVarint(v);
    BinaryReader r(w.buffer());
    auto got = r.GetVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

TEST(SerdeTest, StringRoundTrip) {
  BinaryWriter w;
  w.PutString("hello");
  w.PutString("");
  w.PutString(std::string(1000, 'x'));
  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_EQ(r.GetString()->size(), 1000u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, ReadPastEndFails) {
  BinaryWriter w;
  w.PutU8(1);
  BinaryReader r(w.buffer());
  ASSERT_TRUE(r.GetU8().ok());
  EXPECT_TRUE(r.GetU32().status().IsCorruption());
}

TEST(SerdeTest, CorruptStringLengthFails) {
  BinaryWriter w;
  w.PutVarint(1000);  // declares 1000 bytes, provides none
  BinaryReader r(w.buffer());
  EXPECT_TRUE(r.GetString().status().IsCorruption());
}

TEST(StringsTest, Split) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(JoinStrings({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringsTest, ContainsAndLower) {
  EXPECT_TRUE(Contains("Public Law 89", "Law"));
  EXPECT_FALSE(Contains("Public Law 89", "law"));
  EXPECT_EQ(ToLowerAscii("MiXeD 42"), "mixed 42");
}

TEST(StringsTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 0.5), "0.50");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 kB");
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(2);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Categorical(w), 1u);
  }
}

}  // namespace
}  // namespace staccato
