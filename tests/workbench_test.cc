#include <gtest/gtest.h>

#include "eval/workbench.h"
#include "metrics/metrics.h"
#include "ocr/corpus.h"

namespace staccato {
namespace {

using eval::Workbench;
using eval::WorkbenchSpec;
using rdbms::Approach;

TEST(MetricsTest, RankAnswersOrdersAndTruncates) {
  std::vector<Answer> answers = {{1, 0.2}, {2, 0.9}, {3, 0.0}, {4, 0.5}, {5, 0.5}};
  auto ranked = RankAnswers(answers, 3);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].doc, 2u);
  EXPECT_EQ(ranked[1].doc, 4u);  // tie with 5 broken by doc id
  EXPECT_EQ(ranked[2].doc, 5u);
}

TEST(MetricsTest, ZeroProbDropped) {
  auto ranked = RankAnswers({{1, 0.0}, {2, 0.0}}, 10);
  EXPECT_TRUE(ranked.empty());
}

TEST(MetricsTest, ScoreEdgeCases) {
  QualityScores empty_both = ScoreAnswers({}, {});
  EXPECT_EQ(empty_both.precision, 1.0);
  EXPECT_EQ(empty_both.recall, 1.0);
  QualityScores nothing_found = ScoreAnswers({}, {1, 2});
  EXPECT_EQ(nothing_found.precision, 0.0);
  EXPECT_EQ(nothing_found.recall, 0.0);
  EXPECT_EQ(nothing_found.f1, 0.0);
  QualityScores half = ScoreAnswers({{1, 0.5}, {9, 0.4}}, {1, 2});
  EXPECT_EQ(half.precision, 0.5);
  EXPECT_EQ(half.recall, 0.5);
  EXPECT_NEAR(half.f1, 0.5, 1e-12);
}

TEST(WorkbenchTest, CreatesAndRuns) {
  WorkbenchSpec spec;
  spec.corpus.kind = DatasetKind::kDbPapers;
  spec.corpus.num_pages = 1;
  spec.corpus.lines_per_page = 15;
  spec.noise.alternatives = 6;
  spec.load.kmap_k = 5;
  spec.load.staccato = {10, 5, true};
  auto wb = Workbench::Create(spec);
  ASSERT_TRUE(wb.ok()) << wb.status().ToString();
  EXPECT_EQ((*wb)->db().NumSfas(), 15u);
  auto row = (*wb)->Run(Approach::kStaccato, "database");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->pattern, "database");
  EXPECT_EQ(row->approach, Approach::kStaccato);
  EXPECT_GT(row->stats.seconds, 0.0);
  EXPECT_LE(row->answers, 100u);
}

TEST(WorkbenchTest, ShardedRunMatchesSinglePartition) {
  WorkbenchSpec spec;
  spec.corpus.kind = DatasetKind::kDbPapers;
  spec.corpus.num_pages = 2;
  spec.corpus.lines_per_page = 10;
  spec.noise.alternatives = 6;
  spec.load.kmap_k = 5;
  spec.load.staccato = {10, 5, true};
  auto solo = Workbench::Create(spec);
  ASSERT_TRUE(solo.ok()) << solo.status().ToString();
  spec.shards = 3;
  auto sharded = Workbench::Create(spec);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ((*sharded)->sharded()->NumSfas(), 20u);
  auto a = (*solo)->Run(Approach::kStaccato, "database");
  auto b = (*sharded)->Run(Approach::kStaccato, "database");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  // Same dataset, same ground truth, bit-identical ranked quality.
  EXPECT_EQ(a->truth_size, b->truth_size);
  EXPECT_EQ(a->answers, b->answers);
  EXPECT_EQ(a->quality.recall, b->quality.recall);
  EXPECT_EQ(b->stats.shards.size(), 3u);
}

TEST(WorkbenchTest, InvalidPatternPropagates) {
  WorkbenchSpec spec;
  spec.corpus.num_pages = 1;
  spec.corpus.lines_per_page = 5;
  spec.noise.alternatives = 4;
  spec.load.kmap_k = 2;
  spec.load.staccato = {5, 2, true};
  auto wb = Workbench::Create(spec);
  ASSERT_TRUE(wb.ok());
  EXPECT_FALSE((*wb)->Run(Approach::kMap, "(unclosed").ok());
}

TEST(WorkbenchTest, ScratchDirsAreUnique) {
  std::string a = eval::MakeScratchDir("x");
  std::string b = eval::MakeScratchDir("x");
  EXPECT_NE(a, b);
}

TEST(WorkbenchTest, IndexedRunWithoutIndexFallsBackToScan) {
  WorkbenchSpec spec;
  spec.corpus.num_pages = 1;
  spec.corpus.lines_per_page = 8;
  spec.noise.alternatives = 4;
  spec.load.kmap_k = 2;
  spec.load.staccato = {5, 2, true};
  spec.build_index = false;
  auto wb = Workbench::Create(spec);
  ASSERT_TRUE(wb.ok());
  // use_index without a built index: the Staccato path returns
  // InvalidArgument from the candidates lookup... it must NOT crash, and a
  // plain run must succeed.
  auto plain = (*wb)->Run(Approach::kStaccato, "act");
  EXPECT_TRUE(plain.ok());
  auto indexed = (*wb)->Run(Approach::kStaccato, "act", 100, true);
  EXPECT_FALSE(indexed.ok());
}

}  // namespace
}  // namespace staccato
