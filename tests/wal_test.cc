// Crash-recovery matrix for the write-ahead log (rdbms/wal.h).
//
// The physical framing guarantees that every byte of the file belongs to
// exactly one record's span (trailer padding is attributed to the record
// whose AddRecord wrote it). The matrix tests exploit that: truncating
// the file at any byte L recovers exactly the records whose span ends at
// or before L, and corrupting any single byte of record i's span
// recovers exactly records 0..i-1. Both matrices are exhaustive over a
// small multi-record log and targeted over a block-spanning one.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/workbench.h"
#include "rdbms/wal.h"
#include "util/fault_fs.h"

namespace staccato {
namespace rdbms {
namespace {

std::string ReadFileBytes(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  fclose(f);
  return out;
}

void WriteFileBytes(const std::string& path, std::string_view bytes) {
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  ASSERT_EQ(fclose(f), 0);
}

/// Deterministic payload: record i's byte j cycles through a 23-letter
/// alphabet offset by the record index, so records are distinguishable.
std::string Payload(size_t i, size_t size) {
  std::string p(size, '\0');
  for (size_t j = 0; j < size; ++j) {
    p[j] = static_cast<char>('A' + (i * 7 + j) % 23);
  }
  return p;
}

struct BuiltLog {
  std::string path;
  std::vector<std::string> payloads;
  /// ends[i] = file offset just past record i's span (writer.offset()
  /// after the AddRecord); record i's span is [ends[i-1], ends[i]).
  std::vector<uint64_t> ends;
};

BuiltLog BuildLog(const std::string& path, const std::vector<size_t>& sizes) {
  BuiltLog log;
  log.path = path;
  auto writer_or = WalWriter::Open(path, 0, WalSyncPolicy::kNever);
  EXPECT_TRUE(writer_or.ok()) << writer_or.status().ToString();
  auto writer = std::move(*writer_or);
  for (size_t i = 0; i < sizes.size(); ++i) {
    log.payloads.push_back(Payload(i, sizes[i]));
    Status s = writer->AddRecord(log.payloads.back());
    EXPECT_TRUE(s.ok()) << s.ToString();
    log.ends.push_back(writer->offset());
  }
  Status s = writer->Commit();  // kNever: fflush only
  EXPECT_TRUE(s.ok()) << s.ToString();
  return log;  // writer destructor closes the file
}

struct ReadOutcome {
  size_t recovered = 0;
  bool torn = false;
  uint64_t last_end = 0;
};

/// Reads `path` and asserts the recovered records are a bit-identical
/// prefix of `log`'s payloads.
ReadOutcome ReadPrefix(const std::string& path, const BuiltLog& log) {
  ReadOutcome out;
  auto reader_or = WalReader::Open(path);
  EXPECT_TRUE(reader_or.ok()) << reader_or.status().ToString();
  auto reader = std::move(*reader_or);
  std::string rec;
  while (reader->ReadRecord(&rec)) {
    if (out.recovered >= log.payloads.size()) {
      ADD_FAILURE() << "recovered more records than were written";
      break;
    }
    EXPECT_EQ(rec, log.payloads[out.recovered])
        << "record " << out.recovered << " not bit-identical";
    ++out.recovered;
  }
  out.torn = reader->torn_tail();
  out.last_end = reader->last_record_end();
  return out;
}

/// Number of records fully contained in the first `len` bytes.
size_t RecordsWithin(const BuiltLog& log, uint64_t len) {
  size_t n = 0;
  while (n < log.ends.size() && log.ends[n] <= len) ++n;
  return n;
}

/// Index of the record whose span [ends[i-1], ends[i]) contains byte P.
size_t SpanOwner(const BuiltLog& log, uint64_t pos) {
  for (size_t i = 0; i < log.ends.size(); ++i) {
    if (pos < log.ends[i]) return i;
  }
  ADD_FAILURE() << "position " << pos << " beyond the last record";
  return log.ends.size();
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::Global()->Clear();
    dir_ = eval::MakeScratchDir("wal_test");
  }
  void TearDown() override { util::FaultInjector::Global()->Clear(); }

  std::string Path(const char* name) { return dir_ + "/" + name; }

  std::string dir_;
};

// Small record sizes chosen so the whole log stays ~1.2 KiB — cheap
// enough for the exhaustive every-byte matrices below.
const std::vector<size_t> kSmallSizes = {1, 100, 700, 7, 300};

TEST_F(WalTest, RoundTripCleanEof) {
  BuiltLog log = BuildLog(Path("clean"), kSmallSizes);
  ReadOutcome out = ReadPrefix(log.path, log);
  EXPECT_EQ(out.recovered, kSmallSizes.size());
  EXPECT_FALSE(out.torn);
  EXPECT_EQ(out.last_end, log.ends.back());
  EXPECT_EQ(ReadFileBytes(log.path).size(), log.ends.back());
}

TEST_F(WalTest, EmptyAndZeroLengthRecords) {
  // A zero-length record still has a frame and still roundtrips.
  BuiltLog log = BuildLog(Path("zero"), {0, 5, 0});
  ReadOutcome out = ReadPrefix(log.path, log);
  EXPECT_EQ(out.recovered, 3u);
  EXPECT_FALSE(out.torn);

  // An absent file is NotFound; an empty file is a clean empty log.
  EXPECT_FALSE(WalReader::Open(Path("missing")).ok());
  WriteFileBytes(Path("empty"), "");
  BuiltLog none;
  none.path = Path("empty");
  out = ReadPrefix(none.path, none);
  EXPECT_EQ(out.recovered, 0u);
  EXPECT_FALSE(out.torn);
}

// Exhaustive truncation matrix: for every prefix length L of the log,
// recovery yields exactly the records whose span ends at or before L.
TEST_F(WalTest, TruncationMatrixRecoversCommittedPrefix) {
  BuiltLog log = BuildLog(Path("trunc"), kSmallSizes);
  const std::string bytes = ReadFileBytes(log.path);
  ASSERT_EQ(bytes.size(), log.ends.back());

  const std::string victim = Path("trunc_victim");
  for (uint64_t len = 0; len <= bytes.size(); ++len) {
    WriteFileBytes(victim, std::string_view(bytes).substr(0, len));
    ReadOutcome out = ReadPrefix(victim, log);
    const size_t want = RecordsWithin(log, len);
    EXPECT_EQ(out.recovered, want) << "truncated at " << len;
    EXPECT_EQ(out.last_end, want == 0 ? 0 : log.ends[want - 1])
        << "truncated at " << len;
    // A cut exactly on a record boundary is a clean EOF. A cut inside a
    // record is torn — unless the few leftover bytes happen to be all
    // zero, which the reader cannot distinguish from trailer padding.
    const uint64_t prev = want == 0 ? 0 : log.ends[want - 1];
    const size_t window =
        static_cast<size_t>(std::min<uint64_t>(len - prev, kWalHeaderSize));
    const bool leftover_zero =
        bytes.compare(prev, window, std::string(window, '\0')) == 0;
    EXPECT_EQ(out.torn, len != prev && !leftover_zero)
        << "truncated at " << len;
  }
}

// Exhaustive corruption matrix: flipping any single byte of record i's
// span recovers exactly records 0..i-1 and reports a torn tail.
TEST_F(WalTest, CorruptionMatrixRecoversPrecedingRecords) {
  BuiltLog log = BuildLog(Path("corrupt"), kSmallSizes);
  const std::string bytes = ReadFileBytes(log.path);

  const std::string victim = Path("corrupt_victim");
  for (uint64_t pos = 0; pos < bytes.size(); ++pos) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x55);
    WriteFileBytes(victim, mutated);
    ReadOutcome out = ReadPrefix(victim, log);
    const size_t owner = SpanOwner(log, pos);
    EXPECT_EQ(out.recovered, owner) << "corrupted byte " << pos;
    EXPECT_TRUE(out.torn) << "corrupted byte " << pos;
    EXPECT_EQ(out.last_end, owner == 0 ? 0 : log.ends[owner - 1])
        << "corrupted byte " << pos;
  }
}

// A log whose records span multiple 32 KiB blocks, including one record
// engineered to end inside a block trailer (so zero padding is written
// and attributed to the NEXT record's span). Exhaustive matrices would
// be ~200k iterations here, so probe the interesting offsets: every
// record-span boundary +-1 and every block boundary +-1 plus the header
// width on either side.
TEST_F(WalTest, BlockSpanningRecordMatrix) {
  // First payload sized so the record ends at offset 32765: 3 bytes of
  // trailer padding precede record 1's first fragment in block 1.
  const std::vector<size_t> sizes = {32758, 100, 80000, 50};
  BuiltLog log = BuildLog(Path("span"), sizes);
  const std::string bytes = ReadFileBytes(log.path);
  ASSERT_EQ(log.ends[0], 32765u);
  ASSERT_GT(bytes.size(), 3 * kWalBlockSize);

  // Sanity: the multi-fragment records roundtrip bit-identically.
  ReadOutcome clean = ReadPrefix(log.path, log);
  EXPECT_EQ(clean.recovered, sizes.size());
  EXPECT_FALSE(clean.torn);

  std::vector<uint64_t> probes;
  for (uint64_t end : log.ends) {
    for (int64_t d : {-1, 0, 1}) probes.push_back(end + d);
  }
  for (uint64_t b = kWalBlockSize; b < bytes.size(); b += kWalBlockSize) {
    for (int64_t d : {-8, -7, -1, 0, 1, 6, 7, 8}) probes.push_back(b + d);
  }

  const std::string victim = Path("span_victim");
  for (uint64_t len : probes) {
    if (len > bytes.size()) continue;
    WriteFileBytes(victim, std::string_view(bytes).substr(0, len));
    ReadOutcome out = ReadPrefix(victim, log);
    const size_t want = RecordsWithin(log, len);
    EXPECT_EQ(out.recovered, want) << "truncated at " << len;
  }
  for (uint64_t pos : probes) {
    if (pos >= bytes.size()) continue;
    std::string mutated = bytes;
    // In the trailer-padding bytes a flip must still kill the following
    // record: nonzero padding is garbage, not a clean EOF.
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x55);
    WriteFileBytes(victim, mutated);
    ReadOutcome out = ReadPrefix(victim, log);
    EXPECT_EQ(out.recovered, SpanOwner(log, pos)) << "corrupted byte " << pos;
    EXPECT_TRUE(out.torn) << "corrupted byte " << pos;
  }
}

// A failed AddRecord must leave the file at the previous record
// boundary: no torn fragment may precede later successful appends.
TEST_F(WalTest, FailedAppendRollsBackToRecordBoundary) {
  const std::string path = Path("wal_fault.log");
  auto writer_or = WalWriter::Open(path, 0, WalSyncPolicy::kNever);
  ASSERT_TRUE(writer_or.ok());
  auto writer = std::move(*writer_or);

  BuiltLog log;
  log.path = path;
  log.payloads.push_back(Payload(0, 200));
  ASSERT_TRUE(writer->AddRecord(log.payloads[0]).ok());
  log.ends.push_back(writer->offset());

  // Full write failure, then a short write that persists a 5-byte torn
  // prefix before failing: both must roll back.
  for (size_t short_bytes : {size_t{0}, size_t{5}}) {
    util::FaultInjector::Global()->Install(
        {util::FaultOp::kWrite, "wal_fault", 0, short_bytes, false});
    Status s = writer->AddRecord(Payload(9, 300));
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(writer->offset(), log.ends[0]);
  }
  util::FaultInjector::Global()->Clear();

  // The writer keeps working after the fault clears, and a reopening
  // reader sees exactly the successful records.
  log.payloads.push_back(Payload(1, 64));
  ASSERT_TRUE(writer->AddRecord(log.payloads[1]).ok());
  log.ends.push_back(writer->offset());
  ASSERT_TRUE(writer->Commit().ok());
  writer.reset();

  ReadOutcome out = ReadPrefix(path, log);
  EXPECT_EQ(out.recovered, 2u);
  EXPECT_FALSE(out.torn);

  // Resuming at last_record_end() and appending again also roundtrips.
  auto resumed_or = WalWriter::Open(path, out.last_end, WalSyncPolicy::kNever);
  ASSERT_TRUE(resumed_or.ok());
  log.payloads.push_back(Payload(2, 1000));
  ASSERT_TRUE((*resumed_or)->AddRecord(log.payloads[2]).ok());
  log.ends.push_back((*resumed_or)->offset());
  ASSERT_TRUE((*resumed_or)->Commit().ok());
  resumed_or->reset();
  out = ReadPrefix(path, log);
  EXPECT_EQ(out.recovered, 3u);
  EXPECT_FALSE(out.torn);
}

TEST_F(WalTest, ResetTruncatesToEmpty) {
  const std::string path = Path("reset.log");
  auto writer_or = WalWriter::Open(path, 0, WalSyncPolicy::kNever);
  ASSERT_TRUE(writer_or.ok());
  ASSERT_TRUE((*writer_or)->AddRecord(Payload(0, 500)).ok());
  ASSERT_TRUE((*writer_or)->Reset().ok());
  EXPECT_EQ((*writer_or)->offset(), 0u);
  writer_or->reset();
  EXPECT_EQ(ReadFileBytes(path).size(), 0u);
}

TEST_F(WalTest, DocRecordRoundTrip) {
  WalDocRecord rec;
  rec.seq = 41;
  rec.doc_name = "congress_acts-page-3";
  rec.year = 2013;
  rec.truth = "An Act to provide tests";
  rec.kmap_k = 8;
  rec.staccato_m = 16;
  rec.staccato_k = 9;
  rec.full_sfa = std::string("\x01\x02\x00\xffsfa-bytes", 13);

  const std::string bytes = EncodeWalDoc(rec);
  auto got_or = DecodeWalDoc(bytes);
  ASSERT_TRUE(got_or.ok()) << got_or.status().ToString();
  EXPECT_EQ(got_or->seq, rec.seq);
  EXPECT_EQ(got_or->doc_name, rec.doc_name);
  EXPECT_EQ(got_or->year, rec.year);
  EXPECT_EQ(got_or->truth, rec.truth);
  EXPECT_EQ(got_or->kmap_k, rec.kmap_k);
  EXPECT_EQ(got_or->staccato_m, rec.staccato_m);
  EXPECT_EQ(got_or->staccato_k, rec.staccato_k);
  EXPECT_EQ(got_or->full_sfa, rec.full_sfa);

  // Wrong tag, trailing garbage, and truncation all fail to decode.
  std::string wrong_tag = bytes;
  wrong_tag[0] = static_cast<char>(kWalCommitTag);
  EXPECT_FALSE(DecodeWalDoc(wrong_tag).ok());
  EXPECT_FALSE(DecodeWalDoc(bytes + "x").ok());
  EXPECT_FALSE(DecodeWalDoc(std::string_view(bytes).substr(0, 5)).ok());
  EXPECT_FALSE(DecodeWalDoc("").ok());
}

TEST_F(WalTest, CommitRecordRoundTrip) {
  WalCommitRecord rec;
  rec.seq = 12345678901ull;
  rec.payload_crc = 0xdeadbeef;
  const std::string bytes = EncodeWalCommit(rec);
  auto got_or = DecodeWalCommit(bytes);
  ASSERT_TRUE(got_or.ok()) << got_or.status().ToString();
  EXPECT_EQ(got_or->seq, rec.seq);
  EXPECT_EQ(got_or->payload_crc, rec.payload_crc);

  std::string wrong_tag = bytes;
  wrong_tag[0] = static_cast<char>(kWalDocTag);
  EXPECT_FALSE(DecodeWalCommit(wrong_tag).ok());
  EXPECT_FALSE(DecodeWalCommit(bytes + "x").ok());
  EXPECT_FALSE(DecodeWalCommit("").ok());
}

}  // namespace
}  // namespace rdbms
}  // namespace staccato
