// Tests for the annotated locking wrappers (util/mutex.h). These are the
// primitives every component in src/ locks through, so they get direct
// coverage — including multi-threaded exercises that the CI TSan job runs
// under -fsanitize=thread to catch wrapper bugs (a Wait() that drops the
// lock association, a Signal() that races the predicate) as data races.
#include "util/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace staccato::util {
namespace {

TEST(MutexTest, LockUnlockTryLock) {
  Mutex mu;
  mu.Lock();
  // A held mutex refuses TryLock from another thread.
  bool acquired = true;
  std::thread t([&] { acquired = mu.TryLock(); });
  t.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();

  // A free mutex grants TryLock, and Unlock releases it again.
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockGuardsCriticalSection) {
  Mutex mu;
  int counter = 0;  // guarded by mu (local, so no GUARDED_BY possible)
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < kIters; ++j) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, AssertHeldIsANoOpAtRuntime) {
  Mutex mu;
  MutexLock lock(&mu);
  mu.AssertHeld();  // compiles and returns; the value is the annotation
}

TEST(CondVarTest, WaitReleasesAndReacquires) {
  Mutex mu;
  CondVar cv(&mu);
  bool ready = false;
  int observed = -1;

  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait();
    // If Wait failed to reacquire the mutex this read would race the
    // writer below and TSan (CI) would flag it.
    observed = 42;
  });

  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.Signal();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(CondVarTest, SignalAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv(&mu);
  bool go = false;
  std::atomic<int> awake{0};
  constexpr int kWaiters = 6;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait();
      awake.fetch_add(1, std::memory_order_relaxed);
    });
  }

  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.SignalAll();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(awake.load(), kWaiters);
}

TEST(CondVarTest, PingPong) {
  // Two threads alternate strictly via one mutex + one condvar: the
  // canonical pattern the ThreadPool worker loop uses. A wrapper bug that
  // lost wakeups would hang (test timeout) rather than pass.
  Mutex mu;
  CondVar cv(&mu);
  int turn = 0;  // guarded by mu
  constexpr int kRounds = 1000;
  int trace = 0;

  auto player = [&](int me) {
    for (int i = 0; i < kRounds; ++i) {
      MutexLock lock(&mu);
      while (turn != me) cv.Wait();
      ++trace;
      turn = 1 - me;
      cv.Signal();
    }
  };
  std::thread a(player, 0), b(player, 1);
  a.join();
  b.join();
  EXPECT_EQ(trace, 2 * kRounds);
}

}  // namespace
}  // namespace staccato::util
