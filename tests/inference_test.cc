#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <string_view>

#include "inference/kbest.h"
#include "inference/query_eval.h"
#include "sfa/sfa.h"
#include "util/random.h"

namespace staccato {
namespace {

Sfa Figure1Sfa() {
  SfaBuilder b;
  NodeId n0 = b.AddNode(), n1 = b.AddNode(), n2 = b.AddNode(), n3 = b.AddNode(),
         n4 = b.AddNode(), n5 = b.AddNode();
  EXPECT_TRUE(b.AddTransition(n0, n1, "F", 0.8).ok());
  EXPECT_TRUE(b.AddTransition(n0, n1, "T", 0.2).ok());
  EXPECT_TRUE(b.AddTransition(n1, n2, "0", 0.6).ok());
  EXPECT_TRUE(b.AddTransition(n1, n2, "o", 0.4).ok());
  EXPECT_TRUE(b.AddTransition(n2, n3, " ", 0.6).ok());
  EXPECT_TRUE(b.AddTransition(n2, n4, "r", 0.4).ok());
  EXPECT_TRUE(b.AddTransition(n3, n4, "r", 0.8).ok());
  EXPECT_TRUE(b.AddTransition(n3, n4, "m", 0.2).ok());
  EXPECT_TRUE(b.AddTransition(n4, n5, "d", 0.9).ok());
  EXPECT_TRUE(b.AddTransition(n4, n5, "3", 0.1).ok());
  b.SetStart(n0);
  b.SetFinal(n5);
  return *b.Build(true);
}

TEST(KBestTest, MapIsFigure1Map) {
  Sfa sfa = Figure1Sfa();
  auto map = MapString(sfa);
  ASSERT_TRUE(map.ok());
  // Figure 1: 'F0 rd' is the most likely string with p ≈ 0.207.
  EXPECT_EQ(map->str, "F0 rd");
  EXPECT_NEAR(map->prob, 0.8 * 0.6 * 0.6 * 0.8 * 0.9, 1e-12);
}

TEST(KBestTest, AgreesWithEnumeration) {
  Sfa sfa = Figure1Sfa();
  for (size_t k : {1u, 3u, 5u, 10u, 24u, 100u}) {
    auto fast = KBestStrings(sfa, k);
    auto slow = KBestStringsByEnumeration(sfa, k, 1 << 16);
    ASSERT_TRUE(slow.ok());
    ASSERT_EQ(fast.size(), slow->size()) << "k=" << k;
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].str, (*slow)[i].str) << "k=" << k << " i=" << i;
      EXPECT_NEAR(fast[i].prob, (*slow)[i].prob, 1e-12);
    }
  }
}

TEST(KBestTest, SortedDescendingAndDistinct) {
  Sfa sfa = Figure1Sfa();
  auto top = KBestStrings(sfa, 24);
  EXPECT_EQ(top.size(), 24u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].prob, top[i].prob);
    EXPECT_NE(top[i - 1].str, top[i].str);
  }
}

TEST(KBestTest, KLargerThanPathCount) {
  Sfa sfa = Figure1Sfa();
  auto top = KBestStrings(sfa, 1000);
  EXPECT_EQ(top.size(), 24u);
  double mass = 0;
  for (const auto& s : top) mass += s.prob;
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(KBestTest, ZeroKEmpty) {
  EXPECT_TRUE(KBestStrings(Figure1Sfa(), 0).empty());
}

TEST(KBestTest, RandomSfasAgreeWithEnumeration) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    // Random small layered DAG with unique-path safe labels (distinct chars
    // per source node).
    SfaBuilder b;
    size_t layers = static_cast<size_t>(rng.UniformInt(2, 5));
    std::vector<NodeId> prev{b.AddNode()};
    NodeId start = prev[0];
    for (size_t l = 0; l < layers; ++l) {
      size_t width = static_cast<size_t>(rng.UniformInt(1, 2));
      std::vector<NodeId> cur;
      for (size_t w = 0; w < width; ++w) cur.push_back(b.AddNode());
      int label = 0;
      for (NodeId p : prev) {
        for (NodeId c : cur) {
          double prob = 0.3 + 0.4 * rng.UniformDouble();
          ASSERT_TRUE(b.AddTransition(p, c, std::string(1, static_cast<char>('a' + label)),
                                      prob)
                          .ok());
          ++label;
          if (rng.Coin(0.5)) {
            ASSERT_TRUE(b.AddTransition(p, c,
                                        std::string(1, static_cast<char>('a' + label)),
                                        0.1 + 0.2 * rng.UniformDouble())
                            .ok());
            ++label;
          }
        }
      }
      prev = cur;
    }
    NodeId final = b.AddNode();
    for (NodeId p : prev) {
      ASSERT_TRUE(b.AddTransition(p, final, "z", 0.9).ok());
    }
    b.SetStart(start);
    b.SetFinal(final);
    auto sfa = b.Build();
    ASSERT_TRUE(sfa.ok()) << sfa.status().ToString();
    for (size_t k : {1u, 4u, 16u}) {
      auto fast = KBestStrings(*sfa, k);
      auto slow = KBestStringsByEnumeration(*sfa, k, 1 << 16);
      ASSERT_TRUE(slow.ok());
      ASSERT_EQ(fast.size(), slow->size());
      for (size_t i = 0; i < fast.size(); ++i) {
        EXPECT_NEAR(fast[i].prob, (*slow)[i].prob, 1e-12);
      }
    }
  }
}

// Brute-force Pr[q] by enumerating all strings.
double BruteForceProb(const Sfa& sfa, const Dfa& dfa) {
  auto strings = sfa.EnumerateStrings(1 << 20);
  EXPECT_TRUE(strings.ok());
  double p = 0;
  for (const auto& [s, pr] : *strings) {
    if (dfa.Matches(s)) p += pr;
  }
  return p;
}

TEST(QueryEvalTest, FordProbabilityMatchesPaper) {
  Sfa sfa = Figure1Sfa();
  auto dfa = Dfa::Compile("Ford", MatchMode::kContains);
  ASSERT_TRUE(dfa.ok());
  double p = EvalSfaQuery(sfa, *dfa);
  // Figure 1(C): the claim is found with probability ≈ 0.12 (here exactly
  // 0.8*0.4*0.4*0.9 since only one string contains 'Ford').
  EXPECT_NEAR(p, 0.8 * 0.4 * 0.4 * 0.9, 1e-12);
  EXPECT_NEAR(p, BruteForceProb(sfa, *dfa), 1e-12);
}

TEST(QueryEvalTest, MatchesBruteForceOnManyPatterns) {
  Sfa sfa = Figure1Sfa();
  for (const char* pat : {"F", "T0", "rd", "m3", "F(0|o)", "F\\x", "(\\x)*",
                          "Fo\\x", "\\d", "F0 rd", "zzz"}) {
    auto dfa = Dfa::Compile(pat, MatchMode::kContains);
    ASSERT_TRUE(dfa.ok()) << pat;
    EXPECT_NEAR(EvalSfaQuery(sfa, *dfa), BruteForceProb(sfa, *dfa), 1e-12)
        << pat;
  }
}

TEST(QueryEvalTest, ImpossiblePatternIsZero) {
  Sfa sfa = Figure1Sfa();
  auto dfa = Dfa::Compile("xyzzy", MatchMode::kContains);
  ASSERT_TRUE(dfa.ok());
  EXPECT_EQ(EvalSfaQuery(sfa, *dfa), 0.0);
}

TEST(QueryEvalTest, CertainPatternIsOne) {
  Sfa sfa = Figure1Sfa();
  // Every string starts with F or T.
  auto dfa = Dfa::Compile("(F|T)", MatchMode::kContains);
  ASSERT_TRUE(dfa.ok());
  EXPECT_NEAR(EvalSfaQuery(sfa, *dfa), 1.0, 1e-12);
}

TEST(QueryEvalTest, MultiCharLabels) {
  // Generalized SFA with string labels (as produced by Collapse).
  SfaBuilder b;
  NodeId a = b.AddNode(), m = b.AddNode(), f = b.AddNode();
  ASSERT_TRUE(b.AddTransition(a, m, "Fo", 0.7).ok());
  ASSERT_TRUE(b.AddTransition(a, m, "T0", 0.3).ok());
  ASSERT_TRUE(b.AddTransition(m, f, "rd", 0.9).ok());
  ASSERT_TRUE(b.AddTransition(m, f, "m3", 0.1).ok());
  b.SetStart(a);
  b.SetFinal(f);
  auto sfa = b.Build(true);
  ASSERT_TRUE(sfa.ok());
  auto dfa = Dfa::Compile("Ford", MatchMode::kContains);
  ASSERT_TRUE(dfa.ok());
  EXPECT_NEAR(EvalSfaQuery(*sfa, *dfa), 0.7 * 0.9, 1e-12);
  // Pattern straddling the label boundary.
  auto dfa2 = Dfa::Compile("0m", MatchMode::kContains);
  ASSERT_TRUE(dfa2.ok());
  EXPECT_NEAR(EvalSfaQuery(*sfa, *dfa2), 0.3 * 0.1, 1e-12);
}

TEST(QueryEvalTest, StringsQuerySumsDisjointEvents) {
  std::vector<ScoredString> strings = {
      {"the Ford car", 0.5}, {"the F0rd car", 0.3}, {"a Ford too", 0.1}};
  auto dfa = Dfa::Compile("Ford", MatchMode::kContains);
  ASSERT_TRUE(dfa.ok());
  EXPECT_NEAR(EvalStringsQuery(strings, *dfa), 0.6, 1e-12);
}

TEST(QueryEvalTest, StringsQueryEmptyIsZero) {
  auto dfa = Dfa::Compile("x", MatchMode::kContains);
  ASSERT_TRUE(dfa.ok());
  EXPECT_EQ(EvalStringsQuery({}, *dfa), 0.0);
}

TEST(QueryEvalTest, WorkCountScalesWithDfaStates) {
  Sfa sfa = Figure1Sfa();
  auto small = Dfa::Compile("F", MatchMode::kContains);
  auto big = Dfa::Compile("F0 rd", MatchMode::kContains);
  ASSERT_TRUE(small.ok() && big.ok());
  EXPECT_LT(CountEvalWork(sfa, *small), CountEvalWork(sfa, *big));
}

TEST(QueryEvalTest, ChainSfaExactProbability) {
  // Chain of 5 positions, 4 alternatives each (a..d uniform). The pattern
  // 'aa' must appear in two consecutive positions.
  auto chain = MakeChainSfa(5, 4);
  ASSERT_TRUE(chain.ok());
  auto dfa = Dfa::Compile("aa", MatchMode::kContains);
  ASSERT_TRUE(dfa.ok());
  EXPECT_NEAR(EvalSfaQuery(*chain, *dfa), BruteForceProb(*chain, *dfa), 1e-12);
}

// ---------------------------------------------------------------------------
// Bounded (early-terminating) kernel and the SfaView flat decoder.
// ---------------------------------------------------------------------------

TEST(BoundedEvalTest, ZeroThresholdBitIdenticalToReference) {
  Sfa sfa = Figure1Sfa();
  auto chain = MakeChainSfa(6, 4);
  ASSERT_TRUE(chain.ok());
  for (const Sfa* s : {&sfa, &*chain}) {
    for (const char* pat : {"F", "rd", "aa", "(F|T)", "\\d", "zzz"}) {
      auto dfa = Dfa::Compile(pat, MatchMode::kContains);
      ASSERT_TRUE(dfa.ok()) << pat;
      EvalBound bound;
      // Bit-identical, not just close: the bounded kernel runs the same
      // arithmetic in the same order.
      EXPECT_EQ(EvalSfaQueryBounded(*s, *dfa, 0.0, nullptr, &bound),
                EvalSfaQuery(*s, *dfa))
          << pat;
      EXPECT_FALSE(bound.pruned);
      EXPECT_EQ(bound.steps, bound.steps_total) << pat;
      EXPECT_EQ(bound.steps_total, CountEvalWork(*s, *dfa)) << pat;
    }
  }
}

TEST(BoundedEvalTest, ViewKernelBitIdenticalToDeserializedEval) {
  Sfa sfa = Figure1Sfa();
  auto chain = MakeChainSfa(6, 4);
  ASSERT_TRUE(chain.ok());
  EvalScratch scratch;  // one scratch, reused across blobs and patterns
  for (const Sfa* s : {&sfa, &*chain}) {
    const std::string blob = s->Serialize();
    for (const char* pat : {"F", "rd", "aa", "(F|T)", "\\d", "zzz"}) {
      auto dfa = Dfa::Compile(pat, MatchMode::kContains);
      ASSERT_TRUE(dfa.ok()) << pat;
      auto p = EvalSerializedSfaBounded(blob, *dfa, 0.0, &scratch);
      ASSERT_TRUE(p.ok()) << p.status().ToString();
      EXPECT_EQ(*p, EvalSfaQuery(*s, *dfa)) << pat;
      auto legacy = EvalSerializedSfa(blob, *dfa);
      ASSERT_TRUE(legacy.ok());
      EXPECT_EQ(*p, *legacy) << pat;
    }
  }
}

TEST(BoundedEvalTest, PrunesWhenLiveMassFallsBelowThreshold) {
  // Sub-stochastic chain (approximation leak): each hop keeps half the
  // mass, so live mass is 0.5 after the first node and 0.25 at the end.
  SfaBuilder b;
  NodeId n0 = b.AddNode(), n1 = b.AddNode(), n2 = b.AddNode();
  ASSERT_TRUE(b.AddTransition(n0, n1, "x", 0.5).ok());
  ASSERT_TRUE(b.AddTransition(n1, n2, "y", 0.5).ok());
  b.SetStart(n0);
  b.SetFinal(n2);
  auto sfa = b.Build(/*require_stochastic=*/false);
  ASSERT_TRUE(sfa.ok());
  auto dfa = Dfa::Compile("xy", MatchMode::kContains);
  ASSERT_TRUE(dfa.ok());
  ASSERT_NEAR(EvalSfaQuery(*sfa, *dfa), 0.25, 1e-12);

  // Threshold above the post-first-node bound: aborts after node 0.
  EvalBound bound;
  EXPECT_EQ(EvalSfaQueryBounded(*sfa, *dfa, 0.6, nullptr, &bound), 0.0);
  EXPECT_TRUE(bound.pruned);
  EXPECT_LT(bound.steps, bound.steps_total);

  // Threshold below the final probability: runs to completion, same value.
  EXPECT_EQ(EvalSfaQueryBounded(*sfa, *dfa, 0.2, nullptr, &bound),
            EvalSfaQuery(*sfa, *dfa));
  EXPECT_FALSE(bound.pruned);

  // The view kernel prunes the same way.
  const std::string blob = sfa->Serialize();
  EvalScratch scratch;
  auto pruned = EvalSerializedSfaBounded(blob, *dfa, 0.6, &scratch, &bound);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(*pruned, 0.0);
  EXPECT_TRUE(bound.pruned);
}

TEST(SfaViewTest, DecodeMatchesDeserializeStructurally) {
  Sfa sfa = Figure1Sfa();
  const std::string blob = sfa.Serialize();
  auto back = Sfa::Deserialize(blob);
  ASSERT_TRUE(back.ok());
  SfaViewArena arena;
  SfaView view;
  ASSERT_TRUE(view.Decode(blob, &arena).ok());

  EXPECT_EQ(view.NumNodes(), back->NumNodes());
  EXPECT_EQ(view.NumEdges(), back->NumEdges());
  EXPECT_EQ(view.NumTransitions(), back->NumTransitions());
  EXPECT_EQ(view.start(), back->start());
  EXPECT_EQ(view.final(), back->final());
  EXPECT_EQ(view.TopologicalOrder(), back->TopologicalOrder());
  EXPECT_TRUE(view.MassBoundSafe());
  for (NodeId n = 0; n < view.NumNodes(); ++n) {
    const std::vector<EdgeId>& out = back->OutEdges(n);
    ASSERT_EQ(static_cast<size_t>(view.out_end(n) - view.out_begin(n)),
              out.size());
    for (size_t k = 0; k < out.size(); ++k) {
      EdgeId ve = view.out_begin(n)[k];
      const ViewEdge& e = view.edge(ve);
      const Edge& se = back->edge(out[k]);
      EXPECT_EQ(e.from, se.from);
      EXPECT_EQ(e.to, se.to);
      ASSERT_EQ(e.num_transitions, se.transitions.size());
      for (uint32_t t = 0; t < e.num_transitions; ++t) {
        const ViewTransition& vt = view.transition(e.first_transition + t);
        EXPECT_EQ(std::string(vt.label), se.transitions[t].label);
        EXPECT_EQ(vt.prob, se.transitions[t].prob);
      }
    }
  }
}

TEST(SfaViewTest, RejectsCorruptBlobs) {
  Sfa sfa = Figure1Sfa();
  const std::string blob = sfa.Serialize();
  SfaViewArena arena;
  SfaView view;

  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_FALSE(view.Decode(bad_magic, &arena).ok());

  // Every truncation must fail cleanly, never crash or accept.
  for (size_t len = 0; len < blob.size(); ++len) {
    EXPECT_FALSE(view.Decode(std::string_view(blob.data(), len), &arena).ok())
        << "truncated at " << len;
  }

  std::string trailing = blob + "junk";
  EXPECT_FALSE(view.Decode(trailing, &arena).ok());

  // After all the failures, the arena still decodes a good blob.
  ASSERT_TRUE(view.Decode(blob, &arena).ok());
  EXPECT_EQ(view.NumNodes(), sfa.NumNodes());
}

}  // namespace
}  // namespace staccato
