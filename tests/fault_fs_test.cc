// Unit tests for the fault-injection seam (util/fault_fs.h): injected
// short writes, flush failures, and fsync failures must surface as
// Status errors through every storage layer that writes bytes —
// HeapTable, BlobStore, and the WAL writer — instead of being swallowed.

#include <cstdio>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "eval/workbench.h"
#include "rdbms/blob_store.h"
#include "rdbms/heap_table.h"
#include "rdbms/value.h"
#include "rdbms/wal.h"
#include "util/fault_fs.h"

namespace staccato {
namespace util {
namespace {

std::string ReadFileBytes(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  fclose(f);
  return out;
}

class FaultFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global()->Clear();
    dir_ = eval::MakeScratchDir("fault_fs_test");
  }
  void TearDown() override { FaultInjector::Global()->Clear(); }

  std::string Path(const char* name) { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(FaultFsTest, CheckedWriteFailsAndPersistsShortPrefix) {
  const std::string path = Path("short.bin");
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);

  // A short write persists exactly `short_bytes` of the payload before
  // failing — the torn-prefix shape a real partial write leaves behind.
  FaultInjector::Global()->Install({FaultOp::kWrite, "short.bin", 0, 3, false});
  Status s = CheckedWrite(f, "0123456789", 10, path);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError()) << s.ToString();

  // The rule was one-shot: the next write goes through.
  EXPECT_TRUE(CheckedWrite(f, "AB", 2, path).ok());
  fclose(f);
  EXPECT_EQ(ReadFileBytes(path), "012AB");
}

TEST_F(FaultFsTest, PathSubstringScopesTheRule) {
  const std::string hit = Path("victim.bin");
  const std::string miss = Path("bystander.bin");
  FILE* fh = fopen(hit.c_str(), "wb");
  FILE* fm = fopen(miss.c_str(), "wb");
  ASSERT_NE(fh, nullptr);
  ASSERT_NE(fm, nullptr);

  FaultInjector::Global()->Install({FaultOp::kWrite, "victim", 0, 0, false});
  EXPECT_TRUE(CheckedWrite(fm, "ok", 2, miss).ok());  // other file unaffected
  EXPECT_FALSE(CheckedWrite(fh, "xx", 2, hit).ok());
  fclose(fh);
  fclose(fm);
}

TEST_F(FaultFsTest, CountdownDelaysTheFault) {
  const std::string path = Path("countdown.bin");
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);

  FaultInjector::Global()->Install(
      {FaultOp::kWrite, "countdown", /*countdown=*/2, 0, false});
  EXPECT_TRUE(CheckedWrite(f, "a", 1, path).ok());
  EXPECT_TRUE(CheckedWrite(f, "b", 1, path).ok());
  EXPECT_FALSE(CheckedWrite(f, "c", 1, path).ok());
  EXPECT_TRUE(CheckedWrite(f, "d", 1, path).ok());  // rule consumed
  fclose(f);
}

TEST_F(FaultFsTest, StickyRuleFailsUntilCleared) {
  const std::string path = Path("sticky.bin");
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);

  FaultInjector::Global()->Install({FaultOp::kSync, "sticky", 0, 0, true});
  EXPECT_FALSE(CheckedSync(f, path).ok());
  EXPECT_FALSE(CheckedSync(f, path).ok());
  FaultInjector::Global()->Clear();
  EXPECT_TRUE(CheckedSync(f, path).ok());
  fclose(f);
}

TEST_F(FaultFsTest, FlushAndSyncOpsAreDistinct) {
  const std::string path = Path("ops.bin");
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);

  FaultInjector::Global()->Install({FaultOp::kFlush, "ops", 0, 0, false});
  EXPECT_TRUE(CheckedWrite(f, "x", 1, path).ok());  // write op unaffected
  EXPECT_FALSE(CheckedFlush(f, path).ok());
  EXPECT_TRUE(CheckedFlush(f, path).ok());

  // CheckedSync flushes first, so a flush fault also fails the sync.
  FaultInjector::Global()->Install({FaultOp::kFlush, "ops", 0, 0, false});
  EXPECT_FALSE(CheckedSync(f, path).ok());
  fclose(f);
}

TEST_F(FaultFsTest, HeapTableSurfacesWriteFaults) {
  rdbms::Schema schema({{"Id", rdbms::ValueType::kInt},
                        {"Name", rdbms::ValueType::kString}});
  const std::string path = Path("table.tbl");
  auto table_or = rdbms::HeapTable::Create(path, schema);
  ASSERT_TRUE(table_or.ok()) << table_or.status().ToString();
  auto& table = *table_or;
  ASSERT_TRUE(
      table->Insert({rdbms::Value::Int(1), rdbms::Value::String("a")}).ok());

  FaultInjector::Global()->Install({FaultOp::kWrite, "table.tbl", 0, 0, true});
  EXPECT_FALSE(table->Flush().ok());
  FaultInjector::Global()->Clear();
  EXPECT_TRUE(table->Flush().ok());

  // EvictAll writes back dirty pages; a write fault must surface rather
  // than letting the frame drop and serve stale bytes later.
  ASSERT_TRUE(
      table->Insert({rdbms::Value::Int(2), rdbms::Value::String("b")}).ok());
  FaultInjector::Global()->Install({FaultOp::kWrite, "table.tbl", 0, 0, true});
  EXPECT_FALSE(table->EvictAll().ok());
  FaultInjector::Global()->Clear();

  FaultInjector::Global()->Install({FaultOp::kSync, "table.tbl", 0, 0, false});
  EXPECT_FALSE(table->Sync().ok());
  EXPECT_TRUE(table->Sync().ok());
}

TEST_F(FaultFsTest, BlobStoreSurfacesWriteFaults) {
  const std::string path = Path("blobs.dat");
  auto store_or = rdbms::BlobStore::Create(path);
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  auto& store = *store_or;

  FaultInjector::Global()->Install({FaultOp::kWrite, "blobs.dat", 0, 0, true});
  EXPECT_FALSE(store->Put("payload").ok());
  FaultInjector::Global()->Clear();

  auto id = store->Put("payload");
  ASSERT_TRUE(id.ok());

  FaultInjector::Global()->Install({FaultOp::kFlush, "blobs.dat", 0, 0, false});
  EXPECT_FALSE(store->Flush().ok());
  // The dirty flag survived the failed flush: the retry pushes the bytes
  // and the blob reads back intact.
  EXPECT_TRUE(store->Flush().ok());
  auto got = store->Get(*id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "payload");

  FaultInjector::Global()->Install({FaultOp::kSync, "blobs.dat", 0, 0, false});
  EXPECT_FALSE(store->Sync().ok());
  EXPECT_TRUE(store->Sync().ok());
}

TEST_F(FaultFsTest, WalWriterSurfacesFaults) {
  const std::string path = Path("faulty_wal.log");
  auto writer_or =
      rdbms::WalWriter::Open(path, 0, rdbms::WalSyncPolicy::kCommit);
  ASSERT_TRUE(writer_or.ok());
  auto& writer = *writer_or;

  FaultInjector::Global()->Install(
      {FaultOp::kWrite, "faulty_wal", 0, 0, false});
  EXPECT_FALSE(writer->AddRecord("doomed").ok());
  EXPECT_EQ(writer->offset(), 0u);

  ASSERT_TRUE(writer->AddRecord("record").ok());
  // kCommit policy fsyncs on Commit, so a sync fault fails it.
  FaultInjector::Global()->Install({FaultOp::kSync, "faulty_wal", 0, 0, false});
  EXPECT_FALSE(writer->Commit().ok());
  EXPECT_TRUE(writer->Commit().ok());
}

}  // namespace
}  // namespace util
}  // namespace staccato
