// Tests for the prepared-query engine: Session / PreparedQuery / Cursor
// over the physical plans of rdbms/plan.h.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "eval/workbench.h"
#include "rdbms/session.h"
#include "rdbms/staccato_db.h"

namespace staccato {
namespace {

using eval::Workbench;
using eval::WorkbenchSpec;
using rdbms::Approach;
using rdbms::Cursor;
using rdbms::PreparedQuery;
using rdbms::QueryOptions;
using rdbms::QueryStats;
using rdbms::Session;
using rdbms::SessionOptions;

constexpr size_t kLinesPerPage = 30;  // docs [0, 30) are page 0 / Year 2010

WorkbenchSpec SmallSpec(bool index = false) {
  WorkbenchSpec spec;
  spec.corpus.kind = DatasetKind::kCongressActs;
  spec.corpus.num_pages = 2;
  spec.corpus.lines_per_page = kLinesPerPage;
  spec.corpus.seed = 1234;
  spec.noise.alternatives = 8;
  spec.load.kmap_k = 10;
  spec.load.staccato = {20, 10, true};
  spec.build_index = index;
  return spec;
}

void ExpectSameAnswers(const std::vector<Answer>& a,
                       const std::vector<Answer>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].doc, b[i].doc) << "rank " << i;
    EXPECT_EQ(a[i].prob, b[i].prob) << "rank " << i;  // bit-identical
  }
}

TEST(SessionTest, PrepareExecuteReuseMatchesLegacyQuery) {
  auto wb = Workbench::Create(SmallSpec());
  ASSERT_TRUE(wb.ok()) << wb.status().ToString();
  Session session(&(*wb)->db());
  QueryOptions q;
  q.pattern = "President";
  for (Approach a : {Approach::kMap, Approach::kKMap, Approach::kFullSfa,
                     Approach::kStaccato}) {
    auto pq = session.Prepare(a, q);
    ASSERT_TRUE(pq.ok()) << pq.status().ToString();
    auto first = pq->Execute();
    auto second = pq->Execute();  // the same plan, re-run
    auto legacy = (*wb)->db().Query(a, q);
    ASSERT_TRUE(first.ok() && second.ok() && legacy.ok());
    ExpectSameAnswers(*first, *second);
    ExpectSameAnswers(*first, *legacy);
  }
}

TEST(SessionTest, ExplainIsStableAndDescribesThePlan) {
  auto wb = Workbench::Create(SmallSpec(/*index=*/true));
  ASSERT_TRUE(wb.ok()) << wb.status().ToString();
  Session session(&(*wb)->db());

  QueryOptions scan_q;
  scan_q.pattern = "President";
  scan_q.eval_threads = 1;
  auto scan_pq = session.Prepare(Approach::kFullSfa, scan_q);
  ASSERT_TRUE(scan_pq.ok());
  std::string scan_explain = scan_pq->Explain();
  EXPECT_NE(scan_explain.find("full-scan"), std::string::npos) << scan_explain;
  EXPECT_NE(scan_explain.find("Fetch method=blob"), std::string::npos);
  EXPECT_NE(scan_explain.find("sfa-dp"), std::string::npos);
  EXPECT_NE(scan_explain.find("TopK num_ans=100"), std::string::npos);

  QueryOptions idx_q;
  idx_q.pattern = "President";
  idx_q.use_index = true;
  idx_q.use_projection = true;
  idx_q.eval_threads = 4;
  auto idx_pq = session.Prepare(Approach::kStaccato, idx_q);
  ASSERT_TRUE(idx_pq.ok());
  std::string before = idx_pq->Explain();
  EXPECT_NE(before.find("index-probe"), std::string::npos) << before;
  EXPECT_NE(before.find("anchor='president'"), std::string::npos) << before;
  EXPECT_NE(before.find("Fetch method=projection"), std::string::npos);
  EXPECT_NE(before.find("threads=4"), std::string::npos);

  // Executing must not change the rendered plan.
  ASSERT_TRUE(idx_pq->Execute().ok());
  ASSERT_TRUE(idx_pq->Execute().ok());
  EXPECT_EQ(idx_pq->Explain(), before);
}

TEST(SessionTest, EqualityPredicateFiltersCandidates) {
  auto wb = Workbench::Create(SmallSpec());
  ASSERT_TRUE(wb.ok()) << wb.status().ToString();
  Session session(&(*wb)->db());

  const std::string sql =
      "SELECT DataKey FROM Docs WHERE Year = 2010 AND "
      "DocData LIKE '%President%';";
  auto pq = session.PrepareSql(Approach::kStaccato, sql);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  EXPECT_NE(pq->Explain().find("Filter Year = 2010"), std::string::npos)
      << pq->Explain();
  QueryStats stats;
  auto filtered = pq->Execute(&stats);
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  EXPECT_EQ(stats.candidates, kLinesPerPage);  // only page 0 is dated 2010
  for (const Answer& ans : *filtered) {
    EXPECT_LT(ans.doc, kLinesPerPage) << "doc from the wrong year retrieved";
  }

  // The filtered answer set is exactly the unfiltered one restricted to
  // page 0 (per-doc probabilities are independent of the filter).
  QueryOptions q;
  q.pattern = "President";
  auto all = (*wb)->db().Query(Approach::kStaccato, q);
  ASSERT_TRUE(all.ok());
  std::vector<Answer> expected;
  for (const Answer& ans : *all) {
    if (ans.doc < kLinesPerPage) expected.push_back(ans);
  }
  ExpectSameAnswers(*filtered, expected);

  // String-typed equality binds against DocName.
  auto by_name = session.PrepareSql(
      Approach::kMap,
      "SELECT * FROM Docs WHERE DocName = 'CA-page-1' AND "
      "DocData LIKE '%President%'");
  ASSERT_TRUE(by_name.ok()) << by_name.status().ToString();
  auto page1 = by_name->Execute();
  ASSERT_TRUE(page1.ok());
  for (const Answer& ans : *page1) EXPECT_GE(ans.doc, kLinesPerPage);

  // Prepare-time rejection: unknown column, type-mismatched literal.
  EXPECT_TRUE(session
                  .PrepareSql(Approach::kMap,
                              "SELECT * FROM t WHERE Nope = 1 AND "
                              "D LIKE '%x%'")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session
                  .PrepareSql(Approach::kMap,
                              "SELECT * FROM t WHERE Year = 'abc' AND "
                              "D LIKE '%x%'")
                  .status()
                  .IsInvalidArgument());
}

TEST(SessionTest, PaperExampleSqlExecutesEndToEnd) {
  auto wb = Workbench::Create(SmallSpec());
  ASSERT_TRUE(wb.ok());
  Session session(&(*wb)->db());
  // The motivating statement of Section 2.1, verbatim. (This corpus has no
  // Fords, so the answer set is empty — but the full pipeline runs.)
  auto pq = session.PrepareSql(Approach::kStaccato,
                               "SELECT DocID, Loss FROM Claims "
                               "WHERE Year = 2010 AND DocData LIKE '%Ford%';");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  QueryStats stats;
  auto answers = pq->Execute(&stats);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_EQ(stats.candidates, kLinesPerPage);
  EXPECT_FALSE(stats.plan_summary.empty());
}

TEST(SessionTest, CursorStreamsTheRankedAnswers) {
  auto wb = Workbench::Create(SmallSpec());
  ASSERT_TRUE(wb.ok());
  Session session(&(*wb)->db());
  QueryOptions q;
  q.pattern = "President";
  auto pq = session.Prepare(Approach::kKMap, q);
  ASSERT_TRUE(pq.ok());
  auto reference = pq->Execute();
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->empty());

  auto cursor = pq->Open();
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(cursor->size(), reference->size());
  Answer ans;
  size_t i = 0;
  while (cursor->Next(&ans)) {
    ASSERT_LT(i, reference->size());
    EXPECT_EQ(ans.doc, (*reference)[i].doc);
    EXPECT_EQ(ans.prob, (*reference)[i].prob);
    ++i;
  }
  EXPECT_EQ(i, reference->size());
  EXPECT_FALSE(cursor->Next(&ans)) << "exhausted cursor must stay exhausted";
}

TEST(SessionTest, ParallelEvalBitIdenticalToSerial) {
  auto wb = Workbench::Create(SmallSpec(/*index=*/true));
  ASSERT_TRUE(wb.ok());
  Session session(&(*wb)->db());
  struct Case {
    Approach approach;
    bool use_index;
    bool use_projection;
  };
  for (const Case& c : {Case{Approach::kFullSfa, false, false},
                        Case{Approach::kStaccato, false, false},
                        Case{Approach::kStaccato, true, false},
                        Case{Approach::kStaccato, true, true}}) {
    QueryOptions q;
    q.pattern = "President";
    q.use_index = c.use_index;
    q.use_projection = c.use_projection;

    q.eval_threads = 1;
    auto serial_pq = session.Prepare(c.approach, q);
    ASSERT_TRUE(serial_pq.ok());
    QueryStats serial_stats;
    auto serial = serial_pq->Execute(&serial_stats);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(serial_stats.threads_used, 1u);

    q.eval_threads = 4;
    auto par_pq = session.Prepare(c.approach, q);
    ASSERT_TRUE(par_pq.ok());
    QueryStats par_stats;
    auto parallel = par_pq->Execute(&par_stats);
    ASSERT_TRUE(parallel.ok());
    EXPECT_GT(par_stats.threads_used, 1u);
    EXPECT_NE(par_stats.plan_summary.find("[t=4]"), std::string::npos)
        << par_stats.plan_summary;
    EXPECT_EQ(par_stats.candidates, serial_stats.candidates);

    ExpectSameAnswers(*serial, *parallel);
  }
}

TEST(SessionTest, SessionDefaultsToParallelEval) {
  auto wb = Workbench::Create(SmallSpec());
  ASSERT_TRUE(wb.ok());
  // eval_threads = 0 in both the session options and the query inherits
  // hardware concurrency at prepare time.
  Session session(&(*wb)->db(), SessionOptions{});
  QueryOptions q;
  q.pattern = "President";
  auto pq = session.Prepare(Approach::kStaccato, q);
  ASSERT_TRUE(pq.ok());
  EXPECT_GE(pq->plan().eval_threads, 1u);
  auto answers = pq->Execute();
  ASSERT_TRUE(answers.ok());
  auto legacy = (*wb)->db().Query(Approach::kStaccato, q);
  ASSERT_TRUE(legacy.ok());
  ExpectSameAnswers(*answers, *legacy);
}

}  // namespace
}  // namespace staccato
