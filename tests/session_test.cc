// Tests for the prepared-query engine: Session / PreparedQuery / Cursor
// over the physical plans of rdbms/plan.h.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <string>
#include <vector>

#include "eval/workbench.h"
#include "rdbms/session.h"
#include "rdbms/staccato_db.h"

namespace staccato {
namespace {

using eval::Workbench;
using eval::WorkbenchSpec;
using rdbms::Approach;
using rdbms::CandidateSource;
using rdbms::Cursor;
using rdbms::IndexMode;
using rdbms::PreparedQuery;
using rdbms::QueryOptions;
using rdbms::QueryStats;
using rdbms::Session;
using rdbms::SessionOptions;

constexpr size_t kLinesPerPage = 30;  // docs [0, 30) are page 0 / Year 2010

WorkbenchSpec SmallSpec(bool index = false) {
  WorkbenchSpec spec;
  spec.corpus.kind = DatasetKind::kCongressActs;
  spec.corpus.num_pages = 2;
  spec.corpus.lines_per_page = kLinesPerPage;
  spec.corpus.seed = 1234;
  spec.noise.alternatives = 8;
  spec.load.kmap_k = 10;
  spec.load.staccato = {20, 10, true};
  spec.build_index = index;
  return spec;
}

void ExpectSameAnswers(const std::vector<Answer>& a,
                       const std::vector<Answer>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].doc, b[i].doc) << "rank " << i;
    EXPECT_EQ(a[i].prob, b[i].prob) << "rank " << i;  // bit-identical
  }
}

TEST(SessionTest, PrepareExecuteReuseMatchesLegacyQuery) {
  auto wb = Workbench::Create(SmallSpec());
  ASSERT_TRUE(wb.ok()) << wb.status().ToString();
  Session session(&(*wb)->db());
  QueryOptions q;
  q.pattern = "President";
  for (Approach a : {Approach::kMap, Approach::kKMap, Approach::kFullSfa,
                     Approach::kStaccato}) {
    auto pq = session.Prepare(a, q);
    ASSERT_TRUE(pq.ok()) << pq.status().ToString();
    auto first = pq->Execute();
    auto second = pq->Execute();  // the same plan, re-run
    auto legacy = (*wb)->db().Query(a, q);
    ASSERT_TRUE(first.ok() && second.ok() && legacy.ok());
    ExpectSameAnswers(*first, *second);
    ExpectSameAnswers(*first, *legacy);
  }
}

TEST(SessionTest, ExplainIsStableAndDescribesThePlan) {
  auto wb = Workbench::Create(SmallSpec(/*index=*/true));
  ASSERT_TRUE(wb.ok()) << wb.status().ToString();
  Session session(&(*wb)->db());

  QueryOptions scan_q;
  scan_q.pattern = "President";
  scan_q.eval_threads = 1;
  auto scan_pq = session.Prepare(Approach::kFullSfa, scan_q);
  ASSERT_TRUE(scan_pq.ok());
  std::string scan_explain = scan_pq->Explain();
  EXPECT_NE(scan_explain.find("full-scan"), std::string::npos) << scan_explain;
  EXPECT_NE(scan_explain.find("Fetch method=blob"), std::string::npos);
  EXPECT_NE(scan_explain.find("sfa-dp"), std::string::npos);
  EXPECT_NE(scan_explain.find("TopK num_ans=100"), std::string::npos);

  QueryOptions idx_q;
  idx_q.pattern = "President";
  idx_q.use_index = true;
  idx_q.use_projection = true;
  idx_q.eval_threads = 4;
  auto idx_pq = session.Prepare(Approach::kStaccato, idx_q);
  ASSERT_TRUE(idx_pq.ok());
  std::string before = idx_pq->Explain();
  EXPECT_NE(before.find("index-probe"), std::string::npos) << before;
  EXPECT_NE(before.find("anchor='president'"), std::string::npos) << before;
  EXPECT_NE(before.find("Fetch method=projection"), std::string::npos);
  EXPECT_NE(before.find("threads=4"), std::string::npos);

  // Executing must not change the rendered plan.
  ASSERT_TRUE(idx_pq->Execute().ok());
  ASSERT_TRUE(idx_pq->Execute().ok());
  EXPECT_EQ(idx_pq->Explain(), before);
}

TEST(SessionTest, EqualityPredicateFiltersCandidates) {
  auto wb = Workbench::Create(SmallSpec());
  ASSERT_TRUE(wb.ok()) << wb.status().ToString();
  Session session(&(*wb)->db());

  const std::string sql =
      "SELECT DataKey FROM Docs WHERE Year = 2010 AND "
      "DocData LIKE '%President%';";
  auto pq = session.PrepareSql(Approach::kStaccato, sql);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  EXPECT_NE(pq->Explain().find("Filter Year = 2010"), std::string::npos)
      << pq->Explain();
  QueryStats stats;
  auto filtered = pq->Execute(&stats);
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  EXPECT_EQ(stats.candidates, kLinesPerPage);  // only page 0 is dated 2010
  for (const Answer& ans : *filtered) {
    EXPECT_LT(ans.doc, kLinesPerPage) << "doc from the wrong year retrieved";
  }

  // The filtered answer set is exactly the unfiltered one restricted to
  // page 0 (per-doc probabilities are independent of the filter).
  QueryOptions q;
  q.pattern = "President";
  auto all = (*wb)->db().Query(Approach::kStaccato, q);
  ASSERT_TRUE(all.ok());
  std::vector<Answer> expected;
  for (const Answer& ans : *all) {
    if (ans.doc < kLinesPerPage) expected.push_back(ans);
  }
  ExpectSameAnswers(*filtered, expected);

  // String-typed equality binds against DocName.
  auto by_name = session.PrepareSql(
      Approach::kMap,
      "SELECT * FROM Docs WHERE DocName = 'CA-page-1' AND "
      "DocData LIKE '%President%'");
  ASSERT_TRUE(by_name.ok()) << by_name.status().ToString();
  auto page1 = by_name->Execute();
  ASSERT_TRUE(page1.ok());
  for (const Answer& ans : *page1) EXPECT_GE(ans.doc, kLinesPerPage);

  // Prepare-time rejection: unknown column, type-mismatched literal.
  EXPECT_TRUE(session
                  .PrepareSql(Approach::kMap,
                              "SELECT * FROM t WHERE Nope = 1 AND "
                              "D LIKE '%x%'")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session
                  .PrepareSql(Approach::kMap,
                              "SELECT * FROM t WHERE Year = 'abc' AND "
                              "D LIKE '%x%'")
                  .status()
                  .IsInvalidArgument());
}

TEST(SessionTest, PaperExampleSqlExecutesEndToEnd) {
  auto wb = Workbench::Create(SmallSpec());
  ASSERT_TRUE(wb.ok());
  Session session(&(*wb)->db());
  // The motivating statement of Section 2.1, verbatim. (This corpus has no
  // Fords, so the answer set is empty — but the full pipeline runs.)
  auto pq = session.PrepareSql(Approach::kStaccato,
                               "SELECT DocID, Loss FROM Claims "
                               "WHERE Year = 2010 AND DocData LIKE '%Ford%';");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  QueryStats stats;
  auto answers = pq->Execute(&stats);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_EQ(stats.candidates, kLinesPerPage);
  EXPECT_FALSE(stats.plan_summary.empty());
}

TEST(SessionTest, CursorStreamsTheRankedAnswers) {
  auto wb = Workbench::Create(SmallSpec());
  ASSERT_TRUE(wb.ok());
  Session session(&(*wb)->db());
  QueryOptions q;
  q.pattern = "President";
  auto pq = session.Prepare(Approach::kKMap, q);
  ASSERT_TRUE(pq.ok());
  auto reference = pq->Execute();
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->empty());

  auto cursor = pq->Open();
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(cursor->size(), reference->size());
  Answer ans;
  size_t i = 0;
  while (cursor->Next(&ans)) {
    ASSERT_LT(i, reference->size());
    EXPECT_EQ(ans.doc, (*reference)[i].doc);
    EXPECT_EQ(ans.prob, (*reference)[i].prob);
    ++i;
  }
  EXPECT_EQ(i, reference->size());
  EXPECT_FALSE(cursor->Next(&ans)) << "exhausted cursor must stay exhausted";
}

TEST(SessionTest, ParallelEvalBitIdenticalToSerial) {
  auto wb = Workbench::Create(SmallSpec(/*index=*/true));
  ASSERT_TRUE(wb.ok());
  Session session(&(*wb)->db());
  struct Case {
    Approach approach;
    bool use_index;
    bool use_projection;
  };
  for (const Case& c : {Case{Approach::kFullSfa, false, false},
                        Case{Approach::kStaccato, false, false},
                        Case{Approach::kStaccato, true, false},
                        Case{Approach::kStaccato, true, true}}) {
    QueryOptions q;
    q.pattern = "President";
    // Pin the source so each case measures the path it names (kAuto could
    // cost-route the "scan" cases onto the index).
    q.index_mode = c.use_index ? IndexMode::kForce : IndexMode::kNever;
    q.use_projection = c.use_projection;

    q.eval_threads = 1;
    auto serial_pq = session.Prepare(c.approach, q);
    ASSERT_TRUE(serial_pq.ok());
    QueryStats serial_stats;
    auto serial = serial_pq->Execute(&serial_stats);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(serial_stats.threads_used, 1u);

    q.eval_threads = 4;
    auto par_pq = session.Prepare(c.approach, q);
    ASSERT_TRUE(par_pq.ok());
    QueryStats par_stats;
    auto parallel = par_pq->Execute(&par_stats);
    ASSERT_TRUE(parallel.ok());
    EXPECT_GT(par_stats.threads_used, 1u);
    EXPECT_NE(par_stats.plan_summary.find("[t=4]"), std::string::npos)
        << par_stats.plan_summary;
    EXPECT_EQ(par_stats.candidates, serial_stats.candidates);

    ExpectSameAnswers(*serial, *parallel);
  }
}

TEST(SessionTest, CostBasedPlannerChoosesByEstimateAndExplainsIt) {
  auto wb = Workbench::Create(SmallSpec(/*index=*/true));
  ASSERT_TRUE(wb.ok()) << wb.status().ToString();
  Session session(&(*wb)->db());

  QueryOptions q;
  q.pattern = "President";
  // kAuto (the default): the chosen source must agree with the estimate.
  auto pq = session.Prepare(Approach::kStaccato, q);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  const rdbms::CostEstimate& cost = pq->plan().cost;
  EXPECT_TRUE(cost.scan.feasible);
  EXPECT_GT(cost.scan.total, 0.0);
  EXPECT_EQ(cost.table_cardinality, 2 * kLinesPerPage);
  ASSERT_TRUE(cost.index.feasible);  // 'president' is a dictionary anchor
  EXPECT_GT(cost.anchor_postings, 0u);
  EXPECT_GE(cost.anchor_postings, cost.anchor_docs);
  const bool index_cheaper = cost.index.total < cost.scan.total;
  EXPECT_EQ(pq->plan().source == CandidateSource::kIndexProbe, index_cheaper);
  EXPECT_EQ(cost.chosen, pq->plan().source);

  // Pinning the mode overrides the estimate in both directions.
  q.index_mode = IndexMode::kNever;
  auto scan_pq = session.Prepare(Approach::kStaccato, q);
  ASSERT_TRUE(scan_pq.ok());
  EXPECT_EQ(scan_pq->plan().source, CandidateSource::kFullScan);
  q.index_mode = IndexMode::kForce;
  auto idx_pq = session.Prepare(Approach::kStaccato, q);
  ASSERT_TRUE(idx_pq.ok());
  EXPECT_EQ(idx_pq->plan().source, CandidateSource::kIndexProbe);

  // The estimate is rendered by Explain, deterministically: preparing the
  // same query twice yields byte-identical text.
  std::string explain = pq->Explain();
  EXPECT_NE(explain.find("Cost: est-candidates="), std::string::npos)
      << explain;
  EXPECT_NE(explain.find("sel="), std::string::npos);
  EXPECT_NE(explain.find("scan="), std::string::npos);
  auto again = session.Prepare(Approach::kStaccato, q);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->Explain(), idx_pq->Explain());

  // Without an index, kAuto silently plans a scan (no error).
  auto no_idx = Workbench::Create(SmallSpec(/*index=*/false));
  ASSERT_TRUE(no_idx.ok());
  Session bare(&(*no_idx)->db());
  QueryOptions auto_q;
  auto_q.pattern = "President";
  auto bare_pq = bare.Prepare(Approach::kStaccato, auto_q);
  ASSERT_TRUE(bare_pq.ok()) << bare_pq.status().ToString();
  EXPECT_EQ(bare_pq->plan().source, CandidateSource::kFullScan);
  EXPECT_FALSE(bare_pq->plan().cost.index.feasible);
}

TEST(SessionTest, AutoModeRoutesRareAnchorsThroughTheIndex) {
  auto wb = Workbench::Create(SmallSpec(/*index=*/true));
  ASSERT_TRUE(wb.ok());
  // Pick the rarest indexed term — fewest postings, ties broken
  // lexicographically so the choice is deterministic. Probing a handful of
  // postings is estimated (and is) far cheaper than scanning every SFA, so
  // kAuto picks the index on its own.
  const TermStatsMap& stats_map = (*wb)->db().term_stats();
  ASSERT_FALSE(stats_map.empty());
  std::string rare;
  size_t rare_postings = 0;
  for (const auto& [term, st] : stats_map) {
    if (rare.empty() || st.postings < rare_postings ||
        (st.postings == rare_postings && term < rare)) {
      rare = term;
      rare_postings = st.postings;
    }
  }

  Session session(&(*wb)->db());
  QueryOptions q;
  q.pattern = rare;
  auto pq = session.Prepare(Approach::kStaccato, q);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  const rdbms::CostEstimate& cost = pq->plan().cost;
  ASSERT_TRUE(cost.index.feasible) << rare;
  EXPECT_EQ(cost.anchor_postings, rare_postings);
  EXPECT_LT(cost.index.total, cost.scan.total) << rare;
  EXPECT_EQ(pq->plan().source, CandidateSource::kIndexProbe) << rare;
  EXPECT_EQ(pq->plan().anchor, rare);
}

TEST(SessionTest, WarmExecuteServesCacheAndIsBitIdentical) {
  auto wb = Workbench::Create(SmallSpec(/*index=*/true));
  ASSERT_TRUE(wb.ok());
  Session session(&(*wb)->db());
  QueryOptions q;
  q.pattern = "President";
  q.index_mode = IndexMode::kForce;
  q.equalities = {{"Year", "2010"}};
  auto pq = session.Prepare(Approach::kStaccato, q);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();

  QueryStats cold, warm;
  auto first = pq->Execute(&cold);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(cold.filter_from_cache);
  EXPECT_FALSE(cold.candidates_from_cache);

  auto second = pq->Execute(&warm);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(warm.filter_from_cache) << "Filter ran again on a warm plan";
  EXPECT_TRUE(warm.candidates_from_cache)
      << "CandidateGen ran again on a warm plan";
  EXPECT_EQ(warm.candidates, cold.candidates);
  EXPECT_EQ(warm.index_postings, cold.index_postings);
  ExpectSameAnswers(*first, *second);

  // Estimated vs. actual candidates are reported side by side.
  EXPECT_EQ(warm.est_candidates, pq->plan().cost.chosen_cost().candidates);
  std::string analyzed = rdbms::ExplainPlan(pq->plan(), warm);
  EXPECT_NE(analyzed.find("Actual: candidates="), std::string::npos)
      << analyzed;
  EXPECT_NE(analyzed.find("filter=hit"), std::string::npos) << analyzed;
  EXPECT_NE(analyzed.find("candidates=hit"), std::string::npos) << analyzed;
}

TEST(SessionTest, PlanCacheInvalidatesWhenDataReloads) {
  auto wb = Workbench::Create(SmallSpec(/*index=*/true));
  ASSERT_TRUE(wb.ok());
  rdbms::StaccatoDb& db = (*wb)->db();
  Session session(&db);

  // Scan-shaped plan: the equality bitmap must be recomputed after a
  // reload, then warm up again.
  QueryOptions scan_q;
  scan_q.pattern = "President";
  scan_q.index_mode = IndexMode::kNever;
  scan_q.equalities = {{"Year", "2010"}};
  auto scan_pq = session.Prepare(Approach::kStaccato, scan_q);
  ASSERT_TRUE(scan_pq.ok());
  QueryStats s;
  ASSERT_TRUE(scan_pq->Execute(&s).ok());
  ASSERT_TRUE(scan_pq->Execute(&s).ok());
  ASSERT_TRUE(s.filter_from_cache);

  // Index-shaped plan, warmed.
  QueryOptions idx_q = scan_q;
  idx_q.index_mode = IndexMode::kForce;
  auto idx_pq = session.Prepare(Approach::kStaccato, idx_q);
  ASSERT_TRUE(idx_pq.ok());
  QueryStats si;
  auto before_reload = idx_pq->Execute(&si);
  ASSERT_TRUE(before_reload.ok());
  ASSERT_TRUE(idx_pq->Execute(&si).ok());
  ASSERT_TRUE(si.filter_from_cache && si.candidates_from_cache);

  // A new Load bumps the load generation and drops the index (it was
  // built over the old corpus).
  const uint64_t gen = db.load_generation();
  ASSERT_TRUE(db.Load((*wb)->dataset(), SmallSpec().load).ok());
  EXPECT_GT(db.load_generation(), gen);

  QueryStats reloaded;
  ASSERT_TRUE(scan_pq->Execute(&reloaded).ok());
  EXPECT_FALSE(reloaded.filter_from_cache) << "stale bitmap served";
  QueryStats rewarmed;
  ASSERT_TRUE(scan_pq->Execute(&rewarmed).ok());
  EXPECT_TRUE(rewarmed.filter_from_cache);

  // The frozen index-probe plan must fail cleanly (not probe stale
  // postings) until the index is rebuilt...
  QueryStats stale;
  EXPECT_TRUE(idx_pq->Execute(&stale).status().IsInvalidArgument());

  // ...after which it recomputes everything, then warms up again.
  std::vector<std::string> dict =
      BuildDictionaryFromCorpus((*wb)->dataset().corpus.lines);
  ASSERT_TRUE(db.BuildInvertedIndex(dict).ok());
  QueryStats rebuilt;
  auto after_rebuild = idx_pq->Execute(&rebuilt);
  ASSERT_TRUE(after_rebuild.ok());
  EXPECT_FALSE(rebuilt.filter_from_cache);
  EXPECT_FALSE(rebuilt.candidates_from_cache);
  // Reload is a full replacement: the same dataset reloaded + reindexed
  // yields bit-identical answers, not doubled probabilities.
  ExpectSameAnswers(*after_rebuild, *before_reload);
  QueryStats warm_again;
  ASSERT_TRUE(idx_pq->Execute(&warm_again).ok());
  EXPECT_TRUE(warm_again.filter_from_cache);
  EXPECT_TRUE(warm_again.candidates_from_cache);

  // Rebuilding with a dictionary that no longer contains the anchor also
  // invalidates the frozen probe plan — never a silent empty probe.
  ASSERT_TRUE(db.BuildInvertedIndex({"zebra"}).ok());
  EXPECT_TRUE(idx_pq->Execute(&stale).status().IsInvalidArgument());
}

TEST(SessionTest, IndexRebuildReplacesPersistedPostings) {
  auto wb = Workbench::Create(SmallSpec(/*index=*/true));
  ASSERT_TRUE(wb.ok());
  rdbms::StaccatoDb& db = (*wb)->db();
  // Rebuild the index over the same dictionary: the persisted postings
  // relation must be replaced, not appended to.
  std::vector<std::string> dict =
      BuildDictionaryFromCorpus((*wb)->dataset().corpus.lines);
  ASSERT_TRUE(db.BuildInvertedIndex(dict).ok());
  const TermStatsMap live = db.term_stats();

  // Reopening the directory recovers the statistics from disk; they must
  // match the live ones exactly (a stale append would double them).
  auto reopened = rdbms::StaccatoDb::OpenExisting((*wb)->spec().work_dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const TermStatsMap& recovered = (*reopened)->term_stats();
  ASSERT_EQ(recovered.size(), live.size());
  for (const auto& [term, st] : live) {
    auto it = recovered.find(term);
    ASSERT_NE(it, recovered.end()) << term;
    EXPECT_EQ(it->second.postings, st.postings) << term;
    EXPECT_EQ(it->second.docs, st.docs) << term;
  }
}

TEST(SessionTest, SqlLimitMapsToNumAns) {
  auto wb = Workbench::Create(SmallSpec());
  ASSERT_TRUE(wb.ok());
  Session session(&(*wb)->db());
  auto pq = session.PrepareSql(
      Approach::kKMap,
      "SELECT DataKey FROM Docs WHERE DocData LIKE '%President%' LIMIT 3;");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  EXPECT_EQ(pq->plan().num_ans, 3u);
  EXPECT_NE(pq->Explain().find("TopK num_ans=3"), std::string::npos);
  auto answers = pq->Execute();
  ASSERT_TRUE(answers.ok());
  EXPECT_LE(answers->size(), 3u);

  // Without LIMIT the session default applies.
  auto unlimited = session.PrepareSql(
      Approach::kKMap, "SELECT DataKey FROM Docs WHERE DocData LIKE '%President%'");
  ASSERT_TRUE(unlimited.ok());
  EXPECT_EQ(unlimited->plan().num_ans, session.options().num_ans);

  // Quoted literals never coerce to numeric columns.
  EXPECT_TRUE(session
                  .PrepareSql(Approach::kMap,
                              "SELECT * FROM t WHERE Year = '2010' AND "
                              "D LIKE '%x%'")
                  .status()
                  .IsInvalidArgument());
}

TEST(SessionTest, ExecuteBatchBitIdenticalToSoloWithOneSharedPass) {
  auto wb = Workbench::Create(SmallSpec(/*index=*/true));
  ASSERT_TRUE(wb.ok()) << wb.status().ToString();
  Session session(&(*wb)->db());

  // >= 8 prepared patterns over one approach, mixed plan shapes: scans,
  // forced probes, equality filters.
  std::vector<QueryOptions> qs;
  for (const char* pat : {"President", "Congress", "United States", "act",
                          "law", "section", "amend", "public"}) {
    QueryOptions q;
    q.pattern = pat;
    q.index_mode = IndexMode::kNever;
    qs.push_back(q);
  }
  qs[1].index_mode = IndexMode::kForce;  // 'congress' resolves as an anchor
  qs[2].index_mode = IndexMode::kAuto;
  qs[3].equalities = {{"Year", "2010"}};
  auto batch = session.PrepareBatch(Approach::kStaccato, qs);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), qs.size());

  // Solo baseline on separately prepared queries (same cold-cache state).
  std::vector<std::vector<Answer>> solo;
  std::vector<QueryStats> solo_stats(qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    auto pq = session.Prepare(Approach::kStaccato, qs[i]);
    ASSERT_TRUE(pq.ok());
    auto ans = pq->Execute(&solo_stats[i]);
    ASSERT_TRUE(ans.ok()) << ans.status().ToString();
    solo.push_back(std::move(*ans));
  }

  std::vector<PreparedQuery*> ptrs;
  for (PreparedQuery& pq : *batch) ptrs.push_back(&pq);
  rdbms::BatchStats stats;
  auto results = session.ExecuteBatch(ptrs, &stats);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    ExpectSameAnswers((*results)[i], solo[i]);
  }

  // One shared CandidateGen/Fetch pass for the whole group, observable in
  // both the batch-level and per-query stats.
  EXPECT_EQ(stats.queries, qs.size());
  EXPECT_GT(stats.distinct_docs_fetched, 0u);
  EXPECT_LE(stats.distinct_docs_fetched, (*wb)->db().NumSfas());
  ASSERT_EQ(stats.per_query.size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(stats.per_query[i].batch_size, qs.size()) << i;
    EXPECT_TRUE(stats.per_query[i].shared_candidate_pass) << i;
    EXPECT_EQ(stats.per_query[i].candidates, solo_stats[i].candidates) << i;
    EXPECT_EQ(stats.per_query[i].index_postings, solo_stats[i].index_postings)
        << i;
  }
  std::string explained =
      rdbms::ExplainPlan((*batch)[0].plan(), stats.per_query[0]);
  EXPECT_NE(explained.find("Batch: size=8 shared-candidate-pass=yes"),
            std::string::npos)
      << explained;

  // A second ExecuteBatch serves the warmed per-query caches.
  rdbms::BatchStats warm;
  auto again = session.ExecuteBatch(ptrs, &warm);
  ASSERT_TRUE(again.ok());
  for (size_t i = 0; i < qs.size(); ++i) {
    ExpectSameAnswers((*again)[i], solo[i]);
  }
  EXPECT_TRUE(warm.per_query[1].candidates_from_cache);  // forced probe
  EXPECT_TRUE(warm.per_query[3].filter_from_cache);      // equality bitmap
}

TEST(SessionTest, ExecuteBatchSharesOneKMapScanAcrossStringQueries) {
  auto wb = Workbench::Create(SmallSpec());
  ASSERT_TRUE(wb.ok());
  Session session(&(*wb)->db());
  std::vector<QueryOptions> qs;
  for (const char* pat : {"President", "Congress", "act", "law"}) {
    QueryOptions q;
    q.pattern = pat;
    qs.push_back(q);
  }
  auto batch = session.PrepareBatch(Approach::kKMap, qs);
  ASSERT_TRUE(batch.ok());

  std::vector<std::vector<Answer>> solo;
  for (const QueryOptions& q : qs) {
    auto pq = session.Prepare(Approach::kKMap, q);
    ASSERT_TRUE(pq.ok());
    auto ans = pq->Execute();
    ASSERT_TRUE(ans.ok());
    solo.push_back(std::move(*ans));
  }

  std::vector<PreparedQuery*> ptrs;
  for (PreparedQuery& pq : *batch) ptrs.push_back(&pq);
  rdbms::BatchStats stats;
  auto results = session.ExecuteBatch(ptrs, &stats);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_EQ(stats.kmap_scan_passes, 1u)
      << "string queries must share one physical kMAPData scan";
  for (size_t i = 0; i < qs.size(); ++i) {
    ExpectSameAnswers((*results)[i], solo[i]);
    EXPECT_TRUE(stats.per_query[i].shared_candidate_pass);
  }

  // Mixed batch: string and SFA members in one call, each group sharing
  // its own pass.
  QueryOptions sfa_q;
  sfa_q.pattern = "President";
  sfa_q.index_mode = IndexMode::kNever;
  auto sfa_pq = session.Prepare(Approach::kStaccato, sfa_q);
  ASSERT_TRUE(sfa_pq.ok());
  auto sfa_solo = sfa_pq->Execute();
  ASSERT_TRUE(sfa_solo.ok());
  auto mixed_pq = session.Prepare(Approach::kStaccato, sfa_q);
  ASSERT_TRUE(mixed_pq.ok());
  ptrs.push_back(&*mixed_pq);
  rdbms::BatchStats mixed;
  auto mixed_results = session.ExecuteBatch(ptrs, &mixed);
  ASSERT_TRUE(mixed_results.ok()) << mixed_results.status().ToString();
  EXPECT_EQ(mixed.kmap_scan_passes, 1u);
  EXPECT_EQ(mixed.distinct_docs_fetched, (*wb)->db().NumSfas());
  for (size_t i = 0; i < qs.size(); ++i) {
    ExpectSameAnswers((*mixed_results)[i], solo[i]);
  }
  ExpectSameAnswers((*mixed_results)[qs.size()], *sfa_solo);
}

TEST(SessionTest, EarlyStopPruningIsAnswerNeutralAcrossThreads) {
  auto wb = Workbench::Create(SmallSpec(/*index=*/true));
  ASSERT_TRUE(wb.ok()) << wb.status().ToString();
  Session session(&(*wb)->db());

  // Selective top-k over the lossy Staccato representation: NumAns is far
  // below the candidate count, and approximation leak makes many
  // candidates' mass bound sink below the k-th best answer mid-DP. A
  // short, common pattern keeps the k-th best probability high, which is
  // what lets the threshold bite early (rare patterns have tiny top
  // probabilities, so their bound only collapses at the end of the DP).
  for (Approach approach : {Approach::kStaccato, Approach::kFullSfa}) {
    QueryOptions q;
    q.pattern = "an";
    q.num_ans = 3;
    q.index_mode = IndexMode::kNever;  // scan: every doc is a candidate

    std::vector<Answer> reference;
    bool have_reference = false;
    for (bool early_stop : {false, true}) {
      for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
        q.early_stop = early_stop;
        q.eval_threads = threads;
        auto pq = session.Prepare(approach, q);
        ASSERT_TRUE(pq.ok()) << pq.status().ToString();
        QueryStats stats;
        auto ans = pq->Execute(&stats);
        ASSERT_TRUE(ans.ok()) << ans.status().ToString();
        if (!have_reference) {
          reference = *ans;
          have_reference = true;
          ASSERT_FALSE(reference.empty());
        } else {
          ExpectSameAnswers(*ans, reference);
        }
        if (!early_stop) {
          EXPECT_EQ(stats.eval_pruned, 0u);
          EXPECT_EQ(stats.eval_steps_saved, 0u);
        }
      }
    }

    // With early-stop on and one thread the pruning outcome is
    // deterministic; on the lossy representation it must actually bite.
    q.early_stop = true;
    q.eval_threads = 1;
    auto pq = session.Prepare(approach, q);
    ASSERT_TRUE(pq.ok());
    QueryStats stats;
    auto ans = pq->Execute(&stats);
    ASSERT_TRUE(ans.ok());
    ExpectSameAnswers(*ans, reference);
    if (approach == Approach::kStaccato) {
      EXPECT_GT(stats.eval_pruned, 0u) << "early-stop never fired";
      EXPECT_GT(stats.eval_steps_saved, 0u);
      EXPECT_LT(stats.eval_pruned, stats.candidates);
    }

    // The pruning outcome is rendered by the post-execution Explain.
    std::string explained = rdbms::ExplainPlan(pq->plan(), stats);
    EXPECT_NE(explained.find("Pruned: "), std::string::npos) << explained;
    EXPECT_NE(explained.find("early-stop=on"), std::string::npos) << explained;
    EXPECT_NE(explained.find("steps-saved="), std::string::npos) << explained;
  }

  // Toggling early-stop off on a prepared query reports it in Explain.
  QueryOptions q;
  q.pattern = "President";
  auto off = session.Prepare(Approach::kStaccato, q);
  ASSERT_TRUE(off.ok());
  off->set_early_stop(false);
  EXPECT_NE(off->Explain().find("early-stop=off"), std::string::npos)
      << off->Explain();
}

TEST(SessionTest, BatchExecutePrunesPerQueryAndStaysBitIdentical) {
  auto wb = Workbench::Create(SmallSpec(/*index=*/true));
  ASSERT_TRUE(wb.ok());
  Session session(&(*wb)->db());

  std::vector<QueryOptions> qs;
  for (const char* pat : {"President", "Congress", "act", "law"}) {
    QueryOptions q;
    q.pattern = pat;
    q.num_ans = 3;
    q.index_mode = IndexMode::kNever;
    qs.push_back(q);
  }
  // Solo baseline with pruning disabled: the strictest possible reference.
  std::vector<std::vector<Answer>> solo;
  for (QueryOptions q : qs) {
    q.early_stop = false;
    auto pq = session.Prepare(Approach::kStaccato, q);
    ASSERT_TRUE(pq.ok());
    auto ans = pq->Execute();
    ASSERT_TRUE(ans.ok());
    solo.push_back(std::move(*ans));
  }

  auto batch = session.PrepareBatch(Approach::kStaccato, qs);
  ASSERT_TRUE(batch.ok());
  std::vector<PreparedQuery*> ptrs;
  for (PreparedQuery& pq : *batch) ptrs.push_back(&pq);
  rdbms::BatchStats stats;
  auto results = session.ExecuteBatch(ptrs, &stats);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  for (size_t i = 0; i < qs.size(); ++i) {
    ExpectSameAnswers((*results)[i], solo[i]);
  }
  // Batch-wide totals aggregate the per-query counters.
  size_t per_query_pruned = 0;
  for (const QueryStats& st : stats.per_query) per_query_pruned += st.eval_pruned;
  EXPECT_EQ(stats.eval_pruned, per_query_pruned);
}

TEST(SessionTest, BufferCacheWarmExecuteBitIdenticalToColdAndToCacheOff) {
  // The acceptance invariant of the buffer cache: answers are
  // bit-identical cache-on vs cache-off, and warm (cache-served) vs cold.
  WorkbenchSpec on_spec = SmallSpec();
  on_spec.cache = cache::CacheConfig{/*budget_bytes=*/32 << 20, /*shards=*/4};
  WorkbenchSpec off_spec = SmallSpec();
  off_spec.cache = cache::CacheConfig{/*budget_bytes=*/0, /*shards=*/0};
  auto on = Workbench::Create(on_spec);
  auto off = Workbench::Create(off_spec);
  ASSERT_TRUE(on.ok() && off.ok());
  ASSERT_NE((*on)->db().buffer_cache(), nullptr);
  ASSERT_EQ((*off)->db().buffer_cache(), nullptr);

  for (Approach approach : {Approach::kFullSfa, Approach::kStaccato}) {
    QueryOptions q;
    q.pattern = "President";
    q.index_mode = IndexMode::kNever;  // scan: the plan cache memoizes
    q.eval_threads = 2;                // nothing, isolating the buffer cache

    auto on_pq = Session(&(*on)->db()).Prepare(approach, q);
    auto off_pq = Session(&(*off)->db()).Prepare(approach, q);
    ASSERT_TRUE(on_pq.ok() && off_pq.ok());

    ASSERT_TRUE((*on)->db().DropCaches().ok());
    QueryStats cold;
    auto cold_ans = on_pq->Execute(&cold);
    ASSERT_TRUE(cold_ans.ok());
    EXPECT_EQ(cold.cache_hits, 0u) << "cold run served from a dropped cache";
    EXPECT_GT(cold.cache_misses, 0u);
    EXPECT_GT(cold.cache_bytes, 0u);
    EXPECT_LE(cold.cache_bytes, on_spec.cache.budget_bytes);

    QueryStats warm;
    auto warm_ans = on_pq->Execute(&warm);
    ASSERT_TRUE(warm_ans.ok());
    EXPECT_GT(warm.cache_hits, 0u) << "warm run missed the buffer cache";
    EXPECT_EQ(warm.cache_misses, 0u);
    EXPECT_EQ(warm.blob_bytes_read, 0u) << "warm run still hit disk";

    QueryStats uncached;
    auto off_ans = off_pq->Execute(&uncached);
    ASSERT_TRUE(off_ans.ok());
    EXPECT_EQ(uncached.cache_hits, 0u);
    EXPECT_EQ(uncached.cache_misses, 0u);
    EXPECT_EQ(uncached.cache_bytes, 0u);

    ExpectSameAnswers(*cold_ans, *warm_ans);
    ExpectSameAnswers(*cold_ans, *off_ans);

    // The post-execution Explain renders the cache outcome.
    std::string explained = rdbms::ExplainPlan(on_pq->plan(), warm);
    EXPECT_NE(explained.find("Cache: hits="), std::string::npos) << explained;
  }
}

TEST(SessionTest, BufferCacheInvalidatesOnLoadGenerationBump) {
  WorkbenchSpec spec = SmallSpec();
  spec.cache = cache::CacheConfig{/*budget_bytes=*/32 << 20, /*shards=*/4};
  auto wb = Workbench::Create(spec);
  ASSERT_TRUE(wb.ok());
  rdbms::StaccatoDb& db = (*wb)->db();
  Session session(&db);
  QueryOptions q;
  q.pattern = "President";
  q.index_mode = IndexMode::kNever;

  auto pq = session.Prepare(Approach::kStaccato, q);
  ASSERT_TRUE(pq.ok());
  QueryStats first;
  auto before = pq->Execute(&first);
  ASSERT_TRUE(before.ok());
  QueryStats warmed;
  ASSERT_TRUE(pq->Execute(&warmed).ok());
  ASSERT_GT(warmed.cache_hits, 0u);

  // Reloading the same dataset bumps the load generation: the cached
  // blobs are keyed by the old generation and must never be served again,
  // with answers identical to the pre-reload run (same data).
  ASSERT_TRUE(db.Load((*wb)->dataset(), SmallSpec().load).ok());
  QueryStats reloaded;
  auto after = pq->Execute(&reloaded);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(reloaded.cache_hits, 0u) << "stale generation served from cache";
  EXPECT_GT(reloaded.cache_misses, 0u);
  ExpectSameAnswers(*after, *before);

  // And the cache re-warms under the new generation.
  QueryStats rewarmed;
  auto again = pq->Execute(&rewarmed);
  ASSERT_TRUE(again.ok());
  EXPECT_GT(rewarmed.cache_hits, 0u);
  ExpectSameAnswers(*again, *before);
}

TEST(SessionTest, SharedPlanCacheWarmsSiblingPreparedQueries) {
  auto wb = Workbench::Create(SmallSpec(/*index=*/true));
  ASSERT_TRUE(wb.ok());
  Session session(&(*wb)->db());
  QueryOptions q;
  q.pattern = "President";
  q.index_mode = IndexMode::kForce;
  q.equalities = {{"Year", "2010"}};

  // First query computes and publishes its artifacts.
  auto first = session.Prepare(Approach::kStaccato, q);
  ASSERT_TRUE(first.ok());
  QueryStats cold;
  auto ref = first->Execute(&cold);
  ASSERT_TRUE(ref.ok());
  EXPECT_FALSE(cold.shared_plan_hit);
  EXPECT_FALSE(cold.filter_from_cache);
  EXPECT_EQ(session.shared_plan_hits(), 0u);

  // A sibling with the same fingerprint adopts them on its FIRST Execute:
  // both operators come from cache, answers bit-identical.
  auto sibling = session.Prepare(Approach::kStaccato, q);
  ASSERT_TRUE(sibling.ok());
  QueryStats adopted;
  auto sib_ans = sibling->Execute(&adopted);
  ASSERT_TRUE(sib_ans.ok());
  EXPECT_TRUE(adopted.shared_plan_hit);
  EXPECT_TRUE(adopted.filter_from_cache);
  EXPECT_TRUE(adopted.candidates_from_cache);
  EXPECT_EQ(session.shared_plan_hits(), 1u);
  ExpectSameAnswers(*sib_ans, *ref);

  // A different fingerprint (different predicate) shares nothing.
  QueryOptions other = q;
  other.equalities = {{"Year", "2011"}};
  auto stranger = session.Prepare(Approach::kStaccato, other);
  ASSERT_TRUE(stranger.ok());
  QueryStats fresh;
  ASSERT_TRUE(stranger->Execute(&fresh).ok());
  EXPECT_FALSE(fresh.shared_plan_hit);
  EXPECT_FALSE(fresh.filter_from_cache);

  // Nor does a different Session: its table is its own.
  Session other_session(&(*wb)->db());
  auto foreign = other_session.Prepare(Approach::kStaccato, q);
  ASSERT_TRUE(foreign.ok());
  QueryStats isolated;
  ASSERT_TRUE(foreign->Execute(&isolated).ok());
  EXPECT_FALSE(isolated.shared_plan_hit);
  EXPECT_EQ(other_session.shared_plan_hits(), 0u);

  // A reload invalidates the shared entries like any plan cache: the
  // frozen index-probe plan fails cleanly, and after a rebuild a new
  // sibling recomputes rather than adopting stale artifacts.
  rdbms::StaccatoDb& db = (*wb)->db();
  ASSERT_TRUE(db.Load((*wb)->dataset(), SmallSpec().load).ok());
  std::vector<std::string> dict =
      BuildDictionaryFromCorpus((*wb)->dataset().corpus.lines);
  ASSERT_TRUE(db.BuildInvertedIndex(dict).ok());
  auto rebuilt = session.Prepare(Approach::kStaccato, q);
  ASSERT_TRUE(rebuilt.ok());
  QueryStats post;
  auto post_ans = rebuilt->Execute(&post);
  ASSERT_TRUE(post_ans.ok());
  EXPECT_FALSE(post.shared_plan_hit) << "adopted artifacts from a dead gen";
  EXPECT_FALSE(post.filter_from_cache);
  ExpectSameAnswers(*post_ans, *ref);  // full replacement, same dataset
}

TEST(SessionTest, SessionDefaultsToParallelEval) {
  auto wb = Workbench::Create(SmallSpec());
  ASSERT_TRUE(wb.ok());
  // eval_threads = 0 in both the session options and the query inherits
  // hardware concurrency at prepare time.
  Session session(&(*wb)->db(), SessionOptions{});
  QueryOptions q;
  q.pattern = "President";
  auto pq = session.Prepare(Approach::kStaccato, q);
  ASSERT_TRUE(pq.ok());
  EXPECT_GE(pq->plan().eval_threads, 1u);
  auto answers = pq->Execute();
  ASSERT_TRUE(answers.ok());
  auto legacy = (*wb)->db().Query(Approach::kStaccato, q);
  ASSERT_TRUE(legacy.ok());
  ExpectSameAnswers(*answers, *legacy);
}

}  // namespace
}  // namespace staccato
