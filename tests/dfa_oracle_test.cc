// Differential tests: the compiled DFA vs a simple backtracking matcher
// over the pattern AST (an independent oracle), swept over random patterns
// and random inputs with TEST_P.
#include <gtest/gtest.h>

#include <string>

#include "automata/dfa.h"
#include "automata/pattern.h"
#include "util/random.h"

namespace staccato {
namespace {

// Backtracking reference matcher: returns true if node matches s[pos..)
// and calls cont on each possible end position.
bool MatchNode(const PatternNode& node, const std::string& s, size_t pos,
               const std::function<bool(size_t)>& cont, int depth = 0) {
  if (depth > 64) return false;  // guard (patterns here are tiny)
  switch (node.kind) {
    case PatternNode::Kind::kChar:
      if (pos < s.size() && node.chars.Test(s[pos])) return cont(pos + 1);
      return false;
    case PatternNode::Kind::kSeq: {
      std::function<bool(size_t, size_t)> step = [&](size_t idx, size_t p) -> bool {
        if (idx == node.children.size()) return cont(p);
        return MatchNode(*node.children[idx], s, p,
                         [&](size_t np) { return step(idx + 1, np); }, depth + 1);
      };
      return step(0, pos);
    }
    case PatternNode::Kind::kAlt:
      for (const auto& child : node.children) {
        if (MatchNode(*child, s, pos, cont, depth + 1)) return true;
      }
      return false;
    case PatternNode::Kind::kStar: {
      // Zero or more repetitions; bounded by remaining length.
      std::function<bool(size_t)> rep = [&](size_t p) -> bool {
        if (cont(p)) return true;
        return MatchNode(*node.children[0], s, p,
                         [&](size_t np) { return np > p && rep(np); },
                         depth + 1);
      };
      return rep(pos);
    }
  }
  return false;
}

bool OracleContains(const Pattern& pat, const std::string& s) {
  for (size_t start = 0; start <= s.size(); ++start) {
    if (MatchNode(pat.root(), s, start, [](size_t) { return true; })) {
      return true;
    }
  }
  return false;
}

bool OracleExact(const Pattern& pat, const std::string& s) {
  return MatchNode(pat.root(), s, 0, [&](size_t p) { return p == s.size(); });
}

class DfaOracle : public ::testing::TestWithParam<uint64_t> {};

std::string RandomPattern(Rng* rng) {
  static const std::vector<std::string> atoms = {
      "a", "b", "c", "1", "\\d", "\\x", "(a|b)", "(1|2|3)", "(\\x)*", "(ab|c)"};
  size_t n = static_cast<size_t>(rng->UniformInt(1, 4));
  std::string p;
  for (size_t i = 0; i < n; ++i) p += rng->Choice(atoms);
  return p;
}

std::string RandomInput(Rng* rng) {
  static const std::string alphabet = "abc123 xy";
  size_t n = static_cast<size_t>(rng->UniformInt(0, 8));
  std::string s;
  for (size_t i = 0; i < n; ++i) {
    s.push_back(alphabet[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(alphabet.size()) - 1))]);
  }
  return s;
}

TEST_P(DfaOracle, ContainsAgrees) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    std::string ptext = RandomPattern(&rng);
    auto pat = Pattern::Parse(ptext);
    ASSERT_TRUE(pat.ok()) << ptext;
    auto dfa = Dfa::Compile(*pat, MatchMode::kContains);
    ASSERT_TRUE(dfa.ok()) << ptext;
    for (int si = 0; si < 30; ++si) {
      std::string input = RandomInput(&rng);
      EXPECT_EQ(dfa->Matches(input), OracleContains(*pat, input))
          << "pattern '" << ptext << "' input '" << input << "'";
    }
  }
}

TEST_P(DfaOracle, ExactAgrees) {
  Rng rng(GetParam() * 131 + 17);
  for (int trial = 0; trial < 40; ++trial) {
    std::string ptext = RandomPattern(&rng);
    auto pat = Pattern::Parse(ptext);
    ASSERT_TRUE(pat.ok()) << ptext;
    auto dfa = Dfa::Compile(*pat, MatchMode::kExact);
    ASSERT_TRUE(dfa.ok()) << ptext;
    for (int si = 0; si < 30; ++si) {
      std::string input = RandomInput(&rng);
      EXPECT_EQ(dfa->Matches(input), OracleExact(*pat, input))
          << "pattern '" << ptext << "' input '" << input << "'";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfaOracle, ::testing::Range<uint64_t>(0, 6));

}  // namespace
}  // namespace staccato
