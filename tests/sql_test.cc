#include <gtest/gtest.h>

#include "rdbms/sql.h"

namespace staccato::rdbms {
namespace {

TEST(SqlTest, ParsesPaperQuery) {
  auto stmt = ParseSelect(
      "SELECT DocID, Loss FROM Claims "
      "WHERE Year = 2010 AND DocData LIKE '%Ford%';");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->select_columns,
            (std::vector<std::string>{"DocID", "Loss"}));
  EXPECT_EQ(stmt->table, "Claims");
  ASSERT_EQ(stmt->equalities.size(), 1u);
  EXPECT_EQ(stmt->equalities[0].column, "Year");
  EXPECT_EQ(stmt->equalities[0].value, "2010");
  ASSERT_TRUE(stmt->like.has_value());
  EXPECT_EQ(stmt->like->column, "DocData");
  EXPECT_EQ(stmt->like->pattern, "Ford");
  EXPECT_FALSE(stmt->like->anchored_left);
  EXPECT_FALSE(stmt->like->anchored_right);
}

TEST(SqlTest, SelectStar) {
  auto stmt = ParseSelect("select * from T where D like '%x%'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select_columns, (std::vector<std::string>{"*"}));
  EXPECT_EQ(stmt->table, "T");
}

TEST(SqlTest, CaseInsensitiveKeywords) {
  auto stmt = ParseSelect("SeLeCt a FrOm t WhErE b LiKe '%p%'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select_columns[0], "a");
}

TEST(SqlTest, AnchoredLike) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE b LIKE 'Ford%'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->like->anchored_left);
  EXPECT_FALSE(stmt->like->anchored_right);
  EXPECT_EQ(stmt->like->pattern, "Ford");
}

TEST(SqlTest, NoWhereClause) {
  auto stmt = ParseSelect("SELECT a FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(stmt->like.has_value());
  EXPECT_TRUE(stmt->equalities.empty());
}

TEST(SqlTest, MultipleEqualities) {
  auto stmt = ParseSelect(
      "SELECT a FROM t WHERE x = 1 AND y = 'two' AND d LIKE '%p%'");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->equalities.size(), 2u);
  EXPECT_EQ(stmt->equalities[1].value, "two");
  // The parser records which literals were quoted strings; the planner
  // refuses to coerce quoted literals to numeric columns.
  EXPECT_FALSE(stmt->equalities[0].quoted);
  EXPECT_TRUE(stmt->equalities[1].quoted);
}

TEST(SqlTest, LimitClause) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE d LIKE '%x%' LIMIT 5;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_TRUE(stmt->limit.has_value());
  EXPECT_EQ(*stmt->limit, 5u);

  auto no_limit = ParseSelect("SELECT a FROM t WHERE d LIKE '%x%'");
  ASSERT_TRUE(no_limit.ok());
  EXPECT_FALSE(no_limit->limit.has_value());

  // LIMIT without a WHERE clause, and keyword case-insensitivity.
  auto bare = ParseSelect("SELECT a FROM t limit 2");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(*bare->limit, 2u);

  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT '5'").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT 5 5").ok());
  // Overflow is rejected, not silently clamped.
  EXPECT_FALSE(
      ParseSelect("SELECT a FROM t LIMIT 99999999999999999999999").ok());
}

TEST(SqlTest, Rejections) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a WHERE b = 1").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE b LIKE missing_quotes").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE b LIKE '%'").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE b LIKE '%x%' extra").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE b ~ 'x'").ok());
  EXPECT_FALSE(
      ParseSelect("SELECT a FROM t WHERE b LIKE '%x%' AND c LIKE '%y%'").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE b LIKE 'unterminated").ok());
}

}  // namespace
}  // namespace staccato::rdbms
