// Projection (Section 4): given a posting's start location and the length
// of the query term, fetch only the small portion of the SFA that can
// contain the match — the descendants reachable within `u` edges of the
// start (a breadth-first overestimate, as in the paper).
#pragma once

#include <vector>

#include "automata/dfa.h"
#include "indexing/postings.h"
#include "sfa/sfa.h"

namespace staccato {

/// Nodes reachable from `from` by directed paths of at most `max_edges`
/// edges (inclusive of `from`).
std::vector<NodeId> ProjectNodes(const Sfa& sfa, NodeId from, size_t max_edges);

/// Evaluates a kContains query DFA over just the projected region, starting
/// with unit mass at `from`. Returns the conditional probability that the
/// pattern matches within the region given that a path reaches `from` —
/// an (over)estimate of the term's contribution, consistent with the
/// paper's use of projection as an I/O optimization.
double EvalProjected(const Sfa& sfa, const Dfa& dfa, NodeId from,
                     size_t max_edges);

/// Bytes of SFA data covered by the projection (labels + metadata of edges
/// inside the region), for the I/O accounting in the Figure-9 bench.
size_t ProjectionBytes(const Sfa& sfa, NodeId from, size_t max_edges);

}  // namespace staccato
