// Posting representation for the dictionary-based inverted index
// (Section 4). A posting records where a dictionary term *starts* inside
// an SFA: the edge, the string (path alternative) on that edge, and the
// character offset within that string.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "automata/trie.h"
#include "metrics/metrics.h"
#include "sfa/sfa.h"

namespace staccato {

/// \brief Start location of a term inside one SFA.
struct Posting {
  EdgeId edge = 0;
  uint32_t path = 0;    ///< index of the string on the edge
  uint32_t offset = 0;  ///< character offset within that string

  bool operator==(const Posting& o) const {
    return edge == o.edge && path == o.path && offset == o.offset;
  }
  bool operator<(const Posting& o) const {
    if (edge != o.edge) return edge < o.edge;
    if (path != o.path) return path < o.path;
    return offset < o.offset;
  }
};

/// Postings for one SFA, grouped by dictionary term.
using PostingMap = std::map<TermId, std::vector<Posting>>;

/// Packs a posting into a 64-bit payload for B+-tree storage:
/// [edge:24][path:16][offset:24].
uint64_t PackPosting(const Posting& p);
Posting UnpackPosting(uint64_t v);

/// \brief Plan-consumable result of an inverted-index probe: the candidate
/// documents for one anchor term, each with the packed postings recording
/// where the term starts inside that document's SFA. Produced by the
/// CandidateGen operator and consumed by the Fetch/Eval stages (projection
/// needs the posting start locations).
struct CandidateSet {
  std::string anchor;  ///< the dictionary term that was probed
  std::map<DocId, std::vector<uint64_t>> postings;
  size_t total_postings = 0;

  /// Distinct candidate documents (what the Eval stage actually pays for).
  size_t NumDocs() const { return postings.size(); }
};

/// \brief Per-term index statistics, maintained at index-construction time
/// and consumed by the cost-based planner: how many postings a term has and
/// how many distinct documents they fall in. Selectivity estimation from
/// posting lengths needs no I/O at prepare time.
struct TermStats {
  size_t postings = 0;  ///< total start locations recorded for the term
  size_t docs = 0;      ///< distinct documents containing those postings
};

/// Term -> TermStats for every indexed dictionary term.
using TermStatsMap = std::unordered_map<std::string, TermStats>;

}  // namespace staccato
