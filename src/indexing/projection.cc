#include "indexing/projection.h"

#include <algorithm>
#include <deque>

namespace staccato {

std::vector<NodeId> ProjectNodes(const Sfa& sfa, NodeId from, size_t max_edges) {
  std::vector<uint32_t> depth(sfa.NumNodes(), UINT32_MAX);
  std::deque<NodeId> q{from};
  depth[from] = 0;
  std::vector<NodeId> out{from};
  while (!q.empty()) {
    NodeId n = q.front();
    q.pop_front();
    if (depth[n] >= max_edges) continue;
    for (EdgeId eid : sfa.OutEdges(n)) {
      NodeId t = sfa.edge(eid).to;
      if (depth[t] == UINT32_MAX) {
        depth[t] = depth[n] + 1;
        out.push_back(t);
        q.push_back(t);
      } else {
        depth[t] = std::min(depth[t], depth[n] + 1);
      }
    }
  }
  return out;
}

double EvalProjected(const Sfa& sfa, const Dfa& dfa, NodeId from,
                     size_t max_edges) {
  std::vector<NodeId> region = ProjectNodes(sfa, from, max_edges);
  std::vector<bool> in_region(sfa.NumNodes(), false);
  for (NodeId n : region) in_region[n] = true;

  const int q = dfa.NumStates();
  std::vector<std::vector<double>> mass(
      sfa.NumNodes(), std::vector<double>(static_cast<size_t>(q), 0.0));
  mass[from][dfa.start()] = 1.0;
  double accepted = 0.0;
  for (NodeId n : sfa.TopologicalOrder()) {
    if (!in_region[n]) continue;
    bool exits_region = true;
    for (EdgeId eid : sfa.OutEdges(n)) {
      if (in_region[sfa.edge(eid).to]) exits_region = false;
    }
    if (exits_region || sfa.OutEdges(n).empty()) {
      // Region boundary: bank whatever mass already reached an accept state
      // (accept states of a kContains DFA are absorbing).
      for (int s = 0; s < q; ++s) {
        if (dfa.IsAccept(s)) accepted += mass[n][s];
      }
      continue;
    }
    for (EdgeId eid : sfa.OutEdges(n)) {
      const Edge& e = sfa.edge(eid);
      if (!in_region[e.to]) {
        // Mass leaving the region: bank its accepted share.
        for (int s = 0; s < q; ++s) {
          if (dfa.IsAccept(s)) {
            double p = 0.0;
            for (const Transition& t : e.transitions) p += t.prob;
            accepted += mass[n][s] * p;
          }
        }
        continue;
      }
      for (const Transition& t : e.transitions) {
        // Step the state mass through the label characters.
        std::vector<double> cur(static_cast<size_t>(q), 0.0);
        for (int s = 0; s < q; ++s) cur[s] = mass[n][s] * t.prob;
        for (char c : t.label) {
          std::vector<double> next(static_cast<size_t>(q), 0.0);
          for (int s = 0; s < q; ++s) {
            if (cur[s] == 0.0) continue;
            DfaState d = dfa.Next(s, c);
            if (d != kDfaDead) next[d] += cur[s];
          }
          cur.swap(next);
        }
        for (int s = 0; s < q; ++s) mass[e.to][s] += cur[s];
      }
    }
  }
  return std::min(accepted, 1.0);
}

size_t ProjectionBytes(const Sfa& sfa, NodeId from, size_t max_edges) {
  std::vector<NodeId> region = ProjectNodes(sfa, from, max_edges);
  std::vector<bool> in_region(sfa.NumNodes(), false);
  for (NodeId n : region) in_region[n] = true;
  size_t bytes = 0;
  for (const Edge& e : sfa.edges()) {
    if (!in_region[e.from] || !in_region[e.to]) continue;
    for (const Transition& t : e.transitions) bytes += t.label.size() + 16;
  }
  return bytes;
}

}  // namespace staccato
