// Inverted index construction over SFAs (Section 4, Algorithms 3 & 4).
//
// The dictionary of terms is compiled to a prefix-trie automaton; a dynamic
// program then walks the SFA's edges in topological order. Terms may
// straddle multiple edges, so partially-matched trie states are carried
// across edges as "augmented states" — pairs of (trie state, start
// posting) — exactly as in Algorithm 3/4. Whenever the trie reaches a
// final state, the start posting is emitted for that term.
#pragma once

#include "automata/trie.h"
#include "indexing/postings.h"
#include "sfa/sfa.h"
#include "util/result.h"

namespace staccato {

/// \brief Index construction statistics (Figures 5 & 19).
struct IndexBuildStats {
  size_t postings = 0;         ///< total postings emitted
  size_t terms_matched = 0;    ///< distinct dictionary terms found
  size_t aug_states_peak = 0;  ///< max augmented states alive on one edge
};

/// Runs Algorithms 3 & 4: all start locations of dictionary terms in `sfa`.
/// Postings per term are deduplicated and sorted.
Result<PostingMap> BuildPostings(const Sfa& sfa, const DictionaryTrie& dict,
                                 IndexBuildStats* stats = nullptr);

/// The Figure-5 measurement: the number of postings a *direct* (dictionary-
/// free) index over all represented strings would contain — i.e. one
/// posting per word token per emitted string. Grows as k^m; returned as a
/// double because it overflows 64 bits quickly (the paper hits the same
/// overflow at m = 60, k = 50).
double EstimateDirectIndexPostings(const Sfa& sfa);

}  // namespace staccato
