#include "indexing/index_builder.h"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace staccato {

uint64_t PackPosting(const Posting& p) {
  return (static_cast<uint64_t>(p.edge & 0xFFFFFF) << 40) |
         (static_cast<uint64_t>(p.path & 0xFFFF) << 24) |
         static_cast<uint64_t>(p.offset & 0xFFFFFF);
}

Posting UnpackPosting(uint64_t v) {
  Posting p;
  p.edge = static_cast<EdgeId>((v >> 40) & 0xFFFFFF);
  p.path = static_cast<uint32_t>((v >> 24) & 0xFFFF);
  p.offset = static_cast<uint32_t>(v & 0xFFFFFF);
  return p;
}

namespace {

// Augmented state set: trie state -> start postings alive in that state.
using AugStates = std::unordered_map<int32_t, std::set<Posting>>;

// RunDFA (Algorithm 4) over one edge string: advances incoming augmented
// states and spawns fresh starts at every offset.
void RunString(const DictionaryTrie& dict, EdgeId edge, uint32_t path,
               const std::string& s, const AugStates& incoming,
               AugStates* outgoing, PostingMap* index) {
  // (1) Continue the partial matches carried in from parent edges.
  for (const auto& [state, starts] : incoming) {
    int32_t cur = state;
    bool alive = true;
    for (char c : s) {
      cur = dict.Step(cur, c);
      if (cur == DictionaryTrie::kDead) {
        alive = false;
        break;
      }
      TermId term = dict.TermAt(cur);
      if (term != kInvalidTerm) {
        auto& vec = (*index)[term];
        vec.insert(vec.end(), starts.begin(), starts.end());
      }
    }
    if (alive && cur != dict.root()) {
      auto& dst = (*outgoing)[cur];
      dst.insert(starts.begin(), starts.end());
    }
  }
  // (2) Fresh starts at every offset of this string.
  // active: (trie state, start offset) pairs — the SO set of Algorithm 4.
  std::vector<std::pair<int32_t, uint32_t>> active;
  for (uint32_t j = 0; j < s.size(); ++j) {
    active.emplace_back(dict.root(), j);
    size_t w = 0;
    for (auto& [state, start] : active) {
      int32_t nxt = dict.Step(state, s[j]);
      if (nxt == DictionaryTrie::kDead) continue;
      TermId term = dict.TermAt(nxt);
      if (term != kInvalidTerm) {
        (*index)[term].push_back(Posting{edge, path, start});
      }
      active[w++] = {nxt, start};
    }
    active.resize(w);
  }
  for (auto& [state, start] : active) {
    if (state != dict.root()) {
      (*outgoing)[state].insert(Posting{edge, path, start});
    }
  }
}

}  // namespace

Result<PostingMap> BuildPostings(const Sfa& sfa, const DictionaryTrie& dict,
                                 IndexBuildStats* stats) {
  PostingMap index;
  IndexBuildStats local;

  // Augmented states at the *end* of each edge (Algorithm 3's AugSts_e).
  std::vector<AugStates> aug(sfa.NumEdges());
  // Process edges so all parent edges (edges into e.from) come first:
  // order by the topological index of the source node.
  std::vector<EdgeId> order(sfa.NumEdges());
  for (EdgeId e = 0; e < sfa.NumEdges(); ++e) order[e] = e;
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return sfa.TopoIndex()[sfa.edge(a).from] < sfa.TopoIndex()[sfa.edge(b).from];
  });

  for (EdgeId eid : order) {
    const Edge& e = sfa.edge(eid);
    // Union the augmented states of all parent edges.
    AugStates incoming;
    for (EdgeId pe : sfa.InEdges(e.from)) {
      for (const auto& [state, starts] : aug[pe]) {
        incoming[state].insert(starts.begin(), starts.end());
      }
    }
    AugStates outgoing;
    for (uint32_t pi = 0; pi < e.transitions.size(); ++pi) {
      RunString(dict, eid, pi, e.transitions[pi].label, incoming, &outgoing,
                &index);
    }
    size_t alive = 0;
    for (const auto& [state, starts] : outgoing) alive += starts.size();
    local.aug_states_peak = std::max(local.aug_states_peak, alive);
    aug[eid] = std::move(outgoing);
  }

  // Deduplicate and sort postings per term.
  for (auto& [term, vec] : index) {
    std::sort(vec.begin(), vec.end());
    vec.erase(std::unique(vec.begin(), vec.end()), vec.end());
    local.postings += vec.size();
  }
  local.terms_matched = index.size();
  if (stats != nullptr) *stats = local;
  return index;
}

double EstimateDirectIndexPostings(const Sfa& sfa) {
  // Number of emitted strings (paths weighted by alternatives per edge) and
  // the expected token count per string, via two DPs. A direct index posts
  // every word token of every represented string, so the total is
  // (#strings) × (average tokens per string).
  std::vector<double> paths(sfa.NumNodes(), 0.0);
  std::vector<double> chars(sfa.NumNodes(), 0.0);  // Σ over paths of length
  paths[sfa.start()] = 1.0;
  for (NodeId n : sfa.TopologicalOrder()) {
    if (paths[n] == 0.0) continue;
    for (EdgeId eid : sfa.OutEdges(n)) {
      const Edge& e = sfa.edge(eid);
      double alt = static_cast<double>(e.transitions.size());
      double len = 0;
      for (const Transition& t : e.transitions) {
        len += static_cast<double>(t.label.size());
      }
      paths[e.to] += paths[n] * alt;
      chars[e.to] += chars[n] * alt + paths[n] * len;
    }
  }
  double num_strings = paths[sfa.final()];
  if (num_strings == 0.0) return 0.0;
  double avg_len = chars[sfa.final()] / num_strings;
  // Average English token length ≈ 6 characters including the separator.
  double tokens_per_string = std::max(1.0, avg_len / 6.0);
  return num_strings * tokens_per_string;
}

}  // namespace staccato
