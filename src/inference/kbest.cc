#include "inference/kbest.h"

#include <algorithm>

namespace staccato {

namespace {

bool ScoredLess(const ScoredString& a, const ScoredString& b) {
  if (a.prob != b.prob) return a.prob > b.prob;
  return a.str < b.str;
}

// Keeps the top-k of `cand` in-place (sorted by descending probability).
void PruneToK(std::vector<ScoredString>* cand, size_t k) {
  if (cand->size() > k) {
    std::partial_sort(cand->begin(), cand->begin() + static_cast<long>(k),
                      cand->end(), ScoredLess);
    cand->resize(k);
  } else {
    std::sort(cand->begin(), cand->end(), ScoredLess);
  }
}

}  // namespace

std::vector<ScoredString> KBestStrings(const Sfa& sfa, size_t k) {
  if (k == 0 || sfa.NumNodes() == 0) return {};
  std::vector<std::vector<ScoredString>> best(sfa.NumNodes());
  best[sfa.start()].push_back({"", 1.0});
  for (NodeId n : sfa.TopologicalOrder()) {
    if (best[n].empty()) continue;
    // All predecessors of n are settled (topological order), so pruning to
    // the k best prefixes here is exact: a dominated prefix cannot be part
    // of a top-k full path, because the unique-path property guarantees the
    // k dominating prefixes extend to k distinct dominating strings.
    PruneToK(&best[n], k);
    for (EdgeId eid : sfa.OutEdges(n)) {
      const Edge& e = sfa.edge(eid);
      auto& target = best[e.to];
      // Only the top-k transitions of an edge can contribute to a k-best
      // list downstream; transitions are already sorted by probability.
      size_t t_limit = std::min(e.transitions.size(), k);
      for (size_t ti = 0; ti < t_limit; ++ti) {
        const Transition& t = e.transitions[ti];
        for (const ScoredString& s : best[n]) {
          target.push_back({s.str + t.label, s.prob * t.prob});
        }
      }
    }
    // Bound intermediate memory; final pruning happens when the target node
    // is expanded.
    for (EdgeId eid : sfa.OutEdges(n)) {
      auto& target = best[sfa.edge(eid).to];
      if (target.size() > 8 * k) PruneToK(&target, k);
    }
    if (n != sfa.final()) {
      best[n].clear();
      best[n].shrink_to_fit();
    }
  }
  auto& result = best[sfa.final()];
  PruneToK(&result, k);
  return std::move(result);
}

Result<ScoredString> MapString(const Sfa& sfa) {
  auto top = KBestStrings(sfa, 1);
  if (top.empty()) return Status::InvalidArgument("SFA emits no strings");
  return top[0];
}

Result<std::vector<ScoredString>> KBestStringsByEnumeration(const Sfa& sfa,
                                                            size_t k,
                                                            size_t max_paths) {
  auto all = sfa.EnumerateStrings(max_paths);
  if (!all.ok()) return all.status();
  std::vector<ScoredString> scored;
  scored.reserve(all->size());
  for (auto& [s, p] : *all) scored.push_back({std::move(s), p});
  PruneToK(&scored, k);
  return scored;
}

}  // namespace staccato
