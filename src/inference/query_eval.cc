#include "inference/query_eval.h"

#include <algorithm>
#include <string_view>

namespace staccato {

namespace {

// Steps a dense DFA-state mass vector through one label string.
// in/out have dfa.NumStates() entries; `scratch` and `next` are reused
// across calls (the per-transition `next` vector used to be constructed
// here on every call — the dominant allocation of the whole Eval stage).
void StepLabel(const Dfa& dfa, const std::string& label,
               const std::vector<double>& in, std::vector<double>* out,
               std::vector<double>* scratch, std::vector<double>* next_buf) {
  const int q = dfa.NumStates();
  std::vector<double>* cur = scratch;
  *cur = in;
  std::vector<double>& next = *next_buf;
  for (char c : label) {
    std::fill(next.begin(), next.end(), 0.0);
    for (int s = 0; s < q; ++s) {
      double m = (*cur)[s];
      if (m == 0.0) continue;
      DfaState t = dfa.Next(s, c);
      if (t == kDfaDead) continue;  // mass of strings the DFA rejects is dropped
      next[t] += m;
    }
    std::swap(*cur, next);
  }
  for (int s = 0; s < q; ++s) (*out)[s] += (*cur)[s];
}

// Slack on the pruning comparison: `live` is an exact bound only up to
// floating-point accumulation error, which is *absolute* (operands have
// magnitude up to 1.0, so error ~1e-12 even over the longest documents)
// — a purely relative slack would be tighter than the error whenever the
// threshold itself is tiny. The cutoff therefore backs off by both a
// relative and an absolute margin, each orders of magnitude above any
// reachable error, so a candidate whose true probability ties or beats
// the k-th best answer can never be pruned. The lost pruning power
// (candidates within ~1e-9 of the cutoff) is negligible, and a threshold
// below the absolute slack simply disables pruning (cutoff <= 0).
constexpr double kBoundSlackRel = 1e-9;
constexpr double kBoundSlackAbs = 1e-9;

/// The early-terminating DFA×SFA dynamic program, templated over the graph
/// representation so the Sfa-object and SfaView entry points are one
/// kernel — and therefore bit-identical to each other and to EvalSfaQuery
/// (same topological order, same edge/transition order, same arithmetic;
/// the live-mass bookkeeping never touches the mass arrays).
///
/// Invariant behind the bound: `live` = Σ mass pending at unprocessed
/// non-final nodes + accepting mass already at the final node. Mass only
/// ever leaves that sum — dropped at dead DFA states, dropped when it
/// reaches the final node in a non-accepting state (the final node has no
/// out-edges, so such mass can never be accepted), or shrunk by node
/// probability sums below 1 (approximation leak). Provided no node's
/// outgoing probabilities sum above 1 (G::MassBoundSafe), pending mass can
/// at best funnel into accepting states unshrunk, so `live` bounds the
/// final probability from above and only tightens as the DP advances.
template <typename G>
double EvalBoundedImpl(const G& g, const Dfa& dfa, double threshold,
                       EvalScratch* scratch, EvalBound* bound) {
  const size_t q = static_cast<size_t>(dfa.NumStates());
  if (bound != nullptr) {
    bound->pruned = false;
    bound->steps = 0;
    bound->steps_total = g.TotalLabelChars() * q;
  }
  if (g.NumNodes() == 0) return 0.0;

  std::vector<double>& mass = scratch->mass;
  mass.assign(g.NumNodes() * q, 0.0);
  std::vector<double>& cur = scratch->cur;
  std::vector<double>& next = scratch->next;
  cur.resize(q);
  next.resize(q);

  const NodeId fin = g.final();
  mass[static_cast<size_t>(g.start()) * q + static_cast<size_t>(dfa.start())] =
      1.0;
  const bool can_prune = threshold > 0.0 && g.MassBoundSafe();
  const double cutoff = threshold * (1.0 - kBoundSlackRel) - kBoundSlackAbs;
  double live = 1.0;
  uint64_t steps = 0;
  bool pruned = false;

  for (NodeId n : g.Topo()) {
    if (n == fin) continue;  // no out-edges; its mass is scored at the end
    const double* in = &mass[static_cast<size_t>(n) * q];
    double sum_in = 0.0;
    for (size_t s = 0; s < q; ++s) sum_in += in[s];
    if (sum_in == 0.0) continue;  // masses are non-negative: all-zero node
    live -= sum_in;
    g.ForEachOutTransition(n, [&](NodeId to, std::string_view label,
                                  double prob) {
      for (size_t s = 0; s < q; ++s) cur[s] = in[s] * prob;
      for (char c : label) {
        std::fill(next.begin(), next.end(), 0.0);
        for (size_t s = 0; s < q; ++s) {
          double m = cur[s];
          if (m == 0.0) continue;
          DfaState t = dfa.Next(static_cast<DfaState>(s), c);
          if (t == kDfaDead) continue;  // rejected mass is dropped
          next[static_cast<size_t>(t)] += m;
        }
        cur.swap(next);
      }
      steps += static_cast<uint64_t>(label.size()) * q;
      double* out = &mass[static_cast<size_t>(to) * q];
      if (to == fin) {
        // Only accepting arrivals stay alive: the final node has no
        // out-edges, so non-accepting mass here is already dead.
        double accepted = 0.0;
        for (size_t s = 0; s < q; ++s) {
          out[s] += cur[s];
          if (dfa.IsAccept(static_cast<DfaState>(s))) accepted += cur[s];
        }
        live += accepted;
      } else {
        double survived = 0.0;
        for (size_t s = 0; s < q; ++s) {
          out[s] += cur[s];
          survived += cur[s];
        }
        live += survived;
      }
    });
    // Check only at node boundaries: mid-node, the not-yet-propagated
    // share of sum_in is missing from `live`, which would over-prune.
    if (can_prune && live < cutoff) {
      pruned = true;
      break;
    }
  }

  if (bound != nullptr) {
    bound->steps = steps;
    bound->pruned = pruned;
  }
  if (pruned) return 0.0;
  double p = 0.0;
  const double* fin_mass = &mass[static_cast<size_t>(fin) * q];
  for (size_t s = 0; s < q; ++s) {
    if (dfa.IsAccept(static_cast<DfaState>(s))) p += fin_mass[s];
  }
  // Guard against accumulated floating point drift above 1.
  return p > 1.0 ? 1.0 : p;
}

/// Graph adapter over the deserialized Sfa object graph.
struct SfaGraph {
  const Sfa& sfa;
  bool mass_safe;
  uint64_t label_chars;

  size_t NumNodes() const { return sfa.NumNodes(); }
  NodeId start() const { return sfa.start(); }
  NodeId final() const { return sfa.final(); }
  const std::vector<NodeId>& Topo() const { return sfa.TopologicalOrder(); }
  bool MassBoundSafe() const { return mass_safe; }
  uint64_t TotalLabelChars() const { return label_chars; }

  template <typename F>
  void ForEachOutTransition(NodeId n, F&& f) const {
    for (EdgeId eid : sfa.OutEdges(n)) {
      const Edge& e = sfa.edge(eid);
      for (const Transition& t : e.transitions) {
        f(e.to, std::string_view(t.label), t.prob);
      }
    }
  }
};

/// Graph adapter over the flat blob view.
struct ViewGraph {
  const SfaView& view;

  size_t NumNodes() const { return view.NumNodes(); }
  NodeId start() const { return view.start(); }
  NodeId final() const { return view.final(); }
  const std::vector<NodeId>& Topo() const { return view.TopologicalOrder(); }
  bool MassBoundSafe() const { return view.MassBoundSafe(); }
  uint64_t TotalLabelChars() const { return view.TotalLabelChars(); }

  template <typename F>
  void ForEachOutTransition(NodeId n, F&& f) const {
    for (const EdgeId* it = view.out_begin(n); it != view.out_end(n); ++it) {
      const ViewEdge& e = view.edge(*it);
      for (uint32_t t = 0; t < e.num_transitions; ++t) {
        const ViewTransition& tr = view.transition(e.first_transition + t);
        f(e.to, tr.label, tr.prob);
      }
    }
  }
};

}  // namespace

double EvalSfaQuery(const Sfa& sfa, const Dfa& dfa) {
  if (sfa.NumNodes() == 0) return 0.0;
  const int q = dfa.NumStates();
  // mass[n][s]: probability mass of prefixes reaching SFA node n with the
  // DFA in state s. A kContains DFA has absorbing accept states, so mass in
  // accepting states at the final node is exactly Pr[q].
  std::vector<std::vector<double>> mass(
      sfa.NumNodes(), std::vector<double>(static_cast<size_t>(q), 0.0));
  mass[sfa.start()][dfa.start()] = 1.0;
  std::vector<double> scratch(static_cast<size_t>(q), 0.0);
  std::vector<double> next(static_cast<size_t>(q), 0.0);
  std::vector<double> scaled(static_cast<size_t>(q), 0.0);
  for (NodeId n : sfa.TopologicalOrder()) {
    const auto& in = mass[n];
    bool live = false;
    for (double m : in) {
      if (m != 0.0) {
        live = true;
        break;
      }
    }
    if (!live) continue;
    for (EdgeId eid : sfa.OutEdges(n)) {
      const Edge& e = sfa.edge(eid);
      for (const Transition& t : e.transitions) {
        for (int s = 0; s < q; ++s) scaled[s] = in[s] * t.prob;
        StepLabel(dfa, t.label, scaled, &mass[e.to], &scratch, &next);
      }
    }
    if (n != sfa.final()) {
      mass[n].clear();
      mass[n].shrink_to_fit();
    }
  }
  double p = 0.0;
  for (int s = 0; s < q; ++s) {
    if (dfa.IsAccept(s)) p += mass[sfa.final()][s];
  }
  // Guard against accumulated floating point drift above 1.
  return p > 1.0 ? 1.0 : p;
}

SfaEvalInfo ComputeSfaEvalInfo(const Sfa& sfa) {
  SfaEvalInfo info;
  for (const Edge& e : sfa.edges()) {
    for (const Transition& t : e.transitions) {
      info.label_chars += t.label.size();
    }
  }
  // The bound is only an upper bound when no node amplifies mass.
  info.mass_safe = true;
  for (NodeId n = 0; n < sfa.NumNodes() && info.mass_safe; ++n) {
    double sum = 0.0;
    for (EdgeId eid : sfa.OutEdges(n)) {
      for (const Transition& t : sfa.edge(eid).transitions) sum += t.prob;
    }
    if (sum > 1.0 + 1e-6) info.mass_safe = false;
  }
  return info;
}

double EvalSfaQueryBounded(const Sfa& sfa, const Dfa& dfa, double threshold,
                           const SfaEvalInfo& info, EvalScratch* scratch,
                           EvalBound* bound) {
  SfaGraph g{sfa, info.mass_safe, info.label_chars};
  EvalScratch local;
  return EvalBoundedImpl(g, dfa, threshold,
                         scratch != nullptr ? scratch : &local, bound);
}

double EvalSfaQueryBounded(const Sfa& sfa, const Dfa& dfa, double threshold,
                           EvalScratch* scratch, EvalBound* bound) {
  return EvalSfaQueryBounded(sfa, dfa, threshold, ComputeSfaEvalInfo(sfa),
                             scratch, bound);
}

double EvalSfaViewBounded(const SfaView& view, const Dfa& dfa,
                          double threshold, EvalScratch* scratch,
                          EvalBound* bound) {
  return EvalBoundedImpl(ViewGraph{view}, dfa, threshold, scratch, bound);
}

Result<double> EvalSerializedSfaBounded(const std::string& blob,
                                        const Dfa& dfa, double threshold,
                                        EvalScratch* scratch,
                                        EvalBound* bound) {
  SfaView view;
  STACCATO_RETURN_NOT_OK(view.Decode(blob, &scratch->arena));
  return EvalSfaViewBounded(view, dfa, threshold, scratch, bound);
}

double EvalStringsQuery(const std::vector<ScoredString>& strings,
                        const Dfa& dfa) {
  double p = 0.0;
  for (const ScoredString& s : strings) {
    if (dfa.Matches(s.str)) p += s.prob;
  }
  return p > 1.0 ? 1.0 : p;
}

double EvalSfaQueryMatrix(const Sfa& sfa, const Dfa& dfa) {
  if (sfa.NumNodes() == 0) return 0.0;
  const size_t q = static_cast<size_t>(dfa.NumStates());
  // M[n][i*q + j]: mass arriving at SFA node n having moved the DFA from
  // state i (at the SFA start) to state j.
  std::vector<std::vector<double>> node_mat(sfa.NumNodes());
  node_mat[sfa.start()].assign(q * q, 0.0);
  for (size_t i = 0; i < q; ++i) node_mat[sfa.start()][i * q + i] = 1.0;

  std::vector<double> edge_mat(q * q), tmp(q * q);
  for (NodeId n : sfa.TopologicalOrder()) {
    if (node_mat[n].empty()) continue;
    for (EdgeId eid : sfa.OutEdges(n)) {
      const Edge& e = sfa.edge(eid);
      // Edge matrix: Σ over transitions of prob × Π over label chars of the
      // (deterministic) per-character DFA step matrix.
      std::fill(edge_mat.begin(), edge_mat.end(), 0.0);
      for (const Transition& t : e.transitions) {
        std::fill(tmp.begin(), tmp.end(), 0.0);
        for (size_t i = 0; i < q; ++i) tmp[i * q + i] = t.prob;
        for (char c : t.label) {
          // Right-multiply tmp by the char's step matrix: column j of the
          // product collects columns whose state steps to j.
          std::vector<double> next(q * q, 0.0);
          for (size_t j = 0; j < q; ++j) {
            DfaState d = dfa.Next(static_cast<DfaState>(j), c);
            if (d == kDfaDead) continue;
            for (size_t i = 0; i < q; ++i) {
              next[i * q + static_cast<size_t>(d)] += tmp[i * q + j];
            }
          }
          tmp.swap(next);
        }
        for (size_t i = 0; i < q * q; ++i) edge_mat[i] += tmp[i];
      }
      // node_mat[to] += node_mat[n] × edge_mat  — the q³ step of Table 1.
      auto& dst = node_mat[e.to];
      if (dst.empty()) dst.assign(q * q, 0.0);
      const auto& src = node_mat[n];
      for (size_t i = 0; i < q; ++i) {
        for (size_t l = 0; l < q; ++l) {
          double v = src[i * q + l];
          if (v == 0.0) continue;
          for (size_t j = 0; j < q; ++j) {
            dst[i * q + j] += v * edge_mat[l * q + j];
          }
        }
      }
    }
    if (n != sfa.final()) {
      node_mat[n].clear();
      node_mat[n].shrink_to_fit();
    }
  }
  const auto& fin = node_mat[sfa.final()];
  if (fin.empty()) return 0.0;
  double p = 0.0;
  size_t s0 = static_cast<size_t>(dfa.start());
  for (size_t j = 0; j < q; ++j) {
    if (dfa.IsAccept(static_cast<DfaState>(j))) p += fin[s0 * q + j];
  }
  return p > 1.0 ? 1.0 : p;
}

uint64_t CountEvalWork(const Sfa& sfa, const Dfa& dfa) {
  uint64_t chars = 0;
  for (const Edge& e : sfa.edges()) {
    for (const Transition& t : e.transitions) chars += t.label.size();
  }
  return chars * static_cast<uint64_t>(dfa.NumStates());
}

Result<double> EvalSerializedSfa(const std::string& blob, const Dfa& dfa) {
  STACCATO_ASSIGN_OR_RETURN(Sfa sfa, Sfa::Deserialize(blob));
  return EvalSfaQuery(sfa, dfa);
}

}  // namespace staccato
