#include "inference/query_eval.h"

#include <algorithm>

namespace staccato {

namespace {

// Steps a dense DFA-state mass vector through one label string.
// in/out have dfa.NumStates() entries; `scratch` is reused across calls.
void StepLabel(const Dfa& dfa, const std::string& label,
               const std::vector<double>& in, std::vector<double>* out,
               std::vector<double>* scratch) {
  const int q = dfa.NumStates();
  std::vector<double>* cur = scratch;
  *cur = in;
  std::vector<double> next(static_cast<size_t>(q), 0.0);
  for (char c : label) {
    std::fill(next.begin(), next.end(), 0.0);
    for (int s = 0; s < q; ++s) {
      double m = (*cur)[s];
      if (m == 0.0) continue;
      DfaState t = dfa.Next(s, c);
      if (t == kDfaDead) continue;  // mass of strings the DFA rejects is dropped
      next[t] += m;
    }
    std::swap(*cur, next);
  }
  for (int s = 0; s < q; ++s) (*out)[s] += (*cur)[s];
}

}  // namespace

double EvalSfaQuery(const Sfa& sfa, const Dfa& dfa) {
  if (sfa.NumNodes() == 0) return 0.0;
  const int q = dfa.NumStates();
  // mass[n][s]: probability mass of prefixes reaching SFA node n with the
  // DFA in state s. A kContains DFA has absorbing accept states, so mass in
  // accepting states at the final node is exactly Pr[q].
  std::vector<std::vector<double>> mass(
      sfa.NumNodes(), std::vector<double>(static_cast<size_t>(q), 0.0));
  mass[sfa.start()][dfa.start()] = 1.0;
  std::vector<double> scratch(static_cast<size_t>(q), 0.0);
  std::vector<double> scaled(static_cast<size_t>(q), 0.0);
  for (NodeId n : sfa.TopologicalOrder()) {
    const auto& in = mass[n];
    bool live = false;
    for (double m : in) {
      if (m != 0.0) {
        live = true;
        break;
      }
    }
    if (!live) continue;
    for (EdgeId eid : sfa.OutEdges(n)) {
      const Edge& e = sfa.edge(eid);
      for (const Transition& t : e.transitions) {
        for (int s = 0; s < q; ++s) scaled[s] = in[s] * t.prob;
        StepLabel(dfa, t.label, scaled, &mass[e.to], &scratch);
      }
    }
    if (n != sfa.final()) {
      mass[n].clear();
      mass[n].shrink_to_fit();
    }
  }
  double p = 0.0;
  for (int s = 0; s < q; ++s) {
    if (dfa.IsAccept(s)) p += mass[sfa.final()][s];
  }
  // Guard against accumulated floating point drift above 1.
  return p > 1.0 ? 1.0 : p;
}

double EvalStringsQuery(const std::vector<ScoredString>& strings,
                        const Dfa& dfa) {
  double p = 0.0;
  for (const ScoredString& s : strings) {
    if (dfa.Matches(s.str)) p += s.prob;
  }
  return p > 1.0 ? 1.0 : p;
}

double EvalSfaQueryMatrix(const Sfa& sfa, const Dfa& dfa) {
  if (sfa.NumNodes() == 0) return 0.0;
  const size_t q = static_cast<size_t>(dfa.NumStates());
  // M[n][i*q + j]: mass arriving at SFA node n having moved the DFA from
  // state i (at the SFA start) to state j.
  std::vector<std::vector<double>> node_mat(sfa.NumNodes());
  node_mat[sfa.start()].assign(q * q, 0.0);
  for (size_t i = 0; i < q; ++i) node_mat[sfa.start()][i * q + i] = 1.0;

  std::vector<double> edge_mat(q * q), tmp(q * q);
  for (NodeId n : sfa.TopologicalOrder()) {
    if (node_mat[n].empty()) continue;
    for (EdgeId eid : sfa.OutEdges(n)) {
      const Edge& e = sfa.edge(eid);
      // Edge matrix: Σ over transitions of prob × Π over label chars of the
      // (deterministic) per-character DFA step matrix.
      std::fill(edge_mat.begin(), edge_mat.end(), 0.0);
      for (const Transition& t : e.transitions) {
        std::fill(tmp.begin(), tmp.end(), 0.0);
        for (size_t i = 0; i < q; ++i) tmp[i * q + i] = t.prob;
        for (char c : t.label) {
          // Right-multiply tmp by the char's step matrix: column j of the
          // product collects columns whose state steps to j.
          std::vector<double> next(q * q, 0.0);
          for (size_t j = 0; j < q; ++j) {
            DfaState d = dfa.Next(static_cast<DfaState>(j), c);
            if (d == kDfaDead) continue;
            for (size_t i = 0; i < q; ++i) {
              next[i * q + static_cast<size_t>(d)] += tmp[i * q + j];
            }
          }
          tmp.swap(next);
        }
        for (size_t i = 0; i < q * q; ++i) edge_mat[i] += tmp[i];
      }
      // node_mat[to] += node_mat[n] × edge_mat  — the q³ step of Table 1.
      auto& dst = node_mat[e.to];
      if (dst.empty()) dst.assign(q * q, 0.0);
      const auto& src = node_mat[n];
      for (size_t i = 0; i < q; ++i) {
        for (size_t l = 0; l < q; ++l) {
          double v = src[i * q + l];
          if (v == 0.0) continue;
          for (size_t j = 0; j < q; ++j) {
            dst[i * q + j] += v * edge_mat[l * q + j];
          }
        }
      }
    }
    if (n != sfa.final()) {
      node_mat[n].clear();
      node_mat[n].shrink_to_fit();
    }
  }
  const auto& fin = node_mat[sfa.final()];
  if (fin.empty()) return 0.0;
  double p = 0.0;
  size_t s0 = static_cast<size_t>(dfa.start());
  for (size_t j = 0; j < q; ++j) {
    if (dfa.IsAccept(static_cast<DfaState>(j))) p += fin[s0 * q + j];
  }
  return p > 1.0 ? 1.0 : p;
}

uint64_t CountEvalWork(const Sfa& sfa, const Dfa& dfa) {
  uint64_t chars = 0;
  for (const Edge& e : sfa.edges()) {
    for (const Transition& t : e.transitions) chars += t.label.size();
  }
  return chars * static_cast<uint64_t>(dfa.NumStates());
}

Result<double> EvalSerializedSfa(const std::string& blob, const Dfa& dfa) {
  STACCATO_ASSIGN_OR_RETURN(Sfa sfa, Sfa::Deserialize(blob));
  return EvalSfaQuery(sfa, dfa);
}

}  // namespace staccato
