// Probabilistic query evaluation: Pr[q] = Σ_x q(x)·Pr(x), the probability
// that a string drawn from the SFA's distribution satisfies the query DFA.
//
// The evaluator is the matrix-multiplication-style dynamic program of
// Ré et al. [45] specialized to DAG SFAs: propagate, in topological order,
// a per-node distribution over DFA states. Cost is linear in the SFA size
// and (at worst) quadratic-to-cubic in DFA states, matching Table 1.
//
// The same evaluator serves the FullSFA baseline and the Staccato chunked
// representation, because a chunk graph is itself a generalized SFA.
//
// Two flavours exist:
//
//  * EvalSfaQuery / EvalSerializedSfa — the reference kernel over the
//    deserialized Sfa object graph.
//  * The *bounded* kernels (EvalSfaQueryBounded, EvalSerializedSfaBounded)
//    — the executor's hot path. They additionally track an exact upper
//    bound on the final probability, `accepted_so_far + live_mass`: mass
//    only ever leaks to dead DFA states (and to non-accepting states at the
//    final node), so the bound is monotone non-increasing, and the DP can
//    abort the instant it falls below a caller-supplied threshold (the
//    running k-th best answer). A pruned candidate provably cannot enter
//    the top-k, which is what keeps ranked answers bit-identical for any
//    thread count and any candidate visit order. The serialized-blob
//    bounded kernel decodes through SfaView into a caller-owned EvalScratch
//    arena, so a warm worker evaluates candidates with zero heap
//    allocations.
#pragma once

#include <string>
#include <vector>

#include "automata/dfa.h"
#include "inference/kbest.h"
#include "sfa/sfa.h"
#include "util/result.h"

namespace staccato {

/// Probability that a string emitted by `sfa` is accepted by `dfa`.
/// With a kContains DFA this is Pr[document LIKE '%pat%'].
double EvalSfaQuery(const Sfa& sfa, const Dfa& dfa);

/// Query over an explicit string representation (the MAP / k-MAP storage):
/// sums the probability of stored strings accepted by the DFA (each stored
/// string is a disjoint probabilistic event).
double EvalStringsQuery(const std::vector<ScoredString>& strings, const Dfa& dfa);

/// Cheap structural statistic used by cost accounting in the benches:
/// number of (dfa-state × transition-character) steps EvalSfaQuery performs.
uint64_t CountEvalWork(const Sfa& sfa, const Dfa& dfa);

/// The per-candidate unit of the executor's Eval stage: deserializes one
/// stored SFA and scores it against the query DFA. The stage is
/// embarrassingly parallel, as the paper notes — the executor fans this
/// call out over the shared thread pool (util/parallel.h) with positional
/// gather, so ranked answers are bit-identical for any thread count.
Result<double> EvalSerializedSfa(const std::string& blob, const Dfa& dfa);

/// \brief How one bounded evaluation ended, for the executor's pruning
/// stats. `steps` counts (label-char × dfa-state) units, the same currency
/// as CountEvalWork, so steps_total - steps is the work an abort skipped.
struct EvalBound {
  bool pruned = false;        ///< aborted: upper bound fell below threshold
  uint64_t steps = 0;         ///< DP steps actually executed
  uint64_t steps_total = 0;   ///< steps a full evaluation would execute
};

/// \brief Reusable per-worker buffers for the bounded kernels: the SfaView
/// decode arena plus the flattened DP state. Every buffer grows to the
/// largest candidate seen and is then reused — a warm scratch makes
/// EvalSerializedSfaBounded allocation-free. One scratch serves one worker;
/// it is not synchronized.
struct EvalScratch {
  SfaViewArena arena;
  std::vector<double> mass;    ///< num_nodes × q, node-major
  std::vector<double> cur;     ///< q — StepLabel working vector
  std::vector<double> next;    ///< q — StepLabel swap partner
};

/// \brief Per-Sfa invariants of the bounded kernel — total label chars
/// (for steps accounting) and the mass-bound safety of the graph. Both
/// are O(transitions) sweeps, so callers that evaluate one Sfa many times
/// (the batch executor shares a deserialized transducer across every
/// query) compute them once and pass them in.
struct SfaEvalInfo {
  uint64_t label_chars = 0;
  /// No node's outgoing probabilities sum above 1 — the precondition for
  /// live-mass pruning (see EvalSfaQueryBounded).
  bool mass_safe = false;
};

SfaEvalInfo ComputeSfaEvalInfo(const Sfa& sfa);

/// EvalSfaQuery with early termination: aborts — returning 0 and setting
/// `bound->pruned` — as soon as the exact upper bound accepted + live_mass
/// drops below `threshold`. threshold <= 0 never prunes, and the result is
/// then bit-identical to EvalSfaQuery (the bound bookkeeping never touches
/// the mass arithmetic). Pruning engages only when the SFA is mass-bound
/// safe (no node's outgoing probabilities sum above 1 — true of every
/// engine-built SFA), because the bound is only an upper bound under that
/// invariant; otherwise the call silently degrades to a full evaluation.
/// `scratch` may be null (buffers are then local).
double EvalSfaQueryBounded(const Sfa& sfa, const Dfa& dfa, double threshold,
                           EvalScratch* scratch = nullptr,
                           EvalBound* bound = nullptr);

/// Same, with the per-Sfa invariants precomputed by the caller.
double EvalSfaQueryBounded(const Sfa& sfa, const Dfa& dfa, double threshold,
                           const SfaEvalInfo& info, EvalScratch* scratch,
                           EvalBound* bound = nullptr);

/// The bounded kernel over an already-decoded view. Bit-identical to
/// EvalSfaQuery on the blob's deserialized Sfa when it does not prune.
double EvalSfaViewBounded(const SfaView& view, const Dfa& dfa,
                          double threshold, EvalScratch* scratch,
                          EvalBound* bound = nullptr);

/// The executor's zero-allocation per-candidate unit: decodes `blob`
/// through SfaView into `scratch` and runs the bounded kernel. With a warm
/// scratch the whole call performs no heap allocation. Returns the same
/// value EvalSerializedSfa would (bit-identical) unless it prunes.
Result<double> EvalSerializedSfaBounded(const std::string& blob,
                                        const Dfa& dfa, double threshold,
                                        EvalScratch* scratch,
                                        EvalBound* bound = nullptr);

/// The literal matrix-multiplication algorithm of [45] as the paper costs
/// it in Table 1 (q³ work per node): each node accumulates a q×q matrix of
/// DFA-state-to-DFA-state mass transfer from the start node. Numerically
/// identical to EvalSfaQuery, which propagates a q-vector instead and is
/// the optimized variant this library uses by default; kept for paper
/// fidelity and exercised by the ablation micro-benchmarks.
double EvalSfaQueryMatrix(const Sfa& sfa, const Dfa& dfa);

}  // namespace staccato
