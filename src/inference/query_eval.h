// Probabilistic query evaluation: Pr[q] = Σ_x q(x)·Pr(x), the probability
// that a string drawn from the SFA's distribution satisfies the query DFA.
//
// The evaluator is the matrix-multiplication-style dynamic program of
// Ré et al. [45] specialized to DAG SFAs: propagate, in topological order,
// a per-node distribution over DFA states. Cost is linear in the SFA size
// and (at worst) quadratic-to-cubic in DFA states, matching Table 1.
//
// The same evaluator serves the FullSFA baseline and the Staccato chunked
// representation, because a chunk graph is itself a generalized SFA.
#pragma once

#include <string>
#include <vector>

#include "automata/dfa.h"
#include "inference/kbest.h"
#include "sfa/sfa.h"
#include "util/result.h"

namespace staccato {

/// Probability that a string emitted by `sfa` is accepted by `dfa`.
/// With a kContains DFA this is Pr[document LIKE '%pat%'].
double EvalSfaQuery(const Sfa& sfa, const Dfa& dfa);

/// Query over an explicit string representation (the MAP / k-MAP storage):
/// sums the probability of stored strings accepted by the DFA (each stored
/// string is a disjoint probabilistic event).
double EvalStringsQuery(const std::vector<ScoredString>& strings, const Dfa& dfa);

/// Cheap structural statistic used by cost accounting in the benches:
/// number of (dfa-state × transition-character) steps EvalSfaQuery performs.
uint64_t CountEvalWork(const Sfa& sfa, const Dfa& dfa);

/// The per-candidate unit of the executor's Eval stage: deserializes one
/// stored SFA and scores it against the query DFA. The stage is
/// embarrassingly parallel, as the paper notes — the executor fans this
/// call out over the shared thread pool (util/parallel.h) with positional
/// gather, so ranked answers are bit-identical for any thread count.
Result<double> EvalSerializedSfa(const std::string& blob, const Dfa& dfa);

/// The literal matrix-multiplication algorithm of [45] as the paper costs
/// it in Table 1 (q³ work per node): each node accumulates a q×q matrix of
/// DFA-state-to-DFA-state mass transfer from the start node. Numerically
/// identical to EvalSfaQuery, which propagates a q-vector instead and is
/// the optimized variant this library uses by default; kept for paper
/// fidelity and exercised by the ablation micro-benchmarks.
double EvalSfaQueryMatrix(const Sfa& sfa, const Dfa& dfa);

}  // namespace staccato
