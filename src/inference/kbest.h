// MAP and k-MAP inference over SFAs.
//
// Because OCR SFAs are DAGs with the unique-path property, the k highest
// probability strings can be computed exactly by a Viterbi-style dynamic
// program that keeps a k-best list per node in topological order (the
// incremental flavour of Yen's k-shortest-paths specialized to DAGs, which
// is what the paper uses via [54]).
#pragma once

#include <string>
#include <vector>

#include "sfa/sfa.h"
#include "util/result.h"

namespace staccato {

/// \brief A string with its path probability.
struct ScoredString {
  std::string str;
  double prob = 0.0;

  bool operator==(const ScoredString& o) const {
    return str == o.str && prob == o.prob;
  }
};

/// Returns the k highest-probability strings emitted by the SFA, sorted by
/// descending probability (ties broken lexicographically). Returns fewer
/// than k if the SFA emits fewer strings.
std::vector<ScoredString> KBestStrings(const Sfa& sfa, size_t k);

/// The maximum a-posteriori string (k = 1). Fails only on an empty SFA.
Result<ScoredString> MapString(const Sfa& sfa);

/// Reference implementation by exhaustive enumeration; exponential, for
/// tests and the ablation micro-benchmarks only.
Result<std::vector<ScoredString>> KBestStringsByEnumeration(const Sfa& sfa,
                                                            size_t k,
                                                            size_t max_paths);

}  // namespace staccato
