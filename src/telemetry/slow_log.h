// Slow-query log: queries whose wall time exceeds a threshold get their
// plan summary, stats, and trace appended to a size-capped log file.
//
// The process-global instance (Global()) is configured once from the
// environment:
//   STACCATO_SLOW_QUERY_MS   threshold in milliseconds; unset or 0
//                            disables logging entirely (the common case —
//                            ShouldLog is then a single comparison).
//   STACCATO_SLOW_QUERY_LOG  log file path (default "staccato_slow.log").
//   STACCATO_SLOW_LOG_MB     size cap per file in MiB (default 16).
//
// Rotation keeps the total bounded: when an append would push the file
// past the cap, the file is renamed to "<path>.1" (replacing any previous
// one) and a fresh file is started — so at most 2x cap bytes ever exist.
// Tests construct their own instance with an explicit Config.
#pragma once

#include <cstdint>
#include <string>

#include "util/mutex.h"

namespace staccato::telemetry {

/// \brief Append-only, size-capped, rotating text log for slow queries.
class SlowQueryLog {
 public:
  struct Config {
    std::string path;
    uint64_t threshold_ms = 0;  ///< 0 disables
    uint64_t max_bytes = 16ull << 20;
  };

  explicit SlowQueryLog(Config config);

  /// The env-configured process instance (leaked).
  static SlowQueryLog& Global();

  bool enabled() const { return config_.threshold_ms > 0; }
  /// True when a query that took `wall_ms` should be logged.
  bool ShouldLog(double wall_ms) const {
    return enabled() && wall_ms >= static_cast<double>(config_.threshold_ms);
  }

  /// Appends one entry (a newline is added if missing), rotating first if
  /// the file would exceed the cap. Best-effort: I/O errors are swallowed
  /// — observability must never fail a query.
  void Append(const std::string& entry);

  const Config& config() const { return config_; }

 private:
  const Config config_;
  util::Mutex mu_;
  uint64_t current_bytes_ GUARDED_BY(mu_) = 0;
  bool sized_ GUARDED_BY(mu_) = false;  ///< current_bytes_ initialized
};

}  // namespace staccato::telemetry
