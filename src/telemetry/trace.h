// Per-query structured tracing: a QueryTrace is a tree of timed spans
// (admission wait, plan stages, per-shard scatter work, WAL commit)
// recorded through the telemetry clock seam (telemetry/clock.h).
//
// Granularity contract: spans wrap *stages*, never per-candidate work —
// a traced query records a few dozen spans, so the cost is a handful of
// clock reads and one short mutex hold per span against millions of
// evaluated candidates. When tracing is off the engine passes a null
// QueryTrace* and every instrumentation point is a single branch
// (ScopedSpan on a null trace does nothing), which is the "~0 when idle"
// half of the overhead budget.
//
// Answer neutrality: a QueryTrace only ever *observes* — nothing in the
// engine reads a trace to make a decision, so tracing on/off must produce
// bit-identical answers (telemetry_test checks this across the
// shard/thread/early-stop matrix).
//
// Thread safety: one QueryTrace may be written by several shard worker
// threads at once; span start/end each take the trace's mutex briefly.
// Finished traces are published as shared_ptr<const QueryTrace> into the
// session's bounded TraceSink ring and are immutable from then on.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace staccato::telemetry {

/// One timed span. `parent` is the index+1 of the enclosing span in
/// QueryTrace::spans() (0 = root); spans are stored in start order.
struct TraceSpan {
  std::string name;
  uint64_t id = 0;         ///< 1-based index into the span list
  uint64_t parent = 0;     ///< enclosing span id, 0 for top-level
  uint64_t start_ns = 0;   ///< MonotonicNanos() at start
  uint64_t end_ns = 0;     ///< MonotonicNanos() at end; 0 while open
};

/// \brief A span tree for one query execution. Create with
/// QueryTrace::Make, hand the raw pointer down through PlanContext, then
/// publish the shared_ptr (now treated as const) to the TraceSink.
class QueryTrace {
 public:
  static std::shared_ptr<QueryTrace> Make(std::string label) {
    auto t = std::make_shared<QueryTrace>();
    t->label_ = std::move(label);
    return t;
  }

  /// Opens a span; returns its id for EndSpan and for parenting children.
  uint64_t StartSpan(const std::string& name, uint64_t parent = 0);
  void EndSpan(uint64_t id);
  /// Records an already-measured interval (e.g. admission wait, whose
  /// duration QueryControl measured before the trace existed).
  uint64_t AddSpan(const std::string& name, uint64_t start_ns,
                   uint64_t end_ns, uint64_t parent = 0);

  const std::string& label() const { return label_; }
  /// Snapshot of the spans recorded so far (copies under the mutex).
  std::vector<TraceSpan> spans() const;

 private:
  std::string label_;
  mutable util::Mutex mu_;
  std::vector<TraceSpan> spans_ GUARDED_BY(mu_);
};

/// \brief RAII span: opens on construction, closes on destruction.
/// Null-safe — every instrumentation point passes its (possibly null)
/// trace pointer unconditionally and pays one branch when tracing is off.
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, const std::string& name, uint64_t parent = 0)
      : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->StartSpan(name, parent);
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Id to parent child spans under this one (0 when tracing is off,
  /// which correctly means "top-level" for any child recorded anyway).
  uint64_t id() const { return id_; }

 private:
  QueryTrace* trace_;
  uint64_t id_ = 0;
};

/// \brief Bounded ring of finished traces, one per Session. Keeps the
/// last `capacity` traces; older ones drop off. Also owns the session's
/// tracing on/off bit (seeded from STACCATO_TRACE, overridable per
/// session).
class TraceSink {
 public:
  explicit TraceSink(size_t capacity = 16);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void Push(std::shared_ptr<const QueryTrace> trace);
  /// Most recent first.
  std::vector<std::shared_ptr<const QueryTrace>> Recent() const;

 private:
  const size_t capacity_;
  std::atomic<bool> enabled_;
  mutable util::Mutex mu_;
  std::deque<std::shared_ptr<const QueryTrace>> ring_ GUARDED_BY(mu_);
};

/// EXPLAIN ANALYZE-style text rendering: one line per span, indented by
/// tree depth, with start offset and duration in milliseconds.
std::string RenderTrace(const QueryTrace& trace);

/// {"label": ..., "spans": [{"name","id","parent","start_ns","dur_ns"}]}
std::string TraceToJson(const QueryTrace& trace);

}  // namespace staccato::telemetry
