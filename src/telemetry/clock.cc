#include "telemetry/clock.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace staccato::telemetry {

namespace {

/// The installed fake time, or the sentinel meaning "read the real
/// clock". A plain atomic value (not a pointer to the FakeClock) keeps
/// MonotonicNanos() safe even if it races a FakeClock being destroyed on
/// another thread: it can read a stale instant, never freed memory.
constexpr uint64_t kRealClock = ~uint64_t{0};
std::atomic<uint64_t> g_fake_ns{kRealClock};

}  // namespace

uint64_t MonotonicNanos() {
  const uint64_t fake = g_fake_ns.load(std::memory_order_relaxed);
  if (fake != kRealClock) return fake;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

FakeClock::FakeClock(uint64_t start_ns) {
  if (g_fake_ns.load(std::memory_order_relaxed) != kRealClock) {
    std::fprintf(stderr, "telemetry::FakeClock: already installed\n");
    std::abort();
  }
  Set(start_ns);
}

FakeClock::~FakeClock() { g_fake_ns.store(kRealClock, std::memory_order_relaxed); }

void FakeClock::Advance(uint64_t delta_ns) {
  g_fake_ns.fetch_add(delta_ns, std::memory_order_relaxed);
}

void FakeClock::Set(uint64_t now_ns) {
  if (now_ns == kRealClock) --now_ns;  // the sentinel is not a valid instant
  g_fake_ns.store(now_ns, std::memory_order_relaxed);
}

uint64_t FakeClock::now_ns() const {
  return g_fake_ns.load(std::memory_order_relaxed);
}

}  // namespace staccato::telemetry
