// Process-global metrics registry: named counters, gauges, and
// fixed-boundary log-bucket latency histograms, with Prometheus and JSON
// text exposition.
//
// Hot-path contract: recording is lock-free. Counter::Increment and
// Gauge::Add/Set are single relaxed atomic RMWs; Histogram::Record is two
// relaxed fetch_adds (the value's power-of-two bucket plus the running
// sum) — no mutex, no allocation, no clock read. The registry mutex is
// taken only at registration (once per call site, cached in a function-
// local static) and at dump time.
//
// Registration returns stable pointers: metrics live as long as the
// process (the global registry is deliberately leaked, like
// ThreadPool::Shared), so a cached Counter* never dangles. Re-registering
// a name returns the existing metric; registering a name as two different
// types is a programmer error and aborts loudly.
//
// Metric names follow Prometheus conventions (`staccato_..._total` for
// counters) and may carry a fixed label suffix, e.g.
// `staccato_cache_bytes{space="blob"}` — the dump emits the name verbatim
// and writes the # TYPE header once per base name.
//
// Histogram buckets are powers of two: bucket 0 holds the value 0 and
// bucket i >= 1 holds [2^(i-1), 2^i - 1]. ValueAtQuantile(q) finds the
// bucket containing the exact rank ceil(q*count) sample (exact-rank, not
// interpolated) and returns that bucket's inclusive upper bound, so for
// any recorded distribution: true_quantile <= ValueAtQuantile(q) <=
// 2 * max(true_quantile, 1) — a guarantee the tests check against a
// sorted-vector oracle. Record values in a unit where factor-of-two
// resolution is acceptable (microseconds for latencies).
//
// STACCATO_METRICS_DUMP=<path>: at process exit the global registry
// writes itself to <path> — JSON when the path ends in ".json",
// Prometheus text otherwise.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "util/mutex.h"

namespace staccato::telemetry {

/// \brief Monotone counter. Increment is one relaxed fetch_add.
class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// \brief Point-in-time value. Either written directly (Set/Add) or
/// backed by a callback sampled at dump time — the callback flavor costs
/// the instrumented component nothing on its hot path (the shared
/// ThreadPool's queue depth is read this way).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const {
    return callback_ ? callback_() : v_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> v_{0};
  std::function<int64_t()> callback_;  ///< set once at registration
};

/// \brief Fixed-boundary log-bucket histogram (see file comment for the
/// bucket layout and the quantile guarantee). Record is lock-free.
class Histogram {
 public:
  /// Bucket 0 = value 0; bucket i in [1, 64] = values of bit-width i.
  static constexpr size_t kNumBuckets = 65;

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t count() const;
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Inclusive upper bound of the bucket holding the exact rank
  /// ceil(q * count) sample (1-based); 0 when empty. q is clamped to
  /// [0, 1].
  uint64_t ValueAtQuantile(double q) const;

  static size_t BucketIndex(uint64_t value) {
    if (value == 0) return 0;
    return static_cast<size_t>(64 - __builtin_clzll(value));
  }
  /// Largest value bucket `i` can hold (0, 1, 3, 7, ..., UINT64_MAX).
  static uint64_t BucketUpperBound(size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return ~uint64_t{0};
    return (uint64_t{1} << i) - 1;
  }

  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

/// \brief The registry: name -> metric, one per process (Global()), with
/// text exposition. Thread-safe; see the file comment for the locking
/// contract. Separate instances can be constructed for tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-global registry (leaked; pointers never dangle). The
  /// first call arms the STACCATO_METRICS_DUMP at-exit writer.
  static MetricsRegistry& Global();

  /// Each Get* registers on first use and returns the existing metric
  /// afterwards. Registering one name as two different types aborts.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Gauge whose value is `read()` sampled at dump time. `read` must stay
  /// callable for the registry's lifetime (process lifetime for Global()).
  Gauge* GetCallbackGauge(const std::string& name,
                          std::function<int64_t()> read);
  Histogram* GetHistogram(const std::string& name);

  /// Prometheus text exposition, metrics in name order. Histograms emit
  /// cumulative `_bucket{le="..."}` series (up to the highest non-empty
  /// bucket), `_sum`, and `_count`.
  std::string DumpPrometheus() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, p50, p95, p99}}} — one stable machine-readable snapshot.
  std::string DumpJson() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Metric {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric* FindOrCreate(const std::string& name, Kind kind);

  mutable util::Mutex mu_;
  /// std::map: stable pointers and name-sorted iteration for dumps, so
  /// label variants of one base name stay adjacent.
  std::map<std::string, Metric> metrics_ GUARDED_BY(mu_);
};

}  // namespace staccato::telemetry
