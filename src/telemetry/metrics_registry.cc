#include "telemetry/metrics_registry.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/strings.h"

namespace staccato::telemetry {

namespace {

/// "name{label=\"x\"}" -> "name"; names without labels pass through.
std::string BaseName(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Splice extra labels into a possibly-labelled metric name:
/// ("n", le=7) -> n{le="7"}; ("n{space=\"x\"}", le=7) -> n{space="x",le="7"}.
std::string WithLabel(const std::string& name, const std::string& label,
                      const std::string& value) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    return name + "{" + label + "=\"" + value + "\"}";
  }
  std::string out = name.substr(0, name.size() - 1);  // drop trailing '}'
  out += "," + label + "=\"" + value + "\"}";
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StringPrintf("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

uint64_t Histogram::count() const {
  uint64_t n = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) n += bucket_count(i);
  return n;
}

uint64_t Histogram::ValueAtQuantile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Snapshot the buckets once so count and rank agree even while other
  // threads keep recording.
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = bucket_count(i);
    total += counts[i];
  }
  if (total == 0) return 0;
  // Exact rank: the ceil(q*total)-th smallest sample, 1-based, at least 1.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (static_cast<double>(rank) < q * static_cast<double>(total)) ++rank;
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kNumBuckets - 1);  // unreachable
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* g = [] {
    auto* r = new MetricsRegistry();  // leaked: metric pointers never dangle
    if (const char* path = std::getenv("STACCATO_METRICS_DUMP");
        path != nullptr && path[0] != '\0') {
      static std::string g_dump_path;  // atexit runs after locals die
      g_dump_path = path;
      std::atexit([] {
        const std::string& p = g_dump_path;
        const bool json =
            p.size() >= 5 && p.compare(p.size() - 5, 5, ".json") == 0;
        std::FILE* f = std::fopen(p.c_str(), "w");
        if (f == nullptr) return;
        const std::string text =
            json ? Global().DumpJson() : Global().DumpPrometheus();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
      });
    }
    return r;
  }();
  return *g;
}

MetricsRegistry::Metric* MetricsRegistry::FindOrCreate(const std::string& name,
                                                       Kind kind) {
  util::MutexLock lock(&mu_);
  auto [it, inserted] = metrics_.try_emplace(name);
  Metric& m = it->second;
  if (inserted) {
    m.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        m.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        m.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        m.histogram = std::make_unique<Histogram>();
        break;
    }
  } else if (m.kind != kind) {
    std::fprintf(stderr,
                 "MetricsRegistry: metric '%s' registered as two kinds\n",
                 name.c_str());
    std::abort();
  }
  return &m;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return FindOrCreate(name, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return FindOrCreate(name, Kind::kGauge)->gauge.get();
}

Gauge* MetricsRegistry::GetCallbackGauge(const std::string& name,
                                         std::function<int64_t()> read) {
  Gauge* g = FindOrCreate(name, Kind::kGauge)->gauge.get();
  if (!g->callback_) g->callback_ = std::move(read);
  return g;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return FindOrCreate(name, Kind::kHistogram)->histogram.get();
}

std::string MetricsRegistry::DumpPrometheus() const {
  util::MutexLock lock(&mu_);
  std::string out;
  std::string last_typed;  // base name that already got its # TYPE line
  for (const auto& [name, m] : metrics_) {
    const std::string base = BaseName(name);
    switch (m.kind) {
      case Kind::kCounter:
        if (base != last_typed) {
          out += "# TYPE " + base + " counter\n";
          last_typed = base;
        }
        out += StringPrintf("%s %" PRIu64 "\n", name.c_str(),
                                  m.counter->value());
        break;
      case Kind::kGauge:
        if (base != last_typed) {
          out += "# TYPE " + base + " gauge\n";
          last_typed = base;
        }
        out += StringPrintf("%s %" PRId64 "\n", name.c_str(),
                                  m.gauge->value());
        break;
      case Kind::kHistogram: {
        if (base != last_typed) {
          out += "# TYPE " + base + " histogram\n";
          last_typed = base;
        }
        const Histogram& h = *m.histogram;
        size_t highest = 0;
        for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
          if (h.bucket_count(i) > 0) highest = i;
        }
        uint64_t cum = 0;
        for (size_t i = 0; i <= highest; ++i) {
          cum += h.bucket_count(i);
          out += StringPrintf(
              "%s %" PRIu64 "\n",
              WithLabel(name + "_bucket", "le",
                        StringPrintf("%" PRIu64,
                                           Histogram::BucketUpperBound(i)))
                  .c_str(),
              cum);
        }
        const uint64_t total = h.count();
        out += StringPrintf(
            "%s %" PRIu64 "\n",
            WithLabel(name + "_bucket", "le", "+Inf").c_str(), total);
        out += StringPrintf("%s_sum %" PRIu64 "\n", name.c_str(),
                                  h.sum());
        out += StringPrintf("%s_count %" PRIu64 "\n", name.c_str(),
                                  total);
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  util::MutexLock lock(&mu_);
  std::string counters, gauges, histograms;
  for (const auto& [name, m] : metrics_) {
    const std::string key = "\"" + JsonEscape(name) + "\"";
    switch (m.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ",";
        counters +=
            StringPrintf("%s:%" PRIu64, key.c_str(), m.counter->value());
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges +=
            StringPrintf("%s:%" PRId64, key.c_str(), m.gauge->value());
        break;
      case Kind::kHistogram: {
        if (!histograms.empty()) histograms += ",";
        const Histogram& h = *m.histogram;
        histograms += StringPrintf(
            "%s:{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"p50\":%" PRIu64
            ",\"p95\":%" PRIu64 ",\"p99\":%" PRIu64 "}",
            key.c_str(), h.count(), h.sum(), h.ValueAtQuantile(0.50),
            h.ValueAtQuantile(0.95), h.ValueAtQuantile(0.99));
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}\n";
}

}  // namespace staccato::telemetry
