#include "telemetry/trace.h"

#include <cinttypes>
#include <cstdlib>
#include <utility>

#include "telemetry/clock.h"
#include "util/strings.h"

namespace staccato::telemetry {

uint64_t QueryTrace::StartSpan(const std::string& name, uint64_t parent) {
  const uint64_t now = MonotonicNanos();
  util::MutexLock lock(&mu_);
  TraceSpan s;
  s.name = name;
  s.id = spans_.size() + 1;
  s.parent = parent;
  s.start_ns = now;
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void QueryTrace::EndSpan(uint64_t id) {
  const uint64_t now = MonotonicNanos();
  util::MutexLock lock(&mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].end_ns = now;
}

uint64_t QueryTrace::AddSpan(const std::string& name, uint64_t start_ns,
                             uint64_t end_ns, uint64_t parent) {
  util::MutexLock lock(&mu_);
  TraceSpan s;
  s.name = name;
  s.id = spans_.size() + 1;
  s.parent = parent;
  s.start_ns = start_ns;
  s.end_ns = end_ns;
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

std::vector<TraceSpan> QueryTrace::spans() const {
  util::MutexLock lock(&mu_);
  return spans_;
}

TraceSink::TraceSink(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      enabled_([] {
        const char* v = std::getenv("STACCATO_TRACE");
        return v != nullptr && v[0] != '\0' && v[0] != '0';
      }()) {}

void TraceSink::Push(std::shared_ptr<const QueryTrace> trace) {
  if (trace == nullptr) return;
  util::MutexLock lock(&mu_);
  ring_.push_back(std::move(trace));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<std::shared_ptr<const QueryTrace>> TraceSink::Recent() const {
  util::MutexLock lock(&mu_);
  return {ring_.rbegin(), ring_.rend()};
}

namespace {

void RenderSpanTree(const std::vector<TraceSpan>& spans, uint64_t parent,
                    int depth, uint64_t origin_ns, std::string* out) {
  for (const TraceSpan& s : spans) {
    if (s.parent != parent) continue;
    const uint64_t end = s.end_ns == 0 ? s.start_ns : s.end_ns;
    const double offset_ms =
        static_cast<double>(s.start_ns - origin_ns) / 1e6;
    const double dur_ms = static_cast<double>(end - s.start_ns) / 1e6;
    out->append(static_cast<size_t>(2 * depth), ' ');
    *out += StringPrintf("%-24s @%9.3f ms  %9.3f ms%s\n",
                               s.name.c_str(), offset_ms, dur_ms,
                               s.end_ns == 0 ? "  (open)" : "");
    RenderSpanTree(spans, s.id, depth + 1, origin_ns, out);
  }
}

}  // namespace

std::string RenderTrace(const QueryTrace& trace) {
  const std::vector<TraceSpan> spans = trace.spans();
  uint64_t origin = 0, total_end = 0;
  for (const TraceSpan& s : spans) {
    if (origin == 0 || s.start_ns < origin) origin = s.start_ns;
    const uint64_t end = s.end_ns == 0 ? s.start_ns : s.end_ns;
    if (end > total_end) total_end = end;
  }
  std::string out = StringPrintf(
      "Trace %s (%zu spans, total %.3f ms)\n", trace.label().c_str(),
      spans.size(),
      origin == 0 ? 0.0 : static_cast<double>(total_end - origin) / 1e6);
  RenderSpanTree(spans, 0, 1, origin, &out);
  return out;
}

std::string TraceToJson(const QueryTrace& trace) {
  const std::vector<TraceSpan> spans = trace.spans();
  std::string out = "{\"label\":\"";
  for (char c : trace.label()) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  out += "\",\"spans\":[";
  bool first = true;
  for (const TraceSpan& s : spans) {
    if (!first) out += ",";
    first = false;
    const uint64_t end = s.end_ns == 0 ? s.start_ns : s.end_ns;
    out += "{\"name\":\"";
    for (char c : s.name) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
    out += StringPrintf("\",\"id\":%" PRIu64 ",\"parent\":%" PRIu64
                              ",\"start_ns\":%" PRIu64 ",\"dur_ns\":%" PRIu64
                              "}",
                              s.id, s.parent, s.start_ns, end - s.start_ns);
  }
  out += "]}";
  return out;
}

}  // namespace staccato::telemetry
