#include "telemetry/slow_log.h"

#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>
#include <utility>

namespace staccato::telemetry {

namespace {

uint64_t EnvUint(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return def;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return def;
  return static_cast<uint64_t>(parsed);
}

uint64_t FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

SlowQueryLog::SlowQueryLog(Config config) : config_(std::move(config)) {}

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* g = [] {
    Config c;
    c.threshold_ms = EnvUint("STACCATO_SLOW_QUERY_MS", 0);
    const char* path = std::getenv("STACCATO_SLOW_QUERY_LOG");
    c.path = (path != nullptr && path[0] != '\0') ? path
                                                  : "staccato_slow.log";
    c.max_bytes = EnvUint("STACCATO_SLOW_LOG_MB", 16) << 20;
    return new SlowQueryLog(std::move(c));
  }();
  return *g;
}

void SlowQueryLog::Append(const std::string& entry) {
  if (config_.path.empty()) return;
  util::MutexLock lock(&mu_);
  if (!sized_) {
    // Resume an existing file's size once; afterwards we track appends
    // ourselves to avoid a stat per entry.
    current_bytes_ = FileSize(config_.path);
    sized_ = true;
  }
  const uint64_t add = entry.size() + (entry.empty() || entry.back() != '\n');
  if (current_bytes_ > 0 && current_bytes_ + add > config_.max_bytes) {
    // Rotate: the previous generation is overwritten, so disk usage stays
    // under 2x max_bytes.
    const std::string old = config_.path + ".1";
    std::remove(old.c_str());
    std::rename(config_.path.c_str(), old.c_str());
    current_bytes_ = 0;
  }
  std::FILE* f = std::fopen(config_.path.c_str(), "a");
  if (f == nullptr) return;
  std::fwrite(entry.data(), 1, entry.size(), f);
  if (add > entry.size()) std::fputc('\n', f);
  std::fclose(f);
  current_bytes_ += add;
}

}  // namespace staccato::telemetry
