// The telemetry clock seam: every trace timestamp and latency-histogram
// sample in the engine reads time through MonotonicNanos(), and nothing
// else. Production reads one steady_clock call (this file and its .cc are
// the only telemetry code allowed to spell steady_clock — scripts/lint.sh
// rule 9); tests install a FakeClock and drive time by hand, so span
// nesting, slow-query thresholds, and histogram contents are all
// deterministic under test without sleeping.
//
// This seam is deliberately separate from QueryControl's deadline clock
// (rdbms/service.cc): a deadline decides *behavior* (a query fails or
// degrades), telemetry only *observes*. Keeping the read sites distinct
// means a fake telemetry clock can never change an answer.
#pragma once

#include <cstdint>

namespace staccato::telemetry {

/// Monotonic nanoseconds since an arbitrary process-local origin. One
/// relaxed atomic load on the fake-clock branch check, then one
/// steady_clock read — cheap enough for per-stage (not per-candidate)
/// instrumentation.
uint64_t MonotonicNanos();

/// \brief RAII fake clock for tests: while alive, MonotonicNanos()
/// returns the installed value instead of reading the real clock. At most
/// one may be installed at a time (nesting aborts — a silently shadowed
/// fake clock makes time-dependent assertions lie).
class FakeClock {
 public:
  explicit FakeClock(uint64_t start_ns = 0);
  ~FakeClock();
  FakeClock(const FakeClock&) = delete;
  FakeClock& operator=(const FakeClock&) = delete;

  void Advance(uint64_t delta_ns);
  void Set(uint64_t now_ns);
  uint64_t now_ns() const;
};

}  // namespace staccato::telemetry
