#include "rdbms/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "telemetry/metrics_registry.h"
#include "util/parallel.h"

// This file owns every deadline/queue-timeout clock read in src/
// (scripts/lint.sh rule 9): the executor and the rest of the engine see
// only QueryControl's atomic flags and budgets, never a clock.

namespace staccato::rdbms {

namespace {

using Clock = std::chrono::steady_clock;

/// Monotonic nanos for deadline arithmetic. Deliberately NOT
/// telemetry::MonotonicNanos(): deadlines decide behavior, so a fake
/// telemetry clock in a test must never move them.
uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Service-level metrics, registered once. The histograms record
/// microseconds (the log-bucket factor-of-two resolution is fine there).
struct ServiceMetrics {
  telemetry::Counter* admitted;
  telemetry::Counter* shed;
  telemetry::Counter* timed_out;
  telemetry::Counter* completed;
  telemetry::Counter* deadline_exceeded;
  telemetry::Counter* degraded;
  telemetry::Counter* io_retries;
  telemetry::Histogram* admission_wait_us;
  telemetry::Histogram* query_us;
};

const ServiceMetrics& Metrics() {
  static const ServiceMetrics m = [] {
    auto& r = telemetry::MetricsRegistry::Global();
    ServiceMetrics sm;
    sm.admitted = r.GetCounter("staccato_service_admitted_total");
    sm.shed = r.GetCounter("staccato_service_shed_total");
    sm.timed_out = r.GetCounter("staccato_service_queue_timeout_total");
    sm.completed = r.GetCounter("staccato_service_completed_total");
    sm.deadline_exceeded =
        r.GetCounter("staccato_service_deadline_exceeded_total");
    sm.degraded = r.GetCounter("staccato_service_degraded_total");
    sm.io_retries = r.GetCounter("staccato_io_retries_total");
    sm.admission_wait_us =
        r.GetHistogram("staccato_service_admission_wait_us");
    sm.query_us = r.GetHistogram("staccato_service_query_us");
    return sm;
  }();
  return m;
}

/// Env knob parse: plain non-negative number in a sane range, else the
/// fallback (same defensive shape as ThreadPool::DefaultThreads).
uint64_t EnvUint(const char* name, uint64_t fallback, uint64_t max) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (env[0] >= '0' && env[0] <= '9' && end != env && *end == '\0' &&
      v <= max) {
    return static_cast<uint64_t>(v);
  }
  return fallback;
}

std::chrono::nanoseconds MsToNs(double ms) {
  return std::chrono::nanoseconds(
      static_cast<int64_t>(ms * 1'000'000.0));
}

}  // namespace

QueryControl::QueryControl(const ExecBudget& budget) : budget_(budget) {
  max_io_retries_ =
      budget.max_io_retries >= 0
          ? budget.max_io_retries
          : static_cast<int>(EnvUint("STACCATO_IO_RETRIES", 3, 100));
  if (budget.deadline_ms > 0.0) {
    has_deadline_ = true;
    deadline_ns_ =
        NowNs() + static_cast<uint64_t>(MsToNs(budget.deadline_ms).count());
  } else if (budget.deadline_ms < 0.0) {
    // Born expired: the very first Check() must fail, before a single
    // candidate is evaluated or a single byte fetched.
    has_deadline_ = true;
    deadline_ns_ = NowNs();
  }
}

Status QueryControl::Check() const {
  if (cancelled_.load(std::memory_order_acquire)) {
    return Status::DeadlineExceeded("query cancelled");
  }
  if (has_deadline_ && NowNs() >= deadline_ns_) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  if (budget_.max_dp_steps != 0 &&
      dp_steps_.load(std::memory_order_relaxed) >= budget_.max_dp_steps) {
    return Status::DeadlineExceeded("DP step budget exceeded");
  }
  if (budget_.max_fetch_bytes != 0 &&
      fetched_bytes_.load(std::memory_order_relaxed) >=
          budget_.max_fetch_bytes) {
    return Status::DeadlineExceeded("fetch byte budget exceeded");
  }
  return Status::OK();
}

bool QueryControl::AllowRetry() {
  // Claim one attempt from the shared per-query budget.
  uint64_t attempt = io_retries_.load(std::memory_order_relaxed);
  do {
    if (attempt >= static_cast<uint64_t>(max_io_retries_)) return false;
  } while (!io_retries_.compare_exchange_weak(attempt, attempt + 1,
                                              std::memory_order_relaxed));
  Metrics().io_retries->Increment();
  // Exponential backoff: 1ms * 2^attempt, capped at 32ms, truncated to
  // the remaining deadline. A dead deadline means the retry cannot help.
  std::chrono::nanoseconds delay =
      std::chrono::milliseconds(int64_t{1} << std::min<uint64_t>(attempt, 5));
  if (has_deadline_) {
    const uint64_t now_ns = NowNs();
    if (now_ns >= deadline_ns_) return false;
    delay = std::min<std::chrono::nanoseconds>(
        delay, std::chrono::nanoseconds(deadline_ns_ - now_ns));
  }
  std::this_thread::sleep_for(delay);
  return Check().ok() || budget_.allow_partial;
}

QueryService::QueryService(Session* session, ServiceConfig config)
    : session_(session), config_(config) {
  if (config_.max_concurrent == 0) {
    config_.max_concurrent = static_cast<size_t>(
        EnvUint("STACCATO_MAX_CONCURRENT",
                ThreadPool::Shared().capacity(), 1 << 20));
    if (config_.max_concurrent == 0) config_.max_concurrent = 1;
  }
  if (config_.max_queued == 0) {
    config_.max_queued = 2 * config_.max_concurrent;
  }
  if (config_.queue_timeout_ms <= 0.0) {
    config_.queue_timeout_ms = static_cast<double>(
        EnvUint("STACCATO_QUEUE_TIMEOUT_MS", 100, 1'000'000));
  }
}

namespace {

/// The backoff the service recommends to a shed caller. Base = the queue
/// timeout (by then a slot has plausibly freed); doubled when the shared
/// ThreadPool itself is saturated — admission is not the bottleneck then,
/// so coming back sooner only queues deeper.
uint64_t ComputeRetryAfterMs(const ServiceConfig& config) {
  uint64_t hint = static_cast<uint64_t>(std::ceil(config.queue_timeout_ms));
  if (hint == 0) hint = 1;
  ThreadPool& pool = ThreadPool::Shared();
  if (2 * pool.queue_depth() >= pool.max_queued()) hint *= 2;
  return hint;
}

Status ShedStatus(const char* why, const ServiceConfig& config) {
  return Status::Unavailable(std::string(why) + "; retry-after-ms=" +
                             std::to_string(ComputeRetryAfterMs(config)));
}

}  // namespace

Status QueryService::Admit() {
  const Clock::time_point wait_deadline =
      Clock::now() + MsToNs(config_.queue_timeout_ms);
  util::MutexLock lock(&mu_);
  if (active_ < config_.max_concurrent) {
    ++active_;
    stats_.admitted.fetch_add(1, std::memory_order_relaxed);
    Metrics().admitted->Increment();
    return Status::OK();
  }
  if (waiting_ >= config_.max_queued) {
    stats_.shed.fetch_add(1, std::memory_order_relaxed);
    Metrics().shed->Increment();
    return ShedStatus("admission queue full", config_);
  }
  ++waiting_;
  while (active_ >= config_.max_concurrent) {
    const Clock::time_point now = Clock::now();
    if (now >= wait_deadline) {
      --waiting_;
      stats_.timed_out.fetch_add(1, std::memory_order_relaxed);
      Metrics().timed_out->Increment();
      return ShedStatus("queue wait timed out", config_);
    }
    slot_free_.WaitFor(wait_deadline - now);
  }
  --waiting_;
  ++active_;
  stats_.admitted.fetch_add(1, std::memory_order_relaxed);
  Metrics().admitted->Increment();
  return Status::OK();
}

void QueryService::Release() {
  {
    util::MutexLock lock(&mu_);
    --active_;
  }
  slot_free_.Signal();
}

size_t QueryService::active() const {
  util::MutexLock lock(&mu_);
  return active_;
}

Result<std::vector<Answer>> QueryService::Execute(PreparedQuery* query,
                                                  QueryStats* stats) {
  return Execute(query, config_.default_budget, stats);
}

Result<std::vector<Answer>> QueryService::Execute(PreparedQuery* query,
                                                  const ExecBudget& budget,
                                                  QueryStats* stats) {
  const uint64_t admit_start_ns = NowNs();
  STACCATO_RETURN_NOT_OK(Admit());
  const uint64_t admitted_ns = NowNs();
  Metrics().admission_wait_us->Record((admitted_ns - admit_start_ns) / 1000);
  QueryStats local;
  QueryStats* out = stats != nullptr ? stats : &local;
  QueryControl control(budget);  // armed after admission: queue wait does
                                 // not eat the execution deadline
  control.set_admission_wait_ns(admitted_ns - admit_start_ns);
  Result<std::vector<Answer>> result = query->Execute(&control, out);
  Release();
  Metrics().query_us->Record((NowNs() - admit_start_ns) / 1000);
  if (result.ok()) {
    stats_.completed.fetch_add(1, std::memory_order_relaxed);
    Metrics().completed->Increment();
    if (out->degraded) {
      stats_.degraded.fetch_add(1, std::memory_order_relaxed);
      Metrics().degraded->Increment();
    }
  } else if (result.status().IsDeadlineExceeded()) {
    stats_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    Metrics().deadline_exceeded->Increment();
  }
  return result;
}

uint64_t RetryAfterHintMs(const Status& status) {
  const std::string& msg = status.message();
  const std::string key = "retry-after-ms=";
  const size_t pos = msg.find(key);
  if (pos == std::string::npos) return 0;
  return static_cast<uint64_t>(
      std::strtoull(msg.c_str() + pos + key.size(), nullptr, 10));
}

}  // namespace staccato::rdbms
