// StaccatoDb: the end-to-end system of the paper. It owns the relational
// schema of Table 5 inside the mini-RDBMS, the blob stores holding
// serialized (Full and chunked) SFAs, the dictionary-based inverted index,
// and the probabilistic LIKE query executor for all four approaches:
//
//   MAP      — the single most likely transcription per line
//   k-MAP    — the k most likely transcriptions per line
//   FullSFA  — the entire transducer, stored as a BLOB
//   Staccato — the chunked approximation of Section 3
//
// Incremental ingest: after a bulk Load, single documents arrive through
// Append. Each append is made durable by a CRC-framed write-ahead log
// record (rdbms/wal.h) before it is applied to a mutable in-memory delta
// generation; queries merge the delta with the immutable base tables at
// candidate generation, fetch, and eval. Checkpoint folds the delta into a
// fresh epoch of base files and commits it atomically through the
// `staccato.meta` pointer file, so a crash at any instant recovers exactly
// the committed prefix of appends (OpenExisting replays the log).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "automata/trie.h"
#include "cache/buffer_cache.h"
#include "metrics/metrics.h"
#include "ocr/corpus.h"
#include "rdbms/blob_store.h"
#include "rdbms/btree.h"
#include "rdbms/delta.h"
#include "rdbms/heap_table.h"
#include "rdbms/plan.h"
#include "rdbms/wal.h"
#include "sfa/sfa.h"
#include "staccato/chunking.h"
#include "util/mutex.h"
#include "util/result.h"

namespace staccato::rdbms {

// Approach, QueryOptions, and QueryStats live in rdbms/plan.h (the query
// model shared by the planner, the session layer, and this facade).

/// \brief Load-time configuration.
struct LoadOptions {
  size_t kmap_k = 25;            ///< k for the k-MAP table
  StaccatoParams staccato;       ///< (m, k) for the chunked representation
  /// Workers for parallel Staccato construction; 0 = the shared thread
  /// pool's capacity (util/parallel.h; STACCATO_THREADS overrides).
  size_t construction_threads = 0;
};

/// \brief One incrementally ingested document (Append). The SFA is the
/// full transducer; every derived representation (k-MAP rows, the chunked
/// Staccato graph, postings) is computed by the database with the same
/// parameters the bulk Load used, so an appended document is
/// indistinguishable from a bulk-loaded one.
struct DocumentInput {
  std::string doc_name;
  int64_t year = 0;
  std::string truth;
  Sfa sfa;
};

/// \brief Storage-size report (Table 2 / Figure 20).
struct StorageReport {
  uint64_t text_bytes = 0;       // k-MAP rank-0 text
  uint64_t kmap_table_bytes = 0;
  uint64_t fullsfa_blob_bytes = 0;
  uint64_t staccato_blob_bytes = 0;
  uint64_t staccato_table_bytes = 0;
  uint64_t index_entries = 0;
};

/// \brief The database. Construct with Open(), then Load() a dataset.
///
/// Concurrency: Append is safe against concurrent query execution (the
/// delta generation is snapshotted into every PlanContext under the ingest
/// mutex, and published documents are immutable). Load, Checkpoint, and
/// BuildInvertedIndex replace storage handles wholesale and keep the
/// external-exclusive contract: no concurrent queries while they run.
class StaccatoDb {
 public:
  /// Creates a database under `dir` (created if needed; files truncated).
  /// `cache` sizes the shared buffer cache (pages + SFA blobs) the
  /// database owns; the default honors STACCATO_CACHE_MB, and a zero
  /// budget disables caching entirely (bit-identical answers either way).
  static Result<std::unique_ptr<StaccatoDb>> Open(
      const std::string& dir,
      cache::CacheConfig cache = cache::CacheConfig::Default());

  /// Reopens a previously loaded database directory: the epoch named by
  /// `staccato.meta` (epoch 0 when absent) is opened in place, the blob
  /// record ids are recovered by scanning the FullSFAData/StaccatoGraph
  /// tables, the inverted index (if it was built) is reconstructed from
  /// the persisted postings table, and the write-ahead log is replayed —
  /// every committed append is recovered, a torn tail is discarded.
  static Result<std::unique_ptr<StaccatoDb>> OpenExisting(
      const std::string& dir,
      cache::CacheConfig cache = cache::CacheConfig::Default());

  /// Loads an OCR dataset: populates MasterData, GroundTruth, kMAPData,
  /// FullSFAData, StaccatoData/StaccatoGraph per `opts`. Staccato
  /// construction is parallelized across SFAs (it is embarrassingly
  /// parallel, as the paper notes). Resets the WAL and drops any pending
  /// delta: Load replaces the dataset wholesale.
  Status Load(const OcrDataset& dataset, const LoadOptions& opts);

  /// Appends one document incrementally. The document is logged (WAL
  /// record + commit record, fsynced per STACCATO_WAL_SYNC) before it is
  /// materialized into the in-memory delta generation, so a crash after
  /// Append returns loses nothing. Derived representations reuse the
  /// LoadOptions of the last Load. Safe against concurrent query
  /// execution. When STACCATO_DELTA_DOCS is set and the delta reaches
  /// that many documents, an automatic Checkpoint runs inline (that path
  /// is external-exclusive, like an explicit Checkpoint).
  Status Append(const DocumentInput& doc);

  /// Folds the delta generation into a fresh epoch of base files, commits
  /// it atomically (write new files, fsync, then atomically replace
  /// `staccato.meta`), and truncates the WAL. A crash before the meta
  /// commit leaves the previous epoch + WAL authoritative; a crash after
  /// it replays no delta (WAL sequence numbers below the new base are
  /// skipped). External-exclusive: no concurrent queries.
  Status Checkpoint();

  /// Number of documents currently in the in-memory delta generation.
  size_t DeltaDocs() const;

  /// The committed base-file epoch (bumped by every Checkpoint).
  uint64_t Epoch() const;

  /// Builds the dictionary inverted index over the Staccato representation.
  Status BuildInvertedIndex(const std::vector<std::string>& dictionary_terms);

  /// Executes a probabilistic LIKE query under the chosen approach.
  /// Thin wrapper over Session::Prepare + PreparedQuery::Execute that keeps
  /// the legacy flag-driven semantics: when `q.index_mode` is kAuto, the
  /// `use_index` flag pins it to kForce/kNever instead of letting the cost
  /// model decide. Use a Session (rdbms/session.h) to get cost-based
  /// planning and to amortize parsing, DFA compilation, planning, and the
  /// plan-level cache across repeated executions.
  Result<std::vector<Answer>> Query(Approach approach, const QueryOptions& q,
                                    QueryStats* stats = nullptr);

  /// Convenience: parses a single-table select-project SQL statement with a
  /// LIKE predicate (the paper's query class) and executes it. Equality
  /// predicates (`Year = 2010`) filter candidates on MasterData columns
  /// before any SFA is fetched. Thin wrapper over Session::PrepareSql —
  /// and, like any SQL prepare, cost-based (IndexMode::kAuto): with an
  /// index built, the anchor is probed whenever the estimate says that is
  /// cheaper than scanning. Only the pattern-query `Query` facade pins the
  /// source from its legacy use_index flag.
  Result<std::vector<Answer>> QuerySql(Approach approach, const std::string& sql,
                                       QueryStats* stats = nullptr);

  /// Ground-truth answer set: lines whose true transcription matches.
  Result<std::set<DocId>> GroundTruthFor(const std::string& pattern);

  size_t NumSfas() const { return num_sfas_.load(std::memory_order_acquire); }
  StorageReport Storage() const;

  /// Drops page/blob caches (per-table pools and the shared buffer
  /// cache) so the next query runs cold. Plan caches are untouched — the
  /// data has not changed. Dirty pages are written back first; a failed
  /// write-back is returned, never swallowed.
  Status DropCaches();

  /// The shared memory-budgeted buffer cache (pages + SFA blobs); null
  /// when caching is disabled (zero budget).
  cache::BufferCache* buffer_cache() const { return cache_.get(); }

  /// Cache-aware blob read, exactly as the executor's Fetch stage
  /// performs it: a heap point get resolves the blob id, then the store
  /// reads through the buffer cache keyed on (representation, doc,
  /// blob_generation). Delta documents are served from memory on a
  /// detached handle. Exposed for benches and tests that measure the
  /// Fetch unit in isolation.
  Result<cache::BufferCache::Handle> FetchBlobCached(DocId doc,
                                                     bool full_sfa);

  /// Access to the loaded per-line chunked SFAs (for benches that need to
  /// inspect the representation directly). Delta-aware.
  Result<Sfa> LoadStaccatoSfa(DocId doc);
  Result<Sfa> LoadFullSfa(DocId doc);

  /// Raw serialized-transducer blobs, exactly as the Eval stage fetches
  /// them (for kernel benches that measure decode/eval without the
  /// executor around them). Delta-aware.
  Result<std::string> ReadStaccatoBlob(DocId doc);
  Result<std::string> ReadFullSfaBlob(DocId doc);

  const DictionaryTrie* dictionary() const {
    return dict_ ? &*dict_ : nullptr;
  }

  /// Monotone data-version counter: bumped by every Load, Append,
  /// Checkpoint and BuildInvertedIndex (and set by OpenExisting).
  /// PreparedQuery plan caches are tagged with it and self-invalidate
  /// when it moves.
  uint64_t load_generation() const {
    return load_gen_.load(std::memory_order_acquire);
  }

  /// Blob-content version counter: bumped only when the bytes behind a
  /// (representation, doc) pair can change — i.e. by Load. Append and
  /// Checkpoint preserve every existing document's serialized SFAs
  /// byte-for-byte, so the warm blob cache survives them (BlobCacheKey
  /// carries this generation, not load_generation).
  uint64_t blob_generation() const {
    return blob_gen_.load(std::memory_order_acquire);
  }

  /// Per-term posting statistics of the inverted index (posting count and
  /// distinct-doc count), maintained at build time for the cost-based
  /// planner. Empty when no index is built.
  const TermStatsMap& term_stats() const { return term_stats_; }

 private:
  friend class Session;
  friend class PreparedQuery;

  explicit StaccatoDb(std::string dir) : dir_(std::move(dir)) {}

  /// Borrowed storage views for the planner/executor (rdbms/plan.h).
  /// Snapshots the delta generation under the ingest mutex, so a
  /// concurrent Append never mutates state a running query observes.
  PlanContext MakePlanContext();

  /// Truncates and reopens one heap relation (Load replaces every table
  /// wholesale; index rebuilds replace the postings relation). Keeps the
  /// old handle on failure — the member is never left null.
  Status ReplaceHeap(std::unique_ptr<HeapTable>* table,
                     const std::string& path, Schema schema);
  Status ReplacePostingsRelation() REQUIRES(ingest_mu_);

  /// Points the blob store and every heap table at the shared buffer
  /// cache (no-op when caching is disabled). Load re-runs it after
  /// replacing the storage handles.
  void WireCache();

  /// Replays the write-ahead log into the delta generation (OpenExisting)
  /// and positions the writer at the end of the committed prefix,
  /// truncating any torn tail.
  Status RecoverWal() REQUIRES(ingest_mu_);

  /// Computes every derived representation of a logged document: k-MAP
  /// strings, the chunked Staccato graph, and (when an index exists)
  /// packed postings. Both the live Append path and WAL replay build the
  /// delta from the *serialized* record, so a recovered document is
  /// bit-identical to the one the crashed process served.
  Result<std::shared_ptr<const DeltaDoc>> MaterializeDelta(
      const WalDocRecord& rec) REQUIRES(ingest_mu_);

  Status CheckpointLocked() REQUIRES(ingest_mu_);

  std::string dir_;
  std::atomic<size_t> num_sfas_{0};

  std::unique_ptr<HeapTable> master_;       // MasterData
  std::unique_ptr<HeapTable> truth_;        // GroundTruth
  std::unique_ptr<HeapTable> kmap_;         // kMAPData
  std::unique_ptr<HeapTable> fullsfa_;      // FullSFAData
  std::unique_ptr<HeapTable> staccato_;     // StaccatoData
  std::unique_ptr<HeapTable> staccato_graph_;  // StaccatoGraph
  std::unique_ptr<HeapTable> postings_;     // InvertedIndex postings table
  std::unique_ptr<BlobStore> blobs_;
  std::unique_ptr<cache::BufferCache> cache_;  // shared page/blob cache

  // DataKey -> RecordId of the blob-holding row, for point fetches.
  std::vector<RecordId> fullsfa_rid_;
  std::vector<RecordId> graph_rid_;

  std::unique_ptr<BPlusTree> index_;  // term -> postings-table record
  std::optional<DictionaryTrie> dict_;
  TermStatsMap term_stats_;  // planner statistics, rebuilt with the index
  std::atomic<uint64_t> load_gen_{0};  // see load_generation()
  std::atomic<uint64_t> blob_gen_{0};  // see blob_generation()

  /// Serializes ingest against plan-context snapshots: Append's
  /// log-then-apply sequence, the delta vector, and the base/epoch
  /// bookkeeping all live under it. Queries hold it only for the snapshot
  /// in MakePlanContext, never during execution.
  mutable util::Mutex ingest_mu_;
  std::vector<std::shared_ptr<const DeltaDoc>> delta_ GUARDED_BY(ingest_mu_);
  size_t base_docs_ GUARDED_BY(ingest_mu_) = 0;  ///< docs folded into tables
  LoadOptions load_opts_ GUARDED_BY(ingest_mu_);  ///< params appends reuse
  std::unique_ptr<WalWriter> wal_ GUARDED_BY(ingest_mu_);
  uint64_t epoch_ GUARDED_BY(ingest_mu_) = 0;  ///< committed base-file epoch
  /// STACCATO_DELTA_DOCS: auto-checkpoint once the delta holds this many
  /// documents (0 = never; explicit Checkpoint only). Read once at open.
  size_t delta_checkpoint_docs_ = 0;
};

}  // namespace staccato::rdbms
