// Crash-safe write-ahead log for incremental ingest.
//
// Physical layer (LevelDB log_format lineage): the file is a sequence of
// 32 KiB blocks; each record is split into fragments, one fragment per
// contiguous run inside a block, framed as
//
//     +---------+--------+------+----------------------+
//     | crc32 4B| len 2B | type | payload (len bytes)  |
//     +---------+--------+------+----------------------+
//
// with type FULL / FIRST / MIDDLE / LAST and the CRC covering the type
// byte plus the payload. A trailer of < 7 bytes at the end of a block is
// zero-filled before the next fragment starts, so every byte of the file
// belongs to exactly one record's span — which is what makes the
// recovery matrix's expectations exact (corrupting any byte of record i
// recovers precisely records 0..i-1).
//
// Logical layer (header-last commit): each appended document is written
// as a doc record ('D' tag, the full serialized document) followed by a
// commit record ('C' tag: sequence number + CRC32 of the doc record
// bytes). Recovery applies a document only after seeing its intact
// commit record, so a torn doc record — even one whose fragment CRCs
// happen to verify — can never be half-applied.
//
// This header and wal.cc are the only code allowed to touch the on-disk
// log format (scripts/lint.sh rule 7).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace staccato {
namespace rdbms {

// ---- Physical framing constants --------------------------------------------

constexpr size_t kWalBlockSize = 32768;
constexpr size_t kWalHeaderSize = 7;  // crc32[4] + length[2] + type[1]

constexpr uint8_t kWalZero = 0;  // zero-filled block trailer padding
constexpr uint8_t kWalFull = 1;
constexpr uint8_t kWalFirst = 2;
constexpr uint8_t kWalMiddle = 3;
constexpr uint8_t kWalLast = 4;

// ---- Policy / paths ---------------------------------------------------------

/// \brief When the WAL reaches durable storage.
enum class WalSyncPolicy : uint8_t {
  kNever = 0,   ///< OS-buffered only; fast, loses the tail on power cut
  kCommit = 1,  ///< fsync on every Commit() (the default)
};

/// \brief Reads STACCATO_WAL_SYNC ("never" | "commit"); default kCommit.
WalSyncPolicy WalSyncPolicyFromEnv();

/// \brief The log file for a database directory (`<dir>/wal.log`).
std::string WalPath(const std::string& dir);

// ---- Writer -----------------------------------------------------------------

/// \brief Appends framed records to the log. Not thread-safe; the caller
/// (StaccatoDb::Append) serializes access.
class WalWriter {
 public:
  /// Opens (creating if needed) the log and truncates it to
  /// `resume_offset` — the end of the last intact record as reported by
  /// recovery — so a torn tail never precedes fresh appends.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 uint64_t resume_offset,
                                                 WalSyncPolicy policy);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record. On failure the file is truncated back to the
  /// previous record boundary so a torn fragment cannot sit in front of
  /// later successful appends; if even the truncate fails the writer
  /// becomes sticky-errored.
  Status AddRecord(std::string_view payload);

  /// Makes prior records visible to a reopening process: fflush, plus
  /// fsync when the policy is kCommit.
  Status Commit();

  /// Forces durability regardless of policy (checkpoint barrier).
  Status Sync();

  /// Truncates the log to empty (after a checkpoint folded its contents
  /// into the base segments).
  Status Reset();

  /// End of the last successfully appended record.
  uint64_t offset() const { return offset_; }

 private:
  WalWriter(FILE* file, std::string path, uint64_t offset,
            WalSyncPolicy policy);

  FILE* file_ = nullptr;
  std::string path_;
  uint64_t offset_ = 0;  // end of last complete record
  WalSyncPolicy policy_ = WalSyncPolicy::kCommit;
  Status sticky_error_;
};

// ---- Reader -----------------------------------------------------------------

/// \brief Sequentially decodes records, stopping at the first anomaly
/// (bad CRC, torn fragment, nonzero trailer garbage). Everything before
/// the stop point is the committed prefix; `last_record_end()` is where a
/// writer should resume.
class WalReader {
 public:
  static Result<std::unique_ptr<WalReader>> Open(const std::string& path);

  /// Returns true and fills `*out` with the next record; false at end of
  /// the intact prefix (clean or torn — check torn_tail()).
  bool ReadRecord(std::string* out);

  /// True if reading stopped because of a torn/corrupt tail rather than
  /// a clean end of file.
  bool torn_tail() const { return torn_tail_; }

  /// Byte offset just past the last intact record.
  uint64_t last_record_end() const { return last_record_end_; }

 private:
  explicit WalReader(std::string data);

  std::string data_;
  size_t pos_ = 0;
  uint64_t last_record_end_ = 0;
  bool torn_tail_ = false;
  bool done_ = false;
};

// ---- Logical records --------------------------------------------------------

constexpr uint8_t kWalDocTag = 'D';
constexpr uint8_t kWalCommitTag = 'C';

/// \brief One appended document, self-contained: recovery re-derives the
/// k-map rows, chunked SFA, and postings from the serialized SFA with the
/// same load parameters the live Append used, guaranteeing replay builds
/// byte-identical delta state.
struct WalDocRecord {
  uint64_t seq = 0;  ///< absolute document id (base + delta position)
  std::string doc_name;
  int64_t year = 0;
  std::string truth;
  uint64_t kmap_k = 0;      ///< LoadOptions::kmap_k at append time
  uint64_t staccato_m = 0;  ///< StaccatoParams::m
  uint64_t staccato_k = 0;  ///< StaccatoParams::k
  std::string full_sfa;     ///< Sfa::Serialize() bytes
};

std::string EncodeWalDoc(const WalDocRecord& rec);
Result<WalDocRecord> DecodeWalDoc(std::string_view bytes);

/// \brief Header-last commit marker: binds `seq` to the CRC of the doc
/// record it commits.
struct WalCommitRecord {
  uint64_t seq = 0;
  uint32_t payload_crc = 0;  ///< Crc32 of the full encoded doc record
};

std::string EncodeWalCommit(const WalCommitRecord& rec);
Result<WalCommitRecord> DecodeWalCommit(std::string_view bytes);

}  // namespace rdbms
}  // namespace staccato
