// The prepared-query surface of the engine.
//
// A Session borrows a StaccatoDb and turns logical queries (pattern +
// options, or the paper's SQL) into PreparedQuery objects:
//
//   Session session(db.get());
//   STACCATO_ASSIGN_OR_RETURN(
//       PreparedQuery pq,
//       session.PrepareSql(Approach::kStaccato,
//                          "SELECT DocID FROM Claims "
//                          "WHERE Year = 2010 AND DocData LIKE '%Ford%';"));
//   puts(pq.Explain().c_str());
//   auto answers = pq.Execute();       // repeatable; plan + DFA reused
//
// Prepare compiles the pattern DFA once, binds equality literals against
// the MasterData schema, and freezes a *cost-based* physical plan (plan.h):
// the planner prices the full-scan and index-probe paths from posting
// counts and table statistics and keeps the cheaper one, unless
// QueryOptions::index_mode pins the choice. A SQL LIMIT clause maps to the
// TopK answer budget (NumAns).
//
// Execute runs the plan, and each PreparedQuery carries a plan-level cache:
// the first Execute memoizes the index-probe CandidateSet and the
// equality-filter bitmap, so warm Executes skip the CandidateGen and
// Filter operators entirely (QueryStats::candidates_from_cache /
// filter_from_cache report this). Cached entries live until the database's
// load generation moves — any Load or BuildInvertedIndex invalidates them
// on the next Execute — and warm answers are always bit-identical to cold
// ones. Plan caches are also shared *across* the PreparedQueries of one
// Session: after a successful Execute the warmed artifacts are published
// (as immutable snapshots, keyed by plan fingerprint) into a session-wide
// table, and a cold PreparedQuery with the same fingerprint adopts them
// on its first Execute instead of recomputing (QueryStats::shared_plan_hit,
// Session::shared_plan_hits). A PreparedQuery is not synchronized: run
// concurrent Executes on separate PreparedQuery objects. Open streams the
// ranked answers through a Cursor. The legacy StaccatoDb::Query call is a thin flag-driven
// wrapper over this engine (it pins index_mode from use_index);
// StaccatoDb::QuerySql is cost-based like any SQL prepare. Both run
// prepare + execute in one shot, so they never hit the warm path.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "automata/dfa.h"
#include "rdbms/plan.h"
#include "util/mutex.h"
#include "util/result.h"

namespace staccato::rdbms {

class StaccatoDb;
class ShardedDb;
class PreparedQuery;
class Cursor;

/// \brief The session-wide shared plan-cache table: immutable snapshots of
/// warmed PlanCache artifacts, keyed by plan fingerprint (candidate
/// source + anchor + bound equalities — exactly what the memoized
/// CandidateSet and bitmap depend on). Entries carry their load
/// generation inside the PlanCache; a PreparedQuery adopts an entry only
/// when the generation still matches, and publishes a fresh snapshot
/// after warming its own cache. Shared (via shared_ptr) between a Session
/// and every PreparedQuery it creates, so queries stay valid if the
/// Session dies first. All access goes through the mutex; the snapshots
/// themselves are immutable, so concurrent Executes on separate
/// PreparedQuery objects stay safe.
struct SharedPlanCacheTable {
  /// Bound on distinct fingerprints retained (each entry can hold an
  /// O(num_docs) bitmap plus a CandidateSet). Publishing past the bound
  /// purges stale-generation entries first, then starts over — entries
  /// are memoizations, so the worst case is a recompute, never growth
  /// without bound in a long-lived serving session.
  static constexpr size_t kMaxEntries = 256;

  util::Mutex mu;
  std::unordered_map<std::string, std::shared_ptr<const PlanCache>> entries
      GUARDED_BY(mu);
  std::atomic<uint64_t> hits{0};  ///< Executes that adopted an entry
};

/// \brief Session-wide defaults applied at prepare time.
struct SessionOptions {
  /// Default Eval-stage workers when QueryOptions::eval_threads == 0.
  /// 0 = hardware concurrency (sessions are parallel by default).
  size_t eval_threads = 0;
  /// Default NumAns for SQL statements (SQL has no NumAns syntax).
  size_t num_ans = 100;
};

/// \brief Prepared-query factory over one database.
class Session {
 public:
  explicit Session(StaccatoDb* db, SessionOptions opts = {})
      : db_(db), opts_(opts) {}

  /// A session over a sharded database. Prepare plans every shard
  /// independently (each shard's own statistics drive its scan-vs-probe
  /// choice) and Execute scatter-gathers: shard evals fan out over the
  /// shared pool, share one global TopKThreshold when the database has
  /// threshold forwarding on, and the merged ranking is bit-identical to
  /// the 1-shard answer. The shared plan-cache table is per-shard-query
  /// only (fingerprints would collide across shards), so sharded
  /// PreparedQueries rely on their own per-shard plan caches.
  explicit Session(ShardedDb* db, SessionOptions opts = {})
      : db_(nullptr), sdb_(db), opts_(opts) {}

  /// Compiles + plans a pattern query. The returned PreparedQuery remains
  /// valid as long as the database outlives it.
  Result<PreparedQuery> Prepare(Approach approach, const QueryOptions& q);

  /// Parses the paper's SQL subset (single-table select-project with one
  /// LIKE and any number of equality predicates) and prepares it.
  Result<PreparedQuery> PrepareSql(Approach approach, const std::string& sql);

  /// Prepares one PreparedQuery per options entry, all under `approach` —
  /// the natural input to ExecuteBatch. Fails on the first bad query.
  Result<std::vector<PreparedQuery>> PrepareBatch(
      Approach approach, const std::vector<QueryOptions>& queries);

  /// Executes many prepared queries as one batch over shared physical
  /// passes: string-eval members share a single kMAPData scan, SFA-eval
  /// members share one Fetch pass that reads each distinct candidate blob
  /// once, and every (query, candidate) evaluation fans out over the
  /// shared thread pool. Answer sets are bit-identical to calling
  /// Execute on each query individually; per-query plan caches are
  /// consulted and warmed exactly as in a solo Execute. All queries must
  /// have been prepared against this session's database. This is the
  /// multi-user serving shape: N concurrent patterns, one storage pass.
  Result<std::vector<std::vector<Answer>>> ExecuteBatch(
      const std::vector<PreparedQuery*>& queries,
      BatchStats* stats = nullptr);

  StaccatoDb* db() const { return db_; }
  /// The sharded database this session serves, or null for a
  /// single-partition session (exactly one of db() / sharded_db() is set).
  ShardedDb* sharded_db() const { return sdb_; }
  const SessionOptions& options() const { return opts_; }

  /// How many Executes (solo or batched) served CandidateGen/Filter from
  /// the session's shared plan-cache table — i.e. were warmed by a
  /// *different* PreparedQuery with the same plan fingerprint
  /// (QueryStats::shared_plan_hit flags the individual executions).
  uint64_t shared_plan_hits() const {
    return shared_caches_->hits.load(std::memory_order_relaxed);
  }

  /// Per-query tracing (telemetry/trace.h). The sink is shared with every
  /// PreparedQuery this session creates (queries stay valid if the
  /// Session dies first, like the plan-cache table); its enabled bit
  /// seeds from STACCATO_TRACE and can be toggled here at any time.
  /// While enabled, each Execute records a span tree — answer-neutral,
  /// a few dozen spans per query — and publishes it to the sink's
  /// bounded ring (and to QueryStats::trace).
  void set_tracing(bool on) { tracer_->set_enabled(on); }
  bool tracing() const { return tracer_->enabled(); }
  /// The most recent finished traces, newest first.
  std::vector<std::shared_ptr<const telemetry::QueryTrace>> recent_traces()
      const {
    return tracer_->Recent();
  }

 private:
  /// Scatter-gather batch execution: one ExecutePlanBatch per shard fans
  /// out over the pool, every shard's copy of one logical query shares
  /// one forwarded TopKThreshold, and per-query answers merge globally.
  Result<std::vector<std::vector<Answer>>> ExecuteBatchSharded(
      const std::vector<PreparedQuery*>& queries, BatchStats* stats);

  StaccatoDb* db_;
  ShardedDb* sdb_ = nullptr;
  SessionOptions opts_;
  std::shared_ptr<SharedPlanCacheTable> shared_caches_ =
      std::make_shared<SharedPlanCacheTable>();
  std::shared_ptr<telemetry::TraceSink> tracer_ =
      std::make_shared<telemetry::TraceSink>();
};

/// \brief A compiled, planned, repeatedly executable query.
class PreparedQuery {
 public:
  /// Runs the plan and returns the ranked answers. Thread-count changes
  /// never change the answers, only the wall clock — and neither does
  /// early termination: the Eval stage streams candidates against the
  /// running k-th best answer and aborts provably-hopeless ones, but a
  /// pruned candidate can never have entered the top-k. Repeated calls
  /// serve CandidateGen/Filter from the plan cache (bit-identical
  /// results); the cache self-invalidates when the database reloads data.
  /// Non-const because it warms the cache — the honest signal that one
  /// PreparedQuery must not Execute concurrently with itself.
  Result<std::vector<Answer>> Execute(QueryStats* stats = nullptr);

  /// Execute under a per-query budget/cancellation block (rdbms/service.h):
  /// the executor polls `control` at its cancellation points, retries
  /// transient I/O against its retry budget, and either fails with
  /// DeadlineExceeded or (allow_partial) degrades to the exact top-k of
  /// the visited candidates, reporting QueryStats::degraded /
  /// visited_candidates / io_retries. `control` may be null (identical to
  /// the overload above); both parameters are explicit so the overloads
  /// never collide. This is what QueryService::Execute runs.
  Result<std::vector<Answer>> Execute(QueryControl* control,
                                      QueryStats* stats);

  /// Executes and wraps the ranked answers in a streaming cursor.
  Result<Cursor> Open(QueryStats* stats = nullptr);

  /// Stable text rendering of the physical plan.
  std::string Explain() const { return ExplainPlan(plan_); }

  const PlanSpec& plan() const { return plan_; }
  const Dfa& dfa() const { return dfa_; }

  /// Re-binds the answer budget without re-planning. (Cache-safe: the
  /// memoized CandidateSet/bitmap do not depend on NumAns.)
  void set_num_ans(size_t n) {
    plan_.num_ans = n;
    for (PlanSpec& p : shard_plans_) p.num_ans = n;
  }
  /// Re-binds the Eval worker count without re-planning (>= 1).
  void set_eval_threads(size_t t) {
    plan_.eval_threads = t == 0 ? 1 : t;
    for (PlanSpec& p : shard_plans_) p.eval_threads = plan_.eval_threads;
  }
  /// Toggles threshold-pruned top-k Eval without re-planning. Answer sets
  /// are identical either way; only the work performed changes
  /// (QueryStats::eval_pruned / eval_steps_saved report it).
  void set_early_stop(bool on) {
    plan_.early_stop = on;
    for (PlanSpec& p : shard_plans_) p.early_stop = on;
  }

 private:
  friend class Session;
  PreparedQuery(StaccatoDb* db, PlanSpec plan, Dfa dfa,
                std::shared_ptr<SharedPlanCacheTable> shared);
  /// Sharded flavor: one plan (and one plan cache) per shard; `plan_`
  /// mirrors shard 0's plan for Explain()/plan() introspection.
  PreparedQuery(ShardedDb* db, std::vector<PlanSpec> shard_plans, Dfa dfa);

  /// Scatter-gather Execute over the owning ShardedDb (see session.cc).
  /// `control` (nullable) threads the query budget into every shard's
  /// ExecutePlan and is polled again at the per-shard gather. `trace`
  /// (nullable) receives a scatter span with one child span per shard.
  Result<std::vector<Answer>> ExecuteSharded(QueryControl* control,
                                             QueryStats* stats,
                                             telemetry::QueryTrace* trace);

  /// Copies any artifacts the plan will need from the session table into
  /// the local cache, when the local cache lacks them for `generation`.
  /// Returns true if anything was adopted.
  bool AdoptSharedCache(uint64_t generation);
  /// Publishes a snapshot of the warmed local cache into the session
  /// table when it carries more artifacts than the current entry.
  void PublishSharedCache(uint64_t generation);

  StaccatoDb* db_;
  PlanSpec plan_;
  Dfa dfa_;
  /// Memoized CandidateGen/Filter artifacts, generation-tagged (plan.h).
  PlanCache cache_;
  /// The owning session's shared plan-cache table (null only for
  /// hand-built queries) plus this plan's fingerprint into it.
  std::shared_ptr<SharedPlanCacheTable> shared_;
  std::string fingerprint_;
  /// Sharded-execution state (empty / null for single-partition queries):
  /// the owning sharded database, one independently planned PlanSpec per
  /// shard, and one generation-tagged PlanCache per shard.
  ShardedDb* sdb_ = nullptr;
  std::vector<PlanSpec> shard_plans_;
  std::vector<PlanCache> shard_caches_;
  /// The owning session's trace sink (null for hand-built queries =
  /// tracing off). Shared so the query can keep tracing if the Session
  /// dies first.
  std::shared_ptr<telemetry::TraceSink> tracer_;
};

/// \brief Forward-only iteration over one execution's ranked answers.
class Cursor {
 public:
  /// Advances to the next answer; false at end of stream.
  bool Next(Answer* out) {
    if (pos_ >= answers_.size()) return false;
    *out = answers_[pos_++];
    return true;
  }

  size_t position() const { return pos_; }
  size_t size() const { return answers_.size(); }

 private:
  friend class PreparedQuery;
  explicit Cursor(std::vector<Answer> answers)
      : answers_(std::move(answers)) {}

  std::vector<Answer> answers_;
  size_t pos_ = 0;
};

}  // namespace staccato::rdbms
