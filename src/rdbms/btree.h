// B+-tree over string keys with duplicate support and leaf chaining.
// Backs the inverted-index postings table (Section 5.3: "a relational table
// with a B+-tree on top of it") and point lookups in the catalog tables.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace staccato::rdbms {

/// \brief In-memory B+-tree: ordered multimap<string, uint64_t>.
class BPlusTree {
 public:
  BPlusTree();

  void Insert(const std::string& key, uint64_t value);

  /// All values stored under `key`, in insertion-independent sorted order of
  /// the tree traversal.
  std::vector<uint64_t> Lookup(const std::string& key) const;

  /// Number of entries stored under `key`, without materializing the
  /// values. The planner's posting-count estimates use this.
  size_t CountKey(const std::string& key) const;

  /// Visits entries with lo <= key < hi; callback returns false to stop.
  void ScanRange(const std::string& lo, const std::string& hi,
                 const std::function<bool(const std::string&, uint64_t)>& fn) const;

  /// Visits all entries in key order.
  void ScanAll(const std::function<bool(const std::string&, uint64_t)>& fn) const;

  size_t size() const { return size_; }
  int height() const { return height_; }

  /// Number of distinct keys (O(n) walk).
  size_t NumDistinctKeys() const;

 private:
  struct Node {
    bool leaf = true;
    std::vector<std::string> keys;
    // Leaf payloads, parallel to keys.
    std::vector<uint64_t> values;
    // Internal children: children.size() == keys.size() + 1.
    std::vector<std::unique_ptr<Node>> children;
    Node* next = nullptr;  // leaf chain
  };

  struct SplitResult {
    std::string sep;
    std::unique_ptr<Node> right;
  };

  static constexpr size_t kMaxKeys = 64;

  // Inserts into the subtree; returns a split if the node overflowed.
  std::unique_ptr<SplitResult> InsertInto(Node* node, const std::string& key,
                                          uint64_t value);

  const Node* FindLeaf(const std::string& key) const;

  // Visits every value stored under `key`, following the leaf chain across
  // duplicate runs; callback returns false to stop. Lookup and CountKey
  // share this walk.
  void VisitKey(const std::string& key,
                const std::function<bool(uint64_t)>& fn) const;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  int height_ = 1;
};

}  // namespace staccato::rdbms
