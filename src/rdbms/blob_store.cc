#include "rdbms/blob_store.h"

#include "util/serde.h"

namespace staccato::rdbms {

Result<std::unique_ptr<BlobStore>> BlobStore::Create(const std::string& path) {
  auto store = std::unique_ptr<BlobStore>(new BlobStore(path));
  store->file_ = fopen(path.c_str(), "w+b");
  if (store->file_ == nullptr) return Status::IOError("cannot create " + path);
  return store;
}

Result<std::unique_ptr<BlobStore>> BlobStore::Open(const std::string& path) {
  auto store = std::unique_ptr<BlobStore>(new BlobStore(path));
  store->file_ = fopen(path.c_str(), "r+b");
  if (store->file_ == nullptr) return Status::IOError("cannot open " + path);
  fseek(store->file_, 0, SEEK_END);
  store->end_ = static_cast<uint64_t>(ftell(store->file_));
  return store;
}

BlobStore::~BlobStore() {
  if (file_ != nullptr) fclose(file_);
}

Result<BlobId> BlobStore::Put(const std::string& data) {
  if (fseek(file_, static_cast<long>(end_), SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  uint64_t len = data.size();
  if (fwrite(&len, sizeof(len), 1, file_) != 1) {
    return Status::IOError("short write (header)");
  }
  if (!data.empty() && fwrite(data.data(), 1, data.size(), file_) != data.size()) {
    return Status::IOError("short write (payload)");
  }
  BlobId id = end_;
  end_ += sizeof(len) + data.size();
  return id;
}

Result<std::string> BlobStore::Get(BlobId id) {
  if (id >= end_) return Status::NotFound("blob id out of range");
  if (fseek(file_, static_cast<long>(id), SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  uint64_t len = 0;
  if (fread(&len, sizeof(len), 1, file_) != 1) {
    return Status::IOError("short read (header)");
  }
  if (id + sizeof(len) + len > end_) {
    return Status::Corruption("blob length past end of store");
  }
  std::string data(len, '\0');
  if (len > 0 && fread(data.data(), 1, len, file_) != len) {
    return Status::IOError("short read (payload)");
  }
  bytes_read_ += sizeof(len) + len;
  return data;
}

}  // namespace staccato::rdbms
