#include "rdbms/blob_store.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "telemetry/metrics_registry.h"
#include "util/fault_fs.h"
#include "util/serde.h"

namespace staccato::rdbms {

Result<std::unique_ptr<BlobStore>> BlobStore::Create(const std::string& path) {
  auto store = std::unique_ptr<BlobStore>(new BlobStore(path));
  store->file_ = fopen(path.c_str(), "w+b");
  if (store->file_ == nullptr) return Status::IOError("cannot create " + path);
  store->fd_ = fileno(store->file_);
  return store;
}

Result<std::unique_ptr<BlobStore>> BlobStore::Open(const std::string& path) {
  auto store = std::unique_ptr<BlobStore>(new BlobStore(path));
  store->file_ = fopen(path.c_str(), "r+b");
  if (store->file_ == nullptr) return Status::IOError("cannot open " + path);
  store->fd_ = fileno(store->file_);
  fseek(store->file_, 0, SEEK_END);
  store->end_ = static_cast<uint64_t>(ftell(store->file_));
  return store;
}

BlobStore::~BlobStore() {
  if (file_ != nullptr) fclose(file_);
}

Result<BlobId> BlobStore::Put(const std::string& data) {
  if (fseek(file_, static_cast<long>(end_), SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  uint64_t len = data.size();
  STACCATO_RETURN_NOT_OK(util::CheckedWrite(file_, &len, sizeof(len), path_));
  STACCATO_RETURN_NOT_OK(
      util::CheckedWrite(file_, data.data(), data.size(), path_));
  BlobId id = end_;
  end_ += sizeof(len) + data.size();
  dirty_.store(true, std::memory_order_release);
  return id;
}

Status BlobStore::Flush() {
  if (file_ == nullptr) return Status::OK();
  STACCATO_RETURN_NOT_OK(util::CheckedFlush(file_, path_));
  dirty_.store(false, std::memory_order_release);
  return Status::OK();
}

Status BlobStore::Sync() {
  if (file_ == nullptr) return Status::OK();
  STACCATO_RETURN_NOT_OK(util::CheckedSync(file_, path_));
  dirty_.store(false, std::memory_order_release);
  return Status::OK();
}

Result<std::string> BlobStore::Get(BlobId id) {
  std::string data;
  STACCATO_RETURN_NOT_OK(GetInto(id, &data));
  return data;
}

Status BlobStore::GetInto(BlobId id, std::string* out) {
  if (id >= end_) return Status::NotFound("blob id out of range");
  // Writes go through the buffered FILE*; make them visible to pread once
  // per write burst. Double-checked so the steady read state takes no
  // lock. On flush failure the flag stays set — stale bytes must never be
  // served as a successful read.
  if (dirty_.load(std::memory_order_acquire)) {
    util::MutexLock lock(&flush_mu_);
    if (dirty_.load(std::memory_order_relaxed)) {
      if (fflush(file_) != 0) {
        return Status::IOError(std::string("flush before blob read: ") +
                               std::strerror(errno));
      }
      dirty_.store(false, std::memory_order_release);
    }
  }
  uint64_t len = 0;
  STACCATO_RETURN_NOT_OK(
      util::CheckedPRead(fd_, &len, sizeof(len), id, path_));
  // Overflow-safe bound: a corrupt header with len near UINT64_MAX must
  // land here, not wrap past the check into a giant allocation.
  const uint64_t avail = end_ - id;  // id < end_ checked above
  if (avail < sizeof(len) || len > avail - sizeof(len)) {
    return Status::Corruption("blob length past end of store");
  }
  out->resize(len);  // reuses the caller's capacity in steady state
  if (len > 0) {
    STACCATO_RETURN_NOT_OK(
        util::CheckedPRead(fd_, out->data(), len, id + sizeof(len), path_));
  }
  // Count only once the read fully succeeded, and on every path: Get
  // delegates here and GetCached misses read through here, so the three
  // read flavours report identical accounting for the same blob.
  reads_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(sizeof(len) + len, std::memory_order_relaxed);
  // Process-wide mirrors of the per-store counters above, for scrapes.
  struct BlobMetrics {
    telemetry::Counter* reads;
    telemetry::Counter* bytes;
  };
  static const BlobMetrics m = [] {
    auto& r = telemetry::MetricsRegistry::Global();
    return BlobMetrics{r.GetCounter("staccato_blob_reads_total"),
                       r.GetCounter("staccato_blob_bytes_read_total")};
  }();
  m.reads->Increment();
  m.bytes->Increment(sizeof(len) + len);
  return Status::OK();
}

Result<cache::BufferCache::Handle> BlobStore::GetCached(
    BlobId id, const cache::CacheKey& key) {
  return GetCached(key, [id]() -> Result<BlobId> { return id; });
}

Result<cache::BufferCache::Handle> BlobStore::GetCached(
    const cache::CacheKey& key,
    const std::function<Result<BlobId>()>& resolve_id) {
  if (cache_ != nullptr) {
    if (cache::BufferCache::Handle h = cache_->Lookup(key)) {
      reads_.fetch_add(1, std::memory_order_relaxed);
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      lifetime_hits_.fetch_add(1, std::memory_order_relaxed);
      return h;
    }
  }
  STACCATO_ASSIGN_OR_RETURN(BlobId id, resolve_id());
  std::string data;
  STACCATO_RETURN_NOT_OK(GetInto(id, &data));  // counts reads/bytes_read
  if (cache_ == nullptr) {
    return cache::BufferCache::Detached(std::move(data));
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  lifetime_misses_.fetch_add(1, std::memory_order_relaxed);
  return cache_->Insert(key, std::move(data));
}

}  // namespace staccato::rdbms
