#include "rdbms/btree.h"

#include <algorithm>

namespace staccato::rdbms {

BPlusTree::BPlusTree() : root_(std::make_unique<Node>()) {}

std::unique_ptr<BPlusTree::SplitResult> BPlusTree::InsertInto(
    Node* node, const std::string& key, uint64_t value) {
  if (node->leaf) {
    auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
    size_t pos = static_cast<size_t>(it - node->keys.begin());
    node->keys.insert(it, key);
    node->values.insert(node->values.begin() + static_cast<long>(pos), value);
    if (node->keys.size() <= kMaxKeys) return nullptr;
    // Split leaf: right half moves to a new node; separator is the right
    // node's first key.
    auto right = std::make_unique<Node>();
    size_t mid = node->keys.size() / 2;
    right->keys.assign(node->keys.begin() + static_cast<long>(mid), node->keys.end());
    right->values.assign(node->values.begin() + static_cast<long>(mid),
                         node->values.end());
    node->keys.resize(mid);
    node->values.resize(mid);
    right->next = node->next;
    node->next = right.get();
    auto split = std::make_unique<SplitResult>();
    split->sep = right->keys.front();
    split->right = std::move(right);
    return split;
  }
  // Internal: route right of equal separators so duplicate runs stay packed.
  size_t idx = static_cast<size_t>(
      std::upper_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin());
  auto split = InsertInto(node->children[idx].get(), key, value);
  if (split == nullptr) return nullptr;
  node->keys.insert(node->keys.begin() + static_cast<long>(idx), split->sep);
  node->children.insert(node->children.begin() + static_cast<long>(idx) + 1,
                        std::move(split->right));
  if (node->keys.size() <= kMaxKeys) return nullptr;
  // Split internal node: middle key moves up.
  auto right = std::make_unique<Node>();
  right->leaf = false;
  size_t mid = node->keys.size() / 2;
  auto up = std::make_unique<SplitResult>();
  up->sep = node->keys[mid];
  right->keys.assign(node->keys.begin() + static_cast<long>(mid) + 1,
                     node->keys.end());
  for (size_t i = mid + 1; i < node->children.size(); ++i) {
    right->children.push_back(std::move(node->children[i]));
  }
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  up->right = std::move(right);
  return up;
}

void BPlusTree::Insert(const std::string& key, uint64_t value) {
  auto split = InsertInto(root_.get(), key, value);
  if (split != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->keys.push_back(std::move(split->sep));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
    ++height_;
  }
  ++size_;
}

const BPlusTree::Node* BPlusTree::FindLeaf(const std::string& key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    // Descend left of equal separators so the scan starts at the first
    // occurrence of a duplicate run.
    size_t idx = static_cast<size_t>(
        std::lower_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    node = node->children[idx].get();
  }
  return node;
}

void BPlusTree::VisitKey(const std::string& key,
                         const std::function<bool(uint64_t)>& fn) const {
  const Node* leaf = FindLeaf(key);
  while (leaf != nullptr) {
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    for (size_t i = static_cast<size_t>(it - leaf->keys.begin());
         i < leaf->keys.size(); ++i) {
      if (leaf->keys[i] != key) return;
      if (!fn(leaf->values[i])) return;
    }
    leaf = leaf->next;  // a duplicate run may spill into the next leaf
  }
}

std::vector<uint64_t> BPlusTree::Lookup(const std::string& key) const {
  std::vector<uint64_t> out;
  VisitKey(key, [&](uint64_t v) {
    out.push_back(v);
    return true;
  });
  return out;
}

size_t BPlusTree::CountKey(const std::string& key) const {
  size_t n = 0;
  VisitKey(key, [&](uint64_t) {
    ++n;
    return true;
  });
  return n;
}

void BPlusTree::ScanRange(
    const std::string& lo, const std::string& hi,
    const std::function<bool(const std::string&, uint64_t)>& fn) const {
  const Node* leaf = FindLeaf(lo);
  while (leaf != nullptr) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (leaf->keys[i] < lo) continue;
      if (leaf->keys[i] >= hi) return;
      if (!fn(leaf->keys[i], leaf->values[i])) return;
    }
    leaf = leaf->next;
  }
}

void BPlusTree::ScanAll(
    const std::function<bool(const std::string&, uint64_t)>& fn) const {
  const Node* node = root_.get();
  while (!node->leaf) node = node->children.front().get();
  while (node != nullptr) {
    for (size_t i = 0; i < node->keys.size(); ++i) {
      if (!fn(node->keys[i], node->values[i])) return;
    }
    node = node->next;
  }
}

size_t BPlusTree::NumDistinctKeys() const {
  size_t n = 0;
  const std::string* prev = nullptr;
  std::string last;
  ScanAll([&](const std::string& k, uint64_t) {
    if (prev == nullptr || k != last) {
      ++n;
      last = k;
      prev = &last;
    }
    return true;
  });
  return n;
}

}  // namespace staccato::rdbms
