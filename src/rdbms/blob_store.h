// Append-only blob store: the OID-addressed large-object storage the
// FullSFA and StaccatoGraph columns point into (the paper stores serialized
// transducers as Postgres large objects).
//
// Concurrency contract: Get/GetInto/GetCached are safe to call from any
// number of threads at once — reads use positioned I/O (pread) on the
// underlying descriptor, so they share no file-position state and proceed
// fully in parallel. This is the storage half of the executor's parallel
// Fetch stage. Put and Flush (and the load-time truncate/reopen in
// StaccatoDb::Load) require external exclusion: no concurrent Gets while
// the store is being written.
//
// Cache-aware reads: attach a shared BufferCache with set_cache and read
// through GetCached, keyed on (representation, doc, load_generation) via
// BlobCacheKey. A hit pins the cached bytes (no heap-table access, no
// pread); a miss reads from disk and installs the blob under the key.
// Because the key carries the database's load generation, Load /
// BuildInvertedIndex invalidation falls out of the existing generation
// bump — stale entries are simply never matched again.
#pragma once

#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "cache/buffer_cache.h"
#include "util/mutex.h"
#include "util/result.h"

namespace staccato::rdbms {

using BlobId = uint64_t;

/// \brief Read accounting, counted identically by every read path: Get,
/// GetInto, and GetCached all count one `reads`; `bytes_read` counts
/// physical disk bytes only (a cache hit serves no physical bytes and
/// counts under `cache_hits` instead). Counters are shared across
/// concurrent readers, so per-query attribution is only meaningful when
/// one query runs at a time — same caveat as HeapTable::io_stats().
struct BlobIoStats {
  uint64_t reads = 0;         ///< blob reads served (any path)
  uint64_t bytes_read = 0;    ///< physical bytes read from disk
  uint64_t cache_hits = 0;    ///< GetCached served from the buffer cache
  uint64_t cache_misses = 0;  ///< GetCached that had to touch disk
};

/// Blob-cache key namespaces: one per stored representation. Table page
/// namespaces are per-instance counters starting at 1, so these can never
/// collide with them.
inline constexpr uint64_t kCacheSpaceFullSfaBlob = ~uint64_t{0} - 1;
inline constexpr uint64_t kCacheSpaceStaccatoBlob = ~uint64_t{0} - 2;

/// The executor's blob-cache key: (representation, doc, load generation).
inline cache::CacheKey BlobCacheKey(bool full_sfa, uint64_t doc,
                                    uint64_t load_generation) {
  return cache::CacheKey{
      full_sfa ? kCacheSpaceFullSfaBlob : kCacheSpaceStaccatoBlob, doc,
      load_generation};
}

/// \brief File-backed append-only blob store.
class BlobStore {
 public:
  static Result<std::unique_ptr<BlobStore>> Create(const std::string& path);
  static Result<std::unique_ptr<BlobStore>> Open(const std::string& path);

  ~BlobStore();
  BlobStore(const BlobStore&) = delete;
  BlobStore& operator=(const BlobStore&) = delete;

  /// Appends a blob; the returned id is its file offset. External-exclusive
  /// (load path only).
  Result<BlobId> Put(const std::string& data);

  /// Reads a blob back. Concurrent-safe: buffered writes are flushed once
  /// (under a mutex), then the payload is read with pread, which takes no
  /// lock and shares no seek position.
  Result<std::string> Get(BlobId id);

  /// Buffer-reusing flavour for hot read loops: resizes `*out` to the blob
  /// length, reusing its capacity, so a worker that keeps one buffer warm
  /// reads successive blobs without heap allocation. Same concurrency
  /// contract as Get; distinct callers must pass distinct buffers. Reports
  /// exactly the io_stats() a Get of the same blob would.
  Status GetInto(BlobId id, std::string* out);

  /// Cache-aware read: consults the attached buffer cache under `key`; on
  /// a miss, reads the blob from disk and installs it. The returned handle
  /// pins the bytes (zero-copy view) until released. Without an attached
  /// cache this degrades to a plain disk read on a detached handle, so
  /// callers need not branch. Same concurrency contract as Get.
  Result<cache::BufferCache::Handle> GetCached(BlobId id,
                                               const cache::CacheKey& key);

  /// GetCached for callers whose blob id itself costs a lookup (the
  /// executor resolves it with a heap point get): `resolve_id` runs only
  /// on a cache miss, so a hit serves the pinned bytes with no heap-table
  /// access and no pread at all.
  Result<cache::BufferCache::Handle> GetCached(
      const cache::CacheKey& key,
      const std::function<Result<BlobId>()>& resolve_id);

  /// Attaches the process-shared buffer cache (null detaches). Not
  /// synchronized against concurrent reads: wire it at open/load time.
  void set_cache(cache::BufferCache* cache) { cache_ = cache; }
  cache::BufferCache* cache() const { return cache_; }

  /// Pushes buffered writes to disk. Call before another handle truncates
  /// or reopens the same file. The dirty flag is cleared only when the
  /// flush actually succeeds, so a failed flush is retried (and surfaced)
  /// by the next Get instead of silently reading stale bytes.
  Status Flush();

  /// Flush + fsync: the durability barrier Checkpoint uses before
  /// committing a new epoch's blob file.
  Status Sync();

  uint64_t FileBytes() const { return end_; }

  /// Snapshot of the read counters (see BlobIoStats for the contract).
  BlobIoStats io_stats() const {
    BlobIoStats s;
    s.reads = reads_.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
    return s;
  }
  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  void ResetStats() {
    reads_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
    cache_hits_.store(0, std::memory_order_relaxed);
    cache_misses_.store(0, std::memory_order_relaxed);
  }

  /// Lifetime (never reset) cache-hit counters over *blob* reads only —
  /// what the planner's warm-cache Fetch pricing reads. The shared
  /// BufferCache's own stats mix in heap-page traffic, which says nothing
  /// about how warm the blobs are; these do.
  uint64_t lifetime_cache_hits() const {
    return lifetime_hits_.load(std::memory_order_relaxed);
  }
  uint64_t lifetime_cache_misses() const {
    return lifetime_misses_.load(std::memory_order_relaxed);
  }

 private:
  explicit BlobStore(std::string path) : path_(std::move(path)) {}

  std::string path_;
  FILE* file_ = nullptr;
  int fd_ = -1;        ///< fileno(file_), used by the pread read path
  uint64_t end_ = 0;   ///< mutated only under the external-exclusive contract
  std::atomic<bool> dirty_{false};  ///< writes buffered since the last flush
  /// Serializes the flush-before-read (the buffered FILE* state during
  /// fflush); dirty_ is double-checked under it. No named field is
  /// guarded: the steady read path is atomics + pread by design.
  util::Mutex flush_mu_;
  cache::BufferCache* cache_ = nullptr;  ///< borrowed; see set_cache
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> lifetime_hits_{0};    ///< never reset (planner)
  std::atomic<uint64_t> lifetime_misses_{0};  ///< never reset (planner)
};

}  // namespace staccato::rdbms
