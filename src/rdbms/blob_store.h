// Append-only blob store: the OID-addressed large-object storage the
// FullSFA and StaccatoGraph columns point into (the paper stores serialized
// transducers as Postgres large objects).
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "util/result.h"

namespace staccato::rdbms {

using BlobId = uint64_t;

/// \brief File-backed append-only blob store.
class BlobStore {
 public:
  static Result<std::unique_ptr<BlobStore>> Create(const std::string& path);
  static Result<std::unique_ptr<BlobStore>> Open(const std::string& path);

  ~BlobStore();
  BlobStore(const BlobStore&) = delete;
  BlobStore& operator=(const BlobStore&) = delete;

  /// Appends a blob; the returned id is its file offset.
  Result<BlobId> Put(const std::string& data);

  /// Reads a blob back.
  Result<std::string> Get(BlobId id);

  /// Pushes buffered writes to disk. Call before another handle truncates
  /// or reopens the same file.
  void Flush() {
    if (file_ != nullptr) fflush(file_);
  }

  uint64_t FileBytes() const { return end_; }
  uint64_t bytes_read() const { return bytes_read_; }
  void ResetStats() { bytes_read_ = 0; }

 private:
  explicit BlobStore(std::string path) : path_(std::move(path)) {}

  std::string path_;
  FILE* file_ = nullptr;
  uint64_t end_ = 0;
  uint64_t bytes_read_ = 0;
};

}  // namespace staccato::rdbms
