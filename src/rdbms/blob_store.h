// Append-only blob store: the OID-addressed large-object storage the
// FullSFA and StaccatoGraph columns point into (the paper stores serialized
// transducers as Postgres large objects).
//
// Concurrency contract: Get is safe to call from any number of threads at
// once — reads use positioned I/O (pread) on the underlying descriptor, so
// they share no file-position state and proceed fully in parallel. This is
// the storage half of the executor's parallel Fetch stage. Put and Flush
// (and the load-time truncate/reopen in StaccatoDb::Load) require external
// exclusion: no concurrent Gets while the store is being written.
#pragma once

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "util/result.h"

namespace staccato::rdbms {

using BlobId = uint64_t;

/// \brief File-backed append-only blob store.
class BlobStore {
 public:
  static Result<std::unique_ptr<BlobStore>> Create(const std::string& path);
  static Result<std::unique_ptr<BlobStore>> Open(const std::string& path);

  ~BlobStore();
  BlobStore(const BlobStore&) = delete;
  BlobStore& operator=(const BlobStore&) = delete;

  /// Appends a blob; the returned id is its file offset. External-exclusive
  /// (load path only).
  Result<BlobId> Put(const std::string& data);

  /// Reads a blob back. Concurrent-safe: buffered writes are flushed once
  /// (under a mutex), then the payload is read with pread, which takes no
  /// lock and shares no seek position.
  Result<std::string> Get(BlobId id);

  /// Buffer-reusing flavour for hot read loops: resizes `*out` to the blob
  /// length, reusing its capacity, so a worker that keeps one buffer warm
  /// reads successive blobs without heap allocation. Same concurrency
  /// contract as Get; distinct callers must pass distinct buffers.
  Status GetInto(BlobId id, std::string* out);

  /// Pushes buffered writes to disk. Call before another handle truncates
  /// or reopens the same file. The dirty flag is cleared only when the
  /// flush actually succeeds, so a failed flush is retried (and surfaced)
  /// by the next Get instead of silently reading stale bytes.
  void Flush() {
    if (file_ != nullptr && fflush(file_) == 0) {
      dirty_.store(false, std::memory_order_release);
    }
  }

  uint64_t FileBytes() const { return end_; }
  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  void ResetStats() { bytes_read_.store(0, std::memory_order_relaxed); }

 private:
  explicit BlobStore(std::string path) : path_(std::move(path)) {}

  std::string path_;
  FILE* file_ = nullptr;
  int fd_ = -1;        ///< fileno(file_), used by the pread read path
  uint64_t end_ = 0;   ///< mutated only under the external-exclusive contract
  std::atomic<bool> dirty_{false};  ///< writes buffered since the last flush
  std::mutex flush_mu_;             ///< serializes the flush-before-read
  std::atomic<uint64_t> bytes_read_{0};
};

}  // namespace staccato::rdbms
