// Physical query plans for the prepared-query engine.
//
// A probabilistic LIKE query runs as a fixed pipeline of physical
// operators:
//
//   CandidateGen -> [Filter] -> Fetch -> Eval -> TopK
//
//   CandidateGen  enumerates candidate documents, either by full scan or
//                 by probing the dictionary inverted index with the
//                 pattern's anchor term (returns a CandidateSet).
//   Filter        drops candidates whose MasterData row fails an equality
//                 predicate (`Year = 2010`).
//   Fetch         materializes the representation: nothing for the string
//                 approaches (they evaluate during the kMAPData scan), the
//                 serialized SFA blob, or only the projected region around
//                 each posting.
//   Eval          scores each candidate: DFA match over stored strings, or
//                 the DFAxSFA dynamic program. The SFA stage can fan out
//                 over a thread pool; results are positionally gathered so
//                 answers are bit-identical to serial execution.
//   TopK          ranks by probability and keeps NumAns answers.
//
// `BuildPlan` chooses the operators once, at prepare time; `ExecutePlan`
// can then run the same plan many times. `ExplainPlan` renders the chosen
// shape as stable text.
#pragma once

#include <string>
#include <vector>

#include "automata/dfa.h"
#include "automata/trie.h"
#include "indexing/postings.h"
#include "metrics/metrics.h"
#include "rdbms/blob_store.h"
#include "rdbms/btree.h"
#include "rdbms/heap_table.h"
#include "rdbms/sql.h"
#include "util/result.h"

namespace staccato::rdbms {

enum class Approach {
  kMap,
  kKMap,
  kFullSfa,
  kStaccato,
};

const char* ApproachName(Approach a);

/// \brief One LIKE query, as the user states it (logical description).
struct QueryOptions {
  std::string pattern;     ///< the paper's pattern language ('%pat%' implied)
  size_t num_ans = 100;    ///< NumAns (Table 3)
  bool use_index = false;  ///< anchored-term inverted-index acceleration
  bool use_projection = false;  ///< fetch only the projected SFA region
  /// Equality predicates over MasterData columns (`Year = 2010`); filters
  /// candidates before any SFA is fetched or evaluated.
  std::vector<EqualityPredicate> equalities;
  /// Workers for the parallel Eval stage. 1 = serial; 0 = inherit the
  /// session default (which itself defaults to serial for the legacy
  /// StaccatoDb::Query path and hardware concurrency for Sessions).
  size_t eval_threads = 0;
};

/// \brief Execution statistics for the benches.
struct QueryStats {
  double seconds = 0.0;
  uint64_t heap_pages_read = 0;
  uint64_t blob_bytes_read = 0;
  size_t candidates = 0;    ///< SFAs actually evaluated
  size_t index_postings = 0;
  double selectivity = 0.0;  ///< candidates / total SFAs
  // Chosen plan shape, so benches can report what actually executed.
  bool used_index = false;
  bool used_projection = false;
  size_t threads_used = 1;    ///< workers in the Eval stage
  std::string plan_summary;   ///< one-line operator pipeline
};

enum class CandidateSource { kFullScan, kIndexProbe };
enum class FetchMethod { kNone, kFullBlob, kProjection };
enum class EvalStrategy { kStrings, kSfaDp };

const char* CandidateSourceName(CandidateSource s);
const char* FetchMethodName(FetchMethod f);
const char* EvalStrategyName(EvalStrategy e);

/// \brief An equality predicate resolved against the MasterData schema:
/// column position and the literal coerced to the column's type.
struct BoundEquality {
  std::string column;  ///< column name, as written
  int column_index = -1;
  Value value;
};

/// \brief A resolved physical plan. Immutable once built; executing it many
/// times always runs the same operators.
struct PlanSpec {
  Approach approach = Approach::kMap;
  CandidateSource source = CandidateSource::kFullScan;
  FetchMethod fetch = FetchMethod::kNone;
  EvalStrategy eval = EvalStrategy::kStrings;
  bool map_only = false;  ///< strings eval: restrict to the rank-0 row
  std::string pattern;
  std::string anchor;  ///< dictionary term probed; set iff kIndexProbe
  size_t num_ans = 100;
  size_t eval_threads = 1;  ///< resolved worker count (>= 1)
  std::vector<BoundEquality> equalities;
};

/// \brief Everything the executor needs from the database: borrowed views
/// of the storage layer. Plans never own storage.
struct PlanContext {
  HeapTable* master = nullptr;    // MasterData (equality predicates)
  HeapTable* kmap = nullptr;      // kMAPData (string approaches)
  HeapTable* postings = nullptr;  // inverted-index postings relation
  HeapTable* fullsfa = nullptr;   // FullSFAData (blob-holding rows)
  HeapTable* staccato_graph = nullptr;  // StaccatoGraph (blob-holding rows)
  BlobStore* blobs = nullptr;
  BPlusTree* index = nullptr;               // may be null (no index built)
  const DictionaryTrie* dict = nullptr;     // may be null
  const std::vector<RecordId>* fullsfa_rid = nullptr;
  const std::vector<RecordId>* graph_rid = nullptr;
  size_t num_sfas = 0;
};

/// Resolves a logical query into a physical plan: picks index probe vs full
/// scan, projection vs whole-blob fetch, the eval strategy, the worker
/// count, and binds equality literals against the MasterData schema.
/// `default_threads` is used when `q.eval_threads == 0` (0 = hardware
/// concurrency). Fails on unknown columns, type-mismatched literals, or
/// `use_index` without a built index.
Result<PlanSpec> BuildPlan(const PlanContext& ctx, Approach approach,
                           const QueryOptions& q, size_t default_threads);

/// Runs the plan's operator pipeline. Repeated calls with the same plan and
/// DFA return identical answers regardless of `eval_threads`.
Result<std::vector<Answer>> ExecutePlan(const PlanContext& ctx,
                                        const PlanSpec& plan, const Dfa& dfa,
                                        QueryStats* stats);

/// Probes the inverted index with `anchor` (CandidateGen, index flavor).
/// The caller guarantees ctx.index/ctx.dict are present.
Result<CandidateSet> ProbeIndex(const PlanContext& ctx,
                                const std::string& anchor);

/// Multi-line operator-tree rendering, stable across executions:
///
///   QueryPlan approach=STACCATO pattern='Ford'
///     -> CandidateGen source=index-probe anchor='ford'
///     -> Filter Year = 2010
///     -> Fetch method=projection
///     -> Eval strategy=sfa-dp threads=4
///     -> TopK num_ans=100
std::string ExplainPlan(const PlanSpec& plan);

/// Compact one-line shape for QueryStats::plan_summary, e.g.
/// "index-probe>filter>projection>sfa-dp[t=4]>top-100".
std::string PlanSummary(const PlanSpec& plan);

}  // namespace staccato::rdbms
