// Physical query plans for the prepared-query engine.
//
// A probabilistic LIKE query runs as a fixed pipeline of physical
// operators:
//
//   CandidateGen -> [Filter] -> Fetch -> Eval -> TopK
//
//   CandidateGen  enumerates candidate documents, either by full scan or
//                 by probing the dictionary inverted index with the
//                 pattern's anchor term (returns a CandidateSet).
//   Filter        drops candidates whose MasterData row fails an equality
//                 predicate (`Year = 2010`).
//   Fetch         materializes the representation: nothing for the string
//                 approaches (they evaluate during the kMAPData scan), the
//                 serialized SFA blob, or only the projected region around
//                 each posting. The storage read paths are concurrent-safe.
//   Eval          scores each candidate: DFA match over stored strings, or
//                 the DFAxSFA dynamic program. The SFA stage *streams*:
//                 each pool worker fetches one candidate's blob, decodes
//                 it through the flat SfaView into a per-worker scratch
//                 arena (no per-candidate heap objects), and runs the
//                 bounded DP — aborting the moment the candidate's exact
//                 probability upper bound falls below the running k-th
//                 best answer (the TopK threshold, shared and monotone).
//                 Candidates are visited in descending posting-count order
//                 so the threshold tightens early. Results are positionally
//                 gathered, and a pruned candidate provably cannot enter
//                 the top-k, so ranked answers are bit-identical for any
//                 thread count, visit order, or early-stop setting.
//   TopK          ranks by probability and keeps NumAns answers; during
//                 the Eval stage it doubles as the pruning threshold
//                 (the running k-th best probability, which only rises).
//
// `BuildPlan` chooses the operators once, at prepare time, and it chooses
// them *by cost*: a `CostEstimate` prices the full-scan and index-probe
// alternatives from storage statistics (posting counts kept by the index,
// table cardinalities and page counts, blob-store bytes) and the cheaper
// path wins unless the caller pins the choice with `IndexMode`. The
// estimate is frozen into the plan and rendered by `ExplainPlan`.
//
// `ExecutePlan` can then run the same plan many times. A `PlanCache`
// (owned by the PreparedQuery that owns the plan) memoizes the two
// execution artifacts that do not depend on the DFA evaluation itself —
// the CandidateSet produced by an index probe and the equality-filter
// bitmap — so a warm Execute skips CandidateGen and Filter entirely.
// Cache entries are tagged with the database's load generation and are
// discarded whenever the data is reloaded or the index rebuilt; a warm
// Execute is always bit-identical to a cold one.
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "automata/dfa.h"
#include "automata/trie.h"
#include "indexing/postings.h"
#include "metrics/metrics.h"
#include "rdbms/blob_store.h"
#include "rdbms/btree.h"
#include "rdbms/delta.h"
#include "rdbms/heap_table.h"
#include "rdbms/sql.h"
#include "telemetry/trace.h"
#include "util/mutex.h"
#include "util/result.h"

namespace staccato::rdbms {

class QueryControl;  // rdbms/service.h: per-query budget/cancel block

enum class Approach {
  kMap,
  kKMap,
  kFullSfa,
  kStaccato,
};

const char* ApproachName(Approach a);

/// \brief How the planner may use the anchored-term inverted index.
enum class IndexMode {
  kAuto,   ///< cost-based: probe iff the estimate says it is cheaper
  kNever,  ///< always full-scan (the index is not considered)
  kForce,  ///< probe whenever the anchor resolves; error if no index built
};

const char* IndexModeName(IndexMode m);

/// \brief One LIKE query, as the user states it (logical description).
struct QueryOptions {
  std::string pattern;     ///< the paper's pattern language ('%pat%' implied)
  size_t num_ans = 100;    ///< NumAns (Table 3)
  /// Index policy. The default lets the cost model decide; benches that
  /// measure one fixed path pin it with kForce/kNever.
  IndexMode index_mode = IndexMode::kAuto;
  /// Legacy flag: true forces the index path (same as kForce) when
  /// `index_mode` is kAuto. The flag-driven StaccatoDb::Query facade also
  /// maps false to kNever to keep its historical "index only if asked"
  /// behavior.
  bool use_index = false;
  bool use_projection = false;  ///< fetch only the projected SFA region
  /// Equality predicates over MasterData columns (`Year = 2010`); filters
  /// candidates before any SFA is fetched or evaluated.
  std::vector<EqualityPredicate> equalities;
  /// Workers for the parallel Eval stage. 1 = serial; 0 = inherit the
  /// session default (which itself defaults to serial for the legacy
  /// StaccatoDb::Query path and hardware concurrency for Sessions).
  size_t eval_threads = 0;
  /// Allow the Eval stage to abort a candidate's DP as soon as its exact
  /// probability upper bound falls below the running k-th best answer
  /// (threshold-pruned top-k). Never changes the ranked answers — a pruned
  /// candidate provably cannot enter the top-k — so it is on by default;
  /// benches turn it off to measure the unpruned kernel.
  bool early_stop = true;
};

/// \brief Wall-clock seconds per physical-plan stage, measured inside the
/// executor through the telemetry clock seam (telemetry::MonotonicNanos)
/// — the one source of truth for "where did the time go". ExplainPlan
/// renders est-vs-actual from these, and each ShardStats row carries its
/// own copy so per-stage skew across shards is visible. Fetch and Eval
/// stream together per candidate on the SFA path, so they are timed as
/// one stage. Under batching every member of the batch reports the
/// batch-wide stage times (one physical pass serves them all — the same
/// attribution caveat as the batch I/O counters).
struct StageTimings {
  double candidate_gen_s = 0.0;  ///< index probe / candidate enumeration
  double filter_s = 0.0;         ///< equality-bitmap build + apply
  double fetch_eval_s = 0.0;     ///< streamed Fetch+Eval (kMAP scan or SFA DP)
  double topk_s = 0.0;           ///< final RankAnswers
  double total_s = 0.0;          ///< whole plan execution
};

/// \brief One shard's slice of a scatter-gather execution, recorded by
/// ShardedDb::Query (and the sharded Session paths) so skew across shards
/// is visible without a profiler. `ExplainPlan(plan, stats)` renders one
/// "Shards:" line per entry. Every counter here is this shard's own
/// figure — FoldShardStats copies them from the shard's QueryStats, so
/// the solo and batch paths report identically.
struct ShardStats {
  size_t shard = 0;            ///< shard ordinal (directory suffix)
  size_t candidates = 0;       ///< SFAs evaluated on this shard
  size_t eval_pruned = 0;      ///< candidates aborted by the global bound
  uint64_t eval_steps_saved = 0;
  uint64_t cache_hits = 0;     ///< blob reads served warm on this shard
  uint64_t cache_misses = 0;   ///< blob reads that went to disk
  uint64_t heap_pages_read = 0;
  uint64_t blob_bytes_read = 0;
  double est_cost = 0.0;       ///< this shard's planner cost estimate
  StageTimings stage;          ///< this shard's per-stage wall-clock time
};

/// \brief Execution statistics for the benches.
struct QueryStats {
  double seconds = 0.0;
  uint64_t heap_pages_read = 0;
  uint64_t blob_bytes_read = 0;
  size_t candidates = 0;    ///< SFAs actually evaluated
  size_t index_postings = 0;
  double selectivity = 0.0;  ///< candidates / total SFAs
  // Chosen plan shape, so benches can report what actually executed.
  bool used_index = false;
  bool used_projection = false;
  size_t threads_used = 1;    ///< workers in the Eval stage
  std::string plan_summary;   ///< one-line operator pipeline
  // Planner estimate for the chosen path, so estimated vs. actual
  // candidates can be compared from one stats object.
  size_t est_candidates = 0;
  double est_cost = 0.0;      ///< chosen path's total cost units
  // Plan-cache observability: which stages were served from the
  // PreparedQuery's memoized state instead of being recomputed.
  bool filter_from_cache = false;      ///< equality bitmap reused
  bool candidates_from_cache = false;  ///< index CandidateSet reused
  /// Workers in the Fetch stage. The SFA Eval path streams: each worker
  /// fetches and evaluates one candidate at a time, so fetch and eval
  /// share the same fan-out.
  size_t fetch_threads = 1;
  // Buffer-cache observability for the Fetch stage: blob reads served
  // from the shared memory-budgeted cache vs from disk, and the cache's
  // resident bytes when the run finished. Counters are shared across
  // concurrent queries (same caveat as the I/O counters); all three stay
  // zero when the database runs with caching disabled.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_bytes = 0;
  /// This Execute adopted CandidateGen/Filter artifacts from the owning
  /// Session's shared plan-cache table (warmed by another PreparedQuery
  /// with the same plan fingerprint) instead of recomputing them.
  bool shared_plan_hit = false;
  // Early-termination observability. `eval_pruned` counts candidates whose
  // DP aborted because their probability upper bound fell below the
  // running k-th best answer; `eval_steps_saved` totals the DP steps
  // (label-char × dfa-state units, as CountEvalWork counts them) those
  // aborts skipped. Which candidates get pruned depends on scheduling, so
  // under threads > 1 these are not run-to-run deterministic — the ranked
  // answers always are.
  size_t eval_pruned = 0;
  uint64_t eval_steps_saved = 0;
  // Batched-execution observability (ExecutePlanBatch / ExecuteBatch).
  // Under batching the blob/page counters are batch-wide totals — one
  // physical pass serves every member — not per-query attributions.
  size_t batch_size = 0;  ///< queries in the batch this ran in (0 = solo)
  bool shared_candidate_pass = false;  ///< CandidateGen/Fetch shared with
                                       ///< other batch members
  // Scatter-gather observability: one entry per shard when the query ran
  // through a ShardedDb (empty on a single StaccatoDb). The top-level
  // counters above are the cross-shard totals.
  std::vector<ShardStats> shards;
  // Deadline/budget observability (rdbms/service.h). `degraded` = the
  // budget ran out mid-query and, because the caller allowed partial
  // results, the answers are the well-formed top-k of only the
  // `visited_candidates` candidates actually visited (<= `candidates`,
  // which counts the plan's full candidate set). `io_retries` = transient
  // blob-read failures absorbed by retry-with-backoff.
  bool degraded = false;
  size_t visited_candidates = 0;
  uint64_t io_retries = 0;
  /// Per-stage wall-clock breakdown, measured by the executor itself (one
  /// clock seam, see StageTimings). `seconds` above remains the caller-
  /// measured end-to-end figure the benches report; `stage.total_s` is
  /// the executor-measured plan time (excludes session gather overhead).
  StageTimings stage;
  /// The query's span tree when tracing was enabled, else null. Shared
  /// with the session's TraceSink ring; immutable once published.
  std::shared_ptr<const telemetry::QueryTrace> trace;
};

enum class CandidateSource { kFullScan, kIndexProbe };
enum class FetchMethod { kNone, kFullBlob, kProjection };
enum class EvalStrategy { kStrings, kSfaDp };

const char* CandidateSourceName(CandidateSource s);
const char* FetchMethodName(FetchMethod f);
const char* EvalStrategyName(EvalStrategy e);

/// \brief An equality predicate resolved against the MasterData schema:
/// column position and the literal coerced to the column's type.
struct BoundEquality {
  std::string column;  ///< column name, as written
  int column_index = -1;
  Value value;
};

/// \brief Calibrated planner constants, in cost units where 1.0 is one
/// sequential 8 KiB page read. The defaults were derived from
/// `bench_table1_costmodel`'s calibration section (ns-per-DP-step and
/// ns-per-blob-byte on the reference container); see the derivation
/// comment in plan.cc. Exposed as a struct so benches and tests can
/// re-estimate with their own measurements.
struct CostConstants {
  /// A B+-tree descent plus one heap point Get (random, not sequential).
  double point_read_cost = 2.0;
  /// DFA×SFA dynamic-programming cost per serialized blob byte.
  double eval_cost_per_byte = 1.0 / 64.0;
  /// Projection evaluates only the region around each posting instead of
  /// the whole transducer.
  double projection_eval_discount = 0.1;
  /// DFA match over one stored transcription string.
  double string_match_cost_per_tuple = 1.0 / 64.0;
  /// Selectivity guess per equality predicate (no histograms; System R's
  /// classic 1/10).
  double equality_default_selectivity = 0.1;
  /// Cost of serving one blob fetch from the shared buffer cache (shard
  /// hash probe + pin; no heap get, no pread), in cost units. The
  /// estimated hit fraction of fetches is priced at this instead of the
  /// per-byte read cost.
  double cache_hit_cost = 0.25;
};

/// \brief One access path priced by the planner. Costs are abstract "cost
/// units" where 1.0 is roughly one sequential 8 KiB page read; the units
/// only need to be comparable across the alternatives of one query.
struct PathCost {
  bool feasible = false;     ///< the path can run (index built, anchor hits)
  size_t candidates = 0;     ///< est. rows surviving CandidateGen + Filter
  double fetch_bytes = 0.0;  ///< est. blob bytes the Fetch stage reads
  double io_cost = 0.0;      ///< page reads + point gets, in cost units
  double eval_cost = 0.0;    ///< Eval work (size-proportional DP)
  double total = 0.0;        ///< io_cost + eval_cost
};

/// \brief The planner's selectivity/cost estimate, computed at BuildPlan
/// time from statistics only (no data I/O): inverted-index posting counts,
/// heap-table cardinalities and page counts, and blob-store bytes. Frozen
/// into the PlanSpec so ExplainPlan can render it and benches can compare
/// estimated vs. actual candidates.
struct CostEstimate {
  PathCost scan;        ///< full filescan of the representation
  PathCost index;       ///< anchored index probe (feasible only if built)
  size_t table_cardinality = 0;  ///< total SFAs (full-scan candidate count)
  size_t anchor_postings = 0;    ///< postings under the anchor term
  size_t anchor_docs = 0;        ///< distinct docs holding those postings
  /// Estimated fraction of docs passing all equality predicates (the
  /// classic 1/10-per-predicate guess; there are no column histograms).
  double equality_selectivity = 1.0;
  /// Observed lifetime hit rate of the shared buffer cache at plan time
  /// (hits / lookups; 0 when the cache is cold or disabled). The Fetch
  /// terms of both paths price this fraction of blob reads as warm cache
  /// hits (CostConstants::cache_hit_cost) instead of disk I/O.
  double cache_hit_rate = 0.0;
  CandidateSource chosen = CandidateSource::kFullScan;

  const PathCost& chosen_cost() const {
    return chosen == CandidateSource::kIndexProbe ? index : scan;
  }

  /// One-line stable rendering, e.g.
  /// "est-candidates=6 sel=0.10 cost=58.2 [scan=58.2 index=n/a]".
  std::string ToString() const;
};

/// \brief Memoized execution state for one plan, owned by the
/// PreparedQuery that executes it. Entries are valid only for the database
/// load generation they were built at; ExecutePlan discards them when the
/// generation moves (data reloaded, index rebuilt). Reusing a cache entry
/// is bit-identical to recomputing it.
struct PlanCache {
  uint64_t generation = 0;  ///< db load generation the entries belong to
  bool bitmap_valid = false;
  std::vector<char> bitmap;  ///< equality-filter bitmap (Filter operator)
  bool candidates_valid = false;
  CandidateSet candidates;   ///< index-probe result (CandidateGen operator)
};

/// \brief A resolved physical plan. Immutable once built; executing it many
/// times always runs the same operators.
struct PlanSpec {
  Approach approach = Approach::kMap;
  CandidateSource source = CandidateSource::kFullScan;
  FetchMethod fetch = FetchMethod::kNone;
  EvalStrategy eval = EvalStrategy::kStrings;
  bool map_only = false;  ///< strings eval: restrict to the rank-0 row
  std::string pattern;
  std::string anchor;  ///< dictionary term probed; set iff kIndexProbe
  size_t num_ans = 100;
  size_t eval_threads = 1;  ///< resolved worker count (>= 1)
  bool early_stop = true;   ///< threshold-pruned top-k Eval (answer-neutral)
  std::vector<BoundEquality> equalities;
  CostEstimate cost;  ///< the estimate the planner chose `source` from
};

/// \brief Everything the executor needs from the database: borrowed views
/// of the storage layer. Plans never own storage.
struct PlanContext {
  HeapTable* master = nullptr;    // MasterData (equality predicates)
  HeapTable* kmap = nullptr;      // kMAPData (string approaches)
  HeapTable* postings = nullptr;  // inverted-index postings relation
  HeapTable* fullsfa = nullptr;   // FullSFAData (blob-holding rows)
  HeapTable* staccato_graph = nullptr;  // StaccatoGraph (blob-holding rows)
  BlobStore* blobs = nullptr;
  BPlusTree* index = nullptr;               // may be null (no index built)
  const DictionaryTrie* dict = nullptr;     // may be null
  const std::vector<RecordId>* fullsfa_rid = nullptr;
  const std::vector<RecordId>* graph_rid = nullptr;
  size_t num_sfas = 0;
  /// The database-owned shared buffer cache; null when caching is
  /// disabled. The Fetch stage reads blobs through it (with per-worker
  /// pinned handles) and the planner folds its observed hit rate into
  /// CostEstimate.
  cache::BufferCache* cache = nullptr;
  /// Per-term posting statistics maintained by the index builder; may be
  /// null (no index). The cost model reads these instead of probing.
  const TermStatsMap* term_stats = nullptr;
  /// Monotone counter the owning database bumps on every Load /
  /// BuildInvertedIndex / Append / Checkpoint; PlanCache entries from
  /// older generations are invalid.
  uint64_t load_generation = 0;
  /// Bumped only when blob *contents* change per doc id (Load) — Append
  /// and Checkpoint preserve every existing doc's bytes, so blob-cache
  /// entries keyed on this survive them. See BlobCacheKey.
  uint64_t blob_generation = 0;
  /// Snapshot of the mutable delta generation (appended documents). Doc
  /// ids >= delta.base_docs resolve here instead of in the base tables.
  DeltaView delta;
  /// Optional per-query budget/cancellation block (rdbms/service.h),
  /// polled at the executor's cancellation points: query entry, each
  /// worker's fetch->eval stream, the kMAP scan loop, and the per-shard
  /// gather. Null = unbudgeted legacy execution, zero overhead.
  QueryControl* control = nullptr;
  /// Optional per-query trace (telemetry/trace.h). Null = tracing off:
  /// every instrumentation point is one branch. The executor's stage
  /// spans nest under `trace_parent` (the per-shard scatter span on
  /// sharded paths, 0 = top level). Tracing only observes — it must never
  /// change an answer.
  telemetry::QueryTrace* trace = nullptr;
  uint64_t trace_parent = 0;
};

/// Resolves a logical query into a physical plan: prices the full-scan and
/// index-probe alternatives (CostEstimate), picks the cheaper candidate
/// source under IndexMode::kAuto (kForce/kNever pin it), picks projection
/// vs whole-blob fetch, the eval strategy, the worker count, and binds
/// equality literals against the MasterData schema. `default_threads` is
/// used when `q.eval_threads == 0` (0 = hardware concurrency). Fails on
/// unknown columns, type-mismatched literals, or a forced index without a
/// built index.
Result<PlanSpec> BuildPlan(const PlanContext& ctx, Approach approach,
                           const QueryOptions& q, size_t default_threads);

/// Prices the scan and index paths for one query from statistics alone.
/// `anchor` is the resolved dictionary anchor term ("" = none); the index
/// path is feasible only when the anchor resolves. Exposed for tests and
/// benches; BuildPlan calls it internally with the calibrated defaults.
CostEstimate EstimateCost(const PlanContext& ctx, Approach approach,
                          bool use_projection, size_t num_equalities,
                          const std::string& anchor,
                          const CostConstants& consts = CostConstants());

/// \brief The running k-th best probability among answers scored so far:
/// the TopK operator's pruning threshold, shared across Eval workers.
/// Get() returns 0 until k positive answers exist (nothing may be pruned
/// yet) and +inf when k == 0 (every candidate is prunable). Offer() only
/// ever raises the threshold, so a worker acting on a stale Get() prunes
/// against a lower-or-equal threshold than the final one — races only
/// ever make pruning more conservative, never wrong.
///
/// Public (not an executor detail) because ShardedDb's scatter-gather
/// shares one instance across every shard's in-flight Eval: the global
/// k-th best forwards into each shard so the bounded DP prunes across
/// shards, not just within one. Monotonicity makes that sharing safe —
/// cross-shard offers can only tighten another shard's bound.
class TopKThreshold {
 public:
  explicit TopKThreshold(size_t k) : k_(k) {
    if (k_ == 0) {
      cut_.store(std::numeric_limits<double>::infinity(),
                 std::memory_order_relaxed);
      full_.store(true, std::memory_order_relaxed);
    }
  }

  double Get() const { return cut_.load(std::memory_order_relaxed); }

  void Offer(double p) {
    if (k_ == 0 || p <= 0.0) return;
    // Fast path once the heap is full: a probability at or below the
    // current cut cannot raise it.
    if (full_.load(std::memory_order_acquire) && p <= Get()) return;
    util::MutexLock lock(&mu_);
    heap_.push_back(p);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<double>());
    if (heap_.size() > k_) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<double>());
      heap_.pop_back();
    }
    if (heap_.size() == k_) {
      cut_.store(heap_.front(), std::memory_order_relaxed);
      full_.store(true, std::memory_order_release);
    }
  }

 private:
  const size_t k_;
  std::atomic<double> cut_{0.0};
  std::atomic<bool> full_{false};
  util::Mutex mu_;
  std::vector<double> heap_ GUARDED_BY(mu_);  // min-heap of the best k
};

/// Runs the plan's operator pipeline. Repeated calls with the same plan and
/// DFA return identical answers regardless of `eval_threads`. `cache`, when
/// non-null, memoizes the CandidateGen/Filter artifacts across calls: a
/// warm call reuses the equality bitmap and the probed CandidateSet (and
/// reports doing so in `stats`) as long as `ctx.load_generation` still
/// matches the cached generation. `shared_topk`, when non-null, replaces
/// the Eval stage's query-local pruning threshold — ShardedDb passes one
/// instance to every shard's ExecutePlan so the global k-th best bound
/// forwards across shards (answer-neutral: the kernel prunes strictly
/// below the threshold, and the global bound is at least as high as any
/// shard-local one).
Result<std::vector<Answer>> ExecutePlan(const PlanContext& ctx,
                                        const PlanSpec& plan, const Dfa& dfa,
                                        QueryStats* stats,
                                        PlanCache* cache = nullptr,
                                        TopKThreshold* shared_topk = nullptr);

/// Probes the inverted index with `anchor` (CandidateGen, index flavor).
/// The caller guarantees ctx.index/ctx.dict are present.
Result<CandidateSet> ProbeIndex(const PlanContext& ctx,
                                const std::string& anchor);

/// \brief One member of a batched execution: a prepared plan, its compiled
/// DFA, and (optionally) its plan cache and stats sink. Borrowed pointers;
/// the PreparedQuery that owns them must outlive the call.
struct BatchItem {
  const PlanSpec* plan = nullptr;
  const Dfa* dfa = nullptr;
  PlanCache* cache = nullptr;   ///< optional per-query plan cache
  QueryStats* stats = nullptr;  ///< optional per-query stats
  /// Optional externally owned pruning threshold for this query's Eval
  /// stage. A sharded ExecuteBatch points every shard's copy of the same
  /// logical query at one instance, so the global k-th best forwards
  /// across shards exactly as in solo scatter-gather. Null = query-local.
  TopKThreshold* topk = nullptr;
  /// Optional per-query budget/cancel block, overriding the batch-wide
  /// PlanContext::control for this member's checks. Null = use the
  /// context's (possibly null) control.
  QueryControl* control = nullptr;
};

/// \brief Batch-level statistics: what one ExecutePlanBatch physically did,
/// as opposed to the logical per-query view in QueryStats.
struct BatchStats {
  double seconds = 0.0;
  size_t queries = 0;
  /// Physical kMAPData scans performed for the string-eval members
  /// (executed one by one, each member would pay its own).
  size_t kmap_scan_passes = 0;
  /// Distinct blobs fetched for the whole SFA-eval group — each is read
  /// and deserialized once no matter how many queries evaluate it.
  size_t distinct_docs_fetched = 0;
  size_t total_candidates = 0;  ///< Σ per-query candidates (overlap counted)
  size_t fetch_threads = 1;     ///< pool fan-out of the shared Fetch pass
  size_t eval_threads = 1;      ///< pool fan-out of the per-(query,doc) Eval
  /// Batch-wide early-termination totals (Σ of the per-query counters).
  size_t eval_pruned = 0;
  uint64_t eval_steps_saved = 0;
  /// Buffer-cache totals of the shared Fetch pass (blob reads served warm
  /// vs from disk) and the cache's resident bytes afterwards.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_bytes = 0;
  std::vector<QueryStats> per_query;  ///< filled by Session::ExecuteBatch
};

/// Executes many prepared plans as one batch over a single physical pass:
/// string-eval members share one kMAPData scan, and SFA-eval members share
/// one Fetch pass that reads each distinct candidate document's blob once,
/// then evaluates every (query, candidate) pair on the shared pool.
/// Answers are bit-identical to executing each plan alone (per-query
/// accumulation order and per-pair evaluation are unchanged); only the
/// physical data movement is shared. Per-item caches are consulted and
/// warmed exactly as in ExecutePlan.
Result<std::vector<std::vector<Answer>>> ExecutePlanBatch(
    const PlanContext& ctx, const std::vector<BatchItem>& items,
    BatchStats* batch_stats = nullptr);

/// Multi-line operator-tree rendering, stable across executions:
///
///   QueryPlan approach=STACCATO pattern='Ford'
///     -> CandidateGen source=index-probe anchor='ford'
///     -> Filter Year = 2010
///     -> Fetch method=projection
///     -> Eval strategy=sfa-dp threads=4
///     -> TopK num_ans=100
///     Cost: est-candidates=4 sel=0.10 cost=12.3 [scan=58.2 index=12.3]
std::string ExplainPlan(const PlanSpec& plan);

/// ExplainPlan plus an "Actual:" line comparing the estimate against what
/// one execution measured (candidates, cache hits) and a "Pruned:" line
/// reporting the early-termination outcome (candidates aborted, DP steps
/// saved, whether early-stop was enabled for the plan).
std::string ExplainPlan(const PlanSpec& plan, const QueryStats& stats);

/// Compact one-line shape for QueryStats::plan_summary, e.g.
/// "index-probe>filter>projection>sfa-dp[t=4]>top-100".
std::string PlanSummary(const PlanSpec& plan);

/// Folds per-shard execution stats into the caller-facing QueryStats: the
/// top-level counters become cross-shard totals and one ShardStats entry
/// per shard records the skew (ExplainPlan renders them as "Shards:"
/// lines), carrying the shard's full counter set — candidates, pruning,
/// cache hits/misses, heap pages, blob bytes, and per-stage timings.
/// `total_docs` is the global document count for selectivity. The ONLY
/// shard-stats folding function: both the solo scatter-gather path and
/// the batch path route through it, so the per-shard rows can never
/// diverge between them. io_retries is deliberately not folded — every
/// shard reads the one shared QueryControl counter, so summing would
/// multiply it by the shard count; the top-level Execute writes it once.
void FoldShardStats(const std::vector<QueryStats>& per_shard,
                    size_t total_docs, QueryStats* out);

}  // namespace staccato::rdbms
