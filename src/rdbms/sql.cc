#include "rdbms/sql.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "util/strings.h"

namespace staccato::rdbms {

namespace {

struct Token {
  enum class Kind { kWord, kSymbol, kString, kEnd };
  Kind kind;
  std::string text;  // words upper-cased for keyword compare; raw for others
  std::string raw;
};

class Lexer {
 public:
  explicit Lexer(const std::string& sql) : sql_(sql) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < sql_.size()) {
      char c = sql_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '\'') {
        size_t j = i + 1;
        std::string lit;
        while (j < sql_.size() && sql_[j] != '\'') lit.push_back(sql_[j++]);
        if (j >= sql_.size()) {
          return Status::InvalidArgument("unterminated string literal");
        }
        out.push_back({Token::Kind::kString, lit, lit});
        i = j + 1;
        continue;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.') {
        size_t j = i;
        while (j < sql_.size() &&
               (std::isalnum(static_cast<unsigned char>(sql_[j])) ||
                sql_[j] == '_' || sql_[j] == '.')) {
          ++j;
        }
        std::string raw = sql_.substr(i, j - i);
        std::string upper = raw;
        for (char& ch : upper) {
          ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
        }
        out.push_back({Token::Kind::kWord, upper, raw});
        i = j;
        continue;
      }
      if (c == ',' || c == '=' || c == ';' || c == '*' || c == '(' || c == ')') {
        out.push_back({Token::Kind::kSymbol, std::string(1, c), std::string(1, c)});
        ++i;
        continue;
      }
      return Status::InvalidArgument(
          StringPrintf("unexpected character '%c' in SQL", c));
    }
    out.push_back({Token::Kind::kEnd, "", ""});
    return out;
  }

 private:
  const std::string& sql_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> Parse() {
    SelectStatement stmt;
    STACCATO_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    // Select list: '*' or comma-separated identifiers.
    if (PeekSymbol("*")) {
      ++pos_;
      stmt.select_columns.push_back("*");
    } else {
      while (true) {
        STACCATO_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        stmt.select_columns.push_back(col);
        if (!PeekSymbol(",")) break;
        ++pos_;
      }
    }
    STACCATO_RETURN_NOT_OK(ExpectKeyword("FROM"));
    STACCATO_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    if (PeekKeyword("WHERE")) {
      ++pos_;
      while (true) {
        STACCATO_RETURN_NOT_OK(ParsePredicate(&stmt));
        if (!PeekKeyword("AND")) break;
        ++pos_;
      }
    }
    if (PeekKeyword("LIMIT")) {
      ++pos_;
      STACCATO_ASSIGN_OR_RETURN(stmt.limit, ParseLimit());
    }
    if (PeekSymbol(";")) ++pos_;
    if (tokens_[pos_].kind != Token::Kind::kEnd) {
      return Status::InvalidArgument("trailing tokens after statement");
    }
    return stmt;
  }

 private:
  Status ParsePredicate(SelectStatement* stmt) {
    STACCATO_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
    if (PeekKeyword("LIKE")) {
      ++pos_;
      if (tokens_[pos_].kind != Token::Kind::kString) {
        return Status::InvalidArgument("LIKE requires a string literal");
      }
      if (stmt->like.has_value()) {
        return Status::NotImplemented("multiple LIKE predicates");
      }
      LikePredicate like;
      like.column = col;
      std::string lit = tokens_[pos_++].raw;
      if (!lit.empty() && lit.front() == '%') {
        like.anchored_left = false;
        lit.erase(lit.begin());
      }
      if (!lit.empty() && lit.back() == '%') {
        like.anchored_right = false;
        lit.pop_back();
      }
      if (lit.empty()) {
        return Status::InvalidArgument("empty LIKE pattern");
      }
      like.pattern = lit;
      stmt->like = std::move(like);
      return Status::OK();
    }
    if (PeekSymbol("=")) {
      ++pos_;
      const Token& t = tokens_[pos_];
      if (t.kind != Token::Kind::kWord && t.kind != Token::Kind::kString) {
        return Status::InvalidArgument("expected literal after '='");
      }
      ++pos_;
      stmt->equalities.push_back({col, t.raw, t.kind == Token::Kind::kString});
      return Status::OK();
    }
    return Status::InvalidArgument("expected LIKE or '=' after column " + col);
  }

  Result<uint64_t> ParseLimit() {
    const Token& t = tokens_[pos_];
    if (t.kind != Token::Kind::kWord ||
        t.raw.find_first_not_of("0123456789") != std::string::npos ||
        t.raw.empty()) {
      return Status::InvalidArgument("LIMIT requires a non-negative integer");
    }
    errno = 0;
    uint64_t n = std::strtoull(t.raw.c_str(), nullptr, 10);
    if (errno == ERANGE) {
      return Status::InvalidArgument("LIMIT value out of range");
    }
    ++pos_;
    return n;
  }

  bool PeekSymbol(const std::string& s) const {
    return tokens_[pos_].kind == Token::Kind::kSymbol && tokens_[pos_].text == s;
  }
  bool PeekKeyword(const std::string& kw) const {
    return tokens_[pos_].kind == Token::Kind::kWord && tokens_[pos_].text == kw;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) {
      return Status::InvalidArgument("expected " + kw);
    }
    ++pos_;
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (tokens_[pos_].kind != Token::Kind::kWord) {
      return Status::InvalidArgument("expected identifier");
    }
    return tokens_[pos_++].raw;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSelect(const std::string& sql) {
  Lexer lexer(sql);
  STACCATO_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  return Parser(std::move(tokens)).Parse();
}

}  // namespace staccato::rdbms
