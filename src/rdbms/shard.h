// ShardedDb: the corpus partitioned by stable hash into N independent
// StaccatoDb shards, queried by scatter-gather top-k.
//
// Each shard is a complete single-partition database — its own heap
// tables, postings relation, blob store, WAL, and cache namespaces (the
// per-instance CacheKey::space of PR 5 keeps shard pages disjoint inside
// the one shared budget) — living in its own subdirectory `shard.<i>` of
// the database directory. Documents route to shards by a stable hash of
// their global id, so the partition is a pure function of (doc, N):
// reopening, replaying a WAL, or rebuilding the id map always reproduces
// the same placement.
//
// Planning happens per shard: each shard keeps its own TermStats and
// table statistics, so a skewed shard can pick an index probe while its
// siblings scan. Execution is scatter-gather: every shard runs its plan
// over the shared ThreadPool and the per-shard top-k lists merge into one
// global ranking. The key optimization is *cross-shard threshold
// forwarding*: all in-flight shard evals share one TopKThreshold, so the
// running global k-th-best bound — not each shard's local one — drives
// the bounded DP's early termination. A selective query then prunes
// across shards: candidates on shard 3 die against answers found on
// shard 0. Forwarding is answer-neutral (the kernel prunes strictly
// below the threshold, and the global bound is at least as high as any
// local one), so ranked answers are bit-identical to the 1-shard answer
// for every shard count, thread count, and early-stop setting.
//
// Ingest routes Append to the owning shard (per-shard WAL + delta);
// Checkpoint and BuildInvertedIndex run shard-parallel. Session /
// PreparedQuery / ExecuteBatch sit on top unchanged in API — construct a
// Session from a ShardedDb and the prepared-query surface transparently
// plans per shard and scatter-gathers each Execute.
//
// Caveat: global doc ids are stable across shard counts (DocName / Year
// equality predicates are shard-invariant), but the *DataKey / SFANum
// columns stored inside each shard* are shard-local ordinals — schema
//-level predicates over those columns are not portable across N.
#pragma once

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cache/buffer_cache.h"
#include "metrics/metrics.h"
#include "ocr/corpus.h"
#include "rdbms/staccato_db.h"
#include "util/mutex.h"
#include "util/result.h"

namespace staccato::rdbms {

/// \brief Shard-count configuration. `shards == 0` defers to the
/// STACCATO_SHARDS environment variable (default 1). `cache` is the
/// *total* budget for the whole database; it is divided evenly across
/// shards so a 4-shard database uses the same memory as a 1-shard one.
struct ShardConfig {
  size_t shards = 0;
  cache::CacheConfig cache = cache::CacheConfig::Default();
};

/// The directory of shard `i` under database directory `dir`
/// ("<dir>/shard.<i>"). The one place the shard-directory naming scheme
/// lives — scripts/lint.sh confines the literal to rdbms/shard.{h,cc}.
std::string ShardDirName(const std::string& dir, size_t shard);

/// Stable hash partition: the owning shard of global document `doc` among
/// `num_shards` shards. Pure function of its arguments (splitmix64
/// finalizer), identical across runs, platforms, and reopens.
size_t ShardOfDoc(DocId doc, size_t num_shards);

/// \brief Immutable snapshot of the global <-> shard-local document id
/// mapping. Shard answers carry shard-local ids; the gather stage remaps
/// them through `local_to_global` before ranking. Rebuildable from the
/// shard document counts alone (the partition is a pure function of the
/// global id), which is how OpenExisting recovers it.
struct ShardMap {
  std::vector<std::vector<DocId>> local_to_global;  ///< [shard][local] = global
  size_t total = 0;  ///< global documents (== next Append's id)
};

/// \brief N StaccatoDb shards behind the single-partition facade.
///
/// Concurrency: Append is safe against concurrent query execution (it
/// publishes the id-map extension before touching the owning shard, so a
/// query's map snapshot always covers every document its plan contexts
/// can see). Load, Checkpoint, and BuildInvertedIndex keep StaccatoDb's
/// external-exclusive contract: no concurrent queries while they run.
class ShardedDb {
 public:
  /// Creates a fresh sharded database under `dir` (created if needed):
  /// N empty shards in `shard.<i>` subdirectories plus a `shards.meta`
  /// file recording N for OpenExisting.
  static Result<std::unique_ptr<ShardedDb>> Open(const std::string& dir,
                                                 ShardConfig config = {});

  /// Reopens a sharded database: reads the persisted shard count,
  /// reopens every shard (each replays its own WAL), and rebuilds the
  /// global id map from the recovered per-shard document counts. A
  /// nonzero `config.shards` must match the persisted count — the
  /// partition is fixed at creation time.
  static Result<std::unique_ptr<ShardedDb>> OpenExisting(
      const std::string& dir, ShardConfig config = {});

  /// Bulk-loads a dataset: lines are routed to their owning shards (in
  /// ascending global order, so shard-local ids agree with the id map)
  /// and each shard runs its own Load. Corpus name and page numbers are
  /// preserved per line, so DocName / Year values — and therefore
  /// equality-predicate results — are identical for every shard count.
  Status Load(const OcrDataset& dataset, const LoadOptions& opts);

  /// Appends one document to its owning shard (per-shard WAL + delta).
  /// The global id is the next unassigned one; the id map is extended
  /// before the shard append so concurrent queries never observe a
  /// document the map cannot translate.
  Status Append(const DocumentInput& doc);

  /// Checkpoints every shard, shard-parallel (each folds its own delta
  /// into a fresh epoch and truncates its own WAL).
  Status Checkpoint();

  /// Builds each shard's dictionary inverted index, shard-parallel.
  /// Every shard indexes the same dictionary, so an anchor term resolves
  /// identically everywhere (a shard without postings probes to empty).
  Status BuildInvertedIndex(const std::vector<std::string>& dictionary_terms);

  /// Scatter-gather query with the legacy flag-driven semantics of
  /// StaccatoDb::Query (use_index pins the index mode; per-shard eval is
  /// serial — the scatter across shards is the parallelism). Answers
  /// carry global doc ids and are bit-identical to the 1-shard answer.
  Result<std::vector<Answer>> Query(Approach approach, const QueryOptions& q,
                                    QueryStats* stats = nullptr);

  /// Cost-based SQL entry point (mirrors StaccatoDb::QuerySql).
  Result<std::vector<Answer>> QuerySql(Approach approach,
                                       const std::string& sql,
                                       QueryStats* stats = nullptr);

  /// Ground-truth answer set, remapped to global doc ids.
  Result<std::set<DocId>> GroundTruthFor(const std::string& pattern);

  /// Total documents across shards (base + delta).
  size_t NumSfas() const;

  /// Aggregate storage report (field-wise sum over shards).
  StorageReport Storage() const;

  /// Drops every shard's page/blob caches so the next query runs cold.
  Status DropCaches();

  size_t num_shards() const { return shards_.size(); }
  StaccatoDb* shard(size_t i) { return shards_[i].get(); }

  /// Immutable snapshot of the global <-> local id mapping. Taken under
  /// the map mutex; the snapshot itself is safe to read concurrently.
  std::shared_ptr<const ShardMap> map_snapshot() const;

  /// Cross-shard threshold forwarding (on by default). Off = each shard
  /// prunes against its own local top-k only — the independent-top-k
  /// baseline the bench ablates against. Answer sets are identical
  /// either way; only pruned work changes.
  void set_forward_threshold(bool on) {
    forward_threshold_.store(on, std::memory_order_relaxed);
  }
  bool forward_threshold() const {
    return forward_threshold_.load(std::memory_order_relaxed);
  }

 private:
  explicit ShardedDb(std::string dir) : dir_(std::move(dir)) {}

  /// Recomputes the id map from the shards' current document counts
  /// (pure function of total and N) and verifies the per-shard counts
  /// match the stable-hash partition.
  Status RebuildMapLocked() REQUIRES(mu_);

  std::string dir_;
  std::atomic<bool> forward_threshold_{true};
  std::vector<std::unique_ptr<StaccatoDb>> shards_;
  /// Guards the id map pointer (and serializes Append end to end, so a
  /// failed shard append can retract its map extension unobserved).
  mutable util::Mutex mu_;
  std::shared_ptr<const ShardMap> map_ GUARDED_BY(mu_);
};

}  // namespace staccato::rdbms
