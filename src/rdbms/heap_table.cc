#include "rdbms/heap_table.h"

#include <sys/stat.h>

#include <atomic>

#include "util/fault_fs.h"
#include "util/strings.h"

namespace staccato::rdbms {

namespace {
Result<FILE*> OpenFile(const std::string& path, bool truncate) {
  FILE* f = fopen(path.c_str(), truncate ? "w+b" : "r+b");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path);
  }
  return f;
}
}  // namespace

uint64_t HeapTable::NextCacheSpace() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

void HeapTable::SetSharedCache(cache::BufferCache* cache) {
  util::MutexLock lock(&latch_);
  shared_cache_ = cache;
}

Result<std::unique_ptr<HeapTable>> HeapTable::Create(const std::string& path,
                                                     Schema schema,
                                                     size_t pool_pages) {
  auto table = std::unique_ptr<HeapTable>(
      new HeapTable(path, std::move(schema), pool_pages));
  STACCATO_ASSIGN_OR_RETURN(table->file_, OpenFile(path, /*truncate=*/true));
  return table;
}

Result<std::unique_ptr<HeapTable>> HeapTable::Open(const std::string& path,
                                                   Schema schema,
                                                   size_t pool_pages) {
  auto table = std::unique_ptr<HeapTable>(
      new HeapTable(path, std::move(schema), pool_pages));
  STACCATO_ASSIGN_OR_RETURN(table->file_, OpenFile(path, /*truncate=*/false));
  fseek(table->file_, 0, SEEK_END);
  long size = ftell(table->file_);
  if (size < 0 || size % static_cast<long>(kPageSize) != 0) {
    return Status::Corruption("heap file size is not a multiple of page size");
  }
  // No other thread can hold the table yet, but FetchPage's contract is
  // REQUIRES(latch_) — hold it so the contract stays uniform.
  util::MutexLock lock(&table->latch_);
  table->num_pages_ = static_cast<size_t>(size) / kPageSize;
  // Recount tuples (cheap metadata pass; a production system would keep a
  // catalog entry instead).
  for (uint32_t p = 0; p < table->num_pages_; ++p) {
    STACCATO_ASSIGN_OR_RETURN(Frame * f, table->FetchPage(p));
    table->num_tuples_ += f->page.NumSlots();
  }
  return table;
}

HeapTable::~HeapTable() {
  if (file_ != nullptr) {
    (void)Flush();
    fclose(file_);
  }
}

Status HeapTable::WritePage(uint32_t page_no, const SlottedPage& page) {
  if (fseek(file_, static_cast<long>(page_no) * static_cast<long>(kPageSize),
            SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  STACCATO_RETURN_NOT_OK(util::CheckedWrite(file_, page.raw(), kPageSize, path_));
  ++io_.pages_written;
  if (shared_cache_ != nullptr) {
    // Write-through: the shared copy always matches what is on disk, so a
    // later pool miss can serve it without a coherence check. The handle
    // is dropped immediately — the entry goes straight onto the LRU list.
    shared_cache_->Insert(cache::CacheKey{cache_space_, page_no, 0},
                          std::string(page.raw(), kPageSize));
  }
  return Status::OK();
}

Status HeapTable::EvictOne() {
  if (lru_.empty()) return Status::Internal("buffer pool empty");
  uint32_t victim = lru_.back();
  auto it = pool_.find(victim);
  if (it->second.dirty) {
    STACCATO_RETURN_NOT_OK(WritePage(victim, it->second.page));
  }
  lru_.pop_back();
  pool_.erase(it);
  return Status::OK();
}

Result<HeapTable::Frame*> HeapTable::FetchPage(uint32_t page_no) {
  ++io_.page_reads;
  auto it = pool_.find(page_no);
  if (it != pool_.end()) {
    lru_.erase(it->second.lru_it);
    lru_.push_front(page_no);
    it->second.lru_it = lru_.begin();
    return &it->second;
  }
  while (pool_.size() >= pool_cap_) {
    STACCATO_RETURN_NOT_OK(EvictOne());
  }
  Frame frame;
  bool filled = false;
  if (page_no < num_pages_ && shared_cache_ != nullptr) {
    // Second tier: a pool miss consults the shared buffer cache before
    // disk. The pinned bytes are copied into the pool frame and released.
    cache::BufferCache::Handle h =
        shared_cache_->Lookup(cache::CacheKey{cache_space_, page_no, 0});
    if (h && h.value().size() == kPageSize) {
      std::memcpy(frame.page.raw(), h.value().data(), kPageSize);
      ++io_.cache_hits;
      filled = true;
    }
  }
  if (!filled) {
    ++io_.page_misses;
    io_.bytes_read += kPageSize;
    if (page_no < num_pages_) {
      if (fseek(file_,
                static_cast<long>(page_no) * static_cast<long>(kPageSize),
                SEEK_SET) != 0) {
        return Status::IOError("seek failed");
      }
      if (fread(frame.page.raw(), 1, kPageSize, file_) != kPageSize) {
        return Status::IOError("short read");
      }
      if (shared_cache_ != nullptr) {
        shared_cache_->Insert(cache::CacheKey{cache_space_, page_no, 0},
                              std::string(frame.page.raw(), kPageSize));
      }
    } else {
      frame.page.Init();
    }
  }
  auto [ins, ok] = pool_.emplace(page_no, std::move(frame));
  lru_.push_front(page_no);
  ins->second.lru_it = lru_.begin();
  return &ins->second;
}

Result<RecordId> HeapTable::Insert(const Tuple& tuple) {
  util::MutexLock lock(&latch_);
  STACCATO_RETURN_NOT_OK(schema_.CheckTuple(tuple));
  BinaryWriter w;
  schema_.EncodeTuple(tuple, &w);
  const std::string& rec = w.buffer();
  if (rec.size() > kPageSize / 2) {
    return Status::InvalidArgument(
        "record too large for slotted page; store large payloads as blobs");
  }
  uint32_t page_no =
      num_pages_ == 0 ? 0 : static_cast<uint32_t>(num_pages_ - 1);
  STACCATO_ASSIGN_OR_RETURN(Frame * frame, FetchPage(page_no));
  if (!frame->page.Fits(rec.size())) {
    page_no = static_cast<uint32_t>(num_pages_);
    STACCATO_ASSIGN_OR_RETURN(frame, FetchPage(page_no));
  }
  STACCATO_ASSIGN_OR_RETURN(uint16_t slot, frame->page.Insert(rec));
  frame->dirty = true;
  if (page_no >= num_pages_) num_pages_ = page_no + 1;
  ++num_tuples_;
  return RecordId{page_no, slot};
}

Result<Tuple> HeapTable::Get(RecordId rid) {
  util::MutexLock lock(&latch_);
  if (rid.page >= num_pages_) return Status::NotFound("page out of range");
  STACCATO_ASSIGN_OR_RETURN(Frame * frame, FetchPage(rid.page));
  STACCATO_ASSIGN_OR_RETURN(std::string_view rec, frame->page.Get(rid.slot));
  BinaryReader r(rec.data(), rec.size());
  return schema_.DecodeTuple(&r);
}

Status HeapTable::Scan(const std::function<bool(RecordId, const Tuple&)>& fn) {
  util::MutexLock lock(&latch_);
  for (uint32_t p = 0; p < num_pages_; ++p) {
    STACCATO_ASSIGN_OR_RETURN(Frame * frame, FetchPage(p));
    uint16_t slots = frame->page.NumSlots();
    for (uint16_t s = 0; s < slots; ++s) {
      STACCATO_ASSIGN_OR_RETURN(std::string_view rec, frame->page.Get(s));
      BinaryReader r(rec.data(), rec.size());
      STACCATO_ASSIGN_OR_RETURN(Tuple t, schema_.DecodeTuple(&r));
      if (!fn(RecordId{p, s}, t)) return Status::OK();
    }
  }
  return Status::OK();
}

Status HeapTable::SnapshotPages(uint32_t begin, uint32_t end, char* out) {
  util::MutexLock lock(&latch_);
  if (end > num_pages_ || begin > end) {
    return Status::InvalidArgument("page snapshot range out of bounds");
  }
  for (uint32_t p = begin; p < end; ++p) {
    STACCATO_ASSIGN_OR_RETURN(Frame * frame, FetchPage(p));
    std::memcpy(out + static_cast<size_t>(p - begin) * kPageSize,
                frame->page.raw(), kPageSize);
  }
  return Status::OK();
}

Status HeapTable::Flush() {
  util::MutexLock lock(&latch_);
  return FlushLocked();
}

Status HeapTable::FlushLocked() {
  for (auto& [page_no, frame] : pool_) {
    if (frame.dirty) {
      STACCATO_RETURN_NOT_OK(WritePage(page_no, frame.page));
      frame.dirty = false;
    }
  }
  return util::CheckedFlush(file_, path_);
}

Status HeapTable::Sync() {
  util::MutexLock lock(&latch_);
  STACCATO_RETURN_NOT_OK(FlushLocked());
  return util::CheckedSync(file_, path_);
}

Status HeapTable::EvictAll() {
  util::MutexLock lock(&latch_);
  // Write dirty frames back BEFORE dropping them: swallowing a failed
  // write-back here would make the next FetchPage silently serve stale
  // bytes from disk (regression-tested in rdbms_test).
  STACCATO_RETURN_NOT_OK(FlushLocked());
  pool_.clear();
  lru_.clear();
  // A "cold cache" must be cold in both tiers, or the next scan would be
  // served warm from the shared cache.
  if (shared_cache_ != nullptr) shared_cache_->EraseSpace(cache_space_);
  return Status::OK();
}

}  // namespace staccato::rdbms
