#include "rdbms/session.h"

#include "rdbms/sql.h"
#include "rdbms/staccato_db.h"
#include "util/timer.h"

namespace staccato::rdbms {

PreparedQuery::PreparedQuery(StaccatoDb* db, PlanSpec plan, Dfa dfa)
    : db_(db), plan_(std::move(plan)), dfa_(std::move(dfa)) {}

Result<PreparedQuery> Session::Prepare(Approach approach,
                                       const QueryOptions& q) {
  PlanContext ctx = db_->MakePlanContext();
  STACCATO_ASSIGN_OR_RETURN(PlanSpec plan,
                            BuildPlan(ctx, approach, q, opts_.eval_threads));
  STACCATO_ASSIGN_OR_RETURN(Dfa dfa,
                            Dfa::Compile(q.pattern, MatchMode::kContains));
  return PreparedQuery(db_, std::move(plan), std::move(dfa));
}

Result<PreparedQuery> Session::PrepareSql(Approach approach,
                                          const std::string& sql) {
  STACCATO_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  if (!stmt.like.has_value()) {
    return Status::InvalidArgument("statement has no LIKE predicate");
  }
  QueryOptions q;
  q.pattern = stmt.like->pattern;
  q.num_ans = stmt.limit.has_value() ? static_cast<size_t>(*stmt.limit)
                                     : opts_.num_ans;
  q.equalities = stmt.equalities;
  return Prepare(approach, q);
}

Result<std::vector<PreparedQuery>> Session::PrepareBatch(
    Approach approach, const std::vector<QueryOptions>& queries) {
  std::vector<PreparedQuery> prepared;
  prepared.reserve(queries.size());
  for (const QueryOptions& q : queries) {
    STACCATO_ASSIGN_OR_RETURN(PreparedQuery pq, Prepare(approach, q));
    prepared.push_back(std::move(pq));
  }
  return prepared;
}

Result<std::vector<std::vector<Answer>>> Session::ExecuteBatch(
    const std::vector<PreparedQuery*>& queries, BatchStats* stats) {
  Timer timer;
  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->per_query.assign(queries.size(), QueryStats{});
  }
  std::vector<BatchItem> items;
  items.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    PreparedQuery* pq = queries[i];
    if (pq == nullptr) {
      return Status::InvalidArgument("null PreparedQuery in batch");
    }
    if (pq->db_ != db_) {
      return Status::InvalidArgument(
          "batch contains a query prepared against a different database");
    }
    items.push_back({&pq->plan_, &pq->dfa_, &pq->cache_,
                     stats != nullptr ? &stats->per_query[i] : nullptr});
  }
  Result<std::vector<std::vector<Answer>>> result =
      ExecutePlanBatch(db_->MakePlanContext(), items, stats);
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  return result;
}

Result<std::vector<Answer>> PreparedQuery::Execute(QueryStats* stats) {
  Timer timer;
  Result<std::vector<Answer>> result =
      ExecutePlan(db_->MakePlanContext(), plan_, dfa_, stats, &cache_);
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  return result;
}

Result<Cursor> PreparedQuery::Open(QueryStats* stats) {
  STACCATO_ASSIGN_OR_RETURN(std::vector<Answer> answers, Execute(stats));
  return Cursor(std::move(answers));
}

}  // namespace staccato::rdbms
