#include "rdbms/session.h"

#include <deque>
#include <iterator>

#include "rdbms/service.h"
#include "rdbms/shard.h"
#include "rdbms/sql.h"
#include "rdbms/staccato_db.h"
#include "telemetry/clock.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/slow_log.h"
#include "util/parallel.h"
#include "util/strings.h"
#include "util/timer.h"

namespace staccato::rdbms {

namespace {

/// What the memoized artifacts depend on — nothing else: the equality
/// bitmap is a function of the bound predicates, and the memoized
/// CandidateSet of the probed anchor. NumAns, threads, early-stop,
/// projection, and even the approach can differ between two plans that
/// share these artifacts. Every variable-length field is length-prefixed
/// so user-chosen strings (column values can contain any byte) can never
/// collide with the field structure.
std::string PlanFingerprint(const PlanSpec& plan) {
  std::string fp = CandidateSourceName(plan.source);
  auto append_field = [&fp](const std::string& field) {
    fp += StringPrintf("|%zu:", field.size());
    fp += field;
  };
  append_field(plan.anchor);
  for (const BoundEquality& eq : plan.equalities) {
    append_field(eq.column);
    append_field(eq.value.ToString());
  }
  return fp;
}

/// Artifact richness, for "publish only if we know more" comparisons.
int ArtifactCount(const PlanCache& cache) {
  return (cache.bitmap_valid ? 1 : 0) + (cache.candidates_valid ? 1 : 0);
}

/// Session-level query metrics, registered once (see service.cc for the
/// admission-side figures; these count every PreparedQuery::Execute,
/// budgeted or not).
struct SessionMetrics {
  telemetry::Counter* queries;
  telemetry::Counter* failures;
  telemetry::Histogram* query_us;
};

const SessionMetrics& Metrics() {
  static const SessionMetrics m = [] {
    auto& r = telemetry::MetricsRegistry::Global();
    SessionMetrics sm;
    sm.queries = r.GetCounter("staccato_queries_total");
    sm.failures = r.GetCounter("staccato_query_failures_total");
    sm.query_us = r.GetHistogram("staccato_query_us");
    return sm;
  }();
  return m;
}

/// Remaps one shard's ranked answers (shard-local doc ids) to global ids
/// through the id-map snapshot and appends them to `merged`.
Status GatherShardAnswers(const ShardMap& map, size_t shard,
                          const std::vector<Answer>& answers,
                          std::vector<Answer>* merged) {
  const std::vector<DocId>& l2g = map.local_to_global[shard];
  for (const Answer& a : answers) {
    if (a.doc >= l2g.size()) {
      return Status::Internal("shard answer missing from the id map");
    }
    merged->push_back(Answer{l2g[a.doc], a.prob});
  }
  return Status::OK();
}

}  // namespace

PreparedQuery::PreparedQuery(StaccatoDb* db, PlanSpec plan, Dfa dfa,
                             std::shared_ptr<SharedPlanCacheTable> shared)
    : db_(db),
      plan_(std::move(plan)),
      dfa_(std::move(dfa)),
      shared_(std::move(shared)),
      fingerprint_(PlanFingerprint(plan_)) {}

PreparedQuery::PreparedQuery(ShardedDb* db, std::vector<PlanSpec> shard_plans,
                             Dfa dfa)
    : db_(nullptr),
      plan_(shard_plans.front()),
      dfa_(std::move(dfa)),
      sdb_(db),
      shard_plans_(std::move(shard_plans)),
      shard_caches_(shard_plans_.size()) {}

bool PreparedQuery::AdoptSharedCache(uint64_t generation) {
  if (shared_ == nullptr) return false;
  const bool needs_bitmap = !plan_.equalities.empty();
  const bool needs_cands = plan_.source == CandidateSource::kIndexProbe;
  if (!needs_bitmap && !needs_cands) return false;  // nothing is memoized
  const bool local_current = cache_.generation == generation;
  if (local_current && (!needs_bitmap || cache_.bitmap_valid) &&
      (!needs_cands || cache_.candidates_valid)) {
    return false;  // locally warm already
  }
  std::shared_ptr<const PlanCache> entry;
  {
    util::MutexLock lock(&shared_->mu);
    auto it = shared_->entries.find(fingerprint_);
    if (it != shared_->entries.end()) entry = it->second;
  }
  if (entry == nullptr || entry->generation != generation) return false;
  if (!local_current) {
    cache_ = PlanCache{};
    cache_.generation = generation;
  }
  bool adopted = false;
  if (needs_bitmap && !cache_.bitmap_valid && entry->bitmap_valid) {
    cache_.bitmap = entry->bitmap;
    cache_.bitmap_valid = true;
    adopted = true;
  }
  if (needs_cands && !cache_.candidates_valid && entry->candidates_valid) {
    cache_.candidates = entry->candidates;
    cache_.candidates_valid = true;
    adopted = true;
  }
  if (adopted) shared_->hits.fetch_add(1, std::memory_order_relaxed);
  return adopted;
}

void PreparedQuery::PublishSharedCache(uint64_t generation) {
  if (shared_ == nullptr || cache_.generation != generation) return;
  if (ArtifactCount(cache_) == 0) return;
  util::MutexLock lock(&shared_->mu);
  // The table is bounded: these are memoizations, so dropping them only
  // costs a recompute. When full, first purge entries a reload already
  // killed; if every entry is current, start the table over rather than
  // grow without bound in a long-lived serving session.
  if (shared_->entries.size() >= SharedPlanCacheTable::kMaxEntries &&
      shared_->entries.find(fingerprint_) == shared_->entries.end()) {
    for (auto it = shared_->entries.begin(); it != shared_->entries.end();) {
      it = it->second->generation != generation ? shared_->entries.erase(it)
                                                : std::next(it);
    }
    if (shared_->entries.size() >= SharedPlanCacheTable::kMaxEntries) {
      shared_->entries.clear();
    }
  }
  std::shared_ptr<const PlanCache>& slot = shared_->entries[fingerprint_];
  if (slot == nullptr || slot->generation != generation ||
      ArtifactCount(*slot) < ArtifactCount(cache_)) {
    slot = std::make_shared<const PlanCache>(cache_);
  }
}

Result<PreparedQuery> Session::Prepare(Approach approach,
                                       const QueryOptions& q) {
  STACCATO_ASSIGN_OR_RETURN(Dfa dfa,
                            Dfa::Compile(q.pattern, MatchMode::kContains));
  if (sdb_ != nullptr) {
    // Plan every shard independently: each shard's own TermStats and
    // table statistics price its scan-vs-probe choice, so a skewed shard
    // can probe while its siblings scan.
    std::vector<PlanSpec> plans;
    plans.reserve(sdb_->num_shards());
    for (size_t s = 0; s < sdb_->num_shards(); ++s) {
      PlanContext ctx = sdb_->shard(s)->MakePlanContext();
      STACCATO_ASSIGN_OR_RETURN(PlanSpec plan,
                                BuildPlan(ctx, approach, q, opts_.eval_threads));
      plans.push_back(std::move(plan));
    }
    PreparedQuery pq(sdb_, std::move(plans), std::move(dfa));
    pq.tracer_ = tracer_;
    return pq;
  }
  PlanContext ctx = db_->MakePlanContext();
  STACCATO_ASSIGN_OR_RETURN(PlanSpec plan,
                            BuildPlan(ctx, approach, q, opts_.eval_threads));
  PreparedQuery pq(db_, std::move(plan), std::move(dfa), shared_caches_);
  pq.tracer_ = tracer_;
  return pq;
}

Result<PreparedQuery> Session::PrepareSql(Approach approach,
                                          const std::string& sql) {
  STACCATO_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  if (!stmt.like.has_value()) {
    return Status::InvalidArgument("statement has no LIKE predicate");
  }
  QueryOptions q;
  q.pattern = stmt.like->pattern;
  q.num_ans = stmt.limit.has_value() ? static_cast<size_t>(*stmt.limit)
                                     : opts_.num_ans;
  q.equalities = stmt.equalities;
  return Prepare(approach, q);
}

Result<std::vector<PreparedQuery>> Session::PrepareBatch(
    Approach approach, const std::vector<QueryOptions>& queries) {
  std::vector<PreparedQuery> prepared;
  prepared.reserve(queries.size());
  for (const QueryOptions& q : queries) {
    STACCATO_ASSIGN_OR_RETURN(PreparedQuery pq, Prepare(approach, q));
    prepared.push_back(std::move(pq));
  }
  return prepared;
}

Result<std::vector<std::vector<Answer>>> Session::ExecuteBatch(
    const std::vector<PreparedQuery*>& queries, BatchStats* stats) {
  if (sdb_ != nullptr) return ExecuteBatchSharded(queries, stats);
  Timer timer;
  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->per_query.assign(queries.size(), QueryStats{});
  }
  PlanContext ctx = db_->MakePlanContext();
  std::vector<BatchItem> items;
  std::vector<char> adopted(queries.size(), 0);
  items.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    PreparedQuery* pq = queries[i];
    if (pq == nullptr) {
      return Status::InvalidArgument("null PreparedQuery in batch");
    }
    if (pq->db_ != db_) {
      return Status::InvalidArgument(
          "batch contains a query prepared against a different database");
    }
    adopted[i] = pq->AdoptSharedCache(ctx.load_generation) ? 1 : 0;
    items.push_back({&pq->plan_, &pq->dfa_, &pq->cache_,
                     stats != nullptr ? &stats->per_query[i] : nullptr});
  }
  Result<std::vector<std::vector<Answer>>> result =
      ExecutePlanBatch(ctx, items, stats);
  if (result.ok()) {
    for (size_t i = 0; i < queries.size(); ++i) {
      queries[i]->PublishSharedCache(ctx.load_generation);
      if (stats != nullptr && adopted[i]) {
        stats->per_query[i].shared_plan_hit = true;
      }
    }
  }
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  return result;
}

Result<std::vector<std::vector<Answer>>> Session::ExecuteBatchSharded(
    const std::vector<PreparedQuery*>& queries, BatchStats* stats) {
  Timer timer;
  const size_t num_shards = sdb_->num_shards();
  const size_t num_queries = queries.size();
  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->per_query.assign(num_queries, QueryStats{});
  }
  for (PreparedQuery* pq : queries) {
    if (pq == nullptr) {
      return Status::InvalidArgument("null PreparedQuery in batch");
    }
    if (pq->sdb_ != sdb_) {
      return Status::InvalidArgument(
          "batch contains a query prepared against a different database");
    }
  }
  // Plan contexts first, id-map snapshot second: Append publishes its map
  // extension before touching the owning shard, so every document a
  // context can see is translatable (same ordering as ExecuteSharded).
  std::vector<PlanContext> ctxs(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    ctxs[s] = sdb_->shard(s)->MakePlanContext();
  }
  std::shared_ptr<const ShardMap> map = sdb_->map_snapshot();
  // One forwarded threshold per logical query: every shard's copy of that
  // query offers into (and prunes against) the same global k-th best,
  // exactly as in solo scatter-gather. With forwarding off each shard's
  // batch falls back to its own query-local thresholds.
  std::deque<TopKThreshold> thresholds;
  std::vector<TopKThreshold*> forwarded(num_queries, nullptr);
  if (sdb_->forward_threshold()) {
    for (size_t i = 0; i < num_queries; ++i) {
      thresholds.emplace_back(queries[i]->plan_.num_ans);
      forwarded[i] = &thresholds.back();
    }
  }
  std::vector<std::vector<QueryStats>> shard_query_stats(
      num_shards, std::vector<QueryStats>(num_queries));
  std::vector<std::vector<std::vector<Answer>>> shard_results(num_shards);
  std::vector<BatchStats> shard_batch_stats(num_shards);
  // Per-shard Status capture (lambda always returns OK): the first
  // failing shard in shard order is what the caller sees, not whichever
  // failure happened to race into the pool's error slot first.
  std::vector<Status> shard_status(num_shards);
  STACCATO_RETURN_NOT_OK(ParallelFor(num_shards, 1, [&](size_t s) -> Status {
    std::vector<BatchItem> items;
    items.reserve(num_queries);
    for (size_t i = 0; i < num_queries; ++i) {
      PreparedQuery* pq = queries[i];
      items.push_back({&pq->shard_plans_[s], &pq->dfa_, &pq->shard_caches_[s],
                       &shard_query_stats[s][i], forwarded[i]});
    }
    Result<std::vector<std::vector<Answer>>> r =
        ExecutePlanBatch(ctxs[s], items, &shard_batch_stats[s]);
    if (r.ok()) {
      shard_results[s] = std::move(r).ValueUnsafe();
    } else {
      shard_status[s] = r.status();
    }
    return Status::OK();
  }));
  for (size_t s = 0; s < num_shards; ++s) {
    STACCATO_RETURN_NOT_OK(shard_status[s]);
  }
  std::vector<std::vector<Answer>> out(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    std::vector<Answer> merged;
    std::vector<QueryStats> per_shard(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      STACCATO_RETURN_NOT_OK(
          GatherShardAnswers(*map, s, shard_results[s][i], &merged));
      per_shard[s] = shard_query_stats[s][i];
    }
    out[i] = RankAnswers(std::move(merged), queries[i]->plan_.num_ans);
    if (stats != nullptr) {
      FoldShardStats(per_shard, map->total, &stats->per_query[i]);
    }
  }
  if (stats != nullptr) {
    stats->queries = num_queries;
    for (size_t s = 0; s < num_shards; ++s) {
      const BatchStats& bs = shard_batch_stats[s];
      stats->kmap_scan_passes += bs.kmap_scan_passes;
      stats->distinct_docs_fetched += bs.distinct_docs_fetched;
      stats->total_candidates += bs.total_candidates;
      stats->fetch_threads = std::max(stats->fetch_threads, bs.fetch_threads);
      stats->eval_threads = std::max(stats->eval_threads, bs.eval_threads);
      stats->eval_pruned += bs.eval_pruned;
      stats->eval_steps_saved += bs.eval_steps_saved;
      stats->cache_hits += bs.cache_hits;
      stats->cache_misses += bs.cache_misses;
      stats->cache_bytes += bs.cache_bytes;
    }
    stats->seconds = timer.ElapsedSeconds();
  }
  return out;
}

Result<std::vector<Answer>> PreparedQuery::ExecuteSharded(
    QueryControl* control, QueryStats* stats, telemetry::QueryTrace* trace) {
  Timer timer;
  const size_t num_shards = sdb_->num_shards();
  // The scatter span: one child span per shard, so cross-shard skew shows
  // up in the trace the same way it does in the "Shards:" lines.
  telemetry::ScopedSpan scatter_span(trace, "Scatter");
  // Plan contexts first, id-map snapshot second (see ExecuteBatchSharded).
  std::vector<PlanContext> ctxs(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    ctxs[s] = sdb_->shard(s)->MakePlanContext();
    ctxs[s].control = control;  // one budget, shared across every shard
    ctxs[s].trace = trace;
  }
  std::shared_ptr<const ShardMap> map = sdb_->map_snapshot();
  // The forwarded global bound: every shard's Eval offers its answers
  // here and prunes against the global k-th best, so selective queries
  // kill candidates on one shard with answers found on another. Local
  // fallback when forwarding is ablated off.
  TopKThreshold global_topk(plan_.num_ans);
  TopKThreshold* forwarded =
      sdb_->forward_threshold() ? &global_topk : nullptr;
  std::vector<QueryStats> per_shard(num_shards);
  std::vector<std::vector<Answer>> shard_answers(num_shards);
  // Every shard records its own Status and the lambda always returns OK,
  // so (a) a failing shard never tears down its siblings mid-eval and
  // (b) the gather below surfaces the FIRST failing shard's Status in
  // shard order — deterministic, where propagating through the pool's
  // first-error capture would surface whichever failure raced first.
  std::vector<Status> shard_status(num_shards);
  STACCATO_RETURN_NOT_OK(ParallelFor(num_shards, 1, [&](size_t s) -> Status {
    telemetry::ScopedSpan shard_span(trace, StringPrintf("shard-%zu", s),
                                     scatter_span.id());
    ctxs[s].trace_parent = shard_span.id();
    Result<std::vector<Answer>> r =
        ExecutePlan(ctxs[s], shard_plans_[s], dfa_, &per_shard[s],
                    &shard_caches_[s], forwarded);
    if (r.ok()) {
      shard_answers[s] = std::move(r).ValueUnsafe();
    } else {
      shard_status[s] = r.status();
    }
    return Status::OK();
  }));
  // Gather: remap shard-local doc ids to global ones and re-rank. Each
  // shard already returned its own ranked top num_ans, and the global
  // top num_ans is a subset of their union, so one RankAnswers over the
  // concatenation reproduces the 1-shard answer bit for bit. The budget
  // is polled once per shard here (the gather cancellation point); a cut
  // only stops *new* work, so already-computed answers still merge.
  telemetry::ScopedSpan gather_span(trace, "Gather");
  std::vector<Answer> merged;
  for (size_t s = 0; s < num_shards; ++s) {
    STACCATO_RETURN_NOT_OK(shard_status[s]);
    if (control != nullptr && !control->allow_partial()) {
      STACCATO_RETURN_NOT_OK(control->Check());
    }
    STACCATO_RETURN_NOT_OK(
        GatherShardAnswers(*map, s, shard_answers[s], &merged));
  }
  std::vector<Answer> ranked = RankAnswers(std::move(merged), plan_.num_ans);
  if (stats != nullptr) {
    FoldShardStats(per_shard, map->total, stats);
    stats->seconds = timer.ElapsedSeconds();
  }
  return ranked;
}

Result<std::vector<Answer>> PreparedQuery::Execute(QueryStats* stats) {
  return Execute(/*control=*/nullptr, stats);
}

Result<std::vector<Answer>> PreparedQuery::Execute(QueryControl* control,
                                                   QueryStats* stats) {
  Result<std::vector<Answer>> result = Status::Internal("unreachable");
  Timer timer;
  const uint64_t start_ns = telemetry::MonotonicNanos();
  // Tracing is an observer only: `trace` stays null unless this query's
  // session turned it on, and nothing below ever *reads* it, so answers
  // are bit-identical either way (telemetry_test pins this down).
  std::shared_ptr<telemetry::QueryTrace> trace;
  if (tracer_ != nullptr && tracer_->enabled()) {
    trace = telemetry::QueryTrace::Make(plan_.pattern);
    if (control != nullptr && control->admission_wait_ns() > 0) {
      // Measured by the service before Execute began; backdate the span
      // so the trace timeline starts at "entered the admission queue".
      trace->AddSpan("admission-wait", start_ns - control->admission_wait_ns(),
                     start_ns);
    }
  }
  if (sdb_ != nullptr) {
    result = ExecuteSharded(control, stats, trace.get());
  } else {
    PlanContext ctx = db_->MakePlanContext();
    ctx.control = control;
    ctx.trace = trace.get();
    const bool adopted = AdoptSharedCache(ctx.load_generation);
    result = ExecutePlan(ctx, plan_, dfa_, stats, &cache_);
    if (result.ok()) PublishSharedCache(ctx.load_generation);
    if (stats != nullptr) {
      // Set after ExecutePlan: its stats prologue resets every run-scoped
      // field, this one included.
      stats->shared_plan_hit = adopted;
    }
  }
  if (stats != nullptr) {
    if (control != nullptr) {
      // One write at the top level: per-shard stats must not fold this
      // shared counter (see FoldShardStats).
      stats->io_retries = control->io_retries();
      if (result.ok()) stats->degraded = control->cut();
    }
    stats->seconds = timer.ElapsedSeconds();
    stats->trace = trace;  // after the executors: InitQueryStats resets it
  }
  const uint64_t wall_ns = telemetry::MonotonicNanos() - start_ns;
  const SessionMetrics& m = Metrics();
  m.queries->Increment();
  if (!result.ok()) m.failures->Increment();
  m.query_us->Record(wall_ns / 1000);
  if (trace != nullptr) tracer_->Push(trace);
  // Slow-query hook: plan summary, est-vs-actual stats, and the span tree
  // (when traced) go to the capped log. Render cost is paid only by
  // queries already past the threshold.
  telemetry::SlowQueryLog& slow = telemetry::SlowQueryLog::Global();
  if (slow.ShouldLog(wall_ns / 1000000)) {
    std::string entry = StringPrintf(
        "--- slow query: %.1f ms, pattern \"%s\", status %s\n",
        static_cast<double>(wall_ns) / 1e6, plan_.pattern.c_str(),
        result.ok() ? "ok" : result.status().ToString().c_str());
    if (stats != nullptr) {
      entry += ExplainPlan(plan_, *stats);
    } else {
      entry += ExplainPlan(plan_);
    }
    if (trace != nullptr) entry += telemetry::RenderTrace(*trace);
    slow.Append(entry);
  }
  return result;
}

Result<Cursor> PreparedQuery::Open(QueryStats* stats) {
  STACCATO_ASSIGN_OR_RETURN(std::vector<Answer> answers, Execute(stats));
  return Cursor(std::move(answers));
}

}  // namespace staccato::rdbms
