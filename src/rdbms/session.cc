#include "rdbms/session.h"

#include <iterator>

#include "rdbms/sql.h"
#include "rdbms/staccato_db.h"
#include "util/strings.h"
#include "util/timer.h"

namespace staccato::rdbms {

namespace {

/// What the memoized artifacts depend on — nothing else: the equality
/// bitmap is a function of the bound predicates, and the memoized
/// CandidateSet of the probed anchor. NumAns, threads, early-stop,
/// projection, and even the approach can differ between two plans that
/// share these artifacts. Every variable-length field is length-prefixed
/// so user-chosen strings (column values can contain any byte) can never
/// collide with the field structure.
std::string PlanFingerprint(const PlanSpec& plan) {
  std::string fp = CandidateSourceName(plan.source);
  auto append_field = [&fp](const std::string& field) {
    fp += StringPrintf("|%zu:", field.size());
    fp += field;
  };
  append_field(plan.anchor);
  for (const BoundEquality& eq : plan.equalities) {
    append_field(eq.column);
    append_field(eq.value.ToString());
  }
  return fp;
}

/// Artifact richness, for "publish only if we know more" comparisons.
int ArtifactCount(const PlanCache& cache) {
  return (cache.bitmap_valid ? 1 : 0) + (cache.candidates_valid ? 1 : 0);
}

}  // namespace

PreparedQuery::PreparedQuery(StaccatoDb* db, PlanSpec plan, Dfa dfa,
                             std::shared_ptr<SharedPlanCacheTable> shared)
    : db_(db),
      plan_(std::move(plan)),
      dfa_(std::move(dfa)),
      shared_(std::move(shared)),
      fingerprint_(PlanFingerprint(plan_)) {}

bool PreparedQuery::AdoptSharedCache(uint64_t generation) {
  if (shared_ == nullptr) return false;
  const bool needs_bitmap = !plan_.equalities.empty();
  const bool needs_cands = plan_.source == CandidateSource::kIndexProbe;
  if (!needs_bitmap && !needs_cands) return false;  // nothing is memoized
  const bool local_current = cache_.generation == generation;
  if (local_current && (!needs_bitmap || cache_.bitmap_valid) &&
      (!needs_cands || cache_.candidates_valid)) {
    return false;  // locally warm already
  }
  std::shared_ptr<const PlanCache> entry;
  {
    util::MutexLock lock(&shared_->mu);
    auto it = shared_->entries.find(fingerprint_);
    if (it != shared_->entries.end()) entry = it->second;
  }
  if (entry == nullptr || entry->generation != generation) return false;
  if (!local_current) {
    cache_ = PlanCache{};
    cache_.generation = generation;
  }
  bool adopted = false;
  if (needs_bitmap && !cache_.bitmap_valid && entry->bitmap_valid) {
    cache_.bitmap = entry->bitmap;
    cache_.bitmap_valid = true;
    adopted = true;
  }
  if (needs_cands && !cache_.candidates_valid && entry->candidates_valid) {
    cache_.candidates = entry->candidates;
    cache_.candidates_valid = true;
    adopted = true;
  }
  if (adopted) shared_->hits.fetch_add(1, std::memory_order_relaxed);
  return adopted;
}

void PreparedQuery::PublishSharedCache(uint64_t generation) {
  if (shared_ == nullptr || cache_.generation != generation) return;
  if (ArtifactCount(cache_) == 0) return;
  util::MutexLock lock(&shared_->mu);
  // The table is bounded: these are memoizations, so dropping them only
  // costs a recompute. When full, first purge entries a reload already
  // killed; if every entry is current, start the table over rather than
  // grow without bound in a long-lived serving session.
  if (shared_->entries.size() >= SharedPlanCacheTable::kMaxEntries &&
      shared_->entries.find(fingerprint_) == shared_->entries.end()) {
    for (auto it = shared_->entries.begin(); it != shared_->entries.end();) {
      it = it->second->generation != generation ? shared_->entries.erase(it)
                                                : std::next(it);
    }
    if (shared_->entries.size() >= SharedPlanCacheTable::kMaxEntries) {
      shared_->entries.clear();
    }
  }
  std::shared_ptr<const PlanCache>& slot = shared_->entries[fingerprint_];
  if (slot == nullptr || slot->generation != generation ||
      ArtifactCount(*slot) < ArtifactCount(cache_)) {
    slot = std::make_shared<const PlanCache>(cache_);
  }
}

Result<PreparedQuery> Session::Prepare(Approach approach,
                                       const QueryOptions& q) {
  PlanContext ctx = db_->MakePlanContext();
  STACCATO_ASSIGN_OR_RETURN(PlanSpec plan,
                            BuildPlan(ctx, approach, q, opts_.eval_threads));
  STACCATO_ASSIGN_OR_RETURN(Dfa dfa,
                            Dfa::Compile(q.pattern, MatchMode::kContains));
  return PreparedQuery(db_, std::move(plan), std::move(dfa), shared_caches_);
}

Result<PreparedQuery> Session::PrepareSql(Approach approach,
                                          const std::string& sql) {
  STACCATO_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  if (!stmt.like.has_value()) {
    return Status::InvalidArgument("statement has no LIKE predicate");
  }
  QueryOptions q;
  q.pattern = stmt.like->pattern;
  q.num_ans = stmt.limit.has_value() ? static_cast<size_t>(*stmt.limit)
                                     : opts_.num_ans;
  q.equalities = stmt.equalities;
  return Prepare(approach, q);
}

Result<std::vector<PreparedQuery>> Session::PrepareBatch(
    Approach approach, const std::vector<QueryOptions>& queries) {
  std::vector<PreparedQuery> prepared;
  prepared.reserve(queries.size());
  for (const QueryOptions& q : queries) {
    STACCATO_ASSIGN_OR_RETURN(PreparedQuery pq, Prepare(approach, q));
    prepared.push_back(std::move(pq));
  }
  return prepared;
}

Result<std::vector<std::vector<Answer>>> Session::ExecuteBatch(
    const std::vector<PreparedQuery*>& queries, BatchStats* stats) {
  Timer timer;
  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->per_query.assign(queries.size(), QueryStats{});
  }
  PlanContext ctx = db_->MakePlanContext();
  std::vector<BatchItem> items;
  std::vector<char> adopted(queries.size(), 0);
  items.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    PreparedQuery* pq = queries[i];
    if (pq == nullptr) {
      return Status::InvalidArgument("null PreparedQuery in batch");
    }
    if (pq->db_ != db_) {
      return Status::InvalidArgument(
          "batch contains a query prepared against a different database");
    }
    adopted[i] = pq->AdoptSharedCache(ctx.load_generation) ? 1 : 0;
    items.push_back({&pq->plan_, &pq->dfa_, &pq->cache_,
                     stats != nullptr ? &stats->per_query[i] : nullptr});
  }
  Result<std::vector<std::vector<Answer>>> result =
      ExecutePlanBatch(ctx, items, stats);
  if (result.ok()) {
    for (size_t i = 0; i < queries.size(); ++i) {
      queries[i]->PublishSharedCache(ctx.load_generation);
      if (stats != nullptr && adopted[i]) {
        stats->per_query[i].shared_plan_hit = true;
      }
    }
  }
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  return result;
}

Result<std::vector<Answer>> PreparedQuery::Execute(QueryStats* stats) {
  Timer timer;
  PlanContext ctx = db_->MakePlanContext();
  const bool adopted = AdoptSharedCache(ctx.load_generation);
  Result<std::vector<Answer>> result =
      ExecutePlan(ctx, plan_, dfa_, stats, &cache_);
  if (result.ok()) PublishSharedCache(ctx.load_generation);
  if (stats != nullptr) {
    // Set after ExecutePlan: its stats prologue resets every run-scoped
    // field, this one included.
    stats->shared_plan_hit = adopted;
    stats->seconds = timer.ElapsedSeconds();
  }
  return result;
}

Result<Cursor> PreparedQuery::Open(QueryStats* stats) {
  STACCATO_ASSIGN_OR_RETURN(std::vector<Answer> answers, Execute(stats));
  return Cursor(std::move(answers));
}

}  // namespace staccato::rdbms
