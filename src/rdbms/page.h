// Slotted pages: the on-disk unit of the heap tables. Classic layout —
// header and slot directory grow from the front, record payloads grow from
// the back; a record is addressed by (page id, slot id).
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace staccato::rdbms {

inline constexpr size_t kPageSize = 8192;

/// \brief Record address: page number within a table file plus slot index.
struct RecordId {
  uint32_t page = 0;
  uint16_t slot = 0;

  bool operator==(const RecordId& o) const {
    return page == o.page && slot == o.slot;
  }
};

/// 64-bit encoding of a RecordId ([page:48][slot:16]), used to store record
/// addresses as B+-tree payloads. Pack and Unpack must stay inverses; both
/// live here so the bit layout has a single owner.
inline uint64_t PackRecordId(RecordId rid) {
  return (static_cast<uint64_t>(rid.page) << 16) | rid.slot;
}
inline RecordId UnpackRecordId(uint64_t v) {
  return RecordId{static_cast<uint32_t>(v >> 16),
                  static_cast<uint16_t>(v & 0xFFFF)};
}

/// \brief One 8 KiB slotted page.
///
/// Layout:
///   [u16 num_slots][u16 free_end][slot dir: u16 off, u16 len per slot]...
///   ...free space... [record data packed at the tail]
class SlottedPage {
 public:
  SlottedPage() { Init(); }

  void Init() {
    std::memset(data_, 0, kPageSize);
    SetNumSlots(0);
    SetFreeEnd(kPageSize);
  }

  uint16_t NumSlots() const { return ReadU16(0); }

  /// Bytes still available for one more record (including its slot entry).
  size_t FreeSpace() const;

  /// True if a record of `len` bytes fits.
  bool Fits(size_t len) const { return FreeSpace() >= len + kSlotEntrySize; }

  /// Appends a record; fails with OutOfRange if it does not fit.
  Result<uint16_t> Insert(std::string_view record);

  /// Reads the record in `slot`.
  Result<std::string_view> Get(uint16_t slot) const;

  const char* raw() const { return data_; }
  char* raw() { return data_; }

 private:
  static constexpr size_t kHeaderSize = 4;
  static constexpr size_t kSlotEntrySize = 4;

  uint16_t ReadU16(size_t off) const {
    uint16_t v;
    std::memcpy(&v, data_ + off, 2);
    return v;
  }
  void WriteU16(size_t off, uint16_t v) { std::memcpy(data_ + off, &v, 2); }

  uint16_t FreeEnd() const { return ReadU16(2); }
  void SetNumSlots(uint16_t n) { WriteU16(0, n); }
  void SetFreeEnd(uint16_t v) { WriteU16(2, v); }

  char data_[kPageSize];
};

}  // namespace staccato::rdbms
