// A minimal SQL front-end for the query class the paper targets: single
// table select-project with conjunctive WHERE clauses, one of which is a
// LIKE predicate over an OCR document column, e.g.
//
//   SELECT DocID, Loss FROM Claims
//   WHERE Year = 2010 AND DocData LIKE '%Ford%';
//
// The point of Staccato is that this statement is *unchanged* whether
// DocData is plain text or a probabilistic OCR model; the parser extracts
// the pieces the probabilistic executor needs.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/result.h"

namespace staccato::rdbms {

/// \brief An equality predicate `column = value` (value kept as written).
struct EqualityPredicate {
  std::string column;
  std::string value;
};

/// \brief A LIKE predicate `column LIKE '%pattern%'`.
struct LikePredicate {
  std::string column;
  std::string pattern;        ///< with the surrounding %...% stripped
  bool anchored_left = true;  ///< false when the literal started with '%'
  bool anchored_right = true; ///< false when the literal ended with '%'
};

/// \brief Parsed single-table select-project-LIKE statement.
struct SelectStatement {
  std::vector<std::string> select_columns;  // "*" becomes a single "*"
  std::string table;
  std::vector<EqualityPredicate> equalities;
  std::optional<LikePredicate> like;
};

/// Parses the supported SQL subset. Keywords are case-insensitive;
/// identifiers keep their case. A trailing ';' is allowed.
Result<SelectStatement> ParseSelect(const std::string& sql);

}  // namespace staccato::rdbms
