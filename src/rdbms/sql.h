// A minimal SQL front-end for the query class the paper targets: single
// table select-project with conjunctive WHERE clauses, one of which is a
// LIKE predicate over an OCR document column, e.g.
//
//   SELECT DocID, Loss FROM Claims
//   WHERE Year = 2010 AND DocData LIKE '%Ford%';
//
// The point of Staccato is that this statement is *unchanged* whether
// DocData is plain text or a probabilistic OCR model; the parser extracts
// the pieces the probabilistic executor needs.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/result.h"

namespace staccato::rdbms {

/// \brief An equality predicate `column = value` (value kept as written).
/// `quoted` records whether the literal was a quoted string — metadata the
/// planner's literal binding uses: a quoted literal never coerces to a
/// numeric column, while a bare literal may bind to either.
struct EqualityPredicate {
  std::string column;
  std::string value;
  bool quoted = false;
};

/// \brief A LIKE predicate `column LIKE '%pattern%'`.
struct LikePredicate {
  std::string column;
  std::string pattern;        ///< with the surrounding %...% stripped
  bool anchored_left = true;  ///< false when the literal started with '%'
  bool anchored_right = true; ///< false when the literal ended with '%'
};

/// \brief Parsed single-table select-project-LIKE statement.
struct SelectStatement {
  std::vector<std::string> select_columns;  // "*" becomes a single "*"
  std::string table;
  std::vector<EqualityPredicate> equalities;
  std::optional<LikePredicate> like;
  /// `LIMIT n`, when present. The session layer maps it to NumAns (the
  /// ranked-answer budget of the TopK operator).
  std::optional<uint64_t> limit;
};

/// Parses the supported SQL subset:
///
///   SELECT cols FROM table [WHERE pred AND ...] [LIMIT n] [;]
///
/// Keywords are case-insensitive; identifiers keep their case. A trailing
/// ';' is allowed. See docs/SQL.md for the full grammar and error cases.
Result<SelectStatement> ParseSelect(const std::string& sql);

}  // namespace staccato::rdbms
