// Deadline-aware query service: the overload-behavior layer between
// callers and the prepared-query engine.
//
// Three cooperating pieces:
//
//   ExecBudget / QueryControl   A per-query execution budget (wall-clock
//       deadline, DP-step cap, fetched-byte cap) plus the shared control
//       block the executor polls at its cancellation points: the
//       candidate-visit loop, each worker's fetch->eval stream, and the
//       per-shard gather. A blown budget surfaces as
//       Status::DeadlineExceeded — or, with `allow_partial`, as a
//       well-formed top-k over exactly the candidates visited so far
//       (QueryStats::degraded + visited_candidates report it). The
//       control block also owns the retry budget for transient I/O:
//       the Fetch stage retries injected/transient read failures with
//       exponential backoff through AllowRetry().
//
//   ServiceConfig / QueryService   An admission controller wrapping a
//       Session: at most `max_concurrent` queries execute at once, at
//       most `max_queued` wait (bounded by `queue_timeout`), and
//       everything beyond that sheds immediately with
//       Status::Unavailable carrying a "retry-after-ms=N" hint — the
//       hint doubles when the shared ThreadPool itself reports
//       saturation. Shedding early and loudly keeps the admitted
//       queries' tail latency bounded instead of letting every caller
//       queue into collapse.
//
//   ServiceStats   Counters for the open-loop SLO bench and tests:
//       admitted / shed / timed out / completed / deadline-exceeded /
//       degraded.
//
// Clock discipline: every monotonic-clock read for deadlines and queue
// timeouts lives in service.cc (scripts/lint.sh rule 9). The executor
// never reads a clock — it polls QueryControl::Check(), which is a few
// relaxed atomic loads on the happy path.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "rdbms/session.h"
#include "util/mutex.h"
#include "util/result.h"

namespace staccato::rdbms {

/// \brief The per-query execution budget a caller attaches to one
/// Execute. Zero means "unlimited" for every numeric knob.
struct ExecBudget {
  /// Wall-clock deadline relative to query start, in milliseconds.
  /// 0 = no deadline; negative = already expired (the query must fail —
  /// or degrade — before evaluating a single candidate).
  double deadline_ms = 0.0;
  /// Cap on DFAxSFA dynamic-program steps across the whole query
  /// (label-char x dfa-state units, as EvalBound counts them). 0 = none.
  uint64_t max_dp_steps = 0;
  /// Cap on blob bytes fetched by the Fetch stage. 0 = none.
  uint64_t max_fetch_bytes = 0;
  /// Degrade instead of failing: when the budget runs out mid-query the
  /// executor stops visiting new candidates and returns the well-formed
  /// top-k of everything visited so far, with QueryStats::degraded set.
  bool allow_partial = false;
  /// Max transient-I/O retries per query (exponential backoff).
  /// Negative = resolve from STACCATO_IO_RETRIES (fallback 3).
  int max_io_retries = -1;
};

/// \brief The shared control block for one executing query: deadline,
/// work-budget accounting, cooperative cancellation, and the transient-
/// I/O retry budget. Constructed by the service (or a test) just before
/// Execute and threaded through PlanContext::control; safe to poll from
/// every Eval worker concurrently. The happy-path Check() is a handful
/// of relaxed atomic loads plus one clock read.
class QueryControl {
 public:
  /// Arms the deadline (one clock read) and resolves env defaults.
  explicit QueryControl(const ExecBudget& budget);
  QueryControl(const QueryControl&) = delete;
  QueryControl& operator=(const QueryControl&) = delete;

  /// OK while the query may keep doing *new* work; DeadlineExceeded once
  /// cancelled, past the deadline, or over the DP-step / fetched-byte
  /// budget (the message says which). The executor calls this at every
  /// cancellation point; under `allow_partial` it converts the failure
  /// into MarkCut() + a degraded answer instead of propagating it.
  Status Check() const;

  /// Requests cooperative cancellation; the next Check() fails.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// The degrade latch: once set, every worker stops visiting new
  /// candidates (finishing none mid-flight is not required — a candidate
  /// fully evaluated after the cut still entered the visited set before
  /// its result was folded, so the partial top-k stays well-formed).
  void MarkCut() { cut_.store(true, std::memory_order_release); }
  bool cut() const { return cut_.load(std::memory_order_acquire); }

  void AddDpSteps(uint64_t steps) {
    dp_steps_.fetch_add(steps, std::memory_order_relaxed);
  }
  void AddFetchedBytes(uint64_t bytes) {
    fetched_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Consumes one retry from the per-query budget and sleeps the
  /// exponential backoff (1ms * 2^attempt, capped, never past the
  /// deadline). Returns false — without sleeping — when the budget is
  /// exhausted or the deadline has passed, in which case the caller must
  /// surface the underlying I/O error.
  bool AllowRetry();

  bool allow_partial() const { return budget_.allow_partial; }
  uint64_t dp_steps() const {
    return dp_steps_.load(std::memory_order_relaxed);
  }
  uint64_t fetched_bytes() const {
    return fetched_bytes_.load(std::memory_order_relaxed);
  }
  /// Transient-I/O retries actually performed (<= max budget).
  uint64_t io_retries() const {
    return io_retries_.load(std::memory_order_relaxed);
  }

  /// How long this query waited for an admission slot, recorded by the
  /// service before Execute so the trace can show the wait as a span.
  /// Written once, before the query starts — no synchronization needed.
  void set_admission_wait_ns(uint64_t ns) { admission_wait_ns_ = ns; }
  uint64_t admission_wait_ns() const { return admission_wait_ns_; }

 private:
  const ExecBudget budget_;
  int max_io_retries_ = 3;  ///< resolved from budget / STACCATO_IO_RETRIES
  bool has_deadline_ = false;
  /// Deadline as monotonic nanos (same origin as the service.cc clock
  /// reads); the raw integer keeps the chrono clock types out of this
  /// header (scripts/lint.sh rule 9).
  uint64_t deadline_ns_ = 0;
  uint64_t admission_wait_ns_ = 0;
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> cut_{false};
  std::atomic<uint64_t> dp_steps_{0};
  std::atomic<uint64_t> fetched_bytes_{0};
  std::atomic<uint64_t> io_retries_{0};
};

/// \brief Admission-control knobs. Zeros resolve to environment
/// variables, then to built-in defaults, at QueryService construction.
struct ServiceConfig {
  /// Queries executing at once. 0 = STACCATO_MAX_CONCURRENT, else the
  /// shared ThreadPool's capacity.
  size_t max_concurrent = 0;
  /// Queries allowed to wait for an execution slot. 0 = 2*max_concurrent.
  size_t max_queued = 0;
  /// How long a queued query waits before shedding, in milliseconds.
  /// 0 = STACCATO_QUEUE_TIMEOUT_MS, else 100.
  double queue_timeout_ms = 0.0;
  /// Budget applied by Execute calls that do not pass their own.
  ExecBudget default_budget;
};

/// \brief Service counters (monotone, relaxed; snapshot freely).
struct ServiceStats {
  std::atomic<uint64_t> admitted{0};       ///< got an execution slot
  std::atomic<uint64_t> shed{0};           ///< rejected: queue full
  std::atomic<uint64_t> timed_out{0};      ///< rejected: queue wait expired
  std::atomic<uint64_t> completed{0};      ///< Execute returned OK
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> degraded{0};       ///< OK but partial (allow_partial)
};

/// \brief The serving facade: admission control around a Session's
/// PreparedQueries. Thread-safe; one instance serves concurrent callers.
class QueryService {
 public:
  /// `session` is borrowed and must outlive the service.
  explicit QueryService(Session* session, ServiceConfig config = {});

  /// Admits, executes under `budget` (or the config default), releases.
  /// Unavailable = shed or queue-timed-out, with a "retry-after-ms=N"
  /// hint in the message; DeadlineExceeded = admitted but over budget
  /// without allow_partial; OK with stats->degraded = partial answer.
  Result<std::vector<Answer>> Execute(PreparedQuery* query,
                                      QueryStats* stats = nullptr);
  Result<std::vector<Answer>> Execute(PreparedQuery* query,
                                      const ExecBudget& budget,
                                      QueryStats* stats = nullptr);

  /// The admission gate, public so tests (and callers that run the query
  /// themselves) can drive it deterministically. Every successful Admit
  /// must be paired with exactly one Release.
  Status Admit();
  void Release();

  Session* session() const { return session_; }
  const ServiceConfig& config() const { return config_; }
  const ServiceStats& stats() const { return stats_; }
  /// Queries currently holding an execution slot (snapshot).
  size_t active() const;

 private:
  Session* const session_;
  ServiceConfig config_;  ///< resolved: no zeros after construction
  ServiceStats stats_;
  mutable util::Mutex mu_;
  util::CondVar slot_free_{&mu_};
  size_t active_ GUARDED_BY(mu_) = 0;
  size_t waiting_ GUARDED_BY(mu_) = 0;
};

/// Parses the "retry-after-ms=N" hint out of an Unavailable status
/// message; 0 when absent. Callers back off this long before retrying.
uint64_t RetryAfterHintMs(const Status& status);

}  // namespace staccato::rdbms
