#include "rdbms/page.h"

#include "util/strings.h"

namespace staccato::rdbms {

size_t SlottedPage::FreeSpace() const {
  size_t dir_end = kHeaderSize + NumSlots() * kSlotEntrySize;
  size_t free_end = FreeEnd();
  return free_end > dir_end ? free_end - dir_end : 0;
}

Result<uint16_t> SlottedPage::Insert(std::string_view record) {
  if (record.size() > kPageSize - kHeaderSize - kSlotEntrySize) {
    return Status::InvalidArgument("record larger than page");
  }
  if (!Fits(record.size())) {
    return Status::OutOfRange("page full");
  }
  uint16_t slot = NumSlots();
  uint16_t new_end = static_cast<uint16_t>(FreeEnd() - record.size());
  std::memcpy(data_ + new_end, record.data(), record.size());
  size_t dir_off = kHeaderSize + static_cast<size_t>(slot) * kSlotEntrySize;
  WriteU16(dir_off, new_end);
  WriteU16(dir_off + 2, static_cast<uint16_t>(record.size()));
  SetNumSlots(static_cast<uint16_t>(slot + 1));
  SetFreeEnd(new_end);
  return slot;
}

Result<std::string_view> SlottedPage::Get(uint16_t slot) const {
  if (slot >= NumSlots()) {
    return Status::NotFound(StringPrintf("slot %u out of range", slot));
  }
  size_t dir_off = kHeaderSize + static_cast<size_t>(slot) * kSlotEntrySize;
  uint16_t off = ReadU16(dir_off);
  uint16_t len = ReadU16(dir_off + 2);
  if (off + len > kPageSize) {
    return Status::Corruption("slot points past page end");
  }
  return std::string_view(data_ + off, len);
}

}  // namespace staccato::rdbms
