#include "rdbms/value.h"

#include "util/strings.h"

namespace staccato::rdbms {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt: return "INTEGER";
    case ValueType::kDouble: return "FLOAT8";
    case ValueType::kString: return "TEXT";
    case ValueType::kBlobId: return "OID";
  }
  return "?";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt:
      return StringPrintf("%lld", static_cast<long long>(AsInt()));
    case ValueType::kDouble:
      return StringPrintf("%g", AsDouble());
    case ValueType::kString:
      return AsString();
    case ValueType::kBlobId:
      return StringPrintf("oid:%llu", static_cast<unsigned long long>(AsBlobId()));
  }
  return "?";
}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::CheckTuple(const Tuple& t) const {
  if (t.size() != cols_.size()) {
    return Status::InvalidArgument(
        StringPrintf("tuple arity %zu, schema arity %zu", t.size(), cols_.size()));
  }
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].type() != cols_[i].type) {
      return Status::InvalidArgument(StringPrintf(
          "column %zu (%s): expected %s, got %s", i, cols_[i].name.c_str(),
          ValueTypeName(cols_[i].type), ValueTypeName(t[i].type())));
    }
  }
  return Status::OK();
}

void Schema::EncodeTuple(const Tuple& t, BinaryWriter* w) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    switch (cols_[i].type) {
      case ValueType::kInt:
        w->PutI64(t[i].AsInt());
        break;
      case ValueType::kDouble:
        w->PutDouble(t[i].AsDouble());
        break;
      case ValueType::kString:
        w->PutString(t[i].AsString());
        break;
      case ValueType::kBlobId:
        w->PutU64(t[i].AsBlobId());
        break;
    }
  }
}

Result<Tuple> Schema::DecodeTuple(BinaryReader* r) const {
  Tuple t;
  t.reserve(cols_.size());
  for (const Column& col : cols_) {
    switch (col.type) {
      case ValueType::kInt: {
        STACCATO_ASSIGN_OR_RETURN(int64_t v, r->GetI64());
        t.push_back(Value::Int(v));
        break;
      }
      case ValueType::kDouble: {
        STACCATO_ASSIGN_OR_RETURN(double v, r->GetDouble());
        t.push_back(Value::Double(v));
        break;
      }
      case ValueType::kString: {
        STACCATO_ASSIGN_OR_RETURN(std::string v, r->GetString());
        t.push_back(Value::String(std::move(v)));
        break;
      }
      case ValueType::kBlobId: {
        STACCATO_ASSIGN_OR_RETURN(uint64_t v, r->GetU64());
        t.push_back(Value::Blob(v));
        break;
      }
    }
  }
  return t;
}

}  // namespace staccato::rdbms
