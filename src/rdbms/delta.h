// The mutable delta generation: documents appended since the last Load or
// Checkpoint, held fully in memory and merged with the immutable base at
// query time. Each DeltaDoc is immutable once published (shared_ptr to
// const), so a PlanContext snapshot stays valid while later appends land.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace staccato {
namespace rdbms {

/// \brief One k-map row of a delta document: a candidate string and its
/// log probability, rank order matching KBestStrings.
struct DeltaKMapRow {
  std::string str;
  double log_prob = 0.0;
};

/// \brief Everything the query path needs about one appended document —
/// the in-memory mirror of the rows/blobs Load would have written.
struct DeltaDoc {
  std::string doc_name;
  int64_t year = 0;
  std::string truth;
  std::vector<DeltaKMapRow> kmap;  ///< rank-ascending, like the kmap table
  std::string full_blob;           ///< serialized full SFA (fullsfa blob)
  std::string graph_blob;          ///< serialized chunked SFA (graph blob)
  /// term string -> packed postings (PackPosting), sorted ascending per
  /// term exactly as BuildInvertedIndex stores them.
  std::map<std::string, std::vector<uint64_t>> postings;
};

/// \brief Immutable snapshot of the delta taken when a plan context is
/// built: document ids [base_docs, base_docs + docs.size()) resolve here,
/// everything below base_docs resolves in the base tables.
struct DeltaView {
  size_t base_docs = 0;
  std::vector<std::shared_ptr<const DeltaDoc>> docs;

  bool Contains(uint64_t doc) const {
    return doc >= base_docs && doc - base_docs < docs.size();
  }
  const DeltaDoc& Doc(uint64_t doc) const { return *docs[doc - base_docs]; }
};

}  // namespace rdbms
}  // namespace staccato
