// Disk-backed heap tables of slotted pages, with a small LRU buffer pool.
// This is the filescan substrate of every non-indexed query in the paper.
//
// Concurrency contract: every public operation takes the table latch, so
// any mix of Get/Scan/Insert calls from concurrent threads is safe — this
// is what lets the executor's Fetch stage fan point Gets out over the
// shared thread pool. Reads serialize briefly on the latch (even Get
// mutates the buffer pool's LRU state, so a shared lock cannot cover it);
// the expensive parts of a parallel fetch — blob I/O and deserialization —
// happen outside any table. Scan holds the latch for its whole pass, so
// the callback must not re-enter the same table. Compound operations that
// replace table handles wholesale (StaccatoDb::Load / BuildInvertedIndex)
// require external exclusion: no concurrent queries while they run.
// io_stats() snapshots under the latch; concurrent queries share the
// counters, so per-query attribution is only meaningful when one query
// runs at a time.
#pragma once

#include <cstdio>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "cache/buffer_cache.h"
#include "rdbms/page.h"
#include "rdbms/value.h"
#include "util/mutex.h"
#include "util/result.h"

namespace staccato::rdbms {

/// \brief I/O accounting for the benches: logical and physical page reads.
struct IoStats {
  uint64_t page_reads = 0;      ///< pages fetched (buffer pool hits included)
  uint64_t page_misses = 0;     ///< pages read from disk
  uint64_t pages_written = 0;
  uint64_t bytes_read = 0;      ///< physical bytes read from disk
  /// Pool misses served by the shared buffer cache instead of disk (only
  /// nonzero when a shared cache is attached; see SetSharedCache).
  uint64_t cache_hits = 0;
};

/// \brief A heap file of tuples under a fixed schema.
class HeapTable {
 public:
  /// Creates (truncates) a heap file.
  static Result<std::unique_ptr<HeapTable>> Create(const std::string& path,
                                                   Schema schema,
                                                   size_t pool_pages = 64);
  /// Opens an existing heap file.
  static Result<std::unique_ptr<HeapTable>> Open(const std::string& path,
                                                 Schema schema,
                                                 size_t pool_pages = 64);

  ~HeapTable();
  HeapTable(const HeapTable&) = delete;
  HeapTable& operator=(const HeapTable&) = delete;

  const Schema& schema() const { return schema_; }

  Result<RecordId> Insert(const Tuple& tuple);

  Result<Tuple> Get(RecordId rid);

  /// Full filescan in storage order. The callback returns false to stop.
  Status Scan(const std::function<bool(RecordId, const Tuple&)>& fn);

  /// Copies the raw bytes of pages [begin, end) into `out` (caller
  /// provides (end - begin) * kPageSize bytes), taking the table latch
  /// once for the whole range. Pages flow through the same buffer-pool /
  /// shared-cache tiers as Scan and count in io_stats() identically, but
  /// tuple decoding and any per-tuple work happen on the *caller's* copy,
  /// outside the latch — this is what lets the chunked parallel kMAP scan
  /// decode and DFA-match concurrently instead of serializing a whole
  /// Scan pass on the latch. `end` must not exceed NumPages().
  Status SnapshotPages(uint32_t begin, uint32_t end, char* out);

  /// Flushes dirty pages to disk.
  Status Flush();

  /// Flush + fsync: the durability barrier Checkpoint uses before
  /// committing a new epoch's tables.
  Status Sync();

  size_t NumPages() const {
    util::MutexLock lock(&latch_);
    return num_pages_;
  }
  uint64_t NumTuples() const {
    util::MutexLock lock(&latch_);
    return num_tuples_;
  }
  uint64_t FileBytes() const {
    util::MutexLock lock(&latch_);
    return static_cast<uint64_t>(num_pages_) * kPageSize;
  }

  /// Snapshot of the I/O counters, taken under the table latch.
  IoStats io_stats() const {
    util::MutexLock lock(&latch_);
    return io_;
  }
  void ResetIoStats() {
    util::MutexLock lock(&latch_);
    io_ = IoStats{};
  }

  /// Drops all cached pages (simulates a cold cache for benchmarks),
  /// including this table's pages in the shared buffer cache. Dirty pages
  /// are written back first; a failed write-back is returned, not
  /// swallowed — dropping the frame anyway would serve stale bytes from
  /// disk on the next read.
  Status EvictAll();

  /// Attaches the process-shared buffer cache as a second tier behind the
  /// table's own small pool: a pool miss consults the cache (keyed on this
  /// table instance's id + page number) before going to disk, and every
  /// page write is written through to the cache, so re-reads of evicted
  /// pages skip disk while honoring the cache's memory budget. Null
  /// detaches. Not synchronized against concurrent operations: wire it at
  /// open/load time.
  void SetSharedCache(cache::BufferCache* cache);

  /// This table instance's cache-key namespace: unique per HeapTable
  /// object, so a truncate-and-replace (StaccatoDb::Load) can never serve
  /// pages cached by the previous instance.
  uint64_t cache_space() const { return cache_space_; }

 private:
  HeapTable(std::string path, Schema schema, size_t pool_pages)
      : path_(std::move(path)), schema_(std::move(schema)),
        pool_cap_(pool_pages), cache_space_(NextCacheSpace()) {}

  /// Process-wide monotone counter (starting at 1) handing every table
  /// instance a distinct cache-key namespace.
  static uint64_t NextCacheSpace();

  struct Frame {
    SlottedPage page;
    bool dirty = false;
    std::list<uint32_t>::iterator lru_it;
  };

  Result<Frame*> FetchPage(uint32_t page_no) REQUIRES(latch_);
  Status WritePage(uint32_t page_no, const SlottedPage& page)
      REQUIRES(latch_);
  Status EvictOne() REQUIRES(latch_);
  Status FlushLocked() REQUIRES(latch_);

  std::string path_;
  Schema schema_;
  size_t pool_cap_;
  cache::BufferCache* shared_cache_ GUARDED_BY(latch_) = nullptr;
  const uint64_t cache_space_;  ///< per-instance key namespace
  /// Set once by Create/Open before the table is shared; closed by the
  /// destructor. The latch covers every seek/read/write in between.
  FILE* file_ = nullptr;
  size_t num_pages_ GUARDED_BY(latch_) = 0;
  uint64_t num_tuples_ GUARDED_BY(latch_) = 0;
  std::unordered_map<uint32_t, Frame> pool_ GUARDED_BY(latch_);
  std::list<uint32_t> lru_ GUARDED_BY(latch_);  // front = most recent
  IoStats io_ GUARDED_BY(latch_);
  /// Table latch: serializes every public operation (see file comment).
  mutable util::Mutex latch_;
};

}  // namespace staccato::rdbms
