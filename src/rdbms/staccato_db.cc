#include "rdbms/staccato_db.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <unordered_map>

#include "automata/dfa.h"
#include "indexing/index_builder.h"
#include "inference/kbest.h"
#include "rdbms/session.h"
#include "telemetry/clock.h"
#include "telemetry/metrics_registry.h"
#include "util/crc32.h"
#include "util/fault_fs.h"
#include "util/parallel.h"
#include "util/serde.h"
#include "util/strings.h"

namespace staccato::rdbms {

namespace {

// Documents carry a synthetic publication year (Table 5's enclosing
// relational context, e.g. Claims.Year in the paper's running example):
// page p of a corpus is dated kBaseYear + p.
constexpr int64_t kBaseYear = 2010;

Schema MasterSchema() {
  return Schema({{"DataKey", ValueType::kInt},
                 {"DocName", ValueType::kString},
                 {"Year", ValueType::kInt},
                 {"SFANum", ValueType::kInt}});
}
Schema TruthSchema() {
  return Schema({{"DataKey", ValueType::kInt}, {"Data", ValueType::kString}});
}
Schema KMapSchema() {
  return Schema({{"DataKey", ValueType::kInt},
                 {"LineNum", ValueType::kInt},  // rank of the path
                 {"Data", ValueType::kString},
                 {"LogProb", ValueType::kDouble}});
}
Schema FullSfaSchema() {
  return Schema({{"DataKey", ValueType::kInt}, {"SFABlob", ValueType::kBlobId}});
}
Schema StaccatoDataSchema() {
  return Schema({{"DataKey", ValueType::kInt},
                 {"ChunkNum", ValueType::kInt},
                 {"LineNum", ValueType::kInt},
                 {"Data", ValueType::kString},
                 {"LogProb", ValueType::kDouble}});
}
Schema StaccatoGraphSchema() {
  return Schema({{"DataKey", ValueType::kInt}, {"GraphBlob", ValueType::kBlobId}});
}
Schema PostingsSchema() {
  return Schema({{"Term", ValueType::kString},
                 {"DataKey", ValueType::kInt},
                 {"Posting", ValueType::kInt}});
}

// ---- Epoch-suffixed storage paths ------------------------------------------
//
// Checkpoint never rewrites the live epoch's files in place (a crash
// mid-fold would leave, e.g., duplicated kMAPData rows that double match
// probabilities). It writes a complete fresh epoch and then commits it by
// atomically replacing the `staccato.meta` pointer. Epoch 0 keeps the
// legacy unsuffixed names so pre-WAL directories reopen unchanged.

std::string TableFile(const std::string& dir, const char* base,
                      uint64_t epoch) {
  if (epoch == 0) return dir + "/" + base + ".tbl";
  return dir + "/" + base + "." + std::to_string(epoch) + ".tbl";
}

std::string BlobFile(const std::string& dir, uint64_t epoch) {
  if (epoch == 0) return dir + "/blobs.dat";
  return dir + "/blobs." + std::to_string(epoch) + ".dat";
}

std::string MetaPath(const std::string& dir) { return dir + "/staccato.meta"; }

// ---- The epoch pointer file -------------------------------------------------
//
// magic[8] + epoch[u64] + kmap_k[u64] + staccato_m[u64] + staccato_k[u64]
// + crc32[u32]. The load parameters ride along so a reopened database
// appends with the same derivation knobs the original Load used — a
// mismatch would make appended documents diverge from bulk-loaded ones.

constexpr char kMetaMagic[8] = {'S', 'T', 'A', 'C', 'M', 'E', 'T', '1'};
constexpr size_t kMetaPayload = sizeof(kMetaMagic) + 4 * sizeof(uint64_t);
constexpr size_t kMetaSize = kMetaPayload + sizeof(uint32_t);

struct DbMeta {
  uint64_t epoch = 0;
  uint64_t kmap_k;
  uint64_t staccato_m;
  uint64_t staccato_k;

  DbMeta() {
    const LoadOptions defaults;  // absent meta = the default load knobs
    kmap_k = defaults.kmap_k;
    staccato_m = defaults.staccato.m;
    staccato_k = defaults.staccato.k;
  }
};

Status WriteMetaAtomic(const std::string& dir, const DbMeta& meta) {
  BinaryWriter w;
  w.PutRaw(kMetaMagic, sizeof(kMetaMagic));
  w.PutU64(meta.epoch);
  w.PutU64(meta.kmap_k);
  w.PutU64(meta.staccato_m);
  w.PutU64(meta.staccato_k);
  w.PutU32(util::Crc32(w.buffer()));
  const std::string path = MetaPath(dir);
  const std::string tmp = path + ".tmp";
  FILE* f = fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + tmp);
  Status st = util::CheckedWrite(f, w.buffer().data(), w.size(), tmp);
  if (st.ok()) st = util::CheckedSync(f, tmp);
  fclose(f);
  if (!st.ok()) {
    std::remove(tmp.c_str());
    return st;
  }
  // The atomic commit point: readers see either the old pointer or the
  // new one, never a torn write.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot commit " + path);
  }
  return Status::OK();
}

Result<DbMeta> ReadMeta(const std::string& dir) {
  FILE* f = fopen(MetaPath(dir).c_str(), "rb");
  if (f == nullptr) return DbMeta{};  // never checkpointed: epoch 0
  std::string data;
  char buf[256];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  const bool read_err = ferror(f) != 0;
  fclose(f);
  if (read_err) return Status::IOError("cannot read " + MetaPath(dir));
  if (data.size() != kMetaSize ||
      std::memcmp(data.data(), kMetaMagic, sizeof(kMetaMagic)) != 0) {
    return Status::Corruption("bad meta file " + MetaPath(dir));
  }
  BinaryReader r(data.data() + sizeof(kMetaMagic),
                       data.size() - sizeof(kMetaMagic));
  DbMeta meta;
  STACCATO_ASSIGN_OR_RETURN(meta.epoch, r.GetU64());
  STACCATO_ASSIGN_OR_RETURN(meta.kmap_k, r.GetU64());
  STACCATO_ASSIGN_OR_RETURN(meta.staccato_m, r.GetU64());
  STACCATO_ASSIGN_OR_RETURN(meta.staccato_k, r.GetU64());
  STACCATO_ASSIGN_OR_RETURN(uint32_t crc, r.GetU32());
  if (crc != util::Crc32(data.data(), kMetaPayload)) {
    return Status::Corruption("meta checksum mismatch " + MetaPath(dir));
  }
  return meta;
}

/// STACCATO_DELTA_DOCS: checkpoint automatically once the delta holds this
/// many documents. 0 (the default) leaves checkpointing fully explicit.
size_t DeltaCheckpointDocsFromEnv() {
  if (const char* env = std::getenv("STACCATO_DELTA_DOCS")) {
    return static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  return 0;
}

}  // namespace

Result<std::unique_ptr<StaccatoDb>> StaccatoDb::Open(const std::string& dir,
                                                     cache::CacheConfig cache) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create directory " + dir);
  auto db = std::unique_ptr<StaccatoDb>(new StaccatoDb(dir));
  STACCATO_ASSIGN_OR_RETURN(
      db->master_, HeapTable::Create(TableFile(dir, "master", 0), MasterSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->truth_, HeapTable::Create(TableFile(dir, "truth", 0), TruthSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->kmap_, HeapTable::Create(TableFile(dir, "kmap", 0), KMapSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->fullsfa_,
      HeapTable::Create(TableFile(dir, "fullsfa", 0), FullSfaSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->staccato_,
      HeapTable::Create(TableFile(dir, "staccato", 0), StaccatoDataSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->staccato_graph_,
      HeapTable::Create(TableFile(dir, "staccato_graph", 0),
                        StaccatoGraphSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->postings_,
      HeapTable::Create(TableFile(dir, "postings", 0), PostingsSchema()));
  STACCATO_ASSIGN_OR_RETURN(db->blobs_, BlobStore::Create(BlobFile(dir, 0)));
  if (cache.budget_bytes > 0) {
    db->cache_ = std::make_unique<cache::BufferCache>(cache.budget_bytes,
                                                      cache.shards);
  }
  db->WireCache();
  // A fresh database owns the directory outright: drop any stale epoch
  // pointer and truncate the log a previous database may have left here.
  std::remove(MetaPath(dir).c_str());
  db->delta_checkpoint_docs_ = DeltaCheckpointDocsFromEnv();
  util::MutexLock lock(&db->ingest_mu_);
  STACCATO_ASSIGN_OR_RETURN(
      db->wal_, WalWriter::Open(WalPath(dir), 0, WalSyncPolicyFromEnv()));
  return db;
}

Result<std::unique_ptr<StaccatoDb>> StaccatoDb::OpenExisting(
    const std::string& dir, cache::CacheConfig cache) {
  auto db = std::unique_ptr<StaccatoDb>(new StaccatoDb(dir));
  // The meta pointer names the committed epoch (0 when absent) and
  // carries the load parameters appends must reuse.
  STACCATO_ASSIGN_OR_RETURN(DbMeta meta, ReadMeta(dir));
  const uint64_t epoch = meta.epoch;
  STACCATO_ASSIGN_OR_RETURN(
      db->master_,
      HeapTable::Open(TableFile(dir, "master", epoch), MasterSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->truth_, HeapTable::Open(TableFile(dir, "truth", epoch), TruthSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->kmap_, HeapTable::Open(TableFile(dir, "kmap", epoch), KMapSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->fullsfa_,
      HeapTable::Open(TableFile(dir, "fullsfa", epoch), FullSfaSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->staccato_,
      HeapTable::Open(TableFile(dir, "staccato", epoch), StaccatoDataSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->staccato_graph_,
      HeapTable::Open(TableFile(dir, "staccato_graph", epoch),
                      StaccatoGraphSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->postings_,
      HeapTable::Open(TableFile(dir, "postings", epoch), PostingsSchema()));
  STACCATO_ASSIGN_OR_RETURN(db->blobs_, BlobStore::Open(BlobFile(dir, epoch)));
  if (cache.budget_bytes > 0) {
    db->cache_ = std::make_unique<cache::BufferCache>(cache.budget_bytes,
                                                      cache.shards);
  }
  db->WireCache();

  // Recover the DataKey -> blob-row maps from the tables themselves.
  const size_t n = db->fullsfa_->NumTuples();
  db->num_sfas_.store(n, std::memory_order_release);
  db->fullsfa_rid_.resize(n);
  db->graph_rid_.resize(n);
  STACCATO_RETURN_NOT_OK(db->fullsfa_->Scan([&](RecordId rid, const Tuple& t) {
    size_t key = static_cast<size_t>(t[0].AsInt());
    if (key < n) db->fullsfa_rid_[key] = rid;
    return true;
  }));
  STACCATO_RETURN_NOT_OK(
      db->staccato_graph_->Scan([&](RecordId rid, const Tuple& t) {
        size_t key = static_cast<size_t>(t[0].AsInt());
        if (key < n) db->graph_rid_[key] = rid;
        return true;
      }));

  // Rebuild the in-memory B+-tree (and the dictionary trie) from the
  // persisted postings relation, if an index had been built. The planner's
  // per-term statistics are recovered in the same pass; postings rows were
  // inserted grouped by document, so a term's documents appear in
  // nondecreasing order and distinct docs can be counted with a last-seen
  // map.
  if (db->postings_->NumTuples() > 0) {
    std::set<std::string> terms;
    STACCATO_RETURN_NOT_OK(db->postings_->Scan([&](RecordId, const Tuple& t) {
      terms.insert(t[0].AsString());
      return true;
    }));
    STACCATO_ASSIGN_OR_RETURN(
        DictionaryTrie trie,
        DictionaryTrie::Build({terms.begin(), terms.end()}));
    db->dict_.emplace(std::move(trie));
    db->index_ = std::make_unique<BPlusTree>();
    std::unordered_map<std::string, int64_t> last_doc;
    STACCATO_RETURN_NOT_OK(db->postings_->Scan([&](RecordId rid, const Tuple& t) {
      const std::string& term = t[0].AsString();
      db->index_->Insert(term, PackRecordId(rid));
      TermStats& st = db->term_stats_[term];
      ++st.postings;
      auto [it, fresh] = last_doc.emplace(term, t[1].AsInt());
      if (fresh || it->second != t[1].AsInt()) {
        it->second = t[1].AsInt();
        ++st.docs;
      }
      return true;
    }));
  }

  db->delta_checkpoint_docs_ = DeltaCheckpointDocsFromEnv();
  {
    util::MutexLock lock(&db->ingest_mu_);
    db->epoch_ = epoch;
    db->base_docs_ = n;
    db->load_opts_.kmap_k = meta.kmap_k;
    db->load_opts_.staccato.m = meta.staccato_m;
    db->load_opts_.staccato.k = meta.staccato_k;
    // Replay the committed WAL suffix into the delta generation; a torn
    // tail is truncated so fresh appends land on a record boundary.
    STACCATO_RETURN_NOT_OK(db->RecoverWal());
  }
  db->load_gen_.store(1, std::memory_order_release);
  db->blob_gen_.store(1, std::memory_order_release);
  return db;
}

Status StaccatoDb::RecoverWal() {
  const std::string path = WalPath(dir_);
  uint64_t resume = 0;
  auto reader_or = WalReader::Open(path);
  if (reader_or.ok()) {
    WalReader& reader = **reader_or;
    std::string rec;
    WalDocRecord pending;
    uint32_t pending_crc = 0;
    bool have_pending = false;
    while (reader.ReadRecord(&rec)) {
      if (rec.empty()) break;
      const uint8_t tag = static_cast<uint8_t>(rec[0]);
      if (tag == kWalDocTag) {
        auto doc = DecodeWalDoc(rec);
        if (!doc.ok()) break;  // committed-prefix semantics: stop here
        pending = std::move(*doc);
        pending_crc = util::Crc32(rec);
        have_pending = true;
        continue;
      }
      if (tag != kWalCommitTag) break;
      auto commit = DecodeWalCommit(rec);
      // Header-last: a commit record applies its document only when it
      // binds the exact bytes of the doc record that precedes it.
      if (!commit.ok() || !have_pending || commit->seq != pending.seq ||
          commit->payload_crc != pending_crc) {
        break;
      }
      have_pending = false;
      const uint64_t next = base_docs_ + delta_.size();
      if (pending.seq < next) {
        // Already folded into the base by a checkpoint that committed its
        // meta pointer but crashed before truncating the log.
        resume = reader.last_record_end();
        continue;
      }
      if (pending.seq != next) break;  // gap: nothing past it can apply
      STACCATO_ASSIGN_OR_RETURN(std::shared_ptr<const DeltaDoc> d,
                                MaterializeDelta(pending));
      delta_.push_back(std::move(d));
      num_sfas_.fetch_add(1, std::memory_order_release);
      resume = reader.last_record_end();
    }
  } else if (!reader_or.status().IsNotFound()) {
    return reader_or.status();
  }
  // Position the writer just past the applied prefix: a torn tail — or an
  // orphaned doc record whose commit never made it — is truncated away.
  STACCATO_ASSIGN_OR_RETURN(
      wal_, WalWriter::Open(path, resume, WalSyncPolicyFromEnv()));
  return Status::OK();
}

Result<std::shared_ptr<const DeltaDoc>> StaccatoDb::MaterializeDelta(
    const WalDocRecord& rec) {
  auto d = std::make_shared<DeltaDoc>();
  d->doc_name = rec.doc_name;
  d->year = rec.year;
  d->truth = rec.truth;
  d->full_blob = rec.full_sfa;
  STACCATO_ASSIGN_OR_RETURN(Sfa sfa, Sfa::Deserialize(rec.full_sfa));
  const std::vector<ScoredString> top = KBestStrings(sfa, rec.kmap_k);
  d->kmap.reserve(top.size());
  for (const ScoredString& s : top) {
    d->kmap.push_back({s.str, std::log(s.prob)});
  }
  StaccatoParams params = load_opts_.staccato;
  params.m = rec.staccato_m;
  params.k = rec.staccato_k;
  STACCATO_ASSIGN_OR_RETURN(Sfa chunked, ApproximateSfa(sfa, params));
  d->graph_blob = chunked.Serialize();
  if (dict_) {
    STACCATO_ASSIGN_OR_RETURN(PostingMap pm, BuildPostings(chunked, *dict_));
    for (const auto& [tid, vec] : pm) {
      std::vector<uint64_t>& dst = d->postings[dict_->term(tid)];
      dst.reserve(vec.size());
      for (const Posting& p : vec) dst.push_back(PackPosting(p));
    }
  }
  return std::shared_ptr<const DeltaDoc>(std::move(d));
}

Status StaccatoDb::Append(const DocumentInput& doc) {
  util::MutexLock lock(&ingest_mu_);
  if (wal_ == nullptr) return Status::Internal("database has no write-ahead log");
  WalDocRecord rec;
  rec.seq = base_docs_ + delta_.size();
  rec.doc_name = doc.doc_name;
  rec.year = doc.year;
  rec.truth = doc.truth;
  rec.kmap_k = load_opts_.kmap_k;
  rec.staccato_m = load_opts_.staccato.m;
  rec.staccato_k = load_opts_.staccato.k;
  rec.full_sfa = doc.sfa.Serialize();
  const std::string payload = EncodeWalDoc(rec);
  WalCommitRecord commit;
  commit.seq = rec.seq;
  commit.payload_crc = util::Crc32(payload);
  // Durability first: the document exists exactly when its commit record
  // is on disk (per the sync policy).
  struct WalMetrics {
    telemetry::Counter* commits;
    telemetry::Histogram* commit_us;
  };
  static const WalMetrics wal_metrics = [] {
    auto& r = telemetry::MetricsRegistry::Global();
    return WalMetrics{r.GetCounter("staccato_wal_commits_total"),
                      r.GetHistogram("staccato_wal_commit_us")};
  }();
  // The interval spans record append through fsync (Commit), i.e. the
  // full durability cost of one ingest — the figure an fsync-bound
  // ingest pipeline needs to see.
  const uint64_t commit_start_ns = telemetry::MonotonicNanos();
  STACCATO_RETURN_NOT_OK(wal_->AddRecord(payload));
  STACCATO_RETURN_NOT_OK(wal_->AddRecord(EncodeWalCommit(commit)));
  STACCATO_RETURN_NOT_OK(wal_->Commit());
  wal_metrics.commits->Increment();
  wal_metrics.commit_us->Record(
      (telemetry::MonotonicNanos() - commit_start_ns) / 1000);
  // Materialize from the *serialized* record, exactly as replay would —
  // a crashed-and-recovered database serves bit-identical delta state.
  STACCATO_ASSIGN_OR_RETURN(std::shared_ptr<const DeltaDoc> d,
                            MaterializeDelta(rec));
  delta_.push_back(std::move(d));
  num_sfas_.fetch_add(1, std::memory_order_release);
  load_gen_.fetch_add(1, std::memory_order_acq_rel);
  if (delta_checkpoint_docs_ > 0 && delta_.size() >= delta_checkpoint_docs_) {
    return CheckpointLocked();
  }
  return Status::OK();
}

Status StaccatoDb::Checkpoint() {
  util::MutexLock lock(&ingest_mu_);
  return CheckpointLocked();
}

Status StaccatoDb::CheckpointLocked() {
  // Nothing to fold: the log's contents are already in the base.
  if (delta_.empty()) return wal_->Reset();

  const uint64_t ne = epoch_ + 1;
  const size_t total = base_docs_ + delta_.size();

  STACCATO_ASSIGN_OR_RETURN(
      std::unique_ptr<HeapTable> nmaster,
      HeapTable::Create(TableFile(dir_, "master", ne), MasterSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      std::unique_ptr<HeapTable> ntruth,
      HeapTable::Create(TableFile(dir_, "truth", ne), TruthSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      std::unique_ptr<HeapTable> nkmap,
      HeapTable::Create(TableFile(dir_, "kmap", ne), KMapSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      std::unique_ptr<HeapTable> nfullsfa,
      HeapTable::Create(TableFile(dir_, "fullsfa", ne), FullSfaSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      std::unique_ptr<HeapTable> nstaccato,
      HeapTable::Create(TableFile(dir_, "staccato", ne), StaccatoDataSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      std::unique_ptr<HeapTable> ngraph,
      HeapTable::Create(TableFile(dir_, "staccato_graph", ne),
                        StaccatoGraphSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      std::unique_ptr<HeapTable> npostings,
      HeapTable::Create(TableFile(dir_, "postings", ne), PostingsSchema()));
  STACCATO_ASSIGN_OR_RETURN(std::unique_ptr<BlobStore> nblobs,
                            BlobStore::Create(BlobFile(dir_, ne)));

  auto copy_rows = [](HeapTable* src, HeapTable* dst) -> Status {
    Status row_st = Status::OK();
    STACCATO_RETURN_NOT_OK(src->Scan([&](RecordId, const Tuple& t) {
      row_st = dst->Insert(t).status();
      return row_st.ok();
    }));
    return row_st;
  };
  STACCATO_RETURN_NOT_OK(copy_rows(master_.get(), nmaster.get()));
  STACCATO_RETURN_NOT_OK(copy_rows(truth_.get(), ntruth.get()));
  STACCATO_RETURN_NOT_OK(copy_rows(kmap_.get(), nkmap.get()));
  STACCATO_RETURN_NOT_OK(copy_rows(staccato_.get(), nstaccato.get()));

  // Blob-holding rows cannot be copied verbatim: blob ids are offsets in
  // the epoch's blob file. Re-put every base document's blobs — the bytes
  // are preserved exactly, which is what keeps the warm blob cache valid
  // across the fold (BlobCacheKey carries blob_generation, untouched here).
  std::vector<RecordId> nfull_rid(total);
  std::vector<RecordId> ngraph_rid(total);
  for (size_t i = 0; i < base_docs_; ++i) {
    STACCATO_ASSIGN_OR_RETURN(Tuple ft, fullsfa_->Get(fullsfa_rid_[i]));
    STACCATO_ASSIGN_OR_RETURN(std::string fblob, blobs_->Get(ft[1].AsBlobId()));
    STACCATO_ASSIGN_OR_RETURN(BlobId fid, nblobs->Put(fblob));
    STACCATO_ASSIGN_OR_RETURN(
        nfull_rid[i], nfullsfa->Insert({Value::Int(static_cast<int64_t>(i)),
                                        Value::Blob(fid)}));
    STACCATO_ASSIGN_OR_RETURN(Tuple gt, staccato_graph_->Get(graph_rid_[i]));
    STACCATO_ASSIGN_OR_RETURN(std::string gblob, blobs_->Get(gt[1].AsBlobId()));
    STACCATO_ASSIGN_OR_RETURN(BlobId gid, nblobs->Put(gblob));
    STACCATO_ASSIGN_OR_RETURN(
        ngraph_rid[i], ngraph->Insert({Value::Int(static_cast<int64_t>(i)),
                                       Value::Blob(gid)}));
  }

  // Delta documents become ordinary base rows, derived from the exact
  // in-memory state queries were already serving.
  for (size_t i = 0; i < delta_.size(); ++i) {
    const DeltaDoc& d = *delta_[i];
    const int64_t key = static_cast<int64_t>(base_docs_ + i);
    STACCATO_RETURN_NOT_OK(
        nmaster
            ->Insert({Value::Int(key), Value::String(d.doc_name),
                      Value::Int(d.year), Value::Int(key)})
            .status());
    STACCATO_RETURN_NOT_OK(
        ntruth->Insert({Value::Int(key), Value::String(d.truth)}).status());
    for (size_t r = 0; r < d.kmap.size(); ++r) {
      STACCATO_RETURN_NOT_OK(
          nkmap
              ->Insert({Value::Int(key), Value::Int(static_cast<int64_t>(r)),
                        Value::String(d.kmap[r].str),
                        Value::Double(d.kmap[r].log_prob)})
              .status());
    }
    STACCATO_ASSIGN_OR_RETURN(BlobId fid, nblobs->Put(d.full_blob));
    STACCATO_ASSIGN_OR_RETURN(
        nfull_rid[base_docs_ + i],
        nfullsfa->Insert({Value::Int(key), Value::Blob(fid)}));
    STACCATO_ASSIGN_OR_RETURN(Sfa chunked, Sfa::Deserialize(d.graph_blob));
    for (EdgeId e = 0; e < chunked.NumEdges(); ++e) {
      const Edge& edge = chunked.edge(e);
      for (size_t r = 0; r < edge.transitions.size(); ++r) {
        STACCATO_RETURN_NOT_OK(
            nstaccato
                ->Insert({Value::Int(key), Value::Int(static_cast<int64_t>(e)),
                          Value::Int(static_cast<int64_t>(r)),
                          Value::String(edge.transitions[r].label),
                          Value::Double(std::log(edge.transitions[r].prob))})
                .status());
      }
    }
    STACCATO_ASSIGN_OR_RETURN(BlobId gid, nblobs->Put(d.graph_blob));
    STACCATO_ASSIGN_OR_RETURN(
        ngraph_rid[base_docs_ + i],
        ngraph->Insert({Value::Int(key), Value::Blob(gid)}));
  }

  // Postings: copy the base rows into the new relation (re-pointing the
  // B+-tree at the new record ids), then append the delta documents'
  // in-memory postings. The dictionary trie is reused unchanged, so
  // anchor resolution is untouched by a checkpoint.
  std::unique_ptr<BPlusTree> nindex;
  TermStatsMap nstats;
  if (dict_) {
    nindex = std::make_unique<BPlusTree>();
    Status row_st = Status::OK();
    std::unordered_map<std::string, int64_t> last_doc;
    STACCATO_RETURN_NOT_OK(postings_->Scan([&](RecordId, const Tuple& t) {
      Result<RecordId> rid = npostings->Insert(t);
      if (!rid.ok()) {
        row_st = rid.status();
        return false;
      }
      const std::string& term = t[0].AsString();
      nindex->Insert(term, PackRecordId(*rid));
      TermStats& st = nstats[term];
      ++st.postings;
      auto [it, fresh] = last_doc.emplace(term, t[1].AsInt());
      if (fresh || it->second != t[1].AsInt()) {
        it->second = t[1].AsInt();
        ++st.docs;
      }
      return true;
    }));
    STACCATO_RETURN_NOT_OK(row_st);
    for (size_t i = 0; i < delta_.size(); ++i) {
      const int64_t key = static_cast<int64_t>(base_docs_ + i);
      for (const auto& [term, vec] : delta_[i]->postings) {
        TermStats& st = nstats[term];
        st.postings += vec.size();
        ++st.docs;
        for (uint64_t packed : vec) {
          STACCATO_ASSIGN_OR_RETURN(
              RecordId rid,
              npostings->Insert({Value::String(term), Value::Int(key),
                                 Value::Int(static_cast<int64_t>(packed))}));
          nindex->Insert(term, PackRecordId(rid));
        }
      }
    }
  }

  // Durability barrier: everything the new epoch references must be on
  // disk before the meta pointer names it.
  STACCATO_RETURN_NOT_OK(nmaster->Sync());
  STACCATO_RETURN_NOT_OK(ntruth->Sync());
  STACCATO_RETURN_NOT_OK(nkmap->Sync());
  STACCATO_RETURN_NOT_OK(nfullsfa->Sync());
  STACCATO_RETURN_NOT_OK(nstaccato->Sync());
  STACCATO_RETURN_NOT_OK(ngraph->Sync());
  STACCATO_RETURN_NOT_OK(npostings->Sync());
  STACCATO_RETURN_NOT_OK(nblobs->Sync());

  DbMeta meta;
  meta.epoch = ne;
  meta.kmap_k = load_opts_.kmap_k;
  meta.staccato_m = load_opts_.staccato.m;
  meta.staccato_k = load_opts_.staccato.k;
  // The commit point: after this rename, recovery opens the new epoch and
  // skips every WAL record below the new base (absolute sequence numbers
  // make the replay idempotent until the log is truncated below).
  STACCATO_RETURN_NOT_OK(WriteMetaAtomic(dir_, meta));

  const std::vector<std::string> old_files = {
      TableFile(dir_, "master", epoch_), TableFile(dir_, "truth", epoch_),
      TableFile(dir_, "kmap", epoch_), TableFile(dir_, "fullsfa", epoch_),
      TableFile(dir_, "staccato", epoch_),
      TableFile(dir_, "staccato_graph", epoch_),
      TableFile(dir_, "postings", epoch_), BlobFile(dir_, epoch_)};
  const std::vector<uint64_t> old_spaces = {
      master_->cache_space(), truth_->cache_space(), kmap_->cache_space(),
      fullsfa_->cache_space(), staccato_->cache_space(),
      staccato_graph_->cache_space(), postings_->cache_space()};
  master_ = std::move(nmaster);
  truth_ = std::move(ntruth);
  kmap_ = std::move(nkmap);
  fullsfa_ = std::move(nfullsfa);
  staccato_ = std::move(nstaccato);
  staccato_graph_ = std::move(ngraph);
  postings_ = std::move(npostings);
  blobs_ = std::move(nblobs);
  fullsfa_rid_ = std::move(nfull_rid);
  graph_rid_ = std::move(ngraph_rid);
  if (dict_) {
    index_ = std::move(nindex);
    term_stats_ = std::move(nstats);
  }
  epoch_ = ne;
  base_docs_ = total;
  delta_.clear();
  WireCache();
  if (cache_ != nullptr) {
    for (uint64_t space : old_spaces) cache_->EraseSpace(space);
  }
  // Record ids and table handles changed: frozen plans must re-resolve
  // (load_gen_ bump). Blob *bytes* per document did not — blob_gen_ stays
  // put, keeping the warm blob cache valid.
  load_gen_.fetch_add(1, std::memory_order_acq_rel);
  STACCATO_RETURN_NOT_OK(wal_->Reset());
  for (const std::string& f : old_files) std::remove(f.c_str());
  return Status::OK();
}

size_t StaccatoDb::DeltaDocs() const {
  util::MutexLock lock(&ingest_mu_);
  return delta_.size();
}

uint64_t StaccatoDb::Epoch() const {
  util::MutexLock lock(&ingest_mu_);
  return epoch_;
}

Status StaccatoDb::Load(const OcrDataset& dataset, const LoadOptions& opts) {
  util::MutexLock lock(&ingest_mu_);
  const size_t n = dataset.sfas.size();
  num_sfas_.store(n, std::memory_order_release);
  load_gen_.fetch_add(1, std::memory_order_acq_rel);  // plan caches invalidate
  blob_gen_.fetch_add(1, std::memory_order_acq_rel);  // blob bytes replaced
  // Load replaces the dataset wholesale: drop the delta generation and
  // truncate the WAL first — stale appends must never replay on top of
  // the new corpus — then truncate every relation and the blob store so a
  // reload never leaves rows from the previous corpus behind (duplicate
  // kMAPData rows would double match probabilities, and OpenExisting
  // would recover an inflated cardinality).
  delta_.clear();
  base_docs_ = n;
  load_opts_ = opts;
  STACCATO_RETURN_NOT_OK(wal_->Reset());
  STACCATO_RETURN_NOT_OK(
      ReplaceHeap(&master_, TableFile(dir_, "master", epoch_), MasterSchema()));
  STACCATO_RETURN_NOT_OK(
      ReplaceHeap(&truth_, TableFile(dir_, "truth", epoch_), TruthSchema()));
  STACCATO_RETURN_NOT_OK(
      ReplaceHeap(&kmap_, TableFile(dir_, "kmap", epoch_), KMapSchema()));
  STACCATO_RETURN_NOT_OK(ReplaceHeap(
      &fullsfa_, TableFile(dir_, "fullsfa", epoch_), FullSfaSchema()));
  STACCATO_RETURN_NOT_OK(ReplaceHeap(
      &staccato_, TableFile(dir_, "staccato", epoch_), StaccatoDataSchema()));
  STACCATO_RETURN_NOT_OK(ReplaceHeap(&staccato_graph_,
                                     TableFile(dir_, "staccato_graph", epoch_),
                                     StaccatoGraphSchema()));
  if (blobs_ != nullptr) STACCATO_RETURN_NOT_OK(blobs_->Flush());
  STACCATO_ASSIGN_OR_RETURN(blobs_, BlobStore::Create(BlobFile(dir_, epoch_)));
  WireCache();
  // The generation bumps above already make every cached blob key stale
  // and the fresh table instances carry fresh page namespaces; clearing
  // just releases the dead entries' budget immediately.
  if (cache_ != nullptr) cache_->Clear();
  // Index artifacts describe the old corpus: drop them (and truncate the
  // persisted postings relation) rather than let cost-based planning
  // silently probe stale postings. Callers rebuild with
  // BuildInvertedIndex; frozen index-probe plans fail cleanly until then.
  index_.reset();
  dict_.reset();
  term_stats_.clear();
  STACCATO_RETURN_NOT_OK(ReplacePostingsRelation());

  // Staccato construction is the expensive part; parallelize across SFAs
  // on the shared pool (construction_threads = 0 inherits its capacity).
  STACCATO_ASSIGN_OR_RETURN(
      std::vector<Sfa> chunked,
      ParallelMap<Sfa>(
          n, /*grain=*/1,
          [&](size_t i) { return ApproximateSfa(dataset.sfas[i], opts.staccato); },
          ParallelOptions{opts.construction_threads}));

  fullsfa_rid_.resize(n);
  graph_rid_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t key = static_cast<int64_t>(i);
    uint32_t page = dataset.corpus.page_of_line[i];
    std::string doc_name = StringPrintf(
        "%s-page-%u", dataset.corpus.name.c_str(), page);
    STACCATO_RETURN_NOT_OK(
        master_
            ->Insert({Value::Int(key), Value::String(doc_name),
                      Value::Int(kBaseYear + page),
                      Value::Int(static_cast<int64_t>(i))})
            .status());
    STACCATO_RETURN_NOT_OK(
        truth_
            ->Insert({Value::Int(key), Value::String(dataset.corpus.lines[i])})
            .status());

    // k-MAP rows (rank 0 is the MAP transcription).
    std::vector<ScoredString> top = KBestStrings(dataset.sfas[i], opts.kmap_k);
    for (size_t r = 0; r < top.size(); ++r) {
      STACCATO_RETURN_NOT_OK(kmap_
                                 ->Insert({Value::Int(key),
                                           Value::Int(static_cast<int64_t>(r)),
                                           Value::String(top[r].str),
                                           Value::Double(std::log(top[r].prob))})
                                 .status());
    }

    // FullSFA blob.
    STACCATO_ASSIGN_OR_RETURN(BlobId full_id, blobs_->Put(dataset.sfas[i].Serialize()));
    STACCATO_ASSIGN_OR_RETURN(
        RecordId full_rid,
        fullsfa_->Insert({Value::Int(key), Value::Blob(full_id)}));
    fullsfa_rid_[i] = full_rid;

    // Staccato rows: one per (chunk, retained string), plus the graph blob.
    const Sfa& ch = chunked[i];
    for (EdgeId e = 0; e < ch.NumEdges(); ++e) {
      const Edge& edge = ch.edge(e);
      for (size_t r = 0; r < edge.transitions.size(); ++r) {
        STACCATO_RETURN_NOT_OK(
            staccato_
                ->Insert({Value::Int(key), Value::Int(static_cast<int64_t>(e)),
                          Value::Int(static_cast<int64_t>(r)),
                          Value::String(edge.transitions[r].label),
                          Value::Double(std::log(edge.transitions[r].prob))})
                .status());
      }
    }
    STACCATO_ASSIGN_OR_RETURN(BlobId graph_id, blobs_->Put(ch.Serialize()));
    STACCATO_ASSIGN_OR_RETURN(
        RecordId graph_rid,
        staccato_graph_->Insert({Value::Int(key), Value::Blob(graph_id)}));
    graph_rid_[i] = graph_rid;
  }
  STACCATO_RETURN_NOT_OK(master_->Flush());
  STACCATO_RETURN_NOT_OK(truth_->Flush());
  STACCATO_RETURN_NOT_OK(kmap_->Flush());
  STACCATO_RETURN_NOT_OK(fullsfa_->Flush());
  STACCATO_RETURN_NOT_OK(staccato_->Flush());
  STACCATO_RETURN_NOT_OK(staccato_graph_->Flush());
  // Persist the load parameters: a reopened database must append with the
  // same derivation knobs or its delta would diverge from the base.
  DbMeta meta;
  meta.epoch = epoch_;
  meta.kmap_k = opts.kmap_k;
  meta.staccato_m = opts.staccato.m;
  meta.staccato_k = opts.staccato.k;
  return WriteMetaAtomic(dir_, meta);
}

Status StaccatoDb::BuildInvertedIndex(
    const std::vector<std::string>& dictionary_terms) {
  util::MutexLock lock(&ingest_mu_);
  // candidate sets derived from the old index are invalid
  load_gen_.fetch_add(1, std::memory_order_acq_rel);
  STACCATO_ASSIGN_OR_RETURN(DictionaryTrie trie,
                            DictionaryTrie::Build(dictionary_terms));
  dict_.emplace(std::move(trie));
  index_ = std::make_unique<BPlusTree>();
  term_stats_.clear();
  // A rebuild replaces the postings relation; recreating the heap file
  // truncates it so OpenExisting never recovers stale rows.
  STACCATO_RETURN_NOT_OK(ReplacePostingsRelation());
  for (size_t i = 0; i < base_docs_; ++i) {
    STACCATO_ASSIGN_OR_RETURN(Tuple t, staccato_graph_->Get(graph_rid_[i]));
    STACCATO_ASSIGN_OR_RETURN(std::string blob, blobs_->Get(t[1].AsBlobId()));
    STACCATO_ASSIGN_OR_RETURN(Sfa sfa, Sfa::Deserialize(blob));
    STACCATO_ASSIGN_OR_RETURN(PostingMap postings, BuildPostings(sfa, *dict_));
    for (const auto& [term, vec] : postings) {
      // One PostingMap entry per (doc, term): maintain the planner's
      // posting-count / distinct-doc statistics as the index grows.
      TermStats& st = term_stats_[dict_->term(term)];
      st.postings += vec.size();
      ++st.docs;
      for (const Posting& p : vec) {
        STACCATO_ASSIGN_OR_RETURN(
            RecordId rid,
            postings_->Insert({Value::String(dict_->term(term)),
                               Value::Int(static_cast<int64_t>(i)),
                               Value::Int(static_cast<int64_t>(PackPosting(p)))}));
        index_->Insert(dict_->term(term), PackRecordId(rid));
      }
    }
  }
  STACCATO_RETURN_NOT_OK(postings_->Flush());
  // Delta documents keep their postings in memory (ProbeIndex merges them
  // at query time); recompute against the new dictionary, copy-on-write so
  // a concurrent query's snapshot keeps observing the old vocabulary.
  for (std::shared_ptr<const DeltaDoc>& dptr : delta_) {
    STACCATO_ASSIGN_OR_RETURN(Sfa chunked, Sfa::Deserialize(dptr->graph_blob));
    STACCATO_ASSIGN_OR_RETURN(PostingMap pm, BuildPostings(chunked, *dict_));
    auto copy = std::make_shared<DeltaDoc>(*dptr);
    copy->postings.clear();
    for (const auto& [tid, vec] : pm) {
      std::vector<uint64_t>& dst = copy->postings[dict_->term(tid)];
      dst.reserve(vec.size());
      for (const Posting& p : vec) dst.push_back(PackPosting(p));
    }
    dptr = std::move(copy);
  }
  return Status::OK();
}

Status StaccatoDb::ReplaceHeap(std::unique_ptr<HeapTable>* table,
                               const std::string& path, Schema schema) {
  // Flush the old handle first so it holds no dirty pages — the handle is
  // destroyed only after Create has truncated the file, and a late
  // destructor flush must not write stale pages into it. On any failure
  // the old handle stays in place, so the member is never left null.
  if (*table != nullptr) STACCATO_RETURN_NOT_OK((*table)->Flush());
  STACCATO_ASSIGN_OR_RETURN(*table, HeapTable::Create(path, std::move(schema)));
  // The fresh instance has a fresh cache namespace; wire it into the
  // shared cache so its pages are second-tier cached like the old one's.
  (*table)->SetSharedCache(cache_.get());
  return Status::OK();
}

void StaccatoDb::WireCache() {
  cache::BufferCache* c = cache_.get();
  blobs_->set_cache(c);
  master_->SetSharedCache(c);
  truth_->SetSharedCache(c);
  kmap_->SetSharedCache(c);
  fullsfa_->SetSharedCache(c);
  staccato_->SetSharedCache(c);
  staccato_graph_->SetSharedCache(c);
  postings_->SetSharedCache(c);
}

Status StaccatoDb::ReplacePostingsRelation() {
  return ReplaceHeap(&postings_, TableFile(dir_, "postings", epoch_),
                     PostingsSchema());
}

Result<cache::BufferCache::Handle> StaccatoDb::FetchBlobCached(DocId doc,
                                                               bool full_sfa) {
  {
    // Delta documents live in memory: serve a detached handle over a copy
    // of the exact bytes a checkpoint would persist.
    util::MutexLock lock(&ingest_mu_);
    if (doc >= base_docs_ && doc - base_docs_ < delta_.size()) {
      const DeltaDoc& d = *delta_[doc - base_docs_];
      return cache::BufferCache::Detached(
          std::string(full_sfa ? d.full_blob : d.graph_blob));
    }
  }
  // A cache hit serves the pinned bytes straight away; only a miss pays
  // the heap point get that resolves the blob id — same shape as the
  // executor's streaming Fetch.
  return blobs_->GetCached(
      BlobCacheKey(full_sfa, doc, blob_gen_.load(std::memory_order_acquire)),
      [&]() -> Result<BlobId> {
        const std::vector<RecordId>& rids =
            full_sfa ? fullsfa_rid_ : graph_rid_;
        if (doc >= rids.size()) return Status::NotFound("no such DataKey");
        HeapTable* table = full_sfa ? fullsfa_.get() : staccato_graph_.get();
        STACCATO_ASSIGN_OR_RETURN(Tuple t, table->Get(rids[doc]));
        return t[1].AsBlobId();
      });
}

Result<std::string> StaccatoDb::ReadStaccatoBlob(DocId doc) {
  {
    util::MutexLock lock(&ingest_mu_);
    if (doc >= base_docs_ && doc - base_docs_ < delta_.size()) {
      return delta_[doc - base_docs_]->graph_blob;
    }
  }
  if (doc >= graph_rid_.size()) return Status::NotFound("no such DataKey");
  STACCATO_ASSIGN_OR_RETURN(Tuple t, staccato_graph_->Get(graph_rid_[doc]));
  return blobs_->Get(t[1].AsBlobId());
}

Result<std::string> StaccatoDb::ReadFullSfaBlob(DocId doc) {
  {
    util::MutexLock lock(&ingest_mu_);
    if (doc >= base_docs_ && doc - base_docs_ < delta_.size()) {
      return delta_[doc - base_docs_]->full_blob;
    }
  }
  if (doc >= fullsfa_rid_.size()) return Status::NotFound("no such DataKey");
  STACCATO_ASSIGN_OR_RETURN(Tuple t, fullsfa_->Get(fullsfa_rid_[doc]));
  return blobs_->Get(t[1].AsBlobId());
}

Result<Sfa> StaccatoDb::LoadStaccatoSfa(DocId doc) {
  STACCATO_ASSIGN_OR_RETURN(std::string blob, ReadStaccatoBlob(doc));
  return Sfa::Deserialize(blob);
}

Result<Sfa> StaccatoDb::LoadFullSfa(DocId doc) {
  STACCATO_ASSIGN_OR_RETURN(std::string blob, ReadFullSfaBlob(doc));
  return Sfa::Deserialize(blob);
}

PlanContext StaccatoDb::MakePlanContext() {
  // The delta snapshot, the document count, and the generations must be
  // mutually consistent, so the whole snapshot is taken under the ingest
  // mutex (an Append between reads would, e.g., count a document the
  // delta vector doesn't carry). Published DeltaDocs are immutable —
  // execution after the snapshot runs lock-free.
  util::MutexLock lock(&ingest_mu_);
  PlanContext ctx;
  ctx.master = master_.get();
  ctx.kmap = kmap_.get();
  ctx.postings = postings_.get();
  ctx.fullsfa = fullsfa_.get();
  ctx.staccato_graph = staccato_graph_.get();
  ctx.blobs = blobs_.get();
  ctx.index = index_.get();
  ctx.dict = dict_ ? &*dict_ : nullptr;
  ctx.fullsfa_rid = &fullsfa_rid_;
  ctx.graph_rid = &graph_rid_;
  ctx.num_sfas = base_docs_ + delta_.size();
  ctx.cache = cache_.get();
  ctx.term_stats = index_ ? &term_stats_ : nullptr;
  ctx.load_generation = load_gen_.load(std::memory_order_acquire);
  ctx.blob_generation = blob_gen_.load(std::memory_order_acquire);
  ctx.delta.base_docs = base_docs_;
  ctx.delta.docs = delta_;
  return ctx;
}

Result<std::vector<Answer>> StaccatoDb::Query(Approach approach,
                                              const QueryOptions& q,
                                              QueryStats* stats) {
  // The one-shot path stays serial unless the caller asks for workers, so
  // legacy timing comparisons (MAP filescan vs FullSFA) are undisturbed.
  // It is also flag-driven rather than cost-based: benches built on this
  // facade measure the path they name, so the use_index flag pins the
  // candidate source instead of being a hint to the optimizer.
  QueryOptions pinned = q;
  if (pinned.index_mode == IndexMode::kAuto) {
    pinned.index_mode = q.use_index ? IndexMode::kForce : IndexMode::kNever;
  }
  Session session(this, SessionOptions{/*eval_threads=*/1, q.num_ans});
  STACCATO_ASSIGN_OR_RETURN(PreparedQuery pq, session.Prepare(approach, pinned));
  return pq.Execute(stats);
}

Result<std::vector<Answer>> StaccatoDb::QuerySql(Approach approach,
                                                 const std::string& sql,
                                                 QueryStats* stats) {
  Session session(this, SessionOptions{/*eval_threads=*/1, /*num_ans=*/100});
  STACCATO_ASSIGN_OR_RETURN(PreparedQuery pq,
                            session.PrepareSql(approach, sql));
  return pq.Execute(stats);
}

Result<std::set<DocId>> StaccatoDb::GroundTruthFor(const std::string& pattern) {
  STACCATO_ASSIGN_OR_RETURN(Dfa dfa, Dfa::Compile(pattern, MatchMode::kContains));
  std::set<DocId> truth;
  STACCATO_RETURN_NOT_OK(truth_->Scan([&](RecordId, const Tuple& t) {
    if (dfa.Matches(t[1].AsString())) {
      truth.insert(static_cast<DocId>(t[0].AsInt()));
    }
    return true;
  }));
  util::MutexLock lock(&ingest_mu_);
  for (size_t i = 0; i < delta_.size(); ++i) {
    if (dfa.Matches(delta_[i]->truth)) {
      truth.insert(static_cast<DocId>(base_docs_ + i));
    }
  }
  return truth;
}

StorageReport StaccatoDb::Storage() const {
  StorageReport r;
  r.kmap_table_bytes = kmap_->FileBytes();
  r.staccato_table_bytes = staccato_->FileBytes();
  r.index_entries = index_ ? index_->size() : 0;
  // Blob store holds both FullSFA and chunk graphs; report totals via the
  // row counts (exact split is tracked at load time in the benches).
  r.fullsfa_blob_bytes = blobs_->FileBytes();
  return r;
}

Status StaccatoDb::DropCaches() {
  if (cache_ != nullptr) cache_->Clear();
  STACCATO_RETURN_NOT_OK(master_->EvictAll());
  STACCATO_RETURN_NOT_OK(truth_->EvictAll());
  STACCATO_RETURN_NOT_OK(kmap_->EvictAll());
  STACCATO_RETURN_NOT_OK(fullsfa_->EvictAll());
  STACCATO_RETURN_NOT_OK(staccato_->EvictAll());
  STACCATO_RETURN_NOT_OK(staccato_graph_->EvictAll());
  STACCATO_RETURN_NOT_OK(postings_->EvictAll());
  return Status::OK();
}

}  // namespace staccato::rdbms
