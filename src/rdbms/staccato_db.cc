#include "rdbms/staccato_db.h"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "automata/dfa.h"
#include "indexing/index_builder.h"
#include "inference/kbest.h"
#include "rdbms/session.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace staccato::rdbms {

namespace {

// Documents carry a synthetic publication year (Table 5's enclosing
// relational context, e.g. Claims.Year in the paper's running example):
// page p of a corpus is dated kBaseYear + p.
constexpr int64_t kBaseYear = 2010;

Schema MasterSchema() {
  return Schema({{"DataKey", ValueType::kInt},
                 {"DocName", ValueType::kString},
                 {"Year", ValueType::kInt},
                 {"SFANum", ValueType::kInt}});
}
Schema TruthSchema() {
  return Schema({{"DataKey", ValueType::kInt}, {"Data", ValueType::kString}});
}
Schema KMapSchema() {
  return Schema({{"DataKey", ValueType::kInt},
                 {"LineNum", ValueType::kInt},  // rank of the path
                 {"Data", ValueType::kString},
                 {"LogProb", ValueType::kDouble}});
}
Schema FullSfaSchema() {
  return Schema({{"DataKey", ValueType::kInt}, {"SFABlob", ValueType::kBlobId}});
}
Schema StaccatoDataSchema() {
  return Schema({{"DataKey", ValueType::kInt},
                 {"ChunkNum", ValueType::kInt},
                 {"LineNum", ValueType::kInt},
                 {"Data", ValueType::kString},
                 {"LogProb", ValueType::kDouble}});
}
Schema StaccatoGraphSchema() {
  return Schema({{"DataKey", ValueType::kInt}, {"GraphBlob", ValueType::kBlobId}});
}
Schema PostingsSchema() {
  return Schema({{"Term", ValueType::kString},
                 {"DataKey", ValueType::kInt},
                 {"Posting", ValueType::kInt}});
}

}  // namespace

Result<std::unique_ptr<StaccatoDb>> StaccatoDb::Open(const std::string& dir,
                                                     cache::CacheConfig cache) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create directory " + dir);
  auto db = std::unique_ptr<StaccatoDb>(new StaccatoDb(dir));
  STACCATO_ASSIGN_OR_RETURN(db->master_,
                            HeapTable::Create(dir + "/master.tbl", MasterSchema()));
  STACCATO_ASSIGN_OR_RETURN(db->truth_,
                            HeapTable::Create(dir + "/truth.tbl", TruthSchema()));
  STACCATO_ASSIGN_OR_RETURN(db->kmap_,
                            HeapTable::Create(dir + "/kmap.tbl", KMapSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->fullsfa_, HeapTable::Create(dir + "/fullsfa.tbl", FullSfaSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->staccato_,
      HeapTable::Create(dir + "/staccato.tbl", StaccatoDataSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->staccato_graph_,
      HeapTable::Create(dir + "/staccato_graph.tbl", StaccatoGraphSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->postings_, HeapTable::Create(dir + "/postings.tbl", PostingsSchema()));
  STACCATO_ASSIGN_OR_RETURN(db->blobs_, BlobStore::Create(dir + "/blobs.dat"));
  if (cache.budget_bytes > 0) {
    db->cache_ = std::make_unique<cache::BufferCache>(cache.budget_bytes,
                                                      cache.shards);
  }
  db->WireCache();
  return db;
}

Result<std::unique_ptr<StaccatoDb>> StaccatoDb::OpenExisting(
    const std::string& dir, cache::CacheConfig cache) {
  auto db = std::unique_ptr<StaccatoDb>(new StaccatoDb(dir));
  STACCATO_ASSIGN_OR_RETURN(db->master_,
                            HeapTable::Open(dir + "/master.tbl", MasterSchema()));
  STACCATO_ASSIGN_OR_RETURN(db->truth_,
                            HeapTable::Open(dir + "/truth.tbl", TruthSchema()));
  STACCATO_ASSIGN_OR_RETURN(db->kmap_,
                            HeapTable::Open(dir + "/kmap.tbl", KMapSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->fullsfa_, HeapTable::Open(dir + "/fullsfa.tbl", FullSfaSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->staccato_, HeapTable::Open(dir + "/staccato.tbl", StaccatoDataSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->staccato_graph_,
      HeapTable::Open(dir + "/staccato_graph.tbl", StaccatoGraphSchema()));
  STACCATO_ASSIGN_OR_RETURN(
      db->postings_, HeapTable::Open(dir + "/postings.tbl", PostingsSchema()));
  STACCATO_ASSIGN_OR_RETURN(db->blobs_, BlobStore::Open(dir + "/blobs.dat"));
  if (cache.budget_bytes > 0) {
    db->cache_ = std::make_unique<cache::BufferCache>(cache.budget_bytes,
                                                      cache.shards);
  }
  db->WireCache();

  // Recover the DataKey -> blob-row maps from the tables themselves.
  db->num_sfas_ = db->fullsfa_->NumTuples();
  db->fullsfa_rid_.resize(db->num_sfas_);
  db->graph_rid_.resize(db->num_sfas_);
  STACCATO_RETURN_NOT_OK(db->fullsfa_->Scan([&](RecordId rid, const Tuple& t) {
    size_t key = static_cast<size_t>(t[0].AsInt());
    if (key < db->num_sfas_) db->fullsfa_rid_[key] = rid;
    return true;
  }));
  STACCATO_RETURN_NOT_OK(
      db->staccato_graph_->Scan([&](RecordId rid, const Tuple& t) {
        size_t key = static_cast<size_t>(t[0].AsInt());
        if (key < db->num_sfas_) db->graph_rid_[key] = rid;
        return true;
      }));

  // Rebuild the in-memory B+-tree (and the dictionary trie) from the
  // persisted postings relation, if an index had been built. The planner's
  // per-term statistics are recovered in the same pass; postings rows were
  // inserted grouped by document, so a term's documents appear in
  // nondecreasing order and distinct docs can be counted with a last-seen
  // map.
  if (db->postings_->NumTuples() > 0) {
    std::set<std::string> terms;
    STACCATO_RETURN_NOT_OK(db->postings_->Scan([&](RecordId, const Tuple& t) {
      terms.insert(t[0].AsString());
      return true;
    }));
    STACCATO_ASSIGN_OR_RETURN(
        DictionaryTrie trie,
        DictionaryTrie::Build({terms.begin(), terms.end()}));
    db->dict_.emplace(std::move(trie));
    db->index_ = std::make_unique<BPlusTree>();
    std::unordered_map<std::string, int64_t> last_doc;
    STACCATO_RETURN_NOT_OK(db->postings_->Scan([&](RecordId rid, const Tuple& t) {
      const std::string& term = t[0].AsString();
      db->index_->Insert(term, PackRecordId(rid));
      TermStats& st = db->term_stats_[term];
      ++st.postings;
      auto [it, fresh] = last_doc.emplace(term, t[1].AsInt());
      if (fresh || it->second != t[1].AsInt()) {
        it->second = t[1].AsInt();
        ++st.docs;
      }
      return true;
    }));
  }
  db->load_gen_ = 1;
  return db;
}

Status StaccatoDb::Load(const OcrDataset& dataset, const LoadOptions& opts) {
  const size_t n = dataset.sfas.size();
  num_sfas_ = n;
  ++load_gen_;  // data changes; prepared-query plan caches must invalidate
  // Load replaces the dataset wholesale: truncate every relation and the
  // blob store so a reload never leaves rows from the previous corpus
  // behind (duplicate kMAPData rows would double match probabilities, and
  // OpenExisting would recover an inflated cardinality).
  STACCATO_RETURN_NOT_OK(ReplaceHeap(&master_, "master.tbl", MasterSchema()));
  STACCATO_RETURN_NOT_OK(ReplaceHeap(&truth_, "truth.tbl", TruthSchema()));
  STACCATO_RETURN_NOT_OK(ReplaceHeap(&kmap_, "kmap.tbl", KMapSchema()));
  STACCATO_RETURN_NOT_OK(
      ReplaceHeap(&fullsfa_, "fullsfa.tbl", FullSfaSchema()));
  STACCATO_RETURN_NOT_OK(
      ReplaceHeap(&staccato_, "staccato.tbl", StaccatoDataSchema()));
  STACCATO_RETURN_NOT_OK(ReplaceHeap(&staccato_graph_, "staccato_graph.tbl",
                                     StaccatoGraphSchema()));
  if (blobs_ != nullptr) blobs_->Flush();
  STACCATO_ASSIGN_OR_RETURN(blobs_, BlobStore::Create(dir_ + "/blobs.dat"));
  WireCache();
  // The generation bump above already makes every cached blob key stale
  // and the fresh table instances carry fresh page namespaces; clearing
  // just releases the dead entries' budget immediately.
  if (cache_ != nullptr) cache_->Clear();
  // Index artifacts describe the old corpus: drop them (and truncate the
  // persisted postings relation) rather than let cost-based planning
  // silently probe stale postings. Callers rebuild with
  // BuildInvertedIndex; frozen index-probe plans fail cleanly until then.
  index_.reset();
  dict_.reset();
  term_stats_.clear();
  STACCATO_RETURN_NOT_OK(ReplacePostingsRelation());

  // Staccato construction is the expensive part; parallelize across SFAs
  // on the shared pool (construction_threads = 0 inherits its capacity).
  STACCATO_ASSIGN_OR_RETURN(
      std::vector<Sfa> chunked,
      ParallelMap<Sfa>(
          n, /*grain=*/1,
          [&](size_t i) { return ApproximateSfa(dataset.sfas[i], opts.staccato); },
          ParallelOptions{opts.construction_threads}));

  fullsfa_rid_.resize(n);
  graph_rid_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t key = static_cast<int64_t>(i);
    uint32_t page = dataset.corpus.page_of_line[i];
    std::string doc_name = StringPrintf(
        "%s-page-%u", dataset.corpus.name.c_str(), page);
    STACCATO_RETURN_NOT_OK(
        master_
            ->Insert({Value::Int(key), Value::String(doc_name),
                      Value::Int(kBaseYear + page),
                      Value::Int(static_cast<int64_t>(i))})
            .status());
    STACCATO_RETURN_NOT_OK(
        truth_
            ->Insert({Value::Int(key), Value::String(dataset.corpus.lines[i])})
            .status());

    // k-MAP rows (rank 0 is the MAP transcription).
    std::vector<ScoredString> top = KBestStrings(dataset.sfas[i], opts.kmap_k);
    for (size_t r = 0; r < top.size(); ++r) {
      STACCATO_RETURN_NOT_OK(kmap_
                                 ->Insert({Value::Int(key),
                                           Value::Int(static_cast<int64_t>(r)),
                                           Value::String(top[r].str),
                                           Value::Double(std::log(top[r].prob))})
                                 .status());
    }

    // FullSFA blob.
    STACCATO_ASSIGN_OR_RETURN(BlobId full_id, blobs_->Put(dataset.sfas[i].Serialize()));
    STACCATO_ASSIGN_OR_RETURN(
        RecordId full_rid,
        fullsfa_->Insert({Value::Int(key), Value::Blob(full_id)}));
    fullsfa_rid_[i] = full_rid;

    // Staccato rows: one per (chunk, retained string), plus the graph blob.
    const Sfa& ch = chunked[i];
    for (EdgeId e = 0; e < ch.NumEdges(); ++e) {
      const Edge& edge = ch.edge(e);
      for (size_t r = 0; r < edge.transitions.size(); ++r) {
        STACCATO_RETURN_NOT_OK(
            staccato_
                ->Insert({Value::Int(key), Value::Int(static_cast<int64_t>(e)),
                          Value::Int(static_cast<int64_t>(r)),
                          Value::String(edge.transitions[r].label),
                          Value::Double(std::log(edge.transitions[r].prob))})
                .status());
      }
    }
    STACCATO_ASSIGN_OR_RETURN(BlobId graph_id, blobs_->Put(ch.Serialize()));
    STACCATO_ASSIGN_OR_RETURN(
        RecordId graph_rid,
        staccato_graph_->Insert({Value::Int(key), Value::Blob(graph_id)}));
    graph_rid_[i] = graph_rid;
  }
  STACCATO_RETURN_NOT_OK(master_->Flush());
  STACCATO_RETURN_NOT_OK(truth_->Flush());
  STACCATO_RETURN_NOT_OK(kmap_->Flush());
  STACCATO_RETURN_NOT_OK(fullsfa_->Flush());
  STACCATO_RETURN_NOT_OK(staccato_->Flush());
  STACCATO_RETURN_NOT_OK(staccato_graph_->Flush());
  return Status::OK();
}

Status StaccatoDb::BuildInvertedIndex(
    const std::vector<std::string>& dictionary_terms) {
  ++load_gen_;  // candidate sets derived from the old index are invalid
  STACCATO_ASSIGN_OR_RETURN(DictionaryTrie trie,
                            DictionaryTrie::Build(dictionary_terms));
  dict_.emplace(std::move(trie));
  index_ = std::make_unique<BPlusTree>();
  term_stats_.clear();
  // A rebuild replaces the postings relation; recreating the heap file
  // truncates it so OpenExisting never recovers stale rows.
  STACCATO_RETURN_NOT_OK(ReplacePostingsRelation());
  for (size_t i = 0; i < num_sfas_; ++i) {
    STACCATO_ASSIGN_OR_RETURN(Sfa sfa, LoadStaccatoSfa(i));
    STACCATO_ASSIGN_OR_RETURN(PostingMap postings, BuildPostings(sfa, *dict_));
    for (const auto& [term, vec] : postings) {
      // One PostingMap entry per (doc, term): maintain the planner's
      // posting-count / distinct-doc statistics as the index grows.
      TermStats& st = term_stats_[dict_->term(term)];
      st.postings += vec.size();
      ++st.docs;
      for (const Posting& p : vec) {
        STACCATO_ASSIGN_OR_RETURN(
            RecordId rid,
            postings_->Insert({Value::String(dict_->term(term)),
                               Value::Int(static_cast<int64_t>(i)),
                               Value::Int(static_cast<int64_t>(PackPosting(p)))}));
        index_->Insert(dict_->term(term), PackRecordId(rid));
      }
    }
  }
  return postings_->Flush();
}

Status StaccatoDb::ReplaceHeap(std::unique_ptr<HeapTable>* table,
                               const char* file, Schema schema) {
  // Flush the old handle first so it holds no dirty pages — the handle is
  // destroyed only after Create has truncated the file, and a late
  // destructor flush must not write stale pages into it. On any failure
  // the old handle stays in place, so the member is never left null.
  if (*table != nullptr) STACCATO_RETURN_NOT_OK((*table)->Flush());
  STACCATO_ASSIGN_OR_RETURN(
      *table, HeapTable::Create(dir_ + "/" + file, std::move(schema)));
  // The fresh instance has a fresh cache namespace; wire it into the
  // shared cache so its pages are second-tier cached like the old one's.
  (*table)->SetSharedCache(cache_.get());
  return Status::OK();
}

void StaccatoDb::WireCache() {
  cache::BufferCache* c = cache_.get();
  blobs_->set_cache(c);
  master_->SetSharedCache(c);
  truth_->SetSharedCache(c);
  kmap_->SetSharedCache(c);
  fullsfa_->SetSharedCache(c);
  staccato_->SetSharedCache(c);
  staccato_graph_->SetSharedCache(c);
  postings_->SetSharedCache(c);
}

Status StaccatoDb::ReplacePostingsRelation() {
  return ReplaceHeap(&postings_, "postings.tbl", PostingsSchema());
}

Result<cache::BufferCache::Handle> StaccatoDb::FetchBlobCached(DocId doc,
                                                               bool full_sfa) {
  // A cache hit serves the pinned bytes straight away; only a miss pays
  // the heap point get that resolves the blob id — same shape as the
  // executor's streaming Fetch.
  return blobs_->GetCached(
      BlobCacheKey(full_sfa, doc, load_gen_), [&]() -> Result<BlobId> {
        const std::vector<RecordId>& rids =
            full_sfa ? fullsfa_rid_ : graph_rid_;
        if (doc >= rids.size()) return Status::NotFound("no such DataKey");
        HeapTable* table = full_sfa ? fullsfa_.get() : staccato_graph_.get();
        STACCATO_ASSIGN_OR_RETURN(Tuple t, table->Get(rids[doc]));
        return t[1].AsBlobId();
      });
}

Result<std::string> StaccatoDb::ReadStaccatoBlob(DocId doc) {
  if (doc >= graph_rid_.size()) return Status::NotFound("no such DataKey");
  STACCATO_ASSIGN_OR_RETURN(Tuple t, staccato_graph_->Get(graph_rid_[doc]));
  return blobs_->Get(t[1].AsBlobId());
}

Result<std::string> StaccatoDb::ReadFullSfaBlob(DocId doc) {
  if (doc >= fullsfa_rid_.size()) return Status::NotFound("no such DataKey");
  STACCATO_ASSIGN_OR_RETURN(Tuple t, fullsfa_->Get(fullsfa_rid_[doc]));
  return blobs_->Get(t[1].AsBlobId());
}

Result<Sfa> StaccatoDb::LoadStaccatoSfa(DocId doc) {
  STACCATO_ASSIGN_OR_RETURN(std::string blob, ReadStaccatoBlob(doc));
  return Sfa::Deserialize(blob);
}

Result<Sfa> StaccatoDb::LoadFullSfa(DocId doc) {
  STACCATO_ASSIGN_OR_RETURN(std::string blob, ReadFullSfaBlob(doc));
  return Sfa::Deserialize(blob);
}

PlanContext StaccatoDb::MakePlanContext() {
  PlanContext ctx;
  ctx.master = master_.get();
  ctx.kmap = kmap_.get();
  ctx.postings = postings_.get();
  ctx.fullsfa = fullsfa_.get();
  ctx.staccato_graph = staccato_graph_.get();
  ctx.blobs = blobs_.get();
  ctx.index = index_.get();
  ctx.dict = dict_ ? &*dict_ : nullptr;
  ctx.fullsfa_rid = &fullsfa_rid_;
  ctx.graph_rid = &graph_rid_;
  ctx.num_sfas = num_sfas_;
  ctx.cache = cache_.get();
  ctx.term_stats = index_ ? &term_stats_ : nullptr;
  ctx.load_generation = load_gen_;
  return ctx;
}

Result<std::vector<Answer>> StaccatoDb::Query(Approach approach,
                                              const QueryOptions& q,
                                              QueryStats* stats) {
  // The one-shot path stays serial unless the caller asks for workers, so
  // legacy timing comparisons (MAP filescan vs FullSFA) are undisturbed.
  // It is also flag-driven rather than cost-based: benches built on this
  // facade measure the path they name, so the use_index flag pins the
  // candidate source instead of being a hint to the optimizer.
  QueryOptions pinned = q;
  if (pinned.index_mode == IndexMode::kAuto) {
    pinned.index_mode = q.use_index ? IndexMode::kForce : IndexMode::kNever;
  }
  Session session(this, SessionOptions{/*eval_threads=*/1, q.num_ans});
  STACCATO_ASSIGN_OR_RETURN(PreparedQuery pq, session.Prepare(approach, pinned));
  return pq.Execute(stats);
}

Result<std::vector<Answer>> StaccatoDb::QuerySql(Approach approach,
                                                 const std::string& sql,
                                                 QueryStats* stats) {
  Session session(this, SessionOptions{/*eval_threads=*/1, /*num_ans=*/100});
  STACCATO_ASSIGN_OR_RETURN(PreparedQuery pq,
                            session.PrepareSql(approach, sql));
  return pq.Execute(stats);
}

Result<std::set<DocId>> StaccatoDb::GroundTruthFor(const std::string& pattern) {
  STACCATO_ASSIGN_OR_RETURN(Dfa dfa, Dfa::Compile(pattern, MatchMode::kContains));
  std::set<DocId> truth;
  STACCATO_RETURN_NOT_OK(truth_->Scan([&](RecordId, const Tuple& t) {
    if (dfa.Matches(t[1].AsString())) {
      truth.insert(static_cast<DocId>(t[0].AsInt()));
    }
    return true;
  }));
  return truth;
}

StorageReport StaccatoDb::Storage() const {
  StorageReport r;
  r.kmap_table_bytes = kmap_->FileBytes();
  r.staccato_table_bytes = staccato_->FileBytes();
  r.index_entries = index_ ? index_->size() : 0;
  // Blob store holds both FullSFA and chunk graphs; report totals via the
  // row counts (exact split is tracked at load time in the benches).
  r.fullsfa_blob_bytes = blobs_->FileBytes();
  return r;
}

Status StaccatoDb::DropCaches() {
  if (cache_ != nullptr) cache_->Clear();
  STACCATO_RETURN_NOT_OK(master_->EvictAll());
  STACCATO_RETURN_NOT_OK(truth_->EvictAll());
  STACCATO_RETURN_NOT_OK(kmap_->EvictAll());
  STACCATO_RETURN_NOT_OK(fullsfa_->EvictAll());
  STACCATO_RETURN_NOT_OK(staccato_->EvictAll());
  STACCATO_RETURN_NOT_OK(staccato_graph_->EvictAll());
  STACCATO_RETURN_NOT_OK(postings_->EvictAll());
  return Status::OK();
}

}  // namespace staccato::rdbms
