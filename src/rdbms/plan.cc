#include "rdbms/plan.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <utility>

#include "automata/pattern.h"
#include "indexing/projection.h"
#include "inference/query_eval.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace staccato::rdbms {

namespace {

/// Coerces an equality literal (kept as written by the SQL parser) to the
/// type of the MasterData column it compares against.
Result<Value> CoerceLiteral(const EqualityPredicate& eq, ValueType type) {
  if (eq.quoted && (type == ValueType::kInt || type == ValueType::kDouble)) {
    return Status::InvalidArgument("string literal '" + eq.value +
                                   "' compared to numeric column " + eq.column);
  }
  switch (type) {
    case ValueType::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(eq.value.c_str(), &end, 10);
      if (end == eq.value.c_str() || *end != '\0') {
        return Status::InvalidArgument("equality literal '" + eq.value +
                                       "' is not an integer (column " +
                                       eq.column + ")");
      }
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(eq.value.c_str(), &end);
      if (end == eq.value.c_str() || *end != '\0') {
        return Status::InvalidArgument("equality literal '" + eq.value +
                                       "' is not a number (column " +
                                       eq.column + ")");
      }
      return Value::Double(v);
    }
    case ValueType::kString:
      return Value::String(eq.value);
    case ValueType::kBlobId:
      return Status::InvalidArgument("cannot compare blob column " +
                                     eq.column);
  }
  return Status::InvalidArgument("unknown column type");
}

size_t ResolveThreads(size_t requested, size_t default_threads) {
  size_t t = requested == 0 ? default_threads : requested;
  if (t == 0) t = ThreadPool::DefaultThreads();
  return t;
}

// ---- Cost model ------------------------------------------------------------
//
// Costs are abstract units where 1.0 is one sequential 8 KiB page read.
// The constants only have to rank the scan and index paths of the same
// query correctly; they are not wall-clock predictions.

/// A B+-tree descent plus one heap point Get (random, not sequential).
constexpr double kPointReadCost = 2.0;
/// DFAxSFA dynamic-programming cost per serialized blob byte.
constexpr double kEvalCostPerByte = 1.0 / 256.0;
/// Projection evaluates only the region around each posting instead of the
/// whole transducer.
constexpr double kProjectionEvalDiscount = 0.1;
/// DFA match over one stored transcription string.
constexpr double kStringMatchCostPerTuple = 1.0 / 64.0;
/// Selectivity guess per equality predicate (no histograms; System R's
/// classic 1/10).
constexpr double kEqualityDefaultSelectivity = 0.1;

size_t EstimateSurvivors(size_t rows, double selectivity) {
  if (rows == 0) return 0;
  return static_cast<size_t>(
      std::max(1.0, std::ceil(static_cast<double>(rows) * selectivity)));
}

}  // namespace

CostEstimate EstimateCost(const PlanContext& ctx, Approach approach,
                          bool use_projection, size_t num_equalities,
                          const std::string& anchor) {
  CostEstimate est;
  est.table_cardinality = ctx.num_sfas;
  est.equality_selectivity =
      std::pow(kEqualityDefaultSelectivity, static_cast<double>(num_equalities));
  // Filtering costs one MasterData filescan to build the bitmap.
  const double filter_io =
      num_equalities > 0 && ctx.master != nullptr
          ? static_cast<double>(ctx.master->NumPages())
          : 0.0;

  // Average serialized-SFA size, from blob-store totals. The store holds
  // one full and one chunked transducer per document; the mixed average is
  // crude but cancels out of the scan-vs-index comparison, which fetches
  // the same representation either way.
  const size_t num_blobs = 2 * ctx.num_sfas;
  const double avg_blob_bytes =
      ctx.blobs == nullptr || num_blobs == 0
          ? 0.0
          : static_cast<double>(ctx.blobs->FileBytes()) /
                static_cast<double>(num_blobs);

  // Full-scan path.
  est.scan.feasible = true;
  est.scan.candidates =
      EstimateSurvivors(ctx.num_sfas, est.equality_selectivity);
  if (approach == Approach::kMap || approach == Approach::kKMap) {
    // One pass over kMAPData; no blob fetches.
    est.scan.io_cost =
        filter_io +
        (ctx.kmap != nullptr ? static_cast<double>(ctx.kmap->NumPages()) : 0.0);
    est.scan.eval_cost =
        (ctx.kmap != nullptr ? static_cast<double>(ctx.kmap->NumTuples())
                             : 0.0) *
        kStringMatchCostPerTuple;
  } else {
    const double cand = static_cast<double>(est.scan.candidates);
    est.scan.fetch_bytes = cand * avg_blob_bytes;
    est.scan.io_cost = filter_io + cand * kPointReadCost +
                       est.scan.fetch_bytes / kPageSize;
    est.scan.eval_cost = cand * avg_blob_bytes * kEvalCostPerByte;
  }
  est.scan.total = est.scan.io_cost + est.scan.eval_cost;

  // Index-probe path: only the Staccato representation is indexed, and the
  // anchor must have resolved against the dictionary.
  if (approach == Approach::kStaccato && !anchor.empty() &&
      ctx.index != nullptr) {
    if (ctx.term_stats != nullptr) {
      auto it = ctx.term_stats->find(anchor);
      if (it != ctx.term_stats->end()) {
        est.anchor_postings = it->second.postings;
        est.anchor_docs = it->second.docs;
      }
    } else {
      // No maintained stats: posting length from the B+-tree, distinct-doc
      // count bounded by it.
      est.anchor_postings = ctx.index->CountKey(anchor);
      est.anchor_docs = std::min(est.anchor_postings, ctx.num_sfas);
    }
    est.index.feasible = true;
    est.index.candidates =
        EstimateSurvivors(est.anchor_docs, est.equality_selectivity);
    const double cand = static_cast<double>(est.index.candidates);
    est.index.fetch_bytes = cand * avg_blob_bytes;
    est.index.io_cost =
        filter_io +
        static_cast<double>(est.anchor_postings) * kPointReadCost +  // probe
        cand * kPointReadCost + est.index.fetch_bytes / kPageSize;
    est.index.eval_cost = cand * avg_blob_bytes * kEvalCostPerByte *
                          (use_projection ? kProjectionEvalDiscount : 1.0);
    est.index.total = est.index.io_cost + est.index.eval_cost;
  }
  return est;
}

std::string CostEstimate::ToString() const {
  const PathCost& c = chosen_cost();
  std::string out = StringPrintf("est-candidates=%zu sel=%.2f cost=%.1f",
                                 c.candidates, equality_selectivity, c.total);
  out += StringPrintf(" [scan=%.1f", scan.total);
  if (index.feasible) {
    out += StringPrintf(" index=%.1f (postings=%zu docs=%zu)", index.total,
                        anchor_postings, anchor_docs);
  } else {
    out += " index=n/a";
  }
  out += "]";
  return out;
}

const char* ApproachName(Approach a) {
  switch (a) {
    case Approach::kMap: return "MAP";
    case Approach::kKMap: return "k-MAP";
    case Approach::kFullSfa: return "FullSFA";
    case Approach::kStaccato: return "STACCATO";
  }
  return "?";
}

const char* IndexModeName(IndexMode m) {
  switch (m) {
    case IndexMode::kAuto: return "auto";
    case IndexMode::kNever: return "never";
    case IndexMode::kForce: return "force";
  }
  return "?";
}

const char* CandidateSourceName(CandidateSource s) {
  switch (s) {
    case CandidateSource::kFullScan: return "full-scan";
    case CandidateSource::kIndexProbe: return "index-probe";
  }
  return "?";
}

const char* FetchMethodName(FetchMethod f) {
  switch (f) {
    case FetchMethod::kNone: return "none";
    case FetchMethod::kFullBlob: return "blob";
    case FetchMethod::kProjection: return "projection";
  }
  return "?";
}

const char* EvalStrategyName(EvalStrategy e) {
  switch (e) {
    case EvalStrategy::kStrings: return "string-match";
    case EvalStrategy::kSfaDp: return "sfa-dp";
  }
  return "?";
}

Result<PlanSpec> BuildPlan(const PlanContext& ctx, Approach approach,
                           const QueryOptions& q, size_t default_threads) {
  PlanSpec plan;
  plan.approach = approach;
  plan.pattern = q.pattern;
  plan.num_ans = q.num_ans;

  // The pattern must compile; Prepare reuses the DFA, the planner only
  // needs the parse for the anchor term.
  STACCATO_ASSIGN_OR_RETURN(Pattern pat, Pattern::Parse(q.pattern));

  // Bind equality predicates against the MasterData schema.
  if (ctx.master == nullptr && !q.equalities.empty()) {
    return Status::InvalidArgument("no MasterData table to filter on");
  }
  for (const EqualityPredicate& eq : q.equalities) {
    int idx = ctx.master->schema().FindColumn(eq.column);
    if (idx < 0) {
      return Status::InvalidArgument("unknown MasterData column '" +
                                     eq.column + "' in equality predicate");
    }
    ValueType type = ctx.master->schema().column(static_cast<size_t>(idx)).type;
    STACCATO_ASSIGN_OR_RETURN(Value bound, CoerceLiteral(eq, type));
    plan.equalities.push_back({eq.column, idx, std::move(bound)});
  }

  // Candidate generation. The inverted index serves the Staccato
  // representation only. Under kAuto the cost estimate decides; kForce
  // reproduces the legacy flag behavior (error without an index, silent
  // full-scan when the pattern has no dictionary anchor); kNever pins the
  // scan.
  IndexMode mode = q.index_mode;
  if (mode == IndexMode::kAuto && q.use_index) mode = IndexMode::kForce;

  std::string anchor;
  if (approach == Approach::kStaccato && mode != IndexMode::kNever) {
    if (mode == IndexMode::kForce &&
        (ctx.index == nullptr || ctx.dict == nullptr)) {
      return Status::InvalidArgument("inverted index not built");
    }
    if (ctx.index != nullptr && ctx.dict != nullptr) {
      std::string candidate = pat.AnchorTerm();
      if (!candidate.empty() && ctx.dict->Find(candidate) != kInvalidTerm) {
        anchor = candidate;
      }
    }
  }
  plan.cost = EstimateCost(ctx, approach, q.use_projection,
                           plan.equalities.size(), anchor);
  if (!anchor.empty() &&
      (mode == IndexMode::kForce ||
       (mode == IndexMode::kAuto && plan.cost.index.feasible &&
        plan.cost.index.total < plan.cost.scan.total))) {
    plan.source = CandidateSource::kIndexProbe;
    plan.anchor = anchor;
  }
  plan.cost.chosen = plan.source;

  switch (approach) {
    case Approach::kMap:
      plan.map_only = true;
      [[fallthrough]];
    case Approach::kKMap:
      plan.fetch = FetchMethod::kNone;
      plan.eval = EvalStrategy::kStrings;
      plan.eval_threads = 1;  // one pass over kMAPData; nothing to fan out
      break;
    case Approach::kFullSfa:
    case Approach::kStaccato:
      plan.fetch = plan.source == CandidateSource::kIndexProbe &&
                           q.use_projection
                       ? FetchMethod::kProjection
                       : FetchMethod::kFullBlob;
      plan.eval = EvalStrategy::kSfaDp;
      plan.eval_threads = ResolveThreads(q.eval_threads, default_threads);
      break;
  }
  return plan;
}

Result<CandidateSet> ProbeIndex(const PlanContext& ctx,
                                const std::string& anchor) {
  CandidateSet set;
  set.anchor = anchor;
  for (uint64_t packed : ctx.index->Lookup(anchor)) {
    STACCATO_ASSIGN_OR_RETURN(Tuple t,
                              ctx.postings->Get(UnpackRecordId(packed)));
    set.postings[static_cast<DocId>(t[1].AsInt())].push_back(
        static_cast<uint64_t>(t[2].AsInt()));
    ++set.total_postings;
  }
  return set;
}

namespace {

/// The Filter operator: docs whose MasterData row satisfies every bound
/// equality. The bitmap stays empty when the plan has no predicates (all
/// docs pass). Returns a pointer into the cache (warm: no MasterData scan,
/// no copy) or into `scratch` (uncached execution).
Result<const std::vector<char>*> EqualityBitmap(const PlanContext& ctx,
                                                const PlanSpec& plan,
                                                QueryStats* stats,
                                                PlanCache* cache,
                                                std::vector<char>* scratch) {
  if (plan.equalities.empty()) return scratch;  // left empty: all pass
  if (cache != nullptr && cache->bitmap_valid) {
    if (stats != nullptr) stats->filter_from_cache = true;
    return &cache->bitmap;
  }
  std::vector<char>& allowed = *scratch;
  allowed.assign(ctx.num_sfas, 0);
  ctx.master->ResetIoStats();
  STACCATO_RETURN_NOT_OK(ctx.master->Scan([&](RecordId, const Tuple& t) {
    for (const BoundEquality& eq : plan.equalities) {
      if (t[static_cast<size_t>(eq.column_index)] != eq.value) return true;
    }
    size_t key = static_cast<size_t>(t[0].AsInt());
    if (key < allowed.size()) allowed[key] = 1;
    return true;
  }));
  if (stats != nullptr) {
    stats->heap_pages_read += ctx.master->io_stats().page_reads;
  }
  if (cache != nullptr) {
    cache->bitmap = std::move(allowed);
    cache->bitmap_valid = true;
    return &cache->bitmap;
  }
  return scratch;
}

/// One kMAPData row applied to one string-eval query's per-doc mass. The
/// single scoring rule shared by the solo scan (ExecuteStrings) and the
/// batched scan (ExecutePlanBatch), so the two paths cannot drift — batch
/// answers must stay bit-identical to solo ones. The caller guarantees
/// `key < prob->size()`.
void AccumulateKMapRow(const PlanSpec& plan, const Dfa& dfa,
                       const std::vector<char>& allowed, const Tuple& t,
                       size_t key, std::vector<double>* prob) {
  if (!plan.equalities.empty() &&
      (key >= allowed.size() || !allowed[key])) {
    return;
  }
  if (plan.map_only && t[1].AsInt() != 0) return;
  if (dfa.Matches(t[2].AsString())) {
    (*prob)[key] += std::exp(t[3].AsDouble());
  }
}

/// Candidates surviving the equality filter (all docs when unfiltered).
size_t CountStringCandidates(const PlanContext& ctx, const PlanSpec& plan,
                             const std::vector<char>& allowed) {
  if (plan.equalities.empty()) return ctx.num_sfas;
  return static_cast<size_t>(std::count(allowed.begin(), allowed.end(), 1));
}

/// TopK over accumulated per-doc mass, clamped to a probability.
std::vector<Answer> RankStringAnswers(const std::vector<double>& prob,
                                      size_t num_ans) {
  std::vector<Answer> answers;
  for (size_t i = 0; i < prob.size(); ++i) {
    if (prob[i] > 0.0) answers.push_back({i, std::min(prob[i], 1.0)});
  }
  return RankAnswers(std::move(answers), num_ans);
}

/// Execution prologue shared by ExecutePlan and ExecutePlanBatch: every
/// run-scoped QueryStats field is (re)set here so a reused stats object
/// never leaks a previous run's values into either path.
void InitQueryStats(QueryStats* stats, const PlanSpec& plan,
                    size_t batch_size) {
  if (stats == nullptr) return;
  stats->used_index = plan.source == CandidateSource::kIndexProbe;
  stats->used_projection = plan.fetch == FetchMethod::kProjection;
  stats->plan_summary = PlanSummary(plan);
  stats->threads_used = 1;
  stats->fetch_threads = 1;
  stats->est_candidates = plan.cost.chosen_cost().candidates;
  stats->est_cost = plan.cost.chosen_cost().total;
  stats->filter_from_cache = false;
  stats->candidates_from_cache = false;
  stats->batch_size = batch_size;
  stats->shared_candidate_pass = false;
}

/// Entries built against older data are dead; start the cache over at the
/// current generation.
void ResetStaleCache(PlanCache* cache, const PlanContext& ctx) {
  if (cache != nullptr && cache->generation != ctx.load_generation) {
    *cache = PlanCache{};
    cache->generation = ctx.load_generation;
  }
}

/// Strings Eval: one scan over kMAPData accumulating per-doc match mass.
Result<std::vector<Answer>> ExecuteStrings(const PlanContext& ctx,
                                           const PlanSpec& plan,
                                           const Dfa& dfa,
                                           const std::vector<char>& allowed,
                                           QueryStats* stats) {
  std::vector<double> prob(ctx.num_sfas, 0.0);
  ctx.kmap->ResetIoStats();
  STACCATO_RETURN_NOT_OK(ctx.kmap->Scan([&](RecordId, const Tuple& t) {
    size_t key = static_cast<size_t>(t[0].AsInt());
    if (key < prob.size()) {  // skip rows beyond the loaded cardinality
      AccumulateKMapRow(plan, dfa, allowed, t, key, &prob);
    }
    return true;
  }));
  if (stats != nullptr) {
    size_t candidates = CountStringCandidates(ctx, plan, allowed);
    stats->heap_pages_read += ctx.kmap->io_stats().page_reads;
    stats->candidates = candidates;
    stats->selectivity = ctx.num_sfas == 0
                             ? 0.0
                             : static_cast<double>(candidates) /
                                   static_cast<double>(ctx.num_sfas);
    stats->threads_used = 1;
  }
  return RankStringAnswers(prob, plan.num_ans);
}

struct SfaCandidate {
  DocId doc = 0;
  std::vector<uint64_t> postings;  // packed; empty on the full-scan path
  std::string blob;                // serialized SFA (solo execution only)
};

/// Projection Eval over an already-deserialized transducer: score the
/// region around each posting start; the best region bounds the match
/// probability.
double EvalProjectedSfa(const Sfa& sfa, const std::vector<uint64_t>& postings,
                        const Dfa& dfa, size_t horizon) {
  double best = 0.0;
  for (uint64_t packed : postings) {
    Posting post = UnpackPosting(packed);
    if (post.edge >= sfa.NumEdges()) continue;
    NodeId from = sfa.edge(post.edge).from;
    best = std::max(best, EvalProjected(sfa, dfa, from, horizon));
  }
  return best;
}

/// Projection Eval for one fetched candidate blob (solo execution path).
Result<double> EvalProjectedBlob(const std::string& blob,
                                 const std::vector<uint64_t>& postings,
                                 const Dfa& dfa, size_t horizon) {
  STACCATO_ASSIGN_OR_RETURN(Sfa sfa, Sfa::Deserialize(blob));
  return EvalProjectedSfa(sfa, postings, dfa, horizon);
}

/// The CandidateGen operator for the SFA approaches: the plan's candidate
/// documents in ascending-doc order, filtered by the equality bitmap. A
/// warm cache serves the probed CandidateSet without touching the B+-tree
/// or the postings relation. `total_postings` reports the probe size.
Result<std::vector<SfaCandidate>> BuildSfaCandidates(
    const PlanContext& ctx, const PlanSpec& plan,
    const std::vector<char>& allowed, QueryStats* stats, PlanCache* cache,
    size_t* total_postings) {
  const bool filtered = !plan.equalities.empty();
  std::vector<SfaCandidate> cands;
  *total_postings = 0;
  if (plan.source == CandidateSource::kIndexProbe) {
    if (ctx.index == nullptr || ctx.dict == nullptr ||
        ctx.dict->Find(plan.anchor) == kInvalidTerm) {
      // The plan was frozen against an index the database has since
      // dropped (data reloaded) or rebuilt with a dictionary that no
      // longer contains the anchor; probing would silently miss answers.
      return Status::InvalidArgument(
          "plan probes an inverted index that no longer serves anchor '" +
          plan.anchor + "'; re-prepare after BuildInvertedIndex");
    }
    CandidateSet probed;
    CandidateSet* owned = nullptr;  // postings may be moved out
    const CandidateSet* set = nullptr;
    if (cache != nullptr && cache->candidates_valid) {
      set = &cache->candidates;
      if (stats != nullptr) stats->candidates_from_cache = true;
    } else {
      STACCATO_ASSIGN_OR_RETURN(probed, ProbeIndex(ctx, plan.anchor));
      if (cache != nullptr) {
        cache->candidates = std::move(probed);
        cache->candidates_valid = true;
        set = &cache->candidates;
      } else {
        owned = &probed;
        set = &probed;
      }
    }
    *total_postings = set->total_postings;
    cands.reserve(set->NumDocs());
    // Only the projection path reads per-candidate postings; the blob
    // fetch ignores them, so skip carrying them at all in that case.
    const bool need_postings = plan.fetch == FetchMethod::kProjection;
    if (owned != nullptr) {
      // Uncached execution: the set is local, so hand its posting vectors
      // to the candidates instead of copying them.
      for (auto& [doc, posts] : owned->postings) {
        if (filtered && (doc >= allowed.size() || !allowed[doc])) continue;
        cands.push_back({doc, {}, {}});
        if (need_postings) cands.back().postings = std::move(posts);
      }
    } else {
      for (const auto& [doc, posts] : set->postings) {
        if (filtered && (doc >= allowed.size() || !allowed[doc])) continue;
        cands.push_back({doc, {}, {}});
        if (need_postings) cands.back().postings = posts;
      }
    }
  } else {
    cands.reserve(ctx.num_sfas);
    for (DocId doc = 0; doc < ctx.num_sfas; ++doc) {
      if (filtered && (doc >= allowed.size() || !allowed[doc])) continue;
      cands.push_back({doc, {}, {}});
    }
  }
  return cands;
}

/// SFA Eval: Fetch (heap point-get + blob read, fanned over the shared
/// pool — the storage read paths are concurrent-safe), then the
/// embarrassingly parallel DP stage. Per-candidate results are gathered
/// positionally, so the ranked answers are bit-identical for any thread
/// count.
Result<std::vector<Answer>> ExecuteSfas(const PlanContext& ctx,
                                        const PlanSpec& plan, const Dfa& dfa,
                                        const std::vector<char>& allowed,
                                        QueryStats* stats, PlanCache* cache) {
  const bool full = plan.approach == Approach::kFullSfa;
  const std::vector<RecordId>& rids = full ? *ctx.fullsfa_rid : *ctx.graph_rid;
  HeapTable* blob_table = full ? ctx.fullsfa : ctx.staccato_graph;

  size_t total_postings = 0;
  STACCATO_ASSIGN_OR_RETURN(
      std::vector<SfaCandidate> cands,
      BuildSfaCandidates(ctx, plan, allowed, stats, cache, &total_postings));

  ctx.blobs->ResetStats();
  auto fetch_one = [&](SfaCandidate& cand) -> Status {
    if (cand.doc >= rids.size()) return Status::NotFound("no such DataKey");
    STACCATO_ASSIGN_OR_RETURN(Tuple t, blob_table->Get(rids[cand.doc]));
    STACCATO_ASSIGN_OR_RETURN(cand.blob, ctx.blobs->Get(t[1].AsBlobId()));
    return Status::OK();
  };
  const size_t horizon = plan.pattern.size() + 8;
  auto eval_one = [&](const SfaCandidate& cand) -> Result<double> {
    if (plan.fetch == FetchMethod::kProjection) {
      return EvalProjectedBlob(cand.blob, cand.postings, dfa, horizon);
    }
    return EvalSerializedSfa(cand.blob, dfa);
  };

  size_t threads = std::max<size_t>(1, plan.eval_threads);
  threads = std::min(threads, cands.empty() ? size_t{1} : cands.size());
  size_t fetch_threads = 1;
  std::vector<double> prob(cands.size(), 0.0);
  if (threads <= 1) {
    // Stream: fetch, evaluate, and release one candidate at a time, so
    // peak memory is a single serialized SFA (the legacy profile).
    for (size_t i = 0; i < cands.size(); ++i) {
      STACCATO_RETURN_NOT_OK(fetch_one(cands[i]));
      STACCATO_ASSIGN_OR_RETURN(prob[i], eval_one(cands[i]));
      cands[i].blob = std::string();
    }
  } else {
    // Parallel: Fetch materializes the candidate blobs with concurrent
    // storage reads (heap gets serialize briefly on the table latch; blob
    // reads are positioned I/O and overlap fully), then the DP stage fans
    // out over the same pool. (Trades memory — all candidate blobs at
    // once — for the parallel speedup the caller asked for.)
    fetch_threads = threads;
    STACCATO_RETURN_NOT_OK(ParallelFor(
        cands.size(), /*grain=*/1,
        [&](size_t i) { return fetch_one(cands[i]); },
        ParallelOptions{threads}));
    STACCATO_RETURN_NOT_OK(ParallelFor(
        cands.size(), /*grain=*/1,
        [&](size_t i) -> Status {
          STACCATO_ASSIGN_OR_RETURN(prob[i], eval_one(cands[i]));
          return Status::OK();
        },
        ParallelOptions{threads}));
  }

  if (stats != nullptr) {
    stats->blob_bytes_read += ctx.blobs->bytes_read();
    stats->candidates = cands.size();
    stats->index_postings = total_postings;
    stats->selectivity = ctx.num_sfas == 0
                             ? 0.0
                             : static_cast<double>(cands.size()) /
                                   static_cast<double>(ctx.num_sfas);
    stats->threads_used = threads;
    stats->fetch_threads = fetch_threads;
  }

  std::vector<Answer> answers;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (prob[i] > 0.0) answers.push_back({cands[i].doc, prob[i]});
  }
  return RankAnswers(std::move(answers), plan.num_ans);
}

}  // namespace

Result<std::vector<Answer>> ExecutePlan(const PlanContext& ctx,
                                        const PlanSpec& plan, const Dfa& dfa,
                                        QueryStats* stats, PlanCache* cache) {
  InitQueryStats(stats, plan, /*batch_size=*/0);
  ResetStaleCache(cache, ctx);
  std::vector<char> scratch;
  STACCATO_ASSIGN_OR_RETURN(
      const std::vector<char>* allowed,
      EqualityBitmap(ctx, plan, stats, cache, &scratch));
  switch (plan.eval) {
    case EvalStrategy::kStrings:
      return ExecuteStrings(ctx, plan, dfa, *allowed, stats);
    case EvalStrategy::kSfaDp:
      return ExecuteSfas(ctx, plan, dfa, *allowed, stats, cache);
  }
  return Status::InvalidArgument("unknown eval strategy");
}

Result<std::vector<std::vector<Answer>>> ExecutePlanBatch(
    const PlanContext& ctx, const std::vector<BatchItem>& items,
    BatchStats* batch_stats) {
  const size_t n = items.size();
  std::vector<std::vector<Answer>> results(n);
  if (batch_stats != nullptr) {
    batch_stats->queries = n;
    batch_stats->kmap_scan_passes = 0;
    batch_stats->distinct_docs_fetched = 0;
    batch_stats->total_candidates = 0;
    batch_stats->fetch_threads = 1;
    batch_stats->eval_threads = 1;
  }
  if (n == 0) return results;

  // Per-item prologue, identical to ExecutePlan: stats shape, cache
  // generation check, equality bitmap. Then split by eval strategy — the
  // string approaches share a kMAPData scan, the SFA approaches share a
  // Fetch pass.
  std::vector<std::vector<char>> scratch(n);
  std::vector<const std::vector<char>*> allowed(n, nullptr);
  std::vector<size_t> strings_items, sfa_items;
  for (size_t i = 0; i < n; ++i) {
    const BatchItem& item = items[i];
    if (item.plan == nullptr || item.dfa == nullptr) {
      return Status::InvalidArgument("batch item missing plan or DFA");
    }
    const PlanSpec& plan = *item.plan;
    InitQueryStats(item.stats, plan, /*batch_size=*/n);
    ResetStaleCache(item.cache, ctx);
    STACCATO_ASSIGN_OR_RETURN(
        allowed[i],
        EqualityBitmap(ctx, plan, item.stats, item.cache, &scratch[i]));
    (plan.eval == EvalStrategy::kStrings ? strings_items : sfa_items)
        .push_back(i);
  }

  // ---- String-eval members: one shared kMAPData scan -----------------------
  // Every member sees the rows in storage order and accumulates its own
  // per-doc mass, so each result is bit-identical to its solo ExecuteStrings
  // pass — the scan itself just happens once instead of once per query.
  if (!strings_items.empty()) {
    const size_t m = strings_items.size();
    std::vector<std::vector<double>> prob(
        m, std::vector<double>(ctx.num_sfas, 0.0));
    ctx.kmap->ResetIoStats();
    STACCATO_RETURN_NOT_OK(ctx.kmap->Scan([&](RecordId, const Tuple& t) {
      size_t key = static_cast<size_t>(t[0].AsInt());
      if (key >= ctx.num_sfas) return true;  // row beyond loaded cardinality
      for (size_t j = 0; j < m; ++j) {
        AccumulateKMapRow(*items[strings_items[j]].plan,
                          *items[strings_items[j]].dfa,
                          *allowed[strings_items[j]], t, key, &prob[j]);
      }
      return true;
    }));
    const uint64_t scan_reads = ctx.kmap->io_stats().page_reads;
    for (size_t j = 0; j < m; ++j) {
      const size_t i = strings_items[j];
      const PlanSpec& plan = *items[i].plan;
      size_t candidates = CountStringCandidates(ctx, plan, *allowed[i]);
      if (QueryStats* st = items[i].stats; st != nullptr) {
        st->heap_pages_read += scan_reads;
        st->candidates = candidates;
        st->selectivity = ctx.num_sfas == 0
                              ? 0.0
                              : static_cast<double>(candidates) /
                                    static_cast<double>(ctx.num_sfas);
        st->threads_used = 1;
        st->shared_candidate_pass = m > 1;
      }
      if (batch_stats != nullptr) batch_stats->total_candidates += candidates;
      results[i] = RankStringAnswers(prob[j], plan.num_ans);
    }
    if (batch_stats != nullptr) batch_stats->kmap_scan_passes = 1;
  }

  // ---- SFA-eval members: one shared Fetch pass ----------------------------
  if (!sfa_items.empty()) {
    struct SfaWork {
      size_t item = 0;                  // index into `items`
      std::vector<SfaCandidate> cands;  // this plan's candidates, doc order
      size_t total_postings = 0;
    };
    std::vector<SfaWork> group;
    group.reserve(sfa_items.size());
    for (size_t i : sfa_items) {
      SfaWork w;
      w.item = i;
      STACCATO_ASSIGN_OR_RETURN(
          w.cands,
          BuildSfaCandidates(ctx, *items[i].plan, *allowed[i], items[i].stats,
                             items[i].cache, &w.total_postings));
      group.push_back(std::move(w));
    }

    // Shared Fetch: each distinct (representation, doc) blob is read AND
    // deserialized once, however many batch members evaluate it — the eval
    // stage then shares the transducer across every (query, doc) pair.
    // Keyed also by representation because FullSFA and Staccato plans
    // fetch from different tables.
    ctx.blobs->ResetStats();
    std::map<std::pair<bool, DocId>, Sfa> sfa_map;
    for (const SfaWork& w : group) {
      const bool full = items[w.item].plan->approach == Approach::kFullSfa;
      for (const SfaCandidate& c : w.cands) {
        sfa_map.emplace(std::make_pair(full, c.doc), Sfa());
      }
    }
    using SfaEntry = std::pair<const std::pair<bool, DocId>, Sfa>;
    std::vector<SfaEntry*> fetches;
    fetches.reserve(sfa_map.size());
    for (auto& entry : sfa_map) fetches.push_back(&entry);
    size_t requested = 1;
    for (const SfaWork& w : group) {
      requested = std::max(requested, items[w.item].plan->eval_threads);
    }
    // Clamp each stage's fan-out to its work size, like solo ExecuteSfas
    // does, so reported thread counts never exceed what could run.
    const size_t fetch_workers =
        std::min(requested, std::max<size_t>(1, fetches.size()));
    STACCATO_RETURN_NOT_OK(ParallelFor(
        fetches.size(), /*grain=*/1,
        [&](size_t k) -> Status {
          const bool full = fetches[k]->first.first;
          const DocId doc = fetches[k]->first.second;
          const std::vector<RecordId>& rids =
              full ? *ctx.fullsfa_rid : *ctx.graph_rid;
          if (doc >= rids.size()) return Status::NotFound("no such DataKey");
          HeapTable* table = full ? ctx.fullsfa : ctx.staccato_graph;
          STACCATO_ASSIGN_OR_RETURN(Tuple t, table->Get(rids[doc]));
          STACCATO_ASSIGN_OR_RETURN(std::string blob,
                                    ctx.blobs->Get(t[1].AsBlobId()));
          STACCATO_ASSIGN_OR_RETURN(fetches[k]->second,
                                    Sfa::Deserialize(blob));
          return Status::OK();
        },
        ParallelOptions{fetch_workers}));
    const uint64_t fetched_bytes = ctx.blobs->bytes_read();

    // Eval every (query, candidate) pair on the pool; results gather
    // positionally per query, exactly as in solo execution. The shared
    // transducer is resolved once per pair here — the map is frozen after
    // the fetch pass — keeping the tree lookups out of the hot loop.
    struct PairRef {
      size_t g = 0;
      size_t k = 0;
      const Sfa* sfa = nullptr;
    };
    std::vector<PairRef> pairs;
    std::vector<std::vector<double>> prob(group.size());
    for (size_t g = 0; g < group.size(); ++g) {
      prob[g].assign(group[g].cands.size(), 0.0);
      const bool full = items[group[g].item].plan->approach == Approach::kFullSfa;
      for (size_t k = 0; k < group[g].cands.size(); ++k) {
        pairs.push_back(
            {g, k, &sfa_map.at(std::make_pair(full, group[g].cands[k].doc))});
      }
    }
    const size_t eval_workers =
        std::min(requested, std::max<size_t>(1, pairs.size()));
    STACCATO_RETURN_NOT_OK(ParallelFor(
        pairs.size(), /*grain=*/1,
        [&](size_t p) -> Status {
          const SfaWork& w = group[pairs[p].g];
          const SfaCandidate& cand = w.cands[pairs[p].k];
          const PlanSpec& plan = *items[w.item].plan;
          const Dfa& dfa = *items[w.item].dfa;
          const Sfa& sfa = *pairs[p].sfa;
          double& out = prob[pairs[p].g][pairs[p].k];
          if (plan.fetch == FetchMethod::kProjection) {
            out = EvalProjectedSfa(sfa, cand.postings, dfa,
                                   plan.pattern.size() + 8);
          } else {
            out = EvalSfaQuery(sfa, dfa);
          }
          return Status::OK();
        },
        ParallelOptions{eval_workers}));

    for (size_t g = 0; g < group.size(); ++g) {
      const SfaWork& w = group[g];
      const PlanSpec& plan = *items[w.item].plan;
      if (QueryStats* st = items[w.item].stats; st != nullptr) {
        st->blob_bytes_read += fetched_bytes;  // batch-wide shared pass
        st->candidates = w.cands.size();
        st->index_postings = w.total_postings;
        st->selectivity = ctx.num_sfas == 0
                              ? 0.0
                              : static_cast<double>(w.cands.size()) /
                                    static_cast<double>(ctx.num_sfas);
        st->threads_used = eval_workers;
        st->fetch_threads = fetch_workers;
        st->shared_candidate_pass = group.size() > 1;
      }
      if (batch_stats != nullptr) {
        batch_stats->total_candidates += w.cands.size();
      }
      std::vector<Answer> answers;
      for (size_t k = 0; k < w.cands.size(); ++k) {
        if (prob[g][k] > 0.0) answers.push_back({w.cands[k].doc, prob[g][k]});
      }
      results[w.item] = RankAnswers(std::move(answers), plan.num_ans);
    }
    if (batch_stats != nullptr) {
      batch_stats->distinct_docs_fetched = sfa_map.size();
      batch_stats->fetch_threads = fetch_workers;
      batch_stats->eval_threads = eval_workers;
    }
  }
  return results;
}

std::string ExplainPlan(const PlanSpec& plan) {
  std::string out = StringPrintf("QueryPlan approach=%s pattern='%s'\n",
                                 ApproachName(plan.approach),
                                 plan.pattern.c_str());
  out += StringPrintf("  -> CandidateGen source=%s",
                      CandidateSourceName(plan.source));
  if (plan.source == CandidateSource::kIndexProbe) {
    out += StringPrintf(" anchor='%s'", plan.anchor.c_str());
  }
  out += "\n";
  for (const BoundEquality& eq : plan.equalities) {
    out += StringPrintf("  -> Filter %s = %s\n", eq.column.c_str(),
                        eq.value.ToString().c_str());
  }
  if (plan.fetch != FetchMethod::kNone) {
    out += StringPrintf("  -> Fetch method=%s\n", FetchMethodName(plan.fetch));
  }
  out += StringPrintf("  -> Eval strategy=%s threads=%zu\n",
                      EvalStrategyName(plan.eval), plan.eval_threads);
  out += StringPrintf("  -> TopK num_ans=%zu\n", plan.num_ans);
  out += StringPrintf("  Cost: %s\n", plan.cost.ToString().c_str());
  return out;
}

std::string ExplainPlan(const PlanSpec& plan, const QueryStats& stats) {
  std::string out = ExplainPlan(plan);
  out += StringPrintf(
      "  Actual: candidates=%zu (est %zu), threads: fetch=%zu eval=%zu, "
      "cache: filter=%s candidates=%s\n",
      stats.candidates, stats.est_candidates, stats.fetch_threads,
      stats.threads_used, stats.filter_from_cache ? "hit" : "miss",
      stats.candidates_from_cache ? "hit" : "miss");
  if (stats.batch_size > 0) {
    out += StringPrintf("  Batch: size=%zu shared-candidate-pass=%s\n",
                        stats.batch_size,
                        stats.shared_candidate_pass ? "yes" : "no");
  }
  return out;
}

std::string PlanSummary(const PlanSpec& plan) {
  std::string out = CandidateSourceName(plan.source);
  if (!plan.equalities.empty()) {
    out += StringPrintf(">filter(%zu)", plan.equalities.size());
  }
  if (plan.fetch != FetchMethod::kNone) {
    out += ">";
    out += FetchMethodName(plan.fetch);
  }
  out += ">";
  out += EvalStrategyName(plan.eval);
  if (plan.eval == EvalStrategy::kSfaDp) {
    out += StringPrintf("[t=%zu]", plan.eval_threads);
  }
  out += StringPrintf(">top-%zu", plan.num_ans);
  return out;
}

}  // namespace staccato::rdbms
