#include "rdbms/plan.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <limits>
#include <map>
#include <numeric>
#include <utility>

#include "automata/pattern.h"
#include "indexing/projection.h"
#include "inference/query_eval.h"
#include "rdbms/service.h"
#include "telemetry/clock.h"
#include "util/mutex.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace staccato::rdbms {

namespace {

/// Stage-timing read: seconds elapsed since a MonotonicNanos() reading.
/// All executor stage timings go through the telemetry clock seam so a
/// FakeClock makes them deterministic under test.
double SecondsSince(uint64_t start_ns) {
  return static_cast<double>(telemetry::MonotonicNanos() - start_ns) / 1e9;
}

/// One cancellation-point poll of the (optional) per-query control block.
/// OK with `*cut_now` false = keep going; OK with `*cut_now` true = the
/// budget ran out but the caller allows partial results, so stop visiting
/// new work and degrade; non-OK = fail the query with DeadlineExceeded.
/// A null control (legacy unbudgeted execution) is free.
Status PollControl(QueryControl* control, bool* cut_now) {
  *cut_now = false;
  if (control == nullptr) return Status::OK();
  if (control->cut()) {
    *cut_now = true;
    return Status::OK();
  }
  Status st = control->Check();
  if (st.ok()) return st;
  if (control->allow_partial()) {
    control->MarkCut();
    *cut_now = true;
    return Status::OK();
  }
  return st;
}

/// Coerces an equality literal (kept as written by the SQL parser) to the
/// type of the MasterData column it compares against.
Result<Value> CoerceLiteral(const EqualityPredicate& eq, ValueType type) {
  if (eq.quoted && (type == ValueType::kInt || type == ValueType::kDouble)) {
    return Status::InvalidArgument("string literal '" + eq.value +
                                   "' compared to numeric column " + eq.column);
  }
  switch (type) {
    case ValueType::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(eq.value.c_str(), &end, 10);
      if (end == eq.value.c_str() || *end != '\0') {
        return Status::InvalidArgument("equality literal '" + eq.value +
                                       "' is not an integer (column " +
                                       eq.column + ")");
      }
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(eq.value.c_str(), &end);
      if (end == eq.value.c_str() || *end != '\0') {
        return Status::InvalidArgument("equality literal '" + eq.value +
                                       "' is not a number (column " +
                                       eq.column + ")");
      }
      return Value::Double(v);
    }
    case ValueType::kString:
      return Value::String(eq.value);
    case ValueType::kBlobId:
      return Status::InvalidArgument("cannot compare blob column " +
                                     eq.column);
  }
  return Status::InvalidArgument("unknown column type");
}

size_t ResolveThreads(size_t requested, size_t default_threads) {
  size_t t = requested == 0 ? default_threads : requested;
  if (t == 0) t = ThreadPool::DefaultThreads();
  return t;
}

// ---- Cost model ------------------------------------------------------------
//
// Costs are abstract units where 1.0 is one sequential 8 KiB page read.
// The constants (CostConstants, plan.h) only have to rank the scan and
// index paths of the same query correctly; they are not wall-clock
// predictions.
//
// Calibration (bench_table1_costmodel "calibration" section +
// bench_topk_earlystop kernel table, Release build, reference container):
//
//   * One B+-tree descent + heap point Get + blob read measures ~0.65 µs
//     warm. That operation is priced point_read_cost = 2.0, anchoring the
//     abstract unit at ≈ 0.33 µs.
//   * The DFA×SFA DP costs ~4.8 ns per (label-char × dfa-state) step, and
//     stored chunk blobs carry ~0.7 steps per serialized byte per DFA
//     state — with the short contains-DFAs of the workload, ~4.9 ns of
//     eval per blob byte through the view kernel (warm scratch).
//
// eval_cost_per_byte = 4.9 ns / 0.33 µs ≈ 1/67, rounded to 1/64. The
// pre-calibration guess of 1/256 undercharged Eval ~4× against the I/O
// terms and made the planner too scan-happy on large blobs.
// string_match_cost_per_tuple stays 1/64: one DFA pass over a ~100-char
// stored transcription ≈ 0.3–0.5 µs ≈ one eval unit.

size_t EstimateSurvivors(size_t rows, double selectivity) {
  if (rows == 0) return 0;
  return static_cast<size_t>(
      std::max(1.0, std::ceil(static_cast<double>(rows) * selectivity)));
}

}  // namespace

CostEstimate EstimateCost(const PlanContext& ctx, Approach approach,
                          bool use_projection, size_t num_equalities,
                          const std::string& anchor,
                          const CostConstants& consts) {
  CostEstimate est;
  est.table_cardinality = ctx.num_sfas;
  est.equality_selectivity = std::pow(consts.equality_default_selectivity,
                                      static_cast<double>(num_equalities));
  // Warm-cache Fetch pricing: the blob store's lifetime cached-read
  // counters say what fraction of *blob* fetches have been skipping disk
  // (the shared cache's own stats mix in heap-page traffic, which says
  // nothing about blob warmth). A cold or absent cache estimates 0 and
  // the formulas below degrade to the pure disk model. The estimate is a
  // snapshot frozen into the plan — it does not chase the cache while the
  // plan executes.
  if (ctx.cache != nullptr && ctx.blobs != nullptr) {
    const uint64_t hits = ctx.blobs->lifetime_cache_hits();
    const uint64_t misses = ctx.blobs->lifetime_cache_misses();
    if (hits + misses > 0) {
      est.cache_hit_rate =
          static_cast<double>(hits) / static_cast<double>(hits + misses);
    }
  }
  const double miss_rate = 1.0 - est.cache_hit_rate;
  // Filtering costs one MasterData filescan to build the bitmap.
  const double filter_io =
      num_equalities > 0 && ctx.master != nullptr
          ? static_cast<double>(ctx.master->NumPages())
          : 0.0;

  // Average serialized-SFA size, from blob-store totals. The store holds
  // one full and one chunked transducer per document; the mixed average is
  // crude but cancels out of the scan-vs-index comparison, which fetches
  // the same representation either way.
  const size_t num_blobs = 2 * ctx.num_sfas;
  const double avg_blob_bytes =
      ctx.blobs == nullptr || num_blobs == 0
          ? 0.0
          : static_cast<double>(ctx.blobs->FileBytes()) /
                static_cast<double>(num_blobs);

  // Full-scan path.
  est.scan.feasible = true;
  est.scan.candidates =
      EstimateSurvivors(ctx.num_sfas, est.equality_selectivity);
  if (approach == Approach::kMap || approach == Approach::kKMap) {
    // One pass over kMAPData; no blob fetches.
    est.scan.io_cost =
        filter_io +
        (ctx.kmap != nullptr ? static_cast<double>(ctx.kmap->NumPages()) : 0.0);
    est.scan.eval_cost =
        (ctx.kmap != nullptr ? static_cast<double>(ctx.kmap->NumTuples())
                             : 0.0) *
        consts.string_match_cost_per_tuple;
  } else {
    const double cand = static_cast<double>(est.scan.candidates);
    est.scan.fetch_bytes = cand * avg_blob_bytes;
    // A cache hit skips the whole fetch unit — the blob-row point get
    // AND the pread — paying cache_hit_cost instead (the executor probes
    // the cache before resolving the blob id).
    est.scan.io_cost =
        filter_io +
        miss_rate * (cand * consts.point_read_cost +
                     est.scan.fetch_bytes / kPageSize) +
        cand * est.cache_hit_rate * consts.cache_hit_cost;
    est.scan.eval_cost = cand * avg_blob_bytes * consts.eval_cost_per_byte;
  }
  est.scan.total = est.scan.io_cost + est.scan.eval_cost;

  // Index-probe path: only the Staccato representation is indexed, and the
  // anchor must have resolved against the dictionary.
  if (approach == Approach::kStaccato && !anchor.empty() &&
      ctx.index != nullptr) {
    if (ctx.term_stats != nullptr) {
      auto it = ctx.term_stats->find(anchor);
      if (it != ctx.term_stats->end()) {
        est.anchor_postings = it->second.postings;
        est.anchor_docs = it->second.docs;
      }
    } else {
      // No maintained stats: posting length from the B+-tree, distinct-doc
      // count bounded by it.
      est.anchor_postings = ctx.index->CountKey(anchor);
      est.anchor_docs = std::min(est.anchor_postings, ctx.num_sfas);
    }
    est.index.feasible = true;
    est.index.candidates =
        EstimateSurvivors(est.anchor_docs, est.equality_selectivity);
    const double cand = static_cast<double>(est.index.candidates);
    est.index.fetch_bytes = cand * avg_blob_bytes;
    est.index.io_cost =
        filter_io +
        static_cast<double>(est.anchor_postings) * consts.point_read_cost +
        miss_rate * (cand * consts.point_read_cost +
                     est.index.fetch_bytes / kPageSize) +
        cand * est.cache_hit_rate * consts.cache_hit_cost;
    est.index.eval_cost =
        cand * avg_blob_bytes * consts.eval_cost_per_byte *
        (use_projection ? consts.projection_eval_discount : 1.0);
    est.index.total = est.index.io_cost + est.index.eval_cost;
  }
  return est;
}

std::string CostEstimate::ToString() const {
  const PathCost& c = chosen_cost();
  std::string out = StringPrintf("est-candidates=%zu sel=%.2f cost=%.1f",
                                 c.candidates, equality_selectivity, c.total);
  if (cache_hit_rate > 0.0) {
    out += StringPrintf(" warm-hit=%.2f", cache_hit_rate);
  }
  out += StringPrintf(" [scan=%.1f", scan.total);
  if (index.feasible) {
    out += StringPrintf(" index=%.1f (postings=%zu docs=%zu)", index.total,
                        anchor_postings, anchor_docs);
  } else {
    out += " index=n/a";
  }
  out += "]";
  return out;
}

const char* ApproachName(Approach a) {
  switch (a) {
    case Approach::kMap: return "MAP";
    case Approach::kKMap: return "k-MAP";
    case Approach::kFullSfa: return "FullSFA";
    case Approach::kStaccato: return "STACCATO";
  }
  return "?";
}

const char* IndexModeName(IndexMode m) {
  switch (m) {
    case IndexMode::kAuto: return "auto";
    case IndexMode::kNever: return "never";
    case IndexMode::kForce: return "force";
  }
  return "?";
}

const char* CandidateSourceName(CandidateSource s) {
  switch (s) {
    case CandidateSource::kFullScan: return "full-scan";
    case CandidateSource::kIndexProbe: return "index-probe";
  }
  return "?";
}

const char* FetchMethodName(FetchMethod f) {
  switch (f) {
    case FetchMethod::kNone: return "none";
    case FetchMethod::kFullBlob: return "blob";
    case FetchMethod::kProjection: return "projection";
  }
  return "?";
}

const char* EvalStrategyName(EvalStrategy e) {
  switch (e) {
    case EvalStrategy::kStrings: return "string-match";
    case EvalStrategy::kSfaDp: return "sfa-dp";
  }
  return "?";
}

Result<PlanSpec> BuildPlan(const PlanContext& ctx, Approach approach,
                           const QueryOptions& q, size_t default_threads) {
  PlanSpec plan;
  plan.approach = approach;
  plan.pattern = q.pattern;
  plan.num_ans = q.num_ans;
  plan.early_stop = q.early_stop;

  // The pattern must compile; Prepare reuses the DFA, the planner only
  // needs the parse for the anchor term.
  STACCATO_ASSIGN_OR_RETURN(Pattern pat, Pattern::Parse(q.pattern));

  // Bind equality predicates against the MasterData schema.
  if (ctx.master == nullptr && !q.equalities.empty()) {
    return Status::InvalidArgument("no MasterData table to filter on");
  }
  for (const EqualityPredicate& eq : q.equalities) {
    int idx = ctx.master->schema().FindColumn(eq.column);
    if (idx < 0) {
      return Status::InvalidArgument("unknown MasterData column '" +
                                     eq.column + "' in equality predicate");
    }
    ValueType type = ctx.master->schema().column(static_cast<size_t>(idx)).type;
    STACCATO_ASSIGN_OR_RETURN(Value bound, CoerceLiteral(eq, type));
    plan.equalities.push_back({eq.column, idx, std::move(bound)});
  }

  // Candidate generation. The inverted index serves the Staccato
  // representation only. Under kAuto the cost estimate decides; kForce
  // reproduces the legacy flag behavior (error without an index, silent
  // full-scan when the pattern has no dictionary anchor); kNever pins the
  // scan.
  IndexMode mode = q.index_mode;
  if (mode == IndexMode::kAuto && q.use_index) mode = IndexMode::kForce;

  std::string anchor;
  if (approach == Approach::kStaccato && mode != IndexMode::kNever) {
    if (mode == IndexMode::kForce &&
        (ctx.index == nullptr || ctx.dict == nullptr)) {
      return Status::InvalidArgument("inverted index not built");
    }
    if (ctx.index != nullptr && ctx.dict != nullptr) {
      std::string candidate = pat.AnchorTerm();
      if (!candidate.empty() && ctx.dict->Find(candidate) != kInvalidTerm) {
        anchor = candidate;
      }
    }
  }
  plan.cost = EstimateCost(ctx, approach, q.use_projection,
                           plan.equalities.size(), anchor);
  if (!anchor.empty() &&
      (mode == IndexMode::kForce ||
       (mode == IndexMode::kAuto && plan.cost.index.feasible &&
        plan.cost.index.total < plan.cost.scan.total))) {
    plan.source = CandidateSource::kIndexProbe;
    plan.anchor = anchor;
  }
  plan.cost.chosen = plan.source;

  switch (approach) {
    case Approach::kMap:
      plan.map_only = true;
      [[fallthrough]];
    case Approach::kKMap:
      plan.fetch = FetchMethod::kNone;
      plan.eval = EvalStrategy::kStrings;
      // The kMAPData pass chunks across the pool (page-snapshot scan with
      // order-preserving merge), so it fans out like the SFA eval does.
      plan.eval_threads = ResolveThreads(q.eval_threads, default_threads);
      break;
    case Approach::kFullSfa:
    case Approach::kStaccato:
      plan.fetch = plan.source == CandidateSource::kIndexProbe &&
                           q.use_projection
                       ? FetchMethod::kProjection
                       : FetchMethod::kFullBlob;
      plan.eval = EvalStrategy::kSfaDp;
      plan.eval_threads = ResolveThreads(q.eval_threads, default_threads);
      break;
  }
  return plan;
}

Result<CandidateSet> ProbeIndex(const PlanContext& ctx,
                                const std::string& anchor) {
  CandidateSet set;
  set.anchor = anchor;
  for (uint64_t packed : ctx.index->Lookup(anchor)) {
    STACCATO_ASSIGN_OR_RETURN(Tuple t,
                              ctx.postings->Get(UnpackRecordId(packed)));
    set.postings[static_cast<DocId>(t[1].AsInt())].push_back(
        static_cast<uint64_t>(t[2].AsInt()));
    ++set.total_postings;
  }
  // Delta documents keep their postings in memory (computed with the same
  // BuildPostings the index builder uses, already sorted per term), so a
  // probe sees appended documents exactly as it would after a checkpoint
  // folded them into the postings relation.
  for (size_t i = 0; i < ctx.delta.docs.size(); ++i) {
    const auto it = ctx.delta.docs[i]->postings.find(anchor);
    if (it == ctx.delta.docs[i]->postings.end()) continue;
    std::vector<uint64_t>& dst =
        set.postings[static_cast<DocId>(ctx.delta.base_docs + i)];
    dst.insert(dst.end(), it->second.begin(), it->second.end());
    set.total_postings += it->second.size();
  }
  return set;
}

namespace {

/// The Filter operator: docs whose MasterData row satisfies every bound
/// equality. The bitmap stays empty when the plan has no predicates (all
/// docs pass). Returns a pointer into the cache (warm: no MasterData scan,
/// no copy) or into `scratch` (uncached execution).
Result<const std::vector<char>*> EqualityBitmap(const PlanContext& ctx,
                                                const PlanSpec& plan,
                                                QueryStats* stats,
                                                PlanCache* cache,
                                                std::vector<char>* scratch) {
  if (plan.equalities.empty()) return scratch;  // left empty: all pass
  if (cache != nullptr && cache->bitmap_valid) {
    if (stats != nullptr) stats->filter_from_cache = true;
    return &cache->bitmap;
  }
  std::vector<char>& allowed = *scratch;
  allowed.assign(ctx.num_sfas, 0);
  ctx.master->ResetIoStats();
  STACCATO_RETURN_NOT_OK(ctx.master->Scan([&](RecordId, const Tuple& t) {
    for (const BoundEquality& eq : plan.equalities) {
      if (t[static_cast<size_t>(eq.column_index)] != eq.value) return true;
    }
    size_t key = static_cast<size_t>(t[0].AsInt());
    if (key < allowed.size()) allowed[key] = 1;
    return true;
  }));
  // Delta documents have no MasterData row yet; evaluate the bound
  // equalities against the same column values Load would have written
  // (DataKey, DocName, Year, SFANum), so filtering is representation-
  // independent of where the document currently lives.
  for (size_t i = 0; i < ctx.delta.docs.size(); ++i) {
    const DeltaDoc& d = *ctx.delta.docs[i];
    const size_t key = ctx.delta.base_docs + i;
    if (key >= allowed.size()) continue;
    const int64_t k = static_cast<int64_t>(key);
    const Tuple row{Value::Int(k), Value::String(d.doc_name),
                    Value::Int(d.year), Value::Int(k)};
    bool pass = true;
    for (const BoundEquality& eq : plan.equalities) {
      if (row[static_cast<size_t>(eq.column_index)] != eq.value) {
        pass = false;
        break;
      }
    }
    if (pass) allowed[key] = 1;
  }
  if (stats != nullptr) {
    stats->heap_pages_read += ctx.master->io_stats().page_reads;
  }
  if (cache != nullptr) {
    cache->bitmap = std::move(allowed);
    cache->bitmap_valid = true;
    return &cache->bitmap;
  }
  return scratch;
}

/// One kMAPData row's contribution to its doc's match mass, or false if
/// the row is filtered out / does not match. The single scoring rule
/// shared by the solo scan (ExecuteStrings, serial and chunked) and the
/// batched scan (ExecutePlanBatch), so the paths cannot drift — chunked
/// and batch answers must stay bit-identical to the serial solo scan.
bool KMapRowMass(const PlanSpec& plan, const Dfa& dfa,
                 const std::vector<char>& allowed, const Tuple& t, size_t key,
                 double* mass) {
  if (!plan.equalities.empty() &&
      (key >= allowed.size() || !allowed[key])) {
    return false;
  }
  if (plan.map_only && t[1].AsInt() != 0) return false;
  if (!dfa.Matches(t[2].AsString())) return false;
  *mass = std::exp(t[3].AsDouble());
  return true;
}

/// One kMAPData row applied to one string-eval query's per-doc mass. The
/// caller guarantees `key < prob->size()`.
void AccumulateKMapRow(const PlanSpec& plan, const Dfa& dfa,
                       const std::vector<char>& allowed, const Tuple& t,
                       size_t key, std::vector<double>* prob) {
  double mass = 0.0;
  if (KMapRowMass(plan, dfa, allowed, t, key, &mass)) {
    (*prob)[key] += mass;
  }
}

/// Delta documents' k-map rows, applied after the kMAPData scan through
/// the same AccumulateKMapRow rule in the same rank-ascending order the
/// table stores — so the per-doc accumulation (and therefore the summed
/// probability, bit for bit) matches what a rebuilt database computes.
void AccumulateDeltaKMap(const PlanContext& ctx, const PlanSpec& plan,
                         const Dfa& dfa, const std::vector<char>& allowed,
                         std::vector<double>* prob) {
  for (size_t i = 0; i < ctx.delta.docs.size(); ++i) {
    const DeltaDoc& d = *ctx.delta.docs[i];
    const size_t key = ctx.delta.base_docs + i;
    if (key >= prob->size()) continue;
    for (size_t r = 0; r < d.kmap.size(); ++r) {
      const Tuple row{Value::Int(static_cast<int64_t>(key)),
                      Value::Int(static_cast<int64_t>(r)),
                      Value::String(d.kmap[r].str),
                      Value::Double(d.kmap[r].log_prob)};
      AccumulateKMapRow(plan, dfa, allowed, row, key, prob);
    }
  }
}

/// Candidates surviving the equality filter (all docs when unfiltered).
size_t CountStringCandidates(const PlanContext& ctx, const PlanSpec& plan,
                             const std::vector<char>& allowed) {
  if (plan.equalities.empty()) return ctx.num_sfas;
  return static_cast<size_t>(std::count(allowed.begin(), allowed.end(), 1));
}

/// TopK over accumulated per-doc mass, clamped to a probability.
std::vector<Answer> RankStringAnswers(const std::vector<double>& prob,
                                      size_t num_ans) {
  std::vector<Answer> answers;
  for (size_t i = 0; i < prob.size(); ++i) {
    if (prob[i] > 0.0) answers.push_back({i, std::min(prob[i], 1.0)});
  }
  return RankAnswers(std::move(answers), num_ans);
}

/// Execution prologue shared by ExecutePlan and ExecutePlanBatch: every
/// run-scoped QueryStats field is (re)set here so a reused stats object
/// never leaks a previous run's values into either path.
void InitQueryStats(QueryStats* stats, const PlanSpec& plan,
                    size_t batch_size) {
  if (stats == nullptr) return;
  stats->used_index = plan.source == CandidateSource::kIndexProbe;
  stats->used_projection = plan.fetch == FetchMethod::kProjection;
  stats->plan_summary = PlanSummary(plan);
  stats->threads_used = 1;
  stats->fetch_threads = 1;
  stats->est_candidates = plan.cost.chosen_cost().candidates;
  stats->est_cost = plan.cost.chosen_cost().total;
  stats->filter_from_cache = false;
  stats->candidates_from_cache = false;
  stats->eval_pruned = 0;
  stats->eval_steps_saved = 0;
  stats->batch_size = batch_size;
  stats->shared_candidate_pass = false;
  stats->cache_hits = 0;
  stats->cache_misses = 0;
  stats->cache_bytes = 0;
  stats->shared_plan_hit = false;
  stats->shards.clear();
  stats->degraded = false;
  stats->visited_candidates = 0;
  stats->io_retries = 0;
  stats->stage = StageTimings{};
  stats->trace = nullptr;
}

/// Entries built against older data are dead; start the cache over at the
/// current generation.
void ResetStaleCache(PlanCache* cache, const PlanContext& ctx) {
  if (cache != nullptr && cache->generation != ctx.load_generation) {
    *cache = PlanCache{};
    cache->generation = ctx.load_generation;
  }
}

/// One page-range chunk's accumulation state for the parallel kMAP scan.
///
/// Bit-identity argument: kMAPData stores each document's rows
/// contiguously, and a doc's mass only ever folds that doc's own rows.
/// So a doc strictly interior to a chunk (not the chunk's first or last
/// key run) has ALL its rows in that chunk, and folding them in row order
/// from 0.0 reproduces the serial fold exactly. Only the chunk's first
/// and last runs can straddle a boundary — their contributing rows are
/// kept individually (at most 2 runs per chunk) and re-folded in row
/// order at merge time, so every doc's masses fold in exactly the order
/// the serial scan would have used.
struct KMapChunk {
  size_t head_key = SIZE_MAX;        ///< key of the chunk's first row run
  std::vector<double> head;          ///< its contributing masses, row order
  size_t tail_key = SIZE_MAX;        ///< last run's key (if a second run)
  std::vector<double> tail;          ///< its contributing masses, row order
  std::vector<std::pair<size_t, double>> interior;  ///< complete-doc folds
};

/// Decodes and scores pages [begin, end) of kMAPData from a raw page
/// snapshot, outside the table latch.
Status ScanKMapChunk(const PlanContext& ctx, const PlanSpec& plan,
                     const Dfa& dfa, const std::vector<char>& allowed,
                     const char* pages, uint32_t begin, uint32_t end,
                     KMapChunk* out) {
  SlottedPage page;
  size_t cur_key = SIZE_MAX;
  bool cur_is_head = true;             // current run is the chunk's first
  std::vector<double> cur;             // current run's masses, row order
  for (uint32_t p = begin; p < end; ++p) {
    std::memcpy(page.raw(),
                pages + static_cast<size_t>(p - begin) * kPageSize, kPageSize);
    const uint16_t slots = page.NumSlots();
    for (uint16_t s = 0; s < slots; ++s) {
      STACCATO_ASSIGN_OR_RETURN(std::string_view rec, page.Get(s));
      BinaryReader r(rec.data(), rec.size());
      STACCATO_ASSIGN_OR_RETURN(Tuple t, ctx.kmap->schema().DecodeTuple(&r));
      const size_t key = static_cast<size_t>(t[0].AsInt());
      if (key != cur_key) {
        if (cur_key != SIZE_MAX) {
          if (cur_is_head) {
            out->head_key = cur_key;
            out->head = std::move(cur);
            cur_is_head = false;
          } else {
            double sum = 0.0;
            for (double m : cur) sum += m;  // row order, from 0.0: serial fold
            if (sum > 0.0) out->interior.emplace_back(cur_key, sum);
          }
          cur.clear();
        }
        cur_key = key;
      }
      double mass = 0.0;
      if (key < ctx.num_sfas &&  // skip rows beyond the loaded cardinality
          KMapRowMass(plan, dfa, allowed, t, key, &mass)) {
        cur.push_back(mass);
      }
    }
  }
  if (cur_key != SIZE_MAX) {
    if (cur_is_head) {  // single run: the whole chunk is one doc
      out->head_key = cur_key;
      out->head = std::move(cur);
    } else {
      out->tail_key = cur_key;
      out->tail = std::move(cur);
    }
  }
  return Status::OK();
}

/// Strings Eval: one pass over kMAPData accumulating per-doc match mass.
/// With eval_threads > 1 the pass is chunked across the shared pool —
/// each worker snapshots a page range under the latch and decodes /
/// DFA-matches outside it — and the chunks merge serially in page order,
/// bit-identical to the serial scan (see KMapChunk).
Result<std::vector<Answer>> ExecuteStrings(const PlanContext& ctx,
                                           const PlanSpec& plan,
                                           const Dfa& dfa,
                                           const std::vector<char>& allowed,
                                           QueryStats* stats) {
  std::vector<double> prob(ctx.num_sfas, 0.0);
  ctx.kmap->ResetIoStats();
  // Strings eval has no separate Fetch: the kMAP scan reads and matches in
  // one pass, so the whole pass is the fetch+eval stage. The interval is
  // measured once and recorded as both the stage timing and the trace
  // span, so the two can never disagree.
  const uint64_t scan_start_ns = telemetry::MonotonicNanos();
  const size_t num_pages = ctx.kmap->NumPages();
  constexpr uint32_t kChunkPages = 8;  // 64 KiB snapshot per worker step
  size_t threads = std::max<size_t>(1, plan.eval_threads);
  const size_t num_chunks = (num_pages + kChunkPages - 1) / kChunkPages;
  threads = std::min(threads, std::max<size_t>(1, num_chunks));
  // Budgeted executions scan serially: kMAPData stores keys in ascending
  // order, so a mid-scan cut degrades to a clean doc prefix — the chunked
  // scan completes chunks out of order, which would leave straddling docs
  // with partially folded (wrong, not merely partial) mass.
  if (ctx.control != nullptr) threads = 1;
  size_t cut_key = SIZE_MAX;  // first doc key NOT fully folded before a cut
  if (threads <= 1) {
    Status ctl_status = Status::OK();
    size_t rows_seen = 0;
    STACCATO_RETURN_NOT_OK(ctx.kmap->Scan([&](RecordId, const Tuple& t) {
      size_t key = static_cast<size_t>(t[0].AsInt());
      if (ctx.control != nullptr && (rows_seen++ & 255) == 0) {
        bool cut_now = false;
        ctl_status = PollControl(ctx.control, &cut_now);
        if (!ctl_status.ok() || cut_now) {
          cut_key = key;
          return false;  // stop the scan at this row
        }
      }
      if (key < prob.size()) {  // skip rows beyond the loaded cardinality
        AccumulateKMapRow(plan, dfa, allowed, t, key, &prob);
      }
      return true;
    }));
    STACCATO_RETURN_NOT_OK(ctl_status);
  } else {
    std::vector<KMapChunk> chunks(num_chunks);
    std::vector<std::string> snapshots(threads);  // per-worker page buffer
    STACCATO_RETURN_NOT_OK(ParallelForWorker(
        num_chunks, /*grain=*/1,
        [&](size_t worker, size_t c) -> Status {
          const uint32_t begin = static_cast<uint32_t>(c * kChunkPages);
          const uint32_t end = static_cast<uint32_t>(
              std::min<size_t>(num_pages, begin + kChunkPages));
          std::string& buf = snapshots[worker];
          buf.resize(static_cast<size_t>(end - begin) * kPageSize);
          STACCATO_RETURN_NOT_OK(
              ctx.kmap->SnapshotPages(begin, end, buf.data()));
          return ScanKMapChunk(ctx, plan, dfa, allowed, buf.data(), begin,
                               end, &chunks[c]);
        },
        ParallelOptions{threads}));
    // Serial merge in chunk (= page, = row) order: straddling runs re-fold
    // row by row; interior docs land as one complete fold each.
    for (const KMapChunk& c : chunks) {
      if (c.head_key < prob.size()) {
        for (double m : c.head) prob[c.head_key] += m;
      }
      for (const auto& [key, sum] : c.interior) {
        if (key < prob.size()) prob[key] += sum;  // prob[key] == 0.0 here
      }
      if (c.tail_key < prob.size()) {
        for (double m : c.tail) prob[c.tail_key] += m;
      }
    }
  }
  if (cut_key != SIZE_MAX) {
    // Degraded: keep the fully folded doc prefix [0, cut_key). The doc the
    // cut interrupted has only a lower bound of its mass, so it leaves the
    // visited set; delta docs fold after the whole base scan, so none of
    // them was visited either.
    for (size_t k = cut_key; k < prob.size(); ++k) prob[k] = 0.0;
  } else {
    AccumulateDeltaKMap(ctx, plan, dfa, allowed, &prob);
  }
  const uint64_t scan_end_ns = telemetry::MonotonicNanos();
  if (ctx.trace != nullptr) {
    ctx.trace->AddSpan("Eval(kmap-scan)", scan_start_ns, scan_end_ns,
                       ctx.trace_parent);
  }
  if (stats != nullptr) {
    stats->stage.fetch_eval_s =
        static_cast<double>(scan_end_ns - scan_start_ns) / 1e9;
    size_t candidates = CountStringCandidates(ctx, plan, allowed);
    stats->heap_pages_read += ctx.kmap->io_stats().page_reads;
    stats->candidates = candidates;
    stats->selectivity = ctx.num_sfas == 0
                             ? 0.0
                             : static_cast<double>(candidates) /
                                   static_cast<double>(ctx.num_sfas);
    stats->threads_used = threads;
    if (ctx.control != nullptr) {
      stats->degraded = ctx.control->cut();
      stats->visited_candidates =
          cut_key != SIZE_MAX ? std::min(cut_key, ctx.num_sfas) : candidates;
    }
  }
  const uint64_t topk_start_ns = telemetry::MonotonicNanos();
  std::vector<Answer> ranked = RankStringAnswers(prob, plan.num_ans);
  const uint64_t topk_end_ns = telemetry::MonotonicNanos();
  if (ctx.trace != nullptr) {
    ctx.trace->AddSpan("TopK", topk_start_ns, topk_end_ns, ctx.trace_parent);
  }
  if (stats != nullptr) {
    stats->stage.topk_s =
        static_cast<double>(topk_end_ns - topk_start_ns) / 1e9;
  }
  return ranked;
}

struct SfaCandidate {
  DocId doc = 0;
  std::vector<uint64_t> postings;  // packed; empty on the full-scan path
  /// Anchor postings inside this doc (index-probe path only): the cheap
  /// relevance estimate that orders the Eval visit so the top-k threshold
  /// tightens early. 0 on the full-scan path (natural doc order).
  size_t est_postings = 0;
};

/// Projection Eval over an already-deserialized transducer: score the
/// region around each posting start; the best region bounds the match
/// probability.
double EvalProjectedSfa(const Sfa& sfa, const std::vector<uint64_t>& postings,
                        const Dfa& dfa, size_t horizon) {
  double best = 0.0;
  for (uint64_t packed : postings) {
    Posting post = UnpackPosting(packed);
    if (post.edge >= sfa.NumEdges()) continue;
    NodeId from = sfa.edge(post.edge).from;
    best = std::max(best, EvalProjected(sfa, dfa, from, horizon));
  }
  return best;
}

/// Projection Eval for one fetched candidate blob (solo execution path).
Result<double> EvalProjectedBlob(const std::string& blob,
                                 const std::vector<uint64_t>& postings,
                                 const Dfa& dfa, size_t horizon) {
  STACCATO_ASSIGN_OR_RETURN(Sfa sfa, Sfa::Deserialize(blob));
  return EvalProjectedSfa(sfa, postings, dfa, horizon);
}

/// The CandidateGen operator for the SFA approaches: the plan's candidate
/// documents in ascending-doc order, filtered by the equality bitmap. A
/// warm cache serves the probed CandidateSet without touching the B+-tree
/// or the postings relation. `total_postings` reports the probe size.
Result<std::vector<SfaCandidate>> BuildSfaCandidates(
    const PlanContext& ctx, const PlanSpec& plan,
    const std::vector<char>& allowed, QueryStats* stats, PlanCache* cache,
    size_t* total_postings) {
  const bool filtered = !plan.equalities.empty();
  std::vector<SfaCandidate> cands;
  *total_postings = 0;
  if (plan.source == CandidateSource::kIndexProbe) {
    if (ctx.index == nullptr || ctx.dict == nullptr ||
        ctx.dict->Find(plan.anchor) == kInvalidTerm) {
      // The plan was frozen against an index the database has since
      // dropped (data reloaded) or rebuilt with a dictionary that no
      // longer contains the anchor; probing would silently miss answers.
      return Status::InvalidArgument(
          "plan probes an inverted index that no longer serves anchor '" +
          plan.anchor + "'; re-prepare after BuildInvertedIndex");
    }
    CandidateSet probed;
    CandidateSet* owned = nullptr;  // postings may be moved out
    const CandidateSet* set = nullptr;
    if (cache != nullptr && cache->candidates_valid) {
      set = &cache->candidates;
      if (stats != nullptr) stats->candidates_from_cache = true;
    } else {
      STACCATO_ASSIGN_OR_RETURN(probed, ProbeIndex(ctx, plan.anchor));
      if (cache != nullptr) {
        cache->candidates = std::move(probed);
        cache->candidates_valid = true;
        set = &cache->candidates;
      } else {
        owned = &probed;
        set = &probed;
      }
    }
    *total_postings = set->total_postings;
    cands.reserve(set->NumDocs());
    // Only the projection path reads per-candidate postings; the blob
    // fetch ignores them, so skip carrying them at all in that case.
    const bool need_postings = plan.fetch == FetchMethod::kProjection;
    if (owned != nullptr) {
      // Uncached execution: the set is local, so hand its posting vectors
      // to the candidates instead of copying them.
      for (auto& [doc, posts] : owned->postings) {
        if (filtered && (doc >= allowed.size() || !allowed[doc])) continue;
        cands.push_back({doc, {}, posts.size()});
        if (need_postings) cands.back().postings = std::move(posts);
      }
    } else {
      for (const auto& [doc, posts] : set->postings) {
        if (filtered && (doc >= allowed.size() || !allowed[doc])) continue;
        cands.push_back({doc, {}, posts.size()});
        if (need_postings) cands.back().postings = posts;
      }
    }
  } else {
    cands.reserve(ctx.num_sfas);
    for (DocId doc = 0; doc < ctx.num_sfas; ++doc) {
      if (filtered && (doc >= allowed.size() || !allowed[doc])) continue;
      cands.push_back({doc, {}, 0});
    }
  }
  return cands;
}

/// SFA Eval, streaming and threshold-pruned: every worker fetches one
/// candidate's blob into its own reusable buffer (heap point-get + pread;
/// the storage read paths are concurrent-safe), decodes it through the
/// flat SfaView into its own EvalScratch arena, and runs the bounded DP
/// against the running top-k threshold — aborting candidates whose exact
/// probability upper bound can no longer reach the k-th best answer.
/// Candidates are visited in descending posting-count order so the
/// threshold tightens early; results are gathered positionally, and a
/// pruned candidate provably cannot enter the top-k, so the ranked
/// answers are bit-identical for any thread count, visit order, or
/// early-stop setting. Peak memory is one blob + one DP arena per worker.
Result<std::vector<Answer>> ExecuteSfas(const PlanContext& ctx,
                                        const PlanSpec& plan, const Dfa& dfa,
                                        const std::vector<char>& allowed,
                                        QueryStats* stats, PlanCache* cache,
                                        TopKThreshold* shared_topk) {
  const bool full = plan.approach == Approach::kFullSfa;
  const std::vector<RecordId>& rids = full ? *ctx.fullsfa_rid : *ctx.graph_rid;
  HeapTable* blob_table = full ? ctx.fullsfa : ctx.staccato_graph;

  size_t total_postings = 0;
  const uint64_t cand_start_ns = telemetry::MonotonicNanos();
  STACCATO_ASSIGN_OR_RETURN(
      std::vector<SfaCandidate> cands,
      BuildSfaCandidates(ctx, plan, allowed, stats, cache, &total_postings));
  const uint64_t cand_end_ns = telemetry::MonotonicNanos();
  if (ctx.trace != nullptr) {
    ctx.trace->AddSpan("CandidateGen", cand_start_ns, cand_end_ns,
                       ctx.trace_parent);
  }
  if (stats != nullptr) {
    stats->stage.candidate_gen_s =
        static_cast<double>(cand_end_ns - cand_start_ns) / 1e9;
  }

  size_t threads = std::max<size_t>(1, plan.eval_threads);
  threads = std::min(threads, cands.empty() ? size_t{1} : cands.size());

  // Projection already evaluates a bounded region; threshold pruning
  // applies to the full-blob DP.
  const bool prune = plan.early_stop && plan.fetch == FetchMethod::kFullBlob;

  // Eval visit order: descending anchor-posting count (stable, so ties
  // keep doc order). Docs with many anchor occurrences tend to score
  // high, so scoring them first raises the pruning threshold early;
  // without pruning the reorder could not help, so doc order stands.
  std::vector<size_t> order(cands.size());
  std::iota(order.begin(), order.end(), size_t{0});
  if (prune && plan.source == CandidateSource::kIndexProbe) {
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return cands[a].est_postings > cands[b].est_postings;
    });
  }
  // The pruning threshold: query-local by default; a caller-owned one
  // (ShardedDb scatter-gather) forwards the *global* k-th best into this
  // shard's Eval. The global bound is always >= any shard-local bound and
  // the kernel prunes strictly below it, so forwarding is answer-neutral.
  TopKThreshold local_topk(plan.num_ans);
  TopKThreshold& topk = shared_topk != nullptr ? *shared_topk : local_topk;
  const size_t horizon = plan.pattern.size() + 8;
  struct WorkerState {
    EvalScratch scratch;
    std::string blob;  ///< read buffer for the cacheless path
    /// Pin on the candidate currently being evaluated (cached path).
    /// Exactly one per worker: fetching the next candidate releases it.
    cache::BufferCache::Handle pin;
  };
  std::vector<WorkerState> workers(threads);
  std::vector<double> prob(cands.size(), 0.0);
  std::vector<char> was_pruned(cands.size(), 0);
  std::vector<uint64_t> steps_saved(cands.size(), 0);
  std::vector<char> visited(cands.size(), 0);
  ctx.blobs->ResetStats();
  auto eval_one = [&](size_t worker, size_t v) -> Status {
    // Cancellation point: candidate visit. A worker that sees the cut (or
    // trips the budget under allow_partial) stops visiting new candidates;
    // unvisited candidates keep prob 0 and stay out of the visited set, so
    // the ranked result is the exact top-k of what WAS visited.
    bool cut_now = false;
    STACCATO_RETURN_NOT_OK(PollControl(ctx.control, &cut_now));
    if (cut_now) return Status::OK();
    const size_t i = order[v];
    const SfaCandidate& cand = cands[i];
    WorkerState& ws = workers[worker];
    // Fetch: through the shared buffer cache when the database has one
    // (the worker pins the cached bytes for the duration of its DP — a
    // hit skips the heap point get and the pread entirely), via the
    // reusable per-worker buffer otherwise. Same bytes either way.
    const std::string* blob = &ws.blob;
    auto fetch_once = [&]() -> Status {
      if (ctx.delta.Contains(cand.doc)) {
        // Appended documents serve their serialized SFA straight from the
        // delta (no heap get, no pread, no cache entry) — the bytes are
        // identical to what a checkpoint or rebuild would store.
        const DeltaDoc& d = ctx.delta.Doc(cand.doc);
        blob = full ? &d.full_blob : &d.graph_blob;
        return Status::OK();
      }
      if (ctx.cache != nullptr) {
        STACCATO_ASSIGN_OR_RETURN(
            ws.pin,
            ctx.blobs->GetCached(
                BlobCacheKey(full, cand.doc, ctx.blob_generation),
                [&]() -> Result<BlobId> {
                  if (cand.doc >= rids.size()) {
                    return Status::NotFound("no such DataKey");
                  }
                  STACCATO_ASSIGN_OR_RETURN(Tuple t,
                                            blob_table->Get(rids[cand.doc]));
                  return t[1].AsBlobId();
                }));
        blob = &ws.pin.value();
        return Status::OK();
      }
      if (cand.doc >= rids.size()) return Status::NotFound("no such DataKey");
      STACCATO_ASSIGN_OR_RETURN(Tuple t, blob_table->Get(rids[cand.doc]));
      STACCATO_RETURN_NOT_OK(ctx.blobs->GetInto(t[1].AsBlobId(), &ws.blob));
      return Status::OK();
    };
    // Transient blob/heap read failures retry with exponential backoff,
    // bounded by the control's per-query budget; exhaustion (or a
    // non-I/O failure, or unbudgeted execution) surfaces the underlying
    // Status unchanged.
    Status fetched = fetch_once();
    while (!fetched.ok() && fetched.IsIOError() && ctx.control != nullptr &&
           ctx.control->AllowRetry()) {
      fetched = fetch_once();
    }
    STACCATO_RETURN_NOT_OK(fetched);
    if (ctx.control != nullptr) {
      ctx.control->AddFetchedBytes(blob->size());
      // Cancellation point: between this candidate's Fetch and its Eval —
      // a deadline or byte budget blown by the fetch stops before the DP.
      STACCATO_RETURN_NOT_OK(PollControl(ctx.control, &cut_now));
      if (cut_now) return Status::OK();
    }
    if (plan.fetch == FetchMethod::kProjection) {
      STACCATO_ASSIGN_OR_RETURN(
          prob[i], EvalProjectedBlob(*blob, cand.postings, dfa, horizon));
      visited[i] = 1;
      return Status::OK();
    }
    EvalBound bound;
    const double threshold = prune ? topk.Get() : 0.0;
    STACCATO_ASSIGN_OR_RETURN(
        prob[i], EvalSerializedSfaBounded(*blob, dfa, threshold,
                                          &ws.scratch, &bound));
    if (ctx.control != nullptr) ctx.control->AddDpSteps(bound.steps);
    if (bound.pruned) {
      prob[i] = 0.0;
      was_pruned[i] = 1;
      steps_saved[i] = bound.steps_total - bound.steps;
    } else if (prune) {  // nobody reads the threshold otherwise
      topk.Offer(prob[i]);
    }
    visited[i] = 1;
    return Status::OK();
  };
  // Fetch and Eval stream per candidate inside eval_one, so they are one
  // timed stage (StageTimings::fetch_eval_s) — timing them separately
  // would mean per-candidate clock reads.
  const uint64_t eval_start_ns = telemetry::MonotonicNanos();
  if (threads <= 1) {
    for (size_t v = 0; v < cands.size(); ++v) {
      STACCATO_RETURN_NOT_OK(eval_one(0, v));
    }
  } else {
    STACCATO_RETURN_NOT_OK(ParallelForWorker(
        cands.size(), /*grain=*/1, eval_one, ParallelOptions{threads}));
  }
  const uint64_t eval_end_ns = telemetry::MonotonicNanos();
  if (ctx.trace != nullptr) {
    ctx.trace->AddSpan("Fetch+Eval", eval_start_ns, eval_end_ns,
                       ctx.trace_parent);
  }

  if (stats != nullptr) {
    stats->stage.fetch_eval_s =
        static_cast<double>(eval_end_ns - eval_start_ns) / 1e9;
    BlobIoStats bio = ctx.blobs->io_stats();
    stats->blob_bytes_read += bio.bytes_read;
    stats->cache_hits += bio.cache_hits;
    stats->cache_misses += bio.cache_misses;
    if (ctx.cache != nullptr) {
      stats->cache_bytes = ctx.cache->bytes_in_use();
    }
    stats->candidates = cands.size();
    stats->index_postings = total_postings;
    stats->selectivity = ctx.num_sfas == 0
                             ? 0.0
                             : static_cast<double>(cands.size()) /
                                   static_cast<double>(ctx.num_sfas);
    stats->threads_used = threads;
    stats->fetch_threads = threads;  // streamed: fetch rides the eval workers
    for (size_t i = 0; i < cands.size(); ++i) {
      if (was_pruned[i]) {
        ++stats->eval_pruned;
        stats->eval_steps_saved += steps_saved[i];
      }
    }
    if (ctx.control != nullptr) {
      stats->degraded = ctx.control->cut();
      stats->visited_candidates = static_cast<size_t>(
          std::count(visited.begin(), visited.end(), 1));
    }
  }

  const uint64_t topk_start_ns = telemetry::MonotonicNanos();
  std::vector<Answer> answers;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (prob[i] > 0.0) answers.push_back({cands[i].doc, prob[i]});
  }
  std::vector<Answer> ranked = RankAnswers(std::move(answers), plan.num_ans);
  const uint64_t topk_end_ns = telemetry::MonotonicNanos();
  if (ctx.trace != nullptr) {
    ctx.trace->AddSpan("TopK", topk_start_ns, topk_end_ns, ctx.trace_parent);
  }
  if (stats != nullptr) {
    stats->stage.topk_s =
        static_cast<double>(topk_end_ns - topk_start_ns) / 1e9;
  }
  return ranked;
}

}  // namespace

Result<std::vector<Answer>> ExecutePlan(const PlanContext& ctx,
                                        const PlanSpec& plan, const Dfa& dfa,
                                        QueryStats* stats, PlanCache* cache,
                                        TopKThreshold* shared_topk) {
  InitQueryStats(stats, plan, /*batch_size=*/0);
  const uint64_t plan_start_ns = telemetry::MonotonicNanos();
  // Cancellation point: query entry. An already-expired deadline fails (or
  // degrades to an empty answer set) here — before the filter bitmap is
  // built, before a single candidate is evaluated, before a single blob
  // byte is fetched.
  {
    bool cut_now = false;
    STACCATO_RETURN_NOT_OK(PollControl(ctx.control, &cut_now));
    if (cut_now) {
      if (stats != nullptr) stats->degraded = true;
      return std::vector<Answer>{};
    }
  }
  ResetStaleCache(cache, ctx);
  std::vector<char> scratch;
  const uint64_t filter_start_ns = telemetry::MonotonicNanos();
  STACCATO_ASSIGN_OR_RETURN(
      const std::vector<char>* allowed,
      EqualityBitmap(ctx, plan, stats, cache, &scratch));
  const uint64_t filter_end_ns = telemetry::MonotonicNanos();
  if (ctx.trace != nullptr && !plan.equalities.empty()) {
    ctx.trace->AddSpan("Filter", filter_start_ns, filter_end_ns,
                       ctx.trace_parent);
  }
  if (stats != nullptr) {
    stats->stage.filter_s =
        static_cast<double>(filter_end_ns - filter_start_ns) / 1e9;
  }
  Result<std::vector<Answer>> result =
      Status::InvalidArgument("unknown eval strategy");
  switch (plan.eval) {
    case EvalStrategy::kStrings:
      result = ExecuteStrings(ctx, plan, dfa, *allowed, stats);
      break;
    case EvalStrategy::kSfaDp:
      result = ExecuteSfas(ctx, plan, dfa, *allowed, stats, cache, shared_topk);
      break;
  }
  if (stats != nullptr) stats->stage.total_s = SecondsSince(plan_start_ns);
  return result;
}

Result<std::vector<std::vector<Answer>>> ExecutePlanBatch(
    const PlanContext& ctx, const std::vector<BatchItem>& items,
    BatchStats* batch_stats) {
  const size_t n = items.size();
  std::vector<std::vector<Answer>> results(n);
  if (batch_stats != nullptr) {
    batch_stats->queries = n;
    batch_stats->kmap_scan_passes = 0;
    batch_stats->distinct_docs_fetched = 0;
    batch_stats->total_candidates = 0;
    batch_stats->fetch_threads = 1;
    batch_stats->eval_threads = 1;
    batch_stats->eval_pruned = 0;
    batch_stats->eval_steps_saved = 0;
  }
  if (n == 0) return results;
  // Batch-wide stage clock: one physical pass serves every member, so all
  // members report the same stage times (same attribution caveat as the
  // batch I/O counters; see StageTimings).
  const uint64_t batch_start_ns = telemetry::MonotonicNanos();
  StageTimings batch_stage;

  // Per-item prologue, identical to ExecutePlan: stats shape, cache
  // generation check, equality bitmap. Then split by eval strategy — the
  // string approaches share a kMAPData scan, the SFA approaches share a
  // Fetch pass.
  std::vector<std::vector<char>> scratch(n);
  std::vector<const std::vector<char>*> allowed(n, nullptr);
  // Per-item budget control: the item's own block, else the batch-wide
  // context one. An item whose budget is already blown at entry degrades
  // to an empty answer set (allow_partial) or fails the batch — batched
  // execution shares physical passes, so a hard per-item abort cannot be
  // isolated mid-pass.
  std::vector<QueryControl*> controls(n, nullptr);
  std::vector<size_t> strings_items, sfa_items;
  for (size_t i = 0; i < n; ++i) {
    const BatchItem& item = items[i];
    if (item.plan == nullptr || item.dfa == nullptr) {
      return Status::InvalidArgument("batch item missing plan or DFA");
    }
    const PlanSpec& plan = *item.plan;
    InitQueryStats(item.stats, plan, /*batch_size=*/n);
    controls[i] = item.control != nullptr ? item.control : ctx.control;
    bool cut_now = false;
    STACCATO_RETURN_NOT_OK(PollControl(controls[i], &cut_now));
    if (cut_now) {
      if (item.stats != nullptr) item.stats->degraded = true;
      continue;  // results[i] stays empty: top-k of zero visited candidates
    }
    ResetStaleCache(item.cache, ctx);
    STACCATO_ASSIGN_OR_RETURN(
        allowed[i],
        EqualityBitmap(ctx, plan, item.stats, item.cache, &scratch[i]));
    (plan.eval == EvalStrategy::kStrings ? strings_items : sfa_items)
        .push_back(i);
  }
  batch_stage.filter_s = SecondsSince(batch_start_ns);

  // ---- String-eval members: one shared kMAPData scan -----------------------
  // Every member sees the rows in storage order and accumulates its own
  // per-doc mass, so each result is bit-identical to its solo ExecuteStrings
  // pass — the scan itself just happens once instead of once per query.
  if (!strings_items.empty()) {
    const size_t m = strings_items.size();
    const uint64_t scan_start_ns = telemetry::MonotonicNanos();
    std::vector<std::vector<double>> prob(
        m, std::vector<double>(ctx.num_sfas, 0.0));
    ctx.kmap->ResetIoStats();
    STACCATO_RETURN_NOT_OK(ctx.kmap->Scan([&](RecordId, const Tuple& t) {
      size_t key = static_cast<size_t>(t[0].AsInt());
      if (key >= ctx.num_sfas) return true;  // row beyond loaded cardinality
      for (size_t j = 0; j < m; ++j) {
        AccumulateKMapRow(*items[strings_items[j]].plan,
                          *items[strings_items[j]].dfa,
                          *allowed[strings_items[j]], t, key, &prob[j]);
      }
      return true;
    }));
    for (size_t j = 0; j < m; ++j) {
      AccumulateDeltaKMap(ctx, *items[strings_items[j]].plan,
                          *items[strings_items[j]].dfa,
                          *allowed[strings_items[j]], &prob[j]);
    }
    const uint64_t scan_reads = ctx.kmap->io_stats().page_reads;
    batch_stage.fetch_eval_s += SecondsSince(scan_start_ns);
    const uint64_t rank_start_ns = telemetry::MonotonicNanos();
    for (size_t j = 0; j < m; ++j) {
      const size_t i = strings_items[j];
      const PlanSpec& plan = *items[i].plan;
      size_t candidates = CountStringCandidates(ctx, plan, *allowed[i]);
      if (QueryStats* st = items[i].stats; st != nullptr) {
        st->heap_pages_read += scan_reads;
        st->candidates = candidates;
        st->selectivity = ctx.num_sfas == 0
                              ? 0.0
                              : static_cast<double>(candidates) /
                                    static_cast<double>(ctx.num_sfas);
        st->threads_used = 1;
        st->shared_candidate_pass = m > 1;
      }
      if (batch_stats != nullptr) batch_stats->total_candidates += candidates;
      results[i] = RankStringAnswers(prob[j], plan.num_ans);
    }
    batch_stage.topk_s += SecondsSince(rank_start_ns);
    if (batch_stats != nullptr) batch_stats->kmap_scan_passes = 1;
  }

  // ---- SFA-eval members: one shared Fetch pass ----------------------------
  if (!sfa_items.empty()) {
    struct SfaWork {
      size_t item = 0;                  // index into `items`
      std::vector<SfaCandidate> cands;  // this plan's candidates, doc order
      size_t total_postings = 0;
    };
    std::vector<SfaWork> group;
    group.reserve(sfa_items.size());
    const uint64_t cand_start_ns = telemetry::MonotonicNanos();
    for (size_t i : sfa_items) {
      SfaWork w;
      w.item = i;
      STACCATO_ASSIGN_OR_RETURN(
          w.cands,
          BuildSfaCandidates(ctx, *items[i].plan, *allowed[i], items[i].stats,
                             items[i].cache, &w.total_postings));
      group.push_back(std::move(w));
    }
    batch_stage.candidate_gen_s = SecondsSince(cand_start_ns);
    const uint64_t fetch_start_ns = telemetry::MonotonicNanos();

    // Shared Fetch: each distinct (representation, doc) blob is read AND
    // deserialized once, however many batch members evaluate it — the eval
    // stage then shares the transducer (and its precomputed per-Sfa
    // invariants) across every (query, doc) pair. Keyed also by
    // representation because FullSFA and Staccato plans fetch from
    // different tables.
    struct SharedSfa {
      Sfa sfa;
      SfaEvalInfo info;  // computed once at fetch, reused per pair
    };
    ctx.blobs->ResetStats();
    std::map<std::pair<bool, DocId>, SharedSfa> sfa_map;
    for (const SfaWork& w : group) {
      const bool full = items[w.item].plan->approach == Approach::kFullSfa;
      for (const SfaCandidate& c : w.cands) {
        sfa_map.emplace(std::make_pair(full, c.doc), SharedSfa());
      }
    }
    using SfaEntry = std::pair<const std::pair<bool, DocId>, SharedSfa>;
    std::vector<SfaEntry*> fetches;
    fetches.reserve(sfa_map.size());
    for (auto& entry : sfa_map) fetches.push_back(&entry);
    size_t requested = 1;
    for (const SfaWork& w : group) {
      requested = std::max(requested, items[w.item].plan->eval_threads);
    }
    // Clamp each stage's fan-out to its work size, like solo ExecuteSfas
    // does, so reported thread counts never exceed what could run.
    const size_t fetch_workers =
        std::min(requested, std::max<size_t>(1, fetches.size()));
    STACCATO_RETURN_NOT_OK(ParallelFor(
        fetches.size(), /*grain=*/1,
        [&](size_t k) -> Status {
          const bool full = fetches[k]->first.first;
          const DocId doc = fetches[k]->first.second;
          if (ctx.delta.Contains(doc)) {
            const DeltaDoc& d = ctx.delta.Doc(doc);
            STACCATO_ASSIGN_OR_RETURN(
                fetches[k]->second.sfa,
                Sfa::Deserialize(full ? d.full_blob : d.graph_blob));
            fetches[k]->second.info = ComputeSfaEvalInfo(fetches[k]->second.sfa);
            return Status::OK();
          }
          const std::vector<RecordId>& rids =
              full ? *ctx.fullsfa_rid : *ctx.graph_rid;
          if (doc >= rids.size()) return Status::NotFound("no such DataKey");
          HeapTable* table = full ? ctx.fullsfa : ctx.staccato_graph;
          // Read through the shared buffer cache when present — like the
          // solo path, a hit skips the heap point get too; the pin lives
          // only for the deserialize. Plain read otherwise.
          if (ctx.cache != nullptr) {
            STACCATO_ASSIGN_OR_RETURN(
                cache::BufferCache::Handle pin,
                ctx.blobs->GetCached(
                    BlobCacheKey(full, doc, ctx.blob_generation),
                    [&]() -> Result<BlobId> {
                      STACCATO_ASSIGN_OR_RETURN(Tuple t,
                                                table->Get(rids[doc]));
                      return t[1].AsBlobId();
                    }));
            STACCATO_ASSIGN_OR_RETURN(fetches[k]->second.sfa,
                                      Sfa::Deserialize(pin.value()));
          } else {
            STACCATO_ASSIGN_OR_RETURN(Tuple t, table->Get(rids[doc]));
            STACCATO_ASSIGN_OR_RETURN(std::string blob,
                                      ctx.blobs->Get(t[1].AsBlobId()));
            STACCATO_ASSIGN_OR_RETURN(fetches[k]->second.sfa,
                                      Sfa::Deserialize(blob));
          }
          fetches[k]->second.info = ComputeSfaEvalInfo(fetches[k]->second.sfa);
          return Status::OK();
        },
        ParallelOptions{fetch_workers}));
    const BlobIoStats fetch_bio = ctx.blobs->io_stats();
    const uint64_t fetched_bytes = fetch_bio.bytes_read;
    const uint64_t fetch_cache_bytes =
        ctx.cache != nullptr ? ctx.cache->bytes_in_use() : 0;

    // Eval every (query, candidate) pair on the pool; results gather
    // positionally per query, exactly as in solo execution. The shared
    // transducer is resolved once per pair here — the map is frozen after
    // the fetch pass — keeping the tree lookups out of the hot loop.
    // Each query keeps its own top-k threshold, so pruning works exactly
    // as in solo execution: a pair is aborted once its query's k-th best
    // answer provably beats the candidate's upper bound. Pairs are laid
    // out query-major with each query's candidates in descending
    // posting-count order, mirroring the solo visit order.
    struct PairRef {
      size_t g = 0;
      size_t k = 0;
      const SharedSfa* sfa = nullptr;
    };
    std::vector<PairRef> pairs;
    std::vector<std::vector<double>> prob(group.size());
    std::vector<std::vector<char>> was_pruned(group.size());
    std::vector<std::vector<uint64_t>> steps_saved(group.size());
    std::vector<std::vector<char>> pair_visited(group.size());
    // Each query prunes against its own threshold — a caller-provided one
    // (BatchItem::topk; the sharded ExecuteBatch shares one instance
    // across every shard's copy of a query) or a batch-local fallback.
    std::deque<TopKThreshold> local_thresholds;
    std::vector<TopKThreshold*> thresholds(group.size(), nullptr);
    std::vector<char> prune_group(group.size(), 0);
    for (size_t g = 0; g < group.size(); ++g) {
      const PlanSpec& plan = *items[group[g].item].plan;
      prob[g].assign(group[g].cands.size(), 0.0);
      was_pruned[g].assign(group[g].cands.size(), 0);
      steps_saved[g].assign(group[g].cands.size(), 0);
      pair_visited[g].assign(group[g].cands.size(), 0);
      if (items[group[g].item].topk != nullptr) {
        thresholds[g] = items[group[g].item].topk;
      } else {
        local_thresholds.emplace_back(plan.num_ans);
        thresholds[g] = &local_thresholds.back();
      }
      prune_group[g] =
          plan.early_stop && plan.fetch == FetchMethod::kFullBlob ? 1 : 0;
      const bool full = plan.approach == Approach::kFullSfa;
      std::vector<size_t> order(group[g].cands.size());
      std::iota(order.begin(), order.end(), size_t{0});
      if (prune_group[g] && plan.source == CandidateSource::kIndexProbe) {
        std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
          return group[g].cands[a].est_postings >
                 group[g].cands[b].est_postings;
        });
      }
      for (size_t k : order) {
        pairs.push_back(
            {g, k, &sfa_map.at(std::make_pair(full, group[g].cands[k].doc))});
      }
    }
    const size_t eval_workers =
        std::min(requested, std::max<size_t>(1, pairs.size()));
    std::vector<EvalScratch> scratches(eval_workers);
    STACCATO_RETURN_NOT_OK(ParallelForWorker(
        pairs.size(), /*grain=*/1,
        [&](size_t worker, size_t p) -> Status {
          const size_t g = pairs[p].g;
          const SfaWork& w = group[g];
          const SfaCandidate& cand = w.cands[pairs[p].k];
          const PlanSpec& plan = *items[w.item].plan;
          const Dfa& dfa = *items[w.item].dfa;
          const SharedSfa& shared = *pairs[p].sfa;
          double& out = prob[g][pairs[p].k];
          // Cancellation point: per-(query, candidate) pair, against that
          // query's own control. A cut query stops visiting pairs; the
          // rest of the batch keeps going.
          QueryControl* control = controls[w.item];
          bool cut_now = false;
          STACCATO_RETURN_NOT_OK(PollControl(control, &cut_now));
          if (cut_now) return Status::OK();
          if (plan.fetch == FetchMethod::kProjection) {
            out = EvalProjectedSfa(shared.sfa, cand.postings, dfa,
                                   plan.pattern.size() + 8);
            pair_visited[g][pairs[p].k] = 1;
            return Status::OK();
          }
          EvalBound bound;
          const double threshold = prune_group[g] ? thresholds[g]->Get() : 0.0;
          out = EvalSfaQueryBounded(shared.sfa, dfa, threshold, shared.info,
                                    &scratches[worker], &bound);
          if (control != nullptr) control->AddDpSteps(bound.steps);
          if (bound.pruned) {
            out = 0.0;
            was_pruned[g][pairs[p].k] = 1;
            steps_saved[g][pairs[p].k] = bound.steps_total - bound.steps;
          } else if (prune_group[g]) {  // nobody reads the threshold otherwise
            thresholds[g]->Offer(out);
          }
          pair_visited[g][pairs[p].k] = 1;
          return Status::OK();
        },
        ParallelOptions{eval_workers}));
    batch_stage.fetch_eval_s += SecondsSince(fetch_start_ns);

    const uint64_t rank_start_ns = telemetry::MonotonicNanos();
    for (size_t g = 0; g < group.size(); ++g) {
      const SfaWork& w = group[g];
      const PlanSpec& plan = *items[w.item].plan;
      size_t pruned = 0;
      uint64_t saved = 0;
      for (size_t k = 0; k < w.cands.size(); ++k) {
        if (was_pruned[g][k]) {
          ++pruned;
          saved += steps_saved[g][k];
        }
      }
      if (QueryStats* st = items[w.item].stats; st != nullptr) {
        st->blob_bytes_read += fetched_bytes;  // batch-wide shared pass
        st->cache_hits += fetch_bio.cache_hits;
        st->cache_misses += fetch_bio.cache_misses;
        st->cache_bytes = fetch_cache_bytes;
        st->candidates = w.cands.size();
        st->index_postings = w.total_postings;
        st->selectivity = ctx.num_sfas == 0
                              ? 0.0
                              : static_cast<double>(w.cands.size()) /
                                    static_cast<double>(ctx.num_sfas);
        st->threads_used = eval_workers;
        st->fetch_threads = fetch_workers;
        st->shared_candidate_pass = group.size() > 1;
        st->eval_pruned = pruned;
        st->eval_steps_saved = saved;
        if (QueryControl* control = controls[w.item]; control != nullptr) {
          st->degraded = control->cut();
          st->visited_candidates = static_cast<size_t>(std::count(
              pair_visited[g].begin(), pair_visited[g].end(), 1));
        }
      }
      if (batch_stats != nullptr) {
        batch_stats->total_candidates += w.cands.size();
        batch_stats->eval_pruned += pruned;
        batch_stats->eval_steps_saved += saved;
      }
      std::vector<Answer> answers;
      for (size_t k = 0; k < w.cands.size(); ++k) {
        if (prob[g][k] > 0.0) answers.push_back({w.cands[k].doc, prob[g][k]});
      }
      results[w.item] = RankAnswers(std::move(answers), plan.num_ans);
    }
    batch_stage.topk_s += SecondsSince(rank_start_ns);
    if (batch_stats != nullptr) {
      batch_stats->distinct_docs_fetched = sfa_map.size();
      batch_stats->fetch_threads = fetch_workers;
      batch_stats->eval_threads = eval_workers;
      batch_stats->cache_hits = fetch_bio.cache_hits;
      batch_stats->cache_misses = fetch_bio.cache_misses;
      batch_stats->cache_bytes = fetch_cache_bytes;
    }
  }
  batch_stage.total_s = SecondsSince(batch_start_ns);
  for (const BatchItem& item : items) {
    if (item.stats != nullptr) item.stats->stage = batch_stage;
  }
  return results;
}

std::string ExplainPlan(const PlanSpec& plan) {
  std::string out = StringPrintf("QueryPlan approach=%s pattern='%s'\n",
                                 ApproachName(plan.approach),
                                 plan.pattern.c_str());
  out += StringPrintf("  -> CandidateGen source=%s",
                      CandidateSourceName(plan.source));
  if (plan.source == CandidateSource::kIndexProbe) {
    out += StringPrintf(" anchor='%s'", plan.anchor.c_str());
  }
  out += "\n";
  for (const BoundEquality& eq : plan.equalities) {
    out += StringPrintf("  -> Filter %s = %s\n", eq.column.c_str(),
                        eq.value.ToString().c_str());
  }
  if (plan.fetch != FetchMethod::kNone) {
    out += StringPrintf("  -> Fetch method=%s\n", FetchMethodName(plan.fetch));
  }
  out += StringPrintf("  -> Eval strategy=%s threads=%zu\n",
                      EvalStrategyName(plan.eval), plan.eval_threads);
  out += StringPrintf("  -> TopK num_ans=%zu early-stop=%s\n", plan.num_ans,
                      plan.early_stop ? "on" : "off");
  out += StringPrintf("  Cost: %s\n", plan.cost.ToString().c_str());
  return out;
}

std::string ExplainPlan(const PlanSpec& plan, const QueryStats& stats) {
  std::string out = ExplainPlan(plan);
  out += StringPrintf(
      "  Actual: candidates=%zu (est %zu), threads: fetch=%zu eval=%zu, "
      "cache: filter=%s candidates=%s\n",
      stats.candidates, stats.est_candidates, stats.fetch_threads,
      stats.threads_used, stats.filter_from_cache ? "hit" : "miss",
      stats.candidates_from_cache ? "hit" : "miss");
  // Per-stage est-vs-actual: measured wall time per physical stage (the
  // executor's own clock, StageTimings) next to the planner's per-stage
  // cost estimate (cost units, where ~1.0 = one sequential page read).
  {
    const StageTimings& st = stats.stage;
    const PathCost& est = plan.cost.chosen_cost();
    out += StringPrintf(
        "  Stages: candidate-gen=%.3f ms, filter=%.3f ms, "
        "fetch+eval=%.3f ms (est io=%.1f eval=%.1f units), "
        "topk=%.3f ms, total=%.3f ms\n",
        st.candidate_gen_s * 1e3, st.filter_s * 1e3, st.fetch_eval_s * 1e3,
        est.io_cost, est.eval_cost, st.topk_s * 1e3, st.total_s * 1e3);
  }
  if (plan.eval == EvalStrategy::kSfaDp) {
    // Early termination only exists for the DFA×SFA DP; a string scan
    // has no bounded kernel, so the line would only mislead there.
    out += StringPrintf(
        "  Pruned: %zu/%zu candidates, steps-saved=%llu (early-stop=%s)\n",
        stats.eval_pruned, stats.candidates,
        static_cast<unsigned long long>(stats.eval_steps_saved),
        plan.early_stop ? "on" : "off");
    // The Fetch stage's buffer-cache outcome (blob reads served warm vs
    // from disk; zeros when the database runs cache-disabled).
    out += StringPrintf(
        "  Cache: hits=%llu misses=%llu resident=%llu B shared-plan=%s\n",
        static_cast<unsigned long long>(stats.cache_hits),
        static_cast<unsigned long long>(stats.cache_misses),
        static_cast<unsigned long long>(stats.cache_bytes),
        stats.shared_plan_hit ? "hit" : "miss");
  }
  if (stats.batch_size > 0) {
    out += StringPrintf("  Batch: size=%zu shared-candidate-pass=%s\n",
                        stats.batch_size,
                        stats.shared_candidate_pass ? "yes" : "no");
  }
  // Scatter-gather breakdown: one line per shard so skew (candidate
  // imbalance, cold shards, pruning asymmetry) is visible at a glance.
  if (!stats.shards.empty()) {
    out += StringPrintf("  Shards: %zu\n", stats.shards.size());
    for (const ShardStats& s : stats.shards) {
      out += StringPrintf(
          "    shard %zu: candidates=%zu pruned=%zu steps-saved=%llu "
          "cache=%llu/%llu pages=%llu blob=%llu B est-cost=%.1f (%.1f ms)\n",
          s.shard, s.candidates, s.eval_pruned,
          static_cast<unsigned long long>(s.eval_steps_saved),
          static_cast<unsigned long long>(s.cache_hits),
          static_cast<unsigned long long>(s.cache_misses),
          static_cast<unsigned long long>(s.heap_pages_read),
          static_cast<unsigned long long>(s.blob_bytes_read), s.est_cost,
          s.stage.total_s * 1e3);
    }
  }
  return out;
}

std::string PlanSummary(const PlanSpec& plan) {
  std::string out = CandidateSourceName(plan.source);
  if (!plan.equalities.empty()) {
    out += StringPrintf(">filter(%zu)", plan.equalities.size());
  }
  if (plan.fetch != FetchMethod::kNone) {
    out += ">";
    out += FetchMethodName(plan.fetch);
  }
  out += ">";
  out += EvalStrategyName(plan.eval);
  if (plan.eval == EvalStrategy::kSfaDp) {
    out += StringPrintf("[t=%zu]", plan.eval_threads);
  }
  out += StringPrintf(">top-%zu", plan.num_ans);
  return out;
}

void FoldShardStats(const std::vector<QueryStats>& per_shard,
                    size_t total_docs, QueryStats* out) {
  *out = QueryStats{};
  out->shards.reserve(per_shard.size());
  for (size_t s = 0; s < per_shard.size(); ++s) {
    const QueryStats& ps = per_shard[s];
    out->heap_pages_read += ps.heap_pages_read;
    out->blob_bytes_read += ps.blob_bytes_read;
    out->candidates += ps.candidates;
    out->index_postings += ps.index_postings;
    out->used_index |= ps.used_index;
    out->used_projection |= ps.used_projection;
    out->threads_used = std::max(out->threads_used, ps.threads_used);
    out->fetch_threads = std::max(out->fetch_threads, ps.fetch_threads);
    out->est_candidates += ps.est_candidates;
    out->est_cost += ps.est_cost;
    out->filter_from_cache |= ps.filter_from_cache;
    out->candidates_from_cache |= ps.candidates_from_cache;
    out->cache_hits += ps.cache_hits;
    out->cache_misses += ps.cache_misses;
    out->cache_bytes += ps.cache_bytes;
    out->eval_pruned += ps.eval_pruned;
    out->eval_steps_saved += ps.eval_steps_saved;
    out->batch_size = std::max(out->batch_size, ps.batch_size);
    out->shared_candidate_pass |= ps.shared_candidate_pass;
    // Budget observability: any degraded shard degrades the whole query;
    // visited counts sum. io_retries is NOT folded — per-shard stats all
    // read the one shared QueryControl counter, so summing would multiply
    // it by the shard count; Execute sets the top-level figure once.
    out->degraded |= ps.degraded;
    out->visited_candidates += ps.visited_candidates;
    // Shards run in parallel, so the query-level stage times are the
    // slowest shard's (max, not sum — a sum would exceed wall clock).
    out->stage.candidate_gen_s =
        std::max(out->stage.candidate_gen_s, ps.stage.candidate_gen_s);
    out->stage.filter_s = std::max(out->stage.filter_s, ps.stage.filter_s);
    out->stage.fetch_eval_s =
        std::max(out->stage.fetch_eval_s, ps.stage.fetch_eval_s);
    out->stage.topk_s = std::max(out->stage.topk_s, ps.stage.topk_s);
    out->stage.total_s = std::max(out->stage.total_s, ps.stage.total_s);
    ShardStats row;
    row.shard = s;
    row.candidates = ps.candidates;
    row.eval_pruned = ps.eval_pruned;
    row.eval_steps_saved = ps.eval_steps_saved;
    row.cache_hits = ps.cache_hits;
    row.cache_misses = ps.cache_misses;
    row.heap_pages_read = ps.heap_pages_read;
    row.blob_bytes_read = ps.blob_bytes_read;
    row.est_cost = ps.est_cost;
    row.stage = ps.stage;
    out->shards.push_back(std::move(row));
  }
  out->selectivity = total_docs == 0
                         ? 0.0
                         : static_cast<double>(out->candidates) /
                               static_cast<double>(total_docs);
  if (!per_shard.empty()) out->plan_summary = per_shard[0].plan_summary;
}

}  // namespace staccato::rdbms
