#include "rdbms/plan.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "automata/pattern.h"
#include "indexing/projection.h"
#include "inference/query_eval.h"
#include "util/strings.h"

namespace staccato::rdbms {

namespace {

/// Coerces an equality literal (kept as written by the SQL parser) to the
/// type of the MasterData column it compares against.
Result<Value> CoerceLiteral(const EqualityPredicate& eq, ValueType type) {
  switch (type) {
    case ValueType::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(eq.value.c_str(), &end, 10);
      if (end == eq.value.c_str() || *end != '\0') {
        return Status::InvalidArgument("equality literal '" + eq.value +
                                       "' is not an integer (column " +
                                       eq.column + ")");
      }
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(eq.value.c_str(), &end);
      if (end == eq.value.c_str() || *end != '\0') {
        return Status::InvalidArgument("equality literal '" + eq.value +
                                       "' is not a number (column " +
                                       eq.column + ")");
      }
      return Value::Double(v);
    }
    case ValueType::kString:
      return Value::String(eq.value);
    case ValueType::kBlobId:
      return Status::InvalidArgument("cannot compare blob column " +
                                     eq.column);
  }
  return Status::InvalidArgument("unknown column type");
}

size_t ResolveThreads(size_t requested, size_t default_threads) {
  size_t t = requested == 0 ? default_threads : requested;
  if (t == 0) t = std::max(1u, std::thread::hardware_concurrency());
  return t;
}

}  // namespace

const char* ApproachName(Approach a) {
  switch (a) {
    case Approach::kMap: return "MAP";
    case Approach::kKMap: return "k-MAP";
    case Approach::kFullSfa: return "FullSFA";
    case Approach::kStaccato: return "STACCATO";
  }
  return "?";
}

const char* CandidateSourceName(CandidateSource s) {
  switch (s) {
    case CandidateSource::kFullScan: return "full-scan";
    case CandidateSource::kIndexProbe: return "index-probe";
  }
  return "?";
}

const char* FetchMethodName(FetchMethod f) {
  switch (f) {
    case FetchMethod::kNone: return "none";
    case FetchMethod::kFullBlob: return "blob";
    case FetchMethod::kProjection: return "projection";
  }
  return "?";
}

const char* EvalStrategyName(EvalStrategy e) {
  switch (e) {
    case EvalStrategy::kStrings: return "string-match";
    case EvalStrategy::kSfaDp: return "sfa-dp";
  }
  return "?";
}

Result<PlanSpec> BuildPlan(const PlanContext& ctx, Approach approach,
                           const QueryOptions& q, size_t default_threads) {
  PlanSpec plan;
  plan.approach = approach;
  plan.pattern = q.pattern;
  plan.num_ans = q.num_ans;

  // The pattern must compile; Prepare reuses the DFA, the planner only
  // needs the parse for the anchor term.
  STACCATO_ASSIGN_OR_RETURN(Pattern pat, Pattern::Parse(q.pattern));

  // Bind equality predicates against the MasterData schema.
  if (ctx.master == nullptr && !q.equalities.empty()) {
    return Status::InvalidArgument("no MasterData table to filter on");
  }
  for (const EqualityPredicate& eq : q.equalities) {
    int idx = ctx.master->schema().FindColumn(eq.column);
    if (idx < 0) {
      return Status::InvalidArgument("unknown MasterData column '" +
                                     eq.column + "' in equality predicate");
    }
    ValueType type = ctx.master->schema().column(static_cast<size_t>(idx)).type;
    STACCATO_ASSIGN_OR_RETURN(Value bound, CoerceLiteral(eq, type));
    plan.equalities.push_back({eq.column, idx, std::move(bound)});
  }

  // Candidate generation: the inverted index serves the Staccato
  // representation; a pattern without a dictionary anchor falls back to a
  // full scan (same silent fallback the legacy path had).
  if (q.use_index && approach == Approach::kStaccato) {
    if (ctx.index == nullptr || ctx.dict == nullptr) {
      return Status::InvalidArgument("inverted index not built");
    }
    std::string anchor = pat.AnchorTerm();
    if (!anchor.empty() && ctx.dict->Find(anchor) != kInvalidTerm) {
      plan.source = CandidateSource::kIndexProbe;
      plan.anchor = anchor;
    }
  }

  switch (approach) {
    case Approach::kMap:
      plan.map_only = true;
      [[fallthrough]];
    case Approach::kKMap:
      plan.fetch = FetchMethod::kNone;
      plan.eval = EvalStrategy::kStrings;
      plan.eval_threads = 1;  // one pass over kMAPData; nothing to fan out
      break;
    case Approach::kFullSfa:
    case Approach::kStaccato:
      plan.fetch = plan.source == CandidateSource::kIndexProbe &&
                           q.use_projection
                       ? FetchMethod::kProjection
                       : FetchMethod::kFullBlob;
      plan.eval = EvalStrategy::kSfaDp;
      plan.eval_threads = ResolveThreads(q.eval_threads, default_threads);
      break;
  }
  return plan;
}

Result<CandidateSet> ProbeIndex(const PlanContext& ctx,
                                const std::string& anchor) {
  CandidateSet set;
  set.anchor = anchor;
  for (uint64_t packed : ctx.index->Lookup(anchor)) {
    STACCATO_ASSIGN_OR_RETURN(Tuple t,
                              ctx.postings->Get(UnpackRecordId(packed)));
    set.postings[static_cast<DocId>(t[1].AsInt())].push_back(
        static_cast<uint64_t>(t[2].AsInt()));
    ++set.total_postings;
  }
  return set;
}

namespace {

/// The Filter operator: docs whose MasterData row satisfies every bound
/// equality. Returns an empty vector when the plan has no predicates (all
/// docs pass); `any_filter` distinguishes the two cases.
Result<std::vector<char>> EqualityBitmap(const PlanContext& ctx,
                                         const PlanSpec& plan,
                                         QueryStats* stats) {
  std::vector<char> allowed;
  if (plan.equalities.empty()) return allowed;
  allowed.assign(ctx.num_sfas, 0);
  ctx.master->ResetIoStats();
  STACCATO_RETURN_NOT_OK(ctx.master->Scan([&](RecordId, const Tuple& t) {
    for (const BoundEquality& eq : plan.equalities) {
      if (t[static_cast<size_t>(eq.column_index)] != eq.value) return true;
    }
    size_t key = static_cast<size_t>(t[0].AsInt());
    if (key < allowed.size()) allowed[key] = 1;
    return true;
  }));
  if (stats != nullptr) {
    stats->heap_pages_read += ctx.master->io_stats().page_reads;
  }
  return allowed;
}

/// Strings Eval: one scan over kMAPData accumulating per-doc match mass.
Result<std::vector<Answer>> ExecuteStrings(const PlanContext& ctx,
                                           const PlanSpec& plan,
                                           const Dfa& dfa,
                                           const std::vector<char>& allowed,
                                           QueryStats* stats) {
  const bool filtered = !plan.equalities.empty();
  std::vector<double> prob(ctx.num_sfas, 0.0);
  ctx.kmap->ResetIoStats();
  STACCATO_RETURN_NOT_OK(ctx.kmap->Scan([&](RecordId, const Tuple& t) {
    size_t key = static_cast<size_t>(t[0].AsInt());
    if (filtered && (key >= allowed.size() || !allowed[key])) return true;
    if (plan.map_only && t[1].AsInt() != 0) return true;
    if (dfa.Matches(t[2].AsString())) {
      prob[key] += std::exp(t[3].AsDouble());
    }
    return true;
  }));
  size_t candidates = ctx.num_sfas;
  if (filtered) {
    candidates = static_cast<size_t>(
        std::count(allowed.begin(), allowed.end(), 1));
  }
  if (stats != nullptr) {
    stats->heap_pages_read += ctx.kmap->io_stats().page_reads;
    stats->candidates = candidates;
    stats->selectivity = ctx.num_sfas == 0
                             ? 0.0
                             : static_cast<double>(candidates) /
                                   static_cast<double>(ctx.num_sfas);
    stats->threads_used = 1;
  }
  std::vector<Answer> answers;
  for (size_t i = 0; i < ctx.num_sfas; ++i) {
    if (prob[i] > 0.0) answers.push_back({i, std::min(prob[i], 1.0)});
  }
  return RankAnswers(std::move(answers), plan.num_ans);
}

struct SfaCandidate {
  DocId doc = 0;
  std::vector<uint64_t> postings;  // packed; empty on the full-scan path
  std::string blob;                // serialized SFA
};

/// Projection Eval for one candidate: deserialize, then score the region
/// around each posting start; the best region bounds the match probability.
Result<double> EvalProjectedCandidate(const SfaCandidate& cand,
                                      const Dfa& dfa, size_t horizon) {
  STACCATO_ASSIGN_OR_RETURN(Sfa sfa, Sfa::Deserialize(cand.blob));
  double best = 0.0;
  for (uint64_t packed : cand.postings) {
    Posting post = UnpackPosting(packed);
    if (post.edge >= sfa.NumEdges()) continue;
    NodeId from = sfa.edge(post.edge).from;
    best = std::max(best, EvalProjected(sfa, dfa, from, horizon));
  }
  return best;
}

/// SFA Eval: Fetch (serial blob reads; the storage layer is single-
/// threaded) then the embarrassingly parallel DP stage. Per-candidate
/// results are gathered positionally, so the ranked answers are
/// bit-identical for any thread count.
Result<std::vector<Answer>> ExecuteSfas(const PlanContext& ctx,
                                        const PlanSpec& plan, const Dfa& dfa,
                                        const std::vector<char>& allowed,
                                        QueryStats* stats) {
  const bool filtered = !plan.equalities.empty();
  const bool full = plan.approach == Approach::kFullSfa;
  const std::vector<RecordId>& rids = full ? *ctx.fullsfa_rid : *ctx.graph_rid;
  HeapTable* blob_table = full ? ctx.fullsfa : ctx.staccato_graph;

  // CandidateGen.
  std::vector<SfaCandidate> cands;
  size_t total_postings = 0;
  if (plan.source == CandidateSource::kIndexProbe) {
    STACCATO_ASSIGN_OR_RETURN(CandidateSet set, ProbeIndex(ctx, plan.anchor));
    total_postings = set.total_postings;
    cands.reserve(set.postings.size());
    for (auto& [doc, posts] : set.postings) {
      if (filtered && (doc >= allowed.size() || !allowed[doc])) continue;
      cands.push_back({doc, std::move(posts), {}});
    }
  } else {
    cands.reserve(ctx.num_sfas);
    for (DocId doc = 0; doc < ctx.num_sfas; ++doc) {
      if (filtered && (doc >= allowed.size() || !allowed[doc])) continue;
      cands.push_back({doc, {}, {}});
    }
  }

  ctx.blobs->ResetStats();
  auto fetch_one = [&](SfaCandidate& cand) -> Status {
    if (cand.doc >= rids.size()) return Status::NotFound("no such DataKey");
    STACCATO_ASSIGN_OR_RETURN(Tuple t, blob_table->Get(rids[cand.doc]));
    STACCATO_ASSIGN_OR_RETURN(cand.blob, ctx.blobs->Get(t[1].AsBlobId()));
    return Status::OK();
  };
  const size_t horizon = plan.pattern.size() + 8;
  auto eval_one = [&](const SfaCandidate& cand) -> Result<double> {
    if (plan.fetch == FetchMethod::kProjection) {
      return EvalProjectedCandidate(cand, dfa, horizon);
    }
    STACCATO_ASSIGN_OR_RETURN(
        std::vector<double> p,
        EvalSerializedSfaBatch({&cand.blob}, dfa, /*threads=*/1));
    return p[0];
  };

  size_t threads = std::max<size_t>(1, plan.eval_threads);
  threads = std::min(threads, cands.empty() ? size_t{1} : cands.size());
  std::vector<double> prob(cands.size(), 0.0);
  if (threads <= 1) {
    // Stream: fetch, evaluate, and release one candidate at a time, so
    // peak memory is a single serialized SFA (the legacy profile).
    for (size_t i = 0; i < cands.size(); ++i) {
      STACCATO_RETURN_NOT_OK(fetch_one(cands[i]));
      STACCATO_ASSIGN_OR_RETURN(prob[i], eval_one(cands[i]));
      cands[i].blob = std::string();
    }
  } else {
    // Parallel: the storage layer is single-threaded, so Fetch stays a
    // serial pass that materializes the candidate blobs; the DP stage then
    // fans out. (Trades memory — all candidate blobs at once — for the
    // parallel speedup the caller asked for.)
    for (SfaCandidate& cand : cands) STACCATO_RETURN_NOT_OK(fetch_one(cand));
    if (plan.fetch == FetchMethod::kProjection) {
      std::vector<Status> errors(threads, Status::OK());
      std::atomic<size_t> next{0};
      auto worker = [&](size_t tid) {
        while (true) {
          size_t i = next.fetch_add(1);
          if (i >= cands.size()) return;
          auto r = EvalProjectedCandidate(cands[i], dfa, horizon);
          if (!r.ok()) {
            errors[tid] = r.status();
            return;
          }
          prob[i] = *r;
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
      for (auto& t : pool) t.join();
      for (const Status& st : errors) STACCATO_RETURN_NOT_OK(st);
    } else {
      std::vector<const std::string*> blobs;
      blobs.reserve(cands.size());
      for (const SfaCandidate& cand : cands) blobs.push_back(&cand.blob);
      STACCATO_ASSIGN_OR_RETURN(prob,
                                EvalSerializedSfaBatch(blobs, dfa, threads));
    }
  }

  if (stats != nullptr) {
    stats->blob_bytes_read += ctx.blobs->bytes_read();
    stats->candidates = cands.size();
    stats->index_postings = total_postings;
    stats->selectivity = ctx.num_sfas == 0
                             ? 0.0
                             : static_cast<double>(cands.size()) /
                                   static_cast<double>(ctx.num_sfas);
    stats->threads_used = threads;
  }

  std::vector<Answer> answers;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (prob[i] > 0.0) answers.push_back({cands[i].doc, prob[i]});
  }
  return RankAnswers(std::move(answers), plan.num_ans);
}

}  // namespace

Result<std::vector<Answer>> ExecutePlan(const PlanContext& ctx,
                                        const PlanSpec& plan, const Dfa& dfa,
                                        QueryStats* stats) {
  if (stats != nullptr) {
    stats->used_index = plan.source == CandidateSource::kIndexProbe;
    stats->used_projection = plan.fetch == FetchMethod::kProjection;
    stats->plan_summary = PlanSummary(plan);
    stats->threads_used = 1;
  }
  STACCATO_ASSIGN_OR_RETURN(std::vector<char> allowed,
                            EqualityBitmap(ctx, plan, stats));
  switch (plan.eval) {
    case EvalStrategy::kStrings:
      return ExecuteStrings(ctx, plan, dfa, allowed, stats);
    case EvalStrategy::kSfaDp:
      return ExecuteSfas(ctx, plan, dfa, allowed, stats);
  }
  return Status::InvalidArgument("unknown eval strategy");
}

std::string ExplainPlan(const PlanSpec& plan) {
  std::string out = StringPrintf("QueryPlan approach=%s pattern='%s'\n",
                                 ApproachName(plan.approach),
                                 plan.pattern.c_str());
  out += StringPrintf("  -> CandidateGen source=%s",
                      CandidateSourceName(plan.source));
  if (plan.source == CandidateSource::kIndexProbe) {
    out += StringPrintf(" anchor='%s'", plan.anchor.c_str());
  }
  out += "\n";
  for (const BoundEquality& eq : plan.equalities) {
    out += StringPrintf("  -> Filter %s = %s\n", eq.column.c_str(),
                        eq.value.ToString().c_str());
  }
  if (plan.fetch != FetchMethod::kNone) {
    out += StringPrintf("  -> Fetch method=%s\n", FetchMethodName(plan.fetch));
  }
  out += StringPrintf("  -> Eval strategy=%s threads=%zu\n",
                      EvalStrategyName(plan.eval), plan.eval_threads);
  out += StringPrintf("  -> TopK num_ans=%zu\n", plan.num_ans);
  return out;
}

std::string PlanSummary(const PlanSpec& plan) {
  std::string out = CandidateSourceName(plan.source);
  if (!plan.equalities.empty()) {
    out += StringPrintf(">filter(%zu)", plan.equalities.size());
  }
  if (plan.fetch != FetchMethod::kNone) {
    out += ">";
    out += FetchMethodName(plan.fetch);
  }
  out += ">";
  out += EvalStrategyName(plan.eval);
  if (plan.eval == EvalStrategy::kSfaDp) {
    out += StringPrintf("[t=%zu]", plan.eval_threads);
  }
  out += StringPrintf(">top-%zu", plan.num_ans);
  return out;
}

}  // namespace staccato::rdbms
