#include "rdbms/wal.h"

#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/crc32.h"
#include "util/fault_fs.h"
#include "util/serde.h"

namespace staccato {
namespace rdbms {

namespace {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  dst->append(buf, 4);
}

uint32_t GetFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

/// CRC over the type byte followed by the fragment payload, so neither
/// can be swapped or truncated without detection.
uint32_t FragmentCrc(uint8_t type, const char* data, size_t n) {
  std::string scratch;
  scratch.reserve(n + 1);
  scratch.push_back(static_cast<char>(type));
  scratch.append(data, n);
  return util::Crc32(scratch.data(), scratch.size());
}

}  // namespace

WalSyncPolicy WalSyncPolicyFromEnv() {
  if (const char* env = std::getenv("STACCATO_WAL_SYNC")) {
    if (std::strcmp(env, "never") == 0) return WalSyncPolicy::kNever;
  }
  return WalSyncPolicy::kCommit;
}

std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

// ---- WalWriter --------------------------------------------------------------

WalWriter::WalWriter(FILE* file, std::string path, uint64_t offset,
                     WalSyncPolicy policy)
    : file_(file), path_(std::move(path)), offset_(offset), policy_(policy) {}

WalWriter::~WalWriter() {
  if (file_ != nullptr) fclose(file_);
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   uint64_t resume_offset,
                                                   WalSyncPolicy policy) {
  FILE* file = fopen(path.c_str(), "rb+");
  if (file == nullptr) file = fopen(path.c_str(), "wb+");
  if (file == nullptr) {
    return Status::IOError("cannot open WAL " + path + ": " +
                           std::strerror(errno));
  }
  // Drop any torn tail recovery identified before the first new append
  // lands, so fresh records never sit behind garbage.
  if (ftruncate(fileno(file), static_cast<off_t>(resume_offset)) != 0) {
    fclose(file);
    return Status::IOError("cannot truncate WAL " + path + ": " +
                           std::strerror(errno));
  }
  if (fseek(file, static_cast<long>(resume_offset), SEEK_SET) != 0) {
    fclose(file);
    return Status::IOError("cannot seek WAL " + path);
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(file, path, resume_offset, policy));
}

Status WalWriter::AddRecord(std::string_view payload) {
  STACCATO_RETURN_NOT_OK(sticky_error_);

  // Build the full on-disk span of this record — block-trailer padding
  // plus every fragment — then write it with one call, so a failed write
  // has a single boundary to roll back to.
  std::string buf;
  uint64_t pos = offset_;
  size_t block_offset = pos % kWalBlockSize;
  if (kWalBlockSize - block_offset < kWalHeaderSize) {
    buf.append(kWalBlockSize - block_offset, '\0');
    pos += kWalBlockSize - block_offset;
    block_offset = 0;
  }

  const char* data = payload.data();
  size_t left = payload.size();
  bool first = true;
  do {
    const size_t avail = kWalBlockSize - block_offset - kWalHeaderSize;
    const size_t frag = left < avail ? left : avail;
    const bool last = frag == left;
    const uint8_t type = first ? (last ? kWalFull : kWalFirst)
                               : (last ? kWalLast : kWalMiddle);
    PutFixed32(&buf, FragmentCrc(type, data, frag));
    buf.push_back(static_cast<char>(frag & 0xFF));
    buf.push_back(static_cast<char>((frag >> 8) & 0xFF));
    buf.push_back(static_cast<char>(type));
    buf.append(data, frag);
    data += frag;
    left -= frag;
    pos += kWalHeaderSize + frag;
    block_offset = pos % kWalBlockSize;
    if (kWalBlockSize - block_offset < kWalHeaderSize && left > 0) {
      buf.append(kWalBlockSize - block_offset, '\0');
      pos += kWalBlockSize - block_offset;
      block_offset = 0;
    }
    first = false;
  } while (left > 0);

  Status st = util::CheckedWrite(file_, buf.data(), buf.size(), path_);
  if (!st.ok()) {
    // Roll back to the previous record boundary: a torn fragment must not
    // end up in front of later successful appends, where it would make
    // recovery silently drop them.
    (void)fflush(file_);
    if (ftruncate(fileno(file_), static_cast<off_t>(offset_)) != 0 ||
        fseek(file_, static_cast<long>(offset_), SEEK_SET) != 0) {
      sticky_error_ = Status::IOError(
          "WAL left torn after failed append to " + path_);
      return sticky_error_;
    }
    return st;
  }
  offset_ = pos;
  return Status::OK();
}

Status WalWriter::Commit() {
  STACCATO_RETURN_NOT_OK(sticky_error_);
  if (policy_ == WalSyncPolicy::kCommit) {
    return util::CheckedSync(file_, path_);
  }
  return util::CheckedFlush(file_, path_);
}

Status WalWriter::Sync() {
  STACCATO_RETURN_NOT_OK(sticky_error_);
  return util::CheckedSync(file_, path_);
}

Status WalWriter::Reset() {
  STACCATO_RETURN_NOT_OK(sticky_error_);
  // Drain the stdio buffer before truncating: bytes still buffered here
  // would otherwise be flushed after the truncate and resurrect a stale
  // tail past offset zero.
  STACCATO_RETURN_NOT_OK(util::CheckedFlush(file_, path_));
  if (ftruncate(fileno(file_), 0) != 0 || fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IOError("cannot reset WAL " + path_);
  }
  offset_ = 0;
  return util::CheckedSync(file_, path_);
}

// ---- WalReader --------------------------------------------------------------

WalReader::WalReader(std::string data) : data_(std::move(data)) {}

Result<std::unique_ptr<WalReader>> WalReader::Open(const std::string& path) {
  FILE* file = fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("no WAL at " + path);
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), file)) > 0) {
    data.append(buf, n);
  }
  const bool read_error = ferror(file) != 0;
  fclose(file);
  if (read_error) {
    return Status::IOError("cannot read WAL " + path);
  }
  return std::unique_ptr<WalReader>(new WalReader(std::move(data)));
}

bool WalReader::ReadRecord(std::string* out) {
  if (done_) return false;
  out->clear();
  bool mid_record = false;

  while (true) {
    const size_t remaining = data_.size() - pos_;
    const size_t block_left = kWalBlockSize - pos_ % kWalBlockSize;

    if (block_left < kWalHeaderSize) {
      // Block trailer: must be zero padding.
      const size_t n = block_left < remaining ? block_left : remaining;
      for (size_t i = 0; i < n; ++i) {
        if (data_[pos_ + i] != '\0') {
          torn_tail_ = true;
          done_ = true;
          return false;
        }
      }
      pos_ += n;
      if (pos_ == data_.size()) {
        // EOF inside (or right after) padding. If a record was mid-flight
        // its fragments never completed: torn.
        torn_tail_ = mid_record;
        done_ = true;
        return false;
      }
      continue;
    }

    if (remaining < kWalHeaderSize) {
      // Partial header at EOF. All-zero bytes are a crashed append that
      // wrote nothing meaningful (clean); anything else is torn.
      bool all_zero = true;
      for (size_t i = 0; i < remaining; ++i) {
        if (data_[pos_ + i] != '\0') all_zero = false;
      }
      torn_tail_ = mid_record || !all_zero;
      done_ = true;
      return false;
    }

    const char* header = data_.data() + pos_;
    const uint32_t expected_crc = GetFixed32(header);
    const size_t len = static_cast<uint8_t>(header[4]) |
                       static_cast<size_t>(static_cast<uint8_t>(header[5]))
                           << 8;
    const uint8_t type = static_cast<uint8_t>(header[6]);

    if (type == kWalZero && len == 0 && expected_crc == 0) {
      // A whole zero header only appears at a truncated-to-zeros tail;
      // treat like clean EOF of the intact prefix.
      torn_tail_ = mid_record;
      done_ = true;
      return false;
    }
    if (type > kWalLast || len > block_left - kWalHeaderSize ||
        remaining - kWalHeaderSize < len) {
      torn_tail_ = true;
      done_ = true;
      return false;
    }
    const char* payload = header + kWalHeaderSize;
    if (FragmentCrc(type, payload, len) != expected_crc) {
      torn_tail_ = true;
      done_ = true;
      return false;
    }
    const bool starts = type == kWalFull || type == kWalFirst;
    if (starts == mid_record) {
      // FULL/FIRST while assembling, or MIDDLE/LAST with nothing started:
      // the sequence is broken.
      torn_tail_ = true;
      done_ = true;
      return false;
    }
    pos_ += kWalHeaderSize + len;
    out->append(payload, len);
    if (type == kWalFull || type == kWalLast) {
      last_record_end_ = pos_;
      return true;
    }
    mid_record = true;
    if (pos_ == data_.size()) {
      torn_tail_ = true;  // record never completed
      done_ = true;
      return false;
    }
  }
}

// ---- Logical records --------------------------------------------------------

std::string EncodeWalDoc(const WalDocRecord& rec) {
  BinaryWriter w;
  w.PutU8(kWalDocTag);
  w.PutVarint(rec.seq);
  w.PutString(rec.doc_name);
  w.PutI64(rec.year);
  w.PutString(rec.truth);
  w.PutVarint(rec.kmap_k);
  w.PutVarint(rec.staccato_m);
  w.PutVarint(rec.staccato_k);
  w.PutString(rec.full_sfa);
  return w.Release();
}

Result<WalDocRecord> DecodeWalDoc(std::string_view bytes) {
  BinaryReader r(bytes.data(), bytes.size());
  STACCATO_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  if (tag != kWalDocTag) {
    return Status::Corruption("WAL record is not a doc record");
  }
  WalDocRecord rec;
  STACCATO_ASSIGN_OR_RETURN(rec.seq, r.GetVarint());
  STACCATO_ASSIGN_OR_RETURN(rec.doc_name, r.GetString());
  STACCATO_ASSIGN_OR_RETURN(rec.year, r.GetI64());
  STACCATO_ASSIGN_OR_RETURN(rec.truth, r.GetString());
  STACCATO_ASSIGN_OR_RETURN(rec.kmap_k, r.GetVarint());
  STACCATO_ASSIGN_OR_RETURN(rec.staccato_m, r.GetVarint());
  STACCATO_ASSIGN_OR_RETURN(rec.staccato_k, r.GetVarint());
  STACCATO_ASSIGN_OR_RETURN(rec.full_sfa, r.GetString());
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after WAL doc record");
  }
  return rec;
}

std::string EncodeWalCommit(const WalCommitRecord& rec) {
  BinaryWriter w;
  w.PutU8(kWalCommitTag);
  w.PutVarint(rec.seq);
  w.PutU32(rec.payload_crc);
  return w.Release();
}

Result<WalCommitRecord> DecodeWalCommit(std::string_view bytes) {
  BinaryReader r(bytes.data(), bytes.size());
  STACCATO_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  if (tag != kWalCommitTag) {
    return Status::Corruption("WAL record is not a commit record");
  }
  WalCommitRecord rec;
  STACCATO_ASSIGN_OR_RETURN(rec.seq, r.GetVarint());
  STACCATO_ASSIGN_OR_RETURN(rec.payload_crc, r.GetU32());
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after WAL commit record");
  }
  return rec;
}

}  // namespace rdbms
}  // namespace staccato
