#include "rdbms/shard.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "rdbms/session.h"
#include "util/fault_fs.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace staccato::rdbms {

namespace {

/// STACCATO_SHARDS: shard count when ShardConfig does not name one.
size_t ShardsFromEnv() {
  const char* env = std::getenv("STACCATO_SHARDS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) return static_cast<size_t>(v);
  }
  return 1;
}

std::string ShardsMetaPath(const std::string& dir) {
  return dir + "/shards.meta";
}

/// Persists the shard count ("STACSHRD <n>\n", atomic rename) so
/// OpenExisting recovers the partition width without guessing from the
/// directory listing.
Status WriteShardsMeta(const std::string& dir, size_t shards) {
  const std::string path = ShardsMetaPath(dir);
  const std::string tmp = path + ".tmp";
  const std::string body = StringPrintf("STACSHRD %zu\n", shards);
  FILE* f = fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + tmp);
  Status st = util::CheckedWrite(f, body.data(), body.size(), tmp);
  if (st.ok()) st = util::CheckedSync(f, tmp);
  fclose(f);
  if (!st.ok()) {
    std::remove(tmp.c_str());
    return st;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot commit " + path);
  }
  return Status::OK();
}

Result<size_t> ReadShardsMeta(const std::string& dir) {
  const std::string path = ShardsMetaPath(dir);
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no shard meta at " + path);
  char buf[64] = {0};
  size_t n = fread(buf, 1, sizeof(buf) - 1, f);
  fclose(f);
  size_t shards = 0;
  if (n == 0 || sscanf(buf, "STACSHRD %zu", &shards) != 1 || shards == 0) {
    return Status::Corruption("bad shard meta file " + path);
  }
  return shards;
}

/// The total cache budget is divided evenly across shards so an N-shard
/// database never uses more memory than a 1-shard one (a zero slice
/// disables that shard's cache, like any zero budget).
cache::CacheConfig PerShardCache(const cache::CacheConfig& total,
                                 size_t shards) {
  cache::CacheConfig per = total;
  per.budget_bytes = shards == 0 ? total.budget_bytes
                                 : total.budget_bytes / shards;
  return per;
}

Result<size_t> ResolveShardCount(const ShardConfig& config) {
  size_t n = config.shards == 0 ? ShardsFromEnv() : config.shards;
  if (n == 0) return Status::InvalidArgument("shard count must be positive");
  return n;
}

}  // namespace

std::string ShardDirName(const std::string& dir, size_t shard) {
  return StringPrintf("%s/shard.%zu", dir.c_str(), shard);
}

size_t ShardOfDoc(DocId doc, size_t num_shards) {
  if (num_shards <= 1) return 0;
  // splitmix64 finalizer: the placement must be a pure, platform-stable
  // function of the global id so reopen / WAL replay / map rebuilds all
  // agree, and a stream of sequential ids must still spread evenly.
  uint64_t x = doc + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<size_t>(x % num_shards);
}

Result<std::unique_ptr<ShardedDb>> ShardedDb::Open(const std::string& dir,
                                                   ShardConfig config) {
  STACCATO_ASSIGN_OR_RETURN(size_t n, ResolveShardCount(config));
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create directory " + dir);
  auto db = std::unique_ptr<ShardedDb>(new ShardedDb(dir));
  db->shards_.reserve(n);
  const cache::CacheConfig per_cache = PerShardCache(config.cache, n);
  for (size_t s = 0; s < n; ++s) {
    STACCATO_ASSIGN_OR_RETURN(std::unique_ptr<StaccatoDb> shard,
                              StaccatoDb::Open(ShardDirName(dir, s), per_cache));
    db->shards_.push_back(std::move(shard));
  }
  STACCATO_RETURN_NOT_OK(WriteShardsMeta(dir, n));
  util::MutexLock lock(&db->mu_);
  STACCATO_RETURN_NOT_OK(db->RebuildMapLocked());
  return db;
}

Result<std::unique_ptr<ShardedDb>> ShardedDb::OpenExisting(
    const std::string& dir, ShardConfig config) {
  STACCATO_ASSIGN_OR_RETURN(size_t n, ReadShardsMeta(dir));
  if (config.shards != 0 && config.shards != n) {
    return Status::InvalidArgument(StringPrintf(
        "database was created with %zu shards, cannot reopen with %zu "
        "(the partition is fixed at creation time)",
        n, config.shards));
  }
  auto db = std::unique_ptr<ShardedDb>(new ShardedDb(dir));
  db->shards_.reserve(n);
  const cache::CacheConfig per_cache = PerShardCache(config.cache, n);
  for (size_t s = 0; s < n; ++s) {
    STACCATO_ASSIGN_OR_RETURN(
        std::unique_ptr<StaccatoDb> shard,
        StaccatoDb::OpenExisting(ShardDirName(dir, s), per_cache));
    db->shards_.push_back(std::move(shard));
  }
  util::MutexLock lock(&db->mu_);
  STACCATO_RETURN_NOT_OK(db->RebuildMapLocked());
  return db;
}

Status ShardedDb::RebuildMapLocked() {
  const size_t n = shards_.size();
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->NumSfas();
  auto map = std::make_shared<ShardMap>();
  map->local_to_global.resize(n);
  for (DocId g = 0; g < total; ++g) {
    map->local_to_global[ShardOfDoc(g, n)].push_back(g);
  }
  for (size_t s = 0; s < n; ++s) {
    if (map->local_to_global[s].size() != shards_[s]->NumSfas()) {
      return Status::Corruption(StringPrintf(
          "shard %zu holds %zu documents but the stable-hash partition "
          "assigns it %zu — directory opened with the wrong shard layout?",
          s, shards_[s]->NumSfas(), map->local_to_global[s].size()));
    }
  }
  map->total = total;
  map_ = std::move(map);
  return Status::OK();
}

std::shared_ptr<const ShardMap> ShardedDb::map_snapshot() const {
  util::MutexLock lock(&mu_);
  return map_;
}

Status ShardedDb::Load(const OcrDataset& dataset, const LoadOptions& opts) {
  const size_t n = shards_.size();
  if (dataset.sfas.size() != dataset.corpus.lines.size() ||
      dataset.corpus.page_of_line.size() != dataset.corpus.lines.size()) {
    return Status::InvalidArgument("dataset line/sfa vectors disagree");
  }
  // Route lines to their owning shards in ascending global order, so each
  // shard's local ids (its load order) agree with the id map. Corpus name
  // and per-line page numbers are preserved: DocName and Year — the
  // schema columns equality predicates see — are shard-invariant.
  std::vector<OcrDataset> parts(n);
  for (OcrDataset& part : parts) {
    part.corpus.name = dataset.corpus.name;
    part.corpus.num_pages = dataset.corpus.num_pages;
  }
  for (size_t g = 0; g < dataset.corpus.lines.size(); ++g) {
    OcrDataset& part = parts[ShardOfDoc(g, n)];
    part.corpus.lines.push_back(dataset.corpus.lines[g]);
    part.corpus.page_of_line.push_back(dataset.corpus.page_of_line[g]);
    part.sfas.push_back(dataset.sfas[g]);
  }
  // Shard loads run serially here: each Load already parallelizes its
  // Staccato construction over the shared pool.
  for (size_t s = 0; s < n; ++s) {
    STACCATO_RETURN_NOT_OK(shards_[s]->Load(parts[s], opts));
  }
  util::MutexLock lock(&mu_);
  return RebuildMapLocked();
}

Status ShardedDb::Append(const DocumentInput& doc) {
  util::MutexLock lock(&mu_);
  const DocId g = map_->total;
  const size_t s = ShardOfDoc(g, shards_.size());
  // Publish the id-map extension BEFORE the shard append: a concurrent
  // query snapshots its plan contexts first and the map second, so if
  // its contexts can see the new document, the map it reads can
  // translate it. The retraction on failure is unobservable — both the
  // map swap and the shard append happen under the map mutex.
  auto next = std::make_shared<ShardMap>(*map_);
  next->local_to_global[s].push_back(g);
  next->total = g + 1;
  std::shared_ptr<const ShardMap> prev = map_;
  map_ = std::move(next);
  Status st = shards_[s]->Append(doc);
  if (!st.ok()) map_ = std::move(prev);
  return st;
}

Status ShardedDb::Checkpoint() {
  return ParallelFor(shards_.size(), 1, [this](size_t s) -> Status {
    return shards_[s]->Checkpoint();
  });
}

Status ShardedDb::BuildInvertedIndex(
    const std::vector<std::string>& dictionary_terms) {
  return ParallelFor(shards_.size(), 1, [&](size_t s) -> Status {
    return shards_[s]->BuildInvertedIndex(dictionary_terms);
  });
}

Result<std::vector<Answer>> ShardedDb::Query(Approach approach,
                                             const QueryOptions& q,
                                             QueryStats* stats) {
  // Same legacy flag-driven semantics as StaccatoDb::Query: the facade
  // measures the path it names. Per-shard eval stays serial — the
  // scatter across shards is the parallelism this facade exercises.
  QueryOptions pinned = q;
  if (pinned.index_mode == IndexMode::kAuto) {
    pinned.index_mode = q.use_index ? IndexMode::kForce : IndexMode::kNever;
  }
  Session session(this, SessionOptions{/*eval_threads=*/1, q.num_ans});
  STACCATO_ASSIGN_OR_RETURN(PreparedQuery pq, session.Prepare(approach, pinned));
  return pq.Execute(stats);
}

Result<std::vector<Answer>> ShardedDb::QuerySql(Approach approach,
                                                const std::string& sql,
                                                QueryStats* stats) {
  Session session(this, SessionOptions{/*eval_threads=*/1, /*num_ans=*/100});
  STACCATO_ASSIGN_OR_RETURN(PreparedQuery pq, session.PrepareSql(approach, sql));
  return pq.Execute(stats);
}

Result<std::set<DocId>> ShardedDb::GroundTruthFor(const std::string& pattern) {
  const size_t n = shards_.size();
  std::vector<std::set<DocId>> local(n);
  for (size_t s = 0; s < n; ++s) {
    STACCATO_ASSIGN_OR_RETURN(local[s], shards_[s]->GroundTruthFor(pattern));
  }
  // Map snapshot AFTER the shard scans: any document a scan saw was
  // published into the map before its shard append (see Append).
  std::shared_ptr<const ShardMap> map = map_snapshot();
  std::set<DocId> out;
  for (size_t s = 0; s < n; ++s) {
    for (DocId local_doc : local[s]) {
      if (local_doc >= map->local_to_global[s].size()) {
        return Status::Internal("shard document missing from the id map");
      }
      out.insert(map->local_to_global[s][local_doc]);
    }
  }
  return out;
}

size_t ShardedDb::NumSfas() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->NumSfas();
  return total;
}

StorageReport ShardedDb::Storage() const {
  StorageReport out;
  for (const auto& shard : shards_) {
    StorageReport r = shard->Storage();
    out.text_bytes += r.text_bytes;
    out.kmap_table_bytes += r.kmap_table_bytes;
    out.fullsfa_blob_bytes += r.fullsfa_blob_bytes;
    out.staccato_blob_bytes += r.staccato_blob_bytes;
    out.staccato_table_bytes += r.staccato_table_bytes;
    out.index_entries += r.index_entries;
  }
  return out;
}

Status ShardedDb::DropCaches() {
  for (const auto& shard : shards_) {
    STACCATO_RETURN_NOT_OK(shard->DropCaches());
  }
  return Status::OK();
}

}  // namespace staccato::rdbms
