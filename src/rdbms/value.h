// Typed values and tuple schemas for the mini-RDBMS. The type system covers
// exactly what the paper's storage schema (Table 5) needs: INTEGER, FLOAT8,
// VARCHAR/TEXT, and OID (blob handle).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/result.h"
#include "util/serde.h"

namespace staccato::rdbms {

enum class ValueType : uint8_t {
  kInt = 0,     // INTEGER / BIGINT
  kDouble = 1,  // FLOAT8
  kString = 2,  // VARCHAR / TEXT
  kBlobId = 3,  // OID — handle into the blob store
};

const char* ValueTypeName(ValueType t);

/// \brief One typed cell.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }
  static Value Blob(uint64_t id) { return Value(BlobTag{id}); }

  ValueType type() const {
    switch (v_.index()) {
      case 0: return ValueType::kInt;
      case 1: return ValueType::kDouble;
      case 2: return ValueType::kString;
      default: return ValueType::kBlobId;
    }
  }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  uint64_t AsBlobId() const { return std::get<BlobTag>(v_).id; }

  bool operator==(const Value& o) const { return v_ == o.v_; }
  bool operator!=(const Value& o) const { return !(*this == o); }

  std::string ToString() const;

 private:
  struct BlobTag {
    uint64_t id;
    bool operator==(const BlobTag& o) const { return id == o.id; }
  };
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(BlobTag v) : v_(v) {}

  std::variant<int64_t, double, std::string, BlobTag> v_;
};

using Tuple = std::vector<Value>;

/// \brief A named, typed column.
struct Column {
  std::string name;
  ValueType type;
};

/// \brief Relation schema: ordered columns with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> cols) : cols_(std::move(cols)) {}

  size_t NumColumns() const { return cols_.size(); }
  const Column& column(size_t i) const { return cols_[i]; }
  const std::vector<Column>& columns() const { return cols_; }

  /// Index of a column by name; -1 if absent.
  int FindColumn(const std::string& name) const;

  /// Checks a tuple's arity and column types against the schema.
  Status CheckTuple(const Tuple& t) const;

  /// Tuple (de)serialization under this schema.
  void EncodeTuple(const Tuple& t, BinaryWriter* w) const;
  Result<Tuple> DecodeTuple(BinaryReader* r) const;

 private:
  std::vector<Column> cols_;
};

}  // namespace staccato::rdbms
