#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace staccato {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool Contains(std::string_view hay, std::string_view needle) {
  return hay.find(needle) != std::string_view::npos;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "kB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  return StringPrintf("%.1f %s", v, units[u]);
}

}  // namespace staccato
