#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "telemetry/metrics_registry.h"

namespace staccato {

namespace {
// Set while a worker runs its loop, so ParallelFor can detect that it is
// being called from inside the pool it is about to schedule on.
thread_local const ThreadPool* tls_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(size_t capacity, size_t max_queued)
    : capacity_(capacity == 0 ? DefaultThreads() : capacity),
      max_queued_(max_queued == 0 ? std::max<size_t>(8 * capacity_, 64)
                                  : max_queued) {}

ThreadPool::~ThreadPool() {
  // Move the worker handles out under the lock, then join without it:
  // joining while holding mu_ would deadlock with workers blocked on the
  // condition variable (and the analysis rightly wants workers_ accessed
  // under its guard).
  std::vector<std::thread> workers;
  {
    util::MutexLock lock(&mu_);
    stop_ = true;
    workers = std::move(workers_);
  }
  cv_.SignalAll();
  for (std::thread& w : workers) w.join();
}

size_t ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("STACCATO_THREADS")) {
    // Accept only a plain positive integer in a sane range; strtoul would
    // happily wrap "-1" to ULONG_MAX and size the pool at 2^64 workers.
    constexpr unsigned long kMaxPool = 1024;
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (env[0] >= '0' && env[0] <= '9' && end != env && *end == '\0' &&
        v > 0 && v <= kMaxPool) {
      return static_cast<size_t>(v);
    }
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    ThreadPool* p = new ThreadPool();  // never destroyed: outlives
    // Callback gauge is safe exactly because this pool is leaked — a
    // pool that can be destroyed would leave a dangling callback in the
    // process-global registry, so only Shared() registers one.
    telemetry::MetricsRegistry::Global().GetCallbackGauge(
        "staccato_pool_queue_depth",
        [p]() { return static_cast<int64_t>(p->queue_depth()); });
    return p;
  }();
  return *pool;  // static-teardown-ordered users (tests, benches)
}

bool ThreadPool::OnWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::Submit(std::function<void()> task) {
  if (!TryEnqueue(task)) {
    // Full queue: degrade to inline execution. The caller's thread does
    // the work itself rather than buffering unbounded backlog.
    task();
  }
}

bool ThreadPool::TryEnqueue(std::function<void()> task) {
  {
    util::MutexLock lock(&mu_);
    if (queue_.size() - queue_head_ >= max_queued_) {
      saturation_rejects_.fetch_add(1, std::memory_order_relaxed);
      static telemetry::Counter* rejects =
          telemetry::MetricsRegistry::Global().GetCounter(
              "staccato_pool_saturation_rejects_total");
      rejects->Increment();
      return false;
    }
    if (!started_) {
      started_ = true;
      workers_.reserve(capacity_);
      for (size_t i = 0; i < capacity_; ++i) {
        workers_.emplace_back([this] { WorkerLoop(); });
      }
    }
    queue_.push_back(std::move(task));
  }
  cv_.Signal();
  return true;
}

size_t ThreadPool::queue_depth() const {
  util::MutexLock lock(&mu_);
  return queue_.size() - queue_head_;
}

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      util::MutexLock lock(&mu_);
      while (!stop_ && queue_head_ >= queue_.size()) cv_.Wait();
      if (stop_) return;
      task = std::move(queue_[queue_head_++]);
      if (queue_head_ == queue_.size()) {
        queue_.clear();
        queue_head_ = 0;
      }
    }
    task();
  }
}

namespace {

/// Shared state of one ParallelFor region, stack-allocated by the caller.
/// Lifetime invariant: the caller blocks until every submitted helper has
/// finished (`active == 0`), so the state — and the borrowed `fn` — always
/// outlive the helpers. A helper dequeued after the caller drained every
/// chunk itself finds the cursor exhausted and exits without calling fn.
struct ForState {
  std::atomic<size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::atomic<size_t> active{0};  // helpers not yet finished
  util::Mutex mu;
  util::CondVar done{&mu};
  Status error GUARDED_BY(mu);  // first failure
  size_t n = 0;
  size_t grain = 1;
  // Valid while active. Called as fn(worker, i); the plain ParallelFor
  // wraps its index-only callback.
  const std::function<Status(size_t, size_t)>* fn = nullptr;

  void Drain(size_t worker) {
    while (!failed.load(std::memory_order_acquire)) {
      size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      size_t end = std::min(n, begin + grain);
      for (size_t i = begin; i < end; ++i) {
        Status st = (*fn)(worker, i);
        if (!st.ok()) {
          util::MutexLock lock(&mu);
          if (error.ok()) error = std::move(st);
          failed.store(true, std::memory_order_release);
          return;
        }
      }
    }
  }
};

}  // namespace

Status ParallelForWorker(size_t n, size_t grain,
                         const std::function<Status(size_t, size_t)>& fn,
                         ParallelOptions opts) {
  if (n == 0) return Status::OK();
  if (grain == 0) grain = 1;
  ThreadPool& pool = opts.pool != nullptr ? *opts.pool : ThreadPool::Shared();
  size_t threads = opts.threads == 0 ? pool.capacity() : opts.threads;
  const size_t chunks = (n + grain - 1) / grain;
  size_t workers = std::min(threads, chunks);
  // One worker — or a nested region issued from a pool thread, whose
  // helpers would queue behind (and possibly deadlock with) the very task
  // that is waiting on them — runs inline, in index order, as worker 0.
  if (workers <= 1 || pool.OnWorkerThread()) {
    for (size_t i = 0; i < n; ++i) STACCATO_RETURN_NOT_OK(fn(0, i));
    return Status::OK();
  }

  ForState state;
  state.n = n;
  state.grain = grain;
  state.fn = &fn;
  const size_t helpers = workers - 1;  // the caller is worker 0
  state.active.store(helpers, std::memory_order_relaxed);
  size_t submitted = 0;
  for (size_t h = 0; h < helpers; ++h) {
    const bool queued = pool.TryEnqueue([&state, h] {
      state.Drain(h + 1);
      util::MutexLock lock(&state.mu);
      if (state.active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        state.done.SignalAll();
      }
    });
    if (!queued) break;  // saturated pool: degrade to fewer helpers
    ++submitted;
  }
  if (submitted < helpers) {
    // Helpers that never enqueued will never Drain or decrement; the
    // caller still covers all the work itself via its own Drain below.
    state.active.fetch_sub(helpers - submitted, std::memory_order_acq_rel);
  }
  state.Drain(0);
  util::MutexLock lock(&state.mu);
  while (state.active.load(std::memory_order_acquire) != 0) {
    state.done.Wait();
  }
  return state.error;
}

Status ParallelFor(size_t n, size_t grain,
                   const std::function<Status(size_t)>& fn,
                   ParallelOptions opts) {
  return ParallelForWorker(
      n, grain, [&fn](size_t, size_t i) { return fn(i); }, opts);
}

}  // namespace staccato
