// The engine's one concurrency substrate: a lazily started, shared
// ThreadPool plus ParallelFor/ParallelMap helpers built on it.
//
// Every parallel stage in the system — Load-time Staccato construction,
// the executor's Fetch and Eval fan-out, and batched multi-query
// execution — schedules through this pool instead of spawning its own
// std::thread workers. Work is claimed from a shared atomic cursor in
// chunks of `grain` indices and results are written positionally, so the
// output of a parallel region is bit-identical to running it serially,
// for any thread count and any scheduling order.
//
// The calling thread always participates in the parallel region, so a
// ParallelFor makes progress even when every pool worker is busy; and a
// ParallelFor issued *from* a pool worker runs inline (serially) rather
// than blocking on tasks queued behind it, so nested parallel regions
// degrade gracefully instead of deadlocking.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/result.h"

namespace staccato {

/// \brief A lazily started pool of worker threads. Construction is cheap:
/// no thread is spawned until the first Submit.
///
/// The task queue is bounded (`max_queued`): a saturated pool makes
/// overload *visible* instead of buffering unbounded work. TryEnqueue
/// reports the rejection to the caller; Submit degrades by running the
/// task inline on the calling thread, so no work is ever dropped — it
/// just stops being parallel. The admission controller in rdbms/service
/// reads queue_depth()/saturation_rejects() to size its retry-after
/// hints.
class ThreadPool {
 public:
  /// `capacity` = number of workers; 0 = DefaultThreads().
  /// `max_queued` = pending-task cap; 0 = max(8 * capacity, 64).
  explicit ThreadPool(size_t capacity = 0, size_t max_queued = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t capacity() const { return capacity_; }
  size_t max_queued() const { return max_queued_; }

  /// Enqueues a task; worker threads are started on first use. If the
  /// queue is at max_queued(), runs the task inline on the calling
  /// thread instead (never blocks, never drops).
  void Submit(std::function<void()> task);

  /// Enqueues a task unless the queue is full. Returns false — without
  /// enqueuing or running anything — iff the pending-task queue is at
  /// max_queued(); the caller decides how to degrade (ParallelFor runs
  /// with fewer helpers; Submit falls back to inline execution).
  bool TryEnqueue(std::function<void()> task);

  /// Tasks enqueued but not yet claimed by a worker. A snapshot: stale
  /// by the time the caller reads it, good enough for load shedding.
  size_t queue_depth() const;

  /// Lifetime count of TryEnqueue calls rejected by a full queue — the
  /// pool's saturation signal.
  uint64_t saturation_rejects() const {
    return saturation_rejects_.load(std::memory_order_relaxed);
  }

  /// True iff the calling thread is one of *this* pool's workers.
  /// ParallelFor uses it to run nested regions inline.
  bool OnWorkerThread() const;

  /// The process-wide shared pool every execution stage defaults to.
  /// Sized by DefaultThreads() on first use.
  static ThreadPool& Shared();

  /// Pool-size knob: the STACCATO_THREADS environment variable when set to
  /// a positive integer, otherwise std::thread::hardware_concurrency
  /// (minimum 1).
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  const size_t capacity_;
  const size_t max_queued_;
  mutable util::Mutex mu_;
  util::CondVar cv_{&mu_};  // signalled on new work and on stop
  std::vector<std::function<void()>> queue_ GUARDED_BY(mu_);  // FIFO via head
  size_t queue_head_ GUARDED_BY(mu_) = 0;
  std::vector<std::thread> workers_ GUARDED_BY(mu_);  // spawned lazily
  bool started_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> saturation_rejects_{0};
};

/// \brief Scheduling knobs for ParallelFor / ParallelMap.
struct ParallelOptions {
  /// Worker cap for this region (including the calling thread).
  /// 0 = the pool's capacity. 1 = run serially inline.
  size_t threads = 0;
  /// Pool to schedule on; null = ThreadPool::Shared().
  ThreadPool* pool = nullptr;
};

/// Runs `fn(i)` for every i in [0, n). Indices are claimed from a shared
/// cursor in chunks of `grain` (0 is treated as 1); an empty range returns
/// OK without touching the pool, and a region that resolves to one worker
/// (threads == 1, or grain >= n) runs inline in index order. The first
/// non-OK status stops the region and is returned; which status wins under
/// concurrent failures is unspecified, but some failure is always
/// reported. `fn` must be safe to call concurrently from multiple threads
/// for distinct indices.
Status ParallelFor(size_t n, size_t grain,
                   const std::function<Status(size_t)>& fn,
                   ParallelOptions opts = {});

/// ParallelFor whose callback also receives a stable worker slot id:
/// `fn(worker, i)` with worker in [0, W) where W = min(resolved threads,
/// number of grain-chunks). The calling thread is always worker 0; pool
/// helpers take slots 1..W-1, and a region that runs inline (one worker,
/// or nested inside a pool task) uses slot 0 throughout. Within one
/// region no two concurrent calls share a slot, so the id can index
/// per-worker state owned by that region (e.g. a reusable EvalScratch
/// arena) without locking — the state must be per-call, though: every
/// region has its own worker 0, so slots of state shared across
/// concurrent regions would race. Semantics otherwise match ParallelFor,
/// including the positional-output discipline that keeps results
/// order-independent.
Status ParallelForWorker(size_t n, size_t grain,
                         const std::function<Status(size_t, size_t)>& fn,
                         ParallelOptions opts = {});

/// ParallelFor that gathers `fn(i)` into slot i of the result vector.
/// Positional gathering makes the output independent of scheduling.
template <typename T>
Result<std::vector<T>> ParallelMap(size_t n, size_t grain,
                                   const std::function<Result<T>(size_t)>& fn,
                                   ParallelOptions opts = {}) {
  std::vector<T> out(n);
  STACCATO_RETURN_NOT_OK(ParallelFor(
      n, grain,
      [&](size_t i) -> Status {
        STACCATO_ASSIGN_OR_RETURN(out[i], fn(i));
        return Status::OK();
      },
      opts));
  return out;
}

}  // namespace staccato
