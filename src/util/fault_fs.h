// Deterministic fault injection for the stdio file operations the storage
// layer depends on (WAL appends, heap-page write-back, blob flushes).
//
// Production code calls CheckedWrite/CheckedFlush/CheckedSync instead of
// bare fwrite/fflush/fsync. Each wrapper consults the process-global
// FaultInjector first: tests Install() rules that make the Nth matching
// operation fail (optionally as a *short* write that really leaves torn
// bytes on disk), then assert the failure surfaces as a Status instead of
// being swallowed. With no rules armed the wrappers are a single relaxed
// atomic load away from the bare calls.
#pragma once

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"

namespace staccato {
namespace util {

enum class FaultOp : uint8_t {
  kWrite = 0,  ///< fwrite via CheckedWrite
  kFlush = 1,  ///< fflush via CheckedFlush
  kSync = 2,   ///< fsync via CheckedSync
  kRead = 3,   ///< pread via CheckedPRead (blob/heap read paths)
};

/// \brief One injected failure: the `countdown`-th matching operation on a
/// path containing `path_substr` fails. `short_bytes` > 0 turns a kWrite
/// fault into a short write that actually persists that many prefix bytes
/// (a torn write, not a clean no-op). `sticky` keeps the rule armed so
/// every later match fails too (a dead disk rather than a glitch).
/// `probability` > 0 switches the rule to soak mode: every matching
/// operation fails independently with that probability (deterministic
/// seeded RNG; `countdown` is ignored and the rule stays installed until
/// Clear, like a flaky disk rather than a scripted glitch).
struct FaultRule {
  FaultOp op = FaultOp::kWrite;
  std::string path_substr;
  int countdown = 0;
  size_t short_bytes = 0;
  bool sticky = false;
  double probability = 0.0;
};

/// \brief Process-global registry of fault rules. Thread-safe; the armed
/// flag keeps the no-faults fast path lock-free.
class FaultInjector {
 public:
  static FaultInjector* Global();

  void Install(FaultRule rule);
  void Clear();

  /// Reseeds the RNG behind probabilistic rules, so a soak run is
  /// reproducible from its seed. Clear() does not reset the seed.
  void Seed(uint64_t seed);

  /// True if `op` on `path` should fail now. For short writes,
  /// `*short_bytes` receives how many bytes to persist before failing.
  bool ShouldFail(FaultOp op, const std::string& path, size_t* short_bytes);

 private:
  util::Mutex mu_;
  std::vector<FaultRule> rules_ GUARDED_BY(mu_);
  uint64_t rng_state_ GUARDED_BY(mu_) = 0x9e3779b97f4a7c15ull;
  std::atomic<bool> armed_{false};
};

/// \brief fwrite(data, 1, n, file) with fault injection; flushes before a
/// short-write fault so the torn prefix really reaches the file.
Status CheckedWrite(FILE* file, const void* data, size_t n,
                    const std::string& path);

/// \brief fflush(file) with fault injection.
Status CheckedFlush(FILE* file, const std::string& path);

/// \brief fflush + fsync(fileno(file)) with fault injection.
Status CheckedSync(FILE* file, const std::string& path);

/// \brief pread(fd, buf, n, offset) that retries EINTR and short reads and
/// fails unless all `n` bytes arrive, with fault injection (FaultOp::kRead)
/// consulted first. The concurrent-safe positioned read every storage read
/// path uses, so a kRead rule can hit blob and heap fetches alike.
Status CheckedPRead(int fd, void* buf, size_t n, uint64_t offset,
                    const std::string& path);

}  // namespace util
}  // namespace staccato
