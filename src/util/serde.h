// Binary serialization helpers: little-endian, length-prefixed, with
// bounds-checked reads. Used for SFA blobs, chunk-graph blobs, and the
// on-disk page format of the mini-RDBMS.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace staccato {

/// \brief Append-only binary encoder.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  /// Varint-encoded unsigned value (LEB128); compact for small counts.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      PutU8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    PutU8(static_cast<uint8_t>(v));
  }

  void PutString(const std::string& s) {
    PutVarint(s.size());
    PutRaw(s.data(), s.size());
  }

  void PutRaw(const void* data, size_t n) {
    const char* p = static_cast<const char*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  const std::string& buffer() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// \brief Bounds-checked binary decoder over a borrowed byte range.
class BinaryReader {
 public:
  BinaryReader(const void* data, size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}
  explicit BinaryReader(const std::string& s) : BinaryReader(s.data(), s.size()) {}

  Result<uint8_t> GetU8() {
    uint8_t v;
    STACCATO_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint32_t> GetU32() {
    uint32_t v;
    STACCATO_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint64_t> GetU64() {
    uint64_t v;
    STACCATO_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<int64_t> GetI64() {
    int64_t v;
    STACCATO_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<double> GetDouble() {
    double v;
    STACCATO_RETURN_NOT_OK(GetRaw(&v, sizeof(v)));
    return v;
  }

  Result<uint64_t> GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      STACCATO_ASSIGN_OR_RETURN(uint8_t byte, GetU8());
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
      if (shift >= 64) return Status::Corruption("varint too long");
    }
  }

  Result<std::string> GetString() {
    STACCATO_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
    if (n > remaining()) return Status::Corruption("string length out of bounds");
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

  /// Zero-copy flavour of GetString: the view borrows the underlying
  /// buffer, which must outlive it (SfaView decoding relies on this to
  /// keep labels as slices of the stored blob).
  Result<std::string_view> GetStringView() {
    STACCATO_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
    if (n > remaining()) return Status::Corruption("string length out of bounds");
    std::string_view s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

  Status GetRaw(void* out, size_t n) {
    if (n > remaining()) return Status::Corruption("read past end of buffer");
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace staccato
