#include "util/status.h"

namespace staccato {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace staccato
