#include "util/fault_fs.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace staccato {
namespace util {

FaultInjector* FaultInjector::Global() {
  static FaultInjector injector;
  return &injector;
}

void FaultInjector::Install(FaultRule rule) {
  util::MutexLock lock(&mu_);
  rules_.push_back(std::move(rule));
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Clear() {
  util::MutexLock lock(&mu_);
  rules_.clear();
  armed_.store(false, std::memory_order_release);
}

void FaultInjector::Seed(uint64_t seed) {
  util::MutexLock lock(&mu_);
  // Never let the splitmix state be 0 (it would stay 0 forever).
  rng_state_ = seed != 0 ? seed : 0x9e3779b97f4a7c15ull;
}

namespace {
/// splitmix64 step: the deterministic uniform draw behind probabilistic
/// rules. Cheap, seedable, and good enough for fault soaking.
uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

bool FaultInjector::ShouldFail(FaultOp op, const std::string& path,
                               size_t* short_bytes) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  util::MutexLock lock(&mu_);
  for (size_t i = 0; i < rules_.size(); ++i) {
    FaultRule& rule = rules_[i];
    if (rule.op != op) continue;
    if (!rule.path_substr.empty() &&
        path.find(rule.path_substr) == std::string::npos) {
      continue;
    }
    if (rule.probability > 0.0) {
      // Soak mode: an independent coin per matching operation; the rule
      // stays installed until Clear.
      const double draw = static_cast<double>(NextRand(&rng_state_) >> 11) *
                          (1.0 / 9007199254740992.0);  // [0, 1), 53 bits
      if (draw >= rule.probability) continue;
      if (short_bytes != nullptr) *short_bytes = rule.short_bytes;
      return true;
    }
    if (rule.countdown > 0) {
      --rule.countdown;
      continue;
    }
    if (short_bytes != nullptr) *short_bytes = rule.short_bytes;
    if (!rule.sticky) {
      rules_.erase(rules_.begin() + static_cast<ptrdiff_t>(i));
      if (rules_.empty()) armed_.store(false, std::memory_order_release);
    }
    return true;
  }
  return false;
}

Status CheckedWrite(FILE* file, const void* data, size_t n,
                    const std::string& path) {
  size_t short_bytes = 0;
  if (FaultInjector::Global()->ShouldFail(FaultOp::kWrite, path,
                                          &short_bytes)) {
    if (short_bytes > 0 && short_bytes < n) {
      // A torn write: persist the prefix so recovery tests see realistic
      // partially-written bytes, then report failure.
      if (fwrite(data, 1, short_bytes, file) == short_bytes) {
        (void)fflush(file);
      }
    }
    return Status::IOError("injected write fault: " + path);
  }
  if (n != 0 && fwrite(data, 1, n, file) != n) {
    return Status::IOError("short write: " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status CheckedFlush(FILE* file, const std::string& path) {
  if (FaultInjector::Global()->ShouldFail(FaultOp::kFlush, path, nullptr)) {
    return Status::IOError("injected flush fault: " + path);
  }
  if (fflush(file) != 0) {
    return Status::IOError("fflush failed: " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status CheckedPRead(int fd, void* buf, size_t n, uint64_t offset,
                    const std::string& path) {
  if (FaultInjector::Global()->ShouldFail(FaultOp::kRead, path, nullptr)) {
    return Status::IOError("injected read fault: " + path);
  }
  char* out = static_cast<char*>(buf);
  while (n > 0) {
    ssize_t r = pread(fd, out, n, static_cast<off_t>(offset));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread: " + path + ": " + std::strerror(errno));
    }
    if (r == 0) return Status::IOError("short read past end of " + path);
    out += r;
    offset += static_cast<uint64_t>(r);
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status CheckedSync(FILE* file, const std::string& path) {
  STACCATO_RETURN_NOT_OK(CheckedFlush(file, path));
  if (FaultInjector::Global()->ShouldFail(FaultOp::kSync, path, nullptr)) {
    return Status::IOError("injected sync fault: " + path);
  }
  if (fsync(fileno(file)) != 0) {
    return Status::IOError("fsync failed: " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace util
}  // namespace staccato
