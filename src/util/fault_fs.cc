#include "util/fault_fs.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace staccato {
namespace util {

FaultInjector* FaultInjector::Global() {
  static FaultInjector injector;
  return &injector;
}

void FaultInjector::Install(FaultRule rule) {
  util::MutexLock lock(&mu_);
  rules_.push_back(std::move(rule));
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Clear() {
  util::MutexLock lock(&mu_);
  rules_.clear();
  armed_.store(false, std::memory_order_release);
}

bool FaultInjector::ShouldFail(FaultOp op, const std::string& path,
                               size_t* short_bytes) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  util::MutexLock lock(&mu_);
  for (size_t i = 0; i < rules_.size(); ++i) {
    FaultRule& rule = rules_[i];
    if (rule.op != op) continue;
    if (!rule.path_substr.empty() &&
        path.find(rule.path_substr) == std::string::npos) {
      continue;
    }
    if (rule.countdown > 0) {
      --rule.countdown;
      continue;
    }
    if (short_bytes != nullptr) *short_bytes = rule.short_bytes;
    if (!rule.sticky) {
      rules_.erase(rules_.begin() + static_cast<ptrdiff_t>(i));
      if (rules_.empty()) armed_.store(false, std::memory_order_release);
    }
    return true;
  }
  return false;
}

Status CheckedWrite(FILE* file, const void* data, size_t n,
                    const std::string& path) {
  size_t short_bytes = 0;
  if (FaultInjector::Global()->ShouldFail(FaultOp::kWrite, path,
                                          &short_bytes)) {
    if (short_bytes > 0 && short_bytes < n) {
      // A torn write: persist the prefix so recovery tests see realistic
      // partially-written bytes, then report failure.
      if (fwrite(data, 1, short_bytes, file) == short_bytes) {
        (void)fflush(file);
      }
    }
    return Status::IOError("injected write fault: " + path);
  }
  if (n != 0 && fwrite(data, 1, n, file) != n) {
    return Status::IOError("short write: " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status CheckedFlush(FILE* file, const std::string& path) {
  if (FaultInjector::Global()->ShouldFail(FaultOp::kFlush, path, nullptr)) {
    return Status::IOError("injected flush fault: " + path);
  }
  if (fflush(file) != 0) {
    return Status::IOError("fflush failed: " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status CheckedSync(FILE* file, const std::string& path) {
  STACCATO_RETURN_NOT_OK(CheckedFlush(file, path));
  if (FaultInjector::Global()->ShouldFail(FaultOp::kSync, path, nullptr)) {
    return Status::IOError("injected sync fault: " + path);
  }
  if (fsync(fileno(file)) != 0) {
    return Status::IOError("fsync failed: " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace util
}  // namespace staccato
