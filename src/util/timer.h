// Wall-clock timing for the experiment harnesses.
#pragma once

#include <chrono>

namespace staccato {

/// \brief Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace staccato
