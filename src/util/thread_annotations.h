// Clang thread-safety-analysis annotations (the capability-attribute
// dialect used by Abseil/RocksDB). Under clang with -Wthread-safety these
// turn the repo's locking contracts — which mutex guards which field,
// which functions require or acquire which lock — into compile-time
// checks: deleting an annotation or touching a guarded field without its
// lock is a build break, not a TSan flake. Under GCC (and any compiler
// without the attributes) every macro expands to nothing, so annotated
// code stays portable.
//
// Conventions in this repo (see docs/ARCHITECTURE.md, "Locking discipline
// & static analysis"):
//   * Every mutex is a `staccato::util::Mutex` (util/mutex.h); the raw
//     standard-library primitives are allowed only inside util/ itself
//     (enforced by scripts/lint.sh).
//   * Fields a mutex protects carry GUARDED_BY(mu_); private helpers that
//     assume the lock is held carry REQUIRES(mu_).
//   * Functions that must NOT be called with a lock held (they take it
//     themselves) may carry EXCLUDES(mu_).
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define STACCATO_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define STACCATO_THREAD_ANNOTATION__(x)  // no-op
#endif

/// Marks a class as a lockable capability ("mutex").
#define CAPABILITY(x) STACCATO_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose lifetime holds a capability (MutexLock).
#define SCOPED_CAPABILITY STACCATO_THREAD_ANNOTATION__(scoped_lockable)

/// Field is protected by the given mutex.
#define GUARDED_BY(x) STACCATO_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given mutex.
#define PT_GUARDED_BY(x) STACCATO_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering declarations (documented, checked when both are held).
#define ACQUIRED_BEFORE(...) \
  STACCATO_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  STACCATO_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Caller must hold the given capability (exclusively / shared).
#define REQUIRES(...) \
  STACCATO_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  STACCATO_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define ACQUIRE(...) \
  STACCATO_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  STACCATO_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (held on entry).
#define RELEASE(...) \
  STACCATO_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  STACCATO_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) \
  STACCATO_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  STACCATO_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (function takes it itself).
#define EXCLUDES(...) STACCATO_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (AssertHeld).
#define ASSERT_CAPABILITY(x) STACCATO_THREAD_ANNOTATION__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  STACCATO_THREAD_ANNOTATION__(assert_shared_capability(x))

/// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) STACCATO_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the analysis cannot follow this function (e.g. lock
/// juggling through a runtime pointer). Use sparingly, with a comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  STACCATO_THREAD_ANNOTATION__(no_thread_safety_analysis)
