// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace staccato {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins strings with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// True if `hay` contains `needle` as a substring.
bool Contains(std::string_view hay, std::string_view needle);

/// Lower-cases ASCII.
std::string ToLowerAscii(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable byte count, e.g. "1.5 MB".
std::string HumanBytes(uint64_t bytes);

}  // namespace staccato
