// Deterministic pseudo-random utilities. All generators in this library are
// seeded explicitly so experiments are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace staccato {

/// \brief Seeded RNG wrapper with the sampling helpers the OCR simulator and
/// workload generators need.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    std::uniform_real_distribution<double> d(0.0, 1.0);
    return d(engine_);
  }

  /// Bernoulli trial.
  bool Coin(double p_true) { return UniformDouble() < p_true; }

  /// Gaussian sample.
  double Normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  size_t Categorical(const std::vector<double>& weights) {
    std::discrete_distribution<size_t> d(weights.begin(), weights.end());
    return d(engine_);
  }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    return v[static_cast<size_t>(UniformInt(0, static_cast<int64_t>(v.size()) - 1))];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace staccato
