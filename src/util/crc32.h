// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven. Used to frame
// WAL records and the checkpoint meta file; header-only so the storage
// layer picks it up without a new dependency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace staccato {
namespace util {

namespace detail {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace detail

/// \brief CRC-32 of `n` bytes starting at `data`.
inline uint32_t Crc32(const void* data, size_t n) {
  static const detail::Crc32Table table;
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table.entries[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

inline uint32_t Crc32(std::string_view s) { return Crc32(s.data(), s.size()); }

}  // namespace util
}  // namespace staccato
