// Annotated mutex primitives: thin wrappers over std::mutex /
// std::condition_variable carrying the Clang thread-safety attributes
// from util/thread_annotations.h. Every component outside util/ locks
// through these (scripts/lint.sh enforces it), so the compiler — not a
// sanitizer run — checks that guarded state is only touched under its
// lock.
//
// Usage:
//   util::Mutex mu_;
//   int value_ GUARDED_BY(mu_);
//   void Bump() { util::MutexLock lock(&mu_); ++value_; }
//
// Wrappers are deliberately minimal (LevelDB port lineage): no
// try-scoped-lock, no shared mutex — the engine has no reader-writer
// locking today, and a smaller surface keeps the annotations airtight.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace staccato::util {

class CondVar;

/// \brief An annotated exclusive mutex. Prefer MutexLock over manual
/// Lock/Unlock pairs; the scoped form is what the analysis tracks best.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Documents (to the analysis and the reader) that the caller holds
  /// this mutex on paths the analysis cannot follow. No runtime effect.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock over a Mutex; the scoped capability the analysis
/// understands natively.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Condition variable bound to one Mutex. Wait() must be called
/// with the mutex held (via MutexLock); it atomically releases the mutex
/// while blocked and reacquires it before returning, so from the
/// analysis's point of view the capability is held across the call —
/// which is exactly the invariant the caller's guarded accesses rely on.
/// Always Wait() in a predicate loop; wakeups may be spurious.
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}
  ~CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait() {
    // Adopt the already-held lock for the duration of the wait, then
    // release it back to the caller's MutexLock without unlocking.
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Wait() with a relative timeout. Returns false iff the wait ended by
  /// timing out (a normal or spurious wakeup returns true — re-test the
  /// predicate either way). The timeout is a duration, not a clock read:
  /// callers that enforce wall-clock deadlines compute the remaining
  /// budget themselves (rdbms/service.cc owns the deadline clock).
  bool WaitFor(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    const std::cv_status st = cv_.wait_for(lock, timeout);
    lock.release();
    return st == std::cv_status::no_timeout;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

}  // namespace staccato::util
