// Result<T>: value-or-Status, the Arrow idiom for fallible constructors
// and accessors.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace staccato {

/// \brief Holds either a value of type T or an error Status. Marked
/// [[nodiscard]] for the same reason as Status: a dropped Result hides
/// the failure *and* throws away the value that was paid for.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from value and from error Status keeps call sites
  // terse: `return 42;` or `return Status::InvalidArgument(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : status_;
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueUnsafe() && { return std::move(*value_); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `alt` if this holds an error.
  T ValueOr(T alt) const {
    return ok() ? *value_ : std::move(alt);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace staccato
