// Status: lightweight error propagation in the Arrow/RocksDB idiom.
// Public APIs in this library return Status (or Result<T>) instead of
// throwing exceptions across module boundaries.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace staccato {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIOError = 4,
  kCorruption = 5,
  kNotImplemented = 6,
  kOutOfRange = 7,
  kInternal = 8,
  kDeadlineExceeded = 9,
  kUnavailable = 10,
};

/// \brief Outcome of an operation: either OK or an error code plus message.
///
/// The OK state carries no allocation; error states allocate a small state
/// block. Statuses are cheap to move and to test for success.
///
/// [[nodiscard]]: a dropped Status is a latent corruption-swallowing bug
/// (a failed write-back or flush that nobody notices), so discarding one
/// is a compile error under -Werror. The rare genuinely best-effort call
/// (e.g. flush-on-destruct) must say so with an explicit `(void)` cast.
class [[nodiscard]] Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// A budgeted or cancelled query ran out of wall clock / work budget.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// Transient overload: the caller should back off and retry (the
  /// admission controller embeds a "retry-after-ms=N" hint in the message;
  /// see rdbms/service.h RetryAfterHintMs).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  Status(StatusCode code, std::string msg)
      : state_(std::make_shared<State>(State{code, std::move(msg)})) {}

  std::shared_ptr<State> state_;  // nullptr means OK
};

#define STACCATO_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::staccato::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (false)

#define STACCATO_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                   \
  if (!var.ok()) return var.status();                   \
  lhs = std::move(var).ValueUnsafe();

#define STACCATO_CONCAT_(a, b) a##b
#define STACCATO_CONCAT(a, b) STACCATO_CONCAT_(a, b)

#define STACCATO_ASSIGN_OR_RETURN(lhs, rexpr) \
  STACCATO_ASSIGN_OR_RETURN_IMPL(             \
      STACCATO_CONCAT(_result_, __LINE__), lhs, rexpr)

}  // namespace staccato
