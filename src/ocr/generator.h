// Synthetic OCR channel: converts a ground-truth ASCII line into the
// per-line SFA an OCR engine such as OCRopus would emit.
//
// The channel reproduces the statistical properties of real OCR output that
// the paper's experiments depend on:
//  * per-position uncertainty — each glyph has several weighted ASCII
//    readings (confusion classes from `confusion.h`);
//  * transcription errors — with probability `p_error` the most likely
//    reading is *not* the true character, so the MAP string loses answers;
//  * segmentation ambiguity — with probability `p_branch` a glyph is also
//    readable as a two-character split ('m' vs "rn"), which creates the
//    DAG branching that distinguishes SFAs from flat per-position models.
#pragma once

#include <string>

#include "sfa/sfa.h"
#include "util/random.h"
#include "util/result.h"

namespace staccato {

/// \brief Parameters of the synthetic OCR channel.
struct OcrNoiseModel {
  /// Probability that a position's MAP reading differs from the truth.
  double p_error = 0.05;
  /// Digits and punctuation are harder to OCR than letters (the paper's
  /// regex queries show much lower MAP recall than keywords); their error
  /// probability is p_error * digit_error_factor.
  double digit_error_factor = 3.0;
  /// Probability of a segmentation diamond at an eligible position.
  double p_branch = 0.10;
  /// Mean confidence of the winning reading (per-position confidence is
  /// sampled from a clamped normal around this mean).
  double confidence_mean = 0.70;
  double confidence_stddev = 0.12;
  /// Number of weighted readings per edge. OCRopus emits one arc per ASCII
  /// character (95); smaller values shrink the data without changing any
  /// code path.
  size_t alternatives = 12;
};

/// Converts one text line into an SFA under the noise model. The result is
/// stochastic (per-node outgoing mass sums to 1) and satisfies the
/// unique-path property by construction.
Result<Sfa> OcrLineToSfa(const std::string& line, const OcrNoiseModel& model,
                         Rng* rng);

}  // namespace staccato
