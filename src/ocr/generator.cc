#include "ocr/generator.h"

#include <algorithm>
#include <set>

#include "automata/pattern.h"
#include "ocr/confusion.h"

namespace staccato {

namespace {

// Builds the weighted reading list for one glyph: `truth` plus confusables
// plus random fill, `alternatives` distinct characters in total, with
// probabilities summing to `total_mass`. Characters in `exclude` are never
// used — branching nodes need disjoint label sets on their outgoing edges
// to preserve the unique-path property.
std::vector<Transition> GlyphReadings(char truth, double total_mass,
                                      const OcrNoiseModel& model, Rng* rng,
                                      const std::set<char>& exclude = {}) {
  std::vector<char> chars;
  std::set<char> used;
  auto push = [&](char c) {
    if (IsAlphabetChar(c) && !exclude.count(c) && used.insert(c).second) {
      chars.push_back(c);
    }
  };
  push(truth);
  for (char c : ConfusablesFor(truth)) push(c);
  for (int attempts = 0; chars.size() < model.alternatives && attempts < 1000;
       ++attempts) {
    push(IndexChar(static_cast<int>(rng->UniformInt(0, kAlphabetSize - 1))));
  }
  if (chars.size() > model.alternatives) chars.resize(model.alternatives);

  if (chars.size() == 1) {
    return {{std::string(1, chars[0]), total_mass}};
  }
  // Confidence of the winner; remaining mass decays geometrically.
  double conf = std::clamp(
      rng->Normal(model.confidence_mean, model.confidence_stddev), 0.40, 0.95);
  bool hard_glyph = !((truth >= 'a' && truth <= 'z') ||
                      (truth >= 'A' && truth <= 'Z') || truth == ' ');
  double p_err = std::min(0.9, model.p_error *
                                   (hard_glyph ? model.digit_error_factor : 1.0));
  bool flip = rng->Coin(p_err) && chars.size() > 1;
  if (flip) {
    // The channel misreads this glyph: a confusable becomes the argmax.
    std::swap(chars[0], chars[1]);
  }
  // Raw geometric weights, floored so deep tails never underflow to zero,
  // then normalized to exactly total_mass.
  std::vector<double> raw(chars.size());
  raw[0] = conf;
  double rest = 1.0 - conf;
  double decay = 0.55;
  double weight = rest * (1.0 - decay);
  double sum = conf;
  for (size_t i = 1; i < chars.size(); ++i) {
    raw[i] = weight + 1e-9;
    sum += raw[i];
    weight *= decay;
  }
  std::vector<Transition> out;
  out.reserve(chars.size());
  for (size_t i = 0; i < chars.size(); ++i) {
    out.push_back({std::string(1, chars[i]), raw[i] / sum * total_mass});
  }
  return out;
}

}  // namespace

Result<Sfa> OcrLineToSfa(const std::string& line, const OcrNoiseModel& model,
                         Rng* rng) {
  if (line.empty()) return Status::InvalidArgument("empty line");
  if (model.alternatives < 2 ||
      model.alternatives > static_cast<size_t>(kAlphabetSize)) {
    return Status::InvalidArgument("alternatives must be in [2, 95]");
  }
  for (char c : line) {
    if (!IsAlphabetChar(c)) {
      return Status::InvalidArgument("line contains non-printable character");
    }
  }
  SfaBuilder b;
  NodeId cur = b.AddNode();
  b.SetStart(cur);
  for (size_t i = 0; i < line.size(); ++i) {
    char truth = line[i];
    NodeId next = b.AddNode();
    std::string split = SegmentationSplit(truth);
    bool branch = !split.empty() && rng->Coin(model.p_branch);
    if (branch) {
      // Diamond: direct single-character reading with mass 0.6, two-edge
      // split reading with mass 0.4. The two outgoing edges of `cur` carry
      // disjoint character sets, so every emitted string identifies which
      // branch was taken — the unique-path property is preserved globally.
      std::vector<Transition> split_first =
          GlyphReadings(split[0], 0.4, model, rng, /*exclude=*/{truth});
      std::set<char> taken;
      for (const Transition& t : split_first) taken.insert(t.label[0]);
      std::vector<Transition> direct = GlyphReadings(truth, 0.6, model, rng,
                                                     /*exclude=*/taken);
      for (Transition& t : direct) {
        STACCATO_RETURN_NOT_OK(b.AddTransition(cur, next, std::move(t.label), t.prob));
      }
      NodeId mid = b.AddNode();
      for (Transition& t : split_first) {
        STACCATO_RETURN_NOT_OK(b.AddTransition(cur, mid, std::move(t.label), t.prob));
      }
      for (Transition& t : GlyphReadings(split[1], 1.0, model, rng)) {
        STACCATO_RETURN_NOT_OK(b.AddTransition(mid, next, std::move(t.label), t.prob));
      }
    } else {
      for (Transition& t : GlyphReadings(truth, 1.0, model, rng)) {
        STACCATO_RETURN_NOT_OK(b.AddTransition(cur, next, std::move(t.label), t.prob));
      }
    }
    cur = next;
  }
  b.SetFinal(cur);
  return b.Build(/*require_stochastic=*/true);
}

}  // namespace staccato
