#include "ocr/corpus.h"

#include <algorithm>

#include "util/random.h"
#include "util/strings.h"

namespace staccato {

namespace {

struct Vocabulary {
  std::vector<std::string> filler;
  // Each generator yields one special phrase; chosen uniformly when a
  // special is injected.
  std::vector<std::string (*)(Rng*)> specials;
};

std::string DigitString(Rng* rng, size_t n) {
  std::string s;
  for (size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>('0' + rng->UniformInt(0, 9)));
  }
  return s;
}

// --- Congress Acts specials -------------------------------------------------
std::string CaPresident(Rng*) { return "President"; }
std::string CaUnitedStates(Rng*) { return "United States"; }
std::string CaAttorney(Rng*) { return "Attorney"; }
std::string CaCommission(Rng*) { return "Commission"; }
std::string CaEmployment(Rng*) { return "employment"; }
std::string CaPublicLaw(Rng* rng) {
  // Matches 'Public Law (8|9)\d' when the leading digit is 8 or 9.
  int lead = rng->Coin(0.7) ? static_cast<int>(rng->UniformInt(8, 9))
                            : static_cast<int>(rng->UniformInt(1, 7));
  return StringPrintf("Public Law %d%d", lead,
                      static_cast<int>(rng->UniformInt(0, 9)));
}
std::string CaUsc(Rng* rng) {
  // Matches 'U.S.C. 2\d\d\d' when the section starts with 2.
  int lead = rng->Coin(0.6) ? 2 : static_cast<int>(rng->UniformInt(3, 9));
  return StringPrintf("U.S.C. %d%s", lead, DigitString(rng, 3).c_str());
}

// --- Literature specials ----------------------------------------------------
std::string LtBrinkmann(Rng*) { return "Brinkmann"; }
std::string LtHitler(Rng*) { return "Hitler"; }
std::string LtJonathan(Rng*) { return "Jonathan"; }
std::string LtKerouac(Rng*) { return "Kerouac"; }
std::string LtThirdReich(Rng*) { return "Third Reich"; }
std::string LtYearPair(Rng* rng) {
  // Matches '19\d\d, \d\d' (a year followed by a page reference).
  return StringPrintf("19%s, %s", DigitString(rng, 2).c_str(),
                      DigitString(rng, 2).c_str());
}
std::string LtSpontan(Rng* rng) {
  static const std::vector<std::string> forms = {"spontaneous", "spontaneity",
                                                 "spontaneously"};
  Rng& r = *rng;
  return forms[static_cast<size_t>(r.UniformInt(0, 2))];
}

// --- DB Papers specials -----------------------------------------------------
std::string DbAccuracy(Rng*) { return "accuracy"; }
std::string DbConfidence(Rng*) { return "confidence"; }
std::string DbDatabase(Rng*) { return "database"; }
std::string DbLineage(Rng*) { return "lineage"; }
std::string DbTrio(Rng*) { return "Trio"; }
std::string DbSection(Rng* rng) {
  // Matches 'Sec(\x)*\d'.
  return StringPrintf("Sec. %d", static_cast<int>(rng->UniformInt(1, 9)));
}
std::string DbCitation(Rng* rng) {
  // Feeds '\x\x\x\d\d' (any three characters then two digits).
  return StringPrintf("VLDB %s", DigitString(rng, 2).c_str());
}

const Vocabulary& VocabFor(DatasetKind kind) {
  static const Vocabulary ca = {
      {"act",        "amendment",  "section",   "congress",  "senate",
       "federal",    "provision",  "statute",   "enacted",   "hereby",
       "pursuant",   "regulation", "committee", "secretary", "title",
       "chapter",    "code",       "authorized","funds",     "fiscal",
       "national",   "security",   "defense",   "education", "labor",
       "welfare",    "amended",    "striking",  "inserting", "subsection",
       "paragraph",  "clause",     "report",    "agency",    "department",
       "appropriated","thereof",   "provided",  "further",   "general",
       "house",      "representatives", "approved", "session", "bill"},
      {CaPresident, CaUnitedStates, CaAttorney, CaCommission, CaEmployment,
       CaPublicLaw, CaUsc}};
  static const Vocabulary lt = {
      {"road",    "night",   "river",   "morning", "silent",  "window",
       "letters", "journey", "memory",  "winter",  "shadow",  "voice",
       "garden",  "city",    "dream",   "young",   "heart",   "light",
       "story",   "novel",   "poet",    "writing", "chapter", "spoke",
       "walked",  "quiet",   "distant", "evening", "summer",  "stranger",
       "house",   "early",   "letter",  "moment",  "country", "return",
       "thought", "remember","crossing","burning", "alone",   "friends"},
      {LtBrinkmann, LtHitler, LtJonathan, LtKerouac, LtThirdReich, LtYearPair,
       LtSpontan}};
  static const Vocabulary db = {
      {"query",      "relational", "tuple",     "index",      "join",
       "transaction","schema",     "optimizer", "storage",    "buffer",
       "page",       "lock",       "recovery",  "log",        "attribute",
       "relation",   "algebra",    "cost",      "plan",       "selectivity",
       "cardinality","probabilistic", "uncertain", "system",  "evaluation",
       "semantics",  "model",      "table",     "result",     "experiment",
       "approach",   "baseline",   "workload",  "throughput", "latency",
       "benchmark",  "algorithm",  "efficient", "scalable",   "prototype"},
      {DbAccuracy, DbConfidence, DbDatabase, DbLineage, DbTrio, DbSection,
       DbCitation}};
  switch (kind) {
    case DatasetKind::kCongressActs:
      return ca;
    case DatasetKind::kLiterature:
      return lt;
    case DatasetKind::kDbPapers:
      return db;
  }
  return ca;
}

}  // namespace

const char* DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kCongressActs:
      return "CA";
    case DatasetKind::kLiterature:
      return "LT";
    case DatasetKind::kDbPapers:
      return "DB";
  }
  return "??";
}

Corpus GenerateCorpus(const CorpusSpec& spec) {
  Corpus corpus;
  corpus.name = DatasetName(spec.kind);
  corpus.num_pages = spec.num_pages;
  Rng rng(spec.seed);
  const Vocabulary& vocab = VocabFor(spec.kind);
  for (size_t page = 0; page < spec.num_pages; ++page) {
    for (size_t li = 0; li < spec.lines_per_page; ++li) {
      std::string line;
      size_t words = static_cast<size_t>(
          rng.UniformInt(5, 5 + static_cast<int64_t>(spec.max_line_chars) / 6));
      for (size_t w = 0; w < words; ++w) {
        std::string word;
        if (rng.Coin(0.16)) {
          word = vocab.specials[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(vocab.specials.size()) - 1))](&rng);
        } else {
          word = rng.Choice(vocab.filler);
        }
        if (!line.empty()) line.push_back(' ');
        line += word;
        if (line.size() >= spec.max_line_chars) break;
      }
      // Sentence-case the line, as printed text would be.
      if (!line.empty() && line[0] >= 'a' && line[0] <= 'z') {
        line[0] = static_cast<char>(line[0] - 'a' + 'A');
      }
      corpus.lines.push_back(std::move(line));
      corpus.page_of_line.push_back(static_cast<uint32_t>(page));
    }
  }
  return corpus;
}

size_t OcrDataset::TotalSfaBytes() const {
  size_t n = 0;
  for (const Sfa& s : sfas) n += s.SizeBytes();
  return n;
}

size_t OcrDataset::TotalTextBytes() const {
  size_t n = 0;
  for (const std::string& l : corpus.lines) n += l.size() + 1;
  return n;
}

Result<OcrDataset> GenerateOcrDataset(const CorpusSpec& spec,
                                      const OcrNoiseModel& model) {
  OcrDataset ds;
  ds.corpus = GenerateCorpus(spec);
  Rng rng(spec.seed ^ 0x9e3779b97f4a7c15ULL);
  ds.sfas.reserve(ds.corpus.lines.size());
  for (const std::string& line : ds.corpus.lines) {
    STACCATO_ASSIGN_OR_RETURN(Sfa sfa, OcrLineToSfa(line, model, &rng));
    ds.sfas.push_back(std::move(sfa));
  }
  return ds;
}

std::vector<std::string> DatasetQueries(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kCongressActs:
      return {"Attorney",      "Commission", "employment",
              "President",     "United States",
              "Public Law (8|9)\\d", "U.S.C. 2\\d\\d\\d"};
    case DatasetKind::kLiterature:
      return {"Brinkmann", "Hitler",   "Jonathan", "Kerouac",
              "Third Reich", "19\\d\\d, \\d\\d", "spontan(\\x)*"};
    case DatasetKind::kDbPapers:
      return {"accuracy", "confidence", "database", "lineage",
              "Trio",     "Sec(\\x)*\\d", "\\x\\x\\x\\d\\d"};
  }
  return {};
}

}  // namespace staccato
