// The character confusion model behind the synthetic OCR channel.
// Encodes the classic OCR confusion classes (o↔0, l↔1↔I, 5↔S, rn↔m, ...)
// that make MAP transcriptions lose query answers — exactly the effect
// Figure 1 of the paper illustrates with 'Ford' → 'F0 rd'.
#pragma once

#include <string>
#include <vector>

namespace staccato {

/// Characters visually confusable with `c`, most-confusable first.
/// Always returns at least one alternative within the printable alphabet.
const std::vector<char>& ConfusablesFor(char c);

/// Two-character segmentation splits: e.g. 'm' may be read as "rn".
/// Returns the split digram, or an empty string if `c` has none.
std::string SegmentationSplit(char c);

}  // namespace staccato
