#include "ocr/confusion.h"

#include <unordered_map>

namespace staccato {

namespace {

const std::unordered_map<char, std::vector<char>>& ConfusionTable() {
  static const auto* table = new std::unordered_map<char, std::vector<char>>{
      {'o', {'0', 'c', 'e', 'a'}},  {'O', {'0', 'Q', 'D', 'C'}},
      {'0', {'o', 'O', '8', '6'}},  {'l', {'1', 'I', '|', 'i'}},
      {'1', {'l', 'I', '7', 'i'}},  {'I', {'l', '1', 'i', 'T'}},
      {'i', {'1', 'l', 'j', ';'}},  {'5', {'S', 's', '6', '3'}},
      {'S', {'5', 's', '8', 'B'}},  {'s', {'5', 'S', 'a', 'z'}},
      {'8', {'B', '3', '0', '6'}},  {'B', {'8', 'E', 'R', 'D'}},
      {'2', {'Z', 'z', '7', '?'}},  {'Z', {'2', 'z', '7', 'S'}},
      {'6', {'b', 'G', '5', '0'}},  {'b', {'6', 'h', 'd', 'p'}},
      {'9', {'g', 'q', '4', '7'}},  {'g', {'9', 'q', 'y', 'e'}},
      {'q', {'g', '9', 'p', 'y'}},  {'3', {'8', 'B', 'E', '5'}},
      {'4', {'A', '9', '1', 'd'}},  {'7', {'1', 'T', '2', '?'}},
      {'e', {'c', 'o', 'a', '6'}},  {'c', {'e', 'o', 'G', '('}},
      {'a', {'o', 'e', 's', 'd'}},  {'n', {'r', 'm', 'h', 'u'}},
      {'r', {'n', 'v', 't', 'f'}},  {'m', {'n', 'w', 'r', 'M'}},
      {'u', {'v', 'n', 'o', 'w'}},  {'v', {'u', 'y', 'w', 'r'}},
      {'w', {'v', 'u', 'm', 'W'}},  {'t', {'f', 'l', '1', '+'}},
      {'f', {'t', 'r', '{', 'F'}},  {'h', {'b', 'n', 'k', 'H'}},
      {'d', {'b', 'a', 'o', 'q'}},  {'y', {'v', 'g', 'j', 'q'}},  {'j', {'i', 'y', ';', 'J'}},
      {'k', {'h', 'x', 'K', 'R'}},  {'x', {'k', 'z', 'X', '%'}},
      {'z', {'s', '2', 'Z', 'x'}},  {'p', {'q', 'b', 'P', 'n'}},
      {'P', {'F', 'R', 'p', 'B'}},  {'F', {'P', 'E', 'T', 'f'}},
      {'T', {'I', '7', 'F', 'Y'}},  {'E', {'F', 'B', '8', 'L'}},
      {'C', {'G', 'O', 'c', '('}},  {'G', {'C', '6', 'O', 'Q'}},
      {'D', {'O', 'B', '0', 'P'}},  {'U', {'V', 'O', 'u', 'J'}},
      {'.', {',', '\'', ':', ';'}}, {',', {'.', ';', '\'', '`'}},
      {' ', {'.', ',', '\'', '-'}}, {'-', {'_', '=', '~', ' '}},
      {'\'', {'`', ',', '.', '"'}},
  };
  return *table;
}

const std::unordered_map<char, std::string>& SplitTable() {
  static const auto* table = new std::unordered_map<char, std::string>{
      {'m', "rn"}, {'w', "vv"}, {'u', "ii"}, {'n', "ri"},
      {'d', "cl"}, {'h', "li"}, {'M', "IV"}, {'W', "VV"},
  };
  return *table;
}

}  // namespace

const std::vector<char>& ConfusablesFor(char c) {
  const auto& table = ConfusionTable();
  auto it = table.find(c);
  if (it != table.end()) return it->second;
  // Letters without an entry confuse with their case twin and neighbors.
  static auto* fb = new std::unordered_map<char, std::vector<char>>();
  auto fit = fb->find(c);
  if (fit != fb->end()) return fit->second;
  std::vector<char> alts;
  if (c >= 'a' && c <= 'z') {
    alts = {static_cast<char>(c - 'a' + 'A'),
            static_cast<char>(c == 'z' ? 'a' : c + 1),
            static_cast<char>(c == 'a' ? 'z' : c - 1)};
  } else if (c >= 'A' && c <= 'Z') {
    alts = {static_cast<char>(c - 'A' + 'a'),
            static_cast<char>(c == 'Z' ? 'A' : c + 1),
            static_cast<char>(c == 'A' ? 'Z' : c - 1)};
  } else if (c >= '0' && c <= '9') {
    alts = {static_cast<char>(c == '9' ? '0' : c + 1),
            static_cast<char>(c == '0' ? '9' : c - 1), 'o'};
  } else {
    alts = {'.', ',', '\''};
  }
  return fb->emplace(c, std::move(alts)).first->second;
}

std::string SegmentationSplit(char c) {
  const auto& table = SplitTable();
  auto it = table.find(c);
  return it == table.end() ? std::string() : it->second;
}

}  // namespace staccato
