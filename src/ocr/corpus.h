// Synthetic corpora styled after the paper's three datasets (Table 2):
// Congress Acts (CA), English Literature (LT), and Database Papers (DB).
// Each corpus is a set of "pages" of ground-truth text lines whose
// vocabulary contains the query targets of Table 6 (President, Public Law,
// U.S.C. codes, Brinkmann, Kerouac, Trio, lineage, ...) at controlled
// frequencies, so every experiment query has a non-trivial ground truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ocr/generator.h"
#include "sfa/sfa.h"
#include "util/result.h"

namespace staccato {

enum class DatasetKind {
  kCongressActs,  // "CA"
  kLiterature,    // "LT"
  kDbPapers,      // "DB"
};

const char* DatasetName(DatasetKind kind);

/// \brief Shape of a generated corpus.
struct CorpusSpec {
  DatasetKind kind = DatasetKind::kCongressActs;
  size_t num_pages = 8;
  size_t lines_per_page = 42;
  /// Approximate line length in characters (scanned-book lines are long;
  /// short lines make the Staccato chunks trivially small).
  size_t max_line_chars = 60;
  uint64_t seed = 42;
};

/// \brief Ground-truth text corpus; one SFA will be produced per line.
struct Corpus {
  std::string name;
  std::vector<std::string> lines;
  std::vector<uint32_t> page_of_line;  // parallel to lines
  size_t num_pages = 0;
};

Corpus GenerateCorpus(const CorpusSpec& spec);

/// \brief A corpus pushed through the OCR channel: per-line SFAs plus truth.
struct OcrDataset {
  Corpus corpus;
  std::vector<Sfa> sfas;  // parallel to corpus.lines

  size_t TotalSfaBytes() const;
  size_t TotalTextBytes() const;
};

/// Generates the corpus and runs every line through the OCR channel.
Result<OcrDataset> GenerateOcrDataset(const CorpusSpec& spec,
                                      const OcrNoiseModel& model);

/// The seven benchmark queries of Table 6 for a dataset (keywords first,
/// then regexes), e.g. CA1='Attorney' ... CA7='U.S.C. 2\d\d\d'.
std::vector<std::string> DatasetQueries(DatasetKind kind);

}  // namespace staccato
