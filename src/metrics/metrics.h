// Answer-quality metrics (Section 5): queries return a ranked set of
// documents (SFAs) with match probabilities; we take the top `NumAns`
// answers and score them against a ground-truth answer set with
// precision / recall / F1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

namespace staccato {

using DocId = uint64_t;

/// \brief One retrieved answer: a document and its match probability.
struct Answer {
  DocId doc = 0;
  double prob = 0.0;
};

/// \brief Precision/recall/F1 triple.
struct QualityScores {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Sorts answers by descending probability (ties by doc id), drops
/// zero-probability entries, and keeps at most `num_ans`.
std::vector<Answer> RankAnswers(std::vector<Answer> answers, size_t num_ans);

/// Scores a ranked answer list against the ground-truth set.
/// Precision = |retrieved ∩ truth| / |retrieved| (1.0 if nothing retrieved
/// and truth empty, 0.0 if nothing retrieved but truth non-empty);
/// Recall = |retrieved ∩ truth| / |truth| (1.0 when truth is empty).
QualityScores ScoreAnswers(const std::vector<Answer>& ranked,
                           const std::set<DocId>& truth);

}  // namespace staccato
