#include "metrics/metrics.h"

#include <algorithm>

namespace staccato {

std::vector<Answer> RankAnswers(std::vector<Answer> answers, size_t num_ans) {
  answers.erase(std::remove_if(answers.begin(), answers.end(),
                               [](const Answer& a) { return a.prob <= 0.0; }),
                answers.end());
  std::sort(answers.begin(), answers.end(), [](const Answer& a, const Answer& b) {
    if (a.prob != b.prob) return a.prob > b.prob;
    return a.doc < b.doc;
  });
  if (answers.size() > num_ans) answers.resize(num_ans);
  return answers;
}

QualityScores ScoreAnswers(const std::vector<Answer>& ranked,
                           const std::set<DocId>& truth) {
  size_t hits = 0;
  for (const Answer& a : ranked) {
    if (truth.count(a.doc)) ++hits;
  }
  QualityScores q;
  if (ranked.empty()) {
    q.precision = truth.empty() ? 1.0 : 0.0;
  } else {
    q.precision = static_cast<double>(hits) / static_cast<double>(ranked.size());
  }
  q.recall = truth.empty()
                 ? 1.0
                 : static_cast<double>(hits) / static_cast<double>(truth.size());
  q.f1 = (q.precision + q.recall) > 0.0
             ? 2.0 * q.precision * q.recall / (q.precision + q.recall)
             : 0.0;
  return q;
}

}  // namespace staccato
