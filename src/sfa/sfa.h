// The Stochastic Finite Automaton (SFA) data model of Kumar & Ré,
// "Probabilistic Management of OCR Data using an RDBMS" (VLDB 2011).
//
// An SFA is a DAG with a unique start and final node. Each edge carries a
// set of labeled transitions; a label is a non-empty string over the ASCII
// alphabet and has a probability conditioned on the source node. A
// source-to-sink labeled path emits the concatenation of its labels with
// probability equal to the product of its transition probabilities.
//
// This is the *generalized* SFA of Section 3.1 (labels in Σ+ rather than Σ),
// which subsumes the raw per-character model produced by OCR and is closed
// under the Staccato Collapse operation.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/serde.h"
#include "util/status.h"

namespace staccato {

using NodeId = uint32_t;
using EdgeId = uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// \brief One labeled alternative on an edge: emit `label` with conditional
/// probability `prob` when leaving the edge's source node.
struct Transition {
  std::string label;
  double prob = 0.0;

  bool operator==(const Transition& o) const {
    return label == o.label && prob == o.prob;
  }
};

/// \brief A directed edge bundling all transitions between one node pair.
/// Transitions are kept sorted by descending probability (ties by label) so
/// the MAP alternative is always front().
struct Edge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  std::vector<Transition> transitions;
};

/// \brief Immutable SFA. Construct through SfaBuilder.
class Sfa {
 public:
  Sfa() = default;

  size_t NumNodes() const { return num_nodes_; }
  size_t NumEdges() const { return edges_.size(); }
  NodeId start() const { return start_; }
  NodeId final() const { return final_; }

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  const std::vector<Edge>& edges() const { return edges_; }
  const std::vector<EdgeId>& OutEdges(NodeId n) const { return out_[n]; }
  const std::vector<EdgeId>& InEdges(NodeId n) const { return in_[n]; }

  /// Total number of labeled transitions across all edges.
  size_t NumTransitions() const;

  /// Nodes in a topological order (start first, final last).
  const std::vector<NodeId>& TopologicalOrder() const { return topo_; }

  /// Position of each node in TopologicalOrder(); usable as a partial order.
  const std::vector<uint32_t>& TopoIndex() const { return topo_index_; }

  /// Total probability mass over all source-to-sink labeled paths, computed
  /// by the sum-product DP. Equals 1.0 for a stochastic SFA; may be < 1
  /// after approximation prunes strings.
  double TotalMass() const;

  /// Structural sanity checks: DAG with the stored topo order, unique
  /// start/final, every node on some start→final path, probabilities in
  /// (0, 1], non-empty labels. If `require_stochastic`, additionally checks
  /// each non-final node's outgoing mass sums to 1 (±1e-6).
  Status Validate(bool require_stochastic = false) const;

  /// Exhaustively enumerates emitted strings (up to `max_paths`) and checks
  /// the unique-path property: no string is emitted by two distinct labeled
  /// paths. Intended for tests; cost is linear in the number of paths.
  /// Returns InvalidArgument naming a duplicated string on violation, or
  /// OutOfRange if the SFA has more than `max_paths` paths.
  Status CheckUniquePaths(size_t max_paths = 1 << 20) const;

  /// Enumerates all emitted (string, probability) pairs; test/debug helper.
  /// Fails with OutOfRange if there are more than `max_paths` paths.
  Result<std::vector<std::pair<std::string, double>>> EnumerateStrings(
      size_t max_paths = 1 << 20) const;

  /// Approximate in-memory footprint in bytes (labels + per-transition
  /// metadata), mirroring the accounting of Table 1 in the paper.
  size_t SizeBytes() const;

  /// Binary blob encoding (the FullSFA BLOB stored in the RDBMS).
  std::string Serialize() const;
  static Result<Sfa> Deserialize(const std::string& blob);

 private:
  friend class SfaBuilder;

  Status ComputeTopologicalOrder();

  size_t num_nodes_ = 0;
  NodeId start_ = kInvalidNode;
  NodeId final_ = kInvalidNode;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
  std::vector<NodeId> topo_;
  std::vector<uint32_t> topo_index_;
};

/// \brief Mutable construction interface for SFAs.
///
/// Usage:
///   SfaBuilder b;
///   NodeId s = b.AddNode(); ... b.AddTransition(s, t, "F", 0.8);
///   b.SetStart(s); b.SetFinal(f);
///   STACCATO_ASSIGN_OR_RETURN(Sfa sfa, b.Build());
class SfaBuilder {
 public:
  NodeId AddNode();
  /// Adds `count` nodes, returning the id of the first.
  NodeId AddNodes(size_t count);

  /// Adds one labeled alternative between `from` and `to`; transitions for
  /// the same node pair accumulate on a single edge.
  Status AddTransition(NodeId from, NodeId to, std::string label, double prob);

  void SetStart(NodeId n) { start_ = n; }
  void SetFinal(NodeId n) { final_ = n; }

  size_t NumNodes() const { return num_nodes_; }

  /// Validates and freezes into an immutable Sfa. If `require_stochastic`,
  /// insists outgoing probabilities sum to 1 per node.
  Result<Sfa> Build(bool require_stochastic = false);

 private:
  struct PendingEdge {
    NodeId from, to;
    std::vector<Transition> transitions;
  };

  size_t num_nodes_ = 0;
  NodeId start_ = kInvalidNode;
  NodeId final_ = kInvalidNode;
  std::vector<PendingEdge> pending_;
  // (from << 32 | to) -> index into pending_.
  std::unordered_map<uint64_t, size_t> edge_index_;
};

/// Builds the simple chain SFA used by the Table-1 cost model: `length`
/// single-character positions, each with `alternatives` equally weighted
/// candidate labels. Useful for tests and the cost-model bench.
Result<Sfa> MakeChainSfa(size_t length, size_t alternatives);

/// \brief One labeled alternative as seen by SfaView: the label is a slice
/// of the decoded blob, not an owned string.
struct ViewTransition {
  std::string_view label;
  double prob = 0.0;
};

/// \brief One edge as seen by SfaView: a [first, first+count) range into
/// the arena's flat transition array.
struct ViewEdge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  uint32_t first_transition = 0;
  uint32_t num_transitions = 0;
};

/// \brief Reusable backing storage for SfaView decoding. All buffers are
/// plain vectors that grow to the largest blob seen and are then reused, so
/// decoding candidate number N+1 performs no heap allocation once the arena
/// is warm — the point of the view path. One arena serves one worker; it is
/// not synchronized.
struct SfaViewArena {
  std::vector<ViewEdge> edges;
  std::vector<ViewTransition> transitions;
  std::vector<uint32_t> out_offsets;  ///< CSR offsets, num_nodes + 1 entries
  std::vector<EdgeId> out_edges;      ///< CSR payload, edge ids ascending
  std::vector<NodeId> topo;           ///< Kahn order (also the work queue)
  std::vector<uint32_t> indegree;     ///< decode scratch
  std::vector<uint32_t> out_cursor;   ///< decode scratch
};

/// \brief Flat, allocation-free decoding of a serialized SFA blob.
///
/// Where Sfa::Deserialize rebuilds the full object graph (SfaBuilder,
/// per-edge transition vectors, owned label strings, hash-map edge
/// dedup), SfaView decodes the same wire format into flat arrays borrowed
/// from a caller-owned SfaViewArena: labels stay string_views into the
/// blob, edges and transitions are index ranges, and adjacency is CSR.
/// The view borrows both the blob and the arena; both must outlive it.
///
/// Structural guarantees match what the DFA×SFA dynamic program needs and
/// what Sfa::Deserialize produces for engine-written blobs: edge order is
/// wire order, per-node out-edges ascend by edge id, transitions keep wire
/// order (the engine serializes them already sorted), and the topological
/// order is computed by the identical Kahn FIFO — so evaluating through a
/// view is bit-identical to evaluating the deserialized Sfa. Validation is
/// the subset that protects the evaluator (ids in range, non-empty labels,
/// probabilities in (0,1], acyclicity); full path-reachability checking
/// remains Sfa::Validate's job.
class SfaView {
 public:
  /// Decodes `blob` into `arena`'s buffers and points this view at them.
  /// Returns Corruption on malformed input; the arena contents are
  /// unspecified after a failure (the next Decode resets them).
  Status Decode(std::string_view blob, SfaViewArena* arena);

  size_t NumNodes() const { return num_nodes_; }
  size_t NumEdges() const { return arena_->edges.size(); }
  size_t NumTransitions() const { return arena_->transitions.size(); }
  NodeId start() const { return start_; }
  NodeId final() const { return final_; }

  const ViewEdge& edge(EdgeId e) const { return arena_->edges[e]; }
  const ViewTransition& transition(uint32_t t) const {
    return arena_->transitions[t];
  }
  /// Out-edge ids of `n`, ascending — same order as Sfa::OutEdges.
  const EdgeId* out_begin(NodeId n) const {
    return arena_->out_edges.data() + arena_->out_offsets[n];
  }
  const EdgeId* out_end(NodeId n) const {
    return arena_->out_edges.data() + arena_->out_offsets[n + 1];
  }
  /// Nodes in topological order (identical to Sfa::TopologicalOrder()).
  const std::vector<NodeId>& TopologicalOrder() const { return arena_->topo; }

  /// Σ label lengths over all transitions; with the DFA state count this
  /// prices a full evaluation (the steps_total of EvalBound).
  uint64_t TotalLabelChars() const { return total_label_chars_; }

  /// True iff every node's outgoing transition probabilities sum to at most
  /// 1 (+ε). This is the precondition for the live-mass upper bound of the
  /// early-terminating evaluator: mass can then never amplify downstream,
  /// so accepted + pending mass bounds the final probability. Engine-built
  /// SFAs (stochastic, or approximations that only drop mass) satisfy it.
  bool MassBoundSafe() const { return mass_bound_safe_; }

 private:
  size_t num_nodes_ = 0;
  NodeId start_ = kInvalidNode;
  NodeId final_ = kInvalidNode;
  uint64_t total_label_chars_ = 0;
  bool mass_bound_safe_ = false;
  const SfaViewArena* arena_ = nullptr;
};

}  // namespace staccato
