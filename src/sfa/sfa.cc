#include "sfa/sfa.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.h"

namespace staccato {

namespace {

void SortTransitions(std::vector<Transition>* ts) {
  std::sort(ts->begin(), ts->end(), [](const Transition& a, const Transition& b) {
    if (a.prob != b.prob) return a.prob > b.prob;
    return a.label < b.label;
  });
}

}  // namespace

size_t Sfa::NumTransitions() const {
  size_t n = 0;
  for (const Edge& e : edges_) n += e.transitions.size();
  return n;
}

double Sfa::TotalMass() const {
  if (num_nodes_ == 0) return 0.0;
  std::vector<double> mass(num_nodes_, 0.0);
  mass[start_] = 1.0;
  for (NodeId n : topo_) {
    if (mass[n] == 0.0) continue;
    for (EdgeId eid : out_[n]) {
      const Edge& e = edges_[eid];
      double p = 0.0;
      for (const Transition& t : e.transitions) p += t.prob;
      mass[e.to] += mass[n] * p;
    }
  }
  return mass[final_];
}

Status Sfa::ComputeTopologicalOrder() {
  topo_.clear();
  topo_.reserve(num_nodes_);
  std::vector<uint32_t> indegree(num_nodes_, 0);
  for (const Edge& e : edges_) ++indegree[e.to];
  std::deque<NodeId> frontier;
  for (NodeId n = 0; n < num_nodes_; ++n) {
    if (indegree[n] == 0) frontier.push_back(n);
  }
  while (!frontier.empty()) {
    NodeId n = frontier.front();
    frontier.pop_front();
    topo_.push_back(n);
    for (EdgeId eid : out_[n]) {
      if (--indegree[edges_[eid].to] == 0) frontier.push_back(edges_[eid].to);
    }
  }
  if (topo_.size() != num_nodes_) {
    return Status::InvalidArgument("SFA graph contains a cycle");
  }
  topo_index_.assign(num_nodes_, 0);
  for (uint32_t i = 0; i < topo_.size(); ++i) topo_index_[topo_[i]] = i;
  return Status::OK();
}

Status Sfa::Validate(bool require_stochastic) const {
  if (num_nodes_ == 0) return Status::InvalidArgument("SFA has no nodes");
  if (start_ >= num_nodes_) return Status::InvalidArgument("invalid start node");
  if (final_ >= num_nodes_) return Status::InvalidArgument("invalid final node");
  if (start_ == final_ && num_nodes_ > 1) {
    return Status::InvalidArgument("start equals final in multi-node SFA");
  }
  for (const Edge& e : edges_) {
    if (e.from >= num_nodes_ || e.to >= num_nodes_) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (e.transitions.empty()) {
      return Status::InvalidArgument("edge with no transitions");
    }
    for (const Transition& t : e.transitions) {
      if (t.label.empty()) return Status::InvalidArgument("empty transition label");
      if (!(t.prob > 0.0) || t.prob > 1.0 + 1e-9) {
        return Status::InvalidArgument(
            StringPrintf("transition probability %f out of (0,1]", t.prob));
      }
    }
  }
  // Reachability from start, and co-reachability to final.
  std::vector<bool> fwd(num_nodes_, false), bwd(num_nodes_, false);
  fwd[start_] = true;
  for (NodeId n : topo_) {
    if (!fwd[n]) continue;
    for (EdgeId eid : out_[n]) fwd[edges_[eid].to] = true;
  }
  bwd[final_] = true;
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    if (!bwd[*it]) continue;
    for (EdgeId eid : in_[*it]) bwd[edges_[eid].from] = true;
  }
  for (NodeId n = 0; n < num_nodes_; ++n) {
    if (!fwd[n] || !bwd[n]) {
      return Status::InvalidArgument(
          StringPrintf("node %u not on a start-to-final path", n));
    }
  }
  if (!out_[final_].empty()) {
    return Status::InvalidArgument("final node has outgoing edges");
  }
  if (!in_[start_].empty()) {
    return Status::InvalidArgument("start node has incoming edges");
  }
  if (require_stochastic) {
    for (NodeId n = 0; n < num_nodes_; ++n) {
      if (n == final_) continue;
      double sum = 0.0;
      for (EdgeId eid : out_[n]) {
        for (const Transition& t : edges_[eid].transitions) sum += t.prob;
      }
      if (std::fabs(sum - 1.0) > 1e-6) {
        return Status::InvalidArgument(StringPrintf(
            "node %u outgoing probability sums to %f, expected 1", n, sum));
      }
    }
  }
  return Status::OK();
}

Result<std::vector<std::pair<std::string, double>>> Sfa::EnumerateStrings(
    size_t max_paths) const {
  std::vector<std::pair<std::string, double>> out;
  // DFS over partial paths; path count is bounded by max_paths.
  struct Frame {
    NodeId node;
    std::string prefix;
    double prob;
  };
  std::vector<Frame> stack;
  stack.push_back({start_, "", 1.0});
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    if (f.node == final_) {
      out.emplace_back(std::move(f.prefix), f.prob);
      if (out.size() > max_paths) {
        return Status::OutOfRange("SFA has more paths than max_paths");
      }
      continue;
    }
    for (EdgeId eid : out_[f.node]) {
      const Edge& e = edges_[eid];
      for (const Transition& t : e.transitions) {
        stack.push_back({e.to, f.prefix + t.label, f.prob * t.prob});
        if (stack.size() > 4 * max_paths) {
          return Status::OutOfRange("SFA path expansion exceeds max_paths");
        }
      }
    }
  }
  return out;
}

Status Sfa::CheckUniquePaths(size_t max_paths) const {
  auto strings = EnumerateStrings(max_paths);
  if (!strings.ok()) return strings.status();
  std::unordered_set<std::string> seen;
  for (const auto& [s, p] : *strings) {
    if (!seen.insert(s).second) {
      return Status::InvalidArgument("string emitted by two paths: '" + s + "'");
    }
  }
  return Status::OK();
}

size_t Sfa::SizeBytes() const {
  // Mirrors the Table-1 accounting: label bytes plus 16 bytes of metadata
  // (ids, location, probability) per stored transition.
  size_t bytes = 0;
  for (const Edge& e : edges_) {
    for (const Transition& t : e.transitions) {
      bytes += t.label.size() + 16;
    }
  }
  return bytes;
}

namespace {
constexpr uint32_t kSfaMagic = 0x53464131;  // "SFA1"
}

std::string Sfa::Serialize() const {
  BinaryWriter w;
  w.PutU32(kSfaMagic);
  w.PutVarint(num_nodes_);
  w.PutVarint(start_);
  w.PutVarint(final_);
  w.PutVarint(edges_.size());
  for (const Edge& e : edges_) {
    w.PutVarint(e.from);
    w.PutVarint(e.to);
    w.PutVarint(e.transitions.size());
    for (const Transition& t : e.transitions) {
      w.PutString(t.label);
      w.PutDouble(t.prob);
    }
  }
  return w.Release();
}

Result<Sfa> Sfa::Deserialize(const std::string& blob) {
  BinaryReader r(blob);
  STACCATO_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kSfaMagic) return Status::Corruption("bad SFA magic");
  SfaBuilder b;
  STACCATO_ASSIGN_OR_RETURN(uint64_t num_nodes, r.GetVarint());
  // Every node except the start must have at least one incident edge (each
  // at least a few bytes), so a node count far beyond the blob size is
  // corruption — reject before allocating.
  if (num_nodes > blob.size() + 2) {
    return Status::Corruption("node count exceeds plausible blob capacity");
  }
  b.AddNodes(num_nodes);
  STACCATO_ASSIGN_OR_RETURN(uint64_t start, r.GetVarint());
  STACCATO_ASSIGN_OR_RETURN(uint64_t final, r.GetVarint());
  b.SetStart(static_cast<NodeId>(start));
  b.SetFinal(static_cast<NodeId>(final));
  STACCATO_ASSIGN_OR_RETURN(uint64_t num_edges, r.GetVarint());
  for (uint64_t i = 0; i < num_edges; ++i) {
    STACCATO_ASSIGN_OR_RETURN(uint64_t from, r.GetVarint());
    STACCATO_ASSIGN_OR_RETURN(uint64_t to, r.GetVarint());
    STACCATO_ASSIGN_OR_RETURN(uint64_t nt, r.GetVarint());
    for (uint64_t j = 0; j < nt; ++j) {
      STACCATO_ASSIGN_OR_RETURN(std::string label, r.GetString());
      STACCATO_ASSIGN_OR_RETURN(double prob, r.GetDouble());
      STACCATO_RETURN_NOT_OK(b.AddTransition(static_cast<NodeId>(from),
                                             static_cast<NodeId>(to),
                                             std::move(label), prob));
    }
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after SFA blob");
  return b.Build();
}

Status SfaView::Decode(std::string_view blob, SfaViewArena* arena) {
  BinaryReader r(blob.data(), blob.size());
  STACCATO_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kSfaMagic) return Status::Corruption("bad SFA magic");
  STACCATO_ASSIGN_OR_RETURN(uint64_t num_nodes, r.GetVarint());
  // Same plausibility guard as Sfa::Deserialize: reject before allocating.
  if (num_nodes > blob.size() + 2) {
    return Status::Corruption("node count exceeds plausible blob capacity");
  }
  if (num_nodes == 0) return Status::Corruption("SFA has no nodes");
  STACCATO_ASSIGN_OR_RETURN(uint64_t start, r.GetVarint());
  STACCATO_ASSIGN_OR_RETURN(uint64_t final, r.GetVarint());
  if (start >= num_nodes || final >= num_nodes) {
    return Status::Corruption("start/final node out of range");
  }
  STACCATO_ASSIGN_OR_RETURN(uint64_t num_edges, r.GetVarint());
  if (num_edges > blob.size()) {
    return Status::Corruption("edge count exceeds plausible blob capacity");
  }

  arena->edges.clear();
  arena->transitions.clear();
  arena->indegree.assign(num_nodes, 0);
  // out_offsets doubles as the out-degree histogram during the first pass.
  arena->out_offsets.assign(num_nodes + 1, 0);
  total_label_chars_ = 0;
  for (uint64_t i = 0; i < num_edges; ++i) {
    STACCATO_ASSIGN_OR_RETURN(uint64_t from, r.GetVarint());
    STACCATO_ASSIGN_OR_RETURN(uint64_t to, r.GetVarint());
    if (from >= num_nodes || to >= num_nodes) {
      return Status::Corruption("edge endpoint out of range");
    }
    STACCATO_ASSIGN_OR_RETURN(uint64_t nt, r.GetVarint());
    if (nt == 0) return Status::Corruption("edge with no transitions");
    if (nt > r.remaining()) {
      return Status::Corruption("transition count exceeds blob capacity");
    }
    ViewEdge e;
    e.from = static_cast<NodeId>(from);
    e.to = static_cast<NodeId>(to);
    e.first_transition = static_cast<uint32_t>(arena->transitions.size());
    e.num_transitions = static_cast<uint32_t>(nt);
    for (uint64_t j = 0; j < nt; ++j) {
      STACCATO_ASSIGN_OR_RETURN(std::string_view label, r.GetStringView());
      STACCATO_ASSIGN_OR_RETURN(double prob, r.GetDouble());
      if (label.empty()) return Status::Corruption("empty transition label");
      if (!(prob > 0.0) || prob > 1.0 + 1e-9) {
        return Status::Corruption("transition probability out of (0,1]");
      }
      arena->transitions.push_back({label, prob});
      total_label_chars_ += label.size();
    }
    arena->edges.push_back(e);
    ++arena->out_offsets[from + 1];
    ++arena->indegree[to];
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after SFA blob");

  // CSR adjacency: prefix-sum the histogram, then fill slots in edge-id
  // order so each node's out-list ascends by edge id (matching Sfa::Build).
  for (size_t n = 0; n < num_nodes; ++n) {
    arena->out_offsets[n + 1] += arena->out_offsets[n];
  }
  arena->out_cursor.assign(arena->out_offsets.begin(),
                           arena->out_offsets.end() - 1);
  arena->out_edges.resize(arena->edges.size());
  for (EdgeId e = 0; e < arena->edges.size(); ++e) {
    arena->out_edges[arena->out_cursor[arena->edges[e].from]++] = e;
  }
  // The evaluator skips the final node outright (it scores its mass at the
  // end), which is only sound if the final node has no out-edges — the
  // same invariant Sfa::Validate enforces on the deserialization path.
  if (arena->out_offsets[final + 1] != arena->out_offsets[final]) {
    return Status::Corruption("final node has outgoing edges");
  }

  // Mass-bound safety: no node's outgoing probabilities may sum above 1.
  // CSR is ready, so walk nodes and sum their out-transitions directly.
  mass_bound_safe_ = true;
  for (size_t n = 0; n < num_nodes && mass_bound_safe_; ++n) {
    double sum = 0.0;
    for (uint32_t k = arena->out_offsets[n]; k < arena->out_offsets[n + 1];
         ++k) {
      const ViewEdge& e = arena->edges[arena->out_edges[k]];
      for (uint32_t t = 0; t < e.num_transitions; ++t) {
        sum += arena->transitions[e.first_transition + t].prob;
      }
    }
    if (sum > 1.0 + 1e-6) mass_bound_safe_ = false;
  }

  // Topological order by the exact Kahn FIFO Sfa uses: seed with zero
  // indegree nodes in ascending id, pop from the front, append new zeros.
  // `topo` is both the queue and the result; `head` is the queue front.
  arena->topo.clear();
  for (NodeId n = 0; n < num_nodes; ++n) {
    if (arena->indegree[n] == 0) arena->topo.push_back(n);
  }
  for (size_t head = 0; head < arena->topo.size(); ++head) {
    NodeId n = arena->topo[head];
    for (const EdgeId* e = arena->out_edges.data() + arena->out_offsets[n];
         e != arena->out_edges.data() + arena->out_offsets[n + 1]; ++e) {
      if (--arena->indegree[arena->edges[*e].to] == 0) {
        arena->topo.push_back(arena->edges[*e].to);
      }
    }
  }
  if (arena->topo.size() != num_nodes) {
    return Status::Corruption("SFA graph contains a cycle");
  }

  num_nodes_ = num_nodes;
  start_ = static_cast<NodeId>(start);
  final_ = static_cast<NodeId>(final);
  arena_ = arena;
  return Status::OK();
}

NodeId SfaBuilder::AddNode() { return static_cast<NodeId>(num_nodes_++); }

NodeId SfaBuilder::AddNodes(size_t count) {
  NodeId first = static_cast<NodeId>(num_nodes_);
  num_nodes_ += count;
  return first;
}

Status SfaBuilder::AddTransition(NodeId from, NodeId to, std::string label,
                                 double prob) {
  if (from >= num_nodes_ || to >= num_nodes_) {
    return Status::InvalidArgument("AddTransition: node id out of range");
  }
  if (label.empty()) {
    return Status::InvalidArgument("AddTransition: empty label");
  }
  uint64_t key = (static_cast<uint64_t>(from) << 32) | to;
  auto it = edge_index_.find(key);
  if (it != edge_index_.end()) {
    pending_[it->second].transitions.push_back({std::move(label), prob});
    return Status::OK();
  }
  pending_.push_back({from, to, {{std::move(label), prob}}});
  edge_index_.emplace(key, pending_.size() - 1);
  return Status::OK();
}

Result<Sfa> SfaBuilder::Build(bool require_stochastic) {
  if (start_ == kInvalidNode || final_ == kInvalidNode) {
    return Status::InvalidArgument("start/final node not set");
  }
  Sfa sfa;
  sfa.num_nodes_ = num_nodes_;
  sfa.start_ = start_;
  sfa.final_ = final_;
  sfa.edges_.reserve(pending_.size());
  for (auto& pe : pending_) {
    SortTransitions(&pe.transitions);
    sfa.edges_.push_back(Edge{pe.from, pe.to, std::move(pe.transitions)});
  }
  sfa.out_.assign(num_nodes_, {});
  sfa.in_.assign(num_nodes_, {});
  for (EdgeId i = 0; i < sfa.edges_.size(); ++i) {
    sfa.out_[sfa.edges_[i].from].push_back(i);
    sfa.in_[sfa.edges_[i].to].push_back(i);
  }
  STACCATO_RETURN_NOT_OK(sfa.ComputeTopologicalOrder());
  STACCATO_RETURN_NOT_OK(sfa.Validate(require_stochastic));
  return sfa;
}

Result<Sfa> MakeChainSfa(size_t length, size_t alternatives) {
  if (length == 0 || alternatives == 0 || alternatives > 52) {
    return Status::InvalidArgument("MakeChainSfa: bad parameters");
  }
  SfaBuilder b;
  NodeId first = b.AddNodes(length + 1);
  double p = 1.0 / static_cast<double>(alternatives);
  for (size_t i = 0; i < length; ++i) {
    for (size_t a = 0; a < alternatives; ++a) {
      char c = a < 26 ? static_cast<char>('a' + a) : static_cast<char>('A' + a - 26);
      STACCATO_RETURN_NOT_OK(b.AddTransition(
          static_cast<NodeId>(first + i), static_cast<NodeId>(first + i + 1),
          std::string(1, c), p));
    }
  }
  b.SetStart(first);
  b.SetFinal(static_cast<NodeId>(first + length));
  return b.Build(/*require_stochastic=*/true);
}

}  // namespace staccato
