#include "staccato/chunking.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

#include "inference/kbest.h"
#include "util/strings.h"

namespace staccato {

namespace {

// ---------------------------------------------------------------------------
// Mutable stable-id graph used by the greedy loop. Node ids never change
// across collapses, which is what makes the candidate cache sound.
// ---------------------------------------------------------------------------
struct MGraph {
  struct MEdge {
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    std::vector<Transition> trans;
    bool alive = false;
  };

  std::vector<MEdge> edges;
  std::vector<std::vector<EdgeId>> out, in;  // may reference dead edges
  std::vector<bool> node_alive;
  NodeId start = kInvalidNode;
  NodeId final = kInvalidNode;
  size_t alive_edges = 0;

  static MGraph FromSfa(const Sfa& sfa, size_t k) {
    MGraph g;
    g.start = sfa.start();
    g.final = sfa.final();
    g.node_alive.assign(sfa.NumNodes(), true);
    g.out.assign(sfa.NumNodes(), {});
    g.in.assign(sfa.NumNodes(), {});
    for (const Edge& e : sfa.edges()) {
      MEdge me;
      me.from = e.from;
      me.to = e.to;
      me.trans = e.transitions;  // already sorted by descending probability
      if (me.trans.size() > k) me.trans.resize(k);
      me.alive = true;
      EdgeId id = static_cast<EdgeId>(g.edges.size());
      g.edges.push_back(std::move(me));
      g.out[e.from].push_back(id);
      g.in[e.to].push_back(id);
      ++g.alive_edges;
    }
    return g;
  }

  EdgeId AddEdge(NodeId from, NodeId to, std::vector<Transition> trans) {
    MEdge me;
    me.from = from;
    me.to = to;
    me.trans = std::move(trans);
    me.alive = true;
    EdgeId id = static_cast<EdgeId>(edges.size());
    edges.push_back(std::move(me));
    out[from].push_back(id);
    in[to].push_back(id);
    ++alive_edges;
    return id;
  }

  void KillEdge(EdgeId id) {
    if (edges[id].alive) {
      edges[id].alive = false;
      --alive_edges;
    }
  }

  Result<Sfa> ToSfa() const {
    std::vector<NodeId> remap(node_alive.size(), kInvalidNode);
    SfaBuilder b;
    for (NodeId n = 0; n < node_alive.size(); ++n) {
      if (node_alive[n]) remap[n] = b.AddNode();
    }
    b.SetStart(remap[start]);
    b.SetFinal(remap[final]);
    for (const MEdge& e : edges) {
      if (!e.alive) continue;
      for (const Transition& t : e.trans) {
        STACCATO_RETURN_NOT_OK(
            b.AddTransition(remap[e.from], remap[e.to], t.label, t.prob));
      }
    }
    return b.Build();
  }
};

// ---------------------------------------------------------------------------
// Graph adapters so FindMinSFA runs identically on Sfa and MGraph.
// ---------------------------------------------------------------------------
struct SfaNodeGraph {
  const Sfa& sfa;
  size_t NumNodes() const { return sfa.NumNodes(); }
  bool Alive(NodeId) const { return true; }
  NodeId Start() const { return sfa.start(); }
  NodeId Final() const { return sfa.final(); }
  template <typename F>
  void ForOut(NodeId n, F&& f) const {
    for (EdgeId e : sfa.OutEdges(n)) f(sfa.edge(e).to);
  }
  template <typename F>
  void ForIn(NodeId n, F&& f) const {
    for (EdgeId e : sfa.InEdges(n)) f(sfa.edge(e).from);
  }
};

struct MGraphView {
  const MGraph& g;
  size_t NumNodes() const { return g.node_alive.size(); }
  bool Alive(NodeId n) const { return g.node_alive[n]; }
  NodeId Start() const { return g.start; }
  NodeId Final() const { return g.final; }
  template <typename F>
  void ForOut(NodeId n, F&& f) const {
    for (EdgeId e : g.out[n]) {
      if (g.edges[e].alive) f(g.edges[e].to);
    }
  }
  template <typename F>
  void ForIn(NodeId n, F&& f) const {
    for (EdgeId e : g.in[n]) {
      if (g.edges[e].alive) f(g.edges[e].from);
    }
  }
};

// Forward/backward reachable sets (inclusive of seeds).
template <typename View>
std::vector<bool> Descendants(const View& v, const std::set<NodeId>& seeds) {
  std::vector<bool> vis(v.NumNodes(), false);
  std::deque<NodeId> q(seeds.begin(), seeds.end());
  for (NodeId n : q) vis[n] = true;
  while (!q.empty()) {
    NodeId n = q.front();
    q.pop_front();
    v.ForOut(n, [&](NodeId t) {
      if (!vis[t]) {
        vis[t] = true;
        q.push_back(t);
      }
    });
  }
  return vis;
}

template <typename View>
std::vector<bool> Ancestors(const View& v, const std::set<NodeId>& seeds) {
  std::vector<bool> vis(v.NumNodes(), false);
  std::deque<NodeId> q(seeds.begin(), seeds.end());
  for (NodeId n : q) vis[n] = true;
  while (!q.empty()) {
    NodeId n = q.front();
    q.pop_front();
    v.ForIn(n, [&](NodeId t) {
      if (!vis[t]) {
        vis[t] = true;
        q.push_back(t);
      }
    });
  }
  return vis;
}

// Topological index over alive nodes (Kahn). Dead nodes get UINT32_MAX.
template <typename View>
std::vector<uint32_t> TopoIndex(const View& v) {
  std::vector<uint32_t> idx(v.NumNodes(), UINT32_MAX);
  std::vector<uint32_t> indeg(v.NumNodes(), 0);
  for (NodeId n = 0; n < v.NumNodes(); ++n) {
    if (!v.Alive(n)) continue;
    v.ForOut(n, [&](NodeId t) { ++indeg[t]; });
  }
  std::deque<NodeId> q;
  for (NodeId n = 0; n < v.NumNodes(); ++n) {
    if (v.Alive(n) && indeg[n] == 0) q.push_back(n);
  }
  uint32_t next = 0;
  while (!q.empty()) {
    NodeId n = q.front();
    q.pop_front();
    idx[n] = next++;
    v.ForOut(n, [&](NodeId t) {
      if (--indeg[t] == 0) q.push_back(t);
    });
  }
  return idx;
}

// The core of Algorithm 1, parameterized over the graph representation.
template <typename View>
Result<MinSfaResult> FindMinSfaImpl(const View& v, std::set<NodeId> x) {
  if (x.empty()) return Status::InvalidArgument("FindMinSFA: empty seed");
  for (NodeId n : x) {
    if (n >= v.NumNodes() || !v.Alive(n)) {
      return Status::InvalidArgument("FindMinSFA: seed node invalid");
    }
  }
  std::vector<uint32_t> topo = TopoIndex(v);
  // Each pass strictly grows x or returns, so the loop is bounded.
  for (size_t guard = 0; guard <= 2 * v.NumNodes() + 2; ++guard) {
    // (a) Betweenness closure: include every node lying on a path between
    // two members of x; this keeps the induced subgraph connected.
    {
      std::vector<bool> desc = Descendants(v, x);
      std::vector<bool> anc = Ancestors(v, x);
      bool grew = false;
      for (NodeId n = 0; n < v.NumNodes(); ++n) {
        if (desc[n] && anc[n] && v.Alive(n) && !x.count(n)) {
          x.insert(n);
          grew = true;
        }
      }
      if (grew) continue;
    }
    // (b) Unique entry / exit nodes within x.
    std::vector<NodeId> mins, maxs;
    for (NodeId n : x) {
      bool has_in_from_x = false, has_out_to_x = false;
      v.ForIn(n, [&](NodeId p) { has_in_from_x |= x.count(p) > 0; });
      v.ForOut(n, [&](NodeId s) { has_out_to_x |= x.count(s) > 0; });
      if (!has_in_from_x) mins.push_back(n);
      if (!has_out_to_x) maxs.push_back(n);
    }
    if (mins.size() != 1) {
      // No unique start: add the least common ancestor (the nearest node
      // from which every minimal element is reachable).
      std::vector<bool> common(v.NumNodes(), true);
      for (NodeId n : mins) {
        std::vector<bool> anc = Ancestors(v, {n});
        for (NodeId i = 0; i < v.NumNodes(); ++i) {
          common[i] = common[i] && anc[i];
        }
      }
      NodeId lca = kInvalidNode;
      for (NodeId i = 0; i < v.NumNodes(); ++i) {
        if (!common[i] || !v.Alive(i) || x.count(i)) continue;
        if (lca == kInvalidNode || topo[i] > topo[lca]) lca = i;
      }
      if (lca == kInvalidNode) {
        return Status::Internal("FindMinSFA: no common ancestor found");
      }
      x.insert(lca);
      continue;
    }
    if (maxs.size() != 1) {
      // No unique end: add the greatest common descendant.
      std::vector<bool> common(v.NumNodes(), true);
      for (NodeId n : maxs) {
        std::vector<bool> desc = Descendants(v, {n});
        for (NodeId i = 0; i < v.NumNodes(); ++i) {
          common[i] = common[i] && desc[i];
        }
      }
      NodeId gcd = kInvalidNode;
      for (NodeId i = 0; i < v.NumNodes(); ++i) {
        if (!common[i] || !v.Alive(i) || x.count(i)) continue;
        if (gcd == kInvalidNode || topo[i] < topo[gcd]) gcd = i;
      }
      if (gcd == kInvalidNode) {
        return Status::Internal("FindMinSFA: no common descendant found");
      }
      x.insert(gcd);
      continue;
    }
    NodeId s = mins[0];
    NodeId f = maxs[0];
    if (s == f) {
      return Status::InvalidArgument("FindMinSFA: degenerate single-node chunk");
    }
    // (c) Interior nodes must have no edges crossing the chunk boundary.
    bool grew = false;
    for (NodeId n : std::vector<NodeId>(x.begin(), x.end())) {
      if (n == s || n == f) continue;
      v.ForIn(n, [&](NodeId p) {
        if (!x.count(p)) {
          x.insert(p);
          grew = true;
        }
      });
      v.ForOut(n, [&](NodeId t) {
        if (!x.count(t)) {
          x.insert(t);
          grew = true;
        }
      });
    }
    if (grew) continue;
    MinSfaResult r;
    r.nodes = std::move(x);
    r.start = s;
    r.final = f;
    return r;
  }
  return Status::Internal("FindMinSFA did not converge");
}

// Builds the induced sub-SFA of a chunk from an MGraph and returns its
// top-k strings plus its total conditional mass.
struct ChunkSummary {
  std::vector<Transition> top_k;  // top-k strings of the chunk, as transitions
  double total_mass = 0.0;        // conditional mass of all chunk paths
  double kept_mass = 0.0;         // conditional mass of the retained top-k
};

Result<ChunkSummary> SummarizeChunk(const MGraph& g, const MinSfaResult& chunk,
                                    size_t k) {
  SfaBuilder b;
  std::map<NodeId, NodeId> remap;
  for (NodeId n : chunk.nodes) remap[n] = b.AddNode();
  b.SetStart(remap[chunk.start]);
  b.SetFinal(remap[chunk.final]);
  for (const auto& e : g.edges) {
    if (!e.alive) continue;
    if (!chunk.nodes.count(e.from) || !chunk.nodes.count(e.to)) continue;
    for (const Transition& t : e.trans) {
      STACCATO_RETURN_NOT_OK(
          b.AddTransition(remap[e.from], remap[e.to], t.label, t.prob));
    }
  }
  STACCATO_ASSIGN_OR_RETURN(Sfa sub, b.Build());
  ChunkSummary out;
  out.total_mass = sub.TotalMass();
  std::vector<ScoredString> best = KBestStrings(sub, k);
  out.top_k.reserve(best.size());
  for (ScoredString& s : best) {
    out.kept_mass += s.prob;
    out.top_k.push_back({std::move(s.str), s.prob});
  }
  return out;
}

// Start→node and node→final path masses, used to weight a chunk's local
// probability loss into a global retained-mass loss.
void ComputeFlow(const MGraph& g, std::vector<double>* fwd,
                 std::vector<double>* bwd) {
  MGraphView v{g};
  std::vector<uint32_t> topo = TopoIndex(v);
  std::vector<NodeId> order;
  for (NodeId n = 0; n < g.node_alive.size(); ++n) {
    if (g.node_alive[n]) order.push_back(n);
  }
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return topo[a] < topo[b]; });
  fwd->assign(g.node_alive.size(), 0.0);
  bwd->assign(g.node_alive.size(), 0.0);
  (*fwd)[g.start] = 1.0;
  for (NodeId n : order) {
    for (EdgeId eid : g.out[n]) {
      const auto& e = g.edges[eid];
      if (!e.alive) continue;
      double p = 0.0;
      for (const Transition& t : e.trans) p += t.prob;
      (*fwd)[e.to] += (*fwd)[n] * p;
    }
  }
  (*bwd)[g.final] = 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    for (EdgeId eid : g.in[*it]) {
      const auto& e = g.edges[eid];
      if (!e.alive) continue;
      double p = 0.0;
      for (const Transition& t : e.trans) p += t.prob;
      (*bwd)[e.from] += (*bwd)[*it] * p;
    }
  }
}

std::string ChunkKey(const std::set<NodeId>& nodes) {
  std::string key;
  key.reserve(nodes.size() * 4);
  for (NodeId n : nodes) {
    key.append(reinterpret_cast<const char*>(&n), sizeof(n));
  }
  return key;
}

}  // namespace

Result<MinSfaResult> FindMinSfa(const Sfa& sfa, const std::set<NodeId>& seed) {
  return FindMinSfaImpl(SfaNodeGraph{sfa}, seed);
}

Result<Sfa> ExtractChunk(const Sfa& sfa, const MinSfaResult& chunk) {
  SfaBuilder b;
  std::map<NodeId, NodeId> remap;
  for (NodeId n : chunk.nodes) remap[n] = b.AddNode();
  b.SetStart(remap[chunk.start]);
  b.SetFinal(remap[chunk.final]);
  for (const Edge& e : sfa.edges()) {
    if (!chunk.nodes.count(e.from) || !chunk.nodes.count(e.to)) continue;
    for (const Transition& t : e.transitions) {
      STACCATO_RETURN_NOT_OK(
          b.AddTransition(remap[e.from], remap[e.to], t.label, t.prob));
    }
  }
  return b.Build();
}

Result<Sfa> CollapseChunk(const Sfa& sfa, const MinSfaResult& chunk, size_t k) {
  STACCATO_ASSIGN_OR_RETURN(Sfa sub, ExtractChunk(sfa, chunk));
  std::vector<ScoredString> best = KBestStrings(sub, k);
  if (best.empty()) return Status::Internal("chunk emits no strings");
  SfaBuilder b;
  std::vector<NodeId> remap(sfa.NumNodes(), kInvalidNode);
  for (NodeId n = 0; n < sfa.NumNodes(); ++n) {
    bool interior = chunk.nodes.count(n) && n != chunk.start && n != chunk.final;
    if (!interior) remap[n] = b.AddNode();
  }
  b.SetStart(remap[sfa.start()]);
  b.SetFinal(remap[sfa.final()]);
  for (const Edge& e : sfa.edges()) {
    if (chunk.nodes.count(e.from) && chunk.nodes.count(e.to)) continue;
    for (const Transition& t : e.transitions) {
      STACCATO_RETURN_NOT_OK(
          b.AddTransition(remap[e.from], remap[e.to], t.label, t.prob));
    }
  }
  for (const ScoredString& s : best) {
    STACCATO_RETURN_NOT_OK(b.AddTransition(remap[chunk.start],
                                           remap[chunk.final], s.str, s.prob));
  }
  return b.Build();
}

Result<Sfa> ApproximateSfa(const Sfa& sfa, const StaccatoParams& params,
                           ApproxStats* stats) {
  if (params.m == 0 || params.k == 0) {
    return Status::InvalidArgument("ApproximateSfa: m and k must be >= 1");
  }
  ApproxStats local;
  local.input_edges = sfa.NumEdges();

  MGraph g = MGraph::FromSfa(sfa, params.k);

  struct CacheEntry {
    MinSfaResult chunk;
    ChunkSummary summary;
  };
  // Chunk cache: canonical node set -> scored chunk. Entries stay valid as
  // long as the collapsed region does not overlap them (a collapse never
  // creates new paths, so a chunk whose nodes are untouched resolves and
  // scores identically on the new graph).
  std::unordered_map<std::string, CacheEntry> cache;
  // Triple memo: seed {x,y,z} -> chunk key. A stale hint (chunk entry was
  // invalidated) simply triggers recomputation.
  std::unordered_map<std::string, std::string> triple_memo;

  std::vector<double> fwd, bwd;
  while (g.alive_edges > params.m) {
    ComputeFlow(g, &fwd, &bwd);
    // Enumerate candidate triples {x, y, z} with alive edges (x,y), (y,z).
    const CacheEntry* best = nullptr;
    double best_loss = 0.0;
    for (NodeId y = 0; y < g.node_alive.size(); ++y) {
      if (!g.node_alive[y] || y == g.start || y == g.final) continue;
      for (EdgeId ie : g.in[y]) {
        if (!g.edges[ie].alive) continue;
        for (EdgeId oe : g.out[y]) {
          if (!g.edges[oe].alive) continue;
          std::set<NodeId> seed{g.edges[ie].from, y, g.edges[oe].to};
          std::string seed_key = ChunkKey(seed);
          const CacheEntry* entry = nullptr;
          auto memo_it =
              params.use_candidate_cache ? triple_memo.find(seed_key)
                                         : triple_memo.end();
          if (memo_it != triple_memo.end()) {
            auto it = cache.find(memo_it->second);
            if (it != cache.end()) {
              entry = &it->second;
              ++local.cache_hits;
            }
          }
          if (entry == nullptr) {
            auto min_sfa = FindMinSfaImpl(MGraphView{g}, seed);
            if (!min_sfa.ok()) continue;
            std::string key = ChunkKey(min_sfa->nodes);
            auto it = cache.find(key);
            if (it == cache.end()) {
              auto summary = SummarizeChunk(g, *min_sfa, params.k);
              if (!summary.ok()) continue;
              ++local.candidates_scored;
              it = cache.emplace(key, CacheEntry{std::move(*min_sfa),
                                                 std::move(*summary)})
                       .first;
            }
            triple_memo[seed_key] = key;
            entry = &it->second;
          }
          double loss = fwd[entry->chunk.start] *
                        (entry->summary.total_mass - entry->summary.kept_mass) *
                        bwd[entry->chunk.final];
          if (best == nullptr || loss < best_loss) {
            best = entry;
            best_loss = loss;
          }
        }
      }
    }
    if (best == nullptr) break;  // no collapsible structure remains

    // Apply the collapse: kill interior nodes and intra-chunk edges, add the
    // chunk edge with the retained strings.
    MinSfaResult chosen = best->chunk;          // copy: cache is invalidated
    std::vector<Transition> kept = best->summary.top_k;
    for (EdgeId e = 0; e < g.edges.size(); ++e) {
      if (!g.edges[e].alive) continue;
      if (chosen.nodes.count(g.edges[e].from) && chosen.nodes.count(g.edges[e].to)) {
        g.KillEdge(e);
      }
    }
    for (NodeId n : chosen.nodes) {
      if (n != chosen.start && n != chosen.final) g.node_alive[n] = false;
    }
    g.AddEdge(chosen.start, chosen.final, std::move(kept));
    ++local.iterations;

    // Invalidate cache entries overlapping the collapsed region.
    for (auto it = cache.begin(); it != cache.end();) {
      bool overlaps = false;
      for (NodeId n : it->second.chunk.nodes) {
        if (chosen.nodes.count(n)) {
          overlaps = true;
          break;
        }
      }
      it = overlaps ? cache.erase(it) : ++it;
    }
    if (!params.use_candidate_cache) {
      cache.clear();
      triple_memo.clear();
    }
  }

  auto out = g.ToSfa();
  if (!out.ok()) return out.status();
  local.output_edges = out->NumEdges();
  local.output_transitions = out->NumTransitions();
  local.retained_mass = out->TotalMass();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace staccato
