// Automated construction of Staccato (Section 3.2, evaluated in Sec 5.5):
// given a labeled sample of SFAs and representative queries, find the
// smallest m (and the budget-matching k) such that a storage-size
// constraint and an average-recall constraint are both met.
//
// The size model is the Table-1 formula for a chunked SFA:
//     bytes(m, k) ≈ l·k + 16·m·k      (l = average emitted-string length)
// which, for a fixed byte budget B, expresses k in terms of m:
//     k(m) = B / (l + 16·m)
// The remaining problem is a one-dimensional search on m, solved by binary
// search over the (empirically monotone) recall-vs-m curve.
#pragma once

#include <string>
#include <vector>

#include "sfa/sfa.h"
#include "staccato/chunking.h"
#include "util/result.h"

namespace staccato {

/// \brief The labeled sample: per-line SFAs plus their true transcriptions.
struct TuningSample {
  std::vector<Sfa> sfas;
  std::vector<std::string> truth;  ///< ground-truth string per SFA
};

/// \brief User constraints (defaults follow Section 5.5).
struct TuningConstraints {
  double size_fraction = 0.10;  ///< budget as fraction of FullSFA bytes
  double min_recall = 0.90;     ///< average recall across queries
  size_t num_ans = 100;         ///< answers retrieved per query
  size_t grid_step = 5;         ///< granularity of the m/k grid
  size_t max_m = 200;
  size_t max_k = 200;
};

/// \brief Tuning result.
struct TuningOutcome {
  bool feasible = false;
  size_t m = 0;
  size_t k = 0;
  double achieved_recall = 0.0;
  size_t configurations_tried = 0;  ///< (m,k) points actually constructed
};

/// Average recall over `query_patterns` when the sample is approximated with
/// (m, k). Ground truth for a query is the set of sample lines whose true
/// transcription contains a match.
Result<double> MeasureAverageRecall(const TuningSample& sample,
                                    const std::vector<std::string>& query_patterns,
                                    size_t m, size_t k, size_t num_ans);

/// Measures the total approximated size (bytes) of the sample at (m, k).
Result<size_t> MeasureApproxSize(const TuningSample& sample, size_t m, size_t k);

/// The paper's tuning method: derive k from the size equation, then binary
/// search the smallest m meeting the recall constraint.
Result<TuningOutcome> TuneParameters(const TuningSample& sample,
                                     const std::vector<std::string>& query_patterns,
                                     const TuningConstraints& constraints);

/// Budget-equation solve: the k that fills `budget_bytes` at a given m for a
/// sample whose average emitted-string length is `avg_len` and size `n`.
size_t SolveKForBudget(size_t budget_bytes, size_t num_sfas, double avg_len,
                       size_t m, size_t max_k);

}  // namespace staccato
