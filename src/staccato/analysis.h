// Formal-analysis utilities (Section 3.2 and Appendices C/D of the paper).
//
// Every approximation this library produces emits a subset X of the
// original SFA's strings, keeping each retained string's original
// probability (i.e. the sub-stochastic restriction of the distribution µ
// to X). Appendix C shows the KL-optimal way to place probabilities on X
// is the conditional µ|X, and that KL(µ|X ‖ µ) = −log Σ_{x∈X} µ(x) — so
// comparing approximations by retained mass *is* comparing them by
// KL divergence. These helpers make that measurable.
#pragma once

#include "sfa/sfa.h"
#include "util/result.h"

namespace staccato {

/// KL(µ|X ‖ µ) computed from the retained probability mass Z = Pr_S[X]:
/// exactly −log Z (Appendix C). Fails if mass is not in (0, 1].
Result<double> KlFromRetainedMass(double retained_mass);

/// KL divergence between an approximation's conditional distribution and
/// the original SFA's distribution, computed by explicit enumeration of
/// both string sets. Intended for tests and small SFAs; verifies that the
/// approximation's strings are a subset of the original's with unchanged
/// probabilities. Cost is linear in the number of paths.
Result<double> KlDivergenceByEnumeration(const Sfa& original, const Sfa& approx,
                                         size_t max_paths = 1 << 20);

}  // namespace staccato
