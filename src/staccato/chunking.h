// The Staccato approximation (Section 3.1): greedily merge regions of an
// SFA into chunks, retaining only the top-k strings per chunk, until at
// most m edges remain. The result is again a (generalized) SFA whose edges
// are the chunks, so every downstream component — query evaluation,
// serialization, indexing — operates on it unchanged.
//
//   m = 1 (after full collapse)  ≡ k-MAP on the whole line
//   m = |E| (no collapse)        ≡ the full SFA (when k ≥ alternatives/edge)
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "sfa/sfa.h"
#include "util/result.h"

namespace staccato {

/// \brief Knobs of the approximation (Table 3).
struct StaccatoParams {
  size_t m = 40;  ///< maximum number of chunks (edges) to retain
  size_t k = 25;  ///< number of strings retained per chunk

  /// Enables the candidate cache across greedy iterations (the "simple
  /// optimization" of Section 3.1). Exposed so the ablation bench can
  /// measure its effect.
  bool use_candidate_cache = true;
};

/// \brief Construction statistics, reported by the Figure-8/18 benches.
struct ApproxStats {
  size_t input_edges = 0;
  size_t output_edges = 0;
  size_t output_transitions = 0;
  double retained_mass = 0.0;   ///< Pr_S[Emit(approx)], in [0, 1]
  size_t iterations = 0;        ///< greedy collapse steps performed
  size_t candidates_scored = 0; ///< chunk candidates evaluated (cache misses)
  size_t cache_hits = 0;
};

/// \brief Result of FindMinSFA (Algorithm 1): a minimal node set containing
/// the seed that forms a valid sub-SFA, with its designated endpoints.
struct MinSfaResult {
  std::set<NodeId> nodes;
  NodeId start = kInvalidNode;
  NodeId final = kInvalidNode;
};

/// Algorithm 1. Expands `seed` to the minimal superset that forms a valid
/// sub-SFA of `sfa`: a unique entry node, a unique exit node, and no
/// external edges incident on interior nodes. Fails only on empty seeds.
Result<MinSfaResult> FindMinSfa(const Sfa& sfa, const std::set<NodeId>& seed);

/// Extracts the sub-SFA induced by a FindMinSfa result (probabilities are
/// the original conditional probabilities, so path mass within the chunk is
/// the conditional mass of traversing it).
Result<Sfa> ExtractChunk(const Sfa& sfa, const MinSfaResult& chunk);

/// Collapse: replaces the chunk's interior with a single edge
/// (chunk.start → chunk.final) carrying the chunk's top-k strings.
Result<Sfa> CollapseChunk(const Sfa& sfa, const MinSfaResult& chunk, size_t k);

/// Algorithm 2: the full greedy approximation. Returns the chunked SFA;
/// fills `stats` if non-null.
Result<Sfa> ApproximateSfa(const Sfa& sfa, const StaccatoParams& params,
                           ApproxStats* stats = nullptr);

}  // namespace staccato
