#include "staccato/tuning.h"

#include <algorithm>
#include <set>

#include "automata/dfa.h"
#include "inference/kbest.h"
#include "inference/query_eval.h"
#include "metrics/metrics.h"

namespace staccato {

namespace {

// Average length of the MAP string across the sample (proxy for l).
double AverageLineLength(const TuningSample& sample) {
  if (sample.truth.empty()) return 1.0;
  size_t total = 0;
  for (const std::string& s : sample.truth) total += s.size();
  return std::max(1.0, static_cast<double>(total) /
                           static_cast<double>(sample.truth.size()));
}

}  // namespace

size_t SolveKForBudget(size_t budget_bytes, size_t num_sfas, double avg_len,
                       size_t m, size_t max_k) {
  if (num_sfas == 0) return 1;
  double per_sfa = static_cast<double>(budget_bytes) / static_cast<double>(num_sfas);
  double denom = avg_len + 16.0 * static_cast<double>(m);
  size_t k = static_cast<size_t>(per_sfa / denom);
  return std::clamp<size_t>(k, 1, max_k);
}

Result<double> MeasureAverageRecall(const TuningSample& sample,
                                    const std::vector<std::string>& query_patterns,
                                    size_t m, size_t k, size_t num_ans) {
  if (sample.sfas.size() != sample.truth.size()) {
    return Status::InvalidArgument("sample SFAs and truth differ in size");
  }
  // Approximate every SFA once, then evaluate all queries against them.
  std::vector<Sfa> approx;
  approx.reserve(sample.sfas.size());
  StaccatoParams params{m, k, /*use_candidate_cache=*/true};
  for (const Sfa& sfa : sample.sfas) {
    STACCATO_ASSIGN_OR_RETURN(Sfa a, ApproximateSfa(sfa, params));
    approx.push_back(std::move(a));
  }
  double total_recall = 0.0;
  for (const std::string& pattern : query_patterns) {
    STACCATO_ASSIGN_OR_RETURN(Dfa dfa, Dfa::Compile(pattern, MatchMode::kContains));
    std::set<DocId> truth_docs;
    for (size_t i = 0; i < sample.truth.size(); ++i) {
      if (dfa.Matches(sample.truth[i])) truth_docs.insert(i);
    }
    std::vector<Answer> answers;
    for (size_t i = 0; i < approx.size(); ++i) {
      double p = EvalSfaQuery(approx[i], dfa);
      if (p > 0.0) answers.push_back({i, p});
    }
    QualityScores q = ScoreAnswers(RankAnswers(std::move(answers), num_ans),
                                   truth_docs);
    total_recall += q.recall;
  }
  return query_patterns.empty() ? 1.0
                                : total_recall / static_cast<double>(
                                                     query_patterns.size());
}

Result<size_t> MeasureApproxSize(const TuningSample& sample, size_t m, size_t k) {
  size_t bytes = 0;
  StaccatoParams params{m, k, /*use_candidate_cache=*/true};
  for (const Sfa& sfa : sample.sfas) {
    STACCATO_ASSIGN_OR_RETURN(Sfa a, ApproximateSfa(sfa, params));
    bytes += a.SizeBytes();
  }
  return bytes;
}

Result<TuningOutcome> TuneParameters(const TuningSample& sample,
                                     const std::vector<std::string>& query_patterns,
                                     const TuningConstraints& c) {
  if (c.grid_step == 0) return Status::InvalidArgument("grid_step must be >= 1");
  size_t full_bytes = 0;
  for (const Sfa& sfa : sample.sfas) full_bytes += sfa.SizeBytes();
  size_t budget = static_cast<size_t>(c.size_fraction *
                                      static_cast<double>(full_bytes));
  double avg_len = AverageLineLength(sample);

  TuningOutcome out;
  // Binary search the smallest m on the grid meeting the recall constraint.
  // Recall is (empirically, Section 5.5) monotone non-decreasing in m when
  // k rides the budget curve.
  size_t lo = 1, hi = std::max<size_t>(1, c.max_m / c.grid_step);  // m = i*step
  auto m_of = [&](size_t i) { return std::max<size_t>(1, i * c.grid_step); };
  bool any_feasible = false;
  size_t best_m = 0, best_k = 0;
  double best_recall = 0.0;
  while (lo <= hi) {
    size_t mid = lo + (hi - lo) / 2;
    size_t m = m_of(mid);
    size_t k = SolveKForBudget(budget, sample.sfas.size(), avg_len, m, c.max_k);
    // Snap k *down* to the grid (snapping up would overshoot the size
    // budget the equation just solved for).
    if (k >= c.grid_step) k = (k / c.grid_step) * c.grid_step;
    k = std::max<size_t>(1, k);
    STACCATO_ASSIGN_OR_RETURN(
        double recall, MeasureAverageRecall(sample, query_patterns, m, k, c.num_ans));
    ++out.configurations_tried;
    if (recall >= c.min_recall) {
      any_feasible = true;
      best_m = m;
      best_k = k;
      best_recall = recall;
      if (mid == 0) break;
      hi = mid - 1;  // try smaller m
    } else {
      lo = mid + 1;
    }
  }
  out.feasible = any_feasible;
  out.m = best_m;
  out.k = best_k;
  out.achieved_recall = best_recall;
  return out;
}

}  // namespace staccato
