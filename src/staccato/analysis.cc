#include "staccato/analysis.h"

#include <cmath>
#include <map>

#include "util/strings.h"

namespace staccato {

Result<double> KlFromRetainedMass(double retained_mass) {
  if (!(retained_mass > 0.0) || retained_mass > 1.0 + 1e-9) {
    return Status::InvalidArgument(
        StringPrintf("retained mass %f outside (0, 1]", retained_mass));
  }
  return -std::log(std::min(retained_mass, 1.0));
}

Result<double> KlDivergenceByEnumeration(const Sfa& original, const Sfa& approx,
                                         size_t max_paths) {
  auto orig_strings = original.EnumerateStrings(max_paths);
  if (!orig_strings.ok()) return orig_strings.status();
  auto approx_strings = approx.EnumerateStrings(max_paths);
  if (!approx_strings.ok()) return approx_strings.status();

  std::map<std::string, double> mu;
  for (auto& [s, p] : *orig_strings) mu[s] += p;

  // The approximation restricted to X keeps original probabilities; its
  // conditional distribution divides by Z = Σ_{x∈X} µ(x).
  double z = 0.0;
  for (auto& [s, p] : *approx_strings) {
    auto it = mu.find(s);
    if (it == mu.end()) {
      return Status::InvalidArgument("approximation emits string not in original: '" +
                                     s + "'");
    }
    if (std::fabs(it->second - p) > 1e-9) {
      return Status::InvalidArgument(
          "approximation changed the probability of '" + s + "'");
    }
    z += p;
  }
  if (z <= 0.0) return Status::InvalidArgument("approximation retains no mass");

  // KL(µ|X ‖ µ) = Σ_x (µ(x)/Z) log((µ(x)/Z) / µ(x)) = −log Z.
  double kl = 0.0;
  for (auto& [s, p] : *approx_strings) {
    double q = p / z;
    kl += q * std::log(q / mu[s]);
  }
  return kl;
}

}  // namespace staccato
