// Dictionary trie automaton (Section 4): a prefix trie over the user's
// dictionary terms, used as the DFA the index-construction dynamic program
// runs against. Final states map back to term ids.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "automata/pattern.h"
#include "util/result.h"

namespace staccato {

using TermId = uint32_t;
inline constexpr TermId kInvalidTerm = UINT32_MAX;

/// \brief Prefix-trie DFA over a dictionary of terms.
///
/// States are trie nodes (0 = root). `Step` returns kDead on mismatch; the
/// index builder restarts at every offset, exactly as Algorithm 4 does with
/// its (state=0, offset) pairs. Matching is case-insensitive: terms are
/// stored lower-cased and input characters are folded before lookup.
class DictionaryTrie {
 public:
  static constexpr int32_t kDead = -1;

  /// Builds a trie from terms; duplicates are collapsed. Terms are
  /// lower-cased; non-alphabet characters are rejected.
  static Result<DictionaryTrie> Build(const std::vector<std::string>& terms);

  int32_t root() const { return 0; }
  size_t NumStates() const { return nodes_.size(); }
  size_t NumTerms() const { return terms_.size(); }

  /// One character step (case-folded); kDead if no trie child.
  int32_t Step(int32_t state, char c) const {
    if (state < 0) return kDead;
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    if (!IsAlphabetChar(c)) return kDead;
    const auto& node = nodes_[state];
    auto it = node.children.find(c);
    return it == node.children.end() ? kDead : it->second;
  }

  /// Term finishing at this state, or kInvalidTerm.
  TermId TermAt(int32_t state) const {
    return state < 0 ? kInvalidTerm : nodes_[state].term;
  }

  const std::string& term(TermId id) const { return terms_[id]; }

  /// Looks up a term (case-insensitive); kInvalidTerm if absent.
  TermId Find(const std::string& term) const;

 private:
  struct Node {
    std::unordered_map<char, int32_t> children;
    TermId term = kInvalidTerm;
  };

  std::vector<Node> nodes_;
  std::vector<std::string> terms_;
};

/// Builds the default English-like dictionary used by the experiments:
/// the vocabulary is harvested from a clean text corpus (the paper uses the
/// Corncob word list; we use the generator vocabulary).
std::vector<std::string> BuildDictionaryFromCorpus(
    const std::vector<std::string>& lines, size_t min_length = 3);

}  // namespace staccato
