#include "automata/pattern.h"

#include "util/strings.h"

namespace staccato {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<std::unique_ptr<PatternNode>> ParseAll() {
    auto seq = ParseSeq();
    if (!seq.ok()) return seq.status();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          StringPrintf("unexpected '%c' at offset %zu", text_[pos_], pos_));
    }
    return seq;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  Result<std::unique_ptr<PatternNode>> ParseSeq() {
    auto seq = std::make_unique<PatternNode>();
    seq->kind = PatternNode::Kind::kSeq;
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      auto item = ParseItem();
      if (!item.ok()) return item.status();
      seq->children.push_back(std::move(*item));
    }
    return seq;
  }

  Result<std::unique_ptr<PatternNode>> ParseItem() {
    auto atom = ParseAtom();
    if (!atom.ok()) return atom;
    if (!AtEnd() && Peek() == '*') {
      ++pos_;
      auto star = std::make_unique<PatternNode>();
      star->kind = PatternNode::Kind::kStar;
      star->children.push_back(std::move(*atom));
      return star;
    }
    return atom;
  }

  Result<std::unique_ptr<PatternNode>> ParseAtom() {
    if (AtEnd()) return Status::InvalidArgument("pattern ends unexpectedly");
    char c = Peek();
    if (c == '(') {
      ++pos_;
      auto alt = std::make_unique<PatternNode>();
      alt->kind = PatternNode::Kind::kAlt;
      while (true) {
        auto seq = ParseSeq();
        if (!seq.ok()) return seq.status();
        alt->children.push_back(std::move(*seq));
        if (AtEnd()) return Status::InvalidArgument("unterminated group");
        if (Peek() == '|') {
          ++pos_;
          continue;
        }
        if (Peek() == ')') {
          ++pos_;
          break;
        }
        return Status::InvalidArgument("malformed group");
      }
      if (alt->children.size() == 1) return std::move(alt->children[0]);
      return alt;
    }
    if (c == '\\') {
      ++pos_;
      if (AtEnd()) return Status::InvalidArgument("dangling backslash");
      char esc = text_[pos_++];
      auto node = std::make_unique<PatternNode>();
      node->kind = PatternNode::Kind::kChar;
      switch (esc) {
        case 'd':
          node->chars = CharSet::Digits();
          break;
        case 'x':
          node->chars = CharSet::Any();
          break;
        default:
          if (!IsAlphabetChar(esc)) {
            return Status::InvalidArgument("escaped character outside alphabet");
          }
          node->chars = CharSet::Single(esc);
          break;
      }
      return node;
    }
    if (c == '*' || c == ')' || c == '|') {
      return Status::InvalidArgument(
          StringPrintf("unexpected '%c' at offset %zu", c, pos_));
    }
    if (!IsAlphabetChar(c)) {
      return Status::InvalidArgument("pattern character outside alphabet");
    }
    ++pos_;
    auto node = std::make_unique<PatternNode>();
    node->kind = PatternNode::Kind::kChar;
    node->chars = CharSet::Single(c);
    return node;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// A node is literal if it is a kSeq of single-character kChar nodes.
bool NodeIsLiteral(const PatternNode& n, std::string* out) {
  switch (n.kind) {
    case PatternNode::Kind::kChar:
      if (n.chars.Count() != 1) return false;
      for (int i = 0; i < kAlphabetSize; ++i) {
        if (n.chars.TestIndex(i)) {
          out->push_back(IndexChar(i));
          return true;
        }
      }
      return false;
    case PatternNode::Kind::kSeq:
      for (const auto& c : n.children) {
        if (!NodeIsLiteral(*c, out)) return false;
      }
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<Pattern> Pattern::Parse(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty pattern");
  Parser parser(text);
  auto root = parser.ParseAll();
  if (!root.ok()) return root.status();
  Pattern p;
  p.text_ = text;
  p.root_ = std::move(*root);
  std::string lit;
  p.literal_ = NodeIsLiteral(*p.root_, &lit);
  if (p.literal_) {
    p.literal_prefix_ = lit;
  } else {
    // Maximal literal prefix: walk the top-level sequence collecting
    // single-character nodes until the first non-literal construct.
    p.literal_prefix_.clear();
    const PatternNode& r = *p.root_;
    if (r.kind == PatternNode::Kind::kSeq) {
      for (const auto& c : r.children) {
        std::string piece;
        if (c->kind == PatternNode::Kind::kChar && NodeIsLiteral(*c, &piece)) {
          p.literal_prefix_ += piece;
        } else {
          break;
        }
      }
    }
  }
  return p;
}

std::string Pattern::AnchorTerm() const {
  std::string token;
  for (char c : literal_prefix_) {
    if (c == ' ') break;
    token.push_back(c);
  }
  return ToLowerAscii(token);
}

}  // namespace staccato
