// Deterministic finite automata compiled from query patterns
// (Thompson NFA construction + subset construction), plus the two match
// semantics the paper uses:
//
//  * kExact:    L(pat) — the DFA accepts exactly the pattern language.
//  * kContains: Σ*·L(pat)·Σ* — the DFA accepts any string containing a
//               pattern match; this implements `LIKE '%pat%'`. Accepting
//               states are absorbing, which is what makes the probabilistic
//               DP over SFAs compute Pr[q] correctly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "automata/pattern.h"
#include "util/result.h"

namespace staccato {

using DfaState = int32_t;
inline constexpr DfaState kDfaDead = -1;

enum class MatchMode {
  kExact,
  kContains,
};

/// \brief Table-driven DFA over the printable-ASCII alphabet.
class Dfa {
 public:
  /// Compiles a pattern under the given match semantics.
  static Result<Dfa> Compile(const Pattern& pattern, MatchMode mode);
  static Result<Dfa> Compile(const std::string& pattern_text, MatchMode mode);

  int NumStates() const { return static_cast<int>(accept_.size()); }
  DfaState start() const { return start_; }
  bool IsAccept(DfaState s) const { return s >= 0 && accept_[s]; }

  /// One transition step; kDfaDead is absorbing.
  DfaState Next(DfaState s, char c) const {
    if (s < 0 || !IsAlphabetChar(c)) return kDfaDead;
    return table_[static_cast<size_t>(s) * kAlphabetSize + CharIndex(c)];
  }

  /// Runs the DFA over a whole string from the start state.
  bool Matches(const std::string& s) const;

  /// Steps through each character of `s` from state `from`; returns the
  /// resulting state (possibly kDfaDead).
  DfaState Step(DfaState from, const std::string& s) const;

  MatchMode mode() const { return mode_; }

 private:
  MatchMode mode_ = MatchMode::kExact;
  DfaState start_ = 0;
  std::vector<uint8_t> accept_;
  std::vector<DfaState> table_;  // NumStates x kAlphabetSize
};

}  // namespace staccato
