#include "automata/dfa.h"

#include <algorithm>
#include <map>
#include <set>

namespace staccato {

namespace {

// Thompson-style NFA with CharSet-labeled and epsilon transitions.
struct Nfa {
  struct Trans {
    CharSet on;
    int to;
  };
  std::vector<std::vector<Trans>> trans;
  std::vector<std::vector<int>> eps;
  int start = 0;
  int accept = 0;

  int AddState() {
    trans.emplace_back();
    eps.emplace_back();
    return static_cast<int>(trans.size()) - 1;
  }
  void AddEps(int from, int to) { eps[from].push_back(to); }
  void AddTrans(int from, const CharSet& on, int to) {
    trans[from].push_back({on, to});
  }
};

struct Fragment {
  int in;
  int out;
};

Fragment BuildFragment(Nfa* nfa, const PatternNode& node) {
  switch (node.kind) {
    case PatternNode::Kind::kChar: {
      int a = nfa->AddState();
      int b = nfa->AddState();
      nfa->AddTrans(a, node.chars, b);
      return {a, b};
    }
    case PatternNode::Kind::kSeq: {
      int a = nfa->AddState();
      int cur = a;
      for (const auto& child : node.children) {
        Fragment f = BuildFragment(nfa, *child);
        nfa->AddEps(cur, f.in);
        cur = f.out;
      }
      return {a, cur};
    }
    case PatternNode::Kind::kAlt: {
      int a = nfa->AddState();
      int b = nfa->AddState();
      for (const auto& child : node.children) {
        Fragment f = BuildFragment(nfa, *child);
        nfa->AddEps(a, f.in);
        nfa->AddEps(f.out, b);
      }
      return {a, b};
    }
    case PatternNode::Kind::kStar: {
      int a = nfa->AddState();
      int b = nfa->AddState();
      Fragment f = BuildFragment(nfa, *node.children[0]);
      nfa->AddEps(a, f.in);
      nfa->AddEps(f.out, b);
      nfa->AddEps(a, b);       // zero repetitions
      nfa->AddEps(f.out, f.in);  // loop
      return {a, b};
    }
  }
  return {0, 0};
}

void EpsClosure(const Nfa& nfa, std::set<int>* states) {
  std::vector<int> stack(states->begin(), states->end());
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    for (int t : nfa.eps[s]) {
      if (states->insert(t).second) stack.push_back(t);
    }
  }
}

}  // namespace

Result<Dfa> Dfa::Compile(const std::string& pattern_text, MatchMode mode) {
  auto pat = Pattern::Parse(pattern_text);
  if (!pat.ok()) return pat.status();
  return Compile(*pat, mode);
}

Result<Dfa> Dfa::Compile(const Pattern& pattern, MatchMode mode) {
  Nfa nfa;
  Fragment body = BuildFragment(&nfa, pattern.root());
  nfa.start = nfa.AddState();
  nfa.accept = nfa.AddState();
  nfa.AddEps(nfa.start, body.in);
  nfa.AddEps(body.out, nfa.accept);
  if (mode == MatchMode::kContains) {
    // Σ* on both sides; the accept state is absorbing.
    nfa.AddTrans(nfa.start, CharSet::Any(), nfa.start);
    nfa.AddTrans(nfa.accept, CharSet::Any(), nfa.accept);
  }

  // Subset construction.
  Dfa dfa;
  dfa.mode_ = mode;
  std::map<std::set<int>, DfaState> ids;
  std::vector<std::set<int>> subsets;

  std::set<int> start_set{nfa.start};
  EpsClosure(nfa, &start_set);
  ids[start_set] = 0;
  subsets.push_back(start_set);
  dfa.start_ = 0;

  for (size_t cur = 0; cur < subsets.size(); ++cur) {
    // Snapshot: subsets may reallocate as we append.
    std::set<int> state_set = subsets[cur];
    bool accept = state_set.count(nfa.accept) > 0;
    if (dfa.accept_.size() <= cur) dfa.accept_.resize(cur + 1, 0);
    dfa.accept_[cur] = accept ? 1 : 0;
    dfa.table_.resize(subsets.size() * kAlphabetSize, kDfaDead);

    for (int ci = 0; ci < kAlphabetSize; ++ci) {
      char c = IndexChar(ci);
      std::set<int> next;
      for (int s : state_set) {
        for (const auto& t : nfa.trans[s]) {
          if (t.on.Test(c)) next.insert(t.to);
        }
      }
      if (next.empty()) continue;
      EpsClosure(nfa, &next);
      auto [it, inserted] = ids.emplace(std::move(next), static_cast<DfaState>(subsets.size()));
      if (inserted) {
        subsets.push_back(it->first);
        dfa.table_.resize(subsets.size() * kAlphabetSize, kDfaDead);
        dfa.accept_.resize(subsets.size(), 0);
      }
      dfa.table_[cur * kAlphabetSize + ci] = it->second;
    }
  }
  dfa.accept_.resize(subsets.size(), 0);
  for (size_t i = 0; i < subsets.size(); ++i) {
    dfa.accept_[i] = subsets[i].count(nfa.accept) ? 1 : 0;
  }
  dfa.table_.resize(subsets.size() * kAlphabetSize, kDfaDead);
  return dfa;
}

bool Dfa::Matches(const std::string& s) const {
  DfaState st = Step(start_, s);
  return IsAccept(st);
}

DfaState Dfa::Step(DfaState from, const std::string& s) const {
  DfaState st = from;
  for (char c : s) {
    if (st == kDfaDead) return kDfaDead;
    st = Next(st, c);
  }
  return st;
}

}  // namespace staccato
