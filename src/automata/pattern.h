// The query pattern language of the paper: keywords plus the regex
// constructs used throughout Section 5 — `\d` (any digit), `\x` (any
// character), alternation groups `(8|9)`, and Kleene star `(\x)*`.
//
// A pattern is parsed into a small AST; `dfa.h` compiles the AST to a DFA
// with either exact-match or contains-match (`LIKE '%pat%'`) semantics.
#pragma once

#include <bitset>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace staccato {

/// Printable ASCII alphabet used by the OCR SFAs: characters 32..126.
inline constexpr int kAlphabetSize = 95;
inline constexpr char kAlphabetMin = 32;
inline constexpr char kAlphabetMax = 126;

inline bool IsAlphabetChar(char c) { return c >= kAlphabetMin && c <= kAlphabetMax; }
inline int CharIndex(char c) { return c - kAlphabetMin; }
inline char IndexChar(int i) { return static_cast<char>(i + kAlphabetMin); }

/// \brief Set of alphabet characters (bitset over printable ASCII).
class CharSet {
 public:
  static CharSet Single(char c) {
    CharSet s;
    s.bits_.set(CharIndex(c));
    return s;
  }
  static CharSet Digits() {
    CharSet s;
    for (char c = '0'; c <= '9'; ++c) s.bits_.set(CharIndex(c));
    return s;
  }
  static CharSet Any() {
    CharSet s;
    s.bits_.set();
    return s;
  }

  bool Test(char c) const { return IsAlphabetChar(c) && bits_.test(CharIndex(c)); }
  bool TestIndex(int i) const { return bits_.test(i); }
  void Set(char c) { bits_.set(CharIndex(c)); }
  size_t Count() const { return bits_.count(); }
  bool operator==(const CharSet& o) const { return bits_ == o.bits_; }

 private:
  std::bitset<kAlphabetSize> bits_;
};

/// \brief Pattern AST node.
struct PatternNode {
  enum class Kind { kChar, kSeq, kAlt, kStar };

  Kind kind;
  CharSet chars;                                      // kChar
  std::vector<std::unique_ptr<PatternNode>> children; // kSeq / kAlt / kStar(1)
};

/// \brief A parsed query pattern.
///
/// Grammar (whitespace significant):
///   pattern := seq
///   seq     := item*
///   item    := atom '*'?
///   atom    := literal | '\d' | '\x' | '\\' | '(' seq ('|' seq)* ')'
/// Literals are any printable character except `( ) | * \`.
class Pattern {
 public:
  static Result<Pattern> Parse(const std::string& text);

  const PatternNode& root() const { return *root_; }
  const std::string& text() const { return text_; }

  /// True if the pattern contains no wildcard/alternation/star constructs.
  bool IsLiteral() const { return literal_; }

  /// The maximal literal prefix of the pattern (empty if it starts with a
  /// wildcard). Used for left-anchored index lookups (Section 4).
  const std::string& LiteralPrefix() const { return literal_prefix_; }

  /// The first whitespace-delimited token of the literal prefix, lower-cased;
  /// this is the candidate dictionary anchor term. Empty if none.
  std::string AnchorTerm() const;

 private:
  std::string text_;
  std::unique_ptr<PatternNode> root_;
  bool literal_ = false;
  std::string literal_prefix_;
};

}  // namespace staccato
