#include "automata/trie.h"

#include <algorithm>
#include <set>

#include "util/strings.h"

namespace staccato {

Result<DictionaryTrie> DictionaryTrie::Build(
    const std::vector<std::string>& terms) {
  DictionaryTrie trie;
  trie.nodes_.emplace_back();  // root
  std::set<std::string> unique;
  for (const std::string& raw : terms) {
    if (raw.empty()) return Status::InvalidArgument("empty dictionary term");
    unique.insert(ToLowerAscii(raw));
  }
  for (const std::string& term : unique) {
    int32_t cur = 0;
    for (char c : term) {
      if (!IsAlphabetChar(c)) {
        return Status::InvalidArgument("dictionary term outside alphabet: " + term);
      }
      auto it = trie.nodes_[cur].children.find(c);
      if (it == trie.nodes_[cur].children.end()) {
        trie.nodes_.emplace_back();
        int32_t next = static_cast<int32_t>(trie.nodes_.size()) - 1;
        trie.nodes_[cur].children.emplace(c, next);
        cur = next;
      } else {
        cur = it->second;
      }
    }
    trie.nodes_[cur].term = static_cast<TermId>(trie.terms_.size());
    trie.terms_.push_back(term);
  }
  return trie;
}

TermId DictionaryTrie::Find(const std::string& term) const {
  int32_t cur = 0;
  for (char c : term) {
    cur = Step(cur, c);
    if (cur == kDead) return kInvalidTerm;
  }
  return TermAt(cur);
}

std::vector<std::string> BuildDictionaryFromCorpus(
    const std::vector<std::string>& lines, size_t min_length) {
  std::set<std::string> vocab;
  for (const std::string& line : lines) {
    std::string word;
    for (char c : line) {
      bool is_word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
      if (is_word) {
        word.push_back(c);
      } else {
        if (word.size() >= min_length) vocab.insert(ToLowerAscii(word));
        word.clear();
      }
    }
    if (word.size() >= min_length) vocab.insert(ToLowerAscii(word));
  }
  return {vocab.begin(), vocab.end()};
}

}  // namespace staccato
