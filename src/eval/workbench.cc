#include "eval/workbench.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "automata/trie.h"
#include "util/strings.h"

namespace staccato::eval {

std::string MakeScratchDir(const std::string& hint) {
  static std::atomic<uint64_t> counter{0};
  std::string dir = StringPrintf("/tmp/staccato_work/%s-%d-%llu", hint.c_str(),
                                 static_cast<int>(getpid()),
                                 static_cast<unsigned long long>(counter++));
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

Result<std::unique_ptr<Workbench>> Workbench::Create(const WorkbenchSpec& spec) {
  auto wb = std::make_unique<Workbench>();
  wb->spec_ = spec;
  if (wb->spec_.work_dir.empty()) {
    wb->spec_.work_dir = MakeScratchDir(DatasetName(spec.corpus.kind));
  }
  STACCATO_ASSIGN_OR_RETURN(wb->dataset_,
                            GenerateOcrDataset(spec.corpus, spec.noise));
  // Experiments default to serial evaluation so the paper's timing
  // comparisons are undisturbed; Run's eval_threads opts into parallelism.
  const rdbms::SessionOptions session_opts{/*eval_threads=*/1,
                                           /*num_ans=*/100};
  if (spec.shards > 1) {
    STACCATO_ASSIGN_OR_RETURN(
        wb->sharded_,
        ShardedDb::Open(wb->spec_.work_dir,
                        rdbms::ShardConfig{spec.shards, spec.cache}));
    STACCATO_RETURN_NOT_OK(wb->sharded_->Load(wb->dataset_, spec.load));
    if (spec.build_index) {
      std::vector<std::string> dict =
          BuildDictionaryFromCorpus(wb->dataset_.corpus.lines);
      STACCATO_RETURN_NOT_OK(wb->sharded_->BuildInvertedIndex(dict));
    }
    wb->session_ = std::make_unique<Session>(wb->sharded_.get(), session_opts);
    return wb;
  }
  STACCATO_ASSIGN_OR_RETURN(wb->db_,
                            StaccatoDb::Open(wb->spec_.work_dir, spec.cache));
  STACCATO_RETURN_NOT_OK(wb->db_->Load(wb->dataset_, spec.load));
  if (spec.build_index) {
    std::vector<std::string> dict =
        BuildDictionaryFromCorpus(wb->dataset_.corpus.lines);
    STACCATO_RETURN_NOT_OK(wb->db_->BuildInvertedIndex(dict));
  }
  wb->session_ = std::make_unique<Session>(wb->db_.get(), session_opts);
  return wb;
}

Status Workbench::DropCaches() {
  return sharded_ != nullptr ? sharded_->DropCaches() : db_->DropCaches();
}

Result<std::set<DocId>> Workbench::GroundTruthFor(const std::string& pattern) {
  return sharded_ != nullptr ? sharded_->GroundTruthFor(pattern)
                             : db_->GroundTruthFor(pattern);
}

Result<ExperimentRow> Workbench::Run(Approach approach,
                                     const std::string& pattern,
                                     size_t num_ans, bool use_index,
                                     bool use_projection,
                                     size_t eval_threads) {
  ExperimentRow row;
  row.pattern = pattern;
  row.approach = approach;
  QueryOptions q;
  q.pattern = pattern;
  q.num_ans = num_ans;
  // Benches measure the path they name, so the boolean pins the candidate
  // source; cost-based choice (kAuto) is exercised via session()/Prepare.
  q.index_mode =
      use_index ? rdbms::IndexMode::kForce : rdbms::IndexMode::kNever;
  q.use_projection = use_projection;
  q.eval_threads = eval_threads;
  STACCATO_ASSIGN_OR_RETURN(PreparedQuery pq, session_->Prepare(approach, q));
  STACCATO_RETURN_NOT_OK(DropCaches());
  STACCATO_ASSIGN_OR_RETURN(std::vector<Answer> answers,
                            pq.Execute(&row.stats));
  STACCATO_ASSIGN_OR_RETURN(std::set<DocId> truth, GroundTruthFor(pattern));
  row.quality = ScoreAnswers(answers, truth);
  row.truth_size = truth.size();
  row.answers = answers.size();
  return row;
}

void PrintHeader(const std::string& title) {
  printf("\n==== %s ====\n", title.c_str());
}

void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    int w = i < widths.size() ? widths[i] : 12;
    printf("%-*s", w, cells[i].c_str());
  }
  printf("\n");
}

}  // namespace staccato::eval
