// Shared experiment driver: generates a synthetic OCR dataset, loads it
// into a StaccatoDb, and runs quality/performance measurements. Every bench
// binary builds on this so the tables and figures are produced uniformly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "ocr/corpus.h"
#include "rdbms/session.h"
#include "rdbms/shard.h"
#include "rdbms/staccato_db.h"
#include "util/result.h"

namespace staccato::eval {

using rdbms::Approach;
using rdbms::LoadOptions;
using rdbms::PreparedQuery;
using rdbms::QueryOptions;
using rdbms::QueryStats;
using rdbms::Session;
using rdbms::ShardedDb;
using rdbms::StaccatoDb;

/// \brief Everything a bench needs to describe a dataset + representation.
struct WorkbenchSpec {
  CorpusSpec corpus;
  OcrNoiseModel noise;
  LoadOptions load;
  std::string work_dir;  ///< empty = unique directory under /tmp
  bool build_index = false;
  /// Shared buffer-cache sizing passed to StaccatoDb::Open; the default
  /// honors STACCATO_CACHE_MB, and budget_bytes = 0 disables caching.
  /// With shards > 1 this is the total budget, divided across shards.
  cache::CacheConfig cache = cache::CacheConfig::Default();
  /// Corpus partitions: 1 = a single StaccatoDb (the historical shape);
  /// > 1 loads the dataset into a ShardedDb and every Run scatter-gathers
  /// (bit-identical answers, different wall clock). db() is only valid
  /// at 1 shard; use sharded() otherwise.
  size_t shards = 1;
};

/// \brief One measured query execution.
struct ExperimentRow {
  std::string pattern;
  Approach approach = Approach::kMap;
  QualityScores quality;
  QueryStats stats;
  size_t truth_size = 0;
  size_t answers = 0;
};

/// \brief A generated dataset loaded into a database.
class Workbench {
 public:
  static Result<std::unique_ptr<Workbench>> Create(const WorkbenchSpec& spec);

  /// Runs one query through the session layer (Prepare + Execute) and
  /// scores it against ground truth. `eval_threads` feeds the parallel
  /// Eval stage (1 = serial, which is also the session default for 0).
  /// `use_index` pins the candidate source (IndexMode::kForce / kNever) so
  /// a bench row measures the path it names; use session().Prepare with
  /// the default IndexMode::kAuto to exercise the cost-based choice.
  Result<ExperimentRow> Run(Approach approach, const std::string& pattern,
                            size_t num_ans = 100, bool use_index = false,
                            bool use_projection = false,
                            size_t eval_threads = 1);

  /// Prepares a query for repeated execution against this dataset.
  Result<PreparedQuery> Prepare(Approach approach, const QueryOptions& q) {
    return session_->Prepare(approach, q);
  }

  const OcrDataset& dataset() const { return dataset_; }
  /// The single-partition database (valid only when spec.shards == 1).
  StaccatoDb& db() { return *db_; }
  /// The sharded database, or null when spec.shards == 1.
  ShardedDb* sharded() { return sharded_.get(); }
  Session& session() { return *session_; }
  const WorkbenchSpec& spec() const { return spec_; }

 private:
  Status DropCaches();
  Result<std::set<DocId>> GroundTruthFor(const std::string& pattern);

  WorkbenchSpec spec_;
  OcrDataset dataset_;
  std::unique_ptr<StaccatoDb> db_;        // spec.shards == 1
  std::unique_ptr<ShardedDb> sharded_;    // spec.shards > 1
  std::unique_ptr<Session> session_;
};

/// Makes a fresh scratch directory under the system temp dir.
std::string MakeScratchDir(const std::string& hint);

/// Paper-style fixed-width table printing helpers for the bench binaries.
void PrintHeader(const std::string& title);
void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths);

}  // namespace staccato::eval
