// BufferCache: the engine's one shared, memory-budgeted block cache.
//
// A sharded LRU cache over immutable byte blocks, sitting between the
// on-disk storage (HeapTable pages, BlobStore transducer blobs) and the
// execution layer. The design is the classic storage-engine shard cache
// (LevelDB/RocksDB lineage):
//
//   * Sharding. Keys hash to one of N shards (power of two), each with
//     its own mutex, hash table, and intrusive LRU list, so concurrent
//     Fetch workers contend only when they land on the same shard.
//   * Strict budget. Every resident entry is charged its value bytes
//     plus a fixed bookkeeping overhead against its shard's slice of the
//     budget (budget_bytes / shards, so the total can never exceed the
//     budget). Inserting evicts cold entries until the charge fits; if
//     it still does not fit — every resident entry is pinned — the
//     insert is refused and the bytes are handed back on a *detached*
//     handle instead, so callers always get their data and the budget is
//     never exceeded.
//   * Pinnable handles. Lookup/Insert return a Handle that pins the
//     entry: pinned entries leave the LRU list and cannot be evicted
//     (their bytes stay valid for exactly as long as the handle lives),
//     which is what lets executor workers borrow cached blob bytes
//     zero-copy during a DP. Releasing the last pin re-appends the entry
//     to the hot end of its shard's LRU list.
//   * Scan resistance (segmented LRU). Each shard keeps two LRU
//     segments: new entries enter a probation segment, and only an entry
//     that is re-referenced while resident is promoted to the protected
//     segment (capped at half the shard budget; overflow demotes back to
//     probation). Eviction drains probation first, so a sequential scan
//     larger than the budget — every block inserted once, never touched
//     again — churns probation and leaves the re-referenced working set
//     (hot SFA blobs during a shard scan) resident.
//   * Invalidation by key, not by flush. Keys carry a version word (the
//     database's load generation for blobs, a per-table-instance id for
//     pages), so data replacement invalidates by construction: the new
//     keys simply never match the old entries, which age out via LRU.
//     Clear() exists for explicit cold-start (StaccatoDb::DropCaches).
//
// Concurrency: every public operation is safe from any thread. Handle
// objects themselves are not synchronized (one handle, one thread) and
// must not outlive the cache.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace staccato::cache {

/// \brief Fixed-width cache key: an entry namespace (`space`, e.g. a table
/// instance or blob representation), an id within it (page number, doc),
/// and a version word that makes stale data unreachable (load generation).
struct CacheKey {
  uint64_t space = 0;
  uint64_t id = 0;
  uint64_t version = 0;

  bool operator==(const CacheKey& o) const {
    return space == o.space && id == o.id && version == o.version;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& k) const;
};

/// Spaces at the very top of the 64-bit range are reserved for
/// process-wide blob representations (rdbms/blob_store.h assigns them
/// downward from ~0 - 1); per-table page namespaces count upward from 1
/// and can never reach them. Telemetry uses the split to attribute
/// resident cache bytes per class without this layer knowing about the
/// rdbms layer.
inline constexpr uint64_t kReservedSpaceBase = ~uint64_t{0} - 15;

/// \brief Sizing knob for the database-owned cache. `budget_bytes == 0`
/// disables caching entirely (the database then reads storage directly,
/// with bit-identical answers). `shards == 0` picks the default shard
/// count; any other value is rounded up to a power of two.
struct CacheConfig {
  static constexpr size_t kDefaultBudgetBytes = 64ull << 20;  // 64 MiB

  size_t budget_bytes = kDefaultBudgetBytes;
  size_t shards = 0;

  /// The default configuration, honoring the STACCATO_CACHE_MB
  /// environment variable when it parses as a nonnegative integer
  /// (megabytes; 0 disables the cache).
  static CacheConfig Default();
};

/// \brief Aggregate counters, cheap enough to snapshot per query.
/// hits/misses/... are lifetime totals; bytes_in_use / entries /
/// pinned_entries are the current residency.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t rejected = 0;  ///< inserts refused: pinned entries held the budget
  uint64_t bytes_in_use = 0;
  uint64_t entries = 0;
  uint64_t pinned_entries = 0;
};

/// \brief The sharded memory-budgeted LRU block cache.
class BufferCache {
 public:
  /// Per-entry bookkeeping charged against the budget on top of the value
  /// bytes (Entry struct + hash-table node, rounded up).
  static constexpr size_t kEntryOverhead = 128;

  class Handle;

  /// `shards == 0` picks kDefaultShards; counts round up to a power of
  /// two. Each shard owns budget_bytes / shards.
  explicit BufferCache(size_t budget_bytes, size_t shards = 0);
  ~BufferCache();
  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  /// Returns a pinned handle to the entry under `key`, or an empty handle
  /// on miss. A hit moves the entry off its shard's LRU list until the
  /// last handle releases it.
  Handle Lookup(const CacheKey& key);

  /// Inserts `value` under `key` (replacing any existing entry) and
  /// returns a pinned handle to it. Evicts cold entries to make room; if
  /// the charge cannot fit even then (the shard is full of pinned
  /// entries, or the value alone exceeds the shard budget), the entry is
  /// NOT cached and the returned handle owns the bytes detached — the
  /// caller's read always succeeds, the budget is never exceeded.
  Handle Insert(const CacheKey& key, std::string value);

  /// Drops the entry under `key`, if any. Pinned entries are detached
  /// from the cache immediately (uncharged) and freed when the last
  /// handle releases them.
  void Erase(const CacheKey& key);

  /// Drops every entry whose key.space matches (e.g. all pages of one
  /// table instance).
  void EraseSpace(uint64_t space);

  /// Drops every entry (DropCaches / cold-start). Pinned entries detach
  /// as in Erase.
  void Clear();

  CacheStats stats() const;
  /// Current charged residency alone — O(shards), no table walk; what
  /// per-query stats snapshot instead of the full stats().
  uint64_t bytes_in_use() const;
  size_t budget_bytes() const { return budget_; }
  size_t num_shards() const { return shards_.size(); }

  /// A handle that owns `value` outside any cache — what cacheless read
  /// paths return so callers can treat cached and uncached reads
  /// uniformly.
  static Handle Detached(std::string value);

 private:
  struct Entry;
  struct Shard;

  Shard& ShardFor(const CacheKey& key);
  /// Handle destructor back-end: drop one pin.
  static void Release(Entry* e);

  const size_t budget_;
  size_t shard_mask_ = 0;
  std::vector<Shard*> shards_;  // owned; raw so Shard can stay private
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

/// \brief A pin on one cache entry (or on a detached value). Move-only;
/// the pinned bytes stay valid exactly as long as the handle lives. Not
/// synchronized — one handle belongs to one thread at a time.
class BufferCache::Handle {
 public:
  Handle() = default;
  Handle(Handle&& o) noexcept : entry_(o.entry_) { o.entry_ = nullptr; }
  Handle& operator=(Handle&& o) noexcept {
    if (this != &o) {
      Reset();
      entry_ = o.entry_;
      o.entry_ = nullptr;
    }
    return *this;
  }
  ~Handle() { Reset(); }
  Handle(const Handle&) = delete;
  Handle& operator=(const Handle&) = delete;

  explicit operator bool() const { return entry_ != nullptr; }

  /// The pinned bytes. Valid only while the handle is non-empty.
  const std::string& value() const;

  /// Drops the pin (the handle becomes empty).
  void Reset() {
    if (entry_ != nullptr) {
      BufferCache::Release(entry_);
      entry_ = nullptr;
    }
  }

 private:
  friend class BufferCache;
  explicit Handle(Entry* entry) : entry_(entry) {}

  Entry* entry_ = nullptr;
};

}  // namespace staccato::cache
