#include "cache/buffer_cache.h"

#include <cstdlib>
#include <limits>
#include <unordered_map>

#include "telemetry/metrics_registry.h"
#include "util/mutex.h"

namespace staccato::cache {

namespace {

constexpr size_t kDefaultShards = 16;
constexpr size_t kMaxShards = 256;

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash step.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Process-global cache metrics, shared by every BufferCache instance
/// (per-instance figures stay in stats()). The byte gauges are split by
/// space class so one scrape shows blob bytes and table-page bytes
/// competing for the budget.
struct CacheMetrics {
  telemetry::Counter* hits;
  telemetry::Counter* misses;
  telemetry::Counter* inserts;
  telemetry::Counter* evictions;
  telemetry::Counter* rejected;
  telemetry::Gauge* blob_bytes;
  telemetry::Gauge* page_bytes;
};

const CacheMetrics& Metrics() {
  static const CacheMetrics m = [] {
    auto& r = telemetry::MetricsRegistry::Global();
    CacheMetrics cm;
    cm.hits = r.GetCounter("staccato_cache_hits_total");
    cm.misses = r.GetCounter("staccato_cache_misses_total");
    cm.inserts = r.GetCounter("staccato_cache_inserts_total");
    cm.evictions = r.GetCounter("staccato_cache_evictions_total");
    cm.rejected = r.GetCounter("staccato_cache_rejected_total");
    cm.blob_bytes = r.GetGauge("staccato_cache_bytes{space=\"blob\"}");
    cm.page_bytes = r.GetGauge("staccato_cache_bytes{space=\"page\"}");
    return cm;
  }();
  return m;
}

telemetry::Gauge* BytesGauge(uint64_t space) {
  const CacheMetrics& m = Metrics();
  return space >= kReservedSpaceBase ? m.blob_bytes : m.page_bytes;
}

}  // namespace

size_t CacheKeyHash::operator()(const CacheKey& k) const {
  return static_cast<size_t>(Mix(k.space ^ Mix(k.id ^ Mix(k.version))));
}

CacheConfig CacheConfig::Default() {
  CacheConfig cfg;
  if (const char* env = std::getenv("STACCATO_CACHE_MB")) {
    char* end = nullptr;
    unsigned long long mb = std::strtoull(env, &end, 10);
    // strtoull wraps a leading '-' instead of failing; a negative knob
    // must not become a near-unbounded budget.
    if (env[0] != '-' && end != env && *end == '\0' &&
        mb <= (std::numeric_limits<size_t>::max() >> 20)) {
      cfg.budget_bytes = static_cast<size_t>(mb) << 20;
    }
  }
  return cfg;
}

struct BufferCache::Entry {
  CacheKey key;
  std::string value;
  size_t charge = 0;
  uint32_t refs = 0;      ///< outstanding handles, +1 while in the table
  bool in_cache = false;  ///< still reachable through the shard table
  /// Segmented-LRU state: false = probation (inserted, not re-referenced
  /// since), true = protected (hit at least once while resident). For an
  /// on-list entry the flag names its list; for a pinned (off-list)
  /// entry it names the list Release will append it to. Flipped only
  /// while off-list, so list accounting can trust it.
  bool hot = false;
  Shard* shard = nullptr;  ///< null = detached (handle is the sole owner)
  // Intrusive LRU links; non-null prev means "on the list" (evictable).
  Entry* prev = nullptr;
  Entry* next = nullptr;
};

struct BufferCache::Shard {
  util::Mutex mu;
  std::unordered_map<CacheKey, Entry*, CacheKeyHash> table GUARDED_BY(mu);
  /// Segmented LRU (scan resistance): two lists per shard, each a
  /// sentinel with next = coldest, prev = hottest. New entries enter
  /// `probation`; an entry that gets a Lookup hit is promoted to
  /// `shielded` when its last pin drops. Eviction drains probation
  /// first, so a below-budget sequential scan — whose pages are
  /// inserted once and never re-referenced — churns only the probation
  /// segment and cannot flush the re-referenced working set. The
  /// shielded segment is capped at half the shard budget; overflow
  /// demotes its coldest entries back to probation (hot end), where
  /// they outlive the scan's single-touch pages but can eventually age
  /// out. The intrusive prev/next links of every entry in this shard
  /// are guarded by `mu` — Entry has no mutex of its own, so the
  /// REQUIRES(mu) on the list-manipulation helpers below is what
  /// encodes that.
  Entry probation GUARDED_BY(mu);
  Entry shielded GUARDED_BY(mu);
  const size_t capacity;  ///< set once at construction; immutable after
  const size_t shielded_cap;  ///< budget slice of the protected segment
  size_t usage GUARDED_BY(mu) = 0;  ///< Σ charge of in-cache entries
  size_t shielded_usage GUARDED_BY(mu) = 0;  ///< Σ charge on `shielded`
  uint64_t inserts GUARDED_BY(mu) = 0;
  uint64_t evictions GUARDED_BY(mu) = 0;
  uint64_t rejected GUARDED_BY(mu) = 0;

  explicit Shard(size_t cap) : capacity(cap), shielded_cap(cap / 2) {
    probation.prev = &probation;
    probation.next = &probation;
    shielded.prev = &shielded;
    shielded.next = &shielded;
  }

  void ListRemove(Entry* e) REQUIRES(mu) {
    if (e->hot) shielded_usage -= e->charge;
    e->prev->next = e->next;
    e->next->prev = e->prev;
    e->prev = nullptr;
    e->next = nullptr;
  }

  /// Appends at the hot (sentinel.prev) end of the list `e->hot` names,
  /// then demotes shielded overflow back to probation.
  void AppendHot(Entry* e) REQUIRES(mu) {
    Entry* list = e->hot ? &shielded : &probation;
    e->prev = list->prev;
    e->next = list;
    list->prev->next = e;
    list->prev = e;
    if (e->hot) {
      shielded_usage += e->charge;
      while (shielded_usage > shielded_cap && shielded.next != &shielded) {
        Entry* demoted = shielded.next;  // coldest of the protected set
        ListRemove(demoted);
        demoted->hot = false;
        AppendHot(demoted);  // probation hot end
      }
    }
  }

  /// The next eviction victim: probation coldest first, the protected
  /// segment only once probation is empty. Null when both lists are.
  Entry* EvictionVictim() REQUIRES(mu) {
    if (probation.next != &probation) return probation.next;
    if (shielded.next != &shielded) return shielded.next;
    return nullptr;
  }

  /// Removes `e` from the table, its LRU list, and accounting; frees it
  /// unless handles still pin it.
  void FinishErase(Entry* e) REQUIRES(mu) {
    table.erase(e->key);
    if (e->prev != nullptr) ListRemove(e);
    usage -= e->charge;
    BytesGauge(e->key.space)->Add(-static_cast<int64_t>(e->charge));
    e->in_cache = false;
    --e->refs;  // drop the table's reference
    if (e->refs == 0) delete e;
    // else: outstanding handles keep the (now uncharged) bytes alive
    // until the last Release.
  }
};

BufferCache::BufferCache(size_t budget_bytes, size_t shards)
    : budget_(budget_bytes) {
  size_t n = RoundUpPow2(shards == 0 ? kDefaultShards : shards);
  if (n > kMaxShards) n = kMaxShards;
  // Never hand a shard a zero budget while the cache as a whole has one:
  // with fewer shards than budget bytes, collapse the shard count instead.
  while (n > 1 && budget_bytes / n == 0) n >>= 1;
  shard_mask_ = n - 1;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(new Shard(budget_bytes / n));
  }
}

BufferCache::~BufferCache() {
  // All handles must have been released by now (they pin entries whose
  // shard pointers die with us). Locking each shard is moot at this point
  // but keeps the guarded-field accesses honest.
  for (Shard* sh : shards_) {
    {
      util::MutexLock lock(&sh->mu);
      for (auto& [key, entry] : sh->table) {
        // Deleted without FinishErase, so the global byte gauges must be
        // unwound here or a destroyed cache leaks phantom resident bytes.
        BytesGauge(key.space)->Add(-static_cast<int64_t>(entry->charge));
        delete entry;
      }
      sh->table.clear();
    }
    delete sh;
  }
}

BufferCache::Shard& BufferCache::ShardFor(const CacheKey& key) {
  return *shards_[CacheKeyHash{}(key) & shard_mask_];
}

const std::string& BufferCache::Handle::value() const { return entry_->value; }

void BufferCache::Release(Entry* e) {
  Shard* sh = e->shard;
  if (sh == nullptr) {  // detached: the handle was the sole owner
    delete e;
    return;
  }
  util::MutexLock lock(&sh->mu);
  --e->refs;
  if (e->refs == 0) {
    delete e;  // was erased/evicted while pinned
  } else if (e->refs == 1 && e->in_cache) {
    // Last external pin gone: the entry becomes evictable again, at the
    // hot end (it was just in use).
    sh->AppendHot(e);
  }
}

BufferCache::Handle BufferCache::Lookup(const CacheKey& key) {
  Shard& sh = ShardFor(key);
  util::MutexLock lock(&sh.mu);
  auto it = sh.table.find(key);
  if (it == sh.table.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    Metrics().misses->Increment();
    return Handle();
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  Metrics().hits->Increment();
  Entry* e = it->second;
  ++e->refs;
  if (e->prev != nullptr) sh.ListRemove(e);  // pinned: off the LRU list
  // A hit is a re-reference: the entry has earned the protected segment.
  // Flipped while off-list (Release appends to the list the flag names).
  e->hot = true;
  return Handle(e);
}

BufferCache::Handle BufferCache::Insert(const CacheKey& key,
                                        std::string value) {
  Shard& sh = ShardFor(key);
  auto* e = new Entry();
  e->key = key;
  e->value = std::move(value);
  e->charge = e->value.size() + kEntryOverhead;
  util::MutexLock lock(&sh.mu);
  // Replace-any-existing-entry holds on every path, including the reject
  // below — a refused insert must not leave a superseded value readable.
  auto it = sh.table.find(key);
  if (it != sh.table.end()) sh.FinishErase(it->second);
  if (e->charge > sh.capacity) {
    // The value alone can never fit: refuse before flushing every
    // resident entry of the shard for nothing.
    ++sh.rejected;
    Metrics().rejected->Increment();
    e->refs = 1;
    return Handle(e);  // shard stays null: detached
  }
  while (sh.usage + e->charge > sh.capacity) {
    Entry* victim = sh.EvictionVictim();  // probation coldest first
    if (victim == nullptr) break;
    sh.FinishErase(victim);
    ++sh.evictions;
    Metrics().evictions->Increment();
  }
  if (sh.usage + e->charge > sh.capacity) {
    // Strict budget: every resident entry is pinned (or the value alone
    // exceeds the shard slice). Hand the bytes back uncached.
    ++sh.rejected;
    Metrics().rejected->Increment();
    e->refs = 1;
    return Handle(e);  // shard stays null: detached
  }
  e->shard = &sh;
  e->in_cache = true;
  e->refs = 2;  // the table + the returned handle
  sh.table.emplace(e->key, e);
  sh.usage += e->charge;
  ++sh.inserts;
  Metrics().inserts->Increment();
  BytesGauge(e->key.space)->Add(static_cast<int64_t>(e->charge));
  return Handle(e);
}

void BufferCache::Erase(const CacheKey& key) {
  Shard& sh = ShardFor(key);
  util::MutexLock lock(&sh.mu);
  auto it = sh.table.find(key);
  if (it != sh.table.end()) sh.FinishErase(it->second);
}

void BufferCache::EraseSpace(uint64_t space) {
  for (Shard* sh : shards_) {
    util::MutexLock lock(&sh->mu);
    std::vector<Entry*> doomed;
    for (auto& [key, entry] : sh->table) {
      if (key.space == space) doomed.push_back(entry);
    }
    for (Entry* e : doomed) sh->FinishErase(e);
  }
}

void BufferCache::Clear() {
  for (Shard* sh : shards_) {
    util::MutexLock lock(&sh->mu);
    std::vector<Entry*> doomed;
    doomed.reserve(sh->table.size());
    for (auto& [key, entry] : sh->table) doomed.push_back(entry);
    for (Entry* e : doomed) sh->FinishErase(e);
  }
}

CacheStats BufferCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  for (Shard* sh : shards_) {
    util::MutexLock lock(&sh->mu);
    s.inserts += sh->inserts;
    s.evictions += sh->evictions;
    s.rejected += sh->rejected;
    s.bytes_in_use += sh->usage;
    s.entries += sh->table.size();
    for (const auto& [key, entry] : sh->table) {
      if (entry->refs > 1) ++s.pinned_entries;
    }
  }
  return s;
}

uint64_t BufferCache::bytes_in_use() const {
  uint64_t total = 0;
  for (Shard* sh : shards_) {
    util::MutexLock lock(&sh->mu);
    total += sh->usage;
  }
  return total;
}

BufferCache::Handle BufferCache::Detached(std::string value) {
  auto* e = new Entry();
  e->value = std::move(value);
  e->refs = 1;
  return Handle(e);
}

}  // namespace staccato::cache
