#include "cache/buffer_cache.h"

#include <cstdlib>
#include <limits>
#include <mutex>
#include <unordered_map>

namespace staccato::cache {

namespace {

constexpr size_t kDefaultShards = 16;
constexpr size_t kMaxShards = 256;

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash step.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

size_t CacheKeyHash::operator()(const CacheKey& k) const {
  return static_cast<size_t>(Mix(k.space ^ Mix(k.id ^ Mix(k.version))));
}

CacheConfig CacheConfig::Default() {
  CacheConfig cfg;
  if (const char* env = std::getenv("STACCATO_CACHE_MB")) {
    char* end = nullptr;
    unsigned long long mb = std::strtoull(env, &end, 10);
    // strtoull wraps a leading '-' instead of failing; a negative knob
    // must not become a near-unbounded budget.
    if (env[0] != '-' && end != env && *end == '\0' &&
        mb <= (std::numeric_limits<size_t>::max() >> 20)) {
      cfg.budget_bytes = static_cast<size_t>(mb) << 20;
    }
  }
  return cfg;
}

struct BufferCache::Entry {
  CacheKey key;
  std::string value;
  size_t charge = 0;
  uint32_t refs = 0;      ///< outstanding handles, +1 while in the table
  bool in_cache = false;  ///< still reachable through the shard table
  Shard* shard = nullptr;  ///< null = detached (handle is the sole owner)
  // Intrusive LRU links; non-null prev means "on the list" (evictable).
  Entry* prev = nullptr;
  Entry* next = nullptr;
};

struct BufferCache::Shard {
  mutable std::mutex mu;
  std::unordered_map<CacheKey, Entry*, CacheKeyHash> table;
  Entry lru;  ///< sentinel: lru.next = coldest, lru.prev = hottest
  size_t capacity = 0;
  size_t usage = 0;  ///< Σ charge of in-cache entries (pinned included)
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t rejected = 0;

  Shard() {
    lru.prev = &lru;
    lru.next = &lru;
  }

  static void ListRemove(Entry* e) {
    e->prev->next = e->next;
    e->next->prev = e->prev;
    e->prev = nullptr;
    e->next = nullptr;
  }

  /// Appends at the hot (sentinel.prev) end.
  void AppendHot(Entry* e) {
    e->prev = lru.prev;
    e->next = &lru;
    lru.prev->next = e;
    lru.prev = e;
  }
};

BufferCache::BufferCache(size_t budget_bytes, size_t shards)
    : budget_(budget_bytes) {
  size_t n = RoundUpPow2(shards == 0 ? kDefaultShards : shards);
  if (n > kMaxShards) n = kMaxShards;
  // Never hand a shard a zero budget while the cache as a whole has one:
  // with fewer shards than budget bytes, collapse the shard count instead.
  while (n > 1 && budget_bytes / n == 0) n >>= 1;
  shard_mask_ = n - 1;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto* sh = new Shard();
    sh->capacity = budget_bytes / n;
    shards_.push_back(sh);
  }
}

BufferCache::~BufferCache() {
  // All handles must have been released by now (they pin entries whose
  // shard pointers die with us).
  for (Shard* sh : shards_) {
    for (auto& [key, entry] : sh->table) delete entry;
    delete sh;
  }
}

BufferCache::Shard& BufferCache::ShardFor(const CacheKey& key) {
  return *shards_[CacheKeyHash{}(key) & shard_mask_];
}

const std::string& BufferCache::Handle::value() const { return entry_->value; }

void BufferCache::Release(Entry* e) {
  Shard* sh = e->shard;
  if (sh == nullptr) {  // detached: the handle was the sole owner
    delete e;
    return;
  }
  std::lock_guard<std::mutex> lock(sh->mu);
  --e->refs;
  if (e->refs == 0) {
    delete e;  // was erased/evicted while pinned
  } else if (e->refs == 1 && e->in_cache) {
    // Last external pin gone: the entry becomes evictable again, at the
    // hot end (it was just in use).
    sh->AppendHot(e);
  }
}

void BufferCache::FinishEraseLocked(Shard& sh, Entry* e) {
  sh.table.erase(e->key);
  if (e->prev != nullptr) Shard::ListRemove(e);
  sh.usage -= e->charge;
  e->in_cache = false;
  --e->refs;  // drop the table's reference
  if (e->refs == 0) delete e;
  // else: outstanding handles keep the (now uncharged) bytes alive until
  // the last Release.
}

BufferCache::Handle BufferCache::Lookup(const CacheKey& key) {
  Shard& sh = ShardFor(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.table.find(key);
  if (it == sh.table.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Handle();
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  Entry* e = it->second;
  ++e->refs;
  if (e->prev != nullptr) Shard::ListRemove(e);  // pinned: off the LRU list
  return Handle(e);
}

BufferCache::Handle BufferCache::Insert(const CacheKey& key,
                                        std::string value) {
  Shard& sh = ShardFor(key);
  auto* e = new Entry();
  e->key = key;
  e->value = std::move(value);
  e->charge = e->value.size() + kEntryOverhead;
  std::lock_guard<std::mutex> lock(sh.mu);
  // Replace-any-existing-entry holds on every path, including the reject
  // below — a refused insert must not leave a superseded value readable.
  auto it = sh.table.find(key);
  if (it != sh.table.end()) FinishEraseLocked(sh, it->second);
  if (e->charge > sh.capacity) {
    // The value alone can never fit: refuse before flushing every
    // resident entry of the shard for nothing.
    ++sh.rejected;
    e->refs = 1;
    return Handle(e);  // shard stays null: detached
  }
  while (sh.usage + e->charge > sh.capacity && sh.lru.next != &sh.lru) {
    FinishEraseLocked(sh, sh.lru.next);  // coldest first
    ++sh.evictions;
  }
  if (sh.usage + e->charge > sh.capacity) {
    // Strict budget: every resident entry is pinned (or the value alone
    // exceeds the shard slice). Hand the bytes back uncached.
    ++sh.rejected;
    e->refs = 1;
    return Handle(e);  // shard stays null: detached
  }
  e->shard = &sh;
  e->in_cache = true;
  e->refs = 2;  // the table + the returned handle
  sh.table.emplace(e->key, e);
  sh.usage += e->charge;
  ++sh.inserts;
  return Handle(e);
}

void BufferCache::Erase(const CacheKey& key) {
  Shard& sh = ShardFor(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.table.find(key);
  if (it != sh.table.end()) FinishEraseLocked(sh, it->second);
}

void BufferCache::EraseSpace(uint64_t space) {
  for (Shard* sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    std::vector<Entry*> doomed;
    for (auto& [key, entry] : sh->table) {
      if (key.space == space) doomed.push_back(entry);
    }
    for (Entry* e : doomed) FinishEraseLocked(*sh, e);
  }
}

void BufferCache::Clear() {
  for (Shard* sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    std::vector<Entry*> doomed;
    doomed.reserve(sh->table.size());
    for (auto& [key, entry] : sh->table) doomed.push_back(entry);
    for (Entry* e : doomed) FinishEraseLocked(*sh, e);
  }
}

CacheStats BufferCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  for (Shard* sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    s.inserts += sh->inserts;
    s.evictions += sh->evictions;
    s.rejected += sh->rejected;
    s.bytes_in_use += sh->usage;
    s.entries += sh->table.size();
    for (const auto& [key, entry] : sh->table) {
      if (entry->refs > 1) ++s.pinned_entries;
    }
  }
  return s;
}

uint64_t BufferCache::bytes_in_use() const {
  uint64_t total = 0;
  for (Shard* sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    total += sh->usage;
  }
  return total;
}

BufferCache::Handle BufferCache::Detached(std::string value) {
  auto* e = new Entry();
  e->value = std::move(value);
  e->refs = 1;
  return Handle(e);
}

}  // namespace staccato::cache
