// Dictionary-based inverted indexing over OCR transducers (Section 4).
//
// Directly indexing an SFA is hopeless (the number of represented terms is
// exponential); Staccato instead indexes only dictionary terms and uses the
// left anchor of a regex to prune the filescan. This example builds the
// index over a Congress-Acts dataset and contrasts an anchored regex query
// run as a filescan vs. through the index.
#include <cstdio>

#include "automata/pattern.h"
#include "eval/workbench.h"
#include "indexing/index_builder.h"
#include "ocr/corpus.h"
#include "rdbms/staccato_db.h"

using namespace staccato;
using eval::Workbench;
using eval::WorkbenchSpec;
using rdbms::Approach;

int main() {
  WorkbenchSpec spec;
  spec.corpus.kind = DatasetKind::kCongressActs;
  spec.corpus.num_pages = 6;
  spec.corpus.lines_per_page = 40;
  spec.noise.alternatives = 8;
  spec.load.kmap_k = 10;
  spec.load.staccato = {25, 10, true};
  spec.build_index = true;

  printf("Loading CA dataset and building the dictionary index...\n");
  auto wb = Workbench::Create(spec);
  if (!wb.ok()) {
    fprintf(stderr, "%s\n", wb.status().ToString().c_str());
    return 1;
  }

  // Why a dictionary? Show the direct-indexing blowup on one SFA.
  auto sfa = (*wb)->db().LoadStaccatoSfa(0);
  if (sfa.ok()) {
    printf("\nDirect index of SFA #0 alone would hold ~%.2e postings;\n"
           "the dictionary index stores only real terms.\n",
           EstimateDirectIndexPostings(*sfa));
  }

  const std::string query = "Public Law (8|9)\\d";
  auto pattern = Pattern::Parse(query);
  printf("\nQuery: '%s'  (left anchor term: '%s')\n", query.c_str(),
         pattern->AnchorTerm().c_str());

  // The planner's view of the two physical alternatives (pinned), then
  // what the cost model picks on its own.
  for (rdbms::IndexMode mode :
       {rdbms::IndexMode::kNever, rdbms::IndexMode::kForce,
        rdbms::IndexMode::kAuto}) {
    rdbms::QueryOptions q;
    q.pattern = query;
    q.index_mode = mode;
    auto pq = (*wb)->Prepare(Approach::kStaccato, q);
    if (pq.ok()) {
      printf("\nindex_mode=%s:\n%s", rdbms::IndexModeName(mode),
             pq->Explain().c_str());
    }
  }

  auto scan = (*wb)->Run(Approach::kStaccato, query, 100, /*use_index=*/false);
  auto indexed = (*wb)->Run(Approach::kStaccato, query, 100, /*use_index=*/true);
  if (!scan.ok() || !indexed.ok()) {
    fprintf(stderr, "query failed\n");
    return 1;
  }
  printf("\n%-12s %10s %12s %10s %10s %12s\n", "mode", "time(ms)", "candidates",
         "recall", "precision", "selectivity");
  printf("%-12s %10.2f %12zu %10.2f %10.2f %11.1f%%\n", "filescan",
         scan->stats.seconds * 1e3, scan->stats.candidates, scan->quality.recall,
         scan->quality.precision, scan->stats.selectivity * 100);
  printf("%-12s %10.2f %12zu %10.2f %10.2f %11.1f%%\n", "indexed",
         indexed->stats.seconds * 1e3, indexed->stats.candidates,
         indexed->quality.recall, indexed->quality.precision,
         indexed->stats.selectivity * 100);

  printf("\nWith projection (fetch only the SFA region around each posting):\n");
  auto projected = (*wb)->Run(Approach::kStaccato, query, 100,
                              /*use_index=*/true, /*use_projection=*/true);
  if (projected.ok()) {
    printf("%-12s %10.2f %12zu %10.2f %10.2f\n", "projected",
           projected->stats.seconds * 1e3, projected->stats.candidates,
           projected->quality.recall, projected->quality.precision);
  }
  printf("\nThe index prunes the scan to the SFAs whose representation can\n"
         "actually contain the anchor term, at identical answer quality for\n"
         "anchored patterns.\n");
  return 0;
}
