// Quickstart: the Figure-1 example of the paper, end to end.
//
// Builds the small SFA produced by OCR of the word "Ford", shows that the
// MAP transcription ('F0 rd') misses the query 'Ford', and that querying
// the probabilistic model recovers the answer with probability ~0.12.
// Then it approximates the SFA with Staccato and shows the trade-off knob.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "automata/dfa.h"
#include "inference/kbest.h"
#include "inference/query_eval.h"
#include "sfa/sfa.h"
#include "staccato/chunking.h"

using namespace staccato;

int main() {
  // --- Build the Figure-1 SFA -------------------------------------------
  SfaBuilder b;
  NodeId n0 = b.AddNode(), n1 = b.AddNode(), n2 = b.AddNode(), n3 = b.AddNode(),
         n4 = b.AddNode(), n5 = b.AddNode();
  (void)b.AddTransition(n0, n1, "F", 0.8);
  (void)b.AddTransition(n0, n1, "T", 0.2);
  (void)b.AddTransition(n1, n2, "0", 0.6);
  (void)b.AddTransition(n1, n2, "o", 0.4);
  (void)b.AddTransition(n2, n3, " ", 0.6);
  (void)b.AddTransition(n2, n4, "r", 0.4);
  (void)b.AddTransition(n3, n4, "r", 0.8);
  (void)b.AddTransition(n3, n4, "m", 0.2);
  (void)b.AddTransition(n4, n5, "d", 0.9);
  (void)b.AddTransition(n4, n5, "3", 0.1);
  b.SetStart(n0);
  b.SetFinal(n5);
  auto sfa = b.Build(/*require_stochastic=*/true);
  if (!sfa.ok()) {
    fprintf(stderr, "build failed: %s\n", sfa.status().ToString().c_str());
    return 1;
  }
  printf("SFA: %zu nodes, %zu edges, %zu transitions, total mass %.3f\n",
         sfa->NumNodes(), sfa->NumEdges(), sfa->NumTransitions(),
         sfa->TotalMass());

  // --- MAP: what a conventional OCR pipeline would store -----------------
  auto map = MapString(*sfa);
  printf("\nMAP transcription: '%s' (p = %.3f)\n", map->str.c_str(), map->prob);

  // --- The query: SELECT ... WHERE DocData LIKE '%Ford%' ------------------
  auto dfa = Dfa::Compile("Ford", MatchMode::kContains);
  printf("\nQuery LIKE '%%Ford%%':\n");
  printf("  on MAP text:    %s\n",
         dfa->Matches(map->str) ? "MATCH" : "no match (answer lost!)");
  double p_full = EvalSfaQuery(*sfa, *dfa);
  printf("  on full SFA:    match probability %.4f\n", p_full);

  // --- k-MAP: keep the top-k transcriptions -------------------------------
  printf("\nTop-5 transcriptions (k-MAP):\n");
  for (const ScoredString& s : KBestStrings(*sfa, 5)) {
    printf("  %-8s p=%.4f %s\n", ("'" + s.str + "'").c_str(), s.prob,
           dfa->Matches(s.str) ? "<- contains 'Ford'" : "");
  }

  // --- Staccato: the dial between MAP and the full model ------------------
  printf("\nStaccato approximations (k = 2):\n");
  for (size_t m : {1u, 2u, 4u}) {
    ApproxStats stats;
    auto approx = ApproximateSfa(*sfa, {m, 2, true}, &stats);
    if (!approx.ok()) continue;
    double p = EvalSfaQuery(*approx, *dfa);
    printf("  m=%zu: %2zu chunks, retained mass %.3f, Pr['Ford'] = %.4f\n", m,
           approx->NumEdges(), stats.retained_mass, p);
  }
  printf("\nIncreasing m (and k) moves smoothly from MAP-like recall to the\n"
         "full model, at a corresponding cost in stored data and query time.\n");
  return 0;
}
