// The recall-sensitive scholar scenario (Section 1): an English professor
// searching a digitized literature archive wants *every* occurrence of a
// term, not just the ones OCR transcribed correctly. This example loads the
// LT (English Literature) dataset and compares what each representation
// retrieves for the Table-6 literature queries, including the earliest page
// on which each term occurs — the kind of question where a recall miss
// silently corrupts scholarship.
#include <cstdio>

#include <algorithm>

#include "eval/workbench.h"
#include "ocr/corpus.h"
#include "rdbms/staccato_db.h"

using namespace staccato;
using eval::Workbench;
using eval::WorkbenchSpec;
using rdbms::Approach;

int main() {
  WorkbenchSpec spec;
  spec.corpus.kind = DatasetKind::kLiterature;
  spec.corpus.num_pages = 6;
  spec.corpus.lines_per_page = 40;
  spec.noise.alternatives = 8;
  spec.noise.p_error = 0.18;
  spec.load.kmap_k = 25;
  spec.load.staccato = {30, 15, true};

  printf("Digitizing a %zu-page literature archive (%zu lines)...\n",
         spec.corpus.num_pages, spec.corpus.num_pages * spec.corpus.lines_per_page);
  auto wb = Workbench::Create(spec);
  if (!wb.ok()) {
    fprintf(stderr, "%s\n", wb.status().ToString().c_str());
    return 1;
  }

  const auto& corpus = (*wb)->dataset().corpus;
  printf("\n%-14s %6s | %-18s | %-18s | %s\n", "query", "truth", "MAP recall",
         "STACCATO recall", "earliest page (MAP vs STACCATO vs truth)");
  for (const std::string& query :
       {std::string("Kerouac"), std::string("Brinkmann"),
        std::string("Third Reich"), std::string("19\\d\\d, \\d\\d")}) {
    auto map = (*wb)->Run(Approach::kMap, query);
    auto stac = (*wb)->Run(Approach::kStaccato, query);
    if (!map.ok() || !stac.ok()) continue;

    auto truth = (*wb)->db().GroundTruthFor(query);
    auto earliest_page = [&](const std::vector<Answer>& answers) -> int {
      int best = -1;
      for (const Answer& a : answers) {
        int page = static_cast<int>(corpus.page_of_line[a.doc]);
        if (best < 0 || page < best) best = page;
      }
      return best;
    };
    rdbms::QueryOptions q;
    q.pattern = query;
    auto map_ans = (*wb)->db().Query(Approach::kMap, q);
    auto stac_ans = (*wb)->db().Query(Approach::kStaccato, q);
    int truth_page = -1;
    for (DocId d : *truth) {
      int page = static_cast<int>(corpus.page_of_line[d]);
      if (truth_page < 0 || page < truth_page) truth_page = page;
    }
    printf("%-14s %6zu | recall %.2f        | recall %.2f        | %d vs %d vs %d\n",
           query.c_str(), map->truth_size, map->quality.recall,
           stac->quality.recall, earliest_page(*map_ans),
           earliest_page(*stac_ans), truth_page);
  }

  printf("\nWhen the MAP transcription garbles the earliest occurrence, the\n"
         "scholar dates the term too late; the probabilistic representation\n"
         "recovers it (at a tunable query-time cost).\n");
  return 0;
}
