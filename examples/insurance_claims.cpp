// The paper's motivating scenario (Section 2.1): an insurance company
// stores scanned claim forms and asks
//
//   SELECT DocID, Loss FROM Claims
//   WHERE Year = 2010 AND DocData LIKE '%Ford%';
//
// We simulate the scanned forms through the OCR channel, load all four
// representations into the mini-RDBMS, and compare what each approach
// retrieves against ground truth.
#include <cstdio>

#include "eval/workbench.h"
#include "ocr/generator.h"
#include "rdbms/session.h"
#include "rdbms/staccato_db.h"
#include "util/random.h"
#include "util/strings.h"

using namespace staccato;
using rdbms::Approach;
using rdbms::LoadOptions;
using rdbms::QueryOptions;
using rdbms::QueryStats;
using rdbms::StaccatoDb;

namespace {

// Hand-rolled claim-form corpus: some claims mention Ford, some don't.
OcrDataset MakeClaimsDataset() {
  std::vector<std::string> vehicles = {"Ford",  "Honda", "Toyota",
                                       "Dodge", "Chevy", "Buick"};
  std::vector<std::string> incidents = {"rear end collision", "hail damage",
                                        "parking lot scrape", "theft of parts",
                                        "flood damage",       "fire loss"};
  Rng rng(2010);
  OcrDataset ds;
  ds.corpus.name = "Claims";
  OcrNoiseModel noise;
  noise.p_error = 0.22;  // scanned forms are messy
  noise.alternatives = 8;
  for (int i = 0; i < 80; ++i) {
    std::string line = StringPrintf(
        "Claim %04d %s involving a %s vehicle loss %d00 dollars", 1000 + i,
        rng.Choice(incidents).c_str(), rng.Choice(vehicles).c_str(),
        static_cast<int>(rng.UniformInt(3, 99)));
    ds.corpus.lines.push_back(line);
    ds.corpus.page_of_line.push_back(static_cast<uint32_t>(i / 10));
    auto sfa = OcrLineToSfa(line, noise, &rng);
    if (sfa.ok()) ds.sfas.push_back(std::move(*sfa));
  }
  ds.corpus.num_pages = 8;
  return ds;
}

}  // namespace

int main() {
  printf("Scanning 80 claim forms through the OCR channel...\n");
  OcrDataset ds = MakeClaimsDataset();

  std::string dir = eval::MakeScratchDir("claims");
  auto db = StaccatoDb::Open(dir);
  if (!db.ok()) {
    fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  LoadOptions load;
  load.kmap_k = 10;
  load.staccato = {15, 10, true};
  if (Status st = (*db)->Load(ds, load); !st.ok()) {
    fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // The paper's statement runs verbatim through the prepared-query engine:
  // the Year equality filters candidates on MasterData (claims are dated
  // 2010 + page, so Year = 2010 keeps the first page of forms) before any
  // SFA is fetched or evaluated.
  const std::string sql =
      "SELECT DocID, Loss FROM Claims "
      "WHERE Year = 2010 AND DocData LIKE '%Ford%';";
  printf("\nSQL: %s\n", sql.c_str());
  rdbms::Session session(db->get());
  auto prepared = session.PrepareSql(rdbms::Approach::kStaccato, sql);
  if (!prepared.ok()) {
    fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
    return 1;
  }
  printf("\n%s\n", prepared->Explain().c_str());
  QueryStats sql_stats;
  auto year_2010 = prepared->Execute(&sql_stats);
  if (!year_2010.ok()) {
    fprintf(stderr, "%s\n", year_2010.status().ToString().c_str());
    return 1;
  }
  printf("Year = 2010 claims matching 'Ford' (of %zu candidate forms):\n",
         sql_stats.candidates);
  for (const Answer& ans : *year_2010) {
    printf("  DocID %3llu  Pr = %.3g  %s\n",
           static_cast<unsigned long long>(ans.doc), ans.prob,
           ds.corpus.lines[ans.doc].substr(0, 44).c_str());
  }
  printf("  (plan: %s)\n", sql_stats.plan_summary.c_str());

  const std::string& pattern = prepared->plan().pattern;
  auto truth = (*db)->GroundTruthFor(pattern);
  printf("Ground truth: %zu claims actually mention 'Ford'\n\n", truth->size());

  printf("%-10s %8s %8s %8s %10s\n", "approach", "found", "recall", "prec",
         "time(ms)");
  for (Approach a : {Approach::kMap, Approach::kKMap, Approach::kFullSfa,
                     Approach::kStaccato}) {
    QueryOptions q;
    q.pattern = pattern;
    QueryStats stats;
    auto answers = (*db)->Query(a, q, &stats);
    if (!answers.ok()) continue;
    size_t hits = 0;
    for (const Answer& ans : *answers) hits += truth->count(ans.doc);
    double recall = truth->empty() ? 1.0 : double(hits) / double(truth->size());
    double prec = answers->empty() ? 0.0 : double(hits) / double(answers->size());
    printf("%-10s %8zu %8.2f %8.2f %10.2f\n", rdbms::ApproachName(a),
           answers->size(), recall, prec, stats.seconds * 1e3);
  }

  printf("\nTop Staccato answers (probabilistic relation):\n");
  QueryOptions q;
  q.pattern = pattern;
  auto answers = (*db)->Query(Approach::kStaccato, q);
  int shown = 0;
  for (const Answer& ans : *answers) {
    printf("  DocID %3llu  Pr = %.3g  %s  truth: %s\n",
           static_cast<unsigned long long>(ans.doc), ans.prob,
           ds.corpus.lines[ans.doc].substr(0, 44).c_str(),
           truth->count(ans.doc) ? "yes" : "NO");
    if (++shown >= 8) break;
  }
  printf("\nThe MAP approach silently drops claims whose OCR misread 'Ford'\n"
         "(e.g. as 'F0rd'); the probabilistic representations recover them.\n");
  return 0;
}
