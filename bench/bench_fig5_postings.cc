// Figure 5: why direct indexing of SFAs is hopeless. The number of
// postings a direct (dictionary-free) index would need for ONE SFA grows
// polynomially with k but exponentially with m — the paper sees the count
// overflow 64 bits at m=60, k=50.
#include <cstdio>

#include "eval/workbench.h"
#include "indexing/index_builder.h"
#include "ocr/corpus.h"
#include "ocr/generator.h"
#include "staccato/chunking.h"
#include "util/random.h"

using namespace staccato;

int main() {
  // One OCR line, as in the paper.
  Rng rng(31);
  OcrNoiseModel noise;
  noise.alternatives = 16;
  auto sfa = OcrLineToSfa(
      "the Commission report on employment and public welfare acts", noise,
      &rng);
  if (!sfa.ok()) {
    fprintf(stderr, "%s\n", sfa.status().ToString().c_str());
    return 1;
  }

  eval::PrintHeader("Figure 5(A): direct-index postings of one SFA, fixed m, varying k");
  printf("%8s | %14s %14s\n", "k", "m=5", "m=20");
  for (size_t k : {1u, 10u, 25u, 50u, 75u, 100u}) {
    printf("%8zu |", k);
    for (size_t m : {5u, 20u}) {
      auto approx = ApproximateSfa(*sfa, {m, k, true});
      if (!approx.ok()) return 1;
      printf(" %14.3e", EstimateDirectIndexPostings(*approx));
    }
    printf("\n");
  }

  eval::PrintHeader("Figure 5(B): fixed k, varying m (note the exponential blowup)");
  printf("%8s | %14s %14s %10s\n", "m", "k=10", "k=50", "64-bit?");
  for (size_t m : {1u, 10u, 20u, 40u, 60u, 80u, 100u}) {
    double p10 = 0, p50 = 0;
    for (size_t k : {10u, 50u}) {
      auto approx = ApproximateSfa(*sfa, {m, k, true});
      if (!approx.ok()) return 1;
      double v = EstimateDirectIndexPostings(*approx);
      (k == 10 ? p10 : p50) = v;
    }
    printf("%8zu | %14.3e %14.3e %10s\n", m, p10, p50,
           p50 > 1.8e19 ? "OVERFLOW" : "fits");
  }
  printf("\nAs in the paper, the posting count overflows a 64-bit counter\n"
         "well before m reaches the SFA's edge count — hence the dictionary.\n");
  return 0;
}
