// Table 2: dataset statistics. The paper reports, per dataset, the number
// of pages, the number of SFAs (one per scanned line), and the size of the
// data as SFAs vs as plain text — the ~6000x blowup is the whole reason
// the approximation exists.
#include <cstdio>

#include "eval/workbench.h"
#include "ocr/corpus.h"
#include "util/strings.h"

using namespace staccato;

int main() {
  eval::PrintHeader("Table 2: dataset statistics");
  printf("%-18s %8s %8s %14s %12s %8s\n", "Dataset", "Pages", "SFAs",
         "Size as SFAs", "as Text", "blowup");
  struct Row {
    DatasetKind kind;
    const char* label;
  };
  for (const Row& row : {Row{DatasetKind::kCongressActs, "Cong. Acts (CA)"},
                         Row{DatasetKind::kLiterature, "English Lit. (LT)"},
                         Row{DatasetKind::kDbPapers, "DB Papers (DB)"}}) {
    CorpusSpec spec;
    spec.kind = row.kind;
    // Page counts scaled down from the paper (38/32/16) to keep the bench
    // fast on one core; lines-per-page matches real scans.
    spec.num_pages = row.kind == DatasetKind::kCongressActs  ? 10
                     : row.kind == DatasetKind::kLiterature ? 8
                                                            : 4;
    spec.lines_per_page = 42;
    OcrNoiseModel noise;
    noise.alternatives = 24;  // wide per-glyph arcs, OCRopus-style
    auto ds = GenerateOcrDataset(spec, noise);
    if (!ds.ok()) {
      fprintf(stderr, "%s\n", ds.status().ToString().c_str());
      return 1;
    }
    size_t sfa_bytes = ds->TotalSfaBytes();
    size_t text_bytes = ds->TotalTextBytes();
    printf("%-18s %8zu %8zu %14s %12s %7.0fx\n", row.label, spec.num_pages,
           ds->sfas.size(), HumanBytes(sfa_bytes).c_str(),
           HumanBytes(text_bytes).c_str(),
           static_cast<double>(sfa_bytes) / static_cast<double>(text_bytes));
  }
  printf("\nEach SFA represents one line of a scanned page; the SFA form is\n"
         "orders of magnitude larger than the MAP text, as in the paper\n"
         "(533 MB vs 90 kB for CA).\n");
  return 0;
}
