// Micro-benchmarks (google-benchmark) for the design choices DESIGN.md
// calls out: the k-best DP vs naive enumeration, the DFAxSFA dynamic
// program vs brute-force string enumeration, the candidate cache in the
// greedy chunker, and B+-tree lookups vs heap scans for postings.
#include <benchmark/benchmark.h>

#include "automata/dfa.h"
#include "inference/kbest.h"
#include "inference/query_eval.h"
#include "ocr/generator.h"
#include "rdbms/btree.h"
#include "sfa/sfa.h"
#include "staccato/chunking.h"
#include "util/random.h"
#include "util/strings.h"

namespace staccato {
namespace {

Sfa BenchSfa(size_t len, size_t alternatives) {
  Rng rng(1);
  OcrNoiseModel model;
  model.alternatives = alternatives;
  std::string line;
  const std::string vocab = "the public law on acts ";
  while (line.size() < len) line += vocab;
  line.resize(len);
  auto sfa = OcrLineToSfa(line, model, &rng);
  return *sfa;
}

void BM_KBestDp(benchmark::State& state) {
  Sfa sfa = BenchSfa(16, 3);
  size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(KBestStrings(sfa, k));
  }
}
BENCHMARK(BM_KBestDp)->Arg(1)->Arg(10)->Arg(100);

void BM_KBestEnumeration(benchmark::State& state) {
  Sfa sfa = BenchSfa(16, 3);
  size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(KBestStringsByEnumeration(sfa, k, 1 << 26));
  }
}
BENCHMARK(BM_KBestEnumeration)->Arg(1)->Arg(10)->Arg(100);

void BM_QueryEvalDp(benchmark::State& state) {
  Sfa sfa = BenchSfa(static_cast<size_t>(state.range(0)), 10);
  auto dfa = Dfa::Compile("public", MatchMode::kContains);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalSfaQuery(sfa, *dfa));
  }
}
BENCHMARK(BM_QueryEvalDp)->Arg(16)->Arg(64)->Arg(256);

void BM_QueryEvalBruteForce(benchmark::State& state) {
  Sfa sfa = BenchSfa(static_cast<size_t>(state.range(0)), 2);
  auto dfa = Dfa::Compile("public", MatchMode::kContains);
  for (auto _ : state) {
    auto strings = sfa.EnumerateStrings(1 << 24);
    double p = 0;
    for (const auto& [s, pr] : *strings) {
      if (dfa->Matches(s)) p += pr;
    }
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_QueryEvalBruteForce)->Arg(8)->Arg(12)->Arg(16);

void BM_ChunkerWithCache(benchmark::State& state) {
  Sfa sfa = BenchSfa(64, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ApproximateSfa(sfa, {static_cast<size_t>(state.range(0)), 25, true}));
  }
}
BENCHMARK(BM_ChunkerWithCache)->Arg(40)->Arg(10)->Arg(1);

void BM_ChunkerNoCache(benchmark::State& state) {
  Sfa sfa = BenchSfa(64, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ApproximateSfa(sfa, {static_cast<size_t>(state.range(0)), 25, false}));
  }
}
BENCHMARK(BM_ChunkerNoCache)->Arg(40)->Arg(10)->Arg(1);

void BM_BTreeLookup(benchmark::State& state) {
  rdbms::BPlusTree tree;
  Rng rng(9);
  std::vector<std::string> keys;
  for (int i = 0; i < 100000; ++i) {
    keys.push_back(StringPrintf("term%06lld", static_cast<long long>(
                                                  rng.UniformInt(0, 999999))));
    tree.Insert(keys.back(), static_cast<uint64_t>(i));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(keys[i++ % keys.size()]));
  }
}
BENCHMARK(BM_BTreeLookup);

void BM_PostingsLinearScan(benchmark::State& state) {
  Rng rng(9);
  std::vector<std::pair<std::string, uint64_t>> rows;
  for (int i = 0; i < 100000; ++i) {
    rows.emplace_back(StringPrintf("term%06lld", static_cast<long long>(
                                                     rng.UniformInt(0, 999999))),
                      static_cast<uint64_t>(i));
  }
  size_t i = 0;
  for (auto _ : state) {
    const std::string& needle = rows[i++ % rows.size()].first;
    std::vector<uint64_t> hits;
    for (const auto& [k, v] : rows) {
      if (k == needle) hits.push_back(v);
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_PostingsLinearScan);

void BM_SfaSerialize(benchmark::State& state) {
  Sfa sfa = BenchSfa(64, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfa.Serialize());
  }
}
BENCHMARK(BM_SfaSerialize);

void BM_SfaDeserialize(benchmark::State& state) {
  std::string blob = BenchSfa(64, 12).Serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sfa::Deserialize(blob));
  }
}
BENCHMARK(BM_SfaDeserialize);

}  // namespace
}  // namespace staccato

BENCHMARK_MAIN();
