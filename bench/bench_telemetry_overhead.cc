// Telemetry overhead bench: the subsystem's two promises, measured.
//
//  1. Micro: ns/op of the metric hot paths — Counter::Increment and
//     Histogram::Record (two relaxed fetch_adds) — single-threaded and
//     under contention from 4 recording threads.
//
//  2. Macro: p50/p99 of the same prepared query executed with tracing
//     off vs tracing on (span tree + TraceSink publish + stats carry).
//     The acceptance bar is p99(on) / p99(off) < 1.05 — tracing must
//     cost under 5% even on a small, cache-warm query where fixed
//     overheads loom largest.
//
// Writes BENCH_telemetry.json for CI artifacts.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "eval/workbench.h"
#include "ocr/corpus.h"
#include "ocr/generator.h"
#include "rdbms/session.h"
#include "rdbms/staccato_db.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/trace.h"
#include "util/strings.h"
#include "util/timer.h"

using namespace staccato;
using rdbms::Approach;
using rdbms::LoadOptions;
using rdbms::PreparedQuery;
using rdbms::QueryOptions;
using rdbms::Session;
using rdbms::SessionOptions;
using rdbms::StaccatoDb;

namespace {

OcrDataset MakeDataset() {
  CorpusSpec spec;
  spec.kind = DatasetKind::kCongressActs;
  spec.num_pages = 4;
  spec.lines_per_page = 48;
  spec.seed = 2222;
  OcrNoiseModel noise;
  noise.alternatives = 8;
  auto data = GenerateOcrDataset(spec, noise);
  if (!data.ok()) {
    fprintf(stderr, "dataset: %s\n", data.status().ToString().c_str());
    exit(1);
  }
  return std::move(*data);
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size()));
  if (idx >= v.size()) idx = v.size() - 1;
  return v[idx];
}

/// ns per op of `op` run `reps` times (one timed block, amortized).
template <typename Op>
double NsPerOp(size_t reps, Op op) {
  Timer t;
  for (size_t i = 0; i < reps; ++i) op(i);
  return t.ElapsedSeconds() * 1e9 / static_cast<double>(reps);
}

}  // namespace

int main() {
  auto& reg = telemetry::MetricsRegistry::Global();

  // ---- 1. Metric hot-path micro-benchmarks --------------------------------
  constexpr size_t kReps = 5000000;
  telemetry::Counter* counter = reg.GetCounter("bench_counter_total");
  telemetry::Histogram* hist = reg.GetHistogram("bench_hist_us");
  const double counter_ns = NsPerOp(kReps, [&](size_t) {
    counter->Increment();
  });
  const double hist_ns = NsPerOp(kReps, [&](size_t i) {
    hist->Record(i & 0xfffff);
  });
  // Contended: 4 threads hammer the same histogram; report the per-op
  // cost seen by one of them (cache-line ping-pong included).
  double contended_ns = 0.0;
  {
    std::vector<std::thread> threads;
    std::vector<double> per_thread(4, 0.0);
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        per_thread[t] = NsPerOp(kReps / 4, [&](size_t i) {
          hist->Record(i & 0xfffff);
        });
      });
    }
    for (auto& th : threads) th.join();
    contended_ns = *std::max_element(per_thread.begin(), per_thread.end());
  }
  printf("counter Increment: %.1f ns/op\n", counter_ns);
  printf("histogram Record:  %.1f ns/op (contended x4: %.1f ns/op)\n",
         hist_ns, contended_ns);

  // ---- 2. Traced vs untraced query ----------------------------------------
  const OcrDataset data = MakeDataset();
  auto db = StaccatoDb::Open(eval::MakeScratchDir("bench_telemetry"));
  if (!db.ok()) {
    fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }
  LoadOptions load;
  load.kmap_k = 8;
  load.staccato = {25, 10, true};
  if (!(*db)->Load(data, load).ok()) return 1;

  Session session(db->get(), SessionOptions{2, 50});
  QueryOptions q;
  q.pattern = DatasetQueries(DatasetKind::kCongressActs)[0];
  q.num_ans = 20;
  q.eval_threads = 2;
  auto pq = session.Prepare(Approach::kStaccato, q);
  if (!pq.ok()) {
    fprintf(stderr, "prepare: %s\n", pq.status().ToString().c_str());
    return 1;
  }

  constexpr int kWarmup = 20;
  constexpr int kQueryReps = 400;
  auto run_phase = [&](bool tracing) -> std::vector<double> {
    // The sink (and its enabled bit) is shared between the session and
    // every PreparedQuery it produced, so the toggle applies to `pq`.
    session.set_tracing(tracing);
    for (int i = 0; i < kWarmup; ++i) {
      if (!pq->Execute(nullptr).ok()) exit(1);
    }
    std::vector<double> ms;
    ms.reserve(kQueryReps);
    for (int i = 0; i < kQueryReps; ++i) {
      Timer t;
      auto ans = pq->Execute(nullptr);
      if (!ans.ok()) exit(1);
      ms.push_back(t.ElapsedSeconds() * 1e3);
    }
    return ms;
  };
  // Off first, then on, then off again; using the second off-phase as the
  // baseline absorbs any monotone warm-up drift into the *traced* side's
  // favor being removed (conservative ordering).
  (void)run_phase(false);
  const std::vector<double> on_ms = run_phase(true);
  const std::vector<double> off_ms = run_phase(false);

  const double off_p50 = Percentile(off_ms, 0.50);
  const double off_p99 = Percentile(off_ms, 0.99);
  const double on_p50 = Percentile(on_ms, 0.50);
  const double on_p99 = Percentile(on_ms, 0.99);
  const double overhead_p99 = off_p99 > 0 ? on_p99 / off_p99 : 1.0;
  printf("untraced: p50=%.3f ms p99=%.3f ms\n", off_p50, off_p99);
  printf("traced:   p50=%.3f ms p99=%.3f ms\n", on_p50, on_p99);
  printf("tracing p99 overhead: %.3fx (target < 1.05x)\n", overhead_p99);

  FILE* json = fopen("BENCH_telemetry.json", "w");
  if (json != nullptr) {
    fprintf(json,
            "{\n"
            "  \"counter_increment_ns\": %.2f,\n"
            "  \"histogram_record_ns\": %.2f,\n"
            "  \"histogram_record_contended_ns\": %.2f,\n"
            "  \"untraced_p50_ms\": %.4f,\n"
            "  \"untraced_p99_ms\": %.4f,\n"
            "  \"traced_p50_ms\": %.4f,\n"
            "  \"traced_p99_ms\": %.4f,\n"
            "  \"tracing_p99_overhead\": %.4f,\n"
            "  \"overhead_target\": 1.05\n"
            "}\n",
            counter_ns, hist_ns, contended_ns, off_p50, off_p99, on_p50,
            on_p99, overhead_p99);
    fclose(json);
    printf("wrote BENCH_telemetry.json\n");
  }
  return 0;
}
